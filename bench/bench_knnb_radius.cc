// Section 4.2's boundary-size claim: "radius lengths returned by KNNB are
// generally 1/sqrt(k*pi) of the previous work KPT under the same level of
// accuracy", where KPT's conservative boundary is R = k * MHD.
//
// This bench measures, over real routed queries: the KNNB radius (both
// area models), the optimal radius (the circle that exactly contains the
// true k nearest), KPT's conservative radius, and the paper's predicted
// ratio — and reports boundary recall (fraction of the true KNN inside
// the estimated boundary).

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "knn/knnb.h"

int main() {
  using namespace diknn;
  using namespace diknn::bench;

  std::printf("\n=== KNNB boundary estimation quality (Section 4.2) ===\n");
  std::printf("%-5s %10s %10s %10s %10s %10s %8s %8s\n", "k", "R_lune",
              "R_rect", "R_optimal", "R_kpt", "kpt/sqrt", "rec_lune",
              "rec_rect");

  const int samples = RunsFromEnv(3) * 8;
  for (int k : {10, 20, 40, 60, 80, 100}) {
    double sum_lune = 0, sum_rect = 0, sum_opt = 0;
    double recall_lune = 0, recall_rect = 0;
    int n = 0;
    Rng rng(1234 + k);
    for (int s = 0; s < samples; ++s) {
      NetworkConfig net_config;
      net_config.seed = 100 + s;
      net_config.static_node_count = 1;
      Network net(net_config);
      GpsrRouting gpsr(&net);
      gpsr.Install();
      net.Warmup(2.0);

      // Route a probe from the sink to a random query point, collecting
      // the info list, then evaluate KNNB offline on it.
      const Point q = rng.PointInRect(net_config.field);
      struct Probe : Message {};
      std::vector<RouteHopInfo> list;
      bool delivered = false;
      gpsr.RegisterDelivery(MessageType::kDiknnQuery,
                            [&](Node*, const GeoRoutedMessage& msg) {
                              list = msg.info_list;
                              delivered = true;
                            });
      gpsr.Send(net.node(0), q, MessageType::kDiknnQuery,
                std::make_shared<Probe>(), 10, EnergyCategory::kQuery,
                /*collect_info=*/true);
      net.sim().RunUntil(net.sim().Now() + 3.0);
      if (!delivered) continue;

      const double r = net_config.radio_range_m;
      const double lune =
          Knnb(list, q, r, k, 500.0, KnnbAreaModel::kLune).radius;
      const double rect =
          Knnb(list, q, r, k, 500.0, KnnbAreaModel::kPaperRectangle).radius;
      const auto truth = net.TrueKnn(q, k);
      const double optimal =
          Distance(net.node(truth.back())->Position(), q);

      auto recall = [&](double radius) {
        int inside = 0;
        for (NodeId id : truth) {
          if (Distance(net.node(id)->Position(), q) <= radius) ++inside;
        }
        return static_cast<double>(inside) / truth.size();
      };
      sum_lune += lune;
      sum_rect += rect;
      sum_opt += optimal;
      recall_lune += recall(lune);
      recall_rect += recall(rect);
      ++n;
    }
    if (n == 0) continue;
    const double kpt = KptConservativeRadius(k, 15.0);
    std::printf("%-5d %10.1f %10.1f %10.1f %10.1f %10.1f %7.0f%% %7.0f%%\n",
                k, sum_lune / n, sum_rect / n, sum_opt / n, kpt,
                kpt / std::sqrt(k * kPi), 100 * recall_lune / n,
                100 * recall_rect / n);
    std::fflush(stdout);
  }
  std::printf("\nR_kpt grows linearly in k (its area quadratically) — the "
              "boundary-explosion KNNB avoids.\nrec_* = fraction of the "
              "true KNN inside the estimated boundary.\n");
  return 0;
}
