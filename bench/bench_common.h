// Shared plumbing for the figure-reproduction benches.
//
// Each bench binary regenerates one table/figure of the paper's Section 5
// by running full simulations through the experiment harness and printing
// the same series the paper plots. The repetition count defaults to a
// small value so the whole bench suite runs in minutes; set DIKNN_RUNS=20
// to reproduce the paper's averaging protocol exactly.

#ifndef DIKNN_BENCH_BENCH_COMMON_H_
#define DIKNN_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "harness/experiment.h"

namespace diknn::bench {

/// Repetitions per configuration (paper: 20). Override with DIKNN_RUNS.
inline int RunsFromEnv(int fallback = 3) {
  const char* env = std::getenv("DIKNN_RUNS");
  if (env == nullptr) return fallback;
  const int runs = std::atoi(env);
  return runs > 0 ? runs : fallback;
}

/// Simulated seconds per run (paper: 100). Override with DIKNN_DURATION.
inline double DurationFromEnv(double fallback = 100.0) {
  const char* env = std::getenv("DIKNN_DURATION");
  if (env == nullptr) return fallback;
  const double d = std::atof(env);
  return d > 0 ? d : fallback;
}

/// Worker threads for RunExperiment repetitions. Defaults to the
/// hardware concurrency (metrics are bit-identical at any job count);
/// override with DIKNN_JOBS.
inline int JobsFromEnv(int fallback = 0) {
  const char* env = std::getenv("DIKNN_JOBS");
  const int jobs = env != nullptr ? std::atoi(env) : fallback;
  if (jobs > 0) return jobs;
  return std::max(1u, std::thread::hardware_concurrency());
}

/// Intra-run shard count (the conservative parallel engine, src/psim).
/// Default 1 = the serial stack; override with DIKNN_SHARDS. Composes
/// multiplicatively with DIKNN_JOBS.
inline int ShardsFromEnv(int fallback = 1) {
  const char* env = std::getenv("DIKNN_SHARDS");
  const int shards = env != nullptr ? std::atoi(env) : fallback;
  return shards > 0 ? shards : fallback;
}

/// DIKNN_WINDOWED=1 forces the windowed engine even at one shard — the
/// like-for-like baseline when comparing against DIKNN_SHARDS > 1 runs
/// (windowed counters are comparable only within the windowed family).
inline bool WindowedFromEnv() {
  const char* env = std::getenv("DIKNN_WINDOWED");
  return env != nullptr && std::atoi(env) != 0;
}

/// Provenance header for every BENCH_*.json: perf numbers are only
/// comparable between runs from the same machine class and build, so
/// each artifact records where it came from. The sha / build type come
/// from CMake compile definitions (configure-time `git rev-parse`);
/// "unknown" outside a git checkout.
inline std::string ProvenanceJson() {
#ifndef DIKNN_GIT_SHA
#define DIKNN_GIT_SHA "unknown"
#endif
#ifndef DIKNN_BUILD_TYPE
#define DIKNN_BUILD_TYPE "unknown"
#endif
  return std::string("\"provenance\": {\"host_cpus\": ") +
         std::to_string(std::thread::hardware_concurrency()) +
         ", \"build_type\": \"" DIKNN_BUILD_TYPE
         "\", \"git_sha\": \"" DIKNN_GIT_SHA "\"}";
}

/// The paper's Section 5.1 default experiment, parameterized by protocol.
inline ExperimentConfig PaperDefaults(ProtocolKind kind) {
  ExperimentConfig config;
  config.protocol = kind;
  config.k = 40;
  config.runs = RunsFromEnv();
  config.duration = DurationFromEnv();
  config.jobs = JobsFromEnv();
  return config;
}

inline void PrintHeader(const char* title, const char* x_label) {
  std::printf("\n=== %s ===\n", title);
  std::printf("runs/config=%d, duration=%.0fs, jobs=%d (DIKNN_RUNS / "
              "DIKNN_DURATION / DIKNN_JOBS env vars override)\n",
              RunsFromEnv(), DurationFromEnv(), JobsFromEnv());
  std::printf("%-10s %-10s %12s %12s %10s %10s %10s\n", x_label, "protocol",
              "latency(s)", "energy(J)", "pre_acc", "post_acc", "timeout%");
}

inline void PrintRow(const std::string& x, ProtocolKind kind,
                     const ExperimentMetrics& m) {
  std::printf("%-10s %-10s %9.3f±%-5.2f %9.3f %10.3f %10.3f %9.1f%%\n",
              x.c_str(), ProtocolName(kind), m.latency.mean,
              m.latency.stddev, m.energy.mean, m.pre_accuracy.mean,
              m.post_accuracy.mean, 100.0 * m.timeout_rate.mean);
  std::fflush(stdout);
}

}  // namespace diknn::bench

#endif  // DIKNN_BENCH_BENCH_COMMON_H_
