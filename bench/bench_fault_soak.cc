// bench_fault_soak — fault-injected lifecycle soak.
//
// Runs the paper's DIKNN workload under a hostile fault plan (node kills,
// churn, ACK-loss bursts, frame drops/duplication, sink freezes and
// teleports) with the LifecycleAuditor armed, and reports how much
// per-query state survived: the answer must always be zero. Emits
// machine-readable BENCH_faults.json in the working directory so the
// lifecycle trajectory (and the fault tolerance of the metrics) can be
// tracked across PRs.
//
// Env knobs: DIKNN_RUNS, DIKNN_DURATION, DIKNN_JOBS (see bench_common.h).

#include <cstdio>
#include <fstream>

#include "bench_common.h"

namespace {

using namespace diknn;
using namespace diknn::bench;

// The standing soak plan: early attrition, a churn regime, total ACK
// blackout, lossy + duplicating air, and a sink that freezes then jumps.
constexpr char kSoakPlan[] =
    "kill@t=3,count=10;"
    "churn@t=5,up=20,down=6;"
    "ackloss@t=8,dur=3;"
    "drop@t=14,dur=4,prob=0.3;"
    "dup@t=20,dur=5,prob=0.2;"
    "freeze@t=26,node=0,dur=6;"
    "teleport@t=34,node=0,x=10,y=10,dur=8";

}  // namespace

int main() {
  ExperimentConfig config = PaperDefaults(ProtocolKind::kDiknn);
  config.audit_lifecycle = true;
  std::string error;
  const auto plan = FaultPlan::Parse(kSoakPlan, &error);
  if (!plan) {
    std::fprintf(stderr, "internal: bad soak plan: %s\n", error.c_str());
    return 1;
  }
  config.faults = *plan;

  std::printf("=== bench_fault_soak: DIKNN under %s ===\n",
              config.faults.ToSpec().c_str());
  std::printf("runs=%d, duration=%.0fs, jobs=%d\n", config.runs,
              config.duration, config.jobs);

  const std::vector<RunMetrics> runs = RunExperimentRuns(config);

  uint64_t faults = 0, checks = 0, violations = 0, leaked = 0;
  std::printf("%-6s %8s %9s %8s %10s %12s %8s\n", "seed", "queries",
              "timeouts", "faults", "lc_checks", "violations", "leaked");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunMetrics& m = runs[i];
    faults += m.faults_injected;
    checks += m.lifecycle_checks;
    violations += m.lifecycle_violations;
    leaked += m.leaked_entries;
    std::printf("%-6llu %8d %9d %8llu %10llu %12llu %8llu\n",
                static_cast<unsigned long long>(config.base_seed + i),
                m.queries, m.timeouts,
                static_cast<unsigned long long>(m.faults_injected),
                static_cast<unsigned long long>(m.lifecycle_checks),
                static_cast<unsigned long long>(m.lifecycle_violations),
                static_cast<unsigned long long>(m.leaked_entries));
  }

  const ExperimentMetrics agg = AggregateRuns(runs);
  std::printf("mean: latency %.2fs, post_acc %.2f, timeout rate %.0f%%\n",
              agg.latency.mean, agg.post_accuracy.mean,
              100 * agg.timeout_rate.mean);

  std::ofstream out("BENCH_faults.json");
  out << "{\n  \"bench\": \"fault_soak\",\n"
      << "  " << bench::ProvenanceJson() << ",\n"
      << "  \"plan\": \"" << config.faults.ToSpec() << "\",\n"
      << "  \"runs\": " << runs.size() << ",\n"
      << "  \"faults_injected\": " << faults << ",\n"
      << "  \"lifecycle_checks\": " << checks << ",\n"
      << "  \"lifecycle_violations\": " << violations << ",\n"
      << "  \"leaked_entries\": " << leaked << ",\n"
      << "  \"latency_s\": " << agg.latency.mean << ",\n"
      << "  \"post_accuracy\": " << agg.post_accuracy.mean << ",\n"
      << "  \"timeout_rate\": " << agg.timeout_rate.mean << "\n}\n";
  std::printf("wrote BENCH_faults.json\n");

  if (violations != 0 || leaked != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu lifecycle violations, %llu leaked entries\n",
                 static_cast<unsigned long long>(violations),
                 static_cast<unsigned long long>(leaked));
    return 1;
  }
  return 0;
}
