// bench_workload — offered-load sweep for the query-serving engine.
//
// Drives the workload engine's open-loop Poisson arrivals against DIKNN
// and the KPT+KNNB baseline across offered loads from well below to well
// above saturation (0.25 -> 32 q/s), with a 4 s deadline and a bounded
// admission queue, and reports the serving-side story the paper's
// one-query-at-a-time harness cannot see: goodput vs offered load, tail
// latency growth (p50/p95/p99), and where deadline misses and admission
// rejections set in.
//
// Two configurations per protocol:
//   plain  — every query launches its own itinerary (the pre-serving
//            baseline; the knee sits at ~1-2 q/s because concurrent
//            itineraries saturate the shared channel).
//   served — hotspot + Zipf query locality fronted by the serving stack
//            (result cache + coalescing + deadline-aware shedding, see
//            docs/SERVING.md), which answers most arrivals without
//            touching the channel and moves the knee out by an order of
//            magnitude.
//
// Each (protocol, config) sweep also reports knee_qps: the first offered
// rate whose goodput/offered ratio drops below 0.5, or -1 when no swept
// rate fails. Emitted into BENCH_workload.json so the knee can be tracked
// across PRs.
//
// All numbers are bit-identical at any DIKNN_JOBS setting (each run owns
// its stack; reports merge by integer bucket counts).
//
// Env knobs: DIKNN_RUNS, DIKNN_DURATION, DIKNN_JOBS (see bench_common.h),
// plus DIKNN_WORKLOAD_SMOKE=1 for a two-point CI-sized sweep.
// DIKNN_SHARDS=N (N > 1) runs every point on the conservative parallel
// engine — the full query plane crossing shard mailboxes — and restricts
// the sweep to DIKNN (the engine does not emulate the KPT baseline);
// DIKNN_WINDOWED=1 is the matching 1-shard baseline, byte-equal in every
// SLO field and traffic counter to any DIKNN_SHARDS setting.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/workload_spec.h"

namespace {

using namespace diknn;
using namespace diknn::bench;

// k = 20 queries, a 4 s deadline (about twice the uncongested p50, so low
// load completes and the saturation knee shows as misses), and admission
// bounded at 64 in flight with a 32-slot queue so deep overload turns
// into rejections instead of unbounded queueing.
constexpr char kPlainTemplate[] =
    "arrival@kind=poisson,rate=R;k@lo=20;deadline@s=4;"
    "admit@inflight=64,queue=32";

// The served sweep adds query locality (4 Zipf-weighted hotspots, tight
// sigma) — the regime caches and coalescers exist for — and fronts it
// with the full serving stack. The inflight bound is raised so parked
// followers never consume admission slots a leader needs.
// Cells are deliberately coarse (4x4 over the 115 m field): each hotspot
// then maps to ~1 cell, so at most one leader itinerary per hotspot is in
// flight at a time and everything else rides the cache or coalesces.
constexpr char kServedTemplate[] =
    "arrival@kind=poisson,rate=R;k@lo=20;"
    "space@kind=hotspot,n=4,sigma=6,skew=1.5;deadline@s=4;"
    "admit@inflight=256,queue=64,shed=1;"
    "cache@ttl=8,cells=4;coalesce@window=2.5,kslack=10";

struct SweepConfig {
  const char* name;
  const char* spec_template;
};

constexpr SweepConfig kConfigs[] = {
    {"plain", kPlainTemplate},
    {"served", kServedTemplate},
};

std::string SpecForRate(const char* spec_template, double rate) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  std::string spec = spec_template;
  return spec.replace(spec.find("=R"), 2, std::string("=") + buf);
}

}  // namespace

int main() {
  const bool smoke = []() {
    const char* env = std::getenv("DIKNN_WORKLOAD_SMOKE");
    return env != nullptr && std::atoi(env) != 0;
  }();

  std::vector<double> rates = {0.25, 0.5, 1, 2, 4, 8, 16, 32};
  std::vector<ProtocolKind> protocols = {ProtocolKind::kDiknn,
                                         ProtocolKind::kKptKnnb};

  ExperimentConfig base = PaperDefaults(ProtocolKind::kDiknn);
  base.duration = DurationFromEnv(smoke ? 8.0 : 40.0);
  base.shards = ShardsFromEnv();
  base.force_windowed = WindowedFromEnv();
  if (base.shards > 1 || base.force_windowed) {
    // The windowed engine runs DIKNN itineraries only; drop the KPT
    // baseline from sharded sweeps rather than mislabel DIKNN numbers.
    protocols = {ProtocolKind::kDiknn};
  }
  if (smoke) {
    rates = {1, 8};
    base.runs = 1;
  }

  std::printf("=== bench_workload: offered-load sweep ===\n");
  std::printf("runs/point=%d, duration=%.0fs, jobs=%d, shards=%d%s%s\n",
              base.runs, base.duration, base.jobs, base.shards,
              base.force_windowed ? " (windowed)" : "",
              smoke ? " (smoke)" : "");
  std::printf("%-8s %-8s %-8s %8s %8s %8s %8s %8s %7s %7s %7s %9s %6s\n",
              "config", "qps", "protocol", "issued", "goodput", "p50(s)",
              "p95(s)", "p99(s)", "miss%", "rej%", "tmo%", "cache", "coal");

  std::string points;
  std::string knees;
  for (const SweepConfig& sweep : kConfigs) {
    for (ProtocolKind kind : protocols) {
      double knee_qps = -1.0;
      for (double rate : rates) {
        std::string error;
        const auto spec =
            WorkloadSpec::Parse(SpecForRate(sweep.spec_template, rate),
                                &error);
        if (!spec) {
          std::fprintf(stderr, "internal: bad sweep spec: %s\n",
                       error.c_str());
          return 1;
        }
        ExperimentConfig config = base;
        config.protocol = kind;
        config.workload = *spec;
        const ExperimentMetrics agg = RunExperiment(config);
        const SloReport& slo = agg.slo;
        std::printf("%-8s %-8g %-8s %8llu %8.2f %8.3f %8.3f %8.3f %6.1f%% "
                    "%6.1f%% %6.1f%% %9llu %6llu\n",
                    sweep.name, rate, ProtocolName(kind),
                    static_cast<unsigned long long>(slo.issued),
                    slo.GoodputQps(), slo.p50(), slo.p95(), slo.p99(),
                    100 * slo.MissRate(), 100 * slo.RejectRate(),
                    100 * slo.TimeoutRate(),
                    static_cast<unsigned long long>(slo.serving.cache_hits),
                    static_cast<unsigned long long>(slo.serving.coalesced));
        std::fflush(stdout);

        if (knee_qps < 0.0 && slo.GoodputQps() / rate < 0.5) {
          knee_qps = rate;
        }

        char head[160];
        std::snprintf(head, sizeof(head),
                      "    {\"config\": \"%s\", \"protocol\": \"%s\", "
                      "\"offered_qps\": %g, ",
                      sweep.name, ProtocolName(kind), rate);
        std::string slo_json = slo.ToJson();
        // Splice the SLO fields into the point object (strip its braces).
        const size_t open = slo_json.find('{');
        const size_t close = slo_json.rfind('}');
        slo_json = slo_json.substr(open + 1, close - open - 1);
        if (!points.empty()) points += ",\n";
        points += head + slo_json + "}";
      }
      char knee[128];
      std::snprintf(knee, sizeof(knee),
                    "    {\"config\": \"%s\", \"protocol\": \"%s\", "
                    "\"knee_qps\": %g}",
                    sweep.name, ProtocolName(kind), knee_qps);
      if (!knees.empty()) knees += ",\n";
      knees += knee;
      std::printf("  -> %s/%s knee_qps=%g%s\n", sweep.name,
                  ProtocolName(kind), knee_qps,
                  knee_qps < 0.0 ? " (no swept rate fell below 0.5)" : "");
    }
  }

  std::ofstream out("BENCH_workload.json");
  out << "{\n  \"bench\": \"workload\",\n"
      << "  " << bench::ProvenanceJson() << ",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"plain_template\": \"" << kPlainTemplate << "\",\n"
      << "  \"served_template\": \"" << kServedTemplate << "\",\n"
      << "  \"runs_per_point\": " << base.runs << ",\n"
      << "  \"duration_s\": " << base.duration << ",\n"
      << "  \"shards\": " << base.shards << ",\n"
      << "  \"windowed\": " << (base.force_windowed ? "true" : "false")
      << ",\n"
      << "  \"knees\": [\n" << knees << "\n  ],\n"
      << "  \"points\": [\n" << points << "\n  ]\n}\n";
  std::printf("wrote BENCH_workload.json (%zu points)\n",
              rates.size() * protocols.size() * std::size(kConfigs));
  return 0;
}
