// bench_workload — offered-load sweep for the query-serving engine.
//
// Drives the workload engine's open-loop Poisson arrivals against DIKNN
// and the KPT+KNNB baseline across offered loads from well below to well
// above saturation (0.25 -> 32 q/s), with a 2 s deadline and a bounded
// admission queue, and reports the serving-side story the paper's
// one-query-at-a-time harness cannot see: goodput vs offered load, tail
// latency growth (p50/p95/p99), and where deadline misses and admission
// rejections set in. Emits machine-readable BENCH_workload.json so the
// latency knee can be tracked across PRs.
//
// All numbers are bit-identical at any DIKNN_JOBS setting (each run owns
// its stack; reports merge by integer bucket counts).
//
// Env knobs: DIKNN_RUNS, DIKNN_DURATION, DIKNN_JOBS (see bench_common.h),
// plus DIKNN_WORKLOAD_SMOKE=1 for a two-point CI-sized sweep.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/workload_spec.h"

namespace {

using namespace diknn;
using namespace diknn::bench;

// One serving configuration per offered load: k = 20 queries, a 4 s
// deadline (about twice the uncongested p50, so low load completes and
// the saturation knee shows as misses), and admission bounded at 64 in
// flight with a 32-slot queue so deep overload turns into rejections
// instead of unbounded queueing.
constexpr char kSpecTemplate[] =
    "arrival@kind=poisson,rate=R;k@lo=20;deadline@s=4;"
    "admit@inflight=64,queue=32";

std::string SpecForRate(double rate) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  std::string spec = kSpecTemplate;
  return spec.replace(spec.find("=R"), 2, std::string("=") + buf);
}

}  // namespace

int main() {
  const bool smoke = []() {
    const char* env = std::getenv("DIKNN_WORKLOAD_SMOKE");
    return env != nullptr && std::atoi(env) != 0;
  }();

  std::vector<double> rates = {0.25, 0.5, 1, 2, 4, 8, 16, 32};
  const std::vector<ProtocolKind> protocols = {ProtocolKind::kDiknn,
                                               ProtocolKind::kKptKnnb};

  ExperimentConfig base = PaperDefaults(ProtocolKind::kDiknn);
  base.duration = DurationFromEnv(smoke ? 8.0 : 40.0);
  if (smoke) {
    rates = {1, 8};
    base.runs = 1;
  }

  std::printf("=== bench_workload: offered-load sweep, %s ===\n",
              kSpecTemplate);
  std::printf("runs/point=%d, duration=%.0fs, jobs=%d%s\n", base.runs,
              base.duration, base.jobs, smoke ? " (smoke)" : "");
  std::printf("%-8s %-8s %8s %8s %8s %8s %8s %7s %7s %7s\n", "qps",
              "protocol", "issued", "goodput", "p50(s)", "p95(s)", "p99(s)",
              "miss%", "rej%", "tmo%");

  std::string points;
  for (double rate : rates) {
    std::string error;
    const auto spec = WorkloadSpec::Parse(SpecForRate(rate), &error);
    if (!spec) {
      std::fprintf(stderr, "internal: bad sweep spec: %s\n", error.c_str());
      return 1;
    }
    for (ProtocolKind kind : protocols) {
      ExperimentConfig config = base;
      config.protocol = kind;
      config.workload = *spec;
      const ExperimentMetrics agg = RunExperiment(config);
      const SloReport& slo = agg.slo;
      std::printf("%-8g %-8s %8llu %8.2f %8.3f %8.3f %8.3f %6.1f%% %6.1f%% "
                  "%6.1f%%\n",
                  rate, ProtocolName(kind),
                  static_cast<unsigned long long>(slo.issued),
                  slo.GoodputQps(), slo.p50(), slo.p95(), slo.p99(),
                  100 * slo.MissRate(), 100 * slo.RejectRate(),
                  100 * slo.TimeoutRate());
      std::fflush(stdout);

      char head[128];
      std::snprintf(head, sizeof(head),
                    "    {\"protocol\": \"%s\", \"offered_qps\": %g, ",
                    ProtocolName(kind), rate);
      std::string slo_json = slo.ToJson();
      // Splice the SLO fields into the point object (strip its braces).
      const size_t open = slo_json.find('{');
      const size_t close = slo_json.rfind('}');
      slo_json = slo_json.substr(open + 1, close - open - 1);
      if (!points.empty()) points += ",\n";
      points += head + slo_json + "}";
    }
  }

  std::ofstream out("BENCH_workload.json");
  out << "{\n  \"bench\": \"workload\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"spec_template\": \"" << kSpecTemplate << "\",\n"
      << "  \"runs_per_point\": " << base.runs << ",\n"
      << "  \"duration_s\": " << base.duration << ",\n"
      << "  \"points\": [\n" << points << "\n  ]\n}\n";
  std::printf("wrote BENCH_workload.json (%zu points)\n",
              rates.size() * protocols.size());
  return 0;
}
