// The paper's Section 5.1 parameter table, as configured in this library,
// plus measured characteristics of the default network (degree, beacon
// cost) so readers can sanity-check the substrate against the paper.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace diknn;
  using namespace diknn::bench;

  const ExperimentConfig config = PaperDefaults(ProtocolKind::kDiknn);
  const NetworkConfig& net = config.network;
  const DiknnParams& dk = config.diknn;

  std::printf("\n=== Section 5.1 default parameters ===\n");
  std::printf("%-24s %-14s | %-24s %s\n", "Parameter", "Value",
              "Parameter", "Value");
  std::printf("%-24s %-14d | %-24s %.0f m\n", "Node number", net.node_count,
              "r (radio range)", net.radio_range_m);
  std::printf("%-24s %.0fx%.0f m^2%2s | %-24s %d\n", "Network size",
              net.field.Width(), net.field.Height(), "", "Sector number",
              dk.num_sectors);
  std::printf("%-24s %-14s | %-24s %.0f m/s\n", "Node degree", "~20",
              "mu_max", net.max_speed);
  std::printf("%-24s %-14d | %-24s %.1f s\n", "Response size (bytes)",
              static_cast<int>(kQueryResponseBytes), "Beacon interval",
              net.beacon_interval);
  std::printf("%-24s %-14s | %-24s %s\n", "Channel rate", "250 kbps",
              "RTS/CTS", "off");
  std::printf("%-24s %-14.3f | %-24s %.0f s (exp.)\n", "m (time unit, s)",
              dk.time_unit, "Query interval", config.query_interval_mean);
  std::printf("%-24s %-14s | %-24s %.1f\n", "Rendezvous",
              dk.rendezvous ? "enabled" : "disabled", "Assurance gain",
              dk.assurance_gain);
  std::printf("%-24s %.0f s x %d runs\n", "Simulation", config.duration,
              config.runs);

  // Measured substrate characteristics.
  ProtocolStack stack(config, /*seed=*/1);
  Network& network = stack.network();
  network.Warmup(2.5);
  network.sim().RunUntil(network.sim().Now() + 10.0);
  std::printf("\n=== Measured substrate (10 s idle, seed 1) ===\n");
  std::printf("average node degree      : %.1f\n", network.AverageDegree());
  std::printf("beacon energy (10 s)     : %.3f J network-wide\n",
              network.TotalEnergy(EnergyCategory::kBeacon));
  std::printf("itinerary width w        : %.2f m (sqrt(3)/2 * r)\n",
              DefaultItineraryWidth(network.config().radio_range_m));
  const auto& cs = network.channel().stats();
  std::printf("beacon collision rate    : %.1f%%\n",
              cs.receptions_attempted > 0
                  ? 100.0 * cs.receptions_collided / cs.receptions_attempted
                  : 0.0);
  return 0;
}
