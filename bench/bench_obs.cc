// bench_obs — observability overhead benchmark.
//
// Runs the same workload-driven DIKNN experiment at five observability
// settings:
//
//   off     trace rate 0: no Tracer is constructed at all; every hot
//           path sees only a null-pointer check. This is the shipping
//           default and the configuration the <2% budget is charged to.
//   rate0   a Tracer is attached but its sampling threshold rounds to
//           zero, so every query takes the unsampled early-return path.
//           Measures the cost of the per-call sampled() checks.
//   1pct    1% of queries traced (the recommended production rate).
//   full    every query traced (spans + events for the whole run).
//   timeseries  tracing off, the flight recorder sampling every 0.25
//           sim-seconds (src/obs/flight_recorder.h). The "off" stage is
//           the recorder's disabled path too (a null-pointer check), so
//           the <2% disabled gate covers both subsystems; the enabled
//           recorder is budgeted at <5%.
//
// Each stage replays the identical seeded simulation, so the traffic
// counters must match bit-for-bit across stages (asserted) and frames/sec
// ratios are pure wall-clock ratios. Stages are interleaved across
// repetitions and the best wall time per stage is kept, the standard
// defense against thermal / scheduling drift.
//
// Emits machine-readable BENCH_obs.json in the working directory:
// overhead_disabled_pct is the headline number (off vs the same binary
// with the tracer hook exercised, i.e. rate0).
//
// Env knobs: DIKNN_BENCH_SPAN (simulated seconds, default 30),
// DIKNN_BENCH_REPS (repetitions per stage, default 7),
// DIKNN_OBS_SMOKE=1 (shrink everything for a CI smoke pass).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "obs/tracer.h"

#include "bench_common.h"

namespace {

using namespace diknn;

bool SmokeMode() {
  const char* env = std::getenv("DIKNN_OBS_SMOKE");
  return env != nullptr && env[0] == '1';
}

double SpanFromEnv() {
  const char* env = std::getenv("DIKNN_BENCH_SPAN");
  const double span = env != nullptr ? std::atof(env) : 0.0;
  if (span > 0.0) return span;
  return SmokeMode() ? 4.0 : 30.0;
}

int RepsFromEnv() {
  const char* env = std::getenv("DIKNN_BENCH_REPS");
  const int reps = env != nullptr ? std::atoi(env) : 0;
  if (reps > 0) return reps;
  return SmokeMode() ? 2 : 7;
}

struct Stage {
  const char* name;
  double rate;
  double ts_interval;  ///< Flight-recorder cadence; 0 = disabled.
};

// The unsampled-path stage wants a tracer object whose threshold is zero;
// any rate below 2^-64 of the u64 range qualifies.
constexpr double kEffectivelyZero = 1e-30;

constexpr Stage kStages[] = {
    {"off", 0.0, 0.0},
    {"rate0", kEffectivelyZero, 0.0},
    {"1pct", 0.01, 0.0},
    {"full", 1.0, 0.0},
    {"timeseries", 0.0, 0.25},
};
constexpr int kNumStages = 5;

struct StageResult {
  uint64_t frames = 0;
  uint64_t queries_sampled = 0;
  uint64_t spans = 0;
  uint64_t ts_samples = 0;
  double best_wall_s = 1e300;
  double frames_per_s = 0.0;
};

ExperimentConfig BenchConfig(double span) {
  ExperimentConfig config;
  config.network.node_count = 150;
  config.network.field = Rect::Field(100.0, 100.0);
  config.duration = span;
  config.drain = 5.0;
  config.runs = 1;
  std::string error;
  config.workload = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=8;mix@knn=70,window=15,aggregate=15;"
      "k@lo=4,hi=12;deadline@s=2;admit@inflight=12,queue=8",
      &error);
  if (!config.workload.has_value()) {
    std::fprintf(stderr, "workload spec: %s\n", error.c_str());
    std::exit(1);
  }
  return config;
}

}  // namespace

int main() {
  const double span = SpanFromEnv();
  const int reps = RepsFromEnv();
  const ExperimentConfig base = BenchConfig(span);

  std::printf("=== bench_obs: %.0fs sim x %d reps per stage ===\n", span,
              reps);
  std::printf("%-10s %12s %10s %14s %10s %10s %10s\n", "stage", "frames",
              "wall(s)", "frames/sec", "sampled", "spans", "ts_samples");

  // One discarded pass warms code and allocator caches so the first
  // measured stage is not systematically penalized.
  {
    ExperimentConfig warm = base;
    RunOnce(warm, 42);
  }

  StageResult results[kNumStages];
  bool traffic_equal = true;
  for (int rep = 0; rep < reps; ++rep) {
    for (int s = 0; s < kNumStages; ++s) {
      ExperimentConfig config = base;
      config.trace_sample = kStages[s].rate;
      config.ts_interval = kStages[s].ts_interval;
      TraceData trace;
      const auto start = std::chrono::steady_clock::now();
      const RunMetrics m = RunOnce(config, 42, nullptr, &trace);
      const auto stop = std::chrono::steady_clock::now();
      const double wall =
          std::chrono::duration<double>(stop - start).count();

      StageResult& r = results[s];
      const uint64_t frames = m.obs.CounterValue("channel.frames_sent");
      if (rep == 0 && s == 0) {
        results[0].frames = frames;
      } else if (frames != results[0].frames) {
        traffic_equal = false;  // Tracing perturbed the run — a bug.
      }
      r.frames = frames;
      r.queries_sampled = trace.stats.queries_sampled;
      r.spans = trace.stats.spans;
      r.ts_samples = 0;
      for (const TimeSeries& ts : m.ts.series()) r.ts_samples += ts.size();
      if (wall < r.best_wall_s) r.best_wall_s = wall;
    }
  }

  for (int s = 0; s < kNumStages; ++s) {
    StageResult& r = results[s];
    r.frames_per_s = static_cast<double>(r.frames) / r.best_wall_s;
    std::printf("%-10s %12llu %10.3f %14.0f %10llu %10llu %10llu\n",
                kStages[s].name,
                static_cast<unsigned long long>(r.frames), r.best_wall_s,
                r.frames_per_s,
                static_cast<unsigned long long>(r.queries_sampled),
                static_cast<unsigned long long>(r.spans),
                static_cast<unsigned long long>(r.ts_samples));
  }

  const auto overhead_pct = [&](int s) {
    return (results[s].best_wall_s / results[0].best_wall_s - 1.0) * 100.0;
  };
  const double disabled = overhead_pct(1);
  const double sampled_1pct = overhead_pct(2);
  const double full = overhead_pct(3);
  const double timeseries = overhead_pct(4);
  std::printf("overhead vs off: rate0 %+.2f%%, 1%% %+.2f%%, full %+.2f%%, "
              "timeseries %+.2f%%\n",
              disabled, sampled_1pct, full, timeseries);
  std::printf("traffic identical across stages: %s\n",
              traffic_equal ? "yes" : "NO (observer effect!)");

  std::ofstream out("BENCH_obs.json");
  out << "{\n  \"bench\": \"obs\",\n  " << bench::ProvenanceJson()
      << ",\n  \"sim_span_s\": " << span
      << ",\n  \"reps\": " << reps
      << ",\n  \"traffic_identical\": " << (traffic_equal ? "true" : "false")
      << ",\n  \"overhead_disabled_pct\": " << disabled
      << ",\n  \"overhead_1pct_pct\": " << sampled_1pct
      << ",\n  \"overhead_full_pct\": " << full
      << ",\n  \"overhead_timeseries_pct\": " << timeseries
      << ",\n  \"stages\": [\n";
  for (int s = 0; s < kNumStages; ++s) {
    const StageResult& r = results[s];
    out << "    {\"stage\": \"" << kStages[s].name
        << "\", \"trace_rate\": " << kStages[s].rate
        << ", \"ts_interval_s\": " << kStages[s].ts_interval
        << ", \"frames\": " << r.frames << ", \"wall_s\": " << r.best_wall_s
        << ", \"frames_per_s\": " << r.frames_per_s
        << ", \"queries_sampled\": " << r.queries_sampled
        << ", \"spans\": " << r.spans
        << ", \"ts_samples\": " << r.ts_samples << "}"
        << (s + 1 < kNumStages ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote BENCH_obs.json\n");
  return traffic_equal ? 0 : 1;
}
