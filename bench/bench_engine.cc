// bench_engine — event-scheduler engine benchmark (wheel vs legacy heap).
//
// Two stages, each run once per EngineKind with an identical deterministic
// operation sequence:
//
//   churn     A bare-EventQueue microbench replaying the simulator's
//             MAC/beacon event pattern: short tx-done events, ack timers
//             that are armed and almost always cancelled, and occasional
//             far-future query timeouts that park in the overflow tier.
//             Reports scheduler operations per second.
//
//   endtoend  A full Network with beaconing (RandomWaypoint mobility,
//             constant density) run for a fixed simulated span at
//             N in {1000, 4000}; reports wall-clock frames/sec and
//             verifies both engines produced identical traffic counters
//             (the determinism contract, asserted here on every run).
//
// Emits machine-readable BENCH_engine.json in the working directory so the
// perf trajectory can be tracked across PRs.
//
// Env knobs: DIKNN_BENCH_EVENTS (churn operations, default 2000000),
// DIKNN_BENCH_SIZES (comma-separated node counts), DIKNN_BENCH_SPAN
// (simulated seconds for the end-to-end stage, default 6),
// DIKNN_ENGINE_SMOKE=1 (shrink everything for a CI smoke pass).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "net/network.h"
#include "sim/event_queue.h"

#include "bench_common.h"

namespace {

using namespace diknn;

bool SmokeMode() {
  const char* env = std::getenv("DIKNN_ENGINE_SMOKE");
  return env != nullptr && env[0] == '1';
}

int OpsFromEnv() {
  const char* env = std::getenv("DIKNN_BENCH_EVENTS");
  const int ops = env != nullptr ? std::atoi(env) : 0;
  if (ops > 0) return ops;
  return SmokeMode() ? 50000 : 2000000;
}

std::vector<int> SizesFromEnv() {
  const char* env = std::getenv("DIKNN_BENCH_SIZES");
  if (env == nullptr) {
    return SmokeMode() ? std::vector<int>{250} : std::vector<int>{1000, 4000};
  }
  std::vector<int> sizes;
  for (const char* p = env; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    if (v > 0) sizes.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return sizes.empty() ? std::vector<int>{1000, 4000} : sizes;
}

double SpanFromEnv() {
  const char* env = std::getenv("DIKNN_BENCH_SPAN");
  const double span = env != nullptr ? std::atof(env) : 0.0;
  if (span > 0.0) return span;
  return SmokeMode() ? 1.0 : 6.0;
}

const char* EngineName(EngineKind kind) {
  return kind == EngineKind::kWheel ? "wheel" : "heap";
}

// ---------------------------------------------------------------------------
// Stage 1: event-churn microbench.

struct ChurnResult {
  EngineKind kind = EngineKind::kWheel;
  uint64_t ops = 0;  ///< push + cancel + pop operations performed.
  double wall_s = 0.0;
  double ops_per_s = 0.0;
  EngineStats stats;
};

ChurnResult RunChurn(EngineKind kind, int iterations) {
  EventQueue q(kind);
  Rng rng(7);
  SimTime now = 0.0;
  uint64_t fired = 0;
  EventId pending_ack = 0;

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    // A data frame's tx-done lands within the next millisecond.
    q.Push(now + 0.0005 + rng.Uniform(0.0, 0.0004), [&fired] { ++fired; });
    // Re-arm the ack timer; the previous one is cancelled before it fires
    // (the dominant MAC pattern — acks almost always arrive).
    if (pending_ack != 0) q.Cancel(pending_ack);
    pending_ack = q.Push(now + 0.02, [&fired] { ++fired; });
    // Occasional far-future query timeout exercises the overflow tier.
    if (i % 64 == 0) {
      q.Push(now + 5.0 + rng.Uniform(0.0, 3.0), [&fired] { ++fired; });
    }
    SimTime t;
    q.Pop(&t)();
    now = t;
  }
  while (!q.Empty()) q.Pop(nullptr)();
  const auto stop = std::chrono::steady_clock::now();

  ChurnResult r;
  r.kind = kind;
  r.stats = q.stats();
  r.ops = r.stats.events_pushed + r.stats.events_fired +
          r.stats.events_cancelled;
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.ops_per_s = static_cast<double>(r.ops) / std::max(r.wall_s, 1e-9);
  return r;
}

// ---------------------------------------------------------------------------
// Stage 2: end-to-end beaconing network.

struct EndResult {
  EngineKind kind = EngineKind::kWheel;
  int nodes = 0;
  uint64_t frames = 0;
  double wall_s = 0.0;
  double frames_per_s = 0.0;
  EngineStats stats;
  ChannelStats channel;
};

EndResult RunEndToEnd(int node_count, EngineKind kind, double sim_span) {
  NetworkConfig config;
  config.node_count = node_count;
  // Constant density: scale the paper's 115x115 m / 200-node field.
  const double side = 115.0 * std::sqrt(node_count / 200.0);
  config.field = Rect::Field(side, side);
  config.mobility = MobilityKind::kRandomWaypoint;
  config.scheduler = kind;
  config.seed = 99;
  Network net(config);

  const auto start = std::chrono::steady_clock::now();
  net.Warmup(sim_span);  // Starts beaconing and runs the span.
  const auto stop = std::chrono::steady_clock::now();

  EndResult r;
  r.kind = kind;
  r.nodes = node_count;
  r.channel = net.channel().stats();
  r.frames = r.channel.frames_sent;
  r.stats = net.sim().engine_stats();
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.frames_per_s = static_cast<double>(r.frames) / std::max(r.wall_s, 1e-9);
  return r;
}

bool SameTraffic(const ChannelStats& a, const ChannelStats& b) {
  return a.frames_sent == b.frames_sent &&
         a.receptions_attempted == b.receptions_attempted &&
         a.receptions_delivered == b.receptions_delivered &&
         a.receptions_collided == b.receptions_collided &&
         a.receptions_lost == b.receptions_lost;
}

void WriteJson(const std::vector<ChurnResult>& churn,
               const std::vector<EndResult>& end, double churn_speedup,
               bool all_equal) {
  std::ofstream out("BENCH_engine.json");
  out << "{\n  \"bench\": \"engine\",\n  " << bench::ProvenanceJson()
      << ",\n  \"equivalent\": " << (all_equal ? "true" : "false")
      << ",\n  \"churn_speedup\": " << churn_speedup
      << ",\n  \"churn\": [\n";
  for (size_t i = 0; i < churn.size(); ++i) {
    const ChurnResult& r = churn[i];
    out << "    {\"engine\": \"" << EngineName(r.kind)
        << "\", \"ops\": " << r.ops << ", \"wall_s\": " << r.wall_s
        << ", \"ops_per_s\": " << r.ops_per_s
        << ", \"peak_resident\": " << r.stats.peak_resident
        << ", \"inline_callbacks\": " << r.stats.inline_callbacks << "}"
        << (i + 1 < churn.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"endtoend\": [\n";
  for (size_t i = 0; i < end.size(); ++i) {
    const EndResult& r = end[i];
    out << "    {\"nodes\": " << r.nodes << ", \"engine\": \""
        << EngineName(r.kind) << "\", \"frames\": " << r.frames
        << ", \"wall_s\": " << r.wall_s
        << ", \"frames_per_s\": " << r.frames_per_s
        << ", \"events_fired\": " << r.stats.events_fired
        << ", \"wheel_scheduled\": " << r.stats.wheel_scheduled
        << ", \"overflow_scheduled\": " << r.stats.overflow_scheduled
        << ", \"peak_resident\": " << r.stats.peak_resident << "}"
        << (i + 1 < end.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  const int ops = OpsFromEnv();
  const std::vector<int> sizes = SizesFromEnv();
  const double span = SpanFromEnv();

  std::printf("=== bench_engine: churn x%d, endtoend %.1fs sim ===\n", ops,
              span);

  std::printf("--- churn microbench ---\n");
  std::printf("%-7s %14s %10s %14s %10s\n", "engine", "ops/sec", "wall(s)",
              "peak_resident", "speedup");
  std::vector<ChurnResult> churn;
  for (const EngineKind kind : {EngineKind::kLegacyHeap, EngineKind::kWheel}) {
    churn.push_back(RunChurn(kind, ops));
  }
  const double churn_speedup = churn[1].ops_per_s / churn[0].ops_per_s;
  for (const ChurnResult& r : churn) {
    std::printf("%-7s %14.0f %10.3f %14llu %10s\n", EngineName(r.kind),
                r.ops_per_s, r.wall_s,
                static_cast<unsigned long long>(r.stats.peak_resident),
                r.kind == EngineKind::kWheel ? "" : "-");
  }
  std::printf("churn speedup: %.2fx (wheel vs heap)\n", churn_speedup);
  if (churn[0].stats.events_fired != churn[1].stats.events_fired) {
    std::fprintf(stderr, "FAIL: churn fired counts diverged\n");
    return 1;
  }

  std::printf("--- end-to-end beaconing ---\n");
  std::printf("%-8s %-7s %12s %10s %12s %10s\n", "nodes", "engine",
              "frames/sec", "wall(s)", "wheel-frac", "speedup");
  std::vector<EndResult> end;
  bool all_equal = true;
  for (int n : sizes) {
    const EndResult heap = RunEndToEnd(n, EngineKind::kLegacyHeap, span);
    const EndResult wheel = RunEndToEnd(n, EngineKind::kWheel, span);
    all_equal = all_equal && SameTraffic(heap.channel, wheel.channel);
    for (const EndResult& r : {heap, wheel}) {
      const uint64_t sched = r.stats.wheel_scheduled +
                             r.stats.overflow_scheduled;
      std::printf("%-8d %-7s %12.0f %10.3f %12.3f %10s\n", r.nodes,
                  EngineName(r.kind), r.frames_per_s, r.wall_s,
                  sched > 0 ? static_cast<double>(r.stats.wheel_scheduled) /
                                  sched
                            : 0.0,
                  r.kind == EngineKind::kWheel ? "" : "-");
    }
    std::printf("%-8d speedup: %.2fx (wheel vs heap)\n", n,
                wheel.frames_per_s / heap.frames_per_s);
    end.push_back(heap);
    end.push_back(wheel);
  }

  if (!all_equal) {
    std::fprintf(stderr,
                 "FAIL: wheel and heap traffic counters diverged\n");
  }
  WriteJson(churn, end, churn_speedup, all_equal);
  std::printf("wrote BENCH_engine.json\n");
  return all_equal ? 0 : 1;
}
