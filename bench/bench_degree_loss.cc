// Section 5.1's remaining knobs: node degree (5-20, by shrinking the
// field from 200x200 to 115x115 m^2 at a fixed 200 nodes) and packet loss
// rate (the Section 5 intro lists it among the studied network
// conditions, though the paper prints no dedicated figure).
//
// Expected shape: all protocols improve with density (greedy routing and
// coverage get easier); DIKNN degrades most gracefully with loss because
// no per-query infrastructure must survive the losses.

#include "bench_common.h"

int main() {
  using namespace diknn;
  using namespace diknn::bench;

  const ProtocolKind kinds[] = {ProtocolKind::kDiknn,
                                ProtocolKind::kKptKnnb,
                                ProtocolKind::kPeerTree};

  PrintHeader("Node degree sweep (field size 200x200 -> 115x115, n=200)",
              "field");
  // Degree ~= n * pi r^2 / A: 200x200 -> ~5, 160 -> ~8, 135 -> ~11,
  // 115 -> ~19 (the paper's 5..20 range).
  for (double side : {200.0, 160.0, 135.0, 115.0}) {
    for (ProtocolKind kind : kinds) {
      ExperimentConfig config = PaperDefaults(kind);
      config.network.field = Rect::Field(side, side);
      PrintRow(std::to_string(static_cast<int>(side)) + "m", kind,
               RunExperiment(config));
    }
  }

  PrintHeader("Packet loss sweep (k = 40, default field)", "loss");
  for (double loss : {0.0, 0.1, 0.2, 0.3}) {
    for (ProtocolKind kind : kinds) {
      ExperimentConfig config = PaperDefaults(kind);
      config.network.loss_rate = loss;
      char label[16];
      std::snprintf(label, sizeof(label), "%.0f%%", loss * 100);
      PrintRow(label, kind, RunExperiment(config));
    }
  }
  return 0;
}
