// Ablations of DIKNN's design choices (Sections 3.3 and 4.3):
//   - sector count S (parallelism vs contention);
//   - rendezvous-based dynamic boundary adjustment on/off;
//   - mobility-assurance gain g;
//   - itinerary width w vs the sqrt(3)/2*r optimum;
//   - KNNB area model (paper's rectangle vs exact lune);
//   - DIKNN vs the naive flooding strawman of Section 3.3.

#include "bench_common.h"

int main() {
  using namespace diknn;
  using namespace diknn::bench;

  PrintHeader("Ablation: sector count S (k = 40)", "S");
  for (int sectors : {2, 4, 8, 16}) {
    ExperimentConfig config = PaperDefaults(ProtocolKind::kDiknn);
    config.diknn.num_sectors = sectors;
    PrintRow(std::to_string(sectors), ProtocolKind::kDiknn,
             RunExperiment(config));
  }

  PrintHeader("Ablation: rendezvous adjustment (k = 40)", "rendezvous");
  for (bool on : {true, false}) {
    ExperimentConfig config = PaperDefaults(ProtocolKind::kDiknn);
    config.diknn.rendezvous = on;
    PrintRow(on ? "on" : "off", ProtocolKind::kDiknn,
             RunExperiment(config));
  }

  PrintHeader("Ablation: assurance gain g (k = 40, mu_max = 20)", "g");
  for (double g : {0.0, 0.1, 0.5, 1.0}) {
    ExperimentConfig config = PaperDefaults(ProtocolKind::kDiknn);
    config.network.max_speed = 20.0;
    config.diknn.assurance_gain = g;
    config.diknn.mobility_assurance = g > 0.0;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", g);
    PrintRow(label, ProtocolKind::kDiknn, RunExperiment(config));
  }

  PrintHeader("Ablation: itinerary width w (k = 40, r = 20)", "w");
  for (double w : {8.0, 12.0, 17.32, 22.0}) {
    ExperimentConfig config = PaperDefaults(ProtocolKind::kDiknn);
    config.diknn.width = w;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1fm", w);
    PrintRow(label, ProtocolKind::kDiknn, RunExperiment(config));
  }

  PrintHeader("Ablation: data collection scheme (k = 40; footnote 1)",
              "scheme");
  {
    const std::pair<const char*, CollectionScheme> schemes[] = {
        {"contention", CollectionScheme::kContention},
        {"precedence", CollectionScheme::kPrecedenceList},
        {"hybrid", CollectionScheme::kHybrid},
    };
    for (const auto& [label, scheme] : schemes) {
      ExperimentConfig config = PaperDefaults(ProtocolKind::kDiknn);
      config.diknn.collection_scheme = scheme;
      PrintRow(label, ProtocolKind::kDiknn, RunExperiment(config));
    }
  }

  PrintHeader("Ablation: KNNB area model (k = 40)", "model");
  for (bool lune : {true, false}) {
    ExperimentConfig config = PaperDefaults(ProtocolKind::kDiknn);
    config.diknn.knnb_area_model =
        lune ? KnnbAreaModel::kLune : KnnbAreaModel::kPaperRectangle;
    PrintRow(lune ? "lune" : "rect", ProtocolKind::kDiknn,
             RunExperiment(config));
  }

  PrintHeader("Mobility model: i.i.d. random waypoint vs RPGM herds "
              "(k = 40)", "model");
  {
    ExperimentConfig config = PaperDefaults(ProtocolKind::kDiknn);
    PrintRow("rwp", ProtocolKind::kDiknn, RunExperiment(config));
    config.network.mobility = MobilityKind::kGroup;
    config.network.group_size = 25;
    config.network.group_radius = 18.0;
    PrintRow("herds", ProtocolKind::kDiknn, RunExperiment(config));
  }

  PrintHeader("Strawman: naive flooding (Section 3.3) vs DIKNN (k = 40)",
              "scheme");
  {
    ExperimentConfig config = PaperDefaults(ProtocolKind::kDiknn);
    PrintRow("DIKNN", ProtocolKind::kDiknn, RunExperiment(config));
    config = PaperDefaults(ProtocolKind::kFlooding);
    PrintRow("Flooding", ProtocolKind::kFlooding, RunExperiment(config));
    // Fig. 1's other branch: the centralized index. Near-zero latency at
    // the station, but the update stream's maintenance energy dwarfs
    // every in-network scheme.
    config = PaperDefaults(ProtocolKind::kCentralized);
    PrintRow("Central", ProtocolKind::kCentralized, RunExperiment(config));
  }
  return 0;
}
