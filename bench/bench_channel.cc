// bench_channel — channel-layer scalability microbenchmark.
//
// Drives a constant-density barrage of broadcast frames (plus a carrier-
// sense probe per frame, mimicking CSMA) through the radio substrate at
// N in {250, 1000, 4000, 8000, 16000, 32000} nodes, once with the
// brute-force O(N) scan (skipped above kBruteForceCeiling) and
// once with the spatial grid, and reports wall-clock frames/sec. Verifies
// on the way that both modes produce identical traffic counters (the
// grid's bit-identical contract). Emits machine-readable
// BENCH_channel.json in the working directory so the perf trajectory can
// be tracked across PRs.
//
// Env knobs: DIKNN_BENCH_FRAMES (frames per configuration, default 8000),
// DIKNN_BENCH_SIZES (comma-separated node counts).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "net/network.h"

#include "bench_common.h"

namespace {

using namespace diknn;

struct Result {
  int nodes = 0;
  bool grid = false;
  int frames = 0;
  double wall_s = 0.0;
  double frames_per_s = 0.0;
  ChannelStats stats;
};

// Largest N still benched with the brute-force O(N) scan. Above this the
// quadratic candidate count makes brute runs dominate the bench's wall
// clock for no extra signal — the grid/brute equivalence is already
// established at every size up to the ceiling.
constexpr int kBruteForceCeiling = 8000;

int FramesFromEnv() {
  const char* env = std::getenv("DIKNN_BENCH_FRAMES");
  const int frames = env != nullptr ? std::atoi(env) : 0;
  return frames > 0 ? frames : 8000;
}

std::vector<int> SizesFromEnv() {
  const char* env = std::getenv("DIKNN_BENCH_SIZES");
  const std::vector<int> defaults = {250, 1000, 4000, 8000, 16000, 32000};
  if (env == nullptr) return defaults;
  std::vector<int> sizes;
  for (const char* p = env; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    if (v > 0) sizes.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return sizes.empty() ? defaults : sizes;
}

Result RunBarrage(int node_count, bool grid, int frames) {
  NetworkConfig config;
  config.node_count = node_count;
  // Constant density: scale the paper's 115x115 m / 200-node field.
  const double side = 115.0 * std::sqrt(node_count / 200.0);
  config.field = Rect::Field(side, side);
  config.mobility = MobilityKind::kRandomWaypoint;
  config.use_spatial_grid = grid;
  config.seed = 99;
  Network net(config);
  Channel& channel = net.channel();

  // Round-robin senders, uniform arrival spacing over enough simulated
  // time that mobility crosses many grid refresh intervals (40 at the
  // default 0.25 s). Each frame carrier-senses first, like the MAC does.
  const double sim_span = 10.0;
  const double gap = sim_span / frames;
  std::vector<Node*> nodes = net.AllNodes();
  for (int i = 0; i < frames; ++i) {
    Node* sender = nodes[i % nodes.size()];
    net.sim().ScheduleAt(i * gap, [&channel, sender]() {
      Packet p;
      p.type = MessageType::kBeacon;
      p.dst = kBroadcastId;
      p.size_bytes = 32;
      p.uid = 0;
      (void)channel.IsBusyAt(sender->Position());
      channel.Transmit(sender, p);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  net.sim().Run();
  const auto stop = std::chrono::steady_clock::now();

  Result r;
  r.nodes = node_count;
  r.grid = grid;
  r.frames = frames;
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.frames_per_s = frames / std::max(r.wall_s, 1e-9);
  r.stats = channel.stats();
  return r;
}

bool SameTraffic(const ChannelStats& a, const ChannelStats& b) {
  return a.frames_sent == b.frames_sent &&
         a.receptions_attempted == b.receptions_attempted &&
         a.receptions_delivered == b.receptions_delivered &&
         a.receptions_collided == b.receptions_collided &&
         a.receptions_lost == b.receptions_lost;
}

void WriteJson(const std::vector<Result>& results, bool all_equal) {
  std::ofstream out("BENCH_channel.json");
  out << "{\n  \"bench\": \"channel\",\n  " << bench::ProvenanceJson()
      << ",\n  \"equivalent\": "
      << (all_equal ? "true" : "false") << ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    out << "    {\"nodes\": " << r.nodes << ", \"mode\": \""
        << (r.grid ? "grid" : "brute") << "\", \"frames\": " << r.frames
        << ", \"wall_s\": " << r.wall_s
        << ", \"frames_per_s\": " << r.frames_per_s
        << ", \"candidates_scanned\": " << r.stats.candidates_scanned
        << ", \"delivered\": " << r.stats.receptions_delivered << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  const int frames = FramesFromEnv();
  const std::vector<int> sizes = SizesFromEnv();

  std::printf("=== bench_channel: %d frames per config ===\n", frames);
  std::printf("%-8s %-7s %12s %10s %16s %10s\n", "nodes", "mode",
              "frames/sec", "wall(s)", "cand/frame", "speedup");

  std::vector<Result> results;
  bool all_equal = true;
  for (int n : sizes) {
    const bool run_brute = n <= kBruteForceCeiling;
    const Result grid = RunBarrage(n, /*grid=*/true, frames);
    if (run_brute) {
      const Result brute = RunBarrage(n, /*grid=*/false, frames);
      all_equal = all_equal && SameTraffic(brute.stats, grid.stats);
      std::printf("%-8d %-7s %12.0f %10.3f %16.1f %10s\n", brute.nodes,
                  "brute", brute.frames_per_s, brute.wall_s,
                  static_cast<double>(brute.stats.candidates_scanned) /
                      brute.frames,
                  "-");
      results.push_back(brute);
      std::printf("%-8d %-7s %12.0f %10.3f %16.1f %9.2fx\n", grid.nodes,
                  "grid", grid.frames_per_s, grid.wall_s,
                  static_cast<double>(grid.stats.candidates_scanned) /
                      grid.frames,
                  grid.frames_per_s / brute.frames_per_s);
    } else {
      std::printf("%-8d %-7s %12.0f %10.3f %16.1f %10s\n", grid.nodes,
                  "grid", grid.frames_per_s, grid.wall_s,
                  static_cast<double>(grid.stats.candidates_scanned) /
                      grid.frames,
                  "-");
    }
    results.push_back(grid);
  }

  if (!all_equal) {
    std::fprintf(stderr,
                 "FAIL: grid and brute-force traffic counters diverged\n");
  }
  WriteJson(results, all_equal);
  std::printf("wrote BENCH_channel.json\n");
  return all_equal ? 0 : 1;
}
