// bench_pdes — parallel-engine scalability benchmark.
//
// Sweeps the conservative PDES substrate (src/psim) over node count x
// shard count at constant field density and reports wall-clock frames/sec
// plus a load-balance model of the achievable speedup. On every row the
// partition-invariant traffic counters are checked against the 1-shard
// anchor of the same N — a silent determinism break fails the bench.
//
// Machine-parallelism caveat, reported rather than hidden: the JSON
// carries host_cpus, and when the host has fewer cores than shards the
// wall-clock column cannot show a speedup. The `speedup_model` column —
// busy_sum / busy_max over the per-shard busy clocks, i.e. the speedup a
// perfectly parallel host would see given the actual load balance — is
// the honest scalability signal in that case.
//
// Env knobs:
//   DIKNN_BENCH_PDES_SIZES   comma-separated N (default 2000,20000,100000)
//   DIKNN_BENCH_PDES_SHARDS  comma-separated shard counts (default 1,2,4,8)
//   DIKNN_BENCH_PDES_DURATION  simulated seconds per run (default 0.5)
//   DIKNN_PDES_SMOKE=1       run the small shard-equivalence smoke only
//                            (used by scripts/check_all.sh); exits
//                            nonzero on any counter mismatch.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "psim/engine.h"

namespace {

using namespace diknn;

std::vector<int> IntListFromEnv(const char* name,
                                std::vector<int> defaults) {
  const char* env = std::getenv(name);
  if (env == nullptr) return defaults;
  std::vector<int> values;
  for (const char* p = env; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    if (v > 0) values.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return values.empty() ? defaults : values;
}

double DurationFromEnv() {
  const char* env = std::getenv("DIKNN_BENCH_PDES_DURATION");
  const double d = env != nullptr ? std::atof(env) : 0.0;
  return d > 0.0 ? d : 0.5;
}

PsimConfig ConfigFor(int nodes, int shards, double duration) {
  PsimConfig config;
  config.node_count = nodes;
  // Constant density: scale the paper's 115x115 m / 200-node field.
  const double side = 115.0 * std::sqrt(nodes / 200.0);
  config.field = Rect::Field(side, side);
  config.shards = shards;
  config.duration = duration;
  config.seed = 99;
  return config;
}

struct Row {
  int nodes = 0;
  int shards_requested = 0;
  int shards = 0;
  uint64_t windows = 0;
  uint64_t frames = 0;
  double wall_s = 0.0;
  double frames_per_s = 0.0;
  double busy_sum_s = 0.0;
  double busy_max_s = 0.0;
  double speedup_model = 0.0;
  double efficiency_model = 0.0;
  bool invariant_ok = true;
};

Row RunOne(int nodes, int shards, double duration,
           const PsimStats::Invariants* anchor,
           PsimStats::Invariants* invariants_out) {
  const PsimResult r = RunPsim(ConfigFor(nodes, shards, duration));
  *invariants_out = r.totals.InvariantCounters();
  Row row;
  row.nodes = nodes;
  row.shards_requested = shards;
  row.shards = r.shards;
  row.windows = r.windows;
  row.frames = r.totals.frames_sent;
  row.wall_s = r.wall_s;
  row.frames_per_s =
      static_cast<double>(row.frames) / std::max(r.wall_s, 1e-9);
  for (const PsimStats& s : r.shard_stats) {
    row.busy_sum_s += s.busy_s;
    row.busy_max_s = std::max(row.busy_max_s, s.busy_s);
  }
  row.speedup_model = row.busy_max_s > 0.0
                          ? row.busy_sum_s / row.busy_max_s
                          : static_cast<double>(r.shards);
  row.efficiency_model = row.speedup_model / r.shards;
  row.invariant_ok =
      anchor == nullptr || r.totals.InvariantCounters() == *anchor;
  return row;
}

void WriteJson(const std::vector<Row>& rows, bool all_ok) {
  std::ofstream out("BENCH_pdes.json");
  out << "{\n  \"bench\": \"pdes\",\n  \"host_cpus\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"equivalent\": " << (all_ok ? "true" : "false")
      << ",\n  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"nodes\": " << r.nodes << ", \"shards\": " << r.shards
        << ", \"shards_requested\": " << r.shards_requested
        << ", \"windows\": " << r.windows << ", \"frames\": " << r.frames
        << ", \"wall_s\": " << r.wall_s
        << ", \"frames_per_s\": " << r.frames_per_s
        << ", \"busy_sum_s\": " << r.busy_sum_s
        << ", \"busy_max_s\": " << r.busy_max_s
        << ", \"speedup_model\": " << r.speedup_model
        << ", \"efficiency_model\": " << r.efficiency_model
        << ", \"invariant_ok\": " << (r.invariant_ok ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// Shard-equivalence smoke for scripts/check_all.sh: a short dense run on
// a field wide enough for four genuine strips; any drift in the
// partition-invariant counters or the exchange balance is a hard fail.
int RunSmoke() {
  PsimConfig config;
  config.node_count = 768;
  config.field = Rect::Field(560.0, 115.0);
  config.beacon_interval = 0.1;
  config.loss_rate = 0.05;
  config.duration = 0.6;
  config.seed = 42;

  config.shards = 1;
  const PsimResult anchor = RunPsim(config);
  if (anchor.totals.frames_sent == 0) {
    std::fprintf(stderr, "PDES smoke: anchor run sent no frames\n");
    return 1;
  }
  for (int shards : {2, 4}) {
    config.shards = shards;
    const PsimResult r = RunPsim(config);
    if (r.shards != shards) {
      std::fprintf(stderr, "PDES smoke: wanted %d shards, got %d\n",
                   shards, r.shards);
      return 1;
    }
    if (!(r.totals.InvariantCounters() ==
          anchor.totals.InvariantCounters())) {
      std::fprintf(stderr,
                   "PDES smoke: traffic counters diverged at %d shards "
                   "(frames %llu vs %llu, delivered %llu vs %llu)\n",
                   shards,
                   static_cast<unsigned long long>(r.totals.frames_sent),
                   static_cast<unsigned long long>(
                       anchor.totals.frames_sent),
                   static_cast<unsigned long long>(
                       r.totals.receptions_delivered),
                   static_cast<unsigned long long>(
                       anchor.totals.receptions_delivered));
      return 1;
    }
    if (r.totals.boundary_frames != r.totals.foreign_frames ||
        r.totals.migrations_out != r.totals.migrations_in ||
        r.totals.audit_mismatches != 0) {
      std::fprintf(stderr,
                   "PDES smoke: exchange imbalance at %d shards\n",
                   shards);
      return 1;
    }
    bool allocs_clean = true;
    for (const PsimStats& s : r.shard_stats) {
      allocs_clean = allocs_clean && s.steady_allocs == 0;
    }
    if (!allocs_clean) {
      std::fprintf(stderr,
                   "PDES smoke: steady-state allocations at %d shards\n",
                   shards);
      return 1;
    }
  }
  std::printf("PDES smoke: shards {1,2,4} equivalent, %llu frames\n",
              static_cast<unsigned long long>(anchor.totals.frames_sent));
  return 0;
}

}  // namespace

int main() {
  const char* smoke = std::getenv("DIKNN_PDES_SMOKE");
  if (smoke != nullptr && std::strcmp(smoke, "1") == 0) {
    return RunSmoke();
  }

  const std::vector<int> sizes =
      IntListFromEnv("DIKNN_BENCH_PDES_SIZES", {2000, 20000, 100000});
  const std::vector<int> shard_counts =
      IntListFromEnv("DIKNN_BENCH_PDES_SHARDS", {1, 2, 4, 8});
  const double duration = DurationFromEnv();

  std::printf("=== bench_pdes: %.2f simulated s, host has %u cpus ===\n",
              duration, std::thread::hardware_concurrency());
  std::printf("%-9s %-7s %10s %12s %10s %10s %8s %6s\n", "nodes",
              "shards", "frames", "frames/sec", "wall(s)", "busy(s)",
              "model", "ok");

  std::vector<Row> rows;
  bool all_ok = true;
  for (int n : sizes) {
    // The first shard count of the list anchors the invariant check for
    // this N; every later row must match it exactly.
    PsimStats::Invariants anchor{};
    bool have_anchor = false;
    for (int shards : shard_counts) {
      PsimStats::Invariants invariants{};
      const Row row = RunOne(n, shards, duration,
                             have_anchor ? &anchor : nullptr, &invariants);
      if (!have_anchor) {
        anchor = invariants;
        have_anchor = true;
      }
      all_ok = all_ok && row.invariant_ok;
      std::printf("%-9d %-7d %10llu %12.0f %10.3f %10.3f %7.2fx %6s\n",
                  row.nodes, row.shards,
                  static_cast<unsigned long long>(row.frames),
                  row.frames_per_s, row.wall_s, row.busy_sum_s,
                  row.speedup_model, row.invariant_ok ? "yes" : "NO");
      rows.push_back(row);
    }
  }

  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: traffic counters diverged across shard counts\n");
  }
  WriteJson(rows, all_ok);
  std::printf("wrote BENCH_pdes.json\n");
  return all_ok ? 0 : 1;
}
