// bench_pdes — parallel-engine scalability benchmark.
//
// Two sweeps over the conservative PDES substrate (src/psim):
//
//   substrate — beacon traffic only, node count x shard count at constant
//   field density; reports wall-clock frames/sec plus a load-balance
//   model of the achievable speedup.
//
//   query plane — a served DIKNN workload (GPSR forwarding, itinerary
//   traversal, the sink front end) over the same partitions; reports
//   goodput and the same busy-clock speedup model. On every row the
//   partition-invariant traffic counters — and, on query rows, the full
//   SloReport — are checked against the 1-shard anchor of the same N; a
//   silent determinism break fails the bench.
//
// Load imbalance is attributed, not inferred: every row carries a
// per-shard block with the busy clock, the barrier-wait share
// (wait / (busy + wait)), and the mailbox high-water marks, so "shard 3
// is the straggler because its inboxes run deep" is readable straight
// from BENCH_pdes.json.
//
// Machine-parallelism caveat, reported rather than hidden: the JSON
// carries host_cpus, and when the host has fewer cores than shards the
// wall-clock column cannot show a speedup. The `speedup_model` column —
// busy_sum / busy_max over the per-shard busy clocks, i.e. the speedup a
// perfectly parallel host would see given the actual load balance — is
// the honest scalability signal in that case.
//
// Env knobs:
//   DIKNN_BENCH_PDES_SIZES   comma-separated N (default 2000,20000,100000)
//   DIKNN_BENCH_PDES_QUERY_SIZES  N for the query sweep (default 2000,8000)
//   DIKNN_BENCH_PDES_SHARDS  comma-separated shard counts (default 1,2,4,8)
//   DIKNN_BENCH_PDES_DURATION  simulated seconds per run (default 0.5)
//   DIKNN_PDES_SMOKE=1       run the small shard-equivalence smoke only
//                            (used by scripts/check_all.sh); exits
//                            nonzero on any counter mismatch.
//   DIKNN_PDES_QUERY_SMOKE=1 run the query-plane smoke only: a served
//                            workload at --shards 4 must produce goodput
//                            > 0 with SloReport and counters byte-equal
//                            to --shards 1.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "psim/engine.h"

#include "bench_common.h"

namespace {

using namespace diknn;

std::vector<int> IntListFromEnv(const char* name,
                                std::vector<int> defaults) {
  const char* env = std::getenv(name);
  if (env == nullptr) return defaults;
  std::vector<int> values;
  for (const char* p = env; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    if (v > 0) values.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return values.empty() ? defaults : values;
}

double DurationFromEnv() {
  const char* env = std::getenv("DIKNN_BENCH_PDES_DURATION");
  const double d = env != nullptr ? std::atof(env) : 0.0;
  return d > 0.0 ? d : 0.5;
}

PsimConfig ConfigFor(int nodes, int shards, double duration) {
  PsimConfig config;
  config.node_count = nodes;
  // Constant density: scale the paper's 115x115 m / 200-node field.
  const double side = 115.0 * std::sqrt(nodes / 200.0);
  config.field = Rect::Field(side, side);
  config.shards = shards;
  config.duration = duration;
  config.seed = 99;
  return config;
}

// The query sweep's served workload: concurrent mixed-class queries with
// deadlines, admission control, caching, and coalescing — the serving
// stack end to end, all of it crossing shard boundaries.
constexpr char kQuerySpec[] =
    "arrival@kind=poisson,rate=120;mix@knn=50,window=25,aggregate=25;"
    "k@lo=4,hi=12;deadline@s=1.0;admit@inflight=48,queue=32;"
    "cache@ttl=0.4;coalesce@window=0.15";

PsimConfig QueryConfigFor(int nodes, int shards, double duration) {
  PsimConfig config = ConfigFor(nodes, shards, duration);
  config.beacon_interval = 0.1;
  config.loss_rate = 0.02;
  config.query.enabled = true;
  std::string error;
  const auto spec = WorkloadSpec::Parse(kQuerySpec, &error);
  if (!spec.has_value()) {
    std::fprintf(stderr, "bench_pdes: bad query spec: %s\n",
                 error.c_str());
    std::exit(1);
  }
  config.query.spec = *spec;
  config.query.sink = 0;
  config.query.warmup = 0.2;
  config.query.horizon = duration;
  return config;
}

struct ShardDetail {
  double busy_s = 0.0;
  double barrier_wait_s = 0.0;
  double wait_share = 0.0;  ///< wait / (busy + wait); imbalance signal.
  uint64_t frames_hwm = 0;
  uint64_t queries_hwm = 0;
  uint64_t migrations_hwm = 0;
};

struct Row {
  int nodes = 0;
  int shards_requested = 0;
  int shards = 0;
  uint64_t windows = 0;
  uint64_t frames = 0;
  double wall_s = 0.0;
  double frames_per_s = 0.0;
  double busy_sum_s = 0.0;
  double busy_max_s = 0.0;
  double speedup_model = 0.0;
  double efficiency_model = 0.0;
  double max_wait_share = 0.0;
  uint64_t max_queries_hwm = 0;
  std::vector<ShardDetail> per_shard;
  // Query-sweep extras (zero on substrate rows).
  uint64_t issued = 0;
  uint64_t completed = 0;
  double goodput_qps = 0.0;
  uint64_t qp_hops = 0;
  bool invariant_ok = true;
};

void FillShardDetail(const PsimResult& r, Row* row) {
  for (const PsimStats& s : r.shard_stats) {
    ShardDetail d;
    d.busy_s = s.busy_s;
    d.barrier_wait_s = s.barrier_wait_s;
    const double denom = s.busy_s + s.barrier_wait_s;
    d.wait_share = denom > 0.0 ? s.barrier_wait_s / denom : 0.0;
    d.frames_hwm = s.frames_mailbox_hwm;
    d.queries_hwm = s.queries_mailbox_hwm;
    d.migrations_hwm = s.migrations_mailbox_hwm;
    row->busy_sum_s += s.busy_s;
    row->busy_max_s = std::max(row->busy_max_s, s.busy_s);
    row->max_wait_share = std::max(row->max_wait_share, d.wait_share);
    row->max_queries_hwm = std::max(row->max_queries_hwm, d.queries_hwm);
    row->per_shard.push_back(d);
  }
  row->speedup_model = row->busy_max_s > 0.0
                           ? row->busy_sum_s / row->busy_max_s
                           : static_cast<double>(r.shards);
  row->efficiency_model = row->speedup_model / r.shards;
}

Row RunOne(const PsimConfig& config,
           const PsimStats::Invariants* anchor,
           const std::string* slo_anchor,
           PsimStats::Invariants* invariants_out,
           std::string* slo_out) {
  const PsimResult r = RunPsim(config);
  *invariants_out = r.totals.InvariantCounters();
  *slo_out = r.query_ran ? r.slo.ToJson() : std::string();
  Row row;
  row.nodes = config.node_count;
  row.shards_requested = config.shards;
  row.shards = r.shards;
  row.windows = r.windows;
  row.frames = r.totals.frames_sent;
  row.wall_s = r.wall_s;
  row.frames_per_s =
      static_cast<double>(row.frames) / std::max(r.wall_s, 1e-9);
  FillShardDetail(r, &row);
  if (r.query_ran) {
    row.issued = r.slo.issued;
    row.completed = r.slo.completed;
    row.goodput_qps = r.slo.GoodputQps();
    row.qp_hops = r.totals.qp.hops;
  }
  row.invariant_ok =
      (anchor == nullptr || r.totals.InvariantCounters() == *anchor) &&
      (slo_anchor == nullptr || *slo_out == *slo_anchor);
  return row;
}

void WriteRows(std::ofstream& out, const std::vector<Row>& rows,
               bool query) {
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"nodes\": " << r.nodes << ", \"shards\": " << r.shards
        << ", \"shards_requested\": " << r.shards_requested
        << ", \"windows\": " << r.windows << ", \"frames\": " << r.frames
        << ", \"wall_s\": " << r.wall_s
        << ", \"frames_per_s\": " << r.frames_per_s
        << ", \"busy_sum_s\": " << r.busy_sum_s
        << ", \"busy_max_s\": " << r.busy_max_s
        << ", \"speedup_model\": " << r.speedup_model
        << ", \"efficiency_model\": " << r.efficiency_model;
    if (query) {
      out << ", \"issued\": " << r.issued
          << ", \"completed\": " << r.completed
          << ", \"goodput_qps\": " << r.goodput_qps
          << ", \"qp_hops\": " << r.qp_hops;
    }
    out << ", \"invariant_ok\": " << (r.invariant_ok ? "true" : "false")
        << ",\n     \"per_shard\": [";
    for (size_t s = 0; s < r.per_shard.size(); ++s) {
      const ShardDetail& d = r.per_shard[s];
      out << (s > 0 ? ", " : "") << "{\"busy_s\": " << d.busy_s
          << ", \"barrier_wait_s\": " << d.barrier_wait_s
          << ", \"wait_share\": " << d.wait_share
          << ", \"frames_hwm\": " << d.frames_hwm
          << ", \"queries_hwm\": " << d.queries_hwm
          << ", \"migrations_hwm\": " << d.migrations_hwm << "}";
    }
    out << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
}

void WriteJson(const std::vector<Row>& rows,
               const std::vector<Row>& query_rows, bool all_ok) {
  std::ofstream out("BENCH_pdes.json");
  out << "{\n  \"bench\": \"pdes\",\n  " << bench::ProvenanceJson()
      << ",\n  \"equivalent\": " << (all_ok ? "true" : "false")
      << ",\n  \"results\": [\n";
  WriteRows(out, rows, /*query=*/false);
  out << "  ],\n  \"query_results\": [\n";
  WriteRows(out, query_rows, /*query=*/true);
  out << "  ]\n}\n";
}

// Shard-equivalence smoke for scripts/check_all.sh: a short dense run on
// a field wide enough for four genuine strips; any drift in the
// partition-invariant counters or the exchange balance is a hard fail.
int RunSmoke() {
  PsimConfig config;
  config.node_count = 768;
  config.field = Rect::Field(560.0, 115.0);
  config.beacon_interval = 0.1;
  config.loss_rate = 0.05;
  config.duration = 0.6;
  config.seed = 42;

  config.shards = 1;
  const PsimResult anchor = RunPsim(config);
  if (anchor.totals.frames_sent == 0) {
    std::fprintf(stderr, "PDES smoke: anchor run sent no frames\n");
    return 1;
  }
  for (int shards : {2, 4}) {
    config.shards = shards;
    const PsimResult r = RunPsim(config);
    if (r.shards != shards) {
      std::fprintf(stderr, "PDES smoke: wanted %d shards, got %d\n",
                   shards, r.shards);
      return 1;
    }
    if (!(r.totals.InvariantCounters() ==
          anchor.totals.InvariantCounters())) {
      std::fprintf(stderr,
                   "PDES smoke: traffic counters diverged at %d shards "
                   "(frames %llu vs %llu, delivered %llu vs %llu)\n",
                   shards,
                   static_cast<unsigned long long>(r.totals.frames_sent),
                   static_cast<unsigned long long>(
                       anchor.totals.frames_sent),
                   static_cast<unsigned long long>(
                       r.totals.receptions_delivered),
                   static_cast<unsigned long long>(
                       anchor.totals.receptions_delivered));
      return 1;
    }
    if (r.totals.boundary_frames != r.totals.foreign_frames ||
        r.totals.migrations_out != r.totals.migrations_in ||
        r.totals.audit_mismatches != 0) {
      std::fprintf(stderr,
                   "PDES smoke: exchange imbalance at %d shards\n",
                   shards);
      return 1;
    }
    bool allocs_clean = true;
    for (const PsimStats& s : r.shard_stats) {
      allocs_clean = allocs_clean && s.steady_allocs == 0;
    }
    if (!allocs_clean) {
      std::fprintf(stderr,
                   "PDES smoke: steady-state allocations at %d shards\n",
                   shards);
      return 1;
    }
  }
  std::printf("PDES smoke: shards {1,2,4} equivalent, %llu frames\n",
              static_cast<unsigned long long>(anchor.totals.frames_sent));
  return 0;
}

// Query-plane smoke (DIKNN_PDES_QUERY_SMOKE=1): a served DIKNN workload
// at --shards 4 must complete queries (goodput > 0) with the SloReport
// and every partition-invariant counter byte-equal to --shards 1.
int RunQuerySmoke() {
  PsimConfig config = QueryConfigFor(768, 1, 1.2);
  config.field = Rect::Field(560.0, 115.0);
  config.seed = 42;

  const PsimResult anchor = RunPsim(config);
  const std::string anchor_slo = anchor.slo.ToJson();
  if (anchor.slo.issued == 0 || anchor.slo.completed == 0) {
    std::fprintf(stderr,
                 "PDES query smoke: anchor completed no queries "
                 "(issued %llu)\n",
                 static_cast<unsigned long long>(anchor.slo.issued));
    return 1;
  }

  config.shards = 4;
  const PsimResult r = RunPsim(config);
  if (r.shards != 4) {
    std::fprintf(stderr, "PDES query smoke: wanted 4 shards, got %d\n",
                 r.shards);
    return 1;
  }
  if (!(r.slo.GoodputQps() > 0.0)) {
    std::fprintf(stderr, "PDES query smoke: zero goodput at 4 shards\n");
    return 1;
  }
  if (r.slo.ToJson() != anchor_slo) {
    std::fprintf(stderr,
                 "PDES query smoke: SloReport diverged at 4 shards\n%s\n"
                 "vs anchor\n%s\n",
                 r.slo.ToJson().c_str(), anchor_slo.c_str());
    return 1;
  }
  if (!(r.totals.InvariantCounters() ==
        anchor.totals.InvariantCounters())) {
    std::fprintf(stderr,
                 "PDES query smoke: traffic counters diverged at 4 "
                 "shards (qp hops %llu vs %llu)\n",
                 static_cast<unsigned long long>(r.totals.qp.hops),
                 static_cast<unsigned long long>(anchor.totals.qp.hops));
    return 1;
  }
  if (r.totals.qp.boundary_frames == 0 ||
      r.totals.qp.boundary_frames != r.totals.qp.foreign_frames) {
    std::fprintf(stderr,
                 "PDES query smoke: query mailbox imbalance "
                 "(boundary %llu, foreign %llu)\n",
                 static_cast<unsigned long long>(
                     r.totals.qp.boundary_frames),
                 static_cast<unsigned long long>(
                     r.totals.qp.foreign_frames));
    return 1;
  }
  std::printf(
      "PDES query smoke: shards {1,4} equivalent, %llu queries "
      "completed, %.1f q/s goodput, %llu cross-shard query frames\n",
      static_cast<unsigned long long>(r.slo.completed),
      r.slo.GoodputQps(),
      static_cast<unsigned long long>(r.totals.qp.boundary_frames));
  return 0;
}

std::vector<Row> Sweep(const char* name, const std::vector<int>& sizes,
                       const std::vector<int>& shard_counts,
                       double duration, bool query, bool* all_ok) {
  std::printf("--- %s sweep ---\n", name);
  std::printf("%-9s %-7s %10s %12s %10s %8s %6s %8s %6s\n", "nodes",
              "shards", query ? "queries" : "frames", "frames/sec",
              "wall(s)", "model", "wait%", "q-hwm", "ok");
  std::vector<Row> rows;
  for (int n : sizes) {
    // The first shard count of the list anchors the invariant check for
    // this N; every later row must match it exactly.
    PsimStats::Invariants anchor{};
    std::string slo_anchor;
    bool have_anchor = false;
    for (int shards : shard_counts) {
      const PsimConfig config = query
                                    ? QueryConfigFor(n, shards, duration)
                                    : ConfigFor(n, shards, duration);
      PsimStats::Invariants invariants{};
      std::string slo;
      const Row row =
          RunOne(config, have_anchor ? &anchor : nullptr,
                 have_anchor && query ? &slo_anchor : nullptr,
                 &invariants, &slo);
      if (!have_anchor) {
        anchor = invariants;
        slo_anchor = slo;
        have_anchor = true;
      }
      *all_ok = *all_ok && row.invariant_ok;
      std::printf(
          "%-9d %-7d %10llu %12.0f %10.3f %7.2fx %5.1f%% %8llu %6s\n",
          row.nodes, row.shards,
          static_cast<unsigned long long>(query ? row.completed
                                                : row.frames),
          row.frames_per_s, row.wall_s, row.speedup_model,
          100.0 * row.max_wait_share,
          static_cast<unsigned long long>(row.max_queries_hwm),
          row.invariant_ok ? "yes" : "NO");
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace

int main() {
  const char* smoke = std::getenv("DIKNN_PDES_SMOKE");
  if (smoke != nullptr && std::strcmp(smoke, "1") == 0) {
    return RunSmoke();
  }
  const char* query_smoke = std::getenv("DIKNN_PDES_QUERY_SMOKE");
  if (query_smoke != nullptr && std::strcmp(query_smoke, "1") == 0) {
    return RunQuerySmoke();
  }

  const std::vector<int> sizes =
      IntListFromEnv("DIKNN_BENCH_PDES_SIZES", {2000, 20000, 100000});
  const std::vector<int> query_sizes =
      IntListFromEnv("DIKNN_BENCH_PDES_QUERY_SIZES", {2000, 8000});
  const std::vector<int> shard_counts =
      IntListFromEnv("DIKNN_BENCH_PDES_SHARDS", {1, 2, 4, 8});
  const double duration = DurationFromEnv();

  std::printf("=== bench_pdes: %.2f simulated s, host has %u cpus ===\n",
              duration, std::thread::hardware_concurrency());

  bool all_ok = true;
  const std::vector<Row> rows = Sweep("substrate (beacons)", sizes,
                                      shard_counts, duration,
                                      /*query=*/false, &all_ok);
  const std::vector<Row> query_rows =
      Sweep("query plane (served DIKNN workload)", query_sizes,
            shard_counts, std::max(duration, 1.0), /*query=*/true,
            &all_ok);

  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: traffic counters diverged across shard counts\n");
  }
  WriteJson(rows, query_rows, all_ok);
  std::printf("wrote BENCH_pdes.json\n");
  return all_ok ? 0 : 1;
}
