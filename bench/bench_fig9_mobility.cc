// Fig. 9 — Impact of mobility (paper Section 5.4).
//
// Varies the random-waypoint maximum speed mu_max from 5 to 30 m/s with
// k = 40, comparing DIKNN, KPT+KNNB and Peer-tree on latency, energy and
// pre-/post-accuracy.
//
// Expected shape (paper): DIKNN stays flat on all four metrics
// (infrastructure-free itineraries shrug off topology churn); Peer-tree's
// energy climbs rapidly (MBR-crossing registrations) and its accuracy
// collapses (stale clusterhead records); KPT's latency grows with tree
// repair.

#include "bench_common.h"

int main() {
  using namespace diknn;
  using namespace diknn::bench;

  PrintHeader("Fig. 9: impact of mobility (mu_max sweep), k = 40",
              "mu_max");
  const ProtocolKind kinds[] = {ProtocolKind::kDiknn,
                                ProtocolKind::kKptKnnb,
                                ProtocolKind::kPeerTree};
  for (double mu : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    for (ProtocolKind kind : kinds) {
      ExperimentConfig config = PaperDefaults(kind);
      config.k = 40;
      config.network.max_speed = mu;
      PrintRow(std::to_string(static_cast<int>(mu)) + " m/s", kind,
               RunExperiment(config));
    }
  }
  return 0;
}
