// Fig. 8 — Scalability of DIKNN (paper Section 5.3).
//
// Varies k from 20 to 100 with mu_max = 10 m/s and exponential query
// arrivals (mean 4 s), comparing DIKNN, KPT+KNNB and Peer-tree on the
// paper's four panels: (a) query latency, (b) energy consumption,
// (c) post-accuracy, (d) pre-accuracy.
//
// Expected shape (paper): DIKNN's latency and energy grow slowest with k;
// KPT's energy spikes at large k (collision-driven retransmissions in the
// tree); Peer-tree's latency/energy are highest; DIKNN holds the highest
// accuracy while KPT's degrades as k grows.

#include "bench_common.h"

int main() {
  using namespace diknn;
  using namespace diknn::bench;

  PrintHeader("Fig. 8: impact of k (scalability), mu_max = 10 m/s", "k");
  const ProtocolKind kinds[] = {ProtocolKind::kDiknn,
                                ProtocolKind::kKptKnnb,
                                ProtocolKind::kPeerTree};
  for (int k : {20, 40, 60, 80, 100}) {
    for (ProtocolKind kind : kinds) {
      ExperimentConfig config = PaperDefaults(kind);
      config.k = k;
      PrintRow(std::to_string(k), kind, RunExperiment(config));
    }
  }
  return 0;
}
