// Itinerary window queries (the DIKNN lineage's ancestor protocol, ICDE
// 2006 [31]): sweep recall, latency and energy as the window grows, on
// the paper's default network.

#include <cstdio>
#include <unordered_set>

#include "bench_common.h"
#include "knn/window.h"

int main() {
  using namespace diknn;
  using namespace diknn::bench;

  std::printf("\n=== Itinerary window queries (reference [31] lineage) "
              "===\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "window", "latency(s)",
              "energy(J)", "recall", "nodes");

  const int samples = RunsFromEnv(3) * 4;
  for (double side : {20.0, 40.0, 60.0, 80.0}) {
    double lat = 0, energy = 0, recall = 0, nodes = 0;
    int n = 0;
    Rng rng(99 + static_cast<int>(side));
    for (int s = 0; s < samples; ++s) {
      NetworkConfig net_config;
      net_config.seed = 500 + s;
      net_config.static_node_count = 1;
      Network net(net_config);
      GpsrRouting gpsr(&net);
      ItineraryWindowQuery protocol(&net, &gpsr);
      gpsr.Install();
      protocol.Install();
      net.Warmup(2.5);

      const Point center = rng.PointInRect(
          Rect{{side / 2, side / 2},
               {115.0 - side / 2, 115.0 - side / 2}});
      const Rect window{{center.x - side / 2, center.y - side / 2},
                        {center.x + side / 2, center.y + side / 2}};

      std::unordered_set<NodeId> truth;
      for (int i = 0; i < net.size(); ++i) {
        if (window.Contains(net.node(i)->Position())) truth.insert(i);
      }
      const double e0 = net.TotalEnergy(EnergyCategory::kQuery);
      bool done = false;
      WindowResult result;
      protocol.IssueQuery(0, window, [&](const WindowResult& r) {
        done = true;
        result = r;
      });
      while (!done && net.sim().Now() < 40.0) {
        net.sim().RunUntil(net.sim().Now() + 0.25);
      }
      if (!done) continue;

      int hits = 0;
      for (const KnnCandidate& c : result.nodes) {
        if (truth.contains(c.id)) ++hits;
      }
      lat += result.Latency();
      energy += net.TotalEnergy(EnergyCategory::kQuery) - e0;
      recall += truth.empty()
                    ? 1.0
                    : static_cast<double>(hits) / truth.size();
      nodes += static_cast<double>(result.nodes.size());
      ++n;
    }
    if (n == 0) continue;
    std::printf("%4.0fx%-5.0f %10.2f %10.3f %9.0f%% %10.1f\n", side, side,
                lat / n, energy / n, 100 * recall / n, nodes / n);
    std::fflush(stdout);
  }
  std::printf("\nrecall is scored against issue-time membership; the\n"
              "single serpentine's latency grows with window area, so\n"
              "mobility churns large windows badly — exactly the\n"
              "serialization problem DIKNN's concurrent sector\n"
              "itineraries were designed to remove (Section 3.3).\n");
  return 0;
}
