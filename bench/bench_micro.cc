// Microbenchmarks (google-benchmark) for the library's hot paths:
// KNNB estimation, itinerary geometry, Gabriel planarization, R-tree
// operations, the discrete-event queue, flat-map churn, the frame pool,
// and ground-truth KNN scans.
//
// Before the benchmark loop runs, main() executes the steady-state
// allocation gate: two identically-seeded DIKNN simulations whose
// allocation counters are reset at the midpoint of each run. The gate
// asserts (a) the packet plane performs zero transient allocations per
// frame once warm (net counter), and (b) the per-query KNN churn is
// amortized-flat — a second run on warm thread-local pools never
// allocates more than the first (knn counter). Counter semantics
// (capacity vs transient attribution) are documented in
// docs/PACKET_PLANE.md. DIKNN_MICRO_SMOKE=1 shrinks the benchmark loop
// to a seconds-long CI pass; the gate always runs at full strength.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/rtree.h"
#include "core/flat_map.h"
#include "core/rng.h"
#include "harness/experiment.h"
#include "knn/itinerary.h"
#include "knn/knnb.h"
#include "net/packet_pool.h"
#include "psim/engine.h"
#include "routing/planarize.h"
#include "sim/simulator.h"

namespace diknn {
namespace {

std::vector<RouteHopInfo> MakeList(int hops) {
  std::vector<RouteHopInfo> list;
  for (int i = 0; i < hops; ++i) {
    list.push_back({{i * 15.0, 0.0}, 12});
  }
  return list;
}

void BM_Knnb(benchmark::State& state) {
  const auto list = MakeList(static_cast<int>(state.range(0)));
  const Point q{state.range(0) * 15.0, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Knnb(list, q, 20.0, 40, 200.0));
  }
}
BENCHMARK(BM_Knnb)->Arg(8)->Arg(32)->Arg(128);

void BM_ItineraryConstruction(benchmark::State& state) {
  ItineraryParams params;
  params.q = {50, 50};
  params.radius = static_cast<double>(state.range(0));
  params.num_sectors = 8;
  params.width = DefaultItineraryWidth(20.0);
  for (auto _ : state) {
    Itinerary it(params);
    benchmark::DoNotOptimize(it.TotalLength());
  }
}
BENCHMARK(BM_ItineraryConstruction)->Arg(40)->Arg(100)->Arg(400);

void BM_ItineraryPointAt(benchmark::State& state) {
  ItineraryParams params;
  params.q = {50, 50};
  params.radius = 100.0;
  params.num_sectors = 8;
  params.width = DefaultItineraryWidth(20.0);
  const Itinerary it(params);
  double s = 0.0;
  for (auto _ : state) {
    s += 7.3;
    if (s > it.TotalLength()) s = 0.0;
    benchmark::DoNotOptimize(it.PointAt(s));
  }
}
BENCHMARK(BM_ItineraryPointAt);

void BM_GabrielPlanarization(benchmark::State& state) {
  Rng rng(42);
  std::vector<NeighborEntry> neighbors;
  for (int i = 0; i < state.range(0); ++i) {
    NeighborEntry e;
    e.id = i;
    e.position = rng.PointInDisk({0, 0}, 20.0);
    neighbors.push_back(e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(GabrielNeighbors({0, 0}, neighbors));
  }
}
BENCHMARK(BM_GabrielPlanarization)->Arg(10)->Arg(20)->Arg(40);

void BM_RTreeInsert(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    RTree tree(8);
    std::vector<Point> pts;
    for (int i = 0; i < state.range(0); ++i) {
      pts.push_back(rng.PointInRect({{0, 0}, {1000, 1000}}));
    }
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(i, pts[i]);
    }
    benchmark::DoNotOptimize(tree.Size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert)->Arg(100)->Arg(1000);

void BM_RTreeKnn(benchmark::State& state) {
  Rng rng(8);
  RTree tree(8);
  for (int i = 0; i < 5000; ++i) {
    tree.Insert(i, rng.PointInRect({{0, 0}, {1000, 1000}}));
  }
  for (auto _ : state) {
    const Point q = rng.PointInRect({{0, 0}, {1000, 1000}});
    benchmark::DoNotOptimize(tree.Knn(q, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Rng rng(3);
    int fired = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.ScheduleAt(rng.NextDouble() * 100.0, [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void BM_LuneArea(benchmark::State& state) {
  double d = 0.0;
  for (auto _ : state) {
    d += 0.37;
    if (d > 40.0) d = 0.1;
    benchmark::DoNotOptimize(LuneArea(20.0, d));
  }
}
BENCHMARK(BM_LuneArea);

// Per-query container churn: the insert/find/erase cycle every query's
// dedup set and collection window performs, on a table that has reached
// its steady-state capacity. Compare against the node-based standard
// container it replaced.
void BM_FlatMapChurn(benchmark::State& state) {
  FlatMap<uint64_t, int> map;
  const uint64_t window = static_cast<uint64_t>(state.range(0));
  uint64_t next = 0;
  // Warm to steady-state occupancy so the loop measures reuse, not growth.
  for (; next < window; ++next) map.InsertOrAssign(next, static_cast<int>(next));
  for (auto _ : state) {
    map.InsertOrAssign(next, static_cast<int>(next));
    benchmark::DoNotOptimize(map.find(next - window / 2));
    map.erase(next - window);
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapChurn)->Arg(16)->Arg(256)->Arg(4096);

void BM_StdUnorderedChurn(benchmark::State& state) {
  std::unordered_map<uint64_t, int> map;
  const uint64_t window = static_cast<uint64_t>(state.range(0));
  uint64_t next = 0;
  for (; next < window; ++next) map[next] = static_cast<int>(next);
  for (auto _ : state) {
    map[next] = static_cast<int>(next);
    benchmark::DoNotOptimize(map.find(next - window / 2));
    map.erase(next - window);
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdUnorderedChurn)->Arg(16)->Arg(256)->Arg(4096);

// Frame-pool hot path: the acquire/release cycle the channel performs
// once per transmitted frame, with a bounded set of frames in flight.
// After the first lap the slab never grows, so the loop is
// allocation-free.
struct PooledFrame {
  std::vector<uint64_t> flags;
  void Reuse() { flags.clear(); }
};

void BM_FramePoolCycle(benchmark::State& state) {
  FramePool<PooledFrame> pool;
  const size_t live = static_cast<size_t>(state.range(0));
  std::vector<FramePool<PooledFrame>::Handle> held;
  held.reserve(live);
  for (auto _ : state) {
    held.push_back(pool.Acquire());
    if (held.size() == live) {
      for (const auto h : held) pool.Release(h);
      held.clear();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FramePoolCycle)->Arg(8)->Arg(64);

// ---------------------------------------------------------------------------
// Steady-state allocation gate (runs before the benchmark loop).

struct GateWindow {
  uint64_t net_allocs = 0;   ///< Transient packet-plane allocations.
  uint64_t knn_allocs = 0;   ///< Transient per-query protocol allocations.
  uint64_t frames = 0;       ///< Frames sent in the measured half.
  int completions = 0;
};

// One seeded DIKNN run; both counters are reset at the midpoint so only
// the steady-state (post-warm-up, post-capacity-growth) half is measured.
GateWindow RunGateOnce(uint64_t seed) {
  ExperimentConfig config;
  config.network.node_count = 150;
  config.network.field = Rect::Field(100, 100);
  config.k = 20;
  config.duration = 20.0;
  config.query_interval_mean = 0.5;

  ProtocolStack stack(config, seed);
  Network& net = stack.network();
  net.Warmup(config.warmup);

  Rng rng(seed);
  GateWindow w;
  const SimTime deadline = net.sim().Now() + config.duration;
  std::function<void()> issue_next = [&]() {
    const SimTime next =
        net.sim().Now() + rng.Exponential(config.query_interval_mean);
    if (next >= deadline) return;
    net.sim().ScheduleAt(next, [&]() {
      const Point q = rng.PointInRect(config.network.field);
      stack.protocol().IssueQuery(0, q, config.k,
                                  [&](const KnnResult&) { ++w.completions; });
      issue_next();
    });
  };
  issue_next();

  uint64_t frames_baseline = 0;
  net.sim().ScheduleAt(net.sim().Now() + config.duration * 0.5, [&]() {
    net.channel().net_allocs().Reset();
    stack.protocol().ResetAllocCounters();
    frames_baseline = net.channel().stats().frames_sent;
  });
  net.sim().RunUntil(deadline + config.drain);

  w.net_allocs = net.channel().net_allocs().allocations;
  w.knn_allocs = stack.protocol().alloc_counters().allocations;
  w.frames = net.channel().stats().frames_sent - frames_baseline;
  return w;
}

// Returns 0 on pass. The two runs share one process, so the second run's
// thread-local pools start warm: its knn churn must not exceed the first
// run's (amortized-flat), and the net counter must be exactly zero in
// both (transient-free per frame).
int RunAllocationGate() {
  std::printf("allocation gate: two midpoint-reset DIKNN runs...\n");
  const GateWindow first = RunGateOnce(42);
  const GateWindow second = RunGateOnce(42);
  std::printf(
      "  run1: net=%llu knn=%llu frames=%llu completions=%d\n"
      "  run2: net=%llu knn=%llu frames=%llu completions=%d\n",
      static_cast<unsigned long long>(first.net_allocs),
      static_cast<unsigned long long>(first.knn_allocs),
      static_cast<unsigned long long>(first.frames), first.completions,
      static_cast<unsigned long long>(second.net_allocs),
      static_cast<unsigned long long>(second.knn_allocs),
      static_cast<unsigned long long>(second.frames), second.completions);
  int failures = 0;
  if (first.frames < 1000 || first.completions < 5) {
    std::fprintf(stderr,
                 "allocation gate: scenario too quiet to be meaningful\n");
    ++failures;
  }
  if (first.net_allocs != 0 || second.net_allocs != 0) {
    std::fprintf(stderr,
                 "allocation gate FAILED: packet plane made transient "
                 "allocations in steady state (want 0 per frame)\n");
    ++failures;
  }
  if (second.knn_allocs > first.knn_allocs) {
    std::fprintf(stderr,
                 "allocation gate FAILED: knn churn grew on warm pools "
                 "(%llu -> %llu); per-query allocations are not "
                 "amortized-flat\n",
                 static_cast<unsigned long long>(first.knn_allocs),
                 static_cast<unsigned long long>(second.knn_allocs));
    ++failures;
  }
  if (failures == 0) std::printf("allocation gate: PASS\n");
  return failures;
}

// Sharded-engine extension of the gate: with the query plane enabled and
// frames genuinely crossing shard mailboxes, every worker must still be
// allocation-free in steady state (second half of the run) — the
// migration scratch, qslot rings, and mailbox rings all pre-reserve.
int RunShardedAllocationGate() {
  std::printf("sharded allocation gate: query plane at 4 shards...\n");
  PsimConfig config;
  config.node_count = 768;
  config.field = Rect::Field(560.0, 115.0);
  config.beacon_interval = 0.1;
  config.loss_rate = 0.02;
  config.duration = 1.2;
  config.seed = 42;
  config.shards = 4;
  config.query.enabled = true;
  std::string error;
  const auto spec = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=120;mix@knn=50,window=25,aggregate=25;"
      "k@lo=4,hi=12;deadline@s=1.0;admit@inflight=48,queue=32;"
      "cache@ttl=0.4;coalesce@window=0.15",
      &error);
  if (!spec.has_value()) {
    std::fprintf(stderr, "sharded allocation gate: bad spec: %s\n",
                 error.c_str());
    return 1;
  }
  config.query.spec = *spec;
  config.query.warmup = 0.2;
  config.query.horizon = config.duration;

  const PsimResult r = RunPsim(config);
  int failures = 0;
  if (r.totals.qp.boundary_frames == 0 || r.slo.completed == 0) {
    std::fprintf(stderr,
                 "sharded allocation gate: scenario too quiet (no "
                 "cross-shard query traffic)\n");
    ++failures;
  }
  for (size_t s = 0; s < r.shard_stats.size(); ++s) {
    if (r.shard_stats[s].steady_allocs != 0) {
      std::fprintf(stderr,
                   "sharded allocation gate FAILED: shard %zu made %llu "
                   "steady-state allocations with query traffic (want 0 "
                   "per worker)\n",
                   s,
                   static_cast<unsigned long long>(
                       r.shard_stats[s].steady_allocs));
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf(
        "sharded allocation gate: PASS (%llu cross-shard query frames, "
        "%llu queries, 0 allocs/worker)\n",
        static_cast<unsigned long long>(r.totals.qp.boundary_frames),
        static_cast<unsigned long long>(r.slo.completed));
  }
  return failures;
}

}  // namespace
}  // namespace diknn

int main(int argc, char** argv) {
  if (diknn::RunAllocationGate() != 0) return 1;
  if (diknn::RunShardedAllocationGate() != 0) return 1;

  // DIKNN_MICRO_SMOKE=1: keep the benchmark loop to a seconds-long pass
  // (the gate above is the check; the numbers are not meaningful).
  std::vector<char*> args(argv, argv + argc);
  std::string smoke_min_time = "--benchmark_min_time=0.01";
  const char* smoke = std::getenv("DIKNN_MICRO_SMOKE");
  if (smoke != nullptr && smoke[0] == '1') {
    args.push_back(smoke_min_time.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
