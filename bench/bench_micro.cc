// Microbenchmarks (google-benchmark) for the library's hot paths:
// KNNB estimation, itinerary geometry, Gabriel planarization, R-tree
// operations, the discrete-event queue, and ground-truth KNN scans.

#include <benchmark/benchmark.h>

#include "baselines/rtree.h"
#include "core/rng.h"
#include "knn/itinerary.h"
#include "knn/knnb.h"
#include "routing/planarize.h"
#include "sim/simulator.h"

namespace diknn {
namespace {

std::vector<RouteHopInfo> MakeList(int hops) {
  std::vector<RouteHopInfo> list;
  for (int i = 0; i < hops; ++i) {
    list.push_back({{i * 15.0, 0.0}, 12});
  }
  return list;
}

void BM_Knnb(benchmark::State& state) {
  const auto list = MakeList(static_cast<int>(state.range(0)));
  const Point q{state.range(0) * 15.0, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Knnb(list, q, 20.0, 40, 200.0));
  }
}
BENCHMARK(BM_Knnb)->Arg(8)->Arg(32)->Arg(128);

void BM_ItineraryConstruction(benchmark::State& state) {
  ItineraryParams params;
  params.q = {50, 50};
  params.radius = static_cast<double>(state.range(0));
  params.num_sectors = 8;
  params.width = DefaultItineraryWidth(20.0);
  for (auto _ : state) {
    Itinerary it(params);
    benchmark::DoNotOptimize(it.TotalLength());
  }
}
BENCHMARK(BM_ItineraryConstruction)->Arg(40)->Arg(100)->Arg(400);

void BM_ItineraryPointAt(benchmark::State& state) {
  ItineraryParams params;
  params.q = {50, 50};
  params.radius = 100.0;
  params.num_sectors = 8;
  params.width = DefaultItineraryWidth(20.0);
  const Itinerary it(params);
  double s = 0.0;
  for (auto _ : state) {
    s += 7.3;
    if (s > it.TotalLength()) s = 0.0;
    benchmark::DoNotOptimize(it.PointAt(s));
  }
}
BENCHMARK(BM_ItineraryPointAt);

void BM_GabrielPlanarization(benchmark::State& state) {
  Rng rng(42);
  std::vector<NeighborEntry> neighbors;
  for (int i = 0; i < state.range(0); ++i) {
    NeighborEntry e;
    e.id = i;
    e.position = rng.PointInDisk({0, 0}, 20.0);
    neighbors.push_back(e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(GabrielNeighbors({0, 0}, neighbors));
  }
}
BENCHMARK(BM_GabrielPlanarization)->Arg(10)->Arg(20)->Arg(40);

void BM_RTreeInsert(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    RTree tree(8);
    std::vector<Point> pts;
    for (int i = 0; i < state.range(0); ++i) {
      pts.push_back(rng.PointInRect({{0, 0}, {1000, 1000}}));
    }
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(i, pts[i]);
    }
    benchmark::DoNotOptimize(tree.Size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert)->Arg(100)->Arg(1000);

void BM_RTreeKnn(benchmark::State& state) {
  Rng rng(8);
  RTree tree(8);
  for (int i = 0; i < 5000; ++i) {
    tree.Insert(i, rng.PointInRect({{0, 0}, {1000, 1000}}));
  }
  for (auto _ : state) {
    const Point q = rng.PointInRect({{0, 0}, {1000, 1000}});
    benchmark::DoNotOptimize(tree.Knn(q, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Rng rng(3);
    int fired = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.ScheduleAt(rng.NextDouble() * 100.0, [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void BM_LuneArea(benchmark::State& state) {
  double d = 0.0;
  for (auto _ : state) {
    d += 0.37;
    if (d > 40.0) d = 0.1;
    benchmark::DoNotOptimize(LuneArea(20.0, d));
  }
}
BENCHMARK(BM_LuneArea);

}  // namespace
}  // namespace diknn

BENCHMARK_MAIN();
