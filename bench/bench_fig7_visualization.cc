// Fig. 7 — DIKNN execution over spatially irregular deployments.
//
// The paper applies DIKNN to real-world caribou distributions from Gros
// Morne National Park and visualizes (a) the concurrent itinerary
// traversals and (b) itinerary voids bypassed by perimeter forwarding,
// reporting a 0.2%-1% accuracy loss from nodes isolated within a sector.
//
// We substitute a clustered synthetic field (Gaussian herds + uniform
// background; see DESIGN.md) and reproduce the same qualitative outputs:
// an ASCII rendering of the Q-node traversal per sector, the void /
// skip-ahead counts, and the accuracy cost of isolated nodes.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

namespace {

using namespace diknn;

constexpr int kGridW = 100;
constexpr int kGridH = 46;

struct Canvas {
  std::vector<std::string> rows;
  Rect field;

  explicit Canvas(const Rect& f)
      : rows(kGridH, std::string(kGridW, ' ')), field(f) {}

  void Plot(const Point& p, char c, bool overwrite = true) {
    const int x = static_cast<int>((p.x - field.min.x) / field.Width() *
                                   (kGridW - 1));
    const int y = static_cast<int>((p.y - field.min.y) / field.Height() *
                                   (kGridH - 1));
    if (x < 0 || x >= kGridW || y < 0 || y >= kGridH) return;
    char& cell = rows[kGridH - 1 - y][x];
    if (overwrite || cell == ' ') cell = c;
  }

  void Print() const {
    for (const std::string& row : rows) std::printf("|%s|\n", row.c_str());
  }
};

}  // namespace

int main() {
  using namespace diknn;
  using namespace diknn::bench;

  std::printf("\n=== Fig. 7: DIKNN over a spatially irregular field ===\n");
  std::printf("(caribou trace substituted by clustered placement; see "
              "DESIGN.md)\n");

  // A large clustered deployment, k = 500-style relative to population:
  // 600 nodes in herds, querying for the 150 nearest.
  ExperimentConfig config;
  config.protocol = ProtocolKind::kDiknn;
  config.network.node_count = 600;
  config.network.field = Rect::Field(300, 300);
  config.network.placement = PlacementKind::kClustered;
  config.network.clusters.num_clusters = 6;
  config.network.clusters.sigma_fraction = 0.07;
  config.network.clusters.background_fraction = 0.10;
  config.network.max_speed = 5.0;
  config.diknn.query_timeout = 20.0;
  const int k = 150;

  ProtocolStack stack(config, /*seed=*/4242);
  Network& net = stack.network();
  net.Warmup(2.5);

  Canvas canvas(config.network.field);
  for (int i = 0; i < net.size(); ++i) {
    canvas.Plot(net.node(i)->Position(), '.', /*overwrite=*/false);
  }

  // Trace the itinerary: each sector's Q-node hops get a digit mark.
  std::map<int, int> hops_by_sector;
  stack.diknn()->set_hop_observer([&](uint64_t, int sector, Point p) {
    canvas.Plot(p, static_cast<char>('0' + (sector % 8)));
    ++hops_by_sector[sector];
  });

  // Query "around an arbitrary query point" within the herds: anchor q at
  // the most crowded node, mirroring the paper's caribou-rich region.
  Point q{150, 150};
  int best_degree = -1;
  for (int i = 0; i < net.size(); ++i) {
    const int degree =
        net.node(i)->neighbors().CountFresh(net.sim().Now());
    if (degree > best_degree) {
      best_degree = degree;
      q = net.node(i)->Position();
    }
  }
  canvas.Plot(q, 'Q');
  const auto truth = net.TrueKnn(q, k);

  double accuracy = 0.0;
  bool done = false;
  SimTime completed = 0;
  stack.protocol().IssueQuery(0, q, k, [&](const KnnResult& r) {
    done = true;
    completed = r.Latency();
    accuracy = Accuracy(r.CandidateIds(), net.TrueKnn(q, k));
  });
  while (!done && net.sim().Now() < 25.0) {
    net.sim().RunUntil(net.sim().Now() + 0.25);
  }

  std::printf("\n(a) concurrent itinerary traversals "
              "(digits = Q-nodes by sector, '.' = sensor, Q = query "
              "point)\n\n");
  canvas.Print();

  const DiknnStats& stats = stack.diknn()->stats();
  std::printf("\n(b) itinerary voids and perimeter-forwarding bypasses\n");
  std::printf("  Q-node hops          : %llu\n",
              static_cast<unsigned long long>(stats.qnode_hops));
  std::printf("  voids encountered    : %llu (bypassed by skipping along "
              "the conceptual path)\n",
              static_cast<unsigned long long>(stats.voids_encountered));
  std::printf("  sectors abandoned    : %llu\n",
              static_cast<unsigned long long>(stats.sectors_abandoned));
  std::printf("  boundary extensions  : %llu, truncations: %llu\n",
              static_cast<unsigned long long>(stats.boundary_extensions),
              static_cast<unsigned long long>(stats.boundary_truncations));
  std::printf("  query latency        : %.2f s, accuracy: %.1f%% "
              "(paper: isolated-node losses cost 0.2%%-1%%)\n",
              completed, accuracy * 100.0);

  std::printf("\nper-sector Q-node hops:");
  for (const auto& [sector, hops] : hops_by_sector) {
    std::printf(" s%d=%d", sector, hops);
  }
  std::printf("\n");
  return done ? 0 : 1;
}
