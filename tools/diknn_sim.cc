// diknn_sim — command-line experiment runner.
//
// Runs the paper's workload (Poisson query arrivals over a mobile sensor
// field) for any protocol and parameterization, printing a human-readable
// summary or CSV. The scriptable face of the library: everything the
// bench binaries sweep can be reproduced point-by-point from here.
//
//   $ diknn_sim --protocol diknn --k 40 --runs 5
//   $ diknn_sim --protocol kpt --speed 30 --csv
//   $ diknn_sim --protocol diknn --trace /tmp/frames.csv --runs 1

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "harness/experiment.h"
#include "harness/trace.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"

namespace {

using namespace diknn;

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "workload:\n"
      "  --protocol NAME   diknn | kpt | peertree | flooding | centralized"
      "  (default diknn)\n"
      "  --k N             neighbors per query (default 40)\n"
      "  --runs N          seeded repetitions (default 3; paper used 20)\n"
      "  --jobs N          worker threads across repetitions (default 1;\n"
      "                    metrics are bit-identical at any job count)\n"
      "  --shards N        worker threads inside each run (default 1 =\n"
      "                    the serial engine). > 1 tiles the field\n"
      "                    (strips, or a 2-D grid on narrow fields) on\n"
      "                    the conservative parallel engine (src/psim):\n"
      "                    beacons plus — with --workload — the full\n"
      "                    query plane; SLO report and traffic counters\n"
      "                    equal at any shard count; total threads =\n"
      "                    jobs x shards\n"
      "  --windowed        run the windowed parallel engine even at\n"
      "                    --shards 1 (the single-shard baseline for\n"
      "                    cross-shard comparisons)\n"
      "  --duration S      simulated seconds per run (default 100)\n"
      "  --seed N          base seed (default 42)\n"
      "  --interval S      mean query interval, exponential (default 4)\n"
      "\n"
      "network:\n"
      "  --nodes N         sensor count (default 200)\n"
      "  --field W         square field side in meters (default 115)\n"
      "  --speed MU        random-waypoint max speed m/s (default 10)\n"
      "  --range R         radio range in meters (default 20)\n"
      "  --loss P          packet loss rate 0..1 (default 0)\n"
      "  --placement NAME  uniform | grid | clustered (default uniform)\n"
      "  --mobility NAME   rwp | static | group (default rwp)\n"
      "\n"
      "diknn:\n"
      "  --sectors S       itinerary sectors (default 8)\n"
      "  --no-rendezvous   disable dynamic boundary adjustment\n"
      "  --gain G          mobility assurance gain (default 0.1)\n"
      "\n"
      "workload engine:\n"
      "  --workload SPEC   replace the paper's one-at-a-time generator\n"
      "                    with the query-serving engine; SPEC is\n"
      "                    section@key=val,...;... (see\n"
      "                    src/workload/workload_spec.h), e.g.\n"
      "                    \"arrival@kind=poisson,rate=8;k@lo=20;\n"
      "                    deadline@s=2;admit@inflight=64,queue=16\"\n"
      "                    Prints an SLO report (goodput, p50/p95/p99,\n"
      "                    miss/reject rates) after the runs.\n"
      "\n"
      "faults:\n"
      "  --faults SPEC     inject adverse events after warmup; SPEC is\n"
      "                    kind@t=S,key=val,...;... with kinds kill, revive,\n"
      "                    churn, ackloss, drop, dup, freeze, teleport\n"
      "                    (see src/faults/fault_plan.h), e.g.\n"
      "                    \"kill@t=5,count=2;ackloss@t=8,dur=2\"\n"
      "  --audit           audit per-query lifecycle state (DIKNN only):\n"
      "                    counts completions that leave residue and\n"
      "                    entries leaked past the drain\n"
      "\n"
      "output:\n"
      "  --csv             machine-readable one-line-per-run output\n"
      "  --trace FILE      write a per-frame CSV trace (first run only)\n"
      "  --trace-out FILE  write a Chrome/Perfetto trace JSON of the base\n"
      "                    seed's run (query span trees + critical paths);\n"
      "                    implies --trace-sample 1 unless set explicitly\n"
      "  --trace-sample R  fraction of queries traced, 0..1 (default 0)\n"
      "  --metrics-out FILE\n"
      "                    write the merged metrics registry (counters,\n"
      "                    gauges, histograms across all runs) as JSON\n"
      "  --ts-interval S   flight-recorder sampling cadence in simulated\n"
      "                    seconds (overrides the workload spec's\n"
      "                    timeseries@ clause; 0 disables)\n"
      "  --ts-capacity N   ring depth per series (default 512; the oldest\n"
      "                    samples fall off once full)\n"
      "  --ts-out FILE     write the base seed's flight recording; JSON\n"
      "                    (deterministic \"series\" section is\n"
      "                    byte-identical at any --jobs / --shards), or\n"
      "                    CSV when FILE ends in .csv. Also attaches the\n"
      "                    recording to --trace-out as Perfetto counter\n"
      "                    tracks.\n"
      "  --help            this text\n",
      argv0);
}

std::optional<ProtocolKind> ParseProtocol(const std::string& name) {
  if (name == "diknn") return ProtocolKind::kDiknn;
  if (name == "kpt") return ProtocolKind::kKptKnnb;
  if (name == "peertree") return ProtocolKind::kPeerTree;
  if (name == "flooding") return ProtocolKind::kFlooding;
  if (name == "centralized") return ProtocolKind::kCentralized;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig config;
  config.runs = 3;
  bool csv = false;
  std::string trace_path;
  std::string trace_out_path;
  std::string metrics_out_path;
  std::string ts_out_path;
  double trace_sample = -1.0;  // < 0 = not set on the command line.

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };

    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else if (arg == "--protocol") {
      const auto kind = ParseProtocol(next_value());
      if (!kind) {
        std::fprintf(stderr, "unknown protocol\n");
        return 2;
      }
      config.protocol = *kind;
    } else if (arg == "--k") {
      config.k = std::atoi(next_value());
    } else if (arg == "--runs") {
      config.runs = std::atoi(next_value());
    } else if (arg == "--jobs") {
      config.jobs = std::atoi(next_value());
    } else if (arg == "--shards") {
      config.shards = std::atoi(next_value());
    } else if (arg == "--windowed") {
      config.force_windowed = true;
    } else if (arg == "--duration") {
      config.duration = std::atof(next_value());
    } else if (arg == "--seed") {
      config.base_seed = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--interval") {
      config.query_interval_mean = std::atof(next_value());
    } else if (arg == "--nodes") {
      config.network.node_count = std::atoi(next_value());
    } else if (arg == "--field") {
      const double side = std::atof(next_value());
      config.network.field = Rect::Field(side, side);
    } else if (arg == "--speed") {
      config.network.max_speed = std::atof(next_value());
    } else if (arg == "--range") {
      config.network.radio_range_m = std::atof(next_value());
    } else if (arg == "--loss") {
      config.network.loss_rate = std::atof(next_value());
    } else if (arg == "--placement") {
      const std::string name = next_value();
      if (name == "uniform") {
        config.network.placement = PlacementKind::kUniform;
      } else if (name == "grid") {
        config.network.placement = PlacementKind::kGrid;
      } else if (name == "clustered") {
        config.network.placement = PlacementKind::kClustered;
      } else {
        std::fprintf(stderr, "unknown placement\n");
        return 2;
      }
    } else if (arg == "--mobility") {
      const std::string name = next_value();
      if (name == "rwp") {
        config.network.mobility = MobilityKind::kRandomWaypoint;
      } else if (name == "static") {
        config.network.mobility = MobilityKind::kStatic;
      } else if (name == "group") {
        config.network.mobility = MobilityKind::kGroup;
      } else {
        std::fprintf(stderr, "unknown mobility\n");
        return 2;
      }
    } else if (arg == "--sectors") {
      config.diknn.num_sectors = std::atoi(next_value());
    } else if (arg == "--no-rendezvous") {
      config.diknn.rendezvous = false;
    } else if (arg == "--gain") {
      config.diknn.assurance_gain = std::atof(next_value());
      config.diknn.mobility_assurance = config.diknn.assurance_gain > 0;
    } else if (arg == "--workload") {
      std::string error;
      const auto spec = WorkloadSpec::Parse(next_value(), &error);
      if (!spec) {
        std::fprintf(stderr, "bad --workload spec: %s\n", error.c_str());
        return 2;
      }
      config.workload = *spec;
    } else if (arg == "--faults") {
      std::string error;
      const auto plan = FaultPlan::Parse(next_value(), &error);
      if (!plan) {
        std::fprintf(stderr, "bad --faults spec: %s\n", error.c_str());
        return 2;
      }
      config.faults = *plan;
    } else if (arg == "--audit") {
      config.audit_lifecycle = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--trace") {
      trace_path = next_value();
    } else if (arg == "--trace-out") {
      trace_out_path = next_value();
    } else if (arg == "--trace-sample") {
      trace_sample = std::atof(next_value());
    } else if (arg == "--metrics-out") {
      metrics_out_path = next_value();
    } else if (arg == "--ts-interval") {
      config.ts_interval = std::atof(next_value());
    } else if (arg == "--ts-capacity") {
      const int cap = std::atoi(next_value());
      if (cap < 0) {
        std::fprintf(stderr, "--ts-capacity must be >= 0\n");
        return 2;
      }
      config.ts_capacity = cap;
    } else if (arg == "--ts-out") {
      ts_out_path = next_value();
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (config.k <= 0 || config.runs <= 0 ||
      config.network.node_count <= 0) {
    std::fprintf(stderr, "k, runs and nodes must be positive\n");
    return 2;
  }
  if (trace_sample >= 0.0) {
    if (trace_sample > 1.0) {
      std::fprintf(stderr, "--trace-sample must be in [0,1]\n");
      return 2;
    }
    config.trace_sample = trace_sample;
  } else if (!trace_out_path.empty()) {
    config.trace_sample = 1.0;  // A trace file without a rate means "all".
  }

  if (csv) {
    std::printf(
        "protocol,k,seed,queries,timeouts,latency_s,energy_j,pre_acc,"
        "post_acc,avg_degree,faults,lc_checks,lc_violations,leaked\n");
  } else {
    std::printf("%s: k=%d, %d run(s) x %.0fs, %d nodes on %.0fx%.0f m, "
                "mu_max=%.0f m/s\n",
                ProtocolName(config.protocol), config.k, config.runs,
                config.duration, config.network.node_count,
                config.network.field.Width(),
                config.network.field.Height(), config.network.max_speed);
  }

  if (!trace_path.empty()) {
    // Trace run: drive the stack manually so the recorder sees it.
    ProtocolStack stack(config, config.base_seed);
    TraceRecorder recorder(&stack.network());
    // One representative query instead of the whole workload.
    stack.network().Warmup(config.warmup);
    bool done = false;
    stack.protocol().IssueQuery(
        0, stack.network().config().field.Center(), config.k,
        [&](const KnnResult&) { done = true; });
    Simulator& sim = stack.network().sim();
    while (!done && sim.Now() < 30.0) sim.RunUntil(sim.Now() + 0.25);
    std::ofstream out(trace_path);
    recorder.WriteCsv(out);
    std::fprintf(stderr, "wrote %zu frames to %s\n",
                 recorder.entries().size(), trace_path.c_str());
  }

  if (!trace_out_path.empty()) {
    // Traced run of the base seed: export the query span trees as Chrome
    // trace-event JSON (loadable in Perfetto / chrome://tracing) and
    // print the slowest query's critical-path summary.
    TraceData trace;
    const RunMetrics traced = RunOnce(config, config.base_seed, nullptr,
                                      &trace);
    TraceSink sink(std::move(trace));
    // Flight-recorder series ride along as Perfetto counter tracks.
    sink.set_timeseries(&traced.ts);
    std::ofstream out(trace_out_path);
    sink.WriteChromeTrace(out);
    std::fprintf(stderr, "wrote %llu spans across %zu traced queries to %s\n",
                 static_cast<unsigned long long>(sink.data().stats.spans),
                 sink.critical_paths().size(), trace_out_path.c_str());
    if (!sink.critical_paths().empty()) {
      std::fprintf(stderr, "slowest: %s\n",
                   TraceSink::FormatCriticalPath(sink.critical_paths().front())
                       .c_str());
    }
  }

  const std::vector<RunMetrics> runs = RunExperimentRuns(config);
  if (!runs.empty() &&
      runs.front().shards_effective < runs.front().shards_requested) {
    std::fprintf(stderr,
                 "warning: --shards %d clamped to %d by the partition "
                 "geometry (field too small for that many tiles)\n",
                 runs.front().shards_requested,
                 runs.front().shards_effective);
  }
  for (int i = 0; i < static_cast<int>(runs.size()); ++i) {
    const uint64_t seed = config.base_seed + i;
    const RunMetrics& m = runs[i];
    if (csv) {
      std::printf("%s,%d,%llu,%d,%d,%.4f,%.4f,%.4f,%.4f,%.2f,"
                  "%llu,%llu,%llu,%llu\n",
                  ProtocolName(config.protocol), config.k,
                  static_cast<unsigned long long>(seed), m.queries,
                  m.timeouts, m.avg_latency, m.energy_joules,
                  m.avg_pre_accuracy, m.avg_post_accuracy, m.average_degree,
                  static_cast<unsigned long long>(m.faults_injected),
                  static_cast<unsigned long long>(m.lifecycle_checks),
                  static_cast<unsigned long long>(m.lifecycle_violations),
                  static_cast<unsigned long long>(m.leaked_entries));
    } else {
      std::printf("  run %d (seed %llu): %d queries, latency %.2fs, "
                  "energy %.3fJ, pre %.2f, post %.2f%s\n",
                  i, static_cast<unsigned long long>(seed), m.queries,
                  m.avg_latency, m.energy_joules, m.avg_pre_accuracy,
                  m.avg_post_accuracy,
                  m.timeouts > 0 ? " (timeouts)" : "");
      if (!config.faults.empty() || config.audit_lifecycle) {
        std::printf("    faults=%llu lifecycle: checks=%llu violations=%llu "
                    "leaked=%llu\n",
                    static_cast<unsigned long long>(m.faults_injected),
                    static_cast<unsigned long long>(m.lifecycle_checks),
                    static_cast<unsigned long long>(m.lifecycle_violations),
                    static_cast<unsigned long long>(m.leaked_entries));
      }
    }
    std::fflush(stdout);
  }

  if (!csv || !metrics_out_path.empty() || !ts_out_path.empty()) {
    const ExperimentMetrics agg = AggregateRuns(runs);
    if (!csv) {
      std::printf("mean: latency %.2f±%.2fs, energy %.3fJ, pre %.2f, "
                  "post %.2f, timeout rate %.0f%%\n",
                  agg.latency.mean, agg.latency.stddev, agg.energy.mean,
                  agg.pre_accuracy.mean, agg.post_accuracy.mean,
                  100 * agg.timeout_rate.mean);
      if (config.workload.has_value()) {
        std::printf("slo:  %s\n", agg.slo.Format().c_str());
      }
    }
    if (!metrics_out_path.empty()) {
      std::ofstream out(metrics_out_path);
      out << agg.obs.ToJson() << '\n';
      std::fprintf(stderr, "wrote merged metrics of %d run(s) to %s\n",
                   agg.runs, metrics_out_path.c_str());
    }
    if (!ts_out_path.empty()) {
      // The base seed's recording (runs[0]); independent of --jobs.
      std::ofstream out(ts_out_path);
      const bool as_csv =
          ts_out_path.size() >= 4 &&
          ts_out_path.compare(ts_out_path.size() - 4, 4, ".csv") == 0;
      if (as_csv) {
        agg.ts.WriteCsv(out);
      } else {
        agg.ts.WriteJson(out);
      }
      size_t samples = 0;
      for (const TimeSeries& s : agg.ts.series()) samples += s.size();
      std::fprintf(stderr, "wrote %zu series (%zu samples) to %s\n",
                   agg.ts.series().size(), samples, ts_out_path.c_str());
      if (agg.ts.series().empty()) {
        std::fprintf(stderr,
                     "note: flight recorder was disabled; pass "
                     "--ts-interval or a timeseries@ workload clause\n");
      }
    }
  }
  return 0;
}
