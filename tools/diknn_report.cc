// diknn-report — plain-text run report from the simulator's artifacts.
//
// Reads back the JSON the runner writes and renders the run the way an
// on-call engineer would want to see it: a sparkline table of every
// flight-recorder series, an SLO burn summary (where the deadline budget
// went, interval by interval), and the top critical-path contributors
// from the Chrome trace. No plotting stack required — the report is the
// terminal.
//
//   $ diknn-sim --workload "arrival@kind=poisson,rate=8;deadline@s=2"
//       --ts-interval 1 --ts-out ts.json --metrics-out m.json
//   $ diknn-report --ts ts.json --metrics m.json
//   $ diknn-report --ts ts.json --trace trace.json

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"

namespace {

using diknn::JsonValue;

constexpr int kSparkWidth = 40;

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [--ts FILE] [--metrics FILE] [--trace FILE]\n"
      "\n"
      "  --ts FILE       flight recording (diknn-sim --ts-out)\n"
      "  --metrics FILE  merged metrics registry (--metrics-out)\n"
      "  --trace FILE    Chrome trace with criticalPaths (--trace-out)\n"
      "\n"
      "Renders a plain-text run report: per-series sparklines, the SLO\n"
      "burn timeline, and the top critical-path contributors. At least\n"
      "one input file is required.\n",
      argv0);
}

std::optional<JsonValue> LoadJson(const std::string& path,
                                  const char* what) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s file %s\n", what, path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto doc = JsonValue::Parse(buf.str(), &error);
  if (!doc) {
    std::fprintf(stderr, "bad JSON in %s (%s): %s\n", path.c_str(), what,
                 error.c_str());
  }
  return doc;
}

// Eight-level unicode sparkline, downsampled (bucket means) to at most
// kSparkWidth columns. A flat series renders as a mid-level line.
std::string Sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const size_t cols = std::min<size_t>(values.size(), kSparkWidth);
  std::vector<double> bucketed(cols, 0.0);
  for (size_t c = 0; c < cols; ++c) {
    const size_t lo = c * values.size() / cols;
    const size_t hi = std::max(lo + 1, (c + 1) * values.size() / cols);
    double sum = 0.0;
    for (size_t i = lo; i < hi; ++i) sum += values[i];
    bucketed[c] = sum / static_cast<double>(hi - lo);
  }
  const auto [mn_it, mx_it] =
      std::minmax_element(bucketed.begin(), bucketed.end());
  const double mn = *mn_it, mx = *mx_it;
  std::string out;
  for (const double v : bucketed) {
    int level = 3;  // Flat series: mid-level line.
    if (mx > mn) {
      level = static_cast<int>(std::floor((v - mn) / (mx - mn) * 7.999));
      level = std::clamp(level, 0, 7);
    }
    out += kLevels[level];
  }
  return out;
}

/// One flight-recorder series pulled out of the artifact.
struct Series {
  std::string name;
  bool diagnostic = false;
  std::vector<double> t;
  std::vector<double> v;
  uint64_t dropped = 0;
};

std::vector<double> Doubles(const JsonValue* arr) {
  std::vector<double> out;
  if (arr == nullptr || !arr->IsArray()) return out;
  out.reserve(arr->array.size());
  for (const JsonValue& x : arr->array) out.push_back(x.NumberOr(0.0));
  return out;
}

void CollectSeries(const JsonValue& doc, const char* section,
                   bool diagnostic, std::vector<Series>* out) {
  const JsonValue* map = doc.Find(section);
  if (map == nullptr || !map->IsObject()) return;
  for (const auto& [name, body] : map->object) {
    Series s;
    s.name = name;
    s.diagnostic = diagnostic;
    s.t = Doubles(body.Find("t"));
    s.v = Doubles(body.Find("v"));
    if (const JsonValue* d = body.Find("dropped")) {
      s.dropped = static_cast<uint64_t>(d->NumberOr(0.0));
    }
    out->push_back(std::move(s));
  }
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

const Series* FindSeries(const std::vector<Series>& all,
                         const char* name) {
  for (const Series& s : all) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void PrintSeriesTable(const std::vector<Series>& all, bool diagnostic) {
  size_t width = 0;
  for (const Series& s : all) {
    if (s.diagnostic == diagnostic) width = std::max(width, s.name.size());
  }
  for (const Series& s : all) {
    if (s.diagnostic != diagnostic || s.v.empty()) continue;
    const double mn = *std::min_element(s.v.begin(), s.v.end());
    const double mx = *std::max_element(s.v.begin(), s.v.end());
    std::printf("  %-*s %10.4g %10.4g %10.4g %10.4g  %s",
                static_cast<int>(width), s.name.c_str(), mn, Mean(s.v), mx,
                s.v.back(), Sparkline(s.v).c_str());
    if (s.dropped > 0) {
      std::printf("  (+%llu dropped)",
                  static_cast<unsigned long long>(s.dropped));
    }
    std::printf("\n");
  }
}

void ReportTimeSeries(const JsonValue& doc) {
  std::vector<Series> all;
  CollectSeries(doc, "series", /*diagnostic=*/false, &all);
  CollectSeries(doc, "diagnostics", /*diagnostic=*/true, &all);
  const double interval =
      doc.Find("interval_s") ? doc.Find("interval_s")->NumberOr(0.0) : 0.0;

  size_t samples = 0;
  for (const Series& s : all) samples += s.v.size();
  std::printf("time series: %zu series, %zu samples, interval %.4g s\n",
              all.size(), samples, interval);
  size_t width = 0;
  for (const Series& s : all) width = std::max(width, s.name.size());
  std::printf("  %-*s %10s %10s %10s %10s\n", static_cast<int>(width),
              "series", "min", "mean", "max", "last");
  PrintSeriesTable(all, /*diagnostic=*/false);
  bool any_diag = false;
  for (const Series& s : all) any_diag |= s.diagnostic;
  if (any_diag) {
    std::printf("  -- diagnostics (wall-clock / per-shard; not part of "
                "the determinism contract) --\n");
    PrintSeriesTable(all, /*diagnostic=*/true);
  }

  if (const JsonValue* anns = doc.Find("annotations");
      anns != nullptr && anns->IsArray() && !anns->array.empty()) {
    std::printf("annotations:\n");
    for (const JsonValue& a : anns->array) {
      const JsonValue* label = a.Find("label");
      std::printf("  t=%-10.4g %s value=%g\n",
                  a.Find("t") ? a.Find("t")->NumberOr(0.0) : 0.0,
                  label ? label->StringOr("?").c_str() : "?",
                  a.Find("value") ? a.Find("value")->NumberOr(0.0) : 0.0);
    }
  }

  // SLO burn: walk the workload series interval by interval and show
  // where the error budget went.
  const Series* issued = FindSeries(all, "workload.issued_per_s");
  const Series* goodput = FindSeries(all, "workload.goodput_qps");
  const Series* miss = FindSeries(all, "workload.miss_rate");
  const Series* p99 = FindSeries(all, "workload.p99_ms");
  if (issued != nullptr && goodput != nullptr && interval > 0.0) {
    double total_issued = 0.0, total_good = 0.0, total_missed = 0.0;
    double worst_miss = 0.0, worst_miss_t = 0.0;
    for (size_t i = 0; i < issued->v.size(); ++i) {
      const double in_window = issued->v[i] * interval;
      total_issued += in_window;
      if (i < goodput->v.size()) total_good += goodput->v[i] * interval;
      if (miss != nullptr && i < miss->v.size() && i < miss->t.size()) {
        total_missed += miss->v[i] * in_window;
        if (miss->v[i] > worst_miss) {
          worst_miss = miss->v[i];
          worst_miss_t = miss->t[i];
        }
      }
    }
    std::printf("slo burn: ~%.0f issued, ~%.0f within deadline, "
                "~%.0f missed over the recorded window\n",
                total_issued, total_good, total_missed);
    if (worst_miss > 0.0) {
      std::printf("  worst interval: t=%.4g s, miss rate %.1f%%\n",
                  worst_miss_t, 100.0 * worst_miss);
    }
    if (p99 != nullptr && !p99->v.empty()) {
      const double peak = *std::max_element(p99->v.begin(), p99->v.end());
      std::printf("  p99 latency: %.3g ms mean, %.3g ms peak\n",
                  Mean(p99->v), peak);
    }
  }
}

void ReportMetrics(const JsonValue& doc) {
  // The SLO scorecard and serving funnel, from the merged registry.
  const JsonValue* counters = doc.Find("counters");
  if (counters != nullptr && counters->IsObject()) {
    bool header = false;
    for (const auto& [name, value] : counters->object) {
      const bool interesting =
          name.rfind("workload.", 0) == 0 || name.rfind("serving.", 0) == 0;
      if (!interesting) continue;
      if (!header) {
        std::printf("slo counters (merged across runs):\n");
        header = true;
      }
      std::printf("  %-28s %12.0f\n", name.c_str(), value.NumberOr(0.0));
    }
  }
  const JsonValue* hists = doc.Find("histograms");
  if (hists != nullptr && hists->IsObject() && !hists->object.empty()) {
    std::printf("histograms:\n");
    std::printf("  %-28s %10s %10s %10s %10s %10s\n", "name", "count",
                "mean", "p50", "p99", "max");
    for (const auto& [name, h] : hists->object) {
      std::printf("  %-28s %10.0f %10.4g %10.4g %10.4g %10.4g\n",
                  name.c_str(),
                  h.Find("count") ? h.Find("count")->NumberOr(0.0) : 0.0,
                  h.Find("mean") ? h.Find("mean")->NumberOr(0.0) : 0.0,
                  h.Find("p50") ? h.Find("p50")->NumberOr(0.0) : 0.0,
                  h.Find("p99") ? h.Find("p99")->NumberOr(0.0) : 0.0,
                  h.Find("max") ? h.Find("max")->NumberOr(0.0) : 0.0);
    }
  }
}

void ReportCriticalPaths(const JsonValue& doc) {
  const JsonValue* paths = doc.Find("criticalPaths");
  if (paths == nullptr || !paths->IsArray() || paths->array.empty()) {
    std::printf("critical paths: none in the trace "
                "(no traced query completed)\n");
    return;
  }
  // Phase attribution summed across every traced query: which phase is
  // eating the latency fleet-wide, not just on the single slowest query.
  static const char* kPhases[] = {"queue_s",      "route_s",
                                  "collection_s", "forwarding_s",
                                  "reply_route_s", "sink_wait_s"};
  double phase_sum[6] = {0.0};
  double total = 0.0;
  for (const JsonValue& p : paths->array) {
    for (int i = 0; i < 6; ++i) {
      const JsonValue* v = p.Find(kPhases[i]);
      phase_sum[i] += v ? v->NumberOr(0.0) : 0.0;
    }
    const JsonValue* t = p.Find("total_s");
    total += t ? t->NumberOr(0.0) : 0.0;
  }
  std::printf("critical paths: %zu traced queries, %.3f s total latency\n",
              paths->array.size(), total);
  std::printf("  top contributors:\n");
  std::vector<std::pair<double, const char*>> ranked;
  for (int i = 0; i < 6; ++i) ranked.push_back({phase_sum[i], kPhases[i]});
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [sum, name] : ranked) {
    if (sum <= 0.0) continue;
    std::printf("    %-14s %8.3f s  (%4.1f%%)\n", name, sum,
                total > 0.0 ? 100.0 * sum / total : 0.0);
  }
  std::printf("  slowest queries:\n");
  const size_t show = std::min<size_t>(paths->array.size(), 5);
  for (size_t i = 0; i < show; ++i) {  // Writer sorts slowest-first.
    const JsonValue& p = paths->array[i];
    const JsonValue* dom = p.Find("dominant");
    std::printf("    query %-6.0f total %7.3f s  dominant %s\n",
                p.Find("query") ? p.Find("query")->NumberOr(0.0) : 0.0,
                p.Find("total_s") ? p.Find("total_s")->NumberOr(0.0) : 0.0,
                dom ? dom->StringOr("?").c_str() : "?");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string ts_path, metrics_path, trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else if (arg == "--ts") {
      ts_path = next_value();
    } else if (arg == "--metrics") {
      metrics_path = next_value();
    } else if (arg == "--trace") {
      trace_path = next_value();
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (ts_path.empty() && metrics_path.empty() && trace_path.empty()) {
    PrintUsage(argv[0]);
    return 2;
  }

  bool ok = true;
  if (!ts_path.empty()) {
    if (const auto doc = LoadJson(ts_path, "time series")) {
      ReportTimeSeries(*doc);
    } else {
      ok = false;
    }
  }
  if (!metrics_path.empty()) {
    if (const auto doc = LoadJson(metrics_path, "metrics")) {
      ReportMetrics(*doc);
    } else {
      ok = false;
    }
  }
  if (!trace_path.empty()) {
    if (const auto doc = LoadJson(trace_path, "trace")) {
      ReportCriticalPaths(*doc);
    } else {
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
