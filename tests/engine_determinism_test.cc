// Scheduler determinism: the timer-wheel engine must fire events in
// exactly the order the legacy binary heap did — FIFO sequence-number
// tie-breaks at equal timestamps included — so every golden-seed run is
// bit-identical across engine tiers and at any jobs count.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "harness/experiment.h"
#include "sim/simulator.h"
#include "workload/workload_spec.h"

namespace diknn {
namespace {

// --- Unit fixture: a same-timestamp storm with cancels, reschedules,
// --- and times straddling the wheel horizon (forcing rollover and
// --- overflow migration). Returns the exact firing sequence.
std::vector<int> RunStorm(EngineKind kind) {
  Simulator sim(kind);
  Rng rng(2024);
  std::vector<int> order;
  std::vector<EventId> cancelable;

  // Bursts of events sharing one exact timestamp (FIFO tie-breaks), at
  // times from sub-millisecond to far beyond the ~1 s wheel horizon.
  int label = 0;
  for (int burst = 0; burst < 40; ++burst) {
    const SimTime t = rng.Uniform(0.0, 5.0);
    for (int i = 0; i < 5; ++i) {
      const int id = label++;
      const EventId ev = sim.ScheduleAt(t, [&order, id] {
        order.push_back(id);
      });
      if (i % 3 == 1) cancelable.push_back(ev);
    }
  }
  // Far-future overflow events, some of which are cancelled.
  for (int i = 0; i < 20; ++i) {
    const int id = label++;
    const EventId ev = sim.ScheduleAt(rng.Uniform(30.0, 400.0),
                                      [&order, id] { order.push_back(id); });
    if (i % 2 == 0) cancelable.push_back(ev);
  }
  // Events that schedule at their own timestamp (sorted-run insert) and
  // one wheel-horizon hop ahead (wheel re-entry after rollover).
  for (int i = 0; i < 10; ++i) {
    const int id = label++;
    sim.ScheduleAt(0.25 * i, [&sim, &order, id] {
      order.push_back(id);
      sim.ScheduleAfter(0.0, [&order, id] { order.push_back(10000 + id); });
      sim.ScheduleAfter(1.5, [&order, id] { order.push_back(20000 + id); });
    });
  }
  for (const EventId ev : cancelable) sim.Cancel(ev);

  sim.Run();
  return order;
}

TEST(EngineDeterminismTest, StormFiringOrderIdenticalAcrossEngines) {
  const std::vector<int> wheel = RunStorm(EngineKind::kWheel);
  const std::vector<int> heap = RunStorm(EngineKind::kLegacyHeap);
  ASSERT_FALSE(wheel.empty());
  EXPECT_EQ(wheel, heap);
}

// --- End-to-end: a full DIKNN run (paper generator) and a full workload
// --- run must produce bit-identical metrics on both engines.

void ExpectBitIdentical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  // EXPECT_EQ on doubles is exact equality — bit-identity, not tolerance.
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p95_latency, b.p95_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.avg_pre_accuracy, b.avg_pre_accuracy);
  EXPECT_EQ(a.avg_post_accuracy, b.avg_post_accuracy);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.beacon_energy_joules, b.beacon_energy_joules);
  EXPECT_EQ(a.average_degree, b.average_degree);
  // SloReport compared as serialized bytes.
  EXPECT_EQ(a.slo.ToJson(), b.slo.ToJson());
}

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.network.node_count = 70;
  config.network.field = Rect::Field(68.0, 68.0);
  config.k = 8;
  config.duration = 6.0;
  config.drain = 4.0;
  config.runs = 2;
  return config;
}

TEST(EngineDeterminismTest, PaperRunBitIdenticalAcrossEngines) {
  ExperimentConfig wheel = SmallConfig();
  wheel.network.scheduler = EngineKind::kWheel;
  ExperimentConfig heap = SmallConfig();
  heap.network.scheduler = EngineKind::kLegacyHeap;
  for (uint64_t seed : {42u, 43u}) {
    const RunMetrics a = RunOnce(wheel, seed);
    const RunMetrics b = RunOnce(heap, seed);
    ASSERT_GT(a.queries, 0);
    ExpectBitIdentical(a, b);
    // Both events fired and pushed differ only via engine bookkeeping;
    // the simulated work itself must match.
    EXPECT_EQ(a.engine.events_fired, b.engine.events_fired);
  }
}

TEST(EngineDeterminismTest, WorkloadSloBitIdenticalAcrossEnginesAndJobs) {
  ExperimentConfig config = SmallConfig();
  std::string error;
  config.workload = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=4;mix@knn=60,window=20,aggregate=20;"
      "k@lo=4,hi=10;deadline@s=1.5;admit@inflight=8,queue=4",
      &error);
  ASSERT_TRUE(config.workload.has_value()) << error;

  config.network.scheduler = EngineKind::kWheel;
  config.jobs = 1;
  const std::vector<RunMetrics> wheel_seq = RunExperimentRuns(config);
  config.jobs = 4;
  const std::vector<RunMetrics> wheel_par = RunExperimentRuns(config);
  config.network.scheduler = EngineKind::kLegacyHeap;
  config.jobs = 1;
  const std::vector<RunMetrics> heap_seq = RunExperimentRuns(config);

  ASSERT_EQ(wheel_seq.size(), 2u);
  for (size_t i = 0; i < wheel_seq.size(); ++i) {
    ASSERT_GT(wheel_seq[i].slo.issued, 0u);
    ExpectBitIdentical(wheel_seq[i], heap_seq[i]);
    ExpectBitIdentical(wheel_seq[i], wheel_par[i]);
    EXPECT_EQ(wheel_seq[i].slo.ToJson(), heap_seq[i].slo.ToJson());
  }
}

// The wheel must actually be exercising both tiers in an end-to-end run
// (otherwise the equivalence above proves less than it claims).
TEST(EngineDeterminismTest, EndToEndRunUsesWheelAndOverflowTiers) {
  ExperimentConfig config = SmallConfig();
  config.runs = 1;
  const RunMetrics m = RunOnce(config, 42);
  EXPECT_GT(m.engine.wheel_scheduled, 0u);
  EXPECT_GT(m.engine.overflow_scheduled, 0u);  // Query timeouts et al.
  EXPECT_GT(m.engine.inline_callbacks, 0u);
  EXPECT_GT(m.engine.events_cancelled, 0u);
  // Resident footprint must stay within live + bounded cancelled refs.
  EXPECT_LE(m.engine.peak_resident,
            m.engine.peak_live + m.engine.events_cancelled);
}

}  // namespace
}  // namespace diknn
