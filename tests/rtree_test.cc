#include "baselines/rtree.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace diknn {
namespace {

// Brute-force KNN over (id, point) records for cross-checking.
std::vector<int64_t> BruteKnn(const std::vector<std::pair<int64_t, Point>>& v,
                              const Point& q, int k) {
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end(), [&](const auto& a, const auto& b) {
    const double da = SquaredDistance(a.second, q);
    const double db = SquaredDistance(b.second, q);
    if (da != db) return da < db;
    return a.first < b.first;
  });
  std::vector<int64_t> out;
  for (int i = 0; i < k && i < static_cast<int>(sorted.size()); ++i) {
    out.push_back(sorted[i].first);
  }
  return out;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.Empty());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.Knn({0, 0}, 5).empty());
  EXPECT_TRUE(tree.Range({{0, 0}, {10, 10}}).empty());
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_FALSE(tree.Remove(1, {0, 0}));
}

TEST(RTreeTest, SingleInsertAndQuery) {
  RTree tree;
  tree.Insert(7, {3, 4});
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  EXPECT_EQ(tree.Knn({0, 0}, 1), (std::vector<int64_t>{7}));
  EXPECT_EQ(tree.Range({{0, 0}, {10, 10}}), (std::vector<int64_t>{7}));
  EXPECT_TRUE(tree.Range({{5, 5}, {10, 10}}).empty());
}

TEST(RTreeTest, SplitsKeepAllRecords) {
  RTree tree(4);  // Small fanout forces early splits.
  for (int i = 0; i < 100; ++i) {
    tree.Insert(i, {static_cast<double>(i % 10), static_cast<double>(i / 10)});
  }
  EXPECT_EQ(tree.Size(), 100u);
  EXPECT_GT(tree.Height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
  const auto all = tree.Range({{-1, -1}, {11, 11}});
  EXPECT_EQ(all.size(), 100u);
  std::set<int64_t> ids(all.begin(), all.end());
  EXPECT_EQ(ids.size(), 100u);
}

TEST(RTreeTest, KnnMatchesBruteForce) {
  Rng rng(5);
  RTree tree;
  std::vector<std::pair<int64_t, Point>> records;
  for (int i = 0; i < 300; ++i) {
    const Point p = rng.PointInRect({{0, 0}, {100, 100}});
    tree.Insert(i, p);
    records.push_back({i, p});
  }
  for (int trial = 0; trial < 25; ++trial) {
    const Point q = rng.PointInRect({{0, 0}, {100, 100}});
    const int k = rng.UniformInt(1, 20);
    EXPECT_EQ(tree.Knn(q, k), BruteKnn(records, q, k)) << "trial " << trial;
  }
}

TEST(RTreeTest, KnnClampsToSize) {
  RTree tree;
  tree.Insert(1, {0, 0});
  tree.Insert(2, {1, 1});
  EXPECT_EQ(tree.Knn({0, 0}, 100).size(), 2u);
}

TEST(RTreeTest, RangeQueryCorrectness) {
  Rng rng(6);
  RTree tree;
  std::vector<std::pair<int64_t, Point>> records;
  for (int i = 0; i < 200; ++i) {
    const Point p = rng.PointInRect({{0, 0}, {100, 100}});
    tree.Insert(i, p);
    records.push_back({i, p});
  }
  for (int trial = 0; trial < 20; ++trial) {
    const Point a = rng.PointInRect({{0, 0}, {100, 100}});
    const Point b = rng.PointInRect({{0, 0}, {100, 100}});
    const Rect r{{std::min(a.x, b.x), std::min(a.y, b.y)},
                 {std::max(a.x, b.x), std::max(a.y, b.y)}};
    auto got = tree.Range(r);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> want;
    for (const auto& [id, p] : records) {
      if (r.Contains(p)) want.push_back(id);
    }
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(RTreeTest, RemoveExistingRecord) {
  RTree tree;
  tree.Insert(1, {5, 5});
  tree.Insert(2, {6, 6});
  EXPECT_TRUE(tree.Remove(1, {5, 5}));
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_EQ(tree.Knn({5, 5}, 1), (std::vector<int64_t>{2}));
  EXPECT_FALSE(tree.Remove(1, {5, 5}));  // Already gone.
}

TEST(RTreeTest, RemoveRequiresMatchingPosition) {
  RTree tree;
  tree.Insert(1, {5, 5});
  EXPECT_FALSE(tree.Remove(1, {5, 6}));
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(RTreeTest, RemoveAllThenReuse) {
  RTree tree(4);
  std::vector<Point> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({static_cast<double>(i), static_cast<double>(i % 7)});
    tree.Insert(i, points.back());
  }
  for (int i = 0; i < 60; ++i) {
    EXPECT_TRUE(tree.Remove(i, points[i])) << i;
    EXPECT_TRUE(tree.CheckInvariants()) << i;
  }
  EXPECT_TRUE(tree.Empty());
  tree.Insert(99, {1, 1});
  EXPECT_EQ(tree.Knn({0, 0}, 1), (std::vector<int64_t>{99}));
}

// Property: a randomized insert/remove churn keeps the tree consistent
// with a shadow set, exercising splits, condensation and reinsertion.
class RTreeChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeChurnTest, MatchesShadowUnderChurn) {
  const int fanout = GetParam();
  Rng rng(77 + fanout);
  RTree tree(fanout);
  std::vector<std::pair<int64_t, Point>> shadow;
  int64_t next_id = 0;

  for (int step = 0; step < 2000; ++step) {
    const bool insert = shadow.empty() || rng.Bernoulli(0.6);
    if (insert) {
      const Point p = rng.PointInRect({{0, 0}, {200, 200}});
      tree.Insert(next_id, p);
      shadow.push_back({next_id, p});
      ++next_id;
    } else {
      const int idx = rng.UniformInt(0, static_cast<int>(shadow.size()) - 1);
      ASSERT_TRUE(tree.Remove(shadow[idx].first, shadow[idx].second));
      shadow.erase(shadow.begin() + idx);
    }
    ASSERT_EQ(tree.Size(), shadow.size());
    if (step % 100 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "step " << step;
      const Point q = rng.PointInRect({{0, 0}, {200, 200}});
      ASSERT_EQ(tree.Knn(q, 5), BruteKnn(shadow, q, 5)) << "step " << step;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeChurnTest,
                         ::testing::Values(4, 8, 16));

TEST(RTreeTest, BoundsTracksRecords) {
  RTree tree;
  EXPECT_TRUE(tree.Bounds().IsEmpty());
  tree.Insert(1, {2, 3});
  tree.Insert(2, {8, 1});
  const Rect b = tree.Bounds();
  EXPECT_EQ(b.min, Point(2, 1));
  EXPECT_EQ(b.max, Point(8, 3));
}

TEST(RTreeTest, MoveSemantics) {
  RTree a;
  a.Insert(1, {1, 1});
  RTree b = std::move(a);
  EXPECT_EQ(b.Size(), 1u);
  EXPECT_EQ(b.Knn({0, 0}, 1), (std::vector<int64_t>{1}));
}

TEST(RTreeBrowseTest, EmptyTreeHasNothing) {
  RTree tree;
  auto it = tree.Browse({0, 0});
  EXPECT_FALSE(it.HasNext());
}

TEST(RTreeBrowseTest, YieldsInDistanceOrder) {
  Rng rng(21);
  RTree tree;
  for (int i = 0; i < 500; ++i) {
    tree.Insert(i, rng.PointInRect({{0, 0}, {300, 300}}));
  }
  const Point q{150, 150};
  auto it = tree.Browse(q);
  double prev = -1;
  int count = 0;
  while (it.HasNext()) {
    const auto [id, dist] = it.Next();
    EXPECT_GE(dist, prev);
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 500);
    prev = dist;
    ++count;
  }
  EXPECT_EQ(count, 500);
}

TEST(RTreeBrowseTest, PrefixMatchesKnn) {
  Rng rng(22);
  RTree tree;
  for (int i = 0; i < 200; ++i) {
    tree.Insert(i, rng.PointInRect({{0, 0}, {100, 100}}));
  }
  const Point q{40, 60};
  const auto knn = tree.Knn(q, 25);
  auto it = tree.Browse(q);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(it.HasNext());
    EXPECT_EQ(it.Next().first, knn[i]) << "rank " << i;
  }
}

TEST(RTreeBrowseTest, DistancesAreExact) {
  RTree tree;
  tree.Insert(1, {3, 4});
  tree.Insert(2, {6, 8});
  auto it = tree.Browse({0, 0});
  auto [id1, d1] = it.Next();
  EXPECT_EQ(id1, 1);
  EXPECT_DOUBLE_EQ(d1, 5.0);
  auto [id2, d2] = it.Next();
  EXPECT_EQ(id2, 2);
  EXPECT_DOUBLE_EQ(d2, 10.0);
  EXPECT_FALSE(it.HasNext());
}

TEST(RTreeTest, DuplicatePositionsSupported) {
  RTree tree;
  tree.Insert(1, {5, 5});
  tree.Insert(2, {5, 5});
  EXPECT_EQ(tree.Size(), 2u);
  auto knn = tree.Knn({5, 5}, 2);
  std::sort(knn.begin(), knn.end());
  EXPECT_EQ(knn, (std::vector<int64_t>{1, 2}));
  EXPECT_TRUE(tree.Remove(1, {5, 5}));
  EXPECT_EQ(tree.Knn({5, 5}, 2), (std::vector<int64_t>{2}));
}

}  // namespace
}  // namespace diknn
