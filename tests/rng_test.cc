#include "core/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace diknn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint32(), b.NextUint32());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint32() == b.NextUint32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.0, 5.5);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(10);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const int v = rng.UniformInt(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // ~5 sigma.
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(12);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.Exponential(0.01), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(14);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.03);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PointInRectStaysInside) {
  Rng rng(17);
  const Rect r{{-5, 10}, {5, 30}};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(r.Contains(rng.PointInRect(r)));
  }
}

TEST(RngTest, PointInDiskStaysInsideAndIsAreaUniform) {
  Rng rng(18);
  const Point c{10, 10};
  const double radius = 5.0;
  int inner = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const Point p = rng.PointInDisk(c, radius);
    ASSERT_LE(Distance(p, c), radius + 1e-9);
    // Area-uniform: half the area lies within radius/sqrt(2).
    if (Distance(p, c) <= radius / std::sqrt(2.0)) ++inner;
  }
  EXPECT_NEAR(static_cast<double>(inner) / n, 0.5, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint32() == child.NextUint32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(42), b(42);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.NextUint32(), cb.NextUint32());
}

}  // namespace
}  // namespace diknn
