#include "baselines/peertree.h"

#include <gtest/gtest.h>

#include "harness/metrics.h"

namespace diknn {
namespace {

struct Rig {
  explicit Rig(NetworkConfig config, PeerTreeParams params = {})
      : net(WithHeads(std::move(config), params)),
        gpsr(&net),
        protocol(&net, &gpsr, params) {
    gpsr.Install();
    protocol.Install();
    net.Warmup(3.0);  // Beacons + first registration round.
  }

  static NetworkConfig WithHeads(NetworkConfig config,
                                 const PeerTreeParams& params) {
    config.infrastructure_positions =
        PeerTree::ClusterheadPositions(config.field, params.grid_dim);
    return config;
  }

  // Runs until the query completes (checking in small slices), so that
  // ground truth sampled right after the call reflects completion time.
  KnnResult RunQuery(NodeId sink, Point q, int k, double horizon = 12.0) {
    KnnResult out;
    bool done = false;
    protocol.IssueQuery(sink, q, k, [&](const KnnResult& r) {
      out = r;
      done = true;
    });
    const SimTime deadline = net.sim().Now() + horizon;
    while (!done && net.sim().Now() < deadline) {
      net.sim().RunUntil(net.sim().Now() + 0.25);
    }
    EXPECT_TRUE(done) << "query never completed";
    return out;
  }

  Network net;
  GpsrRouting gpsr;
  PeerTree protocol;
};

NetworkConfig DefaultConfig(uint64_t seed = 7) {
  NetworkConfig config;
  config.seed = seed;
  config.static_node_count = 1;
  return config;
}

TEST(PeerTreeTest, ClusterheadPositionsFormGrid) {
  const auto heads =
      PeerTree::ClusterheadPositions(Rect::Field(100, 100), 5);
  ASSERT_EQ(heads.size(), 25u);
  EXPECT_EQ(heads[0], Point(10, 10));    // Row-major from the min corner.
  EXPECT_EQ(heads[4], Point(90, 10));
  EXPECT_EQ(heads[24], Point(90, 90));
}

TEST(PeerTreeTest, NodesRegisterWithHeads) {
  Rig rig(DefaultConfig());
  EXPECT_GT(rig.protocol.stats().registrations_sent, 50u);
}

TEST(PeerTreeTest, AnswersQueryOnStaticNetwork) {
  NetworkConfig config = DefaultConfig();
  config.mobility = MobilityKind::kStatic;
  Rig rig(config);
  const Point q{60, 60};
  const auto truth = rig.net.TrueKnn(q, 10);
  const KnnResult result = rig.RunQuery(0, q, 10);
  EXPECT_GE(Accuracy(result.CandidateIds(), truth), 0.7);
}

TEST(PeerTreeTest, QueryFlowsThroughHierarchy) {
  Rig rig(DefaultConfig());
  // A query point in a different cell than the sink forces an upward
  // forward to the root and a downward forward to the covering head.
  rig.RunQuery(0, {10, 105}, 10);
  EXPECT_GE(rig.protocol.stats().hierarchy_forwards, 1u);
  EXPECT_GT(rig.protocol.stats().notifications_sent, 0u);
}

TEST(PeerTreeTest, ProbesOtherCellsForLargeK) {
  Rig rig(DefaultConfig());
  rig.RunQuery(0, {60, 60}, 40);
  // 40 > one cell's population (~8), so the coordinator probed others.
  EXPECT_GT(rig.protocol.stats().cells_probed, 2u);
}

TEST(PeerTreeTest, ClusterheadsNeverReturnedAsCandidates) {
  Rig rig(DefaultConfig());
  const KnnResult result = rig.RunQuery(0, {57, 57}, 20);
  const int mobile = rig.net.config().node_count;
  for (const KnnCandidate& c : result.candidates) {
    EXPECT_LT(c.id, mobile) << "clusterhead leaked into the result";
  }
}

TEST(PeerTreeTest, MobilityCausesMissedNotifications) {
  NetworkConfig config = DefaultConfig();
  config.max_speed = 30.0;
  Rig rig(config);
  uint64_t missed = 0;
  for (int i = 0; i < 5; ++i) {
    rig.RunQuery(0, {30.0 + 12 * i, 55}, 20, 9.0);
  }
  missed = rig.protocol.stats().notifications_missed;
  // At 30 m/s the recorded positions go stale fast; some notifications
  // must strand (this is Peer-tree's Fig. 9 failure mode).
  EXPECT_GT(missed, 0u);
}

TEST(PeerTreeTest, EvictionRemovesSilentNodes) {
  Rig rig(DefaultConfig());
  // Kill half the nodes and let eviction sweeps run.
  for (int i = 1; i < 100; ++i) rig.net.node(i)->set_alive(false);
  rig.net.sim().RunUntil(rig.net.sim().Now() + 10.0);
  EXPECT_GT(rig.protocol.stats().evictions, 20u);
}

TEST(PeerTreeTest, MaintenanceEnergyIsSeparated) {
  Rig rig(DefaultConfig());
  EXPECT_GT(rig.net.TotalEnergy(EnergyCategory::kMaintenance), 0.0);
  // No query issued yet: query energy stays zero.
  EXPECT_DOUBLE_EQ(rig.net.TotalEnergy(EnergyCategory::kQuery), 0.0);
}

}  // namespace
}  // namespace diknn
