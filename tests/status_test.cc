#include "core/status.h"

#include <gtest/gtest.h>

namespace diknn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(static_cast<bool>(s));
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("no node");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

Status FailsThenPropagates(bool fail) {
  DIKNN_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace diknn
