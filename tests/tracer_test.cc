#include "obs/tracer.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "obs/trace_sink.h"

namespace diknn {
namespace {

// --- Manual span-tree mechanics -------------------------------------

TEST(TracerTest, StartQueryReturnsSampledRootContext) {
  Tracer tracer(1.0, 42);
  const TraceContext ctx = tracer.StartQuery(1.5);
  EXPECT_TRUE(ctx.sampled());
  ASSERT_EQ(tracer.spans().size(), 1u);
  const Span& root = tracer.spans().front();
  EXPECT_EQ(root.kind, SpanKind::kQuery);
  EXPECT_EQ(root.parent, 0u);
  EXPECT_EQ(root.id, ctx.span_id);
  EXPECT_EQ(root.trace_id, ctx.trace_id);
  EXPECT_EQ(root.start, 1.5);
  EXPECT_FALSE(root.closed());
}

TEST(TracerTest, BeginEndSpanBuildsTree) {
  Tracer tracer(1.0, 42);
  const TraceContext root = tracer.StartQuery(0.0);
  const SpanId route = tracer.BeginSpan(root, SpanKind::kRoute, 0.1, -1, 3);
  ASSERT_NE(route, 0u);
  const TraceContext route_ctx{root.trace_id, route};
  const SpanId hop = tracer.BeginSpan(route_ctx, SpanKind::kHop, 0.2, 1, 4);
  ASSERT_NE(hop, 0u);

  EXPECT_EQ(tracer.ParentOf(root.trace_id, route), root.span_id);
  EXPECT_EQ(tracer.ParentOf(root.trace_id, hop), route);
  EXPECT_EQ(tracer.ParentOf(root.trace_id, root.span_id), 0u);

  tracer.EndSpan(root.trace_id, hop, 0.3);
  const Span* hop_span = tracer.FindSpan(hop);
  ASSERT_NE(hop_span, nullptr);
  EXPECT_TRUE(hop_span->closed());
  EXPECT_EQ(hop_span->end, 0.3);
  EXPECT_EQ(hop_span->sector, 1);
  EXPECT_EQ(hop_span->node, 4);

  // EndSpan is idempotent: a second close keeps the first end time.
  tracer.EndSpan(root.trace_id, hop, 9.9);
  EXPECT_EQ(tracer.FindSpan(hop)->end, 0.3);
  // Unknown ids and id 0 are ignored.
  tracer.EndSpan(root.trace_id, 0, 1.0);
  tracer.EndSpan(root.trace_id, 999, 1.0);
}

TEST(TracerTest, CloseTraceClosesAllOpenSpans) {
  Tracer tracer(1.0, 42);
  const TraceContext root = tracer.StartQuery(0.0);
  const SpanId a = tracer.BeginSpan(root, SpanKind::kSector, 0.1);
  const SpanId b = tracer.BeginSpan(root, SpanKind::kSector, 0.2);
  tracer.EndSpan(root.trace_id, a, 0.5);
  tracer.CloseTrace(root.trace_id, 2.0);
  for (const Span& s : tracer.spans()) EXPECT_TRUE(s.closed());
  EXPECT_EQ(tracer.FindSpan(a)->end, 0.5);  // Earlier close sticks.
  EXPECT_EQ(tracer.FindSpan(b)->end, 2.0);
  EXPECT_EQ(tracer.FindSpan(root.span_id)->end, 2.0);
  // Idempotent.
  tracer.CloseTrace(root.trace_id, 5.0);
  EXPECT_EQ(tracer.FindSpan(root.span_id)->end, 2.0);
}

TEST(TracerTest, AddEventAttachesToSpan) {
  Tracer tracer(1.0, 42);
  const TraceContext root = tracer.StartQuery(0.0);
  tracer.AddEvent(root, TraceEventKind::kRetry, 0.7, 12, 3.0);
  ASSERT_EQ(tracer.events().size(), 1u);
  const SpanEvent& e = tracer.events().front();
  EXPECT_EQ(e.trace_id, root.trace_id);
  EXPECT_EQ(e.span_id, root.span_id);
  EXPECT_EQ(e.kind, TraceEventKind::kRetry);
  EXPECT_EQ(e.time, 0.7);
  EXPECT_EQ(e.node, 12);
  EXPECT_EQ(e.value, 3.0);
  EXPECT_EQ(tracer.stats().events, 1u);
}

TEST(TracerTest, UnsampledContextRecordsNothing) {
  Tracer tracer(0.0, 42);
  const TraceContext ctx = tracer.StartQuery(0.0);
  EXPECT_FALSE(ctx.sampled());
  EXPECT_EQ(tracer.BeginSpan(ctx, SpanKind::kRoute, 0.1), 0u);
  tracer.AddEvent(ctx, TraceEventKind::kReply, 0.2);
  tracer.EndSpan(ctx, 0.3);
  tracer.CloseTrace(ctx.trace_id, 0.4);
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.stats().queries_seen, 1u);
  EXPECT_EQ(tracer.stats().queries_sampled, 0u);
}

// --- Sampling --------------------------------------------------------

TEST(TracerTest, SamplingIsDeterministicPerSeed) {
  auto sampled_set = [](uint64_t seed) {
    Tracer tracer(0.5, seed);
    std::vector<bool> sampled;
    for (int i = 0; i < 200; ++i) {
      sampled.push_back(tracer.StartQuery(0.0).sampled());
    }
    return sampled;
  };
  const std::vector<bool> a = sampled_set(7);
  const std::vector<bool> b = sampled_set(7);
  EXPECT_EQ(a, b);  // Same seed, same decisions.
  const size_t hits = std::count(a.begin(), a.end(), true);
  EXPECT_GT(hits, 50u);  // Roughly half at rate 0.5.
  EXPECT_LT(hits, 150u);
  // A different seed picks a different subset.
  EXPECT_NE(a, sampled_set(8));
}

TEST(TracerTest, RateOneSamplesEveryQuery) {
  Tracer tracer(1.0, 3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(tracer.StartQuery(0.0).sampled());
  }
  EXPECT_EQ(tracer.stats().queries_sampled, 50u);
}

// --- Ambient context --------------------------------------------------

TEST(TracerTest, AmbientScopeExposesContextWithinScope) {
  Tracer tracer(1.0, 42);
  const TraceContext root = tracer.StartQuery(0.0);
  EXPECT_FALSE(tracer.has_ambient());
  {
    Tracer::AmbientScope ambient(&tracer, root);
    ASSERT_TRUE(tracer.has_ambient());
    EXPECT_EQ(tracer.ambient().trace_id, root.trace_id);
    EXPECT_EQ(tracer.ambient().span_id, root.span_id);
  }
  EXPECT_FALSE(tracer.has_ambient());
}

TEST(TracerTest, AmbientScopeToleratesNullTracer) {
  // The workload driver passes nullptr when the query is unsampled.
  Tracer::AmbientScope ambient(nullptr, TraceContext{});
}

// --- End-to-end: a real run yields well-formed query trees -----------

ExperimentConfig TracedConfig() {
  ExperimentConfig config;
  config.network.node_count = 70;
  config.network.field = Rect::Field(68.0, 68.0);
  config.k = 8;
  config.duration = 6.0;
  config.drain = 4.0;
  config.runs = 1;
  config.trace_sample = 1.0;
  return config;
}

TEST(TracerTest, RealRunProducesWellFormedSpanTrees) {
  TraceData trace;
  const RunMetrics metrics = RunOnce(TracedConfig(), 42, nullptr, &trace);
  ASSERT_GT(metrics.queries, 0);
  ASSERT_GT(trace.stats.queries_sampled, 0u);
  ASSERT_FALSE(trace.spans.empty());

  // Index spans by id for parent lookups.
  auto span_at = [&](SpanId id) -> const Span& {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, trace.spans.size());
    return trace.spans[id - 1];
  };

  size_t roots = 0, sectors = 0, hops = 0, collections = 0, replies = 0;
  for (const Span& s : trace.spans) {
    EXPECT_TRUE(s.closed()) << "span " << s.id << " left open";
    EXPECT_GE(s.end, s.start);
    switch (s.kind) {
      case SpanKind::kQuery:
        ++roots;
        EXPECT_EQ(s.parent, 0u);
        break;
      case SpanKind::kQueue:
      case SpanKind::kRoute:
        EXPECT_EQ(span_at(s.parent).kind, SpanKind::kQuery);
        break;
      case SpanKind::kSector:
        ++sectors;
        EXPECT_EQ(span_at(s.parent).kind, SpanKind::kQuery);
        EXPECT_GE(s.sector, 0);
        break;
      case SpanKind::kHop:
        ++hops;
        EXPECT_EQ(span_at(s.parent).kind, SpanKind::kSector);
        break;
      case SpanKind::kCollection:
        ++collections;
        EXPECT_EQ(span_at(s.parent).kind, SpanKind::kHop);
        break;
      case SpanKind::kReplyRoute:
        ++replies;
        EXPECT_EQ(span_at(s.parent).kind, SpanKind::kSector);
        break;
    }
    // A child never starts before its parent.
    if (s.parent != 0) {
      EXPECT_GE(s.start, span_at(s.parent).start);
      EXPECT_EQ(span_at(s.parent).trace_id, s.trace_id);
    }
  }
  EXPECT_EQ(roots, trace.stats.queries_sampled);
  EXPECT_GT(sectors, 0u);
  EXPECT_GT(hops, 0u);
  EXPECT_EQ(collections, hops);  // Every Q-node visit opens one window.
  EXPECT_GT(replies, 0u);

  // Every event points at a span of its own trace.
  for (const SpanEvent& e : trace.events) {
    if (e.span_id == 0) continue;
    EXPECT_EQ(span_at(e.span_id).trace_id, e.trace_id);
  }
}

TEST(TracerTest, TraceSinkExportsChromeTraceAndCriticalPaths) {
  TraceData trace;
  RunOnce(TracedConfig(), 42, nullptr, &trace);
  TraceSink sink(std::move(trace));

  ASSERT_FALSE(sink.critical_paths().empty());
  // Slowest-first ordering, and phases account for the whole total.
  double prev = sink.critical_paths().front().total;
  for (const CriticalPath& p : sink.critical_paths()) {
    EXPECT_LE(p.total, prev);
    prev = p.total;
    const double phases = p.queue + p.route + p.collection + p.forwarding +
                          p.reply_route + p.sink_wait;
    EXPECT_NEAR(phases, p.total, 1e-9);
    EXPECT_GE(p.hops, 0);
  }
  const std::string line =
      TraceSink::FormatCriticalPath(sink.critical_paths().front());
  EXPECT_NE(line.find("query"), std::string::npos);
  EXPECT_NE(line.find("dominant"), std::string::npos);

  const auto tail = sink.TailCriticalPaths(0.01);
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(tail.front().trace_id, sink.critical_paths().front().trace_id);

  std::ostringstream chrome;
  sink.WriteChromeTrace(chrome);
  const std::string json = chrome.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"criticalPaths\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // Complete spans.
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);  // Instants.

  std::ostringstream csv;
  sink.WriteCsv(csv);
  const std::string csv_text = csv.str();
  EXPECT_EQ(csv_text.find("trace,span,parent,kind,sector,node,start,end"),
            0u);
  const size_t lines = std::count(csv_text.begin(), csv_text.end(), '\n');
  EXPECT_EQ(lines, sink.data().spans.size() + 1);
}

TEST(TracerTest, SampledRunTracesOnlySampledSubset) {
  ExperimentConfig config = TracedConfig();
  config.trace_sample = 0.5;
  // A dense arrival stream so the 50% split has enough queries on both
  // sides of the sampling decision.
  config.query_interval_mean = 0.3;
  TraceData trace;
  const RunMetrics metrics = RunOnce(config, 42, nullptr, &trace);
  ASSERT_GT(metrics.queries, 0);
  EXPECT_EQ(trace.sample_rate, 0.5);
  EXPECT_GT(trace.stats.queries_seen, trace.stats.queries_sampled);
  EXPECT_GT(trace.stats.queries_sampled, 0u);
  // Each sampled query has exactly one root span.
  size_t roots = 0;
  for (const Span& s : trace.spans) {
    if (s.kind == SpanKind::kQuery) ++roots;
  }
  EXPECT_EQ(roots, trace.stats.queries_sampled);
}

}  // namespace
}  // namespace diknn
