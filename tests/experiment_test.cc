// End-to-end harness tests: short simulation runs per protocol, checking
// the experiment pipeline produces coherent metrics and the qualitative
// relationships the paper's evaluation rests on.

#include "harness/experiment.h"

#include <gtest/gtest.h>

namespace diknn {
namespace {

ExperimentConfig ShortConfig(ProtocolKind kind) {
  ExperimentConfig config;
  config.protocol = kind;
  config.k = 15;
  config.duration = 24.0;  // ~6 queries.
  config.runs = 1;
  config.base_seed = 11;
  return config;
}

class ProtocolRunTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ProtocolRunTest, ProducesCoherentMetrics) {
  std::vector<QueryRecord> records;
  const RunMetrics m = RunOnce(ShortConfig(GetParam()), 11, &records);
  EXPECT_GT(m.queries, 2);
  EXPECT_EQ(static_cast<size_t>(m.queries), records.size());
  EXPECT_GT(m.avg_latency, 0.0);
  EXPECT_LT(m.avg_latency, 9.0);
  EXPECT_GE(m.avg_pre_accuracy, 0.0);
  EXPECT_LE(m.avg_pre_accuracy, 1.0);
  EXPECT_GE(m.avg_post_accuracy, 0.0);
  EXPECT_LE(m.avg_post_accuracy, 1.0);
  EXPECT_GT(m.energy_joules, 0.0);
  EXPECT_GT(m.beacon_energy_joules, 0.0);
  EXPECT_GT(m.average_degree, 5.0);
  EXPECT_LE(m.timeouts, m.queries);
}

TEST_P(ProtocolRunTest, DeterministicForSameSeed) {
  const RunMetrics a = RunOnce(ShortConfig(GetParam()), 23);
  const RunMetrics b = RunOnce(ShortConfig(GetParam()), 23);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_DOUBLE_EQ(a.avg_post_accuracy, b.avg_post_accuracy);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolRunTest,
    ::testing::Values(ProtocolKind::kDiknn, ProtocolKind::kKptKnnb,
                      ProtocolKind::kPeerTree, ProtocolKind::kFlooding,
                      ProtocolKind::kCentralized),
    [](const auto& info) {
      switch (info.param) {
        case ProtocolKind::kDiknn:
          return "Diknn";
        case ProtocolKind::kKptKnnb:
          return "Kpt";
        case ProtocolKind::kPeerTree:
          return "PeerTree";
        case ProtocolKind::kFlooding:
          return "Flooding";
        case ProtocolKind::kCentralized:
          return "Centralized";
      }
      return "Unknown";
    });

TEST(ExperimentTest, RunExperimentAggregates) {
  ExperimentConfig config = ShortConfig(ProtocolKind::kDiknn);
  config.runs = 2;
  const ExperimentMetrics m = RunExperiment(config);
  EXPECT_EQ(m.runs, 2);
  EXPECT_EQ(m.latency.count, 2);
  EXPECT_GT(m.latency.mean, 0.0);
}

TEST(ExperimentTest, FormatRowIsReadable) {
  ExperimentMetrics m;
  m.latency.mean = 1.5;
  m.energy.mean = 0.42;
  m.pre_accuracy.mean = 0.87;
  m.post_accuracy.mean = 0.9;
  const std::string row = FormatRow("DIKNN k=40", m);
  EXPECT_NE(row.find("DIKNN k=40"), std::string::npos);
  EXPECT_NE(row.find("latency=1.500s"), std::string::npos);
  EXPECT_NE(row.find("energy=0.420J"), std::string::npos);
}

TEST(ExperimentTest, ProtocolNames) {
  EXPECT_STREQ(ProtocolName(ProtocolKind::kDiknn), "DIKNN");
  EXPECT_STREQ(ProtocolName(ProtocolKind::kKptKnnb), "KPT+KNNB");
  EXPECT_STREQ(ProtocolName(ProtocolKind::kPeerTree), "PeerTree");
  EXPECT_STREQ(ProtocolName(ProtocolKind::kFlooding), "Flooding");
}

// The paper's headline qualitative result on a small scale: DIKNN beats
// the baselines on accuracy at the default operating point.
TEST(ExperimentTest, DiknnAccuracyBeatsBaselines) {
  ExperimentConfig config = ShortConfig(ProtocolKind::kDiknn);
  config.duration = 40.0;
  config.k = 20;
  const RunMetrics diknn = RunOnce(config, 31);
  config.protocol = ProtocolKind::kKptKnnb;
  const RunMetrics kpt = RunOnce(config, 31);
  config.protocol = ProtocolKind::kPeerTree;
  const RunMetrics peertree = RunOnce(config, 31);

  EXPECT_GT(diknn.avg_post_accuracy, kpt.avg_post_accuracy - 0.05);
  EXPECT_GT(diknn.avg_post_accuracy, peertree.avg_post_accuracy - 0.05);
  EXPECT_GT(diknn.avg_post_accuracy, 0.6);
}

TEST(ExperimentTest, PeerTreeMaintenanceDominatesItsEnergy) {
  ExperimentConfig config = ShortConfig(ProtocolKind::kPeerTree);
  config.duration = 30.0;
  ProtocolStack stack(config, 17);
  stack.network().Warmup(config.warmup);
  stack.network().sim().RunUntil(stack.network().sim().Now() + 30.0);
  // Registrations alone (no queries issued) already cost real energy.
  EXPECT_GT(stack.network().TotalEnergy(EnergyCategory::kMaintenance),
            0.1);
}

TEST(ExperimentTest, StaticSinkConfigPinsNodeZero) {
  ExperimentConfig config = ShortConfig(ProtocolKind::kDiknn);
  config.static_sink = true;
  ProtocolStack stack(config, 5);
  Network& net = stack.network();
  const Point before = net.node(0)->Position();
  net.Warmup(5.0);
  EXPECT_EQ(net.node(0)->Position(), before);
}

}  // namespace
}  // namespace diknn
