#include "core/logging.h"

#include <gtest/gtest.h>

namespace diknn {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, DefaultLevelSuppressesDebug) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
  // Below-threshold messages must not even evaluate their operands.
  int evaluations = 0;
  auto observe = [&]() {
    ++evaluations;
    return 42;
  };
  DIKNN_LOG(kDebug) << "value " << observe();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, EnabledLevelEvaluatesOperands) {
  SetLogLevel(LogLevel::kTrace);
  int evaluations = 0;
  auto observe = [&]() {
    ++evaluations;
    return 42;
  };
  DIKNN_LOG(kError) << "value " << observe();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto observe = [&]() {
    ++evaluations;
    return 1;
  };
  DIKNN_LOG(kError) << observe();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kTrace, LogLevel::kDebug);
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

}  // namespace
}  // namespace diknn
