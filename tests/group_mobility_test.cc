#include <memory>

#include <gtest/gtest.h>

#include "net/mobility.h"
#include "net/network.h"

namespace diknn {
namespace {

const Rect kField = Rect::Field(200, 200);

GroupMobility::Reference MakeReference(Point start, double speed,
                                       uint64_t seed) {
  return std::make_shared<RandomWaypointMobility>(start, kField, speed,
                                                  Rng(seed));
}

TEST(GroupMobilityTest, MembersStayNearReference) {
  auto ref = MakeReference({100, 100}, 8.0, 1);
  const double radius = 15.0;
  std::vector<std::unique_ptr<GroupMobility>> members;
  for (int i = 0; i < 5; ++i) {
    members.push_back(std::make_unique<GroupMobility>(
        ref, Point{0, 0}, radius, 2.0, kField, Rng(10 + i)));
  }
  for (double t = 0; t < 120; t += 1.0) {
    const Point rp = ref->PositionAt(t);
    for (auto& m : members) {
      // Offset lives in a radius-sized box; diagonal sqrt(2)*radius, plus
      // field clamping can only pull points closer to the interior.
      EXPECT_LE(Distance(m->PositionAt(t), kField.Clamp(rp)),
                radius * 1.5 + 1e-9)
          << "t=" << t;
    }
  }
}

TEST(GroupMobilityTest, MembersStayInField) {
  auto ref = MakeReference({5, 5}, 10.0, 2);  // Starts near the border.
  GroupMobility member(ref, {10, 10}, 20.0, 3.0, kField, Rng(3));
  for (double t = 0; t < 200; t += 0.5) {
    EXPECT_TRUE(kField.Contains(member.PositionAt(t)));
  }
}

TEST(GroupMobilityTest, GroupActuallyTravels) {
  auto ref = MakeReference({100, 100}, 10.0, 4);
  GroupMobility member(ref, {0, 0}, 15.0, 1.0, kField, Rng(5));
  EXPECT_GT(Distance(member.PositionAt(0.0), member.PositionAt(60.0)), 20.0);
}

TEST(GroupMobilityTest, SpeedBoundHolds) {
  auto ref = MakeReference({100, 100}, 10.0, 6);
  GroupMobility member(ref, {0, 0}, 15.0, 2.0, kField, Rng(7));
  double t = 0;
  Point prev = member.PositionAt(t);
  const double dt = 0.05;
  for (int i = 0; i < 4000; ++i) {
    t += dt;
    const Point cur = member.PositionAt(t);
    EXPECT_LE(Distance(prev, cur), (10.0 + 2.0) * dt + 1e-9) << t;
    prev = cur;
  }
}

TEST(GroupMobilityTest, NetworkBuildsHerds) {
  NetworkConfig config;
  config.node_count = 100;
  config.field = Rect::Field(200, 200);
  config.mobility = MobilityKind::kGroup;
  config.group_size = 25;  // Four herds.
  config.group_radius = 15.0;
  config.seed = 11;
  Network net(config);
  net.Warmup(1.6);

  // Same-herd members are clustered: mean distance to the own herd's
  // centroid is far below the field scale.
  for (int g = 0; g < 4; ++g) {
    Point centroid{0, 0};
    for (int i = g * 25; i < (g + 1) * 25; ++i) {
      centroid += net.node(i)->Position();
    }
    centroid = centroid / 25.0;
    double mean = 0;
    for (int i = g * 25; i < (g + 1) * 25; ++i) {
      mean += Distance(net.node(i)->Position(), centroid);
    }
    EXPECT_LE(mean / 25.0, 2.0 * config.group_radius) << "herd " << g;
  }
}

TEST(GroupMobilityTest, HerdsStayCoherentOverTime) {
  NetworkConfig config;
  config.node_count = 50;
  config.field = Rect::Field(200, 200);
  config.mobility = MobilityKind::kGroup;
  config.group_size = 25;
  config.group_radius = 15.0;
  config.max_speed = 8.0;
  config.seed = 12;
  Network net(config);
  net.sim().RunUntil(60.0);
  // Herd 0's members are still mutually close after a minute of travel.
  double max_pair = 0;
  for (int i = 0; i < 25; ++i) {
    for (int j = i + 1; j < 25; ++j) {
      max_pair = std::max(max_pair, Distance(net.node(i)->Position(),
                                             net.node(j)->Position()));
    }
  }
  EXPECT_LE(max_pair, 4.0 * config.group_radius);
}

}  // namespace
}  // namespace diknn
