// The parallel engine's determinism contract (docs/ENGINE.md):
//
//   1. `--shards 1` in the harness IS the serial engine — bit-identical
//      RunMetrics and SloReport, because it is the same code path. The
//      serial stack stays the determinism anchor.
//   2. Within psim, every partition-invariant traffic counter (frames,
//      CSMA outcomes, receptions, collisions, losses, neighbor updates)
//      is byte-equal across shard counts: the window-quantized PHY makes
//      the traffic a pure function of (seed, config).
//   3. Repeating a sharded run reproduces it exactly, and the
//      steady-state allocation gate (net.allocs == 0) holds on every
//      worker thread.
//
//   4. The query plane rides the same contract: with a workload spec the
//      SloReport, every qp.* invariant counter, and the filtered obs
//      snapshot (InvariantObsJson) are byte-equal across shard counts,
//      with node kills and per-hop losses in play.
//
// The sharded soaks here double as the TSan workload: run this binary
// under the tsan preset to sweep the barrier/mailbox protocol (query
// mailboxes and state migration included).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "psim/engine.h"
#include "workload/workload_spec.h"

namespace diknn {
namespace {

// A field wide enough for 8 genuine strips: 560 m / 22.5 m cells ->
// nx = 25 columns >= 8 * kMinStripColumns.
PsimConfig WideConfig() {
  PsimConfig config;
  config.node_count = 1024;
  config.field = Rect::Field(560.0, 115.0);
  config.beacon_interval = 0.1;  // Dense traffic: real collisions.
  config.loss_rate = 0.05;       // Exercise the stateless loss draw.
  config.duration = 1.2;
  config.seed = 42;
  return config;
}

// --- Contract 2: partition-invariant counters across shard counts. ----

TEST(PsimDeterminismTest, TrafficCountersInvariantAcrossShardCounts) {
  PsimConfig config = WideConfig();
  config.shards = 1;
  const PsimResult anchor = RunPsim(config);

  // The run must actually exercise every counter the contract covers.
  ASSERT_GT(anchor.totals.frames_sent, 0u);
  ASSERT_GT(anchor.totals.csma_busy, 0u);
  ASSERT_GT(anchor.totals.receptions_delivered, 0u);
  ASSERT_GT(anchor.totals.receptions_collided, 0u);
  ASSERT_GT(anchor.totals.receptions_lost, 0u);
  ASSERT_GT(anchor.totals.neighbor_updates, 0u);
  EXPECT_GT(anchor.average_degree, 1.0);

  for (int shards : {2, 4, 8}) {
    config.shards = shards;
    PsimEngine engine(config);
    ASSERT_EQ(engine.shards(), shards) << "field too narrow for test";
    const PsimResult result = engine.Run();
    EXPECT_EQ(result.totals.InvariantCounters(),
              anchor.totals.InvariantCounters())
        << "traffic drifted at shards=" << shards;
    EXPECT_EQ(result.windows, anchor.windows);
    EXPECT_EQ(result.average_degree, anchor.average_degree);
    // Sharded runs exchange real traffic; the exchange is symmetric.
    EXPECT_GT(result.totals.boundary_frames, 0u);
    EXPECT_EQ(result.totals.boundary_frames, result.totals.foreign_frames);
    EXPECT_EQ(result.totals.migrations_out, result.totals.migrations_in);
    EXPECT_EQ(result.totals.audit_mismatches, 0u);
    EXPECT_TRUE(engine.OwnershipInvariantHolds());
  }
}

// --- Contract 3: exact repeatability and the allocation gate. ---------

TEST(PsimDeterminismTest, ShardedRunRepeatsExactly) {
  PsimConfig config = WideConfig();
  config.shards = 4;
  const PsimResult a = RunPsim(config);
  const PsimResult b = RunPsim(config);
  ASSERT_EQ(a.shard_stats.size(), b.shard_stats.size());
  for (size_t s = 0; s < a.shard_stats.size(); ++s) {
    // Per-shard, not just in aggregate: the full stats block including
    // the partition-dependent exchange counters must reproduce.
    EXPECT_EQ(a.shard_stats[s].InvariantCounters(),
              b.shard_stats[s].InvariantCounters());
    EXPECT_EQ(a.shard_stats[s].boundary_frames,
              b.shard_stats[s].boundary_frames);
    EXPECT_EQ(a.shard_stats[s].foreign_frames,
              b.shard_stats[s].foreign_frames);
    EXPECT_EQ(a.shard_stats[s].migrations_out,
              b.shard_stats[s].migrations_out);
    EXPECT_EQ(a.shard_stats[s].migrations_in,
              b.shard_stats[s].migrations_in);
  }
  EXPECT_EQ(a.engine.events_fired, b.engine.events_fired);
}

TEST(PsimDeterminismTest, SteadyStateAllocationFreeOnEveryShard) {
  PsimConfig config = WideConfig();
  config.shards = 4;
  const PsimResult result = RunPsim(config);
  for (size_t s = 0; s < result.shard_stats.size(); ++s) {
    EXPECT_EQ(result.shard_stats[s].steady_allocs, 0u)
        << "shard " << s << " allocated "
        << result.shard_stats[s].steady_alloc_bytes
        << " bytes in steady state";
  }
  // The gate lands on the same obs name scripts/check_all.sh asserts.
  EXPECT_EQ(result.obs.CounterValue("net.allocs"), 0u);
  EXPECT_EQ(result.obs.GaugeValue("psim.shards"), 4.0);
  EXPECT_EQ(result.obs.CounterValue("psim.frames_sent"),
            result.totals.frames_sent);
}

// --- Contract 1: the harness's --shards 1 is byte-equal to the serial
// --- path, SloReport and obs snapshot included. ----------------------

ExperimentConfig SerialAnchorConfig() {
  ExperimentConfig config;
  config.network.node_count = 70;
  config.network.field = Rect::Field(68.0, 68.0);
  config.k = 8;
  config.duration = 6.0;
  config.drain = 4.0;
  config.runs = 1;
  std::string error;
  config.workload = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=4;mix@knn=70,window=30;"
      "k@lo=4,hi=10;deadline@s=1.5;admit@inflight=8,queue=4",
      &error);
  EXPECT_TRUE(config.workload.has_value()) << error;
  return config;
}

TEST(PsimDeterminismTest, ShardsOneIsTheSerialEngineBitForBit) {
  const ExperimentConfig serial = SerialAnchorConfig();
  ExperimentConfig one = SerialAnchorConfig();
  one.shards = 1;
  const RunMetrics a = RunOnce(serial, 42);
  const RunMetrics b = RunOnce(one, 42);
  ASSERT_GT(a.queries, 0);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p95_latency, b.p95_latency);
  EXPECT_EQ(a.avg_pre_accuracy, b.avg_pre_accuracy);
  EXPECT_EQ(a.avg_post_accuracy, b.avg_post_accuracy);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.average_degree, b.average_degree);
  EXPECT_EQ(a.slo.ToJson(), b.slo.ToJson());
  EXPECT_EQ(a.obs.ToJson(), b.obs.ToJson());
}

// --- Contract 4: query-plane soak — 200+ mixed-class queries over GPSR
// --- + DIKNN itineraries, with kills and losses, across shard counts.

PsimConfig QuerySoakConfig() {
  PsimConfig config;
  config.node_count = 1024;
  config.field = Rect::Field(560.0, 115.0);
  config.beacon_interval = 0.1;
  config.loss_rate = 0.03;  // Per-hop query losses -> retries.
  config.duration = 2.5;
  config.seed = 42;
  // Kills land mid-run on nodes that carry traffic (never the sink).
  config.node_kills = {{0.6, 101}, {0.9, 333}, {1.4, 512}, {1.4, 700}};
  std::string error;
  const auto spec = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=100;mix@knn=50,window=25,aggregate=25;"
      "k@lo=4,hi=12;deadline@s=1.0;admit@inflight=48,queue=32;"
      "cache@ttl=0.4;coalesce@window=0.15",
      &error);
  EXPECT_TRUE(spec.has_value()) << error;
  config.query.enabled = true;
  config.query.spec = *spec;
  config.query.sink = 0;
  config.query.warmup = 0.2;  // Let neighbor tables fill first.
  return config;
}

TEST(PsimDeterminismTest, QueryPlaneInvariantAcrossShardCounts) {
  PsimConfig config = QuerySoakConfig();
  config.shards = 1;
  const PsimResult anchor = RunPsim(config);

  // The soak must genuinely exercise the plane: hundreds of mixed-class
  // queries, itinerary traversals, merges, replies, and lossy retries.
  ASSERT_GE(anchor.slo.issued, 200u);
  ASSERT_GT(anchor.slo.completed, 0u);
  ASSERT_GT(anchor.totals.qp.home_arrivals, 0u);
  ASSERT_GT(anchor.totals.qp.qnode_hops, 0u);
  ASSERT_GT(anchor.totals.qp.sector_results, 0u);
  ASSERT_GT(anchor.totals.qp.replies, 0u);
  ASSERT_GT(anchor.totals.qp.retries, 0u);
  const std::string anchor_slo = anchor.slo.ToJson();
  const std::string anchor_obs = InvariantObsJson(anchor.obs);

  for (int shards : {2, 4, 8}) {
    config.shards = shards;
    PsimEngine engine(config);
    ASSERT_EQ(engine.shards(), shards) << "field too narrow for test";
    const PsimResult result = engine.Run();
    EXPECT_EQ(result.slo.ToJson(), anchor_slo) << "shards=" << shards;
    EXPECT_EQ(InvariantObsJson(result.obs), anchor_obs)
        << "shards=" << shards;
    EXPECT_EQ(result.totals.qp.InvariantCounters(),
              anchor.totals.qp.InvariantCounters())
        << "query traffic drifted at shards=" << shards;
    // Query frames really cross shard mailboxes, and the exchange
    // balances (drained remails re-enter the boundary tally).
    EXPECT_GT(result.totals.qp.boundary_frames, 0u);
    EXPECT_EQ(result.totals.qp.boundary_frames,
              result.totals.qp.foreign_frames);
    // The allocation gate holds with query traffic in the mailboxes.
    for (size_t s = 0; s < result.shard_stats.size(); ++s) {
      EXPECT_EQ(result.shard_stats[s].steady_allocs, 0u)
          << "shard " << s << " allocated with queries enabled";
    }
    EXPECT_TRUE(engine.OwnershipInvariantHolds());
  }
}

// --- Contract 4, flight-recorder extension: the deterministic series
// --- sampled at window boundaries are byte-equal across shard counts.

TEST(PsimDeterminismTest, FlightRecordingInvariantAcrossShardCounts) {
  PsimConfig config = QuerySoakConfig();
  config.ts = TimeSeriesOptions{0.25, 256};
  config.shards = 1;
  const PsimResult anchor = RunPsim(config);

  // The recording must carry real data, not just empty series.
  ASSERT_FALSE(anchor.ts.series().empty());
  const TimeSeries* issued = anchor.ts.Find("workload.issued_per_s");
  ASSERT_NE(issued, nullptr);
  ASSERT_GT(issued->size(), 2u);
  EXPECT_GT(issued->Max(), 0.0);
  const std::string anchor_json = anchor.ts.DeterministicJson();

  for (int shards : {2, 4, 8}) {
    config.shards = shards;
    PsimEngine engine(config);
    ASSERT_EQ(engine.shards(), shards) << "field too narrow for test";
    const PsimResult result = engine.Run();
    EXPECT_EQ(result.ts.DeterministicJson(), anchor_json)
        << "recording drifted at shards=" << shards;
    // Each shard contributes its own diagnostic occupancy series; those
    // are partition-dependent by design and live outside the contract.
    size_t shard_series = 0;
    for (const TimeSeries& s : result.ts.series()) {
      if (s.diagnostic() && s.name().rfind("psim.shard", 0) == 0) {
        ++shard_series;
      }
    }
    EXPECT_GT(shard_series, 0u) << "shards=" << shards;
  }
}

TEST(PsimDeterminismTest, QueryPlaneShardedRunRepeatsExactly) {
  PsimConfig config = QuerySoakConfig();
  config.shards = 4;
  const PsimResult a = RunPsim(config);
  const PsimResult b = RunPsim(config);
  EXPECT_EQ(a.slo.ToJson(), b.slo.ToJson());
  EXPECT_EQ(a.obs.ToJson(), b.obs.ToJson());  // Full snapshot this time.
  ASSERT_EQ(a.shard_stats.size(), b.shard_stats.size());
  for (size_t s = 0; s < a.shard_stats.size(); ++s) {
    EXPECT_EQ(a.shard_stats[s].qp.InvariantCounters(),
              b.shard_stats[s].qp.InvariantCounters());
    EXPECT_EQ(a.shard_stats[s].qp.boundary_frames,
              b.shard_stats[s].qp.boundary_frames);
    EXPECT_EQ(a.shard_stats[s].qp.state_migrations,
              b.shard_stats[s].qp.state_migrations);
  }
}

// --- Harness integration: --shards > 1 runs the substrate and reports
// --- through the standard RunMetrics/obs plumbing. -------------------

TEST(PsimDeterminismTest, HarnessShardedRunReportsSubstrateMetrics) {
  ExperimentConfig config;
  config.network.node_count = 512;
  config.network.field = Rect::Field(560.0, 115.0);
  config.duration = 0.8;
  config.warmup = 0.0;
  config.runs = 1;
  config.shards = 4;
  const RunMetrics m = RunOnce(config, 42);
  EXPECT_EQ(m.queries, 0);  // Substrate-only: no query workload.
  EXPECT_EQ(m.shards_requested, 4);
  EXPECT_EQ(m.shards_effective, 4);
  EXPECT_GT(m.average_degree, 0.0);
  EXPECT_GT(m.obs.CounterValue("psim.frames_sent"), 0u);
  EXPECT_GT(m.obs.CounterValue("psim.boundary_frames"), 0u);
  EXPECT_EQ(m.obs.CounterValue("psim.audit_mismatches"), 0u);
  EXPECT_EQ(m.obs.CounterValue("net.allocs"), 0u);
  EXPECT_EQ(m.obs.GaugeValue("psim.shards"), 4.0);
  EXPECT_GT(m.engine.events_fired, 0u);
  // Identical harness runs reproduce bit-for-bit, obs included.
  const RunMetrics again = RunOnce(config, 42);
  EXPECT_EQ(m.obs.ToJson(), again.obs.ToJson());
  EXPECT_EQ(m.average_degree, again.average_degree);
}

}  // namespace
}  // namespace diknn
