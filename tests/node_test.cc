#include "net/node.h"

#include <memory>

#include <gtest/gtest.h>

namespace diknn {
namespace {

struct TestMessage : Message {
  int value = 0;
  explicit TestMessage(int v) : value(v) {}
};

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() : channel_(&sim_, {}, Rng(1)) {}

  Node* Make(NodeId id, Point pos) {
    nodes_.push_back(std::make_unique<Node>(
        id, &sim_, &channel_, std::make_unique<StaticMobility>(pos),
        NodeParams{}, Rng(50 + id)));
    channel_.Attach(nodes_.back().get());
    return nodes_.back().get();
  }

  Simulator sim_;
  Channel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(NodeTest, ExposesIdentityAndPosition) {
  Node* node = Make(5, {10, 20});
  EXPECT_EQ(node->id(), 5);
  EXPECT_EQ(node->Position(), Point(10, 20));
  EXPECT_DOUBLE_EQ(node->Speed(), 0.0);
  EXPECT_TRUE(node->alive());
  EXPECT_FALSE(node->is_infrastructure());
}

TEST_F(NodeTest, HandlerReplacementKeepsLatest) {
  Node* a = Make(0, {0, 0});
  Node* b = Make(1, {5, 0});
  int first = 0, second = 0;
  b->RegisterHandler(MessageType::kBeacon,
                     [&](const Packet&) { ++first; });
  b->RegisterHandler(MessageType::kBeacon,
                     [&](const Packet&) { ++second; });
  a->SendBroadcast(MessageType::kBeacon, std::make_shared<TestMessage>(0),
                   10, EnergyCategory::kBeacon);
  sim_.Run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST_F(NodeTest, UnhandledTypeIsDroppedQuietly) {
  Node* a = Make(0, {0, 0});
  Make(1, {5, 0});  // No handler registered.
  a->SendBroadcast(MessageType::kDiknnProbe,
                   std::make_shared<TestMessage>(0), 10,
                   EnergyCategory::kQuery);
  sim_.Run();  // Must not crash.
  SUCCEED();
}

TEST_F(NodeTest, DeadNodeIgnoresReceives) {
  Node* a = Make(0, {0, 0});
  Node* b = Make(1, {5, 0});
  int received = 0;
  b->RegisterHandler(MessageType::kBeacon,
                     [&](const Packet&) { ++received; });
  b->set_alive(false);
  a->SendBroadcast(MessageType::kBeacon, std::make_shared<TestMessage>(0),
                   10, EnergyCategory::kBeacon);
  sim_.Run();
  EXPECT_EQ(received, 0);
  b->set_alive(true);
  a->SendBroadcast(MessageType::kBeacon, std::make_shared<TestMessage>(0),
                   10, EnergyCategory::kBeacon);
  sim_.Run();
  EXPECT_EQ(received, 1);
}

TEST_F(NodeTest, InfrastructureFlag) {
  Node* node = Make(0, {0, 0});
  node->set_infrastructure(true);
  EXPECT_TRUE(node->is_infrastructure());
}

TEST_F(NodeTest, PayloadSharedNotCopied) {
  Node* a = Make(0, {0, 0});
  Node* b = Make(1, {5, 0});
  auto payload = std::make_shared<TestMessage>(99);
  const Message* raw = payload.get();
  const Message* seen = nullptr;
  b->RegisterHandler(MessageType::kBeacon, [&](const Packet& p) {
    seen = p.payload.get();
  });
  a->SendBroadcast(MessageType::kBeacon, payload, 10,
                   EnergyCategory::kBeacon);
  sim_.Run();
  EXPECT_EQ(seen, raw);  // Zero-copy within the simulation.
}

}  // namespace
}  // namespace diknn
