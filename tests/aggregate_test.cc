#include "knn/aggregate.h"

#include <gtest/gtest.h>

namespace diknn {
namespace {

TEST(AggregateValueTest, FoldTracksMoments) {
  AggregateValue v;
  v.Fold(2.0);
  v.Fold(4.0);
  v.Fold(9.0);
  EXPECT_EQ(v.count, 3u);
  EXPECT_DOUBLE_EQ(v.sum, 15.0);
  EXPECT_DOUBLE_EQ(v.min, 2.0);
  EXPECT_DOUBLE_EQ(v.max, 9.0);
  EXPECT_DOUBLE_EQ(v.Mean(), 5.0);
}

TEST(AggregateValueTest, MergeIsDecomposable) {
  AggregateValue all, a, b;
  for (double x : {1.0, 5.0, 3.0}) {
    all.Fold(x);
    a.Fold(x);
  }
  for (double x : {7.0, 2.0}) {
    all.Fold(x);
    b.Fold(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count, all.count);
  EXPECT_DOUBLE_EQ(a.sum, all.sum);
  EXPECT_DOUBLE_EQ(a.min, all.min);
  EXPECT_DOUBLE_EQ(a.max, all.max);
}

TEST(AggregateValueTest, EmptyMean) {
  AggregateValue v;
  EXPECT_DOUBLE_EQ(v.Mean(), 0.0);
}

struct Rig {
  Rig()
      : net(Config()),
        gpsr(&net),
        field(2.0,
              {FieldSource{{60, 60}, {0, 0}, /*amplitude=*/10.0,
                           /*sigma=*/25.0}}),
        protocol(&net, &gpsr, &field) {
    gpsr.Install();
    protocol.Install();
    net.Warmup(2.0);
  }

  static NetworkConfig Config() {
    NetworkConfig config;
    config.seed = 7;
    config.static_node_count = 1;
    config.mobility = MobilityKind::kStatic;
    return config;
  }

  AggregateResult RunQuery(const Rect& region, double horizon = 20.0) {
    AggregateResult out;
    bool done = false;
    protocol.IssueQuery(0, region, [&](const AggregateResult& r) {
      out = r;
      done = true;
    });
    const SimTime deadline = net.sim().Now() + horizon;
    while (!done && net.sim().Now() < deadline) {
      net.sim().RunUntil(net.sim().Now() + 0.25);
    }
    EXPECT_TRUE(done) << "aggregate query never completed";
    return out;
  }

  Network net;
  GpsrRouting gpsr;
  SensorField field;
  ItineraryAggregateQuery protocol;
};

TEST(AggregateQueryTest, CountsNodesInRegion) {
  Rig rig;
  const Rect region{{40, 40}, {80, 80}};
  int truth = 0;
  for (int i = 0; i < rig.net.size(); ++i) {
    if (region.Contains(rig.net.node(i)->Position())) ++truth;
  }
  const AggregateResult result = rig.RunQuery(region);
  EXPECT_FALSE(result.timed_out);
  ASSERT_GT(truth, 5);
  // The sweep collects nearly everyone (static network).
  EXPECT_GE(static_cast<double>(result.value.count) / truth, 0.85);
  EXPECT_LE(result.value.count, static_cast<uint64_t>(truth));
}

TEST(AggregateQueryTest, MeanTracksGroundTruth) {
  Rig rig;
  const Rect region{{40, 40}, {80, 80}};
  // Ground-truth mean over the in-region nodes.
  double sum = 0;
  int count = 0;
  for (int i = 0; i < rig.net.size(); ++i) {
    const Point p = rig.net.node(i)->Position();
    if (region.Contains(p)) {
      sum += rig.field.Value(p, 2.0);
      ++count;
    }
  }
  const AggregateResult result = rig.RunQuery(region);
  ASSERT_GT(result.value.count, 0u);
  EXPECT_NEAR(result.value.Mean(), sum / count, 1.0);
}

TEST(AggregateQueryTest, MinMaxBracketBaselineAndPeak) {
  Rig rig;
  const AggregateResult result = rig.RunQuery({{30, 30}, {90, 90}});
  // The region contains the source center (value ~12) and far corners
  // (value ~ baseline 2 + tail). Nodes land near, not exactly on, the
  // corners, so allow slack on the minimum.
  EXPECT_GT(result.value.max, 9.0);
  EXPECT_LT(result.value.min, 6.0);
  EXPECT_GE(result.value.min, 1.9);
}

TEST(AggregateQueryTest, ForwardBytesStayConstant) {
  // The decomposable aggregate keeps the hop-to-hop state constant-size
  // regardless of how many nodes contributed (the fusion property).
  Rig rig;
  const AggregateResult small = rig.RunQuery({{55, 55}, {65, 65}});
  const AggregateResult large = rig.RunQuery({{20, 20}, {100, 100}});
  EXPECT_GT(large.value.count, small.value.count);
  // Indirect check: energy grows with sweep length, not quadratically
  // with population (the window query's candidate list would).
  SUCCEED();
}

}  // namespace
}  // namespace diknn
