// Equivalence of the channel's spatial-grid fast path with the brute-force
// O(N) scan: same seeds must produce bit-identical traffic counters,
// energy totals, and experiment metrics, across static, mobile (fast RWP),
// group-mobility, lossy, and churn-heavy scenarios.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "net/channel.h"
#include "net/churn.h"
#include "net/network.h"
#include "net/node.h"

namespace diknn {
namespace {

void ExpectSameStats(const ChannelStats& grid, const ChannelStats& brute) {
  EXPECT_EQ(grid.frames_sent, brute.frames_sent);
  EXPECT_EQ(grid.receptions_attempted, brute.receptions_attempted);
  EXPECT_EQ(grid.receptions_delivered, brute.receptions_delivered);
  EXPECT_EQ(grid.receptions_collided, brute.receptions_collided);
  EXPECT_EQ(grid.receptions_lost, brute.receptions_lost);
  // candidates_scanned intentionally differs: that is the optimization.
}

void ExpectSameMetrics(const RunMetrics& grid, const RunMetrics& brute) {
  EXPECT_EQ(grid.queries, brute.queries);
  EXPECT_EQ(grid.timeouts, brute.timeouts);
  EXPECT_EQ(grid.avg_latency, brute.avg_latency);
  EXPECT_EQ(grid.p95_latency, brute.p95_latency);
  EXPECT_EQ(grid.avg_pre_accuracy, brute.avg_pre_accuracy);
  EXPECT_EQ(grid.avg_post_accuracy, brute.avg_post_accuracy);
  EXPECT_EQ(grid.energy_joules, brute.energy_joules);
  EXPECT_EQ(grid.beacon_energy_joules, brute.beacon_energy_joules);
  EXPECT_EQ(grid.average_degree, brute.average_degree);
}

// Beacon-driven traffic over a full Network, optionally with churn,
// returning the channel counters plus the total energy spent.
struct SubstrateOutcome {
  ChannelStats stats;
  double energy = 0.0;
  double degree = 0.0;
};

SubstrateOutcome RunSubstrate(NetworkConfig config, bool grid,
                              bool with_churn) {
  config.use_spatial_grid = grid;
  Network net(config);
  std::unique_ptr<NodeChurn> churn;
  if (with_churn) {
    ChurnParams churn_params;
    churn_params.mean_up_time = 6.0;
    churn_params.mean_down_time = 2.0;
    churn_params.initial_dead_fraction = 0.1;
    churn = std::make_unique<NodeChurn>(&net.sim(), net.AllNodes(),
                                        churn_params,
                                        Rng(config.seed * 31 + 7));
    churn->Start();
  }
  net.Warmup(15.0);  // Beacon storms across many refresh intervals.
  SubstrateOutcome out;
  out.stats = net.channel().stats();
  out.energy = net.TotalEnergy();
  out.degree = net.AverageDegree();
  return out;
}

TEST(ChannelGridEquivalence, BeaconTrafficStaticField) {
  for (uint64_t seed : {1u, 7u}) {
    NetworkConfig config;
    config.node_count = 150;
    config.mobility = MobilityKind::kStatic;
    config.seed = seed;
    const auto grid = RunSubstrate(config, true, false);
    const auto brute = RunSubstrate(config, false, false);
    ExpectSameStats(grid.stats, brute.stats);
    EXPECT_EQ(grid.energy, brute.energy);
    EXPECT_EQ(grid.degree, brute.degree);
  }
}

TEST(ChannelGridEquivalence, BeaconTrafficFastMobileLossy) {
  for (uint64_t seed : {2u, 9u}) {
    NetworkConfig config;
    config.node_count = 150;
    config.mobility = MobilityKind::kRandomWaypoint;
    config.max_speed = 40.0;  // Far beyond the paper's mu_max: max drift.
    config.loss_rate = 0.05;  // Exercises per-receiver RNG draw ordering.
    config.seed = seed;
    const auto grid = RunSubstrate(config, true, false);
    const auto brute = RunSubstrate(config, false, false);
    ExpectSameStats(grid.stats, brute.stats);
    EXPECT_EQ(grid.energy, brute.energy);
    EXPECT_EQ(grid.degree, brute.degree);
  }
}

TEST(ChannelGridEquivalence, BeaconTrafficGroupMobilityWithChurn) {
  for (uint64_t seed : {3u, 11u}) {
    NetworkConfig config;
    config.node_count = 120;
    config.mobility = MobilityKind::kGroup;
    config.seed = seed;
    const auto grid = RunSubstrate(config, true, true);
    const auto brute = RunSubstrate(config, false, true);
    ExpectSameStats(grid.stats, brute.stats);
    EXPECT_EQ(grid.energy, brute.energy);
    EXPECT_EQ(grid.degree, brute.degree);
  }
}

TEST(ChannelGridEquivalence, FullExperimentMetricsBitIdentical) {
  for (uint64_t seed : {42u, 43u, 44u}) {
    ExperimentConfig config;
    config.network.node_count = 120;
    config.network.field = Rect::Field(90.0, 90.0);
    config.k = 15;
    config.duration = 6.0;
    config.drain = 4.0;

    config.network.use_spatial_grid = true;
    const RunMetrics grid = RunOnce(config, seed);
    config.network.use_spatial_grid = false;
    const RunMetrics brute = RunOnce(config, seed);
    ExpectSameMetrics(grid, brute);
  }
}

TEST(ChannelGridEquivalence, GridScansFarFewerCandidates) {
  NetworkConfig config;
  config.node_count = 300;
  config.field = Rect::Field(140.0, 140.0);
  config.seed = 5;
  const auto grid = RunSubstrate(config, true, false);
  const auto brute = RunSubstrate(config, false, false);
  ExpectSameStats(grid.stats, brute.stats);
  // The brute path examines every node per frame; the grid only a 3x3
  // neighborhood. On this field that is at least a 2x reduction (and
  // grows with N at constant density).
  EXPECT_LT(grid.stats.candidates_scanned,
            brute.stats.candidates_scanned / 2);
}

TEST(ChannelGrid, CellSizeCoversRadioRangePlusDrift) {
  NetworkConfig config;
  config.node_count = 30;
  config.max_speed = 10.0;
  Network net(config);
  net.Warmup(1.0);  // Forces the first grid build.
  const Channel& chan = net.channel();
  // radio range 20 m + 10 m/s * refresh interval drift margin.
  EXPECT_GE(chan.grid_cell_size(), chan.params().radio_range_m);
  EXPECT_NEAR(chan.grid_cell_size(),
              chan.params().radio_range_m +
                  10.0 * chan.params().grid_refresh_interval_s,
              1e-9);
}

}  // namespace
}  // namespace diknn
