#include "net/mac.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/node.h"

namespace diknn {
namespace {

struct TestMessage : Message {
  int value = 0;
  explicit TestMessage(int v) : value(v) {}
};

class MacTest : public ::testing::Test {
 protected:
  void Build(const std::vector<Point>& positions, ChannelParams params = {}) {
    channel_ = std::make_unique<Channel>(&sim_, params, Rng(1));
    NodeParams node_params;
    for (size_t i = 0; i < positions.size(); ++i) {
      nodes_.push_back(std::make_unique<Node>(
          static_cast<NodeId>(i), &sim_, channel_.get(),
          std::make_unique<StaticMobility>(positions[i]), node_params,
          Rng(100 + i)));
      channel_->Attach(nodes_.back().get());
    }
  }

  Simulator sim_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(MacTest, UnicastDeliversAndAcks) {
  Build({{0, 0}, {10, 0}});
  int received = 0;
  nodes_[1]->RegisterHandler(MessageType::kGeoRouted, [&](const Packet& p) {
    ++received;
    EXPECT_EQ(static_cast<const TestMessage*>(p.payload.get())->value, 42);
    EXPECT_EQ(p.src, 0);
  });
  bool callback_success = false;
  nodes_[0]->SendUnicast(1, MessageType::kGeoRouted,
                         std::make_shared<TestMessage>(42), 20,
                         EnergyCategory::kQuery,
                         [&](bool ok) { callback_success = ok; });
  sim_.Run();
  EXPECT_EQ(received, 1);
  EXPECT_TRUE(callback_success);
  EXPECT_EQ(nodes_[0]->mac().stats().retries, 0u);
}

TEST_F(MacTest, UnicastToUnreachableFailsAfterRetries) {
  Build({{0, 0}, {100, 0}});  // Out of range.
  bool callback_called = false, callback_success = true;
  nodes_[0]->SendUnicast(1, MessageType::kGeoRouted,
                         std::make_shared<TestMessage>(1), 20,
                         EnergyCategory::kQuery, [&](bool ok) {
                           callback_called = true;
                           callback_success = ok;
                         });
  sim_.Run();
  EXPECT_TRUE(callback_called);
  EXPECT_FALSE(callback_success);
  const MacStats& stats = nodes_[0]->mac().stats();
  EXPECT_EQ(stats.retries, 3u);  // max_frame_retries default.
  EXPECT_EQ(stats.tx_attempts, 4u);
  EXPECT_EQ(stats.send_failures, 1u);
}

TEST_F(MacTest, BroadcastNeedsNoAck) {
  Build({{0, 0}, {10, 0}, {15, 0}});
  int received = 0;
  for (int i = 1; i <= 2; ++i) {
    nodes_[i]->RegisterHandler(MessageType::kBeacon,
                               [&](const Packet&) { ++received; });
  }
  bool done = false;
  nodes_[0]->SendBroadcast(MessageType::kBeacon,
                           std::make_shared<TestMessage>(0), 20,
                           EnergyCategory::kBeacon,
                           [&](bool ok) { done = ok; });
  sim_.Run();
  EXPECT_EQ(received, 2);
  EXPECT_TRUE(done);
  EXPECT_EQ(nodes_[0]->mac().stats().tx_attempts, 1u);
}

TEST_F(MacTest, QueueSerializesFrames) {
  Build({{0, 0}, {10, 0}});
  std::vector<int> received;
  nodes_[1]->RegisterHandler(MessageType::kGeoRouted, [&](const Packet& p) {
    received.push_back(static_cast<const TestMessage*>(p.payload.get())->value);
  });
  for (int i = 0; i < 5; ++i) {
    nodes_[0]->SendUnicast(1, MessageType::kGeoRouted,
                           std::make_shared<TestMessage>(i), 20,
                           EnergyCategory::kQuery);
  }
  sim_.Run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(MacTest, UnicastNotDeliveredToProtocolOfBystander) {
  Build({{0, 0}, {10, 0}, {12, 0}});
  int bystander = 0;
  nodes_[2]->RegisterHandler(MessageType::kGeoRouted,
                             [&](const Packet&) { ++bystander; });
  nodes_[0]->SendUnicast(1, MessageType::kGeoRouted,
                         std::make_shared<TestMessage>(0), 20,
                         EnergyCategory::kQuery);
  sim_.Run();
  EXPECT_EQ(bystander, 0);  // Overheard frames are filtered by the MAC.
}

TEST_F(MacTest, DuplicateSuppression) {
  // Lossy channel forces retransmissions; the receiver must deliver each
  // logical frame to the protocol at most once.
  ChannelParams params;
  params.loss_rate = 0.4;
  Build({{0, 0}, {5, 0}}, params);
  int received = 0;
  nodes_[1]->RegisterHandler(MessageType::kGeoRouted,
                             [&](const Packet&) { ++received; });
  int sent = 0, acked = 0;
  for (int i = 0; i < 200; ++i) {
    sim_.ScheduleAt(i * 0.05, [&] {
      ++sent;
      nodes_[0]->SendUnicast(1, MessageType::kGeoRouted,
                             std::make_shared<TestMessage>(0), 20,
                             EnergyCategory::kQuery, [&](bool ok) {
                               if (ok) ++acked;
                             });
    });
  }
  sim_.Run();
  // Every frame the protocol saw was delivered exactly once, so the
  // receive count can never exceed the send count even though the MAC
  // retransmitted (duplicates_dropped > 0 shows dedup actually engaged).
  EXPECT_LE(received, sent);
  EXPECT_GE(received, acked);  // An acked frame was certainly delivered.
  EXPECT_GT(nodes_[0]->mac().stats().retries, 0u);
  EXPECT_GT(nodes_[1]->mac().stats().duplicates_dropped, 0u);
}

TEST_F(MacTest, CsmaDefersWhileChannelBusy) {
  Build({{0, 0}, {10, 0}, {5, 5}});
  // A foreign transmission occupies the channel for 16 ms — longer than
  // any single backoff draw, short enough that the CSMA retry budget can
  // outlast it.
  Packet big;
  big.type = MessageType::kBeacon;
  big.size_bytes = 500;  // 16 ms on air.
  big.uid = 77;
  channel_->Transmit(nodes_[2].get(), big);

  double delivered_at = -1;
  nodes_[1]->RegisterHandler(MessageType::kGeoRouted, [&](const Packet&) {
    delivered_at = sim_.Now();
  });
  nodes_[0]->SendUnicast(1, MessageType::kGeoRouted,
                         std::make_shared<TestMessage>(0), 20,
                         EnergyCategory::kQuery);
  sim_.Run();
  // The frame could not start until the 16 ms blocker ended.
  EXPECT_GT(delivered_at, 0.016);
}

TEST_F(MacTest, DeadNodeDoesNotSend) {
  Build({{0, 0}, {10, 0}});
  nodes_[0]->set_alive(false);
  bool callback_success = true;
  nodes_[0]->SendUnicast(1, MessageType::kGeoRouted,
                         std::make_shared<TestMessage>(0), 20,
                         EnergyCategory::kQuery,
                         [&](bool ok) { callback_success = ok; });
  sim_.Run();
  EXPECT_FALSE(callback_success);
  EXPECT_EQ(channel_->stats().frames_sent, 0u);
}

TEST_F(MacTest, MacHeaderAddedToWireSize) {
  Build({{0, 0}, {10, 0}});
  double delivered_at = -1;
  nodes_[1]->RegisterHandler(MessageType::kGeoRouted, [&](const Packet& p) {
    delivered_at = sim_.Now();
    EXPECT_EQ(p.size_bytes, 20 + kMacHeaderBytes);
  });
  nodes_[0]->SendUnicast(1, MessageType::kGeoRouted,
                         std::make_shared<TestMessage>(0), 20,
                         EnergyCategory::kQuery);
  sim_.Run();
  EXPECT_GT(delivered_at, 0.0);
}

}  // namespace
}  // namespace diknn
