#include "net/channel.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/node.h"

namespace diknn {
namespace {

// Minimal two-plus-node rig with controllable positions.
class ChannelTest : public ::testing::Test {
 protected:
  void Build(const std::vector<Point>& positions, ChannelParams params = {}) {
    channel_ = std::make_unique<Channel>(&sim_, params, Rng(1));
    NodeParams node_params;
    for (size_t i = 0; i < positions.size(); ++i) {
      nodes_.push_back(std::make_unique<Node>(
          static_cast<NodeId>(i), &sim_, channel_.get(),
          std::make_unique<StaticMobility>(positions[i]), node_params,
          Rng(100 + i)));
      channel_->Attach(nodes_.back().get());
    }
  }

  // Registers a counter handler for beacons on node `id`.
  int* CountBeacons(NodeId id) {
    auto counter = std::make_shared<int>(0);
    counters_.push_back(counter);
    nodes_[id]->RegisterHandler(MessageType::kBeacon,
                                [counter](const Packet&) { ++*counter; });
    return counter.get();
  }

  Packet MakeBeacon(size_t bytes = 20) {
    Packet p;
    p.type = MessageType::kBeacon;
    p.size_bytes = bytes;
    p.dst = kBroadcastId;
    p.uid = next_uid_++;
    return p;
  }

  Simulator sim_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::shared_ptr<int>> counters_;
  uint64_t next_uid_ = 1000;
};

TEST_F(ChannelTest, DeliversWithinRange) {
  Build({{0, 0}, {10, 0}, {50, 0}});
  int* near_count = CountBeacons(1);
  int* far_count = CountBeacons(2);
  channel_->Transmit(nodes_[0].get(), MakeBeacon());
  sim_.Run();
  EXPECT_EQ(*near_count, 1);  // 10 m < 20 m range.
  EXPECT_EQ(*far_count, 0);   // 50 m > range.
  EXPECT_EQ(channel_->stats().receptions_delivered, 1u);
}

TEST_F(ChannelTest, SenderDoesNotHearItself) {
  Build({{0, 0}, {10, 0}});
  int* self_count = CountBeacons(0);
  channel_->Transmit(nodes_[0].get(), MakeBeacon());
  sim_.Run();
  EXPECT_EQ(*self_count, 0);
}

TEST_F(ChannelTest, FrameDurationMatchesBitRate) {
  Build({{0, 0}});
  // 250 kbps: 100 bytes = 800 bits -> 3.2 ms.
  EXPECT_NEAR(channel_->FrameDuration(100), 0.0032, 1e-12);
}

TEST_F(ChannelTest, DeliveryHappensAfterAirTime) {
  Build({{0, 0}, {10, 0}});
  double delivered_at = -1;
  nodes_[1]->RegisterHandler(MessageType::kBeacon, [&](const Packet&) {
    delivered_at = sim_.Now();
  });
  channel_->Transmit(nodes_[0].get(), MakeBeacon(100));
  sim_.Run();
  EXPECT_NEAR(delivered_at, 0.0032, 1e-12);
}

TEST_F(ChannelTest, OverlappingFramesCollideAtCommonReceiver) {
  // Nodes 0 and 2 are hidden from each other (40 m apart) but both reach
  // node 1 in the middle: the classic hidden-terminal collision.
  Build({{0, 0}, {20, 0}, {40, 0}});
  int* count = CountBeacons(1);
  channel_->Transmit(nodes_[0].get(), MakeBeacon(100));
  sim_.ScheduleAfter(0.001, [&] {  // Overlaps the 3.2 ms first frame.
    channel_->Transmit(nodes_[2].get(), MakeBeacon(100));
  });
  sim_.Run();
  EXPECT_EQ(*count, 0);
  EXPECT_EQ(channel_->stats().receptions_collided, 2u);
}

TEST_F(ChannelTest, NonOverlappingFramesBothDeliver) {
  Build({{0, 0}, {20, 0}, {40, 0}});
  int* count = CountBeacons(1);
  channel_->Transmit(nodes_[0].get(), MakeBeacon(100));
  sim_.ScheduleAfter(0.01, [&] {  // Well after the first frame ends.
    channel_->Transmit(nodes_[2].get(), MakeBeacon(100));
  });
  sim_.Run();
  EXPECT_EQ(*count, 2);
}

TEST_F(ChannelTest, CaptureModePreservesEarlierFrame) {
  ChannelParams params;
  params.capture = true;
  Build({{0, 0}, {20, 0}, {40, 0}}, params);
  int* count = CountBeacons(1);
  channel_->Transmit(nodes_[0].get(), MakeBeacon(100));
  sim_.ScheduleAfter(0.001, [&] {
    channel_->Transmit(nodes_[2].get(), MakeBeacon(100));
  });
  sim_.Run();
  EXPECT_EQ(*count, 1);  // The first frame survives; the later one dies.
}

TEST_F(ChannelTest, RandomLossDropsApproximatelyAtRate) {
  ChannelParams params;
  params.loss_rate = 0.3;
  Build({{0, 0}, {10, 0}}, params);
  int* count = CountBeacons(1);
  for (int i = 0; i < 1000; ++i) {
    sim_.ScheduleAt(i * 0.01, [&] {
      channel_->Transmit(nodes_[0].get(), MakeBeacon(20));
    });
  }
  sim_.Run();
  EXPECT_NEAR(*count, 700, 60);
  EXPECT_NEAR(channel_->stats().receptions_lost, 300u, 60);
}

TEST_F(ChannelTest, DeadNodesDoNotReceive) {
  Build({{0, 0}, {10, 0}});
  int* count = CountBeacons(1);
  nodes_[1]->set_alive(false);
  channel_->Transmit(nodes_[0].get(), MakeBeacon());
  sim_.Run();
  EXPECT_EQ(*count, 0);
  EXPECT_EQ(channel_->stats().receptions_attempted, 0u);
}

TEST_F(ChannelTest, CarrierSenseSeesOngoingTransmission) {
  Build({{0, 0}, {10, 0}});
  channel_->Transmit(nodes_[0].get(), MakeBeacon(1000));  // 32 ms on air.
  EXPECT_TRUE(channel_->IsBusyAt({5, 0}));
  EXPECT_FALSE(channel_->IsBusyAt({100, 0}));  // Out of hearing.
  sim_.RunUntil(0.1);
  EXPECT_FALSE(channel_->IsBusyAt({5, 0}));  // Frame has ended.
}

TEST_F(ChannelTest, StatsConservation) {
  // Under a random barrage, every attempted reception is accounted for
  // exactly once: delivered, collided, or randomly lost.
  ChannelParams params;
  params.loss_rate = 0.1;
  std::vector<Point> positions;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    positions.push_back(rng.PointInRect({{0, 0}, {60, 60}}));
  }
  Build(positions, params);
  for (int i = 0; i < 500; ++i) {
    const int sender = rng.UniformInt(0, 19);
    sim_.ScheduleAt(rng.Uniform(0.0, 2.0), [this, sender] {
      channel_->Transmit(nodes_[sender].get(), MakeBeacon(40));
    });
  }
  sim_.Run();
  const ChannelStats& stats = channel_->stats();
  EXPECT_EQ(stats.frames_sent, 500u);
  EXPECT_GT(stats.receptions_attempted, 500u);
  EXPECT_EQ(stats.receptions_attempted,
            stats.receptions_delivered + stats.receptions_collided +
                stats.receptions_lost);
  EXPECT_GT(stats.receptions_collided, 0u);  // The barrage collides.
  EXPECT_GT(stats.receptions_lost, 0u);
}

TEST_F(ChannelTest, TransmitterIsChargedEnergy) {
  Build({{0, 0}, {10, 0}});
  channel_->Transmit(nodes_[0].get(), MakeBeacon(100));
  EXPECT_GT(nodes_[0]->energy().Joules(EnergyCategory::kQuery), 0.0);
  sim_.Run();
  // Receiver pays reception energy too.
  EXPECT_GT(nodes_[1]->energy().Joules(EnergyCategory::kQuery), 0.0);
}

}  // namespace
}  // namespace diknn
