#include "net/network.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace diknn {
namespace {

NetworkConfig SmallConfig() {
  NetworkConfig config;
  config.node_count = 50;
  config.field = Rect::Field(80, 80);
  config.seed = 5;
  return config;
}

TEST(NetworkTest, BuildsRequestedNodes) {
  Network net(SmallConfig());
  EXPECT_EQ(net.size(), 50);
  for (int i = 0; i < net.size(); ++i) {
    ASSERT_NE(net.node(i), nullptr);
    EXPECT_EQ(net.node(i)->id(), i);
    EXPECT_TRUE(net.config().field.Contains(net.node(i)->Position()));
  }
}

TEST(NetworkTest, WarmupPopulatesNeighborTables) {
  Network net(SmallConfig());
  EXPECT_DOUBLE_EQ(net.AverageDegree(), 0.0);
  net.Warmup(1.5);
  EXPECT_GT(net.AverageDegree(), 3.0);
}

TEST(NetworkTest, TrueKnnOrderedByDistance) {
  NetworkConfig config = SmallConfig();
  config.mobility = MobilityKind::kStatic;
  Network net(config);
  const Point q{40, 40};
  const auto knn = net.TrueKnn(q, 10);
  ASSERT_EQ(knn.size(), 10u);
  double prev = -1;
  for (NodeId id : knn) {
    const double d = Distance(net.node(id)->Position(), q);
    EXPECT_GE(d, prev);
    prev = d;
  }
  // No non-member is closer than the worst member.
  for (int i = 0; i < net.size(); ++i) {
    if (std::find(knn.begin(), knn.end(), i) != knn.end()) continue;
    EXPECT_GE(Distance(net.node(i)->Position(), q), prev - 1e-12);
  }
}

TEST(NetworkTest, TrueKnnClampsToPopulation) {
  Network net(SmallConfig());
  EXPECT_EQ(net.TrueKnn({0, 0}, 500).size(), 50u);
}

TEST(NetworkTest, TrueKnnSkipsDeadNodes) {
  NetworkConfig config = SmallConfig();
  config.mobility = MobilityKind::kStatic;
  Network net(config);
  const Point q{40, 40};
  const NodeId nearest = net.TrueNearestNode(q);
  net.node(nearest)->set_alive(false);
  EXPECT_NE(net.TrueNearestNode(q), nearest);
}

TEST(NetworkTest, InfrastructureNodesExcludedFromKnn) {
  NetworkConfig config = SmallConfig();
  config.infrastructure_positions = {{40, 40}};  // Right at the query.
  Network net(config);
  EXPECT_EQ(net.size(), 51);
  EXPECT_TRUE(net.node(50)->is_infrastructure());
  const auto knn = net.TrueKnn({40, 40}, 5);
  EXPECT_EQ(std::count(knn.begin(), knn.end(), 50), 0);
}

TEST(NetworkTest, StaticNodeCountPinsNodes) {
  NetworkConfig config = SmallConfig();
  config.static_node_count = 3;
  config.max_speed = 20.0;
  Network net(config);
  std::vector<Point> before;
  for (int i = 0; i < 5; ++i) before.push_back(net.node(i)->Position());
  net.Warmup(5.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(net.node(i)->Position(), before[i]) << "static node " << i;
  }
}

TEST(NetworkTest, SameSeedSameTopology) {
  Network a(SmallConfig());
  Network b(SmallConfig());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(i)->Position(), b.node(i)->Position());
  }
}

TEST(NetworkTest, DifferentSeedDifferentTopology) {
  NetworkConfig config = SmallConfig();
  Network a(config);
  config.seed = 6;
  Network b(config);
  int same = 0;
  for (int i = 0; i < a.size(); ++i) {
    if (a.node(i)->Position() == b.node(i)->Position()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(NetworkTest, BeaconEnergyIsChargedToBeaconCategory) {
  Network net(SmallConfig());
  net.Warmup(2.0);
  EXPECT_GT(net.TotalEnergy(EnergyCategory::kBeacon), 0.0);
  EXPECT_DOUBLE_EQ(net.TotalEnergy(EnergyCategory::kQuery), 0.0);
  EXPECT_DOUBLE_EQ(net.TotalEnergy(),
                   net.TotalEnergy(EnergyCategory::kBeacon) +
                       net.TotalEnergy(EnergyCategory::kMaintenance) +
                       net.TotalEnergy(EnergyCategory::kQuery));
}

TEST(NetworkTest, DegreeScalesWithFieldSize) {
  NetworkConfig dense = SmallConfig();
  dense.node_count = 100;
  dense.field = Rect::Field(60, 60);
  NetworkConfig sparse = dense;
  sparse.field = Rect::Field(150, 150);
  Network a(dense), b(sparse);
  a.Warmup(1.5);
  b.Warmup(1.5);
  EXPECT_GT(a.AverageDegree(), 2.0 * b.AverageDegree());
}

}  // namespace
}  // namespace diknn
