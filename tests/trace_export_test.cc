// Export round-trip: everything WriteChromeTrace emits must parse as one
// JSON document (Perfetto is strict), and the counter-track mapping for
// an attached flight recording must land on the documented synthetic
// pids — run-level series on pid 1000000, psim.shardK.* diagnostics on
// pid 1000001+K, annotations as instants on the base pid.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/json.h"
#include "obs/timeseries.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"

namespace diknn {
namespace {

constexpr double kBasePid = 1000000.0;

TraceData SmallTrace() {
  Tracer tracer(1.0, 42);
  const TraceContext root = tracer.StartQuery(0.0);
  const SpanId route = tracer.BeginSpan(root, SpanKind::kRoute, 0.1, -1, 3);
  tracer.EndSpan(root.trace_id, route, 0.4);
  const SpanId sector = tracer.BeginSpan(root, SpanKind::kSector, 0.4, 1);
  tracer.EndSpan(root.trace_id, sector, 0.9);
  tracer.AddEvent(root, TraceEventKind::kReply, 0.9, 3);
  tracer.CloseTrace(root.trace_id, 1.0);
  return tracer.Snapshot();
}

TEST(TraceExportTest, ChromeTraceParsesAsJson) {
  TraceSink sink(SmallTrace());
  std::ostringstream os;
  sink.WriteChromeTrace(os);
  std::string error;
  const auto doc = JsonValue::Parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  EXPECT_FALSE(events->array.empty());
  const JsonValue* paths = doc->Find("criticalPaths");
  ASSERT_NE(paths, nullptr);
  ASSERT_TRUE(paths->IsArray());
  ASSERT_FALSE(paths->array.empty());
  const JsonValue& p = paths->array.front();
  EXPECT_NE(p.Find("query"), nullptr);
  EXPECT_NE(p.Find("total_s"), nullptr);
  EXPECT_NE(p.Find("dominant"), nullptr);
}

TEST(TraceExportTest, CounterTracksLandOnSyntheticPids) {
  TimeSeriesSet ts{TimeSeriesOptions{0.5, 16}};
  TimeSeries* goodput = ts.Add("workload.goodput_per_s");
  goodput->Append(0.5, 3.0);
  goodput->Append(1.0, 4.0);
  ts.Add("psim.shard2.window_occupancy", /*diagnostic=*/true)
      ->Append(0.5, 7.5);
  ts.Annotate(0.75, "node.kill", 12.0);

  TraceSink sink(SmallTrace());
  sink.set_timeseries(&ts);
  std::ostringstream os;
  sink.WriteChromeTrace(os);
  std::string error;
  const auto doc = JsonValue::Parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;

  int counters = 0, shard_counters = 0, instants = 0, metadata = 0;
  for (const JsonValue& e : doc->Find("traceEvents")->array) {
    const std::string ph = e.Find("ph") ? e.Find("ph")->StringOr("") : "";
    const std::string name =
        e.Find("name") ? e.Find("name")->StringOr("") : "";
    const double pid = e.Find("pid") ? e.Find("pid")->NumberOr(-1) : -1;
    if (ph == "C") {
      ++counters;
      if (name == "workload.goodput_per_s") {
        EXPECT_EQ(pid, kBasePid);
        const JsonValue* v = e.Get("args", "value");
        ASSERT_NE(v, nullptr);
        EXPECT_TRUE(v->NumberOr(-1) == 3.0 || v->NumberOr(-1) == 4.0);
      } else if (name == "psim.shard2.window_occupancy") {
        EXPECT_EQ(pid, kBasePid + 3);  // 1000001 + shard index 2.
        ++shard_counters;
      }
    } else if (ph == "i" && name == "node.kill") {
      EXPECT_EQ(pid, kBasePid);
      ++instants;
    } else if (ph == "M" && name == "process_name" && pid >= kBasePid) {
      ++metadata;
      const JsonValue* label = e.Get("args", "name");
      ASSERT_NE(label, nullptr);
      if (pid == kBasePid) {
        EXPECT_EQ(label->StringOr(""), "timeseries");
      } else {
        EXPECT_EQ(label->StringOr(""), "timeseries shard 2");
      }
    }
  }
  EXPECT_EQ(counters, 3);  // Two goodput samples + one shard sample.
  EXPECT_EQ(shard_counters, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(metadata, 2);  // One process row per synthetic pid.
}

TEST(TraceExportTest, EmptyRecordingEmitsNoCounterTracks) {
  TimeSeriesSet empty;
  TraceSink sink(SmallTrace());
  sink.set_timeseries(&empty);
  std::ostringstream os;
  sink.WriteChromeTrace(os);
  EXPECT_EQ(os.str().find("\"ph\": \"C\""), std::string::npos);
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(os.str(), &error).has_value()) << error;
}

TEST(TraceExportTest, SeriesNamesAreJsonEscapedInCounterEvents) {
  TimeSeriesSet ts{TimeSeriesOptions{1.0, 4}};
  ts.Add("odd\"name")->Append(1.0, 2.0);
  TraceSink sink(SmallTrace());
  sink.set_timeseries(&ts);
  std::ostringstream os;
  sink.WriteChromeTrace(os);
  std::string error;
  const auto doc = JsonValue::Parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  bool found = false;
  for (const JsonValue& e : doc->Find("traceEvents")->array) {
    if (e.Find("name") && e.Find("name")->StringOr("") == "odd\"name") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace diknn
