#include "knn/knnb.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace diknn {
namespace {

constexpr double kR = 20.0;  // Radio range.
constexpr double kMaxRadius = 150.0;

// Builds a synthetic straight-line info list of `hops` entries ending at
// the query point, with per-hop distance `hop_len` and a constant density
// `density` (nodes/m^2) feeding exact lune-based enc counts.
std::vector<RouteHopInfo> SyntheticList(int hops, double hop_len,
                                        double density) {
  std::vector<RouteHopInfo> list;
  for (int i = 0; i < hops; ++i) {
    RouteHopInfo info;
    info.location = {i * hop_len, 0.0};
    const double area =
        i == 0 ? kPi * kR * kR : LuneArea(kR, hop_len);
    info.encountered = static_cast<int>(std::round(density * area));
    list.push_back(info);
  }
  return list;
}

TEST(LuneAreaTest, DisjointDisksGiveFullDisk) {
  EXPECT_DOUBLE_EQ(LuneArea(20.0, 40.0), kPi * 400.0);
  EXPECT_DOUBLE_EQ(LuneArea(20.0, 100.0), kPi * 400.0);
}

TEST(LuneAreaTest, CoincidentDisksGiveZero) {
  EXPECT_DOUBLE_EQ(LuneArea(20.0, 0.0), 0.0);
}

TEST(LuneAreaTest, MonotoneInDistance) {
  double prev = 0.0;
  for (double d = 1.0; d <= 40.0; d += 1.0) {
    const double a = LuneArea(20.0, d);
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(LuneAreaTest, HalfOverlapValue) {
  // d = r: standard lens formula check.
  const double r = 20.0;
  const double lens = 2 * r * r * std::acos(0.5) - (r / 2) * std::sqrt(3 * r * r);
  EXPECT_NEAR(LuneArea(r, r), kPi * r * r - lens, 1e-9);
}

TEST(KnnbTest, EmptyListFallsBack) {
  const KnnbResult res = Knnb({}, {0, 0}, kR, 10, kMaxRadius);
  EXPECT_TRUE(res.extrapolated);
  EXPECT_GE(res.radius, kR);
  EXPECT_LE(res.radius, kMaxRadius);
}

TEST(KnnbTest, RadiusNearOptimalForUniformDensity) {
  // Density 0.015 nodes/m^2, k = 40 -> optimal radius sqrt(k/(pi D)) ~ 29 m.
  const double density = 0.015;
  const auto list = SyntheticList(12, 15.0, density);
  const KnnbResult res = Knnb(list, {190, 0}, kR, 40, kMaxRadius);
  const double optimal = std::sqrt(40.0 / (kPi * density));
  EXPECT_FALSE(res.extrapolated);
  // The list is discrete (hop granularity ~15 m), so allow one hop slack.
  EXPECT_NEAR(res.radius, optimal, 16.0);
  EXPECT_GT(res.radius, 0.5 * optimal);
}

TEST(KnnbTest, PaperRectangleModelYieldsSmallerRadius) {
  // Compare through the continuous extrapolation path (a short list and a
  // large k) — the entry-walk path quantizes both models to hop-distance
  // granularity and can mask the bias.
  const auto list = SyntheticList(4, 15.0, 0.015);
  const Point q{50, 0};
  const auto lune =
      Knnb(list, q, kR, 500, kMaxRadius, KnnbAreaModel::kLune);
  const auto rect =
      Knnb(list, q, kR, 500, kMaxRadius, KnnbAreaModel::kPaperRectangle);
  ASSERT_TRUE(lune.extrapolated);
  ASSERT_TRUE(rect.extrapolated);
  // The rectangle model undercounts the covered area, so it overestimates
  // density and returns a smaller boundary.
  EXPECT_GT(rect.density, lune.density);
  EXPECT_LT(rect.radius, lune.radius);
}

TEST(KnnbTest, RadiusGrowsWithK) {
  const auto list = SyntheticList(12, 15.0, 0.015);
  const Point q{190, 0};
  double prev = 0.0;
  for (int k : {5, 10, 20, 40, 80}) {
    const double r = Knnb(list, q, kR, k, kMaxRadius).radius;
    EXPECT_GE(r, prev) << "k=" << k;
    prev = r;
  }
}

TEST(KnnbTest, RadiusShrinksWithDensity) {
  const Point q{190, 0};
  const double sparse =
      Knnb(SyntheticList(12, 15.0, 0.005), q, kR, 40, kMaxRadius).radius;
  const double dense =
      Knnb(SyntheticList(12, 15.0, 0.045), q, kR, 40, kMaxRadius).radius;
  EXPECT_GT(sparse, dense);
}

TEST(KnnbTest, ExtrapolatesWhenListTooShort) {
  // A 2-hop list cannot reach k = 200 by walking entries.
  const auto list = SyntheticList(2, 15.0, 0.015);
  const KnnbResult res = Knnb(list, {20, 0}, kR, 200, kMaxRadius);
  EXPECT_TRUE(res.extrapolated);
  const double optimal = std::sqrt(200.0 / (kPi * 0.015));
  EXPECT_NEAR(res.radius, optimal, 0.35 * optimal);
}

TEST(KnnbTest, ClampsToBounds) {
  const auto list = SyntheticList(12, 15.0, 0.015);
  // Tiny k: radius clamps up to the radio range.
  EXPECT_GE(Knnb(list, {190, 0}, kR, 1, kMaxRadius).radius, kR);
  // Huge k: radius clamps at max_radius.
  EXPECT_LE(Knnb(list, {190, 0}, kR, 100000, kMaxRadius).radius,
            kMaxRadius);
}

TEST(KnnbTest, ZeroDensityListYieldsMaxRadius) {
  std::vector<RouteHopInfo> list;
  for (int i = 0; i < 5; ++i) {
    list.push_back({{i * 15.0, 0.0}, 0});
  }
  const KnnbResult res = Knnb(list, {75, 0}, kR, 10, kMaxRadius);
  EXPECT_TRUE(res.extrapolated);
  EXPECT_DOUBLE_EQ(res.radius, kMaxRadius);
}

TEST(KnnbTest, ComplexityIsLinear) {
  // hops_examined never exceeds the list length.
  const auto list = SyntheticList(50, 15.0, 0.015);
  const KnnbResult res = Knnb(list, {750, 0}, kR, 40, kMaxRadius);
  EXPECT_LE(res.hops_examined, 50);
  EXPECT_GE(res.hops_examined, 1);
}

TEST(KnnbTest, KptConservativeRadiusIsLinearInK) {
  EXPECT_DOUBLE_EQ(KptConservativeRadius(20, 15.0), 300.0);
  EXPECT_DOUBLE_EQ(KptConservativeRadius(40, 15.0), 600.0);
}

// The paper's headline claim: KNNB radii are roughly 1/sqrt(k*pi) of
// KPT's conservative boundary.
TEST(KnnbTest, RadiusRatioVsKptMatchesPaperClaim) {
  const auto list = SyntheticList(12, 15.0, 0.015);
  const Point q{190, 0};
  for (int k : {20, 40, 80}) {
    const double knnb = Knnb(list, q, kR, k, 1e9).radius;
    const double kpt = KptConservativeRadius(k, 15.0);
    const double claimed = kpt / std::sqrt(k * kPi);
    // Same order of magnitude as the paper's rule of thumb.
    EXPECT_GT(knnb, 0.3 * claimed) << "k=" << k;
    EXPECT_LT(knnb, 3.0 * claimed) << "k=" << k;
  }
}

}  // namespace
}  // namespace diknn
