#include "net/neighbor_table.h"

#include <gtest/gtest.h>

namespace diknn {
namespace {

TEST(NeighborTableTest, InsertAndLookup) {
  NeighborTable table(1.5);
  table.Update(7, {1, 2}, 3.0, /*now=*/10.0);
  const auto e = table.Lookup(7, 10.5);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, 7);
  EXPECT_EQ(e->position, Point(1, 2));
  EXPECT_DOUBLE_EQ(e->speed, 3.0);
  EXPECT_DOUBLE_EQ(e->last_heard, 10.0);
}

TEST(NeighborTableTest, UpdateRefreshesEntry) {
  NeighborTable table(1.5);
  table.Update(7, {1, 2}, 3.0, 10.0);
  table.Update(7, {5, 6}, 1.0, 11.0);
  const auto e = table.Lookup(7, 11.0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->position, Point(5, 6));
  EXPECT_EQ(table.CountFresh(11.0), 1);
}

TEST(NeighborTableTest, StaleEntriesInvisible) {
  NeighborTable table(1.5);
  table.Update(7, {1, 2}, 0.0, 10.0);
  EXPECT_TRUE(table.Lookup(7, 11.5).has_value());   // Exactly at timeout.
  EXPECT_FALSE(table.Lookup(7, 11.51).has_value());
  EXPECT_EQ(table.CountFresh(12.0), 0);
  EXPECT_TRUE(table.Snapshot(12.0).empty());
}

TEST(NeighborTableTest, ExpirePurgesOldEntries) {
  NeighborTable table(1.0);
  table.Update(1, {0, 0}, 0.0, 0.0);
  table.Update(2, {0, 0}, 0.0, 5.0);
  table.Expire(5.5);
  EXPECT_FALSE(table.Lookup(1, 5.5).has_value());
  EXPECT_TRUE(table.Lookup(2, 5.5).has_value());
}

TEST(NeighborTableTest, RemoveDeletesImmediately) {
  NeighborTable table(10.0);
  table.Update(3, {0, 0}, 0.0, 0.0);
  table.Remove(3);
  EXPECT_FALSE(table.Lookup(3, 0.0).has_value());
}

TEST(NeighborTableTest, SnapshotReturnsFreshOnly) {
  NeighborTable table(1.0);
  table.Update(1, {0, 0}, 0.0, 0.0);
  table.Update(2, {1, 1}, 0.0, 2.0);
  table.Update(3, {2, 2}, 0.0, 2.5);
  const auto snap = table.Snapshot(2.6);
  EXPECT_EQ(snap.size(), 2u);
}

TEST(NeighborTableTest, ClosestToPicksMinimum) {
  NeighborTable table(10.0);
  table.Update(1, {0, 0}, 0.0, 0.0);
  table.Update(2, {5, 0}, 0.0, 0.0);
  table.Update(3, {9, 0}, 0.0, 0.0);
  const auto e = table.ClosestTo({6, 0}, 0.0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, 2);
}

TEST(NeighborTableTest, ClosestToEmptyIsNullopt) {
  NeighborTable table(1.0);
  EXPECT_FALSE(table.ClosestTo({0, 0}, 0.0).has_value());
}

TEST(NeighborTableTest, CloserThanFiltersStrictly) {
  NeighborTable table(10.0);
  table.Update(1, {1, 0}, 0.0, 0.0);
  table.Update(2, {5, 0}, 0.0, 0.0);
  table.Update(3, {2.99, 0}, 0.0, 0.0);
  const auto close = table.CloserThan({0, 0}, 3.0, 0.0);
  EXPECT_EQ(close.size(), 2u);
}

TEST(NeighborTableTest, CountFartherThanMatchesEncSemantics) {
  NeighborTable table(10.0);
  // Previous hop at origin, radio range 5: "newly encountered" neighbors
  // are those farther than 5 from the origin.
  table.Update(1, {3, 0}, 0.0, 0.0);   // Inside old disk.
  table.Update(2, {6, 0}, 0.0, 0.0);   // New.
  table.Update(3, {0, 8}, 0.0, 0.0);   // New.
  table.Update(4, {5, 0}, 0.0, 0.0);   // Exactly on the edge: not counted.
  EXPECT_EQ(table.CountFartherThan({0, 0}, 5.0, 0.0), 2);
}

TEST(NeighborTableTest, MaxNeighborSpeed) {
  NeighborTable table(10.0);
  EXPECT_DOUBLE_EQ(table.MaxNeighborSpeed(0.0), 0.0);
  table.Update(1, {0, 0}, 2.0, 0.0);
  table.Update(2, {0, 0}, 7.5, 0.0);
  table.Update(3, {0, 0}, 4.0, 0.0);
  EXPECT_DOUBLE_EQ(table.MaxNeighborSpeed(0.0), 7.5);
}

TEST(NeighborTableTest, MaxNeighborSpeedIgnoresStale) {
  NeighborTable table(1.0);
  table.Update(1, {0, 0}, 9.0, 0.0);
  table.Update(2, {0, 0}, 2.0, 5.0);
  EXPECT_DOUBLE_EQ(table.MaxNeighborSpeed(5.0), 2.0);
}

}  // namespace
}  // namespace diknn
