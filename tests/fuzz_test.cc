// Randomized end-to-end property tests: drive each protocol through
// randomly drawn configurations and query sequences, asserting the
// invariants that must hold regardless of topology, mobility, loss, or
// contention:
//
//   1. every IssueQuery handler fires exactly once;
//   2. results never exceed k candidates and contain no duplicates;
//   3. returned ids are real, non-infrastructure node ids;
//   4. simulation time stays monotone and the run terminates;
//   5. energy accounting only ever increases.

#include <cctype>
#include <unordered_set>

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace diknn {
namespace {

struct FuzzCase {
  ProtocolKind protocol;
  uint64_t seed;
};

class ProtocolFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ProtocolFuzzTest, InvariantsHoldUnderRandomConfigs) {
  const FuzzCase& fuzz = GetParam();
  Rng rng(fuzz.seed);

  ExperimentConfig config;
  config.protocol = fuzz.protocol;
  config.network.node_count = rng.UniformInt(60, 220);
  const double side = rng.Uniform(80.0, 160.0);
  config.network.field = Rect::Field(side, side);
  config.network.max_speed = rng.Uniform(0.0, 25.0);
  config.network.loss_rate = rng.Uniform(0.0, 0.2);
  config.network.placement = rng.Bernoulli(0.3)
                                 ? PlacementKind::kClustered
                                 : PlacementKind::kUniform;
  config.k = rng.UniformInt(1, 60);
  config.diknn.num_sectors = rng.UniformInt(1, 12);
  config.diknn.rendezvous = rng.Bernoulli(0.7);
  config.diknn.collection_scheme =
      static_cast<CollectionScheme>(rng.UniformInt(0, 2));

  ProtocolStack stack(config, fuzz.seed);
  Network& net = stack.network();
  net.Warmup(2.5);

  const int mobile = net.config().node_count;
  int handler_calls = 0;
  const int queries = 3;
  double last_energy = net.TotalEnergy();

  for (int i = 0; i < queries; ++i) {
    const Point q = rng.PointInRect(config.network.field);
    const int k = config.k;
    stack.protocol().IssueQuery(
        0, q, k, [&, k](const KnnResult& result) {
          ++handler_calls;
          EXPECT_LE(result.candidates.size(), static_cast<size_t>(k));
          std::unordered_set<NodeId> seen;
          for (const KnnCandidate& c : result.candidates) {
            EXPECT_TRUE(seen.insert(c.id).second)
                << "duplicate candidate " << c.id;
            EXPECT_GE(c.id, 0);
            EXPECT_LT(c.id, mobile) << "non-sensor id returned";
          }
          EXPECT_GE(result.completed_at, result.issued_at);
        });
    // Monotone clock + monotone energy while draining.
    const SimTime before = net.sim().Now();
    net.sim().RunUntil(before + 12.0);
    EXPECT_GE(net.sim().Now(), before);
    const double energy = net.TotalEnergy();
    EXPECT_GE(energy, last_energy);
    last_energy = energy;
  }

  EXPECT_EQ(handler_calls, queries) << "handler must fire exactly once";
  EXPECT_EQ(net.sim().pending_events() > 0, true)
      << "beaconing keeps the simulation alive";
}

std::vector<FuzzCase> MakeCases() {
  std::vector<FuzzCase> cases;
  const ProtocolKind kinds[] = {ProtocolKind::kDiknn,
                                ProtocolKind::kKptKnnb,
                                ProtocolKind::kPeerTree,
                                ProtocolKind::kFlooding,
                                ProtocolKind::kCentralized};
  uint64_t seed = 1000;
  for (ProtocolKind kind : kinds) {
    for (int i = 0; i < 3; ++i) {
      cases.push_back({kind, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomConfigs, ProtocolFuzzTest, ::testing::ValuesIn(MakeCases()),
    [](const auto& info) {
      std::string name = ProtocolName(info.param.protocol);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace diknn
