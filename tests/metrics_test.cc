#include "harness/metrics.h"

#include <gtest/gtest.h>

namespace diknn {
namespace {

TEST(AccuracyTest, PerfectMatch) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {3, 2, 1}), 1.0);
}

TEST(AccuracyTest, PartialMatch) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 9}, {1, 2, 3, 4}), 0.5);
}

TEST(AccuracyTest, NoMatch) {
  EXPECT_DOUBLE_EQ(Accuracy({7, 8}, {1, 2}), 0.0);
}

TEST(AccuracyTest, EmptyTruthIsPerfect) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2}, {}), 1.0);
}

TEST(AccuracyTest, EmptyReturnedIsZero) {
  EXPECT_DOUBLE_EQ(Accuracy({}, {1, 2}), 0.0);
}

TEST(AccuracyTest, ExtraReturnedDoesNotInflate) {
  // Only the truth hits matter (the measure is recall of the true KNN).
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3, 4, 5, 6}, {1, 2}), 1.0);
}

TEST(SummarizeTest, EmptyIsZeroed) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  const Summary s = Summarize({5.0});
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(SummarizeTest, KnownStatistics) {
  const Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev with n-1 = 7: variance 32/7.
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
}

TEST(PercentileTest, SingleValue) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 100.0), 7.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 90.0), 4.6);
}

TEST(PercentileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(PercentileTest, ClampsOutOfRangeP) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 200.0), 2.0);
}

TEST(PercentileTest, BatchOverloadMatchesPerCallResults) {
  const std::vector<double> v{9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0};
  const std::vector<double> ps{0.0, 25.0, 50.0, 90.0, 99.0, 100.0};
  // One sort for the whole batch, same answers as sorting per call.
  const std::vector<double> batch = Percentiles(v, ps);
  ASSERT_EQ(batch.size(), ps.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], Percentile(v, ps[i])) << ps[i];
  }
  EXPECT_TRUE(Percentiles({}, {50.0, 99.0}) ==
              (std::vector<double>{0.0, 0.0}));
}

TEST(AggregateRunsTest, CombinesAcrossRuns) {
  RunMetrics a;
  a.queries = 10;
  a.timeouts = 1;
  a.avg_latency = 2.0;
  a.avg_pre_accuracy = 0.8;
  a.avg_post_accuracy = 0.9;
  a.energy_joules = 5.0;
  RunMetrics b = a;
  b.avg_latency = 4.0;
  b.energy_joules = 7.0;
  b.timeouts = 3;

  const ExperimentMetrics m = AggregateRuns({a, b});
  EXPECT_EQ(m.runs, 2);
  EXPECT_DOUBLE_EQ(m.latency.mean, 3.0);
  EXPECT_DOUBLE_EQ(m.energy.mean, 6.0);
  EXPECT_DOUBLE_EQ(m.pre_accuracy.mean, 0.8);
  EXPECT_DOUBLE_EQ(m.timeout_rate.mean, 0.2);
}

TEST(AggregateRunsTest, EmptyRuns) {
  const ExperimentMetrics m = AggregateRuns({});
  EXPECT_EQ(m.runs, 0);
  EXPECT_EQ(m.latency.count, 0);
}

}  // namespace
}  // namespace diknn
