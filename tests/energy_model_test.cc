#include "net/energy_model.h"

#include <gtest/gtest.h>

namespace diknn {
namespace {

TEST(EnergyMeterTest, StartsAtZero) {
  EnergyMeter meter;
  EXPECT_DOUBLE_EQ(meter.TotalJoules(), 0.0);
  EXPECT_DOUBLE_EQ(meter.Joules(EnergyCategory::kQuery), 0.0);
}

TEST(EnergyMeterTest, TxMatchesFirstOrderModel) {
  EnergyParams params;
  params.e_elec_j_per_bit = 50e-9;
  params.eps_amp_j_per_bit_m2 = 100e-12;
  EnergyMeter meter(params);
  meter.ChargeTx(100, 20.0, EnergyCategory::kQuery);  // 800 bits at 20 m.
  const double expected = 800 * (50e-9 + 100e-12 * 400.0);
  EXPECT_DOUBLE_EQ(meter.Joules(EnergyCategory::kQuery), expected);
}

TEST(EnergyMeterTest, RxChargesElectronicsOnly) {
  EnergyMeter meter;
  meter.ChargeRx(100, EnergyCategory::kBeacon);
  EXPECT_DOUBLE_EQ(meter.Joules(EnergyCategory::kBeacon), 800 * 50e-9);
}

TEST(EnergyMeterTest, CategoriesAreIndependent) {
  EnergyMeter meter;
  meter.ChargeRx(10, EnergyCategory::kBeacon);
  meter.ChargeRx(20, EnergyCategory::kMaintenance);
  meter.ChargeRx(30, EnergyCategory::kQuery);
  EXPECT_GT(meter.Joules(EnergyCategory::kQuery),
            meter.Joules(EnergyCategory::kMaintenance));
  EXPECT_GT(meter.Joules(EnergyCategory::kMaintenance),
            meter.Joules(EnergyCategory::kBeacon));
  EXPECT_DOUBLE_EQ(meter.TotalJoules(),
                   meter.Joules(EnergyCategory::kBeacon) +
                       meter.Joules(EnergyCategory::kMaintenance) +
                       meter.Joules(EnergyCategory::kQuery));
}

TEST(EnergyMeterTest, TxGrowsWithRange) {
  EnergyMeter near_meter, far_meter;
  near_meter.ChargeTx(100, 10.0, EnergyCategory::kQuery);
  far_meter.ChargeTx(100, 40.0, EnergyCategory::kQuery);
  EXPECT_GT(far_meter.TotalJoules(), near_meter.TotalJoules());
}

TEST(EnergyMeterTest, TxIsLinearInBytes) {
  EnergyMeter a, b;
  a.ChargeTx(100, 20.0, EnergyCategory::kQuery);
  b.ChargeTx(200, 20.0, EnergyCategory::kQuery);
  EXPECT_DOUBLE_EQ(b.TotalJoules(), 2.0 * a.TotalJoules());
}

TEST(EnergyMeterTest, ResetClears) {
  EnergyMeter meter;
  meter.ChargeTx(100, 20.0, EnergyCategory::kQuery);
  meter.ChargeRx(50, EnergyCategory::kBeacon);
  meter.Reset();
  EXPECT_DOUBLE_EQ(meter.TotalJoules(), 0.0);
}

TEST(EnergyMeterTest, AccumulatesAcrossCalls) {
  EnergyMeter meter;
  for (int i = 0; i < 10; ++i) {
    meter.ChargeRx(100, EnergyCategory::kQuery);
  }
  EnergyMeter one;
  one.ChargeRx(1000, EnergyCategory::kQuery);
  EXPECT_NEAR(meter.TotalJoules(), one.TotalJoules(), 1e-15);
}

}  // namespace
}  // namespace diknn
