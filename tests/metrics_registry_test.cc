#include "obs/metrics_registry.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace diknn {
namespace {

// --- Registry basics -------------------------------------------------

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry reg;
  const MetricId id = reg.RegisterCounter("frames.sent");
  ASSERT_NE(id, kInvalidMetricId);
  reg.Add(id);
  reg.Add(id, 41);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("frames.sent"), 42u);
  EXPECT_EQ(snap.CounterValue("absent"), 0u);
}

TEST(MetricsRegistryTest, GaugesKeepDeclaredMode) {
  MetricsRegistry reg;
  reg.PublishGauge("peak", 3.0, GaugeMode::kMax);
  reg.PublishGauge("total", 1.5, GaugeMode::kSum);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.GaugeValue("peak"), 3.0);
  EXPECT_EQ(snap.GaugeValue("total"), 1.5);
}

TEST(MetricsRegistryTest, DuplicateNamesRejectedAcrossKinds) {
  MetricsRegistry reg;
  ASSERT_NE(reg.RegisterCounter("x"), kInvalidMetricId);
  // The name is one namespace: no second counter, gauge, or histogram
  // may alias it.
  EXPECT_EQ(reg.RegisterCounter("x"), kInvalidMetricId);
  EXPECT_EQ(reg.RegisterGauge("x"), kInvalidMetricId);
  EXPECT_EQ(reg.RegisterHistogram("x"), kInvalidMetricId);
  EXPECT_EQ(reg.CounterCount(), 1u);
  EXPECT_EQ(reg.GaugeCount(), 0u);
  EXPECT_EQ(reg.HistogramCount(), 0u);
  // Mutations through an invalid id are ignored, not fatal.
  reg.Add(kInvalidMetricId, 5);
  reg.Set(kInvalidMetricId, 1.0);
  reg.Observe(kInvalidMetricId, 1.0);
}

TEST(MetricsRegistryTest, DuplicateDiagnosticNamesTheCollision) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.last_error(), "");
  ASSERT_NE(reg.RegisterGauge("queue.depth", GaugeMode::kMax),
            kInvalidMetricId);
  EXPECT_EQ(reg.last_error(), "");  // Success leaves no stale error.

  // Kind collision: the message names the metric and both shapes.
  EXPECT_EQ(reg.RegisterCounter("queue.depth"), kInvalidMetricId);
  EXPECT_EQ(reg.last_error(),
            "duplicate metric \"queue.depth\": registered as gauge(max), "
            "re-registered as counter");

  // Same-kind gauge with a different merge mode gets the explicit
  // mismatch suffix — the silent-wrong-aggregation trap this guards.
  EXPECT_EQ(reg.RegisterGauge("queue.depth", GaugeMode::kSum),
            kInvalidMetricId);
  EXPECT_EQ(reg.last_error(),
            "duplicate metric \"queue.depth\": registered as gauge(max), "
            "re-registered as gauge(sum) (gauge merge-mode mismatch)");

  // Identical re-registration is still rejected, without the suffix.
  EXPECT_EQ(reg.RegisterGauge("queue.depth", GaugeMode::kMax),
            kInvalidMetricId);
  EXPECT_EQ(reg.last_error().find("merge-mode mismatch"),
            std::string::npos);

  // The next successful registration clears the error again.
  ASSERT_NE(reg.RegisterHistogram("queue.wait_s"), kInvalidMetricId);
  EXPECT_EQ(reg.last_error(), "");
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.PublishCounter("zeta", 1);
  reg.PublishCounter("alpha", 2);
  reg.PublishCounter("mid", 3);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid");
  EXPECT_EQ(snap.counters[2].name, "zeta");
}

// --- Histogram -------------------------------------------------------

TEST(MetricsHistogramTest, TracksCountSumMinMax) {
  MetricsHistogram h;
  EXPECT_EQ(h.Percentile(50), 0.0);
  for (double v : {0.5, 1.0, 2.0, 4.0}) h.Add(v);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 7.5);
  EXPECT_EQ(h.Min(), 0.5);
  EXPECT_EQ(h.Max(), 4.0);
  EXPECT_EQ(h.Mean(), 7.5 / 4.0);
  // Percentiles stay within the observed range.
  EXPECT_GE(h.Percentile(0), 0.5);
  EXPECT_LE(h.Percentile(100), 4.0);
  EXPECT_GT(h.Percentile(99), h.Percentile(1));
}

TEST(MetricsHistogramTest, MergeMatchesCombinedStream) {
  MetricsHistogram a, b, all;
  for (int i = 1; i <= 100; ++i) {
    const double v = i * 0.01;
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a, all);  // Bucket counts, count, sum, min, max all match.
}

TEST(MetricsHistogramTest, OutliersClampIntoRange) {
  MetricsHistogram h;
  h.Add(0.0);     // Below kMinValue.
  h.Add(1e12);    // Beyond the top octave.
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 1e12);
  EXPECT_GE(h.Percentile(50), 0.0);
  EXPECT_LE(h.Percentile(100), 1e12);
}

// --- Snapshot merge --------------------------------------------------

TEST(MetricsSnapshotTest, MergeIsUnionWithPerKindSemantics) {
  MetricsRegistry a, b;
  a.PublishCounter("shared", 10);
  a.PublishCounter("only_a", 1);
  a.PublishGauge("gmax", 2.0, GaugeMode::kMax);
  a.PublishGauge("gmin", 2.0, GaugeMode::kMin);
  a.PublishGauge("gsum", 2.0, GaugeMode::kSum);
  const MetricId ha = a.RegisterHistogram("h");
  a.Observe(ha, 1.0);

  b.PublishCounter("shared", 32);
  b.PublishCounter("only_b", 5);
  b.PublishGauge("gmax", 3.0, GaugeMode::kMax);
  b.PublishGauge("gmin", 3.0, GaugeMode::kMin);
  b.PublishGauge("gsum", 3.0, GaugeMode::kSum);
  const MetricId hb = b.RegisterHistogram("h");
  b.Observe(hb, 2.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.CounterValue("shared"), 42u);
  EXPECT_EQ(merged.CounterValue("only_a"), 1u);
  EXPECT_EQ(merged.CounterValue("only_b"), 5u);
  EXPECT_EQ(merged.GaugeValue("gmax"), 3.0);
  EXPECT_EQ(merged.GaugeValue("gmin"), 2.0);
  EXPECT_EQ(merged.GaugeValue("gsum"), 5.0);
  const MetricsHistogram* h = merged.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Count(), 2u);
  EXPECT_EQ(h->Sum(), 3.0);
  // The merged snapshot stays name-sorted.
  for (size_t i = 1; i < merged.counters.size(); ++i) {
    EXPECT_LT(merged.counters[i - 1].name, merged.counters[i].name);
  }
}

TEST(MetricsSnapshotTest, NeverSetGaugeMergesAsIdentity) {
  MetricsRegistry a, b;
  a.RegisterGauge("g", GaugeMode::kMin);  // Registered, never Set.
  b.PublishGauge("g", 7.0, GaugeMode::kMin);
  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  // kMin against an unset side must not pull in the unset side's 0.
  EXPECT_EQ(merged.GaugeValue("g"), 7.0);
}

TEST(MetricsSnapshotTest, ToJsonIsDeterministic) {
  MetricsRegistry reg;
  reg.PublishCounter("b", 2);
  reg.PublishCounter("a", 1);
  reg.PublishGauge("g", 0.5, GaugeMode::kSum);
  const MetricId h = reg.RegisterHistogram("lat");
  reg.Observe(h, 0.25);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_EQ(json, reg.Snapshot().ToJson());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Sorted key order inside the counters object.
  EXPECT_LT(json.find("\"a\""), json.find("\"b\""));
}

// --- End-to-end: aggregate is bit-identical at any jobs count --------

TEST(MetricsRegistryTest, AggregateBitIdenticalAcrossJobs) {
  ExperimentConfig config;
  config.network.node_count = 70;
  config.network.field = Rect::Field(68.0, 68.0);
  config.duration = 6.0;
  config.drain = 4.0;
  config.runs = 4;
  std::string error;
  config.workload = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=4;mix@knn=60,window=20,aggregate=20;"
      "k@lo=4,hi=10;deadline@s=1.5;admit@inflight=8,queue=4;trace@rate=1",
      &error);
  ASSERT_TRUE(config.workload.has_value()) << error;

  std::vector<std::string> jsons;
  for (int jobs : {1, 2, 8}) {
    config.jobs = jobs;
    const ExperimentMetrics agg = AggregateRuns(RunExperimentRuns(config));
    ASSERT_FALSE(agg.obs.counters.empty());
    jsons.push_back(agg.obs.ToJson());
  }
  EXPECT_EQ(jsons[0], jsons[1]);
  EXPECT_EQ(jsons[0], jsons[2]);
  // The run actually recorded traffic and traces, so the equality above
  // compares live data, not empty snapshots.
  const ExperimentMetrics agg = AggregateRuns(RunExperimentRuns(config));
  EXPECT_GT(agg.obs.CounterValue("channel.frames_sent"), 0u);
  EXPECT_GT(agg.obs.CounterValue("tracer.queries_sampled"), 0u);
  const MetricsHistogram* lat = agg.obs.FindHistogram("query.latency_s");
  ASSERT_NE(lat, nullptr);
  EXPECT_GT(lat->Count(), 0u);
}

}  // namespace
}  // namespace diknn
