// Workload-spec grammar and SLO accounting primitives: parse defaults,
// full round-trips through ToSpec(), malformed-input rejection, and the
// streaming latency histogram / SloReport invariants the QueryDriver
// builds its reports from.

#include "workload/workload_spec.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "workload/latency_histogram.h"

namespace diknn {
namespace {

TEST(WorkloadSpecTest, EmptySpecYieldsDefaults) {
  const auto spec = WorkloadSpec::Parse("");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->arrival, ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(spec->rate, 1.0);
  EXPECT_DOUBLE_EQ(spec->mix[static_cast<int>(QueryClass::kKnn)], 1.0);
  EXPECT_DOUBLE_EQ(spec->mix[static_cast<int>(QueryClass::kWindow)], 0.0);
  EXPECT_EQ(spec->k_lo, 40);
  EXPECT_EQ(spec->k_hi, 40);
  EXPECT_EQ(spec->spatial, SpatialKind::kUniform);
  EXPECT_DOUBLE_EQ(spec->deadline, 0.0);
  EXPECT_EQ(spec->max_inflight, 0);
}

TEST(WorkloadSpecTest, ParsesFullSpec) {
  const auto spec = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=8;mix@knn=0.8,window=0.2;k@lo=20,hi=60;"
      "space@kind=hotspot,n=4,sigma=12;deadline@s=2;admit@inflight=64,"
      "queue=16;window@side=25;continuous@period=0.5,rounds=4");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->arrival, ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(spec->rate, 8.0);
  EXPECT_DOUBLE_EQ(spec->mix[static_cast<int>(QueryClass::kKnn)], 0.8);
  EXPECT_DOUBLE_EQ(spec->mix[static_cast<int>(QueryClass::kWindow)], 0.2);
  EXPECT_EQ(spec->k_lo, 20);
  EXPECT_EQ(spec->k_hi, 60);
  EXPECT_EQ(spec->spatial, SpatialKind::kHotspot);
  EXPECT_EQ(spec->hotspots, 4);
  EXPECT_DOUBLE_EQ(spec->hotspot_sigma, 12.0);
  EXPECT_DOUBLE_EQ(spec->deadline, 2.0);
  EXPECT_EQ(spec->max_inflight, 64);
  EXPECT_EQ(spec->queue_capacity, 16);
  EXPECT_DOUBLE_EQ(spec->window_side, 25.0);
  EXPECT_DOUBLE_EQ(spec->continuous_period, 0.5);
  EXPECT_EQ(spec->continuous_rounds, 4);
}

TEST(WorkloadSpecTest, KLoAlonePinsK) {
  const auto spec = WorkloadSpec::Parse("k@lo=12");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->k_lo, 12);
  EXPECT_EQ(spec->k_hi, 12);
}

TEST(WorkloadSpecTest, ClosedLoopArrival) {
  const auto spec =
      WorkloadSpec::Parse("arrival@kind=closed,sessions=16,think=0.25");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->arrival, ArrivalKind::kClosedLoop);
  EXPECT_EQ(spec->sessions, 16);
  EXPECT_DOUBLE_EQ(spec->think_time, 0.25);
}

TEST(WorkloadSpecTest, ParsesServingClauses) {
  const auto spec = WorkloadSpec::Parse(
      "deadline@s=4;admit@inflight=64,queue=16,shed=1;"
      "cache@ttl=2.5,cells=12;coalesce@window=0.75,kslack=8");
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->admit_shed);
  EXPECT_DOUBLE_EQ(spec->cache_ttl, 2.5);
  EXPECT_EQ(spec->cache_cells, 12);
  EXPECT_DOUBLE_EQ(spec->coalesce_window, 0.75);
  EXPECT_EQ(spec->coalesce_kslack, 8);
  const ServingParams params = spec->Serving();
  EXPECT_TRUE(params.Enabled());
  EXPECT_DOUBLE_EQ(params.cache_ttl, 2.5);
  EXPECT_EQ(params.cache_cells, 12);
  EXPECT_DOUBLE_EQ(params.coalesce_window, 0.75);
  EXPECT_EQ(params.coalesce_kslack, 8);
  EXPECT_TRUE(params.shed);
}

TEST(WorkloadSpecTest, ServingDisabledByDefault) {
  const auto spec = WorkloadSpec::Parse("deadline@s=2;admit@inflight=8");
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(spec->admit_shed);
  EXPECT_FALSE(spec->Serving().Enabled());
}

TEST(WorkloadSpecTest, RoundTripsThroughToSpec) {
  const char* specs[] = {
      "",
      "arrival@kind=fixed,rate=4",
      "arrival@kind=closed,sessions=8,think=0.5",
      "arrival@kind=poisson,rate=8;mix@knn=0.8,window=0.2;k@lo=20,hi=60;"
      "space@kind=hotspot,n=4,sigma=12;deadline@s=2;admit@inflight=64,"
      "queue=16",
      "mix@knnb=1,continuous=2,aggregate=0.5;window@side=18;"
      "continuous@period=0.4,rounds=2",
      "deadline@s=4;admit@inflight=64,queue=16,shed=1;cache@ttl=2,cells=8;"
      "coalesce@window=0.5,kslack=4",
      "cache@ttl=1.5,cells=20",
      "coalesce@window=2,kslack=0",
      "admit@shed=1",
  };
  for (const char* s : specs) {
    std::string error;
    const auto first = WorkloadSpec::Parse(s, &error);
    ASSERT_TRUE(first.has_value()) << s << ": " << error;
    const std::string canonical = first->ToSpec();
    const auto second = WorkloadSpec::Parse(canonical, &error);
    ASSERT_TRUE(second.has_value()) << canonical << ": " << error;
    // Canonical form is a fixed point: serializing again is identical.
    EXPECT_EQ(second->ToSpec(), canonical) << s;
    EXPECT_EQ(second->arrival, first->arrival) << s;
    EXPECT_DOUBLE_EQ(second->rate, first->rate) << s;
    EXPECT_EQ(second->sessions, first->sessions) << s;
    EXPECT_EQ(second->mix, first->mix) << s;
    EXPECT_EQ(second->k_lo, first->k_lo) << s;
    EXPECT_EQ(second->k_hi, first->k_hi) << s;
    EXPECT_EQ(second->spatial, first->spatial) << s;
    EXPECT_DOUBLE_EQ(second->deadline, first->deadline) << s;
    EXPECT_EQ(second->max_inflight, first->max_inflight) << s;
    EXPECT_EQ(second->queue_capacity, first->queue_capacity) << s;
  }
}

TEST(WorkloadSpecTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "nonsense",
      "arrival@kind=warp",
      "arrival@kind=poisson,rate=0",
      "arrival@kind=poisson,rate=abc",
      "arrival@kind=closed,sessions=0",
      "arrival@warp=1",
      "mix@knn=-1",
      "mix@plasma=1",
      "mix@knn=0,window=0",
      "k@lo=0",
      "k@lo=5,hi=2",
      "k@lo=two",
      "space@kind=hotspot,n=0",
      "space@kind=hotspot,sigma=-3",
      "deadline@s=-1",
      "admit@inflight=-2",
      "window@side=0",
      "continuous@period=0",
      "continuous@rounds=0",
      "timeseries@interval=0",
      "timeseries@interval=-1",
      "timeseries@interval=1,capacity=-2",
      "timeseries@capacity=16",
  };
  for (const char* s : bad) {
    std::string error;
    EXPECT_FALSE(WorkloadSpec::Parse(s, &error).has_value()) << s;
    EXPECT_FALSE(error.empty()) << s;
  }
}

TEST(WorkloadSpecTest, TimeseriesClauseSetsRecorderCadence) {
  std::string error;
  const auto spec = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=4;timeseries@interval=0.25,capacity=128",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_DOUBLE_EQ(spec->ts_interval, 0.25);
  EXPECT_EQ(spec->ts_capacity, 128);

  // Capacity is optional (0 = the recorder's default ring depth), and
  // the clause survives the canonical round-trip.
  const auto minimal =
      WorkloadSpec::Parse("timeseries@interval=0.5", &error);
  ASSERT_TRUE(minimal.has_value()) << error;
  EXPECT_DOUBLE_EQ(minimal->ts_interval, 0.5);
  EXPECT_EQ(minimal->ts_capacity, 0);

  const std::string canonical = spec->ToSpec();
  const auto again = WorkloadSpec::Parse(canonical, &error);
  ASSERT_TRUE(again.has_value()) << canonical << ": " << error;
  EXPECT_DOUBLE_EQ(again->ts_interval, spec->ts_interval);
  EXPECT_EQ(again->ts_capacity, spec->ts_capacity);
  EXPECT_EQ(again->ToSpec(), canonical);
}

TEST(LatencyHistogramTest, EmptyIsAllZeros) {
  const LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 0.0);
}

TEST(LatencyHistogramTest, PercentilesTrackSamplesWithinResolution) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i * 0.001);  // 1 ms .. 1 s.
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_NEAR(h.Mean(), 0.5005, 1e-9);
  // 8 buckets/octave gives ~9% relative resolution.
  EXPECT_NEAR(h.Percentile(50.0), 0.5, 0.5 * 0.1);
  EXPECT_NEAR(h.Percentile(95.0), 0.95, 0.95 * 0.1);
  EXPECT_NEAR(h.Percentile(99.0), 0.99, 0.99 * 0.1);
  // Percentiles never leave the observed range.
  EXPECT_GE(h.Percentile(0.0), h.Min());
  EXPECT_LE(h.Percentile(100.0), h.Max());
}

TEST(LatencyHistogramTest, OutOfRangeValuesClampButKeepMinMax) {
  LatencyHistogram h;
  h.Add(1e-6);
  h.Add(500.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.Max(), 500.0);
  EXPECT_LE(h.Percentile(100.0), 500.0);
  EXPECT_GE(h.Percentile(0.0), 1e-6);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedStream) {
  LatencyHistogram a, b, all;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const double v = rng.Exponential(0.3);
    ((i % 2 == 0) ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  // Sums were accumulated in different orders, so the means agree only up
  // to float associativity; the bucket counts (and thus percentiles) are
  // integers and agree exactly.
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-12);
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
  for (double p : {50.0, 90.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), all.Percentile(p)) << p;
  }
}

TEST(SloReportTest, ConsistencyAndRates) {
  SloReport r;
  r.issued = 100;
  r.completed = 80;
  r.deadline_missed = 10;
  r.rejected = 6;
  r.timed_out = 4;
  r.duration = 40.0;
  EXPECT_TRUE(r.Consistent());
  EXPECT_DOUBLE_EQ(r.GoodputQps(), 2.0);
  EXPECT_DOUBLE_EQ(r.MissRate(), 0.10);
  EXPECT_DOUBLE_EQ(r.RejectRate(), 0.06);
  EXPECT_DOUBLE_EQ(r.TimeoutRate(), 0.04);
  r.timed_out = 5;
  EXPECT_FALSE(r.Consistent());
}

TEST(SloReportTest, MergeAddsCountsAndSumsDurations) {
  SloReport a, b;
  a.issued = 10;
  a.completed = 9;
  a.timed_out = 1;
  a.duration = 20.0;
  a.peak_inflight = 3;
  a.latency.Add(0.1);
  b.issued = 20;
  b.completed = 18;
  b.rejected = 2;
  b.duration = 20.0;
  b.peak_inflight = 7;
  b.latency.Add(0.2);
  a.Merge(b);
  EXPECT_EQ(a.issued, 30u);
  EXPECT_EQ(a.completed, 27u);
  EXPECT_EQ(a.rejected, 2u);
  EXPECT_EQ(a.timed_out, 1u);
  EXPECT_TRUE(a.Consistent());
  EXPECT_EQ(a.peak_inflight, 7u);
  EXPECT_DOUBLE_EQ(a.duration, 40.0);
  EXPECT_EQ(a.latency.Count(), 2u);
}

TEST(SloReportTest, JsonHasTheHeadlineFields) {
  SloReport r;
  r.issued = 4;
  r.completed = 4;
  r.duration = 2.0;
  r.latency.Add(0.25);
  const std::string json = r.ToJson();
  for (const char* key :
       {"\"issued\"", "\"completed\"", "\"goodput_qps\"", "\"p50_s\"",
        "\"p95_s\"", "\"p99_s\"", "\"p999_s\"", "\"miss_rate\"",
        "\"reject_rate\"", "\"timeout_rate\"", "\"peak_inflight\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

}  // namespace
}  // namespace diknn
