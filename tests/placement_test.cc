#include "net/placement.h"

#include <gtest/gtest.h>

namespace diknn {
namespace {

const Rect kField = Rect::Field(100, 100);

class PlacementParamTest : public ::testing::TestWithParam<PlacementKind> {};

TEST_P(PlacementParamTest, GeneratesRequestedCountInsideField) {
  Rng rng(42);
  for (int count : {0, 1, 10, 200}) {
    const auto pts = GeneratePositions(GetParam(), count, kField, rng);
    EXPECT_EQ(static_cast<int>(pts.size()), count);
    for (const Point& p : pts) {
      EXPECT_TRUE(kField.Contains(p)) << p;
    }
  }
}

TEST_P(PlacementParamTest, DeterministicForSeed) {
  Rng a(7), b(7);
  const auto pa = GeneratePositions(GetParam(), 50, kField, a);
  const auto pb = GeneratePositions(GetParam(), 50, kField, b);
  EXPECT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PlacementParamTest,
                         ::testing::Values(PlacementKind::kUniform,
                                           PlacementKind::kGrid,
                                           PlacementKind::kClustered));

TEST(PlacementTest, UniformCoversQuadrantsEvenly) {
  Rng rng(1);
  const auto pts = UniformPositions(4000, kField, rng);
  int q[4] = {0, 0, 0, 0};
  for (const Point& p : pts) {
    q[(p.x > 50 ? 1 : 0) + (p.y > 50 ? 2 : 0)]++;
  }
  for (int c : q) EXPECT_NEAR(c, 1000, 150);
}

TEST(PlacementTest, GridIsRoughlyRegular) {
  Rng rng(2);
  const auto pts = GridPositions(100, kField, rng, 0.0);  // No jitter.
  // With 100 nodes on a 10x10 grid over 100x100, spacing is 10 m and
  // every node's nearest neighbor is exactly 10 m away.
  for (size_t i = 0; i < pts.size(); ++i) {
    double best = 1e9;
    for (size_t j = 0; j < pts.size(); ++j) {
      if (i != j) best = std::min(best, Distance(pts[i], pts[j]));
    }
    EXPECT_NEAR(best, 10.0, 1e-9);
  }
}

TEST(PlacementTest, ClusteredIsMoreConcentratedThanUniform) {
  Rng rng1(3), rng2(3);
  ClusterParams params;
  params.num_clusters = 3;
  params.sigma_fraction = 0.05;
  params.background_fraction = 0.0;
  const auto clustered = ClusteredPositions(500, kField, rng1, params);
  const auto uniform = UniformPositions(500, kField, rng2);

  // Mean nearest-neighbor distance is much smaller for clustered fields.
  auto mean_nn = [](const std::vector<Point>& pts) {
    double sum = 0;
    for (size_t i = 0; i < pts.size(); ++i) {
      double best = 1e18;
      for (size_t j = 0; j < pts.size(); ++j) {
        if (i != j) best = std::min(best, Distance(pts[i], pts[j]));
      }
      sum += best;
    }
    return sum / pts.size();
  };
  EXPECT_LT(mean_nn(clustered), 0.7 * mean_nn(uniform));
}

TEST(PlacementTest, ClusteredBackgroundFractionOneIsUniform) {
  Rng rng(4);
  ClusterParams params;
  params.background_fraction = 1.0;
  const auto pts = ClusteredPositions(1000, kField, rng, params);
  int q[4] = {0, 0, 0, 0};
  for (const Point& p : pts) {
    q[(p.x > 50 ? 1 : 0) + (p.y > 50 ? 2 : 0)]++;
  }
  for (int c : q) EXPECT_NEAR(c, 250, 80);
}

}  // namespace
}  // namespace diknn
