#include "routing/gpsr.h"

#include <gtest/gtest.h>

namespace diknn {
namespace {

struct PingMessage : Message {
  int token = 0;
  explicit PingMessage(int t) : token(t) {}
};

NetworkConfig StaticGrid(int count, double side) {
  NetworkConfig config;
  config.node_count = count;
  config.field = Rect::Field(side, side);
  config.mobility = MobilityKind::kStatic;
  config.placement = PlacementKind::kGrid;
  config.seed = 3;
  return config;
}

class GpsrTest : public ::testing::Test {
 protected:
  void Build(NetworkConfig config) {
    net_ = std::make_unique<Network>(config);
    gpsr_ = std::make_unique<GpsrRouting>(net_.get());
    gpsr_->Install();
    gpsr_->RegisterDelivery(
        MessageType::kDiknnQuery,
        [this](Node* node, const GeoRoutedMessage& msg) {
          delivered_at_ = node->id();
          last_message_ = msg;
          ++deliveries_;
        });
    net_->Warmup(1.6);
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<GpsrRouting> gpsr_;
  NodeId delivered_at_ = kInvalidNodeId;
  GeoRoutedMessage last_message_;
  int deliveries_ = 0;
};

TEST_F(GpsrTest, DeliversAtNodeNearestDestination) {
  Build(StaticGrid(100, 100));  // 10x10 grid, ~10 m spacing, r = 20 m.
  const Point dest{77, 33};
  gpsr_->Send(net_->node(0), dest, MessageType::kDiknnQuery,
              std::make_shared<PingMessage>(1), 10, EnergyCategory::kQuery);
  net_->sim().RunUntil(net_->sim().Now() + 5.0);
  ASSERT_EQ(deliveries_, 1);
  // Delivery lands at (or adjacent to) the true nearest node. With the
  // direct-delivery shortcut, the home node is within 0.75 r of the
  // destination or is the greedy local minimum.
  const double d = Distance(net_->node(delivered_at_)->Position(), dest);
  const double best =
      Distance(net_->node(net_->TrueNearestNode(dest))->Position(), dest);
  EXPECT_LE(d, best + 15.0);
  EXPECT_LE(d, 20.0);
}

TEST_F(GpsrTest, LocalDeliveryWhenSourceIsNearest) {
  Build(StaticGrid(100, 100));
  const Point self_pos = net_->node(0)->Position();
  gpsr_->Send(net_->node(0), self_pos, MessageType::kDiknnQuery,
              std::make_shared<PingMessage>(2), 10, EnergyCategory::kQuery);
  net_->sim().RunUntil(net_->sim().Now() + 2.0);
  EXPECT_EQ(deliveries_, 1);
  EXPECT_EQ(delivered_at_, 0);
}

TEST_F(GpsrTest, CollectsInfoListAlongPath) {
  Build(StaticGrid(100, 100));
  const Point dest{90, 90};
  gpsr_->Send(net_->node(0), dest, MessageType::kDiknnQuery,
              std::make_shared<PingMessage>(3), 10, EnergyCategory::kQuery,
              /*collect_info=*/true);
  net_->sim().RunUntil(net_->sim().Now() + 5.0);
  ASSERT_EQ(deliveries_, 1);
  ASSERT_GE(last_message_.info_list.size(), 3u);
  // Locations progress toward the destination.
  const auto& list = last_message_.info_list;
  EXPECT_LT(Distance(list.back().location, dest),
            Distance(list.front().location, dest));
  // Every entry has a sane enc count.
  for (const auto& hop : list) {
    EXPECT_GE(hop.encountered, 0);
    EXPECT_LE(hop.encountered, net_->size());
  }
  // The first entry counted the full neighborhood of the source.
  EXPECT_GT(list.front().encountered, 0);
}

TEST_F(GpsrTest, TargetNodeShortCircuit) {
  Build(StaticGrid(100, 100));
  // Address a specific node, giving a *stale* position several cells off;
  // the message must still reach the target via the neighbor-table
  // short-circuit once it gets close.
  const NodeId target = 55;
  const Point near_target =
      net_->node(target)->Position() + Point{12, 0};
  gpsr_->Send(net_->node(0), near_target, MessageType::kDiknnQuery,
              std::make_shared<PingMessage>(4), 10, EnergyCategory::kQuery,
              false, target);
  net_->sim().RunUntil(net_->sim().Now() + 5.0);
  ASSERT_EQ(deliveries_, 1);
  EXPECT_EQ(delivered_at_, target);
}

TEST_F(GpsrTest, RoutesAroundVoid) {
  // Hand-built topology: the only paths from the left corridor to the
  // right corridor arc around a large central void. Greedy forwarding
  // fails at the void's edge and perimeter mode must carry the packet
  // around it.
  NetworkConfig config;
  config.field = Rect::Field(200, 120);
  config.mobility = MobilityKind::kStatic;
  config.seed = 9;
  config.explicit_positions = {
      {10, 60},  {25, 60},  {40, 60},  {55, 60},   // Dead-end spur: node 3
      {50, 75},  {50, 90},  {68, 94},  {86, 95},   // is a greedy local
      {104, 95}, {120, 85}, {125, 68}, {140, 62},  // minimum; the wall
      {158, 60},                                   // arcs over the void.
  };
  Build(config);
  // Node 12 at (158, 60) is nearest to the destination.
  gpsr_->Send(net_->node(0), Point{160, 60}, MessageType::kDiknnQuery,
              std::make_shared<PingMessage>(5), 10, EnergyCategory::kQuery);
  net_->sim().RunUntil(net_->sim().Now() + 5.0);
  ASSERT_EQ(deliveries_, 1);
  EXPECT_EQ(delivered_at_, 12);
  EXPECT_GT(gpsr_->stats().perimeter_hops, 0u);
}

TEST_F(GpsrTest, HopCountsAreTracked) {
  Build(StaticGrid(100, 100));
  gpsr_->Send(net_->node(0), Point{90, 90}, MessageType::kDiknnQuery,
              std::make_shared<PingMessage>(6), 10, EnergyCategory::kQuery);
  net_->sim().RunUntil(net_->sim().Now() + 5.0);
  EXPECT_EQ(gpsr_->stats().sends, 1u);
  EXPECT_EQ(gpsr_->stats().deliveries, 1u);
  EXPECT_GE(gpsr_->stats().greedy_hops, 4u);  // ~127 m at <= 20 m hops.
}

TEST_F(GpsrTest, MobileNetworkStillDelivers) {
  NetworkConfig config;
  config.node_count = 150;
  config.field = Rect::Field(115, 115);
  config.mobility = MobilityKind::kRandomWaypoint;
  config.max_speed = 10.0;
  config.seed = 21;
  Build(config);
  int attempts = 0;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const Point dest = rng.PointInRect(config.field);
    gpsr_->Send(net_->node(i), dest, MessageType::kDiknnQuery,
                std::make_shared<PingMessage>(i), 10,
                EnergyCategory::kQuery);
    ++attempts;
    net_->sim().RunUntil(net_->sim().Now() + 2.0);
  }
  // Under mobility some deliveries may land at a near-miss node, but the
  // overwhelming majority of sends must complete.
  EXPECT_GE(deliveries_, attempts - 1);
}

TEST_F(GpsrTest, RngPlanarizationAlsoDelivers) {
  // Perimeter mode on the sparser RNG subgraph still routes around the
  // void of RoutesAroundVoid.
  NetworkConfig config;
  config.field = Rect::Field(200, 120);
  config.mobility = MobilityKind::kStatic;
  config.seed = 9;
  config.explicit_positions = {
      {10, 60},  {25, 60},  {40, 60},  {55, 60},
      {50, 75},  {50, 90},  {68, 94},  {86, 95},
      {104, 95}, {120, 85}, {125, 68}, {140, 62},
      {158, 60},
  };
  net_ = std::make_unique<Network>(config);
  GpsrParams params;
  params.planarization = Planarization::kRng;
  gpsr_ = std::make_unique<GpsrRouting>(net_.get(), params);
  gpsr_->Install();
  gpsr_->RegisterDelivery(MessageType::kDiknnQuery,
                          [this](Node* node, const GeoRoutedMessage&) {
                            delivered_at_ = node->id();
                            ++deliveries_;
                          });
  net_->Warmup(1.6);
  gpsr_->Send(net_->node(0), Point{160, 60}, MessageType::kDiknnQuery,
              std::make_shared<PingMessage>(9), 10, EnergyCategory::kQuery);
  net_->sim().RunUntil(net_->sim().Now() + 5.0);
  ASSERT_EQ(deliveries_, 1);
  EXPECT_EQ(delivered_at_, 12);
}

TEST_F(GpsrTest, CheapDeliveryAcceptsNearbyNode) {
  Build(StaticGrid(100, 100));
  // Address a node with a position several cells away from where it
  // actually is; cheap mode may deliver at whoever is nearest the stale
  // position instead of hunting the target — but it must deliver fast
  // and exactly once somewhere.
  gpsr_->Send(net_->node(0), Point{90, 90}, MessageType::kDiknnQuery,
              std::make_shared<PingMessage>(10), 10,
              EnergyCategory::kQuery, false, /*target_node=*/55,
              /*cheap_delivery=*/true);
  net_->sim().RunUntil(net_->sim().Now() + 5.0);
  EXPECT_EQ(deliveries_, 1);
  EXPECT_EQ(gpsr_->stats().ttl_expired, 0u);
}

TEST_F(GpsrTest, EnergyChargedToRequestedCategory) {
  Build(StaticGrid(100, 100));
  const double before = net_->TotalEnergy(EnergyCategory::kMaintenance);
  gpsr_->Send(net_->node(0), Point{90, 90}, MessageType::kDiknnQuery,
              std::make_shared<PingMessage>(7), 10,
              EnergyCategory::kMaintenance);
  net_->sim().RunUntil(net_->sim().Now() + 5.0);
  EXPECT_GT(net_->TotalEnergy(EnergyCategory::kMaintenance), before);
}

}  // namespace
}  // namespace diknn
