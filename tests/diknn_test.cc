#include "knn/diknn.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "harness/metrics.h"

namespace diknn {
namespace {

struct Rig {
  explicit Rig(NetworkConfig config, DiknnParams params = {})
      : net(config), gpsr(&net), protocol(&net, &gpsr, params) {
    gpsr.Install();
    protocol.Install();
    net.Warmup(2.0);
  }

  // Runs until the query completes (checking in small slices), so that
  // ground truth sampled right after the call reflects completion time.
  KnnResult RunQuery(NodeId sink, Point q, int k, double horizon = 12.0) {
    KnnResult out;
    bool done = false;
    protocol.IssueQuery(sink, q, k, [&](const KnnResult& r) {
      out = r;
      done = true;
    });
    const SimTime deadline = net.sim().Now() + horizon;
    while (!done && net.sim().Now() < deadline) {
      net.sim().RunUntil(net.sim().Now() + 0.25);
    }
    EXPECT_TRUE(done) << "query never completed";
    return out;
  }

  Network net;
  GpsrRouting gpsr;
  Diknn protocol;
};

NetworkConfig DefaultConfig(uint64_t seed = 7) {
  NetworkConfig config;
  config.seed = seed;
  config.static_node_count = 1;  // Stationary sink (node 0).
  return config;
}

TEST(DiknnTest, FindsExactKnnOnStaticNetwork) {
  NetworkConfig config = DefaultConfig();
  config.mobility = MobilityKind::kStatic;
  Rig rig(config);
  const Point q{60, 60};
  const auto truth = rig.net.TrueKnn(q, 10);
  const KnnResult result = rig.RunQuery(0, q, 10);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.candidates.size(), 10u);
  EXPECT_GE(Accuracy(result.CandidateIds(), truth), 0.9);
}

TEST(DiknnTest, HighAccuracyUnderMobility) {
  Rig rig(DefaultConfig());
  const Point q{55, 65};
  const KnnResult result = rig.RunQuery(0, q, 20);
  EXPECT_FALSE(result.timed_out);
  const auto truth = rig.net.TrueKnn(q, 20);
  EXPECT_GE(Accuracy(result.CandidateIds(), truth), 0.7);
}

TEST(DiknnTest, CandidatesSortedByDistance) {
  NetworkConfig config = DefaultConfig();
  config.mobility = MobilityKind::kStatic;
  Rig rig(config);
  const Point q{40, 70};
  const KnnResult result = rig.RunQuery(0, q, 15);
  double prev = -1;
  for (const KnnCandidate& c : result.candidates) {
    const double d = Distance(c.position, q);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(DiknnTest, NoDuplicateCandidates) {
  Rig rig(DefaultConfig());
  const KnnResult result = rig.RunQuery(0, {50, 50}, 30);
  std::unordered_set<NodeId> ids;
  for (const KnnCandidate& c : result.candidates) {
    EXPECT_TRUE(ids.insert(c.id).second) << "duplicate id " << c.id;
  }
}

TEST(DiknnTest, StatsAreCoherent) {
  Rig rig(DefaultConfig());
  rig.RunQuery(0, {60, 40}, 10);
  const DiknnStats& stats = rig.protocol.stats();
  EXPECT_EQ(stats.queries_issued, 1u);
  EXPECT_EQ(stats.home_node_arrivals, 1u);
  EXPECT_EQ(stats.knnb_runs, 1u);
  EXPECT_GT(stats.knnb_radius_sum, 0.0);
  EXPECT_GT(stats.qnode_hops, 0u);
  EXPECT_EQ(stats.probes_sent, stats.qnode_hops);
  EXPECT_GT(stats.replies_sent, 0u);
  // Every sector reports exactly once.
  EXPECT_EQ(stats.sector_results_sent,
            static_cast<uint64_t>(rig.protocol.params().num_sectors));
  EXPECT_EQ(stats.queries_completed + stats.timeouts, 1u);
}

TEST(DiknnTest, CornerQueryStillAnswers) {
  Rig rig(DefaultConfig());
  const Point q{5, 5};
  const KnnResult result = rig.RunQuery(0, q, 15);
  EXPECT_GE(result.candidates.size(), 10u);
  const auto truth = rig.net.TrueKnn(q, 15);
  EXPECT_GE(Accuracy(result.CandidateIds(), truth), 0.5);
}

TEST(DiknnTest, SequentialQueriesAllComplete) {
  Rig rig(DefaultConfig());
  Rng rng(3);
  int timeouts = 0;
  for (int i = 0; i < 5; ++i) {
    const Point q = rng.PointInRect(rig.net.config().field);
    const KnnResult result = rig.RunQuery(0, q, 10, 10.0);
    if (result.timed_out) {
      // A query whose sector bundles got unlucky twice falls back to the
      // timeout; it still returns what arrived. Tolerate one.
      ++timeouts;
      continue;
    }
    EXPECT_GE(result.candidates.size(), 8u) << "query " << i;
  }
  EXPECT_LE(timeouts, 1);
}

TEST(DiknnTest, MobileSinkReceivesResults) {
  // Even without the static-sink convention, results usually find the
  // (moving) sink via the node-addressed short-circuit.
  NetworkConfig config = DefaultConfig();
  config.static_node_count = 0;
  Rig rig(config);
  const KnnResult result = rig.RunQuery(42, {60, 60}, 10);
  EXPECT_GT(result.candidates.size(), 0u);
}

TEST(DiknnTest, HopObserverSeesTraversal) {
  Rig rig(DefaultConfig());
  int hops = 0;
  std::unordered_set<int> sectors;
  rig.protocol.set_hop_observer([&](uint64_t, int sector, Point) {
    ++hops;
    sectors.insert(sector);
  });
  rig.RunQuery(0, {57, 57}, 20);
  EXPECT_GT(hops, 0);
  EXPECT_GE(sectors.size(), 4u);  // Several sectors placed Q-nodes.
}

TEST(DiknnTest, RendezvousDisabledStillWorks) {
  DiknnParams params;
  params.rendezvous = false;
  Rig rig(DefaultConfig(), params);
  const KnnResult result = rig.RunQuery(0, {60, 60}, 10);
  EXPECT_GT(result.candidates.size(), 0u);
  EXPECT_EQ(rig.protocol.stats().rendezvous_sent, 0u);
  EXPECT_EQ(rig.protocol.stats().boundary_extensions, 0u);
}

TEST(DiknnTest, SectorCountOneWorks) {
  DiknnParams params;
  params.num_sectors = 1;
  Rig rig(DefaultConfig(), params);
  const KnnResult result = rig.RunQuery(0, {60, 60}, 10);
  EXPECT_GT(result.candidates.size(), 0u);
}

TEST(DiknnTest, LargeKCoversBigBoundary) {
  Rig rig(DefaultConfig());
  const Point q{57, 57};
  const KnnResult result = rig.RunQuery(0, q, 80, 12.0);
  EXPECT_GE(result.candidates.size(), 60u);
  const auto truth = rig.net.TrueKnn(q, 80);
  EXPECT_GE(Accuracy(result.CandidateIds(), truth), 0.6);
}

TEST(DiknnTest, ClusteredFieldTriggersBoundaryExtensions) {
  // A spatially irregular field makes KNNB's local-uniformity assumption
  // wrong somewhere; the rendezvous machinery must extend boundaries.
  NetworkConfig config = DefaultConfig();
  config.placement = PlacementKind::kClustered;
  config.clusters.num_clusters = 4;
  Rig rig(config);
  Rng rng(6);
  for (int i = 0; i < 4; ++i) {
    // Query near live nodes so the itinerary has something to traverse.
    const Point q =
        rig.net.node(rng.UniformInt(1, rig.net.size() - 1))->Position();
    rig.RunQuery(0, q, 25, 12.0);
  }
  EXPECT_GT(rig.protocol.stats().boundary_extensions, 0u);
}

TEST(DiknnTest, TimeoutFiresWhenNetworkPartitioned) {
  // Kill every node except the sink: the query cannot even leave it.
  NetworkConfig config = DefaultConfig();
  Rig rig(config);
  for (int i = 1; i < rig.net.size(); ++i) {
    rig.net.node(i)->set_alive(false);
  }
  bool done = false;
  bool timed_out = false;
  rig.protocol.IssueQuery(0, {60, 60}, 10, [&](const KnnResult& r) {
    done = true;
    timed_out = r.timed_out;
  });
  rig.net.sim().RunUntil(rig.net.sim().Now() + 12.0);
  EXPECT_TRUE(done);
  // Either the sink answered alone (it is a sensor too) or it timed out;
  // in both cases the handler fired exactly once and nothing crashed.
  (void)timed_out;
}

TEST(DiknnTest, PacketLossDegradesGracefully) {
  NetworkConfig config = DefaultConfig();
  config.loss_rate = 0.15;
  Rig rig(config);
  const KnnResult result = rig.RunQuery(0, {60, 60}, 15);
  EXPECT_GT(result.candidates.size(), 0u);
}

}  // namespace
}  // namespace diknn
