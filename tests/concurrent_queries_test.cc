// Concurrent-query correctness: the protocols were originally exercised
// one query at a time (the paper's exp(4 s) arrivals on ~0.5 s queries),
// so dozens of overlapping queries is the regime where per-query state
// bugs hide. These tests hold >= 32 queries in flight simultaneously and
// assert every per-query container drains to zero.

#include <gtest/gtest.h>

#include "faults/lifecycle_auditor.h"
#include "harness/experiment.h"
#include "knn/aggregate.h"
#include "knn/window.h"
#include "net/sensor_field.h"
#include "workload/query_driver.h"

namespace diknn {
namespace {

ExperimentConfig DenseConfig() {
  ExperimentConfig config;
  config.network.node_count = 120;
  config.network.field = Rect::Field(90, 90);
  config.k = 8;
  config.runs = 1;
  config.drain = 6.0;
  return config;
}

// 40 DIKNN queries issued back-to-back at the same instant: all of them
// are in flight together, every completion is audited, and nothing
// survives the drain.
TEST(ConcurrentQueriesTest, FortySimultaneousDiknnQueriesNoResidue) {
  const ExperimentConfig config = DenseConfig();
  ProtocolStack stack(config, 42);
  Network& net = stack.network();
  LifecycleAuditor auditor(stack.diknn(), &stack.gpsr());
  net.Warmup(config.warmup);

  constexpr int kQueries = 40;
  Rng rng(7);
  int completions = 0;
  int outstanding_at_first_completion = -1;
  for (int i = 0; i < kQueries; ++i) {
    stack.protocol().IssueQuery(
        0, rng.PointInRect(config.network.field), config.k,
        [&](const KnnResult&) {
          if (completions == 0) {
            outstanding_at_first_completion = kQueries - completions;
          }
          ++completions;
        });
  }
  net.sim().RunUntil(net.sim().Now() + 20.0);

  EXPECT_EQ(completions, kQueries);
  // All 40 were open when the first one finished: a genuinely
  // overlapping load, not a serial drizzle.
  EXPECT_GE(outstanding_at_first_completion, 32);
  EXPECT_EQ(auditor.checks(), static_cast<uint64_t>(kQueries));
  EXPECT_EQ(auditor.violations(), 0u) << auditor.Report();
  EXPECT_EQ(auditor.FinalResidue(), 0u) << auditor.Report();
  EXPECT_TRUE(auditor.FlowStateBounded());
}

// The window query's replied_ / last_hop_seen_ / collections_ maps must
// drain with 40 overlapping sweeps (the operator[] resurrection and
// uncancelled-collection bugs leaked exactly here).
TEST(ConcurrentQueriesTest, OverlappingWindowQueriesDrainToZero) {
  const ExperimentConfig config = DenseConfig();
  ProtocolStack stack(config, 43);
  Network& net = stack.network();
  net.Warmup(config.warmup);

  ItineraryWindowQuery window(&net, &stack.gpsr());
  window.Install();

  constexpr int kQueries = 40;
  Rng rng(11);
  int resolved = 0;
  for (int i = 0; i < kQueries; ++i) {
    const Point c = rng.PointInRect({{15, 15}, {75, 75}});
    const Rect rect{{c.x - 12, c.y - 12}, {c.x + 12, c.y + 12}};
    window.IssueQuery(0, rect, [&](const WindowResult&) { ++resolved; });
  }
  net.sim().RunUntil(net.sim().Now() + 60.0);

  EXPECT_EQ(resolved, kQueries);
  EXPECT_EQ(window.stats().queries_issued, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(window.stats().queries_completed + window.stats().timeouts,
            static_cast<uint64_t>(kQueries));
  EXPECT_EQ(window.PerQueryResidue(), 0u)
      << "pending/collections/replied/last_hop entries leaked";
}

// Same drain invariant for the aggregation sweeps.
TEST(ConcurrentQueriesTest, OverlappingAggregateQueriesDrainToZero) {
  const ExperimentConfig config = DenseConfig();
  ProtocolStack stack(config, 44);
  Network& net = stack.network();
  net.Warmup(config.warmup);

  SensorField field = SensorField::Random(config.network.field, 3, 25.0,
                                          20.0, 2.0, /*seed=*/5);
  ItineraryAggregateQuery aggregate(&net, &stack.gpsr(), &field);
  aggregate.Install();

  constexpr int kQueries = 40;
  Rng rng(13);
  int resolved = 0;
  for (int i = 0; i < kQueries; ++i) {
    const Point c = rng.PointInRect({{15, 15}, {75, 75}});
    const Rect rect{{c.x - 12, c.y - 12}, {c.x + 12, c.y + 12}};
    aggregate.IssueQuery(0, rect,
                         [&](const AggregateResult&) { ++resolved; });
  }
  net.sim().RunUntil(net.sim().Now() + 60.0);

  EXPECT_EQ(resolved, kQueries);
  EXPECT_EQ(aggregate.stats().queries_completed + aggregate.stats().timeouts,
            static_cast<uint64_t>(kQueries));
  EXPECT_EQ(aggregate.PerQueryResidue(), 0u)
      << "pending/collections/replied/last_hop entries leaked";
}

// The workload-engine soak the issue asks for: a closed loop holding >=32
// DIKNN queries in flight for the whole run, under loss and a short
// protocol timeout (so stragglers race completions), with the lifecycle
// auditor attached — zero residue, zero violations.
TEST(ConcurrentQueriesTest, WorkloadSoak32InFlightUnderAuditor) {
  ExperimentConfig config = DenseConfig();
  config.network.loss_rate = 0.1;
  config.diknn.query_timeout = 0.8;  // Completion races the traversal.
  config.duration = 30.0;
  config.audit_lifecycle = true;
  std::string error;
  const auto spec = WorkloadSpec::Parse(
      "arrival@kind=closed,sessions=40,think=0;k@lo=8", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  config.workload = *spec;

  const RunMetrics m = RunOnce(config, /*seed=*/42);
  EXPECT_TRUE(m.slo.Consistent());
  EXPECT_GE(m.slo.peak_inflight, 32u);
  EXPECT_GT(m.slo.issued, 100u);
  EXPECT_GT(m.lifecycle_checks, 100u);
  EXPECT_EQ(m.lifecycle_violations, 0u);
  EXPECT_EQ(m.leaked_entries, 0u);
}

// Stale sweep events that outlive their query must be counted as drops,
// never resurrect state: force window-query timeouts by completing
// queries (via the driver deadline... protocol timeout) while sweeps are
// mid-flight, using a lossy network and mixed classes.
TEST(ConcurrentQueriesTest, MixedClassSoakLeavesNoWindowResidue) {
  ExperimentConfig config = DenseConfig();
  config.network.loss_rate = 0.15;
  config.duration = 25.0;
  config.drain = 15.0;  // Long windows need room to resolve.
  std::string error;
  const auto spec = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=4;mix@knn=1,window=1,aggregate=1;k@lo=8",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  config.workload = *spec;

  ProtocolStack stack(config, 45);
  stack.network().Warmup(config.warmup);
  QueryDriver driver(&stack.network(), &stack.gpsr(), &stack.protocol(),
                     *config.workload, /*seed=*/17, /*sink=*/0);
  const SloReport report = driver.Run(config.duration, config.drain);
  EXPECT_TRUE(report.Consistent());
  EXPECT_GT(report.issued, 50u);
  // Every resolved query — including protocol timeouts under loss — must
  // have torn its window/aggregate engine state down completely.
  ASSERT_NE(driver.window_engine(), nullptr);
  ASSERT_NE(driver.aggregate_engine(), nullptr);
  EXPECT_EQ(driver.window_engine()->PerQueryResidue(), 0u);
  EXPECT_EQ(driver.aggregate_engine()->PerQueryResidue(), 0u);
  EXPECT_GT(driver.window_engine()->stats().queries_completed, 0u);
  EXPECT_GT(driver.aggregate_engine()->stats().queries_completed, 0u);
}

}  // namespace
}  // namespace diknn
