#include "knn/query.h"

#include <gtest/gtest.h>

namespace diknn {
namespace {

KnnCandidate C(NodeId id, double x, double y, SimTime t = 0.0) {
  KnnCandidate c;
  c.id = id;
  c.position = {x, y};
  c.sampled_at = t;
  return c;
}

TEST(KnnResultTest, LatencyAndIds) {
  KnnResult r;
  r.issued_at = 2.0;
  r.completed_at = 3.5;
  r.candidates = {C(5, 0, 0), C(2, 1, 0), C(9, 2, 0)};
  EXPECT_DOUBLE_EQ(r.Latency(), 1.5);
  EXPECT_EQ(r.CandidateIds(), (std::vector<NodeId>{5, 2, 9}));
}

TEST(PruneCandidatesTest, SortsByDistance) {
  std::vector<KnnCandidate> cands = {C(1, 10, 0), C(2, 1, 0), C(3, 5, 0)};
  PruneCandidates(&cands, {0, 0}, 10);
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_EQ(cands[0].id, 2);
  EXPECT_EQ(cands[1].id, 3);
  EXPECT_EQ(cands[2].id, 1);
}

TEST(PruneCandidatesTest, TruncatesToCount) {
  std::vector<KnnCandidate> cands;
  for (int i = 0; i < 20; ++i) cands.push_back(C(i, i, 0));
  PruneCandidates(&cands, {0, 0}, 5);
  ASSERT_EQ(cands.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(cands[i].id, i);
}

TEST(PruneCandidatesTest, DeduplicatesKeepingFreshest) {
  std::vector<KnnCandidate> cands = {C(7, 50, 0, /*t=*/1.0),
                                     C(7, 2, 0, /*t=*/5.0),
                                     C(8, 3, 0, /*t=*/1.0)};
  PruneCandidates(&cands, {0, 0}, 10);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].id, 7);
  EXPECT_EQ(cands[0].position, Point(2, 0));  // The t=5 report survived.
  EXPECT_DOUBLE_EQ(cands[0].sampled_at, 5.0);
}

TEST(PruneCandidatesTest, TiesBrokenById) {
  std::vector<KnnCandidate> cands = {C(9, 3, 0), C(4, 0, 3), C(6, 3, 0)};
  PruneCandidates(&cands, {0, 0}, 3);
  EXPECT_EQ(cands[0].id, 4);
  EXPECT_EQ(cands[1].id, 6);
  EXPECT_EQ(cands[2].id, 9);
}

TEST(PruneCandidatesTest, EmptyInputStaysEmpty) {
  std::vector<KnnCandidate> cands;
  PruneCandidates(&cands, {0, 0}, 5);
  EXPECT_TRUE(cands.empty());
}

TEST(PruneCandidatesTest, ZeroCountClears) {
  std::vector<KnnCandidate> cands = {C(1, 1, 1)};
  PruneCandidates(&cands, {0, 0}, 0);
  EXPECT_TRUE(cands.empty());
}

}  // namespace
}  // namespace diknn
