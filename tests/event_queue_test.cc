#include "sim/event_queue.h"

#include <array>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace diknn {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  while (!q.Empty()) {
    SimTime t;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoWithinSameTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Push(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.Empty()) q.Pop(nullptr)();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PopReportsTimestamp) {
  EventQueue q;
  q.Push(7.25, [] {});
  SimTime t = 0;
  q.Pop(&t);
  EXPECT_DOUBLE_EQ(t, 7.25);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.Push(1.0, [&] { fired = true; });
  q.Push(2.0, [] {});
  EXPECT_EQ(q.Size(), 2u);
  q.Cancel(id);
  EXPECT_EQ(q.Size(), 1u);
  while (!q.Empty()) q.Pop(nullptr)();
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.Push(1.0, [] {});
  q.Cancel(0);
  q.Cancel(9999);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.Push(1.0, [] {});
  q.Pop(nullptr)();
  q.Cancel(id);  // Must not corrupt the live count.
  EXPECT_TRUE(q.Empty());
  q.Push(2.0, [] {});
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, DoubleCancelIsNoop) {
  EventQueue q;
  const EventId id = q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  q.Cancel(id);
  q.Cancel(id);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, IsPendingTracksLifecycle) {
  EventQueue q;
  const EventId id = q.Push(1.0, [] {});
  EXPECT_TRUE(q.IsPending(id));
  q.Cancel(id);
  EXPECT_FALSE(q.IsPending(id));
  const EventId id2 = q.Push(2.0, [] {});
  q.Pop(nullptr);
  EXPECT_FALSE(q.IsPending(id2));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.Push(1.0, [] {});
  q.Push(5.0, [] {});
  q.Cancel(id);
  EXPECT_DOUBLE_EQ(q.NextTime(), 5.0);
}

TEST(EventQueueTest, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.Push(i % 100, [&] { ++fired; }));
  }
  for (size_t i = 0; i < ids.size(); i += 2) q.Cancel(ids[i]);
  EXPECT_EQ(q.Size(), 500u);
  SimTime last = -1;
  while (!q.Empty()) {
    SimTime t;
    q.Pop(&t)();
    EXPECT_GE(t, last);  // Monotone.
    last = t;
  }
  EXPECT_EQ(fired, 500);
}

TEST(EventQueueTest, LiveVsResidentCounts) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(q.Push(0.1 * (i + 1), [] {}));
  EXPECT_EQ(q.Size(), 8u);
  EXPECT_EQ(q.ResidentEntries(), 8u);
  // Cancelling drops the live count immediately; the 24-byte reference
  // stays resident until the cursor passes it.
  for (int i = 0; i < 4; ++i) q.Cancel(ids[i]);
  EXPECT_EQ(q.Size(), 4u);
  EXPECT_EQ(q.ResidentEntries(), 8u);
  while (!q.Empty()) q.Pop(nullptr)();
  EXPECT_EQ(q.Size(), 0u);
  EXPECT_EQ(q.ResidentEntries(), 0u);
}

TEST(EventQueueTest, CancelReleasesCallbackResourcesImmediately) {
  EventQueue q;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  const EventId id = q.Push(1.0, [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());
  q.Cancel(id);  // O(1) slot invalidation destroys the capture now.
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueueTest, ResidentStaysBoundedUnderCancelHeavyChurn) {
  // MAC-style churn: every fired event schedules a short "ack timeout"
  // that is almost always cancelled before firing. The legacy heap let
  // tombstones (callback included) pile up until they surfaced; the
  // wheel reclaims the slot at Cancel() and only sheds bounded POD refs.
  EventQueue q;
  SimTime now = 0.0;
  EventId pending_timeout = 0;
  int fired = 0;
  for (int i = 0; i < 20000; ++i) {
    if (pending_timeout != 0) q.Cancel(pending_timeout);
    pending_timeout = q.Push(now + 0.003, [] {});
    q.Push(now + 0.0007, [&fired] { ++fired; });
    SimTime t;
    q.Pop(&t)();
    now = t;
    // Live never exceeds the 2 outstanding timers; resident may carry
    // cancelled refs for up to one wheel horizon but stays bounded.
    ASSERT_LE(q.Size(), 2u);
    ASSERT_LE(q.ResidentEntries(), 16u);
  }
  EXPECT_GT(fired, 0);
  // The slab recycles freed slots instead of growing with churn.
  EXPECT_LE(q.PooledSlots(), 16u);
  EXPECT_EQ(q.stats().events_cancelled, 19999u);
}

TEST(EventQueueTest, GenerationTagPreventsStaleCancelAfterSlotReuse) {
  EventQueue q;
  const EventId first = q.Push(1.0, [] {});
  q.Pop(nullptr)();  // Fires `first`; its pool slot returns to the pool.
  bool fired = false;
  const EventId second = q.Push(2.0, [&fired] { fired = true; });
  EXPECT_NE(first, second);
  q.Cancel(first);  // Stale handle: must not touch the slot's new tenant.
  EXPECT_TRUE(q.IsPending(second));
  q.Pop(nullptr)();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, SmallCallbacksStoredInline) {
  EventQueue q;
  int x = 0;
  q.Push(1.0, [&x] { ++x; });  // One captured pointer: inline.
  std::array<char, 200> big = {};
  q.Push(2.0, [&x, big] { x += big[0]; });  // Oversized: heap fallback.
  EXPECT_EQ(q.stats().inline_callbacks, 1u);
  EXPECT_EQ(q.stats().heap_callbacks, 1u);
  while (!q.Empty()) q.Pop(nullptr)();
  EXPECT_EQ(x, 1);
}

TEST(EventQueueTest, OverflowTierFiresInOrderAcrossWheelRollover) {
  // Times spanning far past the ~1 s wheel horizon: far-future events
  // park in the overflow heap and must migrate into buckets in order as
  // the cursor rolls the wheel over many times.
  EventQueue q;
  std::vector<int> order;
  q.Push(500.0, [&] { order.push_back(4); });
  q.Push(0.0005, [&] { order.push_back(0); });
  q.Push(2.5, [&] { order.push_back(2); });
  q.Push(0.9, [&] { order.push_back(1); });
  q.Push(2.5, [&] { order.push_back(3); });  // FIFO at equal time.
  EXPECT_GT(q.stats().overflow_scheduled, 0u);
  SimTime last = -1.0;
  while (!q.Empty()) {
    SimTime t;
    q.Pop(&t)();
    EXPECT_GE(t, last);
    last = t;
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, LegacyHeapEngineMatchesWheelSemantics) {
  for (const EngineKind kind :
       {EngineKind::kWheel, EngineKind::kLegacyHeap}) {
    EventQueue q(kind);
    std::vector<int> order;
    const EventId dropped = q.Push(1.0, [&] { order.push_back(-1); });
    for (int i = 0; i < 3; ++i) q.Push(2.0, [&order, i] { order.push_back(i); });
    q.Push(1.5, [&] { order.push_back(10); });
    q.Cancel(dropped);
    EXPECT_EQ(q.Size(), 4u);
    while (!q.Empty()) q.Pop(nullptr)();
    EXPECT_EQ(order, (std::vector<int>{10, 0, 1, 2}));
    EXPECT_EQ(q.stats().events_fired, 4u);
    EXPECT_EQ(q.stats().events_cancelled, 1u);
  }
}

TEST(EventQueueTest, PushDuringDrainOfSameTimestampKeepsFifo) {
  // An event scheduling another event at the *same* timestamp must see
  // it fire after every already-queued event at that timestamp (the new
  // event has the highest sequence number) — the property protocol
  // handshakes rely on, here exercised against the sorted-run insert.
  EventQueue q;
  std::vector<int> order;
  q.Push(1.0, [&] {
    order.push_back(0);
    q.Push(1.0, [&] { order.push_back(2); });
  });
  q.Push(1.0, [&] { order.push_back(1); });
  while (!q.Empty()) q.Pop(nullptr)();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace diknn
