#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace diknn {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  while (!q.Empty()) {
    SimTime t;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoWithinSameTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Push(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.Empty()) q.Pop(nullptr)();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PopReportsTimestamp) {
  EventQueue q;
  q.Push(7.25, [] {});
  SimTime t = 0;
  q.Pop(&t);
  EXPECT_DOUBLE_EQ(t, 7.25);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.Push(1.0, [&] { fired = true; });
  q.Push(2.0, [] {});
  EXPECT_EQ(q.Size(), 2u);
  q.Cancel(id);
  EXPECT_EQ(q.Size(), 1u);
  while (!q.Empty()) q.Pop(nullptr)();
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.Push(1.0, [] {});
  q.Cancel(0);
  q.Cancel(9999);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.Push(1.0, [] {});
  q.Pop(nullptr)();
  q.Cancel(id);  // Must not corrupt the live count.
  EXPECT_TRUE(q.Empty());
  q.Push(2.0, [] {});
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, DoubleCancelIsNoop) {
  EventQueue q;
  const EventId id = q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  q.Cancel(id);
  q.Cancel(id);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, IsPendingTracksLifecycle) {
  EventQueue q;
  const EventId id = q.Push(1.0, [] {});
  EXPECT_TRUE(q.IsPending(id));
  q.Cancel(id);
  EXPECT_FALSE(q.IsPending(id));
  const EventId id2 = q.Push(2.0, [] {});
  q.Pop(nullptr);
  EXPECT_FALSE(q.IsPending(id2));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.Push(1.0, [] {});
  q.Push(5.0, [] {});
  q.Cancel(id);
  EXPECT_DOUBLE_EQ(q.NextTime(), 5.0);
}

TEST(EventQueueTest, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.Push(i % 100, [&] { ++fired; }));
  }
  for (size_t i = 0; i < ids.size(); i += 2) q.Cancel(ids[i]);
  EXPECT_EQ(q.Size(), 500u);
  SimTime last = -1;
  while (!q.Empty()) {
    SimTime t;
    q.Pop(&t)();
    EXPECT_GE(t, last);  // Monotone.
    last = t;
  }
  EXPECT_EQ(fired, 500);
}

}  // namespace
}  // namespace diknn
