#include "baselines/kpt.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "harness/metrics.h"

namespace diknn {
namespace {

struct Rig {
  explicit Rig(NetworkConfig config, KptParams params = {})
      : net(config), gpsr(&net), protocol(&net, &gpsr, params) {
    gpsr.Install();
    protocol.Install();
    net.Warmup(2.0);
  }

  // Runs until the query completes (checking in small slices), so that
  // ground truth sampled right after the call reflects completion time.
  KnnResult RunQuery(NodeId sink, Point q, int k, double horizon = 12.0) {
    KnnResult out;
    bool done = false;
    protocol.IssueQuery(sink, q, k, [&](const KnnResult& r) {
      out = r;
      done = true;
    });
    const SimTime deadline = net.sim().Now() + horizon;
    while (!done && net.sim().Now() < deadline) {
      net.sim().RunUntil(net.sim().Now() + 0.25);
    }
    EXPECT_TRUE(done) << "query never completed";
    return out;
  }

  Network net;
  GpsrRouting gpsr;
  KptKnnb protocol;
};

NetworkConfig DefaultConfig(uint64_t seed = 7) {
  NetworkConfig config;
  config.seed = seed;
  config.static_node_count = 1;
  return config;
}

TEST(KptTest, AccurateOnStaticNetwork) {
  NetworkConfig config = DefaultConfig();
  config.mobility = MobilityKind::kStatic;
  Rig rig(config);
  const Point q{60, 60};
  const auto truth = rig.net.TrueKnn(q, 10);
  const KnnResult result = rig.RunQuery(0, q, 10);
  EXPECT_FALSE(result.timed_out);
  EXPECT_GE(Accuracy(result.CandidateIds(), truth), 0.8);
}

TEST(KptTest, BuildsTreeInsideBoundary) {
  Rig rig(DefaultConfig());
  rig.RunQuery(0, {60, 60}, 20);
  const KptStats& stats = rig.protocol.stats();
  EXPECT_GT(stats.tree_joins, 5u);
  EXPECT_GT(stats.build_broadcasts, stats.tree_joins / 2);
  EXPECT_GT(stats.aggregates_sent, 0u);
}

TEST(KptTest, CandidatesSortedAndDeduplicated) {
  Rig rig(DefaultConfig());
  const Point q{50, 50};
  const KnnResult result = rig.RunQuery(0, q, 20);
  std::unordered_set<NodeId> ids;
  double prev = -1;
  for (const KnnCandidate& c : result.candidates) {
    EXPECT_TRUE(ids.insert(c.id).second);
    const double d = Distance(c.position, q);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(KptTest, MobilityCausesRepairs) {
  NetworkConfig config = DefaultConfig();
  config.max_speed = 25.0;
  Rig rig(config);
  for (int i = 0; i < 4; ++i) {
    rig.RunQuery(0, {40.0 + 10 * i, 60}, 30, 8.0);
  }
  // At 25 m/s some parent links must have broken during aggregation.
  EXPECT_GT(rig.protocol.stats().parent_losses, 0u);
  EXPECT_GT(rig.protocol.stats().repairs, 0u);
}

TEST(KptTest, SequentialQueriesComplete) {
  Rig rig(DefaultConfig());
  Rng rng(4);
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    const KnnResult r =
        rig.RunQuery(0, rng.PointInRect(rig.net.config().field), 10, 10.0);
    if (!r.timed_out) ++completed;
  }
  EXPECT_GE(completed, 3);
}

TEST(KptTest, RespectsKBudget) {
  Rig rig(DefaultConfig());
  const KnnResult result = rig.RunQuery(0, {60, 60}, 5);
  EXPECT_LE(result.candidates.size(), 5u);
}

TEST(KptTest, ConservativeBoundaryFloodsFarWider) {
  // The original KPT boundary R = k * MHD makes the tree flood (nearly)
  // the whole network — the paper's Section 5.1 justification for
  // swapping KNNB in.
  NetworkConfig config = DefaultConfig();
  Rig knnb_rig(config);
  KptParams conservative;
  conservative.conservative_boundary = true;
  Rig flood_rig(config, conservative);

  knnb_rig.RunQuery(0, {60, 60}, 20);
  flood_rig.RunQuery(0, {60, 60}, 20);
  EXPECT_GT(flood_rig.protocol.stats().tree_joins,
            2 * knnb_rig.protocol.stats().tree_joins);
}

TEST(KptTest, StatsBalance) {
  Rig rig(DefaultConfig());
  rig.RunQuery(0, {55, 55}, 15);
  const KptStats& stats = rig.protocol.stats();
  EXPECT_EQ(stats.queries_issued, 1u);
  EXPECT_EQ(stats.queries_completed + stats.timeouts, 1u);
}

}  // namespace
}  // namespace diknn
