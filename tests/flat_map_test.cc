#include "core/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ring_buffer.h"
#include "core/rng.h"

namespace diknn {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7u), nullptr);

  auto [kv, inserted] = map.TryEmplace(7u, 42);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(kv->second, 42);
  EXPECT_FALSE(map.TryEmplace(7u, 99).second);
  EXPECT_EQ(*map.find(7u), 42);
  EXPECT_EQ(map.size(), 1u);

  EXPECT_EQ(map.erase(7u), 1u);
  EXPECT_EQ(map.erase(7u), 0u);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMapTest, OperatorBracketDefaultConstructs) {
  FlatMap<uint64_t, std::vector<int>> map;
  map[3].push_back(1);
  map[3].push_back(2);
  EXPECT_EQ(map[3].size(), 2u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, MatchesUnorderedMapUnderChurn) {
  FlatMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(123);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 500));
    switch (rng.UniformInt(0, 3)) {
      case 0:
      case 1: {
        map.InsertOrAssign(key, key * 3);
        ref[key] = key * 3;
        break;
      }
      case 2: {
        EXPECT_EQ(map.erase(key), ref.erase(key));
        break;
      }
      default: {
        const uint64_t* v = map.find(key);
        auto it = ref.find(key);
        ASSERT_EQ(v != nullptr, it != ref.end());
        if (v != nullptr) {
          EXPECT_EQ(*v, it->second);
        }
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  // Full-content cross-check via iteration.
  size_t visited = 0;
  map.ForEach([&](uint64_t k, uint64_t v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatMapTest, BackwardShiftKeepsCollidingChainsReachable) {
  // Keys engineered to collide: with a power-of-two table all these share
  // low hash bits only probabilistically, so instead hammer a small range
  // and erase from the middle of chains.
  FlatMap<uint64_t, int> map;
  for (uint64_t k = 0; k < 64; ++k) map.InsertOrAssign(k, static_cast<int>(k));
  for (uint64_t k = 0; k < 64; k += 2) EXPECT_EQ(map.erase(k), 1u);
  for (uint64_t k = 0; k < 64; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(map.find(k), nullptr) << k;
    } else {
      ASSERT_NE(map.find(k), nullptr) << k;
      EXPECT_EQ(*map.find(k), static_cast<int>(k));
    }
  }
}

TEST(FlatMapTest, EraseIfReexaminesShiftedSlots) {
  FlatMap<uint64_t, int> map;
  for (uint64_t k = 0; k < 1000; ++k) {
    map.InsertOrAssign(k, static_cast<int>(k % 7));
  }
  const size_t erased = map.EraseIf(
      [](uint64_t, int v) { return v == 3; });
  size_t expected = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    if (k % 7 == 3) ++expected;
  }
  EXPECT_EQ(erased, expected);
  EXPECT_EQ(map.size(), 1000 - expected);
  map.ForEach([](uint64_t, int v) { EXPECT_NE(v, 3); });
}

TEST(FlatMapTest, CapacityRetainedAcrossClear) {
  FlatMap<uint64_t, int> map;
  for (uint64_t k = 0; k < 1000; ++k) map.InsertOrAssign(k, 1);
  const size_t cap = map.capacity();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  for (uint64_t k = 0; k < 1000; ++k) map.InsertOrAssign(k, 1);
  EXPECT_EQ(map.capacity(), cap);  // Refill must not regrow.
}

TEST(FlatMapTest, MoveOnlyValues) {
  FlatMap<uint64_t, std::unique_ptr<int>> map;
  map.TryEmplace(1u, std::make_unique<int>(5));
  // Force growth so slots move.
  for (uint64_t k = 2; k < 200; ++k) {
    map.TryEmplace(k, std::make_unique<int>(static_cast<int>(k)));
  }
  ASSERT_NE(map.find(1u), nullptr);
  EXPECT_EQ(**map.find(1u), 5);
  ASSERT_NE(map.find(150u), nullptr);
  EXPECT_EQ(**map.find(150u), 150);
}

TEST(FlatMapTest, DeterministicIterationOrder) {
  // Same insertion/erasure history => same iteration order, every time.
  auto build = [] {
    FlatMap<uint64_t, int> map;
    for (uint64_t k = 0; k < 300; ++k) map.InsertOrAssign(k * 17, 1);
    for (uint64_t k = 0; k < 300; k += 3) map.erase(k * 17);
    std::vector<uint64_t> order;
    map.ForEach([&](uint64_t k, int) { order.push_back(k); });
    return order;
  };
  EXPECT_EQ(build(), build());
}

TEST(FlatSetTest, InsertEraseContains) {
  FlatSet<uint64_t> set;
  EXPECT_TRUE(set.insert(9));
  EXPECT_FALSE(set.insert(9));
  EXPECT_TRUE(set.contains(9));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.erase(9), 1u);
  EXPECT_FALSE(set.contains(9));

  std::set<uint64_t> seen;
  for (uint64_t k = 0; k < 100; ++k) set.insert(k * k);
  set.ForEach([&](uint64_t k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), set.size());
}

TEST(FlatMapTest, NegativeIntKeys) {
  FlatMap<int, int> map;
  map.InsertOrAssign(-2, 7);  // kInvalidNodeId-style keys must round-trip.
  map.InsertOrAssign(5, 8);
  ASSERT_NE(map.find(-2), nullptr);
  EXPECT_EQ(*map.find(-2), 7);
  EXPECT_EQ(map.erase(-2), 1u);
  EXPECT_EQ(map.find(-2), nullptr);
  EXPECT_NE(map.find(5), nullptr);
}

TEST(RingBufferTest, FifoOrderAcrossGrowth) {
  RingBuffer<int> ring;
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  EXPECT_EQ(ring.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.front(), i);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBufferTest, MatchesDequeUnderChurn) {
  RingBuffer<uint64_t> ring;
  std::deque<uint64_t> ref;
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    if (rng.UniformInt(0, 2) != 0) {
      const uint64_t v = static_cast<uint64_t>(i);
      ring.push_back(v);
      ref.push_back(v);
    } else if (!ref.empty()) {
      EXPECT_EQ(ring.front(), ref.front());
      ring.pop_front();
      ref.pop_front();
    }
    ASSERT_EQ(ring.size(), ref.size());
    if (!ref.empty()) {
      const size_t mid = ref.size() / 2;
      ASSERT_EQ(ring[mid], ref[mid]);
    }
  }
}

TEST(RingBufferTest, CapacityRetainedAndWrapsWithoutAllocation) {
  RingBuffer<int> ring;
  for (int i = 0; i < 64; ++i) ring.push_back(i);
  ring.clear();
  const size_t cap = ring.capacity();
  // Push/pop cycles far beyond capacity; the head wraps, capacity stays.
  for (int i = 0; i < 1000; ++i) {
    ring.push_back(i);
    EXPECT_EQ(ring.front(), i);
    ring.pop_front();
  }
  EXPECT_EQ(ring.capacity(), cap);
}

TEST(RingBufferTest, PopReleasesOwnedResources) {
  RingBuffer<std::shared_ptr<int>> ring;
  auto obj = std::make_shared<int>(5);
  ring.push_back(obj);
  EXPECT_EQ(obj.use_count(), 2);
  ring.pop_front();
  EXPECT_EQ(obj.use_count(), 1);  // Slot reset eagerly, not on wrap.
}

}  // namespace
}  // namespace diknn
