// The flight recorder's contract (docs/OBSERVABILITY.md):
//
//   1. Ring semantics: a series keeps the newest `capacity` samples in
//      chronological order and counts what fell off the front.
//   2. Determinism: the non-diagnostic series (DeterministicJson) are
//      byte-equal at any --jobs count and, on the windowed engine, at
//      any shard count — same cadence, same integer counter deltas.
//   3. Observation never perturbs: a recorded run carries the exact
//      same traffic as an unrecorded one.
//   4. The serial driver samples on the sim-time cadence: one tick per
//      interval inside (start, end].

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/json.h"
#include "harness/experiment.h"
#include "obs/flight_recorder.h"
#include "obs/timeseries.h"
#include "sim/simulator.h"

namespace diknn {
namespace {

TEST(TimeSeriesTest, RingKeepsTailAndCountsDropped) {
  TimeSeries s("x", /*capacity=*/3, /*diagnostic=*/false);
  for (int i = 0; i < 5; ++i) {
    s.Append(static_cast<double>(i), static_cast<double>(10 * i));
  }
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.dropped(), 2u);
  // Chronological: oldest retained sample first.
  EXPECT_DOUBLE_EQ(s.TimeAt(0), 2.0);
  EXPECT_DOUBLE_EQ(s.TimeAt(1), 3.0);
  EXPECT_DOUBLE_EQ(s.TimeAt(2), 4.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(0), 20.0);
  EXPECT_DOUBLE_EQ(s.Last(), 40.0);
  EXPECT_DOUBLE_EQ(s.Min(), 20.0);
  EXPECT_DOUBLE_EQ(s.Max(), 40.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 30.0);
}

TEST(TimeSeriesTest, AddIsKeyedByNameAndPointersStayValid) {
  TimeSeriesSet set{TimeSeriesOptions{1.0, 4}};
  TimeSeries* first = set.Add("a");
  // Force enough growth that vector storage would have reallocated.
  for (int i = 0; i < 64; ++i) {
    set.Add("s" + std::to_string(i));
  }
  EXPECT_EQ(set.Add("a"), first);  // Same name -> same series.
  first->Append(0.0, 1.0);         // The early pointer must still be live.
  EXPECT_EQ(set.Find("a")->size(), 1u);
  EXPECT_EQ(set.Find("missing"), nullptr);
}

TEST(TimeSeriesTest, CsvEscapeQuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(TimeSeriesTest, JsonEscapeHandlesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(TimeSeriesTest, CsvRowsEscapeSeriesNames) {
  TimeSeriesSet set{TimeSeriesOptions{1.0, 8}};
  set.Add("odd,name")->Append(1.0, 2.0);
  set.Annotate(3.0, "kill,edge", 7.0);
  std::ostringstream os;
  set.WriteCsv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("\"odd,name\",0,1,2"), std::string::npos);
  EXPECT_NE(csv.find("\"kill,edge\",annotation,3,7"), std::string::npos);
}

TEST(TimeSeriesTest, WriteJsonSeparatesDeterministicFromDiagnostics) {
  TimeSeriesSet set{TimeSeriesOptions{0.5, 8}};
  set.Add("det")->Append(0.5, 1.0);
  set.Add("diag", /*diagnostic=*/true)->Append(0.5, 2.0);
  set.Annotate(0.25, "node.kill", 3.0);
  std::ostringstream os;
  set.WriteJson(os);
  std::string error;
  const auto doc = JsonValue::Parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_NE(doc->Get("series", "det"), nullptr);
  EXPECT_EQ(doc->Get("series", "diag"), nullptr);
  ASSERT_NE(doc->Get("diagnostics", "diag"), nullptr);
  // The deterministic section never mentions diagnostics.
  EXPECT_EQ(set.DeterministicJson().find("diag"), std::string::npos);
}

TEST(FlightRecorderTest, CounterDeltaAndSafeRate) {
  CounterDelta d;
  d.prev = 10;
  EXPECT_EQ(d.Take(15), 5u);
  EXPECT_EQ(d.Take(15), 0u);
  EXPECT_EQ(d.Take(12), 0u);  // A reset counter reads as no progress.
  EXPECT_EQ(d.Take(20), 8u);
  EXPECT_DOUBLE_EQ(SafeRate(1, 4), 0.25);
  EXPECT_DOUBLE_EQ(SafeRate(1, 0), 0.0);
}

TEST(FlightRecorderTest, ScheduleTicksSamplesOncePerInterval) {
  FlightRecorder rec(TimeSeriesOptions{0.5, 32});
  TimeSeries* ticks = rec.AddSeries("ticks");
  rec.AddProbe([ticks](double t) { ticks->Append(t, 1.0); });
  Simulator sim;
  rec.ScheduleTicks(&sim, 0.0, 2.0);
  sim.RunUntil(10.0);
  // Ticks at 0.5, 1.0, 1.5, 2.0 — none past the horizon.
  ASSERT_EQ(ticks->size(), 4u);
  EXPECT_DOUBLE_EQ(ticks->TimeAt(0), 0.5);
  EXPECT_DOUBLE_EQ(ticks->TimeAt(3), 2.0);
}

TEST(FlightRecorderTest, DisabledOptionsScheduleNothing) {
  FlightRecorder rec(TimeSeriesOptions{});
  TimeSeries* ticks = rec.AddSeries("ticks");
  rec.AddProbe([ticks](double t) { ticks->Append(t, 1.0); });
  Simulator sim;
  rec.ScheduleTicks(&sim, 0.0, 2.0);
  sim.RunUntil(10.0);
  EXPECT_TRUE(ticks->empty());
}

// --- Harness integration: the determinism and no-perturbation gates. ---

ExperimentConfig RecordedConfig() {
  ExperimentConfig config;
  config.network.node_count = 120;
  config.network.field = Rect::Field(100.0, 100.0);
  config.duration = 8.0;
  config.drain = 2.0;
  config.runs = 2;
  config.ts_interval = 0.5;
  std::string error;
  config.workload = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=6;k@lo=4,hi=8;deadline@s=2;"
      "admit@inflight=16,queue=8",
      &error);
  EXPECT_TRUE(config.workload.has_value()) << error;
  return config;
}

TEST(FlightRecorderTest, ArtifactBitIdenticalAcrossJobs) {
  ExperimentConfig config = RecordedConfig();
  config.jobs = 1;
  const ExperimentMetrics serial = AggregateRuns(RunExperimentRuns(config));
  config.jobs = 2;
  const ExperimentMetrics jobs2 = AggregateRuns(RunExperimentRuns(config));

  ASSERT_FALSE(serial.ts.series().empty());
  ASSERT_GT(serial.ts.series().front().size(), 0u);
  // Whole artifact — diagnostics included: the exported recording is the
  // base seed's run, so --jobs cannot show through anywhere.
  std::ostringstream a, b;
  serial.ts.WriteJson(a);
  jobs2.ts.WriteJson(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(FlightRecorderTest, DeterministicSeriesIdenticalAcrossShards) {
  ExperimentConfig config = RecordedConfig();
  config.runs = 1;
  // A wide field so four real strips exist (psim geometry clamp).
  config.network.node_count = 512;
  config.network.field = Rect::Field(560.0, 115.0);
  config.duration = 4.0;
  config.force_windowed = true;  // 1-shard windowed baseline.
  config.shards = 1;
  const ExperimentMetrics one = AggregateRuns(RunExperimentRuns(config));
  config.force_windowed = false;
  config.shards = 4;
  const ExperimentMetrics four = AggregateRuns(RunExperimentRuns(config));

  ASSERT_FALSE(one.ts.series().empty());
  EXPECT_EQ(one.ts.DeterministicJson(), four.ts.DeterministicJson());
  // The per-shard diagnostics exist and legitimately differ in shape.
  bool has_shard_diag = false;
  for (const TimeSeries& s : four.ts.series()) {
    has_shard_diag |= s.diagnostic() &&
                      s.name().rfind("psim.shard", 0) == 0;
  }
  EXPECT_TRUE(has_shard_diag);
}

TEST(FlightRecorderTest, RecordingDoesNotPerturbTraffic) {
  ExperimentConfig config = RecordedConfig();
  config.runs = 1;
  const std::vector<RunMetrics> recorded = RunExperimentRuns(config);
  config.ts_interval = 0.0;
  const std::vector<RunMetrics> plain = RunExperimentRuns(config);
  ASSERT_EQ(recorded.size(), 1u);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_FALSE(recorded[0].ts.series().empty());
  EXPECT_TRUE(plain[0].ts.series().empty());
  EXPECT_EQ(recorded[0].obs.CounterValue("channel.frames_sent"),
            plain[0].obs.CounterValue("channel.frames_sent"));
  EXPECT_EQ(recorded[0].queries, plain[0].queries);
  EXPECT_DOUBLE_EQ(recorded[0].avg_latency, plain[0].avg_latency);
}

TEST(FlightRecorderTest, WorkloadSpecClauseEnablesAndCliOverrides) {
  std::string error;
  const auto spec = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=4;timeseries@interval=0.25,capacity=64",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ExperimentConfig config;
  config.workload = *spec;

  ExperimentConfig from_spec = config;
  ExperimentConfig overridden = config;
  overridden.ts_interval = 1.0;
  overridden.ts_capacity = 8;

  // Resolution happens inside the harness; observe it through the run.
  from_spec.network.node_count = 40;
  from_spec.duration = 2.0;
  from_spec.drain = 0.5;
  from_spec.runs = 1;
  const auto runs = RunExperimentRuns(from_spec);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_DOUBLE_EQ(runs[0].ts.options().interval, 0.25);
  EXPECT_EQ(runs[0].ts.options().EffectiveCapacity(), 64u);

  overridden.network.node_count = 40;
  overridden.duration = 2.0;
  overridden.drain = 0.5;
  overridden.runs = 1;
  const auto runs2 = RunExperimentRuns(overridden);
  ASSERT_EQ(runs2.size(), 1u);
  EXPECT_DOUBLE_EQ(runs2[0].ts.options().interval, 1.0);
  EXPECT_EQ(runs2[0].ts.options().EffectiveCapacity(), 8u);
}

}  // namespace
}  // namespace diknn
