#include "baselines/flooding.h"

#include <gtest/gtest.h>

#include "harness/metrics.h"

namespace diknn {
namespace {

struct Rig {
  explicit Rig(NetworkConfig config, FloodingParams params = {})
      : net(config), gpsr(&net), protocol(&net, &gpsr, params) {
    gpsr.Install();
    protocol.Install();
    net.Warmup(2.0);
  }

  // Runs until the query completes (checking in small slices), so that
  // ground truth sampled right after the call reflects completion time.
  KnnResult RunQuery(NodeId sink, Point q, int k, double horizon = 12.0) {
    KnnResult out;
    bool done = false;
    protocol.IssueQuery(sink, q, k, [&](const KnnResult& r) {
      out = r;
      done = true;
    });
    const SimTime deadline = net.sim().Now() + horizon;
    while (!done && net.sim().Now() < deadline) {
      net.sim().RunUntil(net.sim().Now() + 0.25);
    }
    EXPECT_TRUE(done) << "query never completed";
    return out;
  }

  Network net;
  GpsrRouting gpsr;
  Flooding protocol;
};

NetworkConfig DefaultConfig() {
  NetworkConfig config;
  config.seed = 7;
  config.static_node_count = 1;
  return config;
}

TEST(FloodingTest, AnswersQuery) {
  NetworkConfig config = DefaultConfig();
  config.mobility = MobilityKind::kStatic;
  Rig rig(config);
  const Point q{60, 60};
  const auto truth = rig.net.TrueKnn(q, 10);
  const KnnResult result = rig.RunQuery(0, q, 10);
  EXPECT_GE(Accuracy(result.CandidateIds(), truth), 0.5);
  EXPECT_LE(result.candidates.size(), 10u);
}

TEST(FloodingTest, EveryInBoundaryNodeRebroadcastsOnce) {
  Rig rig(DefaultConfig());
  rig.RunQuery(0, {60, 60}, 20);
  const FloodingStats& stats = rig.protocol.stats();
  // One rebroadcast per flooded node (plus the home node's initial one):
  // replies and rebroadcasts track each other.
  EXPECT_GT(stats.rebroadcasts, 5u);
  EXPECT_GE(stats.rebroadcasts + 1, stats.replies_sent);
  EXPECT_GT(stats.replies_sent, 5u);
}

TEST(FloodingTest, IndependentRoutingPathsAreExpensive) {
  // The Section 3.3 argument for itineraries: flooding's per-node
  // response routing costs far more energy than DIKNN on the same query.
  NetworkConfig config = DefaultConfig();
  Rig rig(config);
  const double before = rig.net.TotalEnergy(EnergyCategory::kQuery);
  rig.RunQuery(0, {60, 60}, 20, 8.0);
  const double flood_energy =
      rig.net.TotalEnergy(EnergyCategory::kQuery) - before;
  EXPECT_GT(flood_energy, 0.05);  // Far above a handful of unicasts.
}

TEST(FloodingTest, CompletionIsWindowBound) {
  Rig rig(DefaultConfig());
  const KnnResult result = rig.RunQuery(0, {60, 60}, 10);
  // Completion fires at the collection window (+1 s scheduling margin).
  EXPECT_GE(result.Latency(), 3.0);
  EXPECT_LE(result.Latency(), 4.5);
}

}  // namespace
}  // namespace diknn
