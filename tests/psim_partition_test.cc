// Partition-plane unit tests for the parallel engine: tile ownership
// must be total and disjoint (strips or 2-D tilings alike), the
// lookahead window must follow the frame-air-time formula, the frame
// recipient / neighbor-shard geometry must match tile adjacency, the
// SPSC mailboxes must preserve FIFO order under same-timestamp storms
// and concurrent production, and mobility must hand nodes between
// partitions without breaking the ownership invariant.

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "psim/engine.h"
#include "psim/mailbox.h"
#include "psim/partition.h"
#include "psim/shard.h"
#include "sim/simulator.h"

namespace diknn {
namespace {

PsimNetParams WideParams(double width, double height) {
  PsimNetParams net;
  net.field = Rect::Field(width, height);
  return net;
}

// --- Ownership: every (column, row) cell has exactly one owner, the
// --- tiles cover the grid, and partitioned axes respect the minimum
// --- tile span.

TEST(FieldPartitionTest, OwnershipTotalAndDisjoint) {
  for (int requested : {1, 2, 3, 4, 8, 16}) {
    FieldPartition part(WideParams(560.0, 115.0), requested);
    ASSERT_GE(part.shards(), 1);
    ASSERT_LE(part.shards(), requested);
    ASSERT_EQ(part.shards(), part.tiles_x() * part.tiles_y());
    std::set<std::pair<int, int>> covered;
    for (int s = 0; s < part.shards(); ++s) {
      const auto [first_col, last_col] = part.ColumnRange(s);
      const auto [first_row, last_row] = part.RowRange(s);
      ASSERT_LE(first_col, last_col);
      ASSERT_LE(first_row, last_row);
      if (part.tiles_x() > 1) {
        EXPECT_GE(last_col - first_col + 1, FieldPartition::kMinTileSpan);
      }
      if (part.tiles_y() > 1) {
        EXPECT_GE(last_row - first_row + 1, FieldPartition::kMinTileSpan);
      }
      for (int r = first_row; r <= last_row; ++r) {
        for (int c = first_col; c <= last_col; ++c) {
          EXPECT_TRUE(covered.insert({c, r}).second)
              << "cell (" << c << ", " << r << ") owned twice";
          EXPECT_EQ(part.OwnerAt(c, r), s);
          if (part.tiles_y() == 1) {
            EXPECT_EQ(part.OwnerOfColumn(c), s);  // Strip-mode alias.
          }
        }
      }
    }
    EXPECT_EQ(static_cast<int>(covered.size()), part.cell_count());
  }
}

TEST(FieldPartitionTest, ShardCountClampedToTileGeometry) {
  // The paper's 115 m field is only 6 cells on a side: strips top out at
  // 2, but a 2x2 tiling of 3-cell tiles grants 4 — and nothing more.
  FieldPartition part(WideParams(115.0, 115.0), 64);
  EXPECT_EQ(part.requested_shards(), 64);
  const int max_tiles =
      std::max(1, part.nx() / FieldPartition::kMinTileSpan) *
      std::max(1, part.ny() / FieldPartition::kMinTileSpan);
  EXPECT_LE(part.shards(), max_tiles);
  EXPECT_GT(part.shards(),
            std::max(1, part.nx() / FieldPartition::kMinTileSpan))
      << "square fields must tile the second axis, not stay strips";
  FieldPartition one(WideParams(30.0, 30.0), 8);
  EXPECT_EQ(one.shards(), 1);
}

TEST(FieldPartitionTest, StripsPreferredWhenSufficient) {
  // A wide field satisfies 4 shards with column strips alone; the
  // partition must not grow a second axis it does not need.
  FieldPartition part(WideParams(560.0, 115.0), 4);
  EXPECT_EQ(part.shards(), 4);
  EXPECT_EQ(part.tiles_x(), 4);
  EXPECT_EQ(part.tiles_y(), 1);
}

TEST(FieldPartitionTest, NeighborShardsMatchTileAdjacency) {
  // 115 x 115 at 4 shards is a 2x2 tiling: everyone borders everyone.
  FieldPartition grid(WideParams(115.0, 115.0), 4);
  ASSERT_EQ(grid.tiles_x(), 2);
  ASSERT_EQ(grid.tiles_y(), 2);
  EXPECT_EQ(grid.NeighborShards(0), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(grid.NeighborShards(3), (std::vector<int>{0, 1, 2}));
  // Strip mode: interior strips have exactly their two flanks.
  FieldPartition strips(WideParams(560.0, 115.0), 4);
  ASSERT_EQ(strips.tiles_y(), 1);
  EXPECT_EQ(strips.NeighborShards(0), (std::vector<int>{1}));
  EXPECT_EQ(strips.NeighborShards(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(strips.NeighborShards(3), (std::vector<int>{2}));
}

TEST(FieldPartitionTest, FrameRecipientsFollowInterferenceReach) {
  FieldPartition grid(WideParams(115.0, 115.0), 4);
  ASSERT_EQ(grid.shards(), 4);
  std::array<int, 8> out;
  // Far corner of shard 0's tile: the 2-cell reach stays inside.
  const auto [c0, cl] = grid.ColumnRange(0);
  const auto [r0, rl] = grid.RowRange(0);
  EXPECT_EQ(grid.FrameRecipients(r0 * grid.nx() + c0, 0, &out), 0);
  // Inner corner: reach crosses into the east, south, and diagonal
  // neighbors, reported in ascending shard order.
  const int inner = rl * grid.nx() + cl;
  ASSERT_EQ(grid.FrameRecipients(inner, 0, &out), 3);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 3);
  // Strip mode: an interior cell of a wide strip mails nobody.
  FieldPartition strips(WideParams(560.0, 115.0), 4);
  const auto [sc0, scl] = strips.ColumnRange(1);
  const int mid = (sc0 + scl) / 2;
  EXPECT_EQ(strips.FrameRecipients(mid, 1, &out), 0);
  // Its westmost column mails exactly the west flank.
  ASSERT_EQ(strips.FrameRecipients(sc0, 1, &out), 1);
  EXPECT_EQ(out[0], 0);
}

TEST(FieldPartitionTest, CellOfClampsAndMapsToOwner) {
  FieldPartition part(WideParams(560.0, 115.0), 4);
  // Points outside the field clamp onto the border cells.
  EXPECT_EQ(part.CellOf({-5.0, -5.0}), part.CellOf({0.0, 0.0}));
  EXPECT_EQ(part.ColumnOf(part.CellOf({1e9, 0.0})), part.nx() - 1);
  for (double x : {0.0, 100.0, 280.0, 430.0, 559.9}) {
    const int32_t cell = part.CellOf({x, 57.0});
    EXPECT_EQ(part.OwnerOfCell(cell),
              part.OwnerOfColumn(part.ColumnOf(cell)));
  }
}

// --- Lookahead: max(air time of the largest frame, one backoff slot),
// --- and the sweep period is a whole, positive number of windows.

TEST(FieldPartitionTest, LookaheadFollowsAirTimeFormula) {
  PsimNetParams net;  // 23 bytes at 250 kbps -> 736 us > 320 us slot.
  EXPECT_DOUBLE_EQ(FieldPartition::Lookahead(net),
                   23.0 * 8.0 / 250e3);

  PsimNetParams fast = net;  // At 10 Mbps the backoff slot dominates.
  fast.bit_rate_bps = 10e6;
  EXPECT_DOUBLE_EQ(FieldPartition::Lookahead(fast), fast.backoff_slot_s);
}

TEST(FieldPartitionTest, RefreshPeriodIsWholeWindows) {
  PsimNetParams net;
  FieldPartition part(net, 4);
  EXPECT_GE(part.refresh_windows(), 1);
  EXPECT_DOUBLE_EQ(part.effective_refresh_s(),
                   part.refresh_windows() * part.lookahead());
  // The effective period can only differ from the target by rounding to
  // a whole window.
  EXPECT_NEAR(part.effective_refresh_s(), net.grid_refresh_interval_s,
              part.lookahead());

  PsimNetParams slow = net;  // Refresh shorter than one window clamps up.
  slow.grid_refresh_interval_s = 1e-9;
  EXPECT_EQ(FieldPartition(slow, 2).refresh_windows(), 1);
}

// --- Boundary-mailing predicate: only frames within the drift-extended
// --- border band cross a shard boundary, and edge shards never mail
// --- off the field.

TEST(FieldPartitionTest, BoundaryPredicateCoversDriftBand) {
  FieldPartition part(WideParams(560.0, 115.0), 4);
  ASSERT_EQ(part.shards(), 4);
  for (int s = 0; s < part.shards(); ++s) {
    const auto [first, last] = part.ColumnRange(s);
    EXPECT_EQ(part.NeedsWestNeighbor(first, s), s > 0);
    EXPECT_EQ(part.NeedsWestNeighbor(first + 1, s), s > 0);
    EXPECT_EQ(part.NeedsEastNeighbor(last, s), s + 1 < part.shards());
    EXPECT_EQ(part.NeedsEastNeighbor(last - 1, s), s + 1 < part.shards());
    // A drifted frame one column outside the strip still mails inward.
    if (s > 0) {
      EXPECT_TRUE(part.NeedsWestNeighbor(first - 1, s));
    }
    if (s + 1 < part.shards()) {
      EXPECT_TRUE(part.NeedsEastNeighbor(last + 1, s));
    }
    // Interior columns of a wide-enough strip stay local.
    if (last - first >= 4) {
      const int mid = (first + last) / 2;
      EXPECT_FALSE(part.NeedsWestNeighbor(mid, s));
      EXPECT_FALSE(part.NeedsEastNeighbor(mid, s));
    }
  }
}

// --- SPSC mailbox: FIFO under a same-timestamp storm, capacity
// --- behavior, and order survival with a live producer thread.

TEST(SpscMailboxTest, FifoUnderSameTimestampStorm) {
  SpscMailbox<PsimFrame> box(256);
  // Every frame shares one transmit time; only (sender, seq) tell them
  // apart — exactly the worst case for an ordering bug.
  for (uint32_t i = 0; i < 200; ++i) {
    PsimFrame f;
    f.t = 1.0;
    f.end = 1.000736;
    f.sender = i % 7;
    f.seq = i;
    box.Push(f);
  }
  uint32_t expected = 0;
  const size_t drained = box.Drain([&](const PsimFrame& f) {
    EXPECT_EQ(f.seq, expected);
    EXPECT_EQ(f.sender, expected % 7);
    ++expected;
  });
  EXPECT_EQ(drained, 200u);
  EXPECT_EQ(box.SizeApprox(), 0u);
}

TEST(SpscMailboxTest, CapacityRoundsUpAndTryPushBoundsFill) {
  SpscMailbox<uint32_t> box(100);
  EXPECT_EQ(box.capacity(), 128u);  // Next power of two.
  for (uint32_t i = 0; i < 128; ++i) EXPECT_TRUE(box.TryPush(i));
  EXPECT_FALSE(box.TryPush(999));  // Full ring refuses, never wraps.
  uint32_t expected = 0;
  box.Drain([&](uint32_t v) { EXPECT_EQ(v, expected++); });
  EXPECT_TRUE(box.TryPush(999));  // Space again after the drain.
}

TEST(SpscMailboxTest, FifoSurvivesConcurrentProducer) {
  constexpr uint32_t kTotal = 200000;
  SpscMailbox<uint32_t> box(1024);
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (uint32_t i = 0; i < kTotal; ++i) {
      while (!box.TryPush(i)) std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });
  uint32_t expected = 0;
  while (expected < kTotal) {
    box.Drain([&](uint32_t v) {
      ASSERT_EQ(v, expected);
      ++expected;
    });
    if (done.load(std::memory_order_acquire) && box.SizeApprox() == 0 &&
        expected < kTotal) {
      box.Drain([&](uint32_t v) {
        ASSERT_EQ(v, expected);
        ++expected;
      });
    }
  }
  producer.join();
  EXPECT_EQ(expected, kTotal);
}

// --- Seed derivation: deterministic, lane-separated, and distinct
// --- across shards/nodes (a collision would correlate streams).

TEST(PsimSeedTest, SeedsDeterministicAndDistinct) {
  EXPECT_EQ(PsimShard::ShardSeed(42, 3), PsimShard::ShardSeed(42, 3));
  EXPECT_EQ(PsimShard::NodeSeed(42, 7, 0), PsimShard::NodeSeed(42, 7, 0));
  std::set<uint64_t> seen;
  for (int s = 0; s < 16; ++s) {
    EXPECT_TRUE(seen.insert(PsimShard::ShardSeed(42, s)).second);
  }
  for (uint32_t n = 0; n < 256; ++n) {
    for (uint32_t lane : {0u, 1u}) {
      EXPECT_TRUE(seen.insert(PsimShard::NodeSeed(42, n, lane)).second);
    }
  }
  // A different run seed moves every stream.
  EXPECT_NE(PsimShard::ShardSeed(42, 0), PsimShard::ShardSeed(43, 0));
  EXPECT_NE(PsimShard::NodeSeed(42, 0, 0), PsimShard::NodeSeed(43, 0, 0));
}

// --- RunBefore: the half-open window run the shards are built on.

TEST(SimulatorRunBeforeTest, RunsStrictlyBeforeAndAdvancesClock) {
  Simulator sim;
  std::vector<int> fired;
  sim.ScheduleAt(0.5, [&] { fired.push_back(1); });
  sim.ScheduleAt(1.0, [&] { fired.push_back(2); });  // On the boundary.
  sim.ScheduleAt(1.5, [&] { fired.push_back(3); });
  EXPECT_EQ(sim.RunBefore(1.0), 1u);
  EXPECT_EQ(fired, std::vector<int>({1}));
  EXPECT_DOUBLE_EQ(sim.Now(), 1.0);  // Clock lands on the boundary...
  EXPECT_EQ(sim.RunBefore(2.0), 2u);  // ...and the boundary event fires
  EXPECT_EQ(fired, std::vector<int>({1, 2, 3}));  // in the next window.
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
  EXPECT_EQ(sim.RunBefore(1.5), 0u);  // Never runs the clock backwards.
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
}

// --- Mobility handoff: a fast-mobility sharded run must migrate nodes
// --- between partitions and keep the ownership invariant afterwards.

TEST(PsimHandoffTest, MobilityMigratesNodesAcrossPartitions) {
  PsimConfig config;
  config.node_count = 384;
  config.field = Rect::Field(560.0, 115.0);
  config.max_speed = 10.0;
  config.beacon_interval = 0.25;
  config.duration = 1.5;
  config.shards = 4;
  config.seed = 7;

  PsimEngine engine(config);
  ASSERT_EQ(engine.shards(), 4);
  const PsimResult result = RunPsim(config);
  ASSERT_EQ(result.shards, 4);

  // At 10 m/s over 1.5 s across 22.5 m cells, some nodes must cross a
  // strip boundary; every departure is someone's arrival.
  EXPECT_GT(result.totals.migrations_out, 0u);
  EXPECT_EQ(result.totals.migrations_out, result.totals.migrations_in);
  EXPECT_GT(result.totals.boundary_frames, 0u);
  EXPECT_EQ(result.totals.audit_mismatches, 0u);
  EXPECT_GT(result.totals.audit_probes, 0u);

  // Post-run, every node sits in a bucket its owner maps back to, with
  // a live pending event, and the owned lists cover all nodes.
  PsimEngine checked(config);
  (void)checked.Run();
  EXPECT_TRUE(checked.OwnershipInvariantHolds());
}

TEST(PsimHandoffTest, StaticNodesNeverMigrate) {
  PsimConfig config;
  config.node_count = 256;
  config.field = Rect::Field(560.0, 115.0);
  config.max_speed = 0.0;  // Static mobility.
  config.duration = 1.0;
  config.shards = 4;
  const PsimResult result = RunPsim(config);
  EXPECT_EQ(result.totals.migrations_out, 0u);
  EXPECT_EQ(result.totals.migrations_in, 0u);
  EXPECT_GT(result.totals.frames_sent, 0u);
}

}  // namespace
}  // namespace diknn
