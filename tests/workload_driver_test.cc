// QueryDriver behaviour: admission accounting, deadlines, closed-loop
// concurrency caps, mixed query classes, and bit-identical SloReports at
// any --jobs setting.

#include "workload/query_driver.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace diknn {
namespace {

// A compact world the driver can saturate quickly.
ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.network.node_count = 100;
  config.network.field = Rect::Field(90, 90);
  config.runs = 1;
  config.duration = 20.0;
  config.drain = 6.0;
  return config;
}

WorkloadSpec MustParse(const std::string& s) {
  std::string error;
  const auto spec = WorkloadSpec::Parse(s, &error);
  EXPECT_TRUE(spec.has_value()) << s << ": " << error;
  return *spec;
}

TEST(QueryDriverTest, OutcomePartitionSumsToIssued) {
  ExperimentConfig config = BaseConfig();
  // Overload on purpose: 16 q/s against a 4-query admission bound with a
  // 2-slot queue guarantees queueing AND rejections.
  config.workload = MustParse(
      "arrival@kind=poisson,rate=16;k@lo=10;admit@inflight=4,queue=2");
  const RunMetrics m = RunOnce(config, /*seed=*/42);
  EXPECT_TRUE(m.slo.Consistent())
      << "issued=" << m.slo.issued << " completed=" << m.slo.completed
      << " missed=" << m.slo.deadline_missed << " rejected=" << m.slo.rejected
      << " timed_out=" << m.slo.timed_out;
  EXPECT_GT(m.slo.issued, 100u);
  EXPECT_GT(m.slo.completed, 0u);
  EXPECT_GT(m.slo.rejected, 0u);
  // The admission bound really bounds concurrency.
  EXPECT_LE(m.slo.peak_inflight, 4u);
  EXPECT_EQ(m.queries, static_cast<int>(m.slo.issued));
}

TEST(QueryDriverTest, DeadlinesScoreFinishedQueriesAsMisses) {
  ExperimentConfig config = BaseConfig();
  // A 5 ms deadline is unmeetable in a multi-hop network, so everything
  // that finishes is a miss and goodput collapses to zero.
  config.workload =
      MustParse("arrival@kind=poisson,rate=2;k@lo=10;deadline@s=0.005");
  const RunMetrics m = RunOnce(config, /*seed=*/42);
  EXPECT_TRUE(m.slo.Consistent());
  EXPECT_GT(m.slo.deadline_missed, 0u);
  EXPECT_EQ(m.slo.completed, 0u);
  EXPECT_DOUBLE_EQ(m.slo.GoodputQps(), 0.0);
  EXPECT_GT(m.slo.MissRate(), 0.5);
  // Misses still finished, so they populate the latency distribution.
  EXPECT_EQ(m.slo.latency.Count(),
            m.slo.completed + m.slo.deadline_missed);
}

TEST(QueryDriverTest, ClosedLoopHoldsConcurrencyAtSessionCount) {
  ExperimentConfig config = BaseConfig();
  config.workload =
      MustParse("arrival@kind=closed,sessions=6,think=0;k@lo=10");
  const RunMetrics m = RunOnce(config, /*seed=*/42);
  EXPECT_TRUE(m.slo.Consistent());
  // All sessions fire at t=0, so the peak hits the cap exactly; think=0
  // keeps it pinned there.
  EXPECT_EQ(m.slo.peak_inflight, 6u);
  EXPECT_GT(m.slo.issued, 6u);  // Sessions re-issue after completion.
}

TEST(QueryDriverTest, MixedClassesAllIssueAndResolve) {
  ExperimentConfig config = BaseConfig();
  config.duration = 30.0;
  config.workload = MustParse(
      "arrival@kind=poisson,rate=4;"
      "mix@knn=1,knnb=1,window=1,continuous=1,aggregate=1;"
      "k@lo=5,hi=15;space@kind=hotspot,n=3,sigma=15;"
      "window@side=25;continuous@period=0.5,rounds=2");
  const RunMetrics m = RunOnce(config, /*seed=*/42);
  EXPECT_TRUE(m.slo.Consistent());
  for (int c = 0; c < kNumQueryClasses; ++c) {
    EXPECT_GT(m.slo.issued_by_class[c], 0u)
        << QueryClassName(static_cast<QueryClass>(c));
  }
  // The run must resolve most of what it issued (not wholesale timeout).
  EXPECT_GT(m.slo.completed, m.slo.issued / 2);
  // KNN-class queries were scored against the oracle.
  EXPECT_GT(m.avg_post_accuracy, 0.0);
}

TEST(QueryDriverTest, ReportsAreBitIdenticalAcrossJobs) {
  ExperimentConfig config = BaseConfig();
  config.duration = 12.0;
  config.runs = 3;
  config.workload = MustParse(
      "arrival@kind=poisson,rate=6;mix@knn=0.7,window=0.3;k@lo=8,hi=12;"
      "space@kind=hotspot,n=4,sigma=12;deadline@s=1.5;"
      "admit@inflight=16,queue=8");

  config.jobs = 1;
  const std::vector<RunMetrics> serial = RunExperimentRuns(config);
  config.jobs = 3;
  const std::vector<RunMetrics> parallel = RunExperimentRuns(config);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const SloReport& a = serial[i].slo;
    const SloReport& b = parallel[i].slo;
    EXPECT_EQ(a.issued, b.issued) << i;
    EXPECT_EQ(a.completed, b.completed) << i;
    EXPECT_EQ(a.deadline_missed, b.deadline_missed) << i;
    EXPECT_EQ(a.rejected, b.rejected) << i;
    EXPECT_EQ(a.timed_out, b.timed_out) << i;
    EXPECT_EQ(a.issued_by_class, b.issued_by_class) << i;
    EXPECT_EQ(a.peak_inflight, b.peak_inflight) << i;
    EXPECT_EQ(a.latency.Count(), b.latency.Count()) << i;
    EXPECT_EQ(a.latency.Mean(), b.latency.Mean()) << i;
    EXPECT_EQ(a.p50(), b.p50()) << i;
    EXPECT_EQ(a.p95(), b.p95()) << i;
    EXPECT_EQ(a.p99(), b.p99()) << i;
    EXPECT_EQ(serial[i].avg_pre_accuracy, parallel[i].avg_pre_accuracy) << i;
    EXPECT_EQ(serial[i].avg_post_accuracy, parallel[i].avg_post_accuracy)
        << i;
    EXPECT_EQ(serial[i].energy_joules, parallel[i].energy_joules) << i;
  }
  // Merging per-run reports is order-free integer addition, so the
  // aggregate is identical too.
  const ExperimentMetrics ea = AggregateRuns(serial);
  const ExperimentMetrics eb = AggregateRuns(parallel);
  EXPECT_EQ(ea.slo.issued, eb.slo.issued);
  EXPECT_EQ(ea.slo.p95(), eb.slo.p95());
  EXPECT_EQ(ea.goodput.mean, eb.goodput.mean);
}

TEST(QueryDriverTest, FixedRateIssuesDeterministicCount) {
  ExperimentConfig config = BaseConfig();
  config.duration = 10.0;
  config.workload = MustParse("arrival@kind=fixed,rate=2;k@lo=10");
  const RunMetrics m = RunOnce(config, /*seed=*/42);
  // Fixed spacing of 0.5 s over a 10 s window, first arrival at 0.5:
  // arrivals at 0.5, 1.0, ..., 9.5.
  EXPECT_EQ(m.slo.issued, 19u);
  EXPECT_TRUE(m.slo.Consistent());
}

TEST(QueryDriverTest, RecordsCarryQueueWaitUnderAdmissionPressure) {
  ExperimentConfig config = BaseConfig();
  config.duration = 15.0;
  config.workload = MustParse(
      "arrival@kind=poisson,rate=12;k@lo=10;admit@inflight=2,queue=8");
  ProtocolStack stack(config, 42);
  stack.network().Warmup(config.warmup);
  QueryDriver driver(&stack.network(), &stack.gpsr(), &stack.protocol(),
                     *config.workload, /*seed=*/99, /*sink=*/0);
  const SloReport report = driver.Run(config.duration, config.drain);
  EXPECT_TRUE(report.Consistent());
  bool saw_queue_wait = false;
  for (const WorkloadQueryRecord& r : driver.records()) {
    if (r.queue_wait > 0.0) {
      saw_queue_wait = true;
      // Latency includes the wait (arrival-to-resolution accounting).
      if (r.outcome == QueryOutcome::kCompleted) {
        EXPECT_GE(r.latency, r.queue_wait);
      }
    }
  }
  EXPECT_TRUE(saw_queue_wait);
}

}  // namespace
}  // namespace diknn
