// Observer-effect regression: tracing must never perturb the simulation.
// A run traced at any rate must produce bit-identical query results,
// RunMetrics, and SloReport to the same run with tracing off — the
// tracer only ever appends to its own vectors and draws no sim RNG.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "obs/tracer.h"

namespace diknn {
namespace {

ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.network.node_count = 70;
  config.network.field = Rect::Field(68.0, 68.0);
  config.k = 8;
  config.duration = 6.0;
  config.drain = 4.0;
  config.runs = 2;
  return config;
}

void ExpectBitIdentical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  // EXPECT_EQ on doubles is exact equality — bit-identity, not tolerance.
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p95_latency, b.p95_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.avg_pre_accuracy, b.avg_pre_accuracy);
  EXPECT_EQ(a.avg_post_accuracy, b.avg_post_accuracy);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.beacon_energy_joules, b.beacon_energy_joules);
  EXPECT_EQ(a.average_degree, b.average_degree);
  EXPECT_EQ(a.engine.events_fired, b.engine.events_fired);
  EXPECT_EQ(a.slo.ToJson(), b.slo.ToJson());
}

// The obs snapshots of a traced and an untraced run differ only in the
// tracer's own bookkeeping (tracer.* counters); every simulation-derived
// metric must match bit-for-bit.
void ExpectObsIdenticalModuloTracer(const MetricsSnapshot& a,
                                    const MetricsSnapshot& b) {
  auto drop_tracer = [](const MetricsSnapshot& s) {
    MetricsSnapshot out = s;
    std::erase_if(out.counters, [](const MetricsSnapshot::Counter& c) {
      return c.name.starts_with("tracer.");
    });
    return out;
  };
  EXPECT_EQ(drop_tracer(a), drop_tracer(b));
}

TEST(ObsNoopTest, PaperRunUnchangedByTracing) {
  ExperimentConfig off = BaseConfig();
  ExperimentConfig on = BaseConfig();
  on.trace_sample = 1.0;
  for (uint64_t seed : {42u, 43u}) {
    std::vector<QueryRecord> off_records, on_records;
    const RunMetrics a = RunOnce(off, seed, &off_records);
    TraceData trace;
    const RunMetrics b = RunOnce(on, seed, &on_records, &trace);
    ASSERT_GT(a.queries, 0);
    ASSERT_GT(trace.stats.queries_sampled, 0u);  // Tracing really ran.
    ExpectBitIdentical(a, b);
    ExpectObsIdenticalModuloTracer(a.obs, b.obs);
    // Per-query outcomes, not just aggregates.
    ASSERT_EQ(off_records.size(), on_records.size());
    for (size_t i = 0; i < off_records.size(); ++i) {
      EXPECT_EQ(off_records[i].query_id, on_records[i].query_id);
      EXPECT_EQ(off_records[i].latency, on_records[i].latency);
      EXPECT_EQ(off_records[i].pre_accuracy, on_records[i].pre_accuracy);
      EXPECT_EQ(off_records[i].post_accuracy, on_records[i].post_accuracy);
      EXPECT_EQ(off_records[i].timed_out, on_records[i].timed_out);
    }
  }
}

TEST(ObsNoopTest, PartialSamplingAlsoNoop) {
  // A sampling rate strictly between 0 and 1 exercises the unsampled
  // early-return path on some queries and full recording on others.
  ExperimentConfig off = BaseConfig();
  ExperimentConfig on = BaseConfig();
  on.trace_sample = 0.3;
  const RunMetrics a = RunOnce(off, 42);
  const RunMetrics b = RunOnce(on, 42);
  ASSERT_GT(a.queries, 0);
  ExpectBitIdentical(a, b);
  ExpectObsIdenticalModuloTracer(a.obs, b.obs);
}

TEST(ObsNoopTest, WorkloadRunUnchangedByTracing) {
  ExperimentConfig config = BaseConfig();
  std::string error;
  config.workload = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=4;mix@knn=60,window=20,aggregate=20;"
      "k@lo=4,hi=10;deadline@s=1.5;admit@inflight=8,queue=4",
      &error);
  ASSERT_TRUE(config.workload.has_value()) << error;

  ExperimentConfig traced = config;
  traced.workload->trace_sample = 1.0;  // As "trace@rate=1" in the spec.

  for (int jobs : {1, 2, 8}) {
    config.jobs = jobs;
    traced.jobs = jobs;
    const std::vector<RunMetrics> off = RunExperimentRuns(config);
    const std::vector<RunMetrics> on = RunExperimentRuns(traced);
    ASSERT_EQ(off.size(), on.size());
    for (size_t i = 0; i < off.size(); ++i) {
      ASSERT_GT(off[i].slo.issued, 0u);
      ExpectBitIdentical(off[i], on[i]);
      ExpectObsIdenticalModuloTracer(off[i].obs, on[i].obs);
      // The traced runs actually traced.
      EXPECT_GT(on[i].obs.CounterValue("tracer.queries_sampled"), 0u);
      EXPECT_EQ(off[i].obs.CounterValue("tracer.queries_sampled"), 0u);
    }
  }
}

}  // namespace
}  // namespace diknn
