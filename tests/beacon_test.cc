#include "net/beacon.h"

#include <gtest/gtest.h>

#include "net/network.h"

namespace diknn {
namespace {

TEST(BeaconTest, NeighborTablesMatchTrueTopology) {
  NetworkConfig config;
  config.node_count = 60;
  config.field = Rect::Field(90, 90);
  config.mobility = MobilityKind::kStatic;
  config.seed = 4;
  Network net(config);
  net.Warmup(1.6);  // Three beacon rounds.

  // Every true in-range pair should know each other (static network, no
  // contention to speak of).
  const SimTime now = net.sim().Now();
  int in_range = 0, known = 0;
  for (int u = 0; u < net.size(); ++u) {
    for (int v = 0; v < net.size(); ++v) {
      if (u == v) continue;
      if (Distance(net.node(u)->Position(), net.node(v)->Position()) <=
          config.radio_range_m) {
        ++in_range;
        if (net.node(u)->neighbors().Lookup(v, now).has_value()) ++known;
      }
    }
  }
  ASSERT_GT(in_range, 50);
  EXPECT_GE(static_cast<double>(known) / in_range, 0.9);
}

TEST(BeaconTest, BeaconsCarryPositionAndSpeed) {
  NetworkConfig config;
  config.node_count = 10;
  config.field = Rect::Field(30, 30);
  config.max_speed = 10.0;
  config.seed = 8;
  Network net(config);
  net.Warmup(1.6);
  const SimTime now = net.sim().Now();
  int checked = 0;
  for (int u = 0; u < net.size(); ++u) {
    for (const NeighborEntry& e : net.node(u)->neighbors().Snapshot(now)) {
      // The advertised position is at most (staleness * max speed) off.
      const double staleness = now - e.last_heard;
      const double error =
          Distance(e.position, net.node(e.id)->Position());
      EXPECT_LE(error, staleness * config.max_speed + 1e-6);
      EXPECT_GE(e.speed, 0.0);
      EXPECT_LE(e.speed, config.max_speed);
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(BeaconTest, DeadNodesStopBeaconing) {
  NetworkConfig config;
  config.node_count = 10;
  config.field = Rect::Field(30, 30);
  config.mobility = MobilityKind::kStatic;
  config.seed = 9;
  Network net(config);
  net.Warmup(1.6);
  net.node(3)->set_alive(false);
  // After the staleness timeout the dead node disappears from tables.
  net.sim().RunUntil(net.sim().Now() + 2.0);
  const SimTime now = net.sim().Now();
  for (int u = 0; u < net.size(); ++u) {
    if (u == 3) continue;
    EXPECT_FALSE(net.node(u)->neighbors().Lookup(3, now).has_value());
  }
}

TEST(BeaconTest, MobileNeighborhoodsTrackMovement) {
  NetworkConfig config;
  config.node_count = 80;
  config.field = Rect::Field(115, 115);
  config.max_speed = 10.0;
  config.seed = 10;
  Network net(config);
  net.Warmup(1.6);
  const double degree_before = net.AverageDegree();
  net.sim().RunUntil(net.sim().Now() + 20.0);
  const double degree_after = net.AverageDegree();
  // Tables keep tracking: degree stays in a sane band instead of decaying
  // to zero as nodes move away from their original neighbors.
  EXPECT_GT(degree_after, 0.5 * degree_before);
}

}  // namespace
}  // namespace diknn
