// Scheduling-independence of the parallel experiment harness: running the
// same (config, seed) repetitions on 1 worker or 8 must yield bit-identical
// per-run metrics and aggregates, because every run owns its entire stack
// and results are collected in seed order.

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace diknn {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.network.node_count = 80;
  config.network.field = Rect::Field(75.0, 75.0);
  config.k = 10;
  config.duration = 5.0;
  config.drain = 4.0;
  config.runs = 6;
  return config;
}

void ExpectSameRun(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p95_latency, b.p95_latency);
  EXPECT_EQ(a.avg_pre_accuracy, b.avg_pre_accuracy);
  EXPECT_EQ(a.avg_post_accuracy, b.avg_post_accuracy);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.beacon_energy_joules, b.beacon_energy_joules);
  EXPECT_EQ(a.average_degree, b.average_degree);
}

TEST(ExperimentParallel, EightJobsMatchSequentialBitExactly) {
  ExperimentConfig config = SmallConfig();

  config.jobs = 1;
  const std::vector<RunMetrics> sequential = RunExperimentRuns(config);
  config.jobs = 8;
  const std::vector<RunMetrics> parallel = RunExperimentRuns(config);

  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    ExpectSameRun(sequential[i], parallel[i]);
  }
}

TEST(ExperimentParallel, AggregatesIdenticalAcrossJobCounts) {
  ExperimentConfig config = SmallConfig();
  config.runs = 4;

  config.jobs = 1;
  const ExperimentMetrics seq = RunExperiment(config);
  config.jobs = 8;  // Clamped to the run count internally.
  const ExperimentMetrics par = RunExperiment(config);

  EXPECT_EQ(seq.runs, par.runs);
  EXPECT_EQ(seq.latency.mean, par.latency.mean);
  EXPECT_EQ(seq.latency.stddev, par.latency.stddev);
  EXPECT_EQ(seq.energy.mean, par.energy.mean);
  EXPECT_EQ(seq.pre_accuracy.mean, par.pre_accuracy.mean);
  EXPECT_EQ(seq.post_accuracy.mean, par.post_accuracy.mean);
  EXPECT_EQ(seq.timeout_rate.mean, par.timeout_rate.mean);
}

TEST(ExperimentParallel, MatchesLegacySequentialSeedBehavior) {
  // The parallel pool must preserve the historical seed assignment
  // base_seed + i for run i.
  ExperimentConfig config = SmallConfig();
  config.runs = 3;
  config.jobs = 3;
  const std::vector<RunMetrics> pooled = RunExperimentRuns(config);
  for (int i = 0; i < config.runs; ++i) {
    const RunMetrics direct = RunOnce(config, config.base_seed + i);
    ExpectSameRun(pooled[i], direct);
  }
}

}  // namespace
}  // namespace diknn
