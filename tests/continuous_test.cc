#include "knn/continuous.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace diknn {
namespace {

struct Rig {
  Rig() {
    ExperimentConfig config;
    config.protocol = ProtocolKind::kDiknn;
    stack = std::make_unique<ProtocolStack>(config, /*seed=*/7);
    stack->network().Warmup(2.0);
    continuous = std::make_unique<ContinuousKnn>(&stack->network(),
                                                 &stack->protocol());
  }

  Network& net() { return stack->network(); }

  std::unique_ptr<ProtocolStack> stack;
  std::unique_ptr<ContinuousKnn> continuous;
};

TEST(ContinuousKnnTest, DeliversRequestedRounds) {
  Rig rig;
  std::vector<KnnUpdate> updates;
  rig.continuous->Subscribe(0, {60, 60}, 10, /*period=*/4.0, /*rounds=*/3,
                            [&](const KnnUpdate& u) {
                              updates.push_back(u);
                            });
  rig.net().sim().RunUntil(rig.net().sim().Now() + 30.0);
  ASSERT_EQ(updates.size(), 3u);
  EXPECT_EQ(updates[0].round, 0);
  EXPECT_EQ(updates[1].round, 1);
  EXPECT_EQ(updates[2].round, 2);
  EXPECT_EQ(rig.continuous->ActiveSubscriptions(), 0u);
}

TEST(ContinuousKnnTest, FirstRoundReportsAllAsAdded) {
  Rig rig;
  KnnUpdate first;
  rig.continuous->Subscribe(0, {55, 55}, 10, 4.0, 1,
                            [&](const KnnUpdate& u) { first = u; });
  rig.net().sim().RunUntil(rig.net().sim().Now() + 10.0);
  EXPECT_EQ(first.added.size(), first.result.candidates.size());
  EXPECT_TRUE(first.removed.empty());
  EXPECT_TRUE(first.Changed());
}

TEST(ContinuousKnnTest, DeltasAreConsistentWithSnapshots) {
  Rig rig;
  std::vector<KnnUpdate> updates;
  rig.continuous->Subscribe(0, {60, 60}, 15, 4.0, 4,
                            [&](const KnnUpdate& u) {
                              updates.push_back(u);
                            });
  rig.net().sim().RunUntil(rig.net().sim().Now() + 40.0);
  ASSERT_EQ(updates.size(), 4u);
  std::unordered_set<NodeId> tracked;
  for (const KnnUpdate& u : updates) {
    for (NodeId id : u.added) {
      EXPECT_TRUE(tracked.insert(id).second) << "re-added " << id;
    }
    for (NodeId id : u.removed) {
      EXPECT_EQ(tracked.erase(id), 1u) << "removed unknown " << id;
    }
    std::unordered_set<NodeId> snapshot;
    for (NodeId id : u.result.CandidateIds()) snapshot.insert(id);
    EXPECT_EQ(tracked, snapshot) << "round " << u.round;
  }
}

TEST(ContinuousKnnTest, MobilityProducesChanges) {
  Rig rig;
  int changed_rounds = 0;
  rig.continuous->Subscribe(0, {60, 60}, 10, 5.0, 5,
                            [&](const KnnUpdate& u) {
                              if (u.round > 0 && u.Changed()) {
                                ++changed_rounds;
                              }
                            });
  rig.net().sim().RunUntil(rig.net().sim().Now() + 50.0);
  // At 10 m/s the 10-NN set cannot survive 5 s unchanged every round.
  EXPECT_GE(changed_rounds, 2);
}

TEST(ContinuousKnnTest, CancelStopsFutureRounds) {
  Rig rig;
  int rounds = 0;
  const uint64_t id = rig.continuous->Subscribe(
      0, {60, 60}, 10, 4.0, 0 /* unbounded */,
      [&](const KnnUpdate&) { ++rounds; });
  rig.net().sim().RunUntil(rig.net().sim().Now() + 10.0);
  const int before = rounds;
  EXPECT_GE(before, 1);
  rig.continuous->Cancel(id);
  rig.net().sim().RunUntil(rig.net().sim().Now() + 20.0);
  EXPECT_EQ(rounds, before);
  EXPECT_EQ(rig.continuous->ActiveSubscriptions(), 0u);
}

TEST(ContinuousKnnTest, CancelFromHandlerIsSafe) {
  Rig rig;
  int rounds = 0;
  uint64_t id = 0;
  id = rig.continuous->Subscribe(0, {60, 60}, 10, 4.0, 0,
                                 [&](const KnnUpdate&) {
                                   ++rounds;
                                   rig.continuous->Cancel(id);
                                 });
  rig.net().sim().RunUntil(rig.net().sim().Now() + 20.0);
  EXPECT_EQ(rounds, 1);
}

TEST(ContinuousKnnTest, MultipleSubscriptionsCoexist) {
  Rig rig;
  int a_rounds = 0, b_rounds = 0;
  rig.continuous->Subscribe(0, {40, 40}, 8, 5.0, 2,
                            [&](const KnnUpdate&) { ++a_rounds; });
  rig.continuous->Subscribe(0, {80, 80}, 8, 5.0, 2,
                            [&](const KnnUpdate&) { ++b_rounds; });
  EXPECT_EQ(rig.continuous->ActiveSubscriptions(), 2u);
  rig.net().sim().RunUntil(rig.net().sim().Now() + 30.0);
  EXPECT_EQ(a_rounds, 2);
  EXPECT_EQ(b_rounds, 2);
}

}  // namespace
}  // namespace diknn
