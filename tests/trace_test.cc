#include "harness/trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "obs/tracer.h"

namespace diknn {
namespace {

NetworkConfig SmallConfig() {
  NetworkConfig config;
  config.node_count = 60;
  config.field = Rect::Field(90, 90);
  config.seed = 6;
  return config;
}

TEST(TraceTest, RecordsBeacons) {
  Network net(SmallConfig());
  TraceRecorder trace(&net);
  net.Warmup(2.0);
  EXPECT_GT(trace.entries().size(), 100u);  // 60 nodes x 4 rounds.
  for (const TraceEntry& e : trace.entries()) {
    EXPECT_EQ(e.type, MessageType::kBeacon);
    EXPECT_GE(e.time, 0.0);
    EXPECT_TRUE(net.config().field.Contains(e.position));
    EXPECT_EQ(e.bytes, kBeaconBodyBytes + kMacHeaderBytes);
  }
}

TEST(TraceTest, SummaryMatchesEntryCounts) {
  Network net(SmallConfig());
  TraceRecorder trace(&net);
  net.Warmup(2.0);
  const auto summary = trace.Summarize();
  ASSERT_TRUE(summary.contains(MessageType::kBeacon));
  EXPECT_EQ(summary.at(MessageType::kBeacon).frames,
            trace.entries().size());
  EXPECT_EQ(summary.at(MessageType::kBeacon).bytes,
            trace.entries().size() * (kBeaconBodyBytes + kMacHeaderBytes));
}

TEST(TraceTest, CapturesQueryTraffic) {
  ExperimentConfig config;
  config.protocol = ProtocolKind::kDiknn;
  ProtocolStack stack(config, 7);
  Network& net = stack.network();
  TraceRecorder trace(&net);
  net.Warmup(2.0);
  trace.Clear();  // Drop the warm-up beacons.

  bool done = false;
  stack.protocol().IssueQuery(0, {57, 57}, 10,
                              [&](const KnnResult&) { done = true; });
  while (!done) net.sim().RunUntil(net.sim().Now() + 0.25);

  const auto summary = trace.Summarize();
  EXPECT_TRUE(summary.contains(MessageType::kGeoRouted));
  EXPECT_TRUE(summary.contains(MessageType::kDiknnProbe));
  EXPECT_TRUE(summary.contains(MessageType::kDiknnDataReply));
  EXPECT_TRUE(summary.contains(MessageType::kDiknnForward));
  // ACKs are real frames and show up too.
  EXPECT_TRUE(summary.contains(MessageType::kMacAck));
  // Filter returns only the requested type.
  for (const TraceEntry& e : trace.Filter(MessageType::kDiknnProbe)) {
    EXPECT_EQ(e.type, MessageType::kDiknnProbe);
  }
}

TEST(TraceTest, CsvExportIsWellFormed) {
  Network net(SmallConfig());
  TraceRecorder trace(&net);
  net.Warmup(1.0);
  std::ostringstream os;
  trace.WriteCsv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.find("time,sender,x,y,type,bytes"), 0u);
  // One header plus one line per entry.
  const size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, trace.entries().size() + 1);
  EXPECT_NE(csv.find("Beacon"), std::string::npos);
}

TEST(TraceTest, RecordersAndTracerCoexistOnOneChannel) {
  // The channel keeps a transmit-observer list, so multiple TraceRecorders
  // and the causal Tracer can all watch the same run without evicting one
  // another.
  Network net(SmallConfig());
  TraceRecorder first(&net);
  TraceRecorder second(&net);
  Tracer tracer(1.0, 9);
  net.channel().set_tracer(&tracer);
  net.Warmup(2.0);
  ASSERT_GT(first.entries().size(), 100u);
  EXPECT_EQ(first.entries().size(), second.entries().size());

  // Detaching one recorder leaves the other (and the tracer hook) alive.
  first.Detach();
  const size_t frozen = first.entries().size();
  net.sim().RunUntil(net.sim().Now() + 2.0);
  EXPECT_EQ(first.entries().size(), frozen);
  EXPECT_GT(second.entries().size(), frozen);
}

TEST(TraceTest, DetachStopsRecording) {
  Network net(SmallConfig());
  TraceRecorder trace(&net);
  net.Warmup(1.0);
  const size_t before = trace.entries().size();
  trace.Detach();
  net.sim().RunUntil(net.sim().Now() + 2.0);
  EXPECT_EQ(trace.entries().size(), before);
}

}  // namespace
}  // namespace diknn
