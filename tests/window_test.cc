#include "knn/window.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

namespace diknn {
namespace {

TEST(SerpentinePathTest, SingleLineWindow) {
  // A window thinner than the spacing collapses to one scan line.
  const SerpentinePath path({{0, 0}, {100, 10}}, 17.3);
  EXPECT_EQ(path.num_lines(), 1);
  EXPECT_NEAR(path.TotalLength(), 100.0, 1e-9);
  EXPECT_NEAR(path.PointAt(0.0).x, 0.0, 1e-9);
  EXPECT_NEAR(path.PointAt(100.0).x, 100.0, 1e-9);
}

TEST(SerpentinePathTest, LinesAlternateDirection) {
  const SerpentinePath path({{0, 0}, {100, 40}}, 17.3);
  ASSERT_GE(path.num_lines(), 2);
  const double segment = 100.0 + 17.3;
  // Start of line 0 is on the left; start of line 1 on the right.
  EXPECT_NEAR(path.PointAt(0.0).x, 0.0, 1e-9);
  EXPECT_NEAR(path.PointAt(segment).x, 100.0, 1e-9);
}

TEST(SerpentinePathTest, StaysInsideWindow) {
  const Rect window{{10, 20}, {90, 80}};
  const SerpentinePath path(window, 17.3);
  for (double s = 0; s <= path.TotalLength(); s += 1.0) {
    EXPECT_TRUE(window.Contains(path.PointAt(s))) << "s=" << s;
  }
}

TEST(SerpentinePathTest, IsOneLipschitz) {
  const SerpentinePath path({{0, 0}, {70, 70}}, 12.0);
  Point prev = path.PointAt(0.0);
  for (double s = 0.5; s <= path.TotalLength(); s += 0.5) {
    const Point cur = path.PointAt(s);
    EXPECT_LE(Distance(prev, cur), 0.5 + 1e-9);
    prev = cur;
  }
}

TEST(SerpentinePathTest, CoversWindow) {
  // Every point of the window is within spacing/2 + epsilon of the path
  // (sampled check).
  const Rect window{{0, 0}, {60, 60}};
  const double spacing = 17.3;
  const SerpentinePath path(window, spacing);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const Point p = rng.PointInRect(window);
    double best = 1e18;
    for (double s = 0; s <= path.TotalLength(); s += 1.0) {
      best = std::min(best, Distance(p, path.PointAt(s)));
    }
    EXPECT_LE(best, spacing / 2 + 1.0) << p;
  }
}

struct Rig {
  explicit Rig(NetworkConfig config, WindowQueryParams params = {})
      : net(config), gpsr(&net), protocol(&net, &gpsr, params) {
    gpsr.Install();
    protocol.Install();
    net.Warmup(2.0);
  }

  WindowResult RunQuery(NodeId sink, const Rect& window,
                        double horizon = 15.0) {
    WindowResult out;
    bool done = false;
    protocol.IssueQuery(sink, window, [&](const WindowResult& r) {
      out = r;
      done = true;
    });
    const SimTime deadline = net.sim().Now() + horizon;
    while (!done && net.sim().Now() < deadline) {
      net.sim().RunUntil(net.sim().Now() + 0.25);
    }
    EXPECT_TRUE(done) << "window query never completed";
    return out;
  }

  Network net;
  GpsrRouting gpsr;
  ItineraryWindowQuery protocol;
};

NetworkConfig DefaultConfig() {
  NetworkConfig config;
  config.seed = 7;
  config.static_node_count = 1;
  return config;
}

TEST(WindowQueryTest, CollectsNodesInWindowOnStaticNetwork) {
  NetworkConfig config = DefaultConfig();
  config.mobility = MobilityKind::kStatic;
  Rig rig(config);
  const Rect window{{40, 40}, {80, 80}};
  const WindowResult result = rig.RunQuery(0, window);
  EXPECT_FALSE(result.timed_out);

  // Ground truth: which nodes are inside the window.
  std::unordered_set<NodeId> truth;
  for (int i = 0; i < rig.net.size(); ++i) {
    if (window.Contains(rig.net.node(i)->Position())) truth.insert(i);
  }
  ASSERT_GT(truth.size(), 5u);
  int hits = 0;
  for (const KnnCandidate& c : result.nodes) {
    if (truth.contains(c.id)) ++hits;
  }
  // The sweep collects the overwhelming majority of in-window nodes.
  EXPECT_GE(static_cast<double>(hits) / truth.size(), 0.85);
}

TEST(WindowQueryTest, ReportedPositionsWereInsideWindow) {
  NetworkConfig config = DefaultConfig();
  config.mobility = MobilityKind::kStatic;
  Rig rig(config);
  const Rect window{{20, 50}, {70, 95}};
  const WindowResult result = rig.RunQuery(0, window);
  for (const KnnCandidate& c : result.nodes) {
    EXPECT_TRUE(window.Contains(c.position)) << c.id;
  }
}

TEST(WindowQueryTest, NoDuplicates) {
  Rig rig(DefaultConfig());
  const WindowResult result = rig.RunQuery(0, {{30, 30}, {90, 90}});
  std::unordered_set<NodeId> seen;
  for (const KnnCandidate& c : result.nodes) {
    EXPECT_TRUE(seen.insert(c.id).second) << "duplicate " << c.id;
  }
}

TEST(WindowQueryTest, WorksUnderMobility) {
  Rig rig(DefaultConfig());
  const WindowResult result = rig.RunQuery(0, {{40, 40}, {85, 85}});
  EXPECT_FALSE(result.timed_out);
  EXPECT_GT(result.nodes.size(), 8u);
  EXPECT_GT(rig.protocol.stats().qnode_hops, 3u);
}

TEST(WindowQueryTest, EmptyWindowReturnsNothing) {
  NetworkConfig config = DefaultConfig();
  config.mobility = MobilityKind::kStatic;
  Rig rig(config);
  // A sliver of the field with (almost certainly) nobody inside: still
  // completes, just empty-handed.
  const WindowResult result = rig.RunQuery(0, {{0, 0}, {2, 2}});
  EXPECT_LE(result.nodes.size(), 1u);
}

// Parameterized sweep: varying widths and window shapes keep recall and
// the no-duplicates invariant.
class WindowSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WindowSweepTest, RecallAndInvariantsHold) {
  const auto [width, side] = GetParam();
  NetworkConfig config = DefaultConfig();
  config.mobility = MobilityKind::kStatic;
  WindowQueryParams params;
  params.width = width;
  Rig rig(config, params);
  const Rect window{{57.5 - side / 2, 57.5 - side / 2},
                    {57.5 + side / 2, 57.5 + side / 2}};
  const WindowResult result = rig.RunQuery(0, window, 25.0);
  EXPECT_FALSE(result.timed_out);

  std::unordered_set<NodeId> truth, seen;
  for (int i = 0; i < rig.net.size(); ++i) {
    if (window.Contains(rig.net.node(i)->Position())) truth.insert(i);
  }
  int hits = 0;
  for (const KnnCandidate& c : result.nodes) {
    EXPECT_TRUE(seen.insert(c.id).second);
    if (truth.contains(c.id)) ++hits;
  }
  if (!truth.empty()) {
    EXPECT_GE(static_cast<double>(hits) / truth.size(), 0.75)
        << "w=" << width << " side=" << side;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowSweepTest,
    ::testing::Combine(::testing::Values(10.0, 17.32),
                       ::testing::Values(30.0, 50.0)));

TEST(WindowQueryTest, StatsCoherent) {
  Rig rig(DefaultConfig());
  rig.RunQuery(0, {{40, 40}, {80, 80}});
  const WindowQueryStats& stats = rig.protocol.stats();
  EXPECT_EQ(stats.queries_issued, 1u);
  EXPECT_EQ(stats.queries_completed + stats.timeouts, 1u);
  EXPECT_GT(stats.replies, 0u);
}

}  // namespace
}  // namespace diknn
