#include "net/packet_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/alloc_probe.h"
#include "core/rng.h"
#include "net/packet.h"

namespace diknn {
namespace {

struct TestMessage : Message {
  uint64_t value = 0;
  explicit TestMessage(uint64_t v) : value(v) {}
};

struct ReusableMessage : Message {
  std::vector<int> items;

  void Reuse() { items.clear(); }  // Keeps capacity.
};

TEST(MessagePoolTest, MakeConstructsAndRecycles) {
  const uint64_t live_before = MessagePool::ThreadLive();
  {
    auto msg = MessagePool::Make<TestMessage>(42u);
    ASSERT_NE(msg, nullptr);
    EXPECT_EQ(msg->value, 42u);
    EXPECT_EQ(MessagePool::ThreadLive(), live_before + 1);
  }
  EXPECT_EQ(MessagePool::ThreadLive(), live_before);

  // The freed block serves the next Make of the same size class.
  const uint64_t reuses_before = MessagePool::ThreadStats().reuses;
  auto again = MessagePool::Make<TestMessage>(7u);
  EXPECT_EQ(again->value, 7u);
  EXPECT_GT(MessagePool::ThreadStats().reuses, reuses_before);
}

TEST(MessagePoolTest, SteadyStateMakeIsAllocationFree) {
  // Warm the size class.
  MessagePool::Make<TestMessage>(1u).reset();

  AllocCounters counters;
  {
    AllocScope scope(&counters);
    for (int i = 0; i < 100; ++i) {
      auto msg = MessagePool::Make<TestMessage>(static_cast<uint64_t>(i));
      msg.reset();
    }
  }
  EXPECT_EQ(counters.allocations, 0u);
}

TEST(MessagePoolTest, PayloadConvertsToConstMessage) {
  std::shared_ptr<const Message> payload =
      MessagePool::Make<TestMessage>(5u);
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(static_cast<const TestMessage*>(payload.get())->value, 5u);
}

TEST(MessagePoolTest, ReusableKeepsObjectAndCapacity) {
  const int* data_before = nullptr;
  ReusableMessage* raw_before = nullptr;
  {
    auto msg = MessagePool::MakeReusable<ReusableMessage>();
    raw_before = msg.get();
    msg->items.reserve(64);
    msg->items.assign({1, 2, 3});
    data_before = msg->items.data();
  }
  // Same object comes back, Reuse()d (empty) but with its buffer intact.
  auto again = MessagePool::MakeReusable<ReusableMessage>();
  EXPECT_EQ(again.get(), raw_before);
  EXPECT_TRUE(again->items.empty());
  EXPECT_GE(again->items.capacity(), 64u);
  EXPECT_EQ(again->items.data(), data_before);
}

TEST(MessagePoolTest, ReusableSteadyStateIsAllocationFree) {
  { auto warm = MessagePool::MakeReusable<ReusableMessage>(); }

  AllocCounters counters;
  {
    AllocScope scope(&counters);
    for (int i = 0; i < 100; ++i) {
      auto msg = MessagePool::MakeReusable<ReusableMessage>();
      msg.reset();
    }
  }
  EXPECT_EQ(counters.allocations, 0u);
}

// ---- FramePool ----------------------------------------------------------

struct TestFrame {
  Packet packet;
  std::vector<unsigned char> flags;

  void Reuse() {
    packet = Packet{};  // Drops the payload reference.
    flags.clear();
  }
};

TEST(FramePoolTest, AcquireGetRelease) {
  FramePool<TestFrame> pool;
  EXPECT_EQ(pool.Get(FramePool<TestFrame>::kNullHandle), nullptr);

  const auto h = pool.Acquire();
  ASSERT_NE(pool.Get(h), nullptr);
  EXPECT_EQ(pool.live_count(), 1u);
  pool.Get(h)->packet.uid = 99;

  pool.Release(h);
  EXPECT_EQ(pool.live_count(), 0u);
  EXPECT_EQ(pool.Get(h), nullptr);  // Stale after release.
  pool.Release(h);                  // Double release is a no-op.
  EXPECT_EQ(pool.live_count(), 0u);
}

TEST(FramePoolTest, GenerationTagDetectsAliasedSlot) {
  FramePool<TestFrame> pool;
  const auto h1 = pool.Acquire();
  pool.Get(h1)->packet.uid = 1;
  pool.Release(h1);

  // Same slot, new generation.
  const auto h2 = pool.Acquire();
  ASSERT_NE(h2, h1);
  ASSERT_NE(pool.Get(h2), nullptr);
  EXPECT_EQ(pool.Get(h1), nullptr);   // Old handle must not alias.
  pool.Release(h1);                   // Stale release must not free h2.
  EXPECT_NE(pool.Get(h2), nullptr);
  EXPECT_EQ(pool.live_count(), 1u);
  pool.Release(h2);
}

TEST(FramePoolTest, ReleasedSlotStateIsReused) {
  FramePool<TestFrame> pool;
  const auto h1 = pool.Acquire();
  TestFrame* f = pool.Get(h1);
  f->flags.assign(16, 1);
  f->packet.payload = MessagePool::Make<TestMessage>(3u);
  const unsigned char* flag_data = f->flags.data();
  pool.Release(h1);

  const auto h2 = pool.Acquire();
  TestFrame* g = pool.Get(h2);
  EXPECT_TRUE(g->flags.empty());             // Reuse() cleared it...
  EXPECT_EQ(g->flags.data(), flag_data);     // ...but kept the buffer.
  EXPECT_EQ(g->packet.payload, nullptr);     // Payload ref was dropped.
  EXPECT_EQ(pool.stats().reuses, 1u);
  pool.Release(h2);
}

TEST(FramePoolTest, ChurnUnderFaultLikePatternDrainsToZero) {
  // Mimics the fault-plan churn the channel sees: frames acquired in
  // bursts (duplicates re-air the same packet), some released early
  // (drops), the rest at staggered times. Cross-checked against a
  // reference list of live handles.
  FramePool<TestFrame> pool;
  Rng rng(2024);
  std::vector<uint64_t> live;
  std::vector<uint64_t> stale;

  for (int step = 0; step < 5000; ++step) {
    const int action = rng.UniformInt(0, 2);
    if (action <= 1 && live.size() < 64) {  // Acquire (dup bursts: 1-2).
      const int burst = rng.UniformInt(1, 2);
      for (int b = 0; b < burst && live.size() < 64; ++b) {
        const auto h = pool.Acquire();
        ASSERT_NE(pool.Get(h), nullptr);
        pool.Get(h)->packet.uid = h;
        live.push_back(h);
      }
    } else if (!live.empty()) {  // Release a random live frame (drop).
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int>(live.size()) - 1));
      pool.Release(live[pick]);
      stale.push_back(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(pool.live_count(), live.size());
  }

  for (const uint64_t h : live) {
    ASSERT_NE(pool.Get(h), nullptr);
    EXPECT_EQ(pool.Get(h)->packet.uid, h);  // No aliasing corrupted it.
    pool.Release(h);
  }
  EXPECT_EQ(pool.live_count(), 0u);
  for (const uint64_t h : stale) EXPECT_EQ(pool.Get(h), nullptr);

  // Slab reached a bounded steady state well under the churn volume.
  EXPECT_LE(pool.capacity(), 64u);
  EXPECT_GT(pool.stats().reuses, pool.stats().fresh_allocations);
}

TEST(FramePoolTest, SteadyStateAcquireIsAllocationFree) {
  FramePool<TestFrame> pool;
  // Warm: grow the slab and the slots' flag buffers once.
  std::vector<uint64_t> handles;
  for (int i = 0; i < 32; ++i) handles.push_back(pool.Acquire());
  for (auto h : handles) pool.Get(h)->flags.assign(8, 0);
  for (auto h : handles) pool.Release(h);

  AllocCounters counters;
  {
    AllocScope scope(&counters);
    for (int round = 0; round < 100; ++round) {
      handles.clear();
      for (int i = 0; i < 32; ++i) handles.push_back(pool.Acquire());
      for (auto h : handles) pool.Get(h)->flags.assign(8, 0);
      for (auto h : handles) pool.Release(h);
    }
  }
  EXPECT_EQ(counters.allocations, 0u);
}

}  // namespace
}  // namespace diknn
