#include "net/mobility.h"

#include <gtest/gtest.h>

namespace diknn {
namespace {

const Rect kField = Rect::Field(100, 100);

TEST(StaticMobilityTest, NeverMoves) {
  StaticMobility m({10, 20});
  EXPECT_EQ(m.PositionAt(0.0), Point(10, 20));
  EXPECT_EQ(m.PositionAt(1000.0), Point(10, 20));
  EXPECT_DOUBLE_EQ(m.SpeedAt(5.0), 0.0);
}

TEST(LinearMobilityTest, MovesAtConstantVelocity) {
  LinearMobility m({10, 10}, {1, 2}, kField);
  EXPECT_EQ(m.PositionAt(0.0), Point(10, 10));
  EXPECT_EQ(m.PositionAt(5.0), Point(15, 20));
  EXPECT_NEAR(m.SpeedAt(0.0), std::sqrt(5.0), 1e-12);
}

TEST(LinearMobilityTest, ReflectsAtBoundary) {
  LinearMobility m({90, 50}, {10, 0}, kField);
  // Reaches x=100 at t=1, then reflects back.
  EXPECT_NEAR(m.PositionAt(1.0).x, 100.0, 1e-9);
  EXPECT_NEAR(m.PositionAt(2.0).x, 90.0, 1e-9);
  EXPECT_NEAR(m.PositionAt(11.0).x, 0.0, 1e-9);
  // Stays in the field at all times, including many reflections later.
  for (double t = 0; t < 100; t += 0.37) {
    EXPECT_TRUE(kField.Contains(m.PositionAt(t))) << t;
  }
}

TEST(RandomWaypointTest, StartsAtGivenPosition) {
  RandomWaypointMobility m({30, 40}, kField, 10.0, Rng(1));
  EXPECT_EQ(m.PositionAt(0.0), Point(30, 40));
}

TEST(RandomWaypointTest, StaysInsideField) {
  RandomWaypointMobility m({50, 50}, kField, 20.0, Rng(2));
  for (double t = 0; t < 500; t += 0.25) {
    const Point p = m.PositionAt(t);
    EXPECT_TRUE(kField.Contains(p)) << "t=" << t << " p=" << p;
  }
}

TEST(RandomWaypointTest, SpeedWithinBounds) {
  RandomWaypointMobility m({50, 50}, kField, 10.0, Rng(3));
  for (double t = 0; t < 200; t += 1.0) {
    const double s = m.SpeedAt(t);
    EXPECT_GE(s, RandomWaypointMobility::kMinSpeed);
    EXPECT_LE(s, 10.0);
  }
}

TEST(RandomWaypointTest, DisplacementConsistentWithSpeed) {
  RandomWaypointMobility m({50, 50}, kField, 10.0, Rng(4));
  double t = 0;
  Point prev = m.PositionAt(t);
  const double dt = 0.01;
  for (int i = 0; i < 10000; ++i) {
    t += dt;
    const Point cur = m.PositionAt(t);
    // A node can never move faster than the max speed.
    EXPECT_LE(Distance(prev, cur), 10.0 * dt + 1e-9);
    prev = cur;
  }
}

TEST(RandomWaypointTest, ActuallyMoves) {
  RandomWaypointMobility m({50, 50}, kField, 10.0, Rng(5));
  EXPECT_GT(Distance(m.PositionAt(0.0), m.PositionAt(30.0)), 1.0);
}

TEST(RandomWaypointTest, ZeroMaxSpeedDegeneratesToStatic) {
  RandomWaypointMobility m({25, 75}, kField, 0.0, Rng(6));
  EXPECT_EQ(m.PositionAt(100.0), Point(25, 75));
  EXPECT_DOUBLE_EQ(m.SpeedAt(100.0), 0.0);
}

TEST(RandomWaypointTest, RepeatedQueriesAtSameTimeAgree) {
  RandomWaypointMobility m({50, 50}, kField, 10.0, Rng(7));
  m.PositionAt(12.0);
  const Point a = m.PositionAt(12.0);
  const Point b = m.PositionAt(12.0);
  EXPECT_EQ(a, b);
}

TEST(RandomWaypointTest, DeterministicAcrossInstances) {
  RandomWaypointMobility a({50, 50}, kField, 10.0, Rng(8));
  RandomWaypointMobility b({50, 50}, kField, 10.0, Rng(8));
  for (double t = 0; t < 60; t += 3.1) {
    EXPECT_EQ(a.PositionAt(t), b.PositionAt(t));
  }
}

}  // namespace
}  // namespace diknn
