#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include "faults/fault_injector.h"
#include "net/network.h"

namespace diknn {
namespace {

NetworkConfig SmallConfig() {
  NetworkConfig config;
  config.node_count = 60;
  config.field = Rect::Field(70, 70);
  config.seed = 11;
  return config;
}

// Finds a node within radio range of `src` (unicast will reach it).
NodeId NearbyNode(Network* net, NodeId src) {
  const Point origin = net->node(src)->Position();
  for (int i = 0; i < net->size(); ++i) {
    if (i == src) continue;
    const double d = Distance(origin, net->node(i)->Position());
    if (d < 0.5 * net->config().radio_range_m) return i;
  }
  return kInvalidNodeId;
}

TEST(FaultPlanTest, ParsesMultiEventSpec) {
  std::string error;
  const auto plan = FaultPlan::Parse(
      "kill@t=5,count=2;ackloss@t=8,dur=2,prob=0.5,src=3;"
      "teleport@t=10,node=0,x=1.5,y=2.5;churn@t=1,up=20,down=5,frac=0.1",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->events.size(), 4u);

  EXPECT_EQ(plan->events[0].kind, FaultEvent::Kind::kKill);
  EXPECT_DOUBLE_EQ(plan->events[0].at, 5.0);
  EXPECT_EQ(plan->events[0].count, 2);

  EXPECT_EQ(plan->events[1].kind, FaultEvent::Kind::kAckLoss);
  EXPECT_DOUBLE_EQ(plan->events[1].duration, 2.0);
  EXPECT_DOUBLE_EQ(plan->events[1].probability, 0.5);
  EXPECT_EQ(plan->events[1].src, 3);
  EXPECT_EQ(plan->events[1].dst, kInvalidNodeId);

  EXPECT_EQ(plan->events[2].kind, FaultEvent::Kind::kTeleport);
  EXPECT_DOUBLE_EQ(plan->events[2].position.x, 1.5);
  EXPECT_DOUBLE_EQ(plan->events[2].position.y, 2.5);

  EXPECT_EQ(plan->events[3].kind, FaultEvent::Kind::kChurn);
  EXPECT_DOUBLE_EQ(plan->events[3].mean_up, 20.0);
  EXPECT_DOUBLE_EQ(plan->events[3].mean_down, 5.0);
  EXPECT_DOUBLE_EQ(plan->events[3].dead_fraction, 0.1);
}

TEST(FaultPlanTest, ToSpecRoundTrips) {
  const std::string spec =
      "kill@t=5,count=2;ackloss@t=8,dur=2,prob=0.5;"
      "teleport@t=10,node=0,x=1.5,y=2.5;freeze@t=12,node=0,dur=3";
  const auto plan = FaultPlan::Parse(spec);
  ASSERT_TRUE(plan.has_value());
  const auto reparsed = FaultPlan::Parse(plan->ToSpec());
  ASSERT_TRUE(reparsed.has_value()) << plan->ToSpec();
  ASSERT_EQ(reparsed->events.size(), plan->events.size());
  EXPECT_EQ(reparsed->ToSpec(), plan->ToSpec());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  std::string error;
  // Unknown kind.
  EXPECT_FALSE(FaultPlan::Parse("explode@t=1", &error).has_value());
  // Missing t.
  EXPECT_FALSE(FaultPlan::Parse("kill@node=3", &error).has_value());
  // Unknown key.
  EXPECT_FALSE(FaultPlan::Parse("kill@t=1,nodes=3", &error).has_value());
  EXPECT_NE(error.find("nodes"), std::string::npos);
  // Bad number.
  EXPECT_FALSE(FaultPlan::Parse("kill@t=abc,node=3", &error).has_value());
  // Window kinds need a duration.
  EXPECT_FALSE(FaultPlan::Parse("ackloss@t=1", &error).has_value());
  EXPECT_FALSE(FaultPlan::Parse("drop@t=1,prob=0.5", &error).has_value());
  // Teleport needs coordinates.
  EXPECT_FALSE(FaultPlan::Parse("teleport@t=1,node=3", &error).has_value());
  // Probability out of range.
  EXPECT_FALSE(
      FaultPlan::Parse("drop@t=1,dur=2,prob=1.5", &error).has_value());
  // Negative time.
  EXPECT_FALSE(FaultPlan::Parse("kill@t=-1,node=3", &error).has_value());
}

TEST(FaultInjectorTest, KillsRandomNodesSparingProtectedPrefix) {
  Network net(SmallConfig());
  const auto plan = FaultPlan::Parse("kill@t=1,count=10");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(&net, *plan, /*seed=*/7, /*protected_prefix=*/1);
  injector.Arm();
  net.sim().RunUntil(2.0);

  EXPECT_TRUE(net.node(0)->alive());
  int dead = 0;
  for (int i = 0; i < net.size(); ++i) {
    if (!net.node(i)->alive()) ++dead;
  }
  EXPECT_EQ(dead, 10);
  EXPECT_EQ(injector.stats().nodes_killed, 10u);
}

TEST(FaultInjectorTest, KillAndReviveSpecificNode) {
  Network net(SmallConfig());
  const auto plan = FaultPlan::Parse("kill@t=1,node=5;revive@t=2,node=5");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(&net, *plan, 7);
  injector.Arm();

  net.sim().RunUntil(1.5);
  EXPECT_FALSE(net.node(5)->alive());
  net.sim().RunUntil(2.5);
  EXPECT_TRUE(net.node(5)->alive());
  EXPECT_EQ(injector.stats().nodes_killed, 1u);
  EXPECT_EQ(injector.stats().nodes_revived, 1u);
}

TEST(FaultInjectorTest, FreezePinsNodeForTheWindow) {
  Network net(SmallConfig());
  const auto plan = FaultPlan::Parse("freeze@t=1,node=3,dur=2");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(&net, *plan, 7);
  injector.Arm();

  net.sim().RunUntil(1.5);
  ASSERT_TRUE(net.node(3)->position_pinned());
  const Point frozen = net.node(3)->Position();
  net.sim().RunUntil(2.5);
  EXPECT_TRUE(net.node(3)->position_pinned());
  EXPECT_DOUBLE_EQ(net.node(3)->Position().x, frozen.x);
  EXPECT_DOUBLE_EQ(net.node(3)->Position().y, frozen.y);
  net.sim().RunUntil(3.5);
  EXPECT_FALSE(net.node(3)->position_pinned());
  EXPECT_EQ(injector.stats().freezes, 1u);
}

TEST(FaultInjectorTest, TeleportMovesNode) {
  Network net(SmallConfig());
  const auto plan = FaultPlan::Parse("teleport@t=1,node=3,x=5,y=6");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(&net, *plan, 7);
  injector.Arm();

  net.sim().RunUntil(1.5);
  EXPECT_DOUBLE_EQ(net.node(3)->Position().x, 5.0);
  EXPECT_DOUBLE_EQ(net.node(3)->Position().y, 6.0);
  EXPECT_DOUBLE_EQ(net.node(3)->Speed(), 0.0);
  EXPECT_EQ(injector.stats().teleports, 1u);
}

TEST(FaultInjectorTest, AckLossWindowFailsUnicastsAfterRetries) {
  Network net(SmallConfig());
  net.Warmup(1.6);
  const NodeId dst = NearbyNode(&net, 0);
  ASSERT_NE(dst, kInvalidNodeId);

  // Window covers the whole attempt; every ACK is dropped, so the MAC
  // exhausts its retries and reports failure even though the data frames
  // themselves are delivered.
  const auto plan = FaultPlan::Parse("ackloss@t=0,dur=30");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(&net, *plan, 7);
  injector.Arm();

  bool callback_ran = false, delivered = false;
  net.node(0)->SendUnicast(dst, MessageType::kDiknnForward,
                           std::make_shared<Message>(), 20,
                           EnergyCategory::kQuery, [&](bool success) {
                             callback_ran = true;
                             delivered = success;
                           });
  net.sim().RunUntil(net.sim().Now() + 5.0);

  EXPECT_TRUE(callback_ran);
  EXPECT_FALSE(delivered);
  EXPECT_GE(injector.stats().acks_dropped, 1u);
  EXPECT_EQ(injector.stats().frames_dropped, 0u);
}

TEST(FaultInjectorTest, DropWindowSuppressesFrames) {
  Network net(SmallConfig());
  net.Warmup(1.6);
  const NodeId dst = NearbyNode(&net, 0);
  ASSERT_NE(dst, kInvalidNodeId);

  const auto plan = FaultPlan::Parse("drop@t=0,dur=30");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(&net, *plan, 7);
  injector.Arm();

  bool callback_ran = false, delivered = false;
  net.node(0)->SendUnicast(dst, MessageType::kDiknnForward,
                           std::make_shared<Message>(), 20,
                           EnergyCategory::kQuery, [&](bool success) {
                             callback_ran = true;
                             delivered = success;
                           });
  net.sim().RunUntil(net.sim().Now() + 5.0);

  EXPECT_TRUE(callback_ran);
  EXPECT_FALSE(delivered);
  EXPECT_GE(injector.stats().frames_dropped, 1u);
}

TEST(FaultInjectorTest, DuplicateWindowReairsFramesOnce) {
  Network net(SmallConfig());
  net.Warmup(1.6);
  const NodeId dst = NearbyNode(&net, 0);
  ASSERT_NE(dst, kInvalidNodeId);

  const auto plan = FaultPlan::Parse("dup@t=0,dur=30");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(&net, *plan, 7);
  injector.Arm();

  bool delivered = false;
  net.node(0)->SendUnicast(dst, MessageType::kDiknnForward,
                           std::make_shared<Message>(), 20,
                           EnergyCategory::kQuery,
                           [&](bool success) { delivered = success; });
  net.sim().RunUntil(net.sim().Now() + 5.0);

  // Duplication must not break delivery (receivers dedup by uid).
  EXPECT_TRUE(delivered);
  EXPECT_GE(injector.stats().frames_duplicated, 1u);
}

TEST(FaultInjectorTest, SameSeedSamePlanIsBitIdentical) {
  auto run = [](uint64_t injector_seed) {
    Network net(SmallConfig());
    net.Warmup(1.6);
    const auto plan = FaultPlan::Parse(
        "kill@t=1,count=5;churn@t=2,up=10,down=3;drop@t=3,dur=4,prob=0.4");
    EXPECT_TRUE(plan.has_value());
    FaultInjector injector(&net, *plan, injector_seed);
    injector.Arm();
    net.sim().RunUntil(net.sim().Now() + 20.0);
    return std::make_pair(net.channel().stats().frames_sent,
                          injector.stats());
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second.nodes_killed, b.second.nodes_killed);
  EXPECT_EQ(a.second.nodes_revived, b.second.nodes_revived);
  EXPECT_EQ(a.second.frames_dropped, b.second.frames_dropped);
  EXPECT_EQ(a.second.Total(), b.second.Total());
}

}  // namespace
}  // namespace diknn
