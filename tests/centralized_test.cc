#include "baselines/centralized.h"

#include <gtest/gtest.h>

#include "harness/metrics.h"

namespace diknn {
namespace {

struct Rig {
  explicit Rig(NetworkConfig config, CentralizedParams params = {})
      : net(config), gpsr(&net), protocol(&net, &gpsr, params) {
    gpsr.Install();
    protocol.Install();
    // Warm up for two full update rounds: reports funnel toward one
    // station and a fraction of each round is lost to the contention
    // there, so one round leaves visible index gaps.
    net.Warmup(2.0 * params.update_interval + 1.0);
  }

  KnnResult RunQuery(NodeId sink, Point q, int k, double horizon = 10.0) {
    KnnResult out;
    bool done = false;
    protocol.IssueQuery(sink, q, k, [&](const KnnResult& r) {
      out = r;
      done = true;
    });
    const SimTime deadline = net.sim().Now() + horizon;
    while (!done && net.sim().Now() < deadline) {
      net.sim().RunUntil(net.sim().Now() + 0.1);
    }
    EXPECT_TRUE(done) << "query never completed";
    return out;
  }

  Network net;
  GpsrRouting gpsr;
  CentralizedIndex protocol;
};

NetworkConfig DefaultConfig() {
  NetworkConfig config;
  config.seed = 7;
  config.static_node_count = 1;  // Node 0 = the central station.
  return config;
}

TEST(CentralizedTest, IndexFillsFromUpdates) {
  Rig rig(DefaultConfig());
  EXPECT_GT(rig.protocol.IndexedNodes(), 150u);
  EXPECT_GT(rig.protocol.stats().updates_received, 150u);
}

TEST(CentralizedTest, LocalQueryIsNearInstant) {
  NetworkConfig config = DefaultConfig();
  config.mobility = MobilityKind::kStatic;
  Rig rig(config);
  const Point q{60, 60};
  const KnnResult result = rig.RunQuery(0, q, 10);
  EXPECT_LT(result.Latency(), 0.05);
  // The update funnel toward the single station loses some reports to
  // congestion (the centralized bottleneck the paper criticizes), so the
  // index never quite reaches 100% coverage even on a static field.
  EXPECT_GE(Accuracy(result.CandidateIds(), rig.net.TrueKnn(q, 10)), 0.7);
}

TEST(CentralizedTest, AccuracyLimitedByUpdateStaleness) {
  // High mobility + slow updates: the index answers from old positions.
  // (Both rates stay below the funnel's saturation point; pushing the
  // "fast" rate under ~4 s would collapse deliveries instead — see the
  // update_interval doc in centralized.h.)
  NetworkConfig slow_net = DefaultConfig();
  slow_net.max_speed = 25.0;
  CentralizedParams slow;
  slow.update_interval = 12.0;
  Rig slow_rig(slow_net, slow);
  CentralizedParams fast;
  fast.update_interval = 4.0;
  Rig fast_rig(slow_net, fast);

  double slow_acc = 0, fast_acc = 0;
  Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    const Point q = rng.PointInRect(slow_net.field);
    {
      const KnnResult r = slow_rig.RunQuery(0, q, 15);
      slow_acc +=
          Accuracy(r.CandidateIds(), slow_rig.net.TrueKnn(q, 15));
    }
    {
      const KnnResult r = fast_rig.RunQuery(0, q, 15);
      fast_acc +=
          Accuracy(r.CandidateIds(), fast_rig.net.TrueKnn(q, 15));
    }
  }
  EXPECT_GT(fast_acc, slow_acc);
}

TEST(CentralizedTest, UpdateTrafficCostsMaintenanceEnergy) {
  Rig rig(DefaultConfig());
  const double before = rig.net.TotalEnergy(EnergyCategory::kMaintenance);
  rig.net.sim().RunUntil(rig.net.sim().Now() + 10.0);
  const double spent =
      rig.net.TotalEnergy(EnergyCategory::kMaintenance) - before;
  // ~200 nodes x 5 multi-hop reports over 10 s: substantial, and the
  // core argument for in-network processing.
  EXPECT_GT(spent, 0.5);
}

TEST(CentralizedTest, RemoteSinkGetsAnswer) {
  // A second stationary station (e.g. a gateway) queries the index
  // remotely: the query travels to the center and the answer back.
  NetworkConfig config = DefaultConfig();
  config.static_node_count = 2;  // Nodes 0 (center) and 1 (gateway).
  Rig rig(config);
  const Point q{60, 60};
  const KnnResult result = rig.RunQuery(1, q, 10);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.candidates.size(), 10u);
  EXPECT_GT(result.Latency(), 0.0);  // Real round trip this time.
}

TEST(CentralizedTest, StatsBalance) {
  Rig rig(DefaultConfig());
  rig.RunQuery(0, {50, 50}, 5);
  rig.RunQuery(0, {70, 70}, 5);
  const CentralizedStats& stats = rig.protocol.stats();
  EXPECT_EQ(stats.queries_issued, 2u);
  EXPECT_EQ(stats.queries_completed + stats.timeouts, 2u);
  EXPECT_GE(stats.updates_sent, stats.updates_received);
}

}  // namespace
}  // namespace diknn
