#include "net/churn.h"

#include <gtest/gtest.h>

#include "net/network.h"

namespace diknn {
namespace {

NetworkConfig SmallConfig() {
  NetworkConfig config;
  config.node_count = 80;
  config.field = Rect::Field(100, 100);
  config.seed = 6;
  return config;
}

TEST(ChurnTest, InitialDeadFractionApplied) {
  Network net(SmallConfig());
  ChurnParams params;
  params.initial_dead_fraction = 0.5;
  params.mean_up_time = 1e9;  // No further churn.
  params.mean_down_time = 0;  // Permanent.
  NodeChurn churn(&net.sim(), net.AllNodes(), params, Rng(1));
  churn.Start();
  EXPECT_NEAR(churn.AliveFraction(), 0.5, 0.15);
  EXPECT_GT(churn.stats().failures, 20u);
}

TEST(ChurnTest, ProtectedPrefixSurvives) {
  Network net(SmallConfig());
  ChurnParams params;
  params.initial_dead_fraction = 1.0;
  params.mean_up_time = 0.5;  // Aggressive.
  params.mean_down_time = 0;
  NodeChurn churn(&net.sim(), net.AllNodes(), params, Rng(2),
                  /*protected_prefix=*/3);
  churn.Start();
  net.sim().RunUntil(30.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(net.node(i)->alive()) << i;
  }
  for (int i = 3; i < net.size(); ++i) {
    EXPECT_FALSE(net.node(i)->alive()) << i;
  }
}

TEST(ChurnTest, FailuresAccrueOverTime) {
  Network net(SmallConfig());
  ChurnParams params;
  params.mean_up_time = 5.0;
  params.mean_down_time = 0;  // Permanent failures.
  NodeChurn churn(&net.sim(), net.AllNodes(), params, Rng(3));
  churn.Start();
  net.sim().RunUntil(3.0);
  const double early = churn.AliveFraction();
  net.sim().RunUntil(30.0);
  const double late = churn.AliveFraction();
  EXPECT_LT(late, early);
  EXPECT_LT(late, 0.2);  // 30 s >> mean up time of 5 s.
}

TEST(ChurnTest, RecoveriesBalanceFailuresInSteadyState) {
  Network net(SmallConfig());
  ChurnParams params;
  params.mean_up_time = 5.0;
  params.mean_down_time = 5.0;
  NodeChurn churn(&net.sim(), net.AllNodes(), params, Rng(4));
  churn.Start();
  net.sim().RunUntil(200.0);
  // Alternating renewal with equal means: about half alive.
  EXPECT_NEAR(churn.AliveFraction(), 0.5, 0.2);
  EXPECT_GT(churn.stats().recoveries, 50u);
  // Recoveries can never outnumber failures.
  EXPECT_LE(churn.stats().recoveries, churn.stats().failures);
}

TEST(ChurnTest, DeadNodesDoNotParticipate) {
  Network net(SmallConfig());
  net.Warmup(1.6);
  ChurnParams params;
  params.initial_dead_fraction = 1.0;
  params.mean_down_time = 0;
  NodeChurn churn(&net.sim(), net.AllNodes(), params, Rng(5),
                  /*protected_prefix=*/0);
  churn.Start();
  const auto& stats_before = net.channel().stats();
  const uint64_t frames_before = stats_before.frames_sent;
  net.sim().RunUntil(net.sim().Now() + 5.0);
  // With everyone dead, no beacons go out.
  EXPECT_EQ(net.channel().stats().frames_sent, frames_before);
}

}  // namespace
}  // namespace diknn
