#include "core/geometry.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace diknn {
namespace {

constexpr double kEps = 1e-9;

TEST(PointTest, Arithmetic) {
  Point a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, Point(4, -2));
  EXPECT_EQ(a - b, Point(-2, 6));
  EXPECT_EQ(a * 2.0, Point(2, 4));
  EXPECT_EQ(2.0 * a, Point(2, 4));
  EXPECT_EQ(b / 2.0, Point(1.5, -2));
}

TEST(PointTest, NormAndDistance) {
  EXPECT_DOUBLE_EQ(Point(3, 4).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Point(3, 4).SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {4, 5}), 25.0);
}

TEST(PointTest, DotAndCross) {
  EXPECT_DOUBLE_EQ(Point(1, 2).Dot({3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(Point(1, 0).Cross({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Point(0, 1).Cross({1, 0}), -1.0);
}

TEST(PointTest, NormalizedHandlesZero) {
  EXPECT_EQ(Point(0, 0).Normalized(), Point(0, 0));
  const Point n = Point(10, 0).Normalized();
  EXPECT_NEAR(n.x, 1.0, kEps);
  EXPECT_NEAR(n.y, 0.0, kEps);
}

TEST(PointTest, RotatedQuarterTurn) {
  const Point r = Point(1, 0).Rotated(kPi / 2);
  EXPECT_NEAR(r.x, 0.0, kEps);
  EXPECT_NEAR(r.y, 1.0, kEps);
}

TEST(AngleTest, NormalizeIntoRange) {
  EXPECT_NEAR(NormalizeAngle(0.0), 0.0, kEps);
  EXPECT_NEAR(NormalizeAngle(kTwoPi), 0.0, kEps);
  EXPECT_NEAR(NormalizeAngle(-kPi / 2), 1.5 * kPi, kEps);
  EXPECT_NEAR(NormalizeAngle(5 * kTwoPi + 1.0), 1.0, kEps);
  for (double a : {-100.0, -3.3, 0.0, 7.7, 1000.0}) {
    const double n = NormalizeAngle(a);
    EXPECT_GE(n, 0.0) << a;
    EXPECT_LT(n, kTwoPi) << a;
  }
}

TEST(AngleTest, DifferenceIsSignedShortest) {
  EXPECT_NEAR(AngleDifference(0.1, kTwoPi - 0.1), 0.2, kEps);
  EXPECT_NEAR(AngleDifference(kTwoPi - 0.1, 0.1), -0.2, kEps);
  EXPECT_NEAR(AngleDifference(kPi, 0.0), kPi, kEps);
}

TEST(AngleTest, AngleOfCardinalDirections) {
  EXPECT_NEAR(AngleOf({0, 0}, {1, 0}), 0.0, kEps);
  EXPECT_NEAR(AngleOf({0, 0}, {0, 1}), kPi / 2, kEps);
  EXPECT_NEAR(AngleOf({0, 0}, {-1, 0}), kPi, kEps);
  EXPECT_NEAR(AngleOf({0, 0}, {0, -1}), 1.5 * kPi, kEps);
}

TEST(AngleTest, PointAtAngleRoundTrip) {
  const Point c{10, 20};
  for (double a : {0.0, 1.0, 2.5, 4.0, 6.0}) {
    const Point p = PointAtAngle(c, a, 7.0);
    EXPECT_NEAR(Distance(c, p), 7.0, kEps);
    EXPECT_NEAR(AngleOf(c, p), a, 1e-9);
  }
}

TEST(LerpTest, Endpoints) {
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 0.0), Point(0, 0));
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 1.0), Point(10, 20));
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 0.5), Point(5, 10));
}

TEST(SegmentTest, PointSegmentDistance) {
  // Perpendicular foot inside the segment.
  EXPECT_NEAR(PointSegmentDistance({5, 3}, {0, 0}, {10, 0}), 3.0, kEps);
  // Foot beyond the end: distance to the endpoint.
  EXPECT_NEAR(PointSegmentDistance({13, 4}, {0, 0}, {10, 0}), 5.0, kEps);
  // Degenerate segment.
  EXPECT_NEAR(PointSegmentDistance({3, 4}, {0, 0}, {0, 0}), 5.0, kEps);
}

TEST(SegmentTest, IntersectionCases) {
  // Proper crossing.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {10, 10}, {0, 10}, {10, 0}));
  // Disjoint.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 1}, {2, 2}, {3, 3.5}));
  // Shared endpoint.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {5, 5}, {5, 5}, {10, 0}));
  // Collinear overlap.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {5, 0}, {3, 0}, {8, 0}));
  // Collinear but disjoint.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {2, 0}, {3, 0}, {8, 0}));
  // Parallel.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {5, 0}, {0, 1}, {5, 1}));
}

TEST(RectTest, EmptyBehaviour) {
  const Rect e = Rect::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
  const Rect r{{0, 0}, {2, 3}};
  EXPECT_EQ(e.Union(r).min, r.min);
  EXPECT_EQ(e.Union(r).max, r.max);
  EXPECT_EQ(r.Union(e).min, r.min);
}

TEST(RectTest, ContainsAndIntersects) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(r.Contains(Point{5, 5}));
  EXPECT_TRUE(r.Contains(Point{0, 0}));  // Border inclusive.
  EXPECT_FALSE(r.Contains(Point{10.01, 5}));
  EXPECT_TRUE(r.Intersects(Rect{{5, 5}, {15, 15}}));
  EXPECT_TRUE(r.Intersects(Rect{{10, 10}, {20, 20}}));  // Corner touch.
  EXPECT_FALSE(r.Intersects(Rect{{11, 11}, {20, 20}}));
  EXPECT_TRUE(r.Contains(Rect{{1, 1}, {9, 9}}));
  EXPECT_FALSE(r.Contains(Rect{{1, 1}, {11, 9}}));
}

TEST(RectTest, UnionExpandArea) {
  const Rect a{{0, 0}, {2, 2}};
  const Rect b{{5, 5}, {6, 8}};
  const Rect u = a.Union(b);
  EXPECT_EQ(u.min, Point(0, 0));
  EXPECT_EQ(u.max, Point(6, 8));
  EXPECT_DOUBLE_EQ(a.Area(), 4.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 4.0);
  const Rect ex = a.Expanded({-1, 3});
  EXPECT_EQ(ex.min, Point(-1, 0));
  EXPECT_EQ(ex.max, Point(2, 3));
}

TEST(RectTest, MinDistance) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_DOUBLE_EQ(r.MinDistance({5, 5}), 0.0);   // Inside.
  EXPECT_DOUBLE_EQ(r.MinDistance({15, 5}), 5.0);  // Right of.
  EXPECT_DOUBLE_EQ(r.MinDistance({13, 14}), 5.0); // Corner (3-4-5).
}

TEST(RectTest, Clamp) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_EQ(r.Clamp({-5, 5}), Point(0, 5));
  EXPECT_EQ(r.Clamp({20, -3}), Point(10, 0));
  EXPECT_EQ(r.Clamp({4, 4}), Point(4, 4));
}

TEST(SectorPartitionTest, SectorOfCardinalPoints) {
  const SectorPartition s({0, 0}, 4);  // Quadrant sectors.
  EXPECT_EQ(s.SectorOf({1, 0.1}), 0);
  EXPECT_EQ(s.SectorOf({-1, 0.1}), 1);
  EXPECT_EQ(s.SectorOf({-1, -0.1}), 2);
  EXPECT_EQ(s.SectorOf({1, -0.1}), 3);
  EXPECT_EQ(s.SectorOf({0, 0}), 0);  // Origin convention.
}

TEST(SectorPartitionTest, BordersAndBisectors) {
  const SectorPartition s({0, 0}, 8);
  EXPECT_NEAR(s.SectorAngle(), kPi / 4, kEps);
  EXPECT_NEAR(s.LowerBorderAngle(0), 0.0, kEps);
  EXPECT_NEAR(s.UpperBorderAngle(0), kPi / 4, kEps);
  EXPECT_NEAR(s.BisectorAngle(0), kPi / 8, kEps);
  EXPECT_NEAR(s.BisectorAngle(7), NormalizeAngle(7.5 * kPi / 4), kEps);
}

TEST(SectorPartitionTest, InSectorRespectsRadius) {
  const SectorPartition s({0, 0}, 8);
  const Point p = PointAtAngle({0, 0}, s.BisectorAngle(3), 5.0);
  EXPECT_TRUE(s.InSector(p, 3, 6.0));
  EXPECT_FALSE(s.InSector(p, 3, 4.0));  // Outside radius.
  EXPECT_FALSE(s.InSector(p, 4, 6.0));  // Wrong sector.
}

// Property: every point maps to exactly the sector whose angular range
// contains it, for many random sector counts and points.
TEST(SectorPartitionTest, PropertySectorMatchesAngle) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const int count = rng.UniformInt(1, 16);
    const Point origin = rng.PointInRect({{-50, -50}, {50, 50}});
    const SectorPartition s(origin, count);
    const Point p = rng.PointInRect({{-100, -100}, {100, 100}});
    if (p == origin) continue;
    const int idx = s.SectorOf(p);
    const double angle = AngleOf(origin, p);
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, count);
    // The angle must lie within [lower, upper) modulo rounding at wrap.
    const double lower = s.LowerBorderAngle(idx);
    double rel = NormalizeAngle(angle - lower);
    EXPECT_LT(rel, s.SectorAngle() + 1e-9);
  }
}

}  // namespace
}  // namespace diknn
