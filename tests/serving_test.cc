// The serving front end (src/serving): result-cache validity-time
// expiry, coalescing attach/fan-out semantics, the completion predictor's
// shed/probe behaviour, and driver-level end-to-end properties — cache
// hits under a served workload, follower accounting under leader
// timeouts, and bit-identical reports at any --jobs with or without
// tracing.

#include "serving/front_end.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "obs/tracer.h"
#include "serving/admission.h"
#include "serving/coalescer.h"
#include "serving/result_cache.h"
#include "workload/query_driver.h"

namespace diknn {
namespace {

constexpr int kKnnCls = static_cast<int>(QueryClass::kKnn);

KnnCandidate Cand(NodeId id, double x, double y) {
  KnnCandidate c;
  c.id = id;
  c.position = {x, y};
  return c;
}

std::vector<KnnCandidate> Grid5() {
  // Five candidates on a line; nearest-to-origin order is 0,1,2,3,4.
  return {Cand(0, 1, 0), Cand(1, 2, 0), Cand(2, 3, 0), Cand(3, 4, 0),
          Cand(4, 5, 0)};
}

TEST(ResultCacheTest, EffectiveTtlIsMobilityDerived) {
  const Rect field = Rect::Field(100, 100);
  // One radio range of drift: T = r / mu_max, capped by the spec ttl.
  EXPECT_DOUBLE_EQ(ResultCache(10.0, field, 4, 10.0, 20.0).effective_ttl(),
                   2.0);
  // Faster nodes shrink T.
  EXPECT_DOUBLE_EQ(ResultCache(10.0, field, 4, 20.0, 20.0).effective_ttl(),
                   1.0);
  EXPECT_DOUBLE_EQ(ResultCache(10.0, field, 4, 5.0, 20.0).effective_ttl(),
                   4.0);
  // The spec cap binds when mobility would allow longer.
  EXPECT_DOUBLE_EQ(ResultCache(1.5, field, 4, 5.0, 20.0).effective_ttl(),
                   1.5);
  // A static network is capped only by the spec ttl.
  EXPECT_DOUBLE_EQ(ResultCache(7.0, field, 4, 0.0, 20.0).effective_ttl(),
                   7.0);
}

TEST(ResultCacheTest, ExpiresAtExactlyT) {
  ResultCache cache(10.0, Rect::Field(100, 100), 4, 10.0, 20.0);  // T = 2 s.
  const Point q{10, 10};
  const int32_t cell = cache.CellOf(q);
  cache.Insert(cell, kKnnCls, 3, Grid5(), /*now=*/5.0);

  bool expired = false;
  // Any lookup strictly before inserted_at + T hits.
  EXPECT_TRUE(cache.Lookup(cell, kKnnCls, 3, q, 5.0, &expired).has_value());
  EXPECT_TRUE(
      cache.Lookup(cell, kKnnCls, 3, q, 6.999, &expired).has_value());
  // A lookup at exactly inserted_at + T misses (and reports expiry).
  EXPECT_FALSE(cache.Lookup(cell, kKnnCls, 3, q, 7.0, &expired).has_value());
  EXPECT_TRUE(expired);
}

TEST(ResultCacheTest, ServesKSupersetRePrunedAroundQuerier) {
  ResultCache cache(10.0, Rect::Field(100, 100), 4, 0.0, 20.0);
  const Point q{0, 0};
  const int32_t cell = cache.CellOf(q);
  cache.Insert(cell, kKnnCls, 5, Grid5(), 0.0);

  // Smaller k is a hit and truncates.
  const auto hit = cache.Lookup(cell, kKnnCls, 2, q, 1.0);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), 2u);
  EXPECT_EQ((*hit)[0].id, 0u);
  EXPECT_EQ((*hit)[1].id, 1u);

  // Re-pruning is around the querier's own point: from (6,0) the order
  // reverses.
  const auto far = cache.Lookup(cell, kKnnCls, 2, Point{6, 0}, 1.0);
  ASSERT_TRUE(far.has_value());
  EXPECT_EQ((*far)[0].id, 4u);
  EXPECT_EQ((*far)[1].id, 3u);

  // Larger k than stored is a miss, never a partial hit.
  EXPECT_FALSE(cache.Lookup(cell, kKnnCls, 6, q, 1.0).has_value());
  // A different class misses too.
  EXPECT_FALSE(cache.Lookup(cell, kKnnCls + 1, 2, q, 1.0).has_value());
}

TEST(ResultCacheTest, KeepsLargerValidEntryOverSmallerInsert) {
  ResultCache cache(10.0, Rect::Field(100, 100), 4, 0.0, 20.0);
  const int32_t cell = cache.CellOf({0, 0});
  cache.Insert(cell, kKnnCls, 5, Grid5(), 0.0);
  cache.Insert(cell, kKnnCls, 2, {Cand(9, 0, 0)}, 1.0);
  // The k=5 superset survived, so a k=4 lookup still hits.
  EXPECT_TRUE(cache.Lookup(cell, kKnnCls, 4, {0, 0}, 2.0).has_value());
}

TEST(CoalescerTest, AttachWindowAndKslackBound) {
  QueryCoalescer co(/*window=*/1.0, /*kslack=*/2);
  co.RegisterLeader(/*key=*/7, /*ticket=*/100, /*k=*/10, /*now=*/0.0);
  // In-window, k within leader k + kslack: attaches.
  EXPECT_EQ(co.TryAttach(7, 101, 12, 0.5).value_or(0), 100u);
  // k too large: must launch its own itinerary.
  EXPECT_FALSE(co.TryAttach(7, 102, 13, 0.5).has_value());
  // Different key: no leader.
  EXPECT_FALSE(co.TryAttach(8, 103, 10, 0.5).has_value());
  // Window expired: no attach.
  EXPECT_FALSE(co.TryAttach(7, 104, 10, 1.5).has_value());

  const auto followers = co.OnLeaderResolved(100);
  ASSERT_EQ(followers.size(), 1u);
  EXPECT_EQ(followers[0].ticket, 101u);
  EXPECT_EQ(followers[0].k, 12);
  // Resolved leaders stop existing.
  EXPECT_TRUE(co.OnLeaderResolved(100).empty());
}

TEST(CoalescerTest, ReplacedLeaderKeepsItsFollowers) {
  QueryCoalescer co(/*window=*/10.0, /*kslack=*/0);
  co.RegisterLeader(7, 100, 10, 0.0);
  EXPECT_TRUE(co.TryAttach(7, 101, 10, 0.1).has_value());
  // A new leader takes over the key; the old one keeps follower 101.
  co.RegisterLeader(7, 200, 10, 0.2);
  EXPECT_EQ(co.TryAttach(7, 201, 10, 0.3).value_or(0), 200u);

  const auto old_followers = co.OnLeaderResolved(100);
  ASSERT_EQ(old_followers.size(), 1u);
  EXPECT_EQ(old_followers[0].ticket, 101u);
  // The current leader is untouched by the old one's resolution.
  const auto new_followers = co.OnLeaderResolved(200);
  ASSERT_EQ(new_followers.size(), 1u);
  EXPECT_EQ(new_followers[0].ticket, 201u);
}

TEST(CompletionPredictorTest, ShedsOnlyWithHistoryAndProbesPeriodically) {
  CompletionPredictor pred(/*alpha=*/0.5, /*min_samples=*/2);
  // No history: never sheds.
  EXPECT_FALSE(pred.ShouldShed(0, /*budget=*/0.001));
  pred.Observe(0, 4.0);
  EXPECT_FALSE(pred.ShouldShed(0, 0.001));
  pred.Observe(0, 4.0);
  EXPECT_DOUBLE_EQ(pred.Estimate(0), 4.0);

  // Budget above the estimate: launch.
  EXPECT_FALSE(pred.ShouldShed(0, 5.0));
  // Budget below: shed — except every kProbeInterval-th, which launches
  // as a probe so the estimate can recover.
  int sheds = 0;
  int probes = 0;
  for (int i = 0; i < 2 * CompletionPredictor::kProbeInterval; ++i) {
    if (pred.ShouldShed(0, 1.0)) {
      ++sheds;
    } else {
      ++probes;
    }
  }
  EXPECT_EQ(probes, 2);
  EXPECT_EQ(sheds, 2 * CompletionPredictor::kProbeInterval - 2);
  EXPECT_EQ(pred.probes(), 2u);

  // An unobserved ring borrows the nearest ring with history.
  EXPECT_DOUBLE_EQ(pred.Estimate(5), pred.Estimate(0));
}

TEST(ServingFrontEndTest, RouteWalksCacheCoalesceShed) {
  ServingParams params;
  params.cache_ttl = 10.0;
  params.cache_cells = 4;
  params.coalesce_window = 5.0;
  params.coalesce_kslack = 4;
  params.shed = true;
  ServingFrontEnd fe(params, Rect::Field(100, 100), /*max_speed=*/0.0,
                     /*radio_range=*/20.0);
  const Point q{10, 10};
  const Point sink{90, 90};
  using Action = ServingFrontEnd::Decision::Action;

  // Cold: the first query launches and becomes leader.
  auto d1 = fe.Route(1, q, sink, kKnnCls, 3, /*budget=*/4.0, /*now=*/0.0);
  EXPECT_EQ(d1.action, Action::kLaunch);
  // Co-located second query attaches to it.
  auto d2 = fe.Route(2, q, sink, kKnnCls, 3, 4.0, 0.5);
  EXPECT_EQ(d2.action, Action::kFollower);
  EXPECT_EQ(d2.leader, 1u);

  // Leader completes: followers pop, the cache is seeded.
  const auto followers =
      fe.OnResolved(1, q, sink, kKnnCls, 3, Grid5(), /*latency=*/1.0,
                    /*timed_out=*/false, /*now=*/1.0);
  ASSERT_EQ(followers.size(), 1u);
  EXPECT_EQ(followers[0].ticket, 2u);

  // Third co-located query hits the cache.
  auto d3 = fe.Route(3, q, sink, kKnnCls, 3, 4.0, 1.5);
  EXPECT_EQ(d3.action, Action::kCacheHit);
  EXPECT_EQ(d3.candidates.size(), 3u);

  // A query whose deadline already passed is shed outright.
  auto d4 = fe.Route(4, Point{80, 10}, sink, kKnnCls, 3, -0.5, 2.0);
  EXPECT_EQ(d4.action, Action::kShed);

  const ServingCounters& c = fe.counters();
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.coalesced, 1u);
  EXPECT_EQ(c.fanned_out, 1u);
  EXPECT_EQ(c.cache_insertions, 1u);
  EXPECT_EQ(c.shed, 1u);
}

// ---- Driver-level end-to-end properties -------------------------------

ExperimentConfig ServedConfig() {
  ExperimentConfig config;
  config.network.node_count = 100;
  config.network.field = Rect::Field(90, 90);
  config.runs = 1;
  config.duration = 20.0;
  config.drain = 6.0;
  std::string error;
  const auto spec = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=8;k@lo=10;"
      "space@kind=hotspot,n=2,sigma=5,skew=1.2;deadline@s=4;"
      "admit@inflight=128,queue=32,shed=1;"
      "cache@ttl=8,cells=3;coalesce@window=3,kslack=6",
      &error);
  EXPECT_TRUE(spec.has_value()) << error;
  config.workload = *spec;
  return config;
}

void ExpectSloEqual(const SloReport& a, const SloReport& b,
                    const std::string& label) {
  EXPECT_EQ(a.issued, b.issued) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.deadline_missed, b.deadline_missed) << label;
  EXPECT_EQ(a.rejected, b.rejected) << label;
  EXPECT_EQ(a.timed_out, b.timed_out) << label;
  EXPECT_EQ(a.peak_inflight, b.peak_inflight) << label;
  EXPECT_TRUE(a.serving == b.serving) << label;
  // Byte-identical reports serialize byte-identically.
  EXPECT_EQ(a.ToJson(), b.ToJson()) << label;
}

TEST(ServingDriverTest, ServedWorkloadHitsCacheAndStaysConsistent) {
  const RunMetrics m = RunOnce(ServedConfig(), /*seed=*/42);
  EXPECT_TRUE(m.slo.Consistent())
      << "issued=" << m.slo.issued << " completed=" << m.slo.completed
      << " missed=" << m.slo.deadline_missed
      << " rejected=" << m.slo.rejected << " timed_out=" << m.slo.timed_out;
  EXPECT_GT(m.slo.serving.cache_hits, 0u);
  EXPECT_GT(m.slo.serving.coalesced, 0u);
  EXPECT_EQ(m.slo.serving.coalesced, m.slo.serving.fanned_out);
  // The serving counters surface in the obs registry for --metrics-out.
  EXPECT_EQ(m.obs.CounterValue("serving.cache_hits"),
            m.slo.serving.cache_hits);
  EXPECT_EQ(m.obs.CounterValue("serving.coalesced"),
            m.slo.serving.coalesced);
}

TEST(ServingDriverTest, CachedReportsAreBitIdenticalAcrossJobs) {
  ExperimentConfig config = ServedConfig();
  config.duration = 12.0;
  config.runs = 3;

  config.jobs = 1;
  const std::vector<RunMetrics> serial = RunExperimentRuns(config);
  config.jobs = 3;
  const std::vector<RunMetrics> parallel = RunExperimentRuns(config);

  ASSERT_EQ(serial.size(), parallel.size());
  bool any_hits = false;
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectSloEqual(serial[i].slo, parallel[i].slo,
                   "run " + std::to_string(i));
    any_hits |= serial[i].slo.serving.cache_hits > 0;
  }
  EXPECT_TRUE(any_hits);
}

TEST(ServingDriverTest, TracingDoesNotPerturbServedRuns) {
  ExperimentConfig config = ServedConfig();
  config.duration = 12.0;
  const RunMetrics untraced = RunOnce(config, /*seed=*/7);

  config.workload->trace_sample = 1.0;
  TraceData trace;
  const RunMetrics traced =
      RunOnce(config, /*seed=*/7, /*records_out=*/nullptr, &trace);

  ExpectSloEqual(untraced.slo, traced.slo, "traced-vs-untraced");
  EXPECT_GT(trace.stats.queries_sampled, 0u);
  // The serving path left its marks in the trace stream.
  bool saw_serving_event = false;
  for (const SpanEvent& ev : trace.events) {
    if (ev.kind == TraceEventKind::kCacheHit ||
        ev.kind == TraceEventKind::kCoalesced ||
        ev.kind == TraceEventKind::kFanOut ||
        ev.kind == TraceEventKind::kShed) {
      saw_serving_event = true;
      break;
    }
  }
  EXPECT_TRUE(saw_serving_event);
}

TEST(ServingDriverTest, FollowerOutcomesBalanceWhenLeadersTimeOut) {
  ExperimentConfig config = ServedConfig();
  // Overload hard so leaders time out with followers attached.
  std::string error;
  config.workload = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=24;k@lo=10;"
      "space@kind=hotspot,n=2,sigma=5,skew=1.2;deadline@s=2;"
      "admit@inflight=128,queue=32;"
      "cache@ttl=1,cells=3;coalesce@window=3,kslack=6",
      &error);
  ASSERT_TRUE(config.workload.has_value()) << error;
  const RunMetrics m = RunOnce(config, /*seed=*/11);
  EXPECT_TRUE(m.slo.Consistent())
      << "issued=" << m.slo.issued << " completed=" << m.slo.completed
      << " missed=" << m.slo.deadline_missed
      << " rejected=" << m.slo.rejected << " timed_out=" << m.slo.timed_out;
  EXPECT_GT(m.slo.serving.coalesced, 0u);
  EXPECT_GT(m.slo.timed_out, 0u);
  // Every attached follower either fanned out or was finalized in place;
  // nothing leaks past the report.
  EXPECT_LE(m.slo.serving.fanned_out, m.slo.serving.coalesced);
}

}  // namespace
}  // namespace diknn
