// Query-lifecycle hardening tests: regression coverage for the per-query
// state leaks (replied_ resurrection, post-completion stragglers,
// dead-node retries, orphaned collection windows) plus the fault-injected
// soak that asserts thousands of queries drain without residue.

#include <gtest/gtest.h>

#include "faults/fault_injector.h"
#include "faults/lifecycle_auditor.h"
#include "harness/experiment.h"

namespace diknn {
namespace {

// A small, hostile world: tight field, short timeouts, lossy air. Queries
// regularly time out at the sink while their itineraries are still being
// traversed, which is exactly the straggler regime the lifecycle fixes
// target.
ExperimentConfig HostileConfig() {
  ExperimentConfig config;
  config.network.node_count = 120;
  config.network.field = Rect::Field(90, 90);
  config.network.loss_rate = 0.15;
  config.k = 10;
  config.runs = 1;
  config.duration = 30.0;
  config.query_interval_mean = 0.5;
  config.diknn.query_timeout = 0.6;  // Completion races the traversal.
  config.drain = 3.0;
  config.audit_lifecycle = true;
  return config;
}

struct StressOutcome {
  DiknnStats stats;
  DiknnLifecycleCounts counts;
  uint64_t checks = 0;
  uint64_t violations = 0;
  size_t residue = 0;
  size_t frames_in_flight = 0;
  bool flow_bounded = true;
  int completions = 0;
};

// Drives a ProtocolStack by hand (RunOnce hides the Diknn instance, and
// the regression assertions need its counters).
StressOutcome RunStress(const ExperimentConfig& config, uint64_t seed,
                        const std::string& fault_spec) {
  ProtocolStack stack(config, seed);
  Network& net = stack.network();
  LifecycleAuditor auditor(stack.diknn(), &stack.gpsr());
  net.Warmup(config.warmup);

  std::unique_ptr<FaultInjector> injector;
  if (!fault_spec.empty()) {
    const auto plan = FaultPlan::Parse(fault_spec);
    EXPECT_TRUE(plan.has_value()) << fault_spec;
    injector = std::make_unique<FaultInjector>(&net, *plan, seed + 1);
    injector->Arm();
  }

  Rng rng(seed);
  int completions = 0;
  const SimTime deadline = net.sim().Now() + config.duration;
  // Issue the Poisson workload from the sink like the harness does.
  std::function<void()> issue_next = [&]() {
    const SimTime next =
        net.sim().Now() + rng.Exponential(config.query_interval_mean);
    if (next >= deadline) return;
    net.sim().ScheduleAt(next, [&]() {
      const Point q = rng.PointInRect(config.network.field);
      stack.protocol().IssueQuery(0, q, config.k,
                                  [&](const KnnResult&) { ++completions; });
      issue_next();
    });
  };
  issue_next();
  net.sim().RunUntil(deadline + config.drain);

  StressOutcome out;
  out.stats = stack.diknn()->stats();
  out.counts = stack.diknn()->lifecycle_counts();
  out.checks = auditor.checks();
  out.violations = auditor.violations();
  out.residue = auditor.FinalResidue();
  out.frames_in_flight = net.channel().frames_in_flight();
  out.flow_bounded = auditor.FlowStateBounded();
  out.completions = completions;
  return out;
}

// Regression: OnProbe's unicast-failure callbacks used replied_[id].erase,
// re-inserting an empty set after CompleteQuery had erased the query, and
// StartQNode / FinishSector re-populated last_hop_seen_ /
// finished_sectors_ from straggling traversal branches. Under short
// timeouts + loss those paths fire constantly; with the guards in place
// the containers drain to zero and the dropped work is counted.
TEST(LifecycleRegressionTest, TimedOutStragglersLeaveNoResidue) {
  const StressOutcome out = RunStress(HostileConfig(), 42, "");
  EXPECT_GT(out.stats.timeouts, 0u);
  EXPECT_GT(out.stats.stale_branches_dropped, 0u);
  EXPECT_EQ(out.violations, 0u);
  EXPECT_EQ(out.residue, 0u) << "leaked per-query entries";
  // Container by container: the fork-suppression map and the buffered
  // rendezvous broadcasts are the two that historically leaked from
  // straggling traversal branches.
  EXPECT_EQ(out.counts.last_hop_seen, 0u);
  EXPECT_EQ(out.counts.heard_rendezvous_entries, 0u);
  EXPECT_EQ(out.counts.replied_queries, 0u);
  EXPECT_EQ(out.counts.collections, 0u);
  EXPECT_GT(out.checks, 0u);
}

// Regression: CompleteQuery left scheduled FinishCollection events and
// collections_ entries alive, so timed-out queries kept traversing and
// probing. Cancelled windows are now counted.
TEST(LifecycleRegressionTest, CompletionCancelsOpenCollections) {
  const StressOutcome out = RunStress(HostileConfig(), 43, "");
  EXPECT_GT(out.stats.collections_cancelled, 0u);
  EXPECT_EQ(out.residue, 0u);
}

// Regression: ForwardAlongItinerary's MAC-failure callback re-entered
// forwarding from a node killed mid-retry. With churn killing nodes while
// itineraries are in flight, the liveness guards must fire and the
// containers must still drain.
TEST(LifecycleRegressionTest, DeadNodesDropTraversalWork) {
  ExperimentConfig config = HostileConfig();
  config.network.loss_rate = 0.25;  // Force MAC retries and lost ACKs.
  const StressOutcome out = RunStress(
      config, 44, "churn@t=0,up=3,down=2;ackloss@t=5,dur=10,prob=0.7");
  EXPECT_GT(out.stats.dead_node_drops, 0u);
  EXPECT_EQ(out.violations, 0u);
  EXPECT_EQ(out.residue, 0u);
  EXPECT_EQ(out.counts.last_hop_seen, 0u);
  EXPECT_EQ(out.counts.heard_rendezvous_entries, 0u);
  EXPECT_TRUE(out.flow_bounded);
  // Frame-pool slots are released when each delivery event fires, so
  // after the drain the air holds at most the beacons of the final
  // instant. A leaked slot (dropped or duplicated frame that never
  // released) accumulates into the hundreds over a faulted run.
  EXPECT_LE(out.frames_in_flight, 8u);
}

// Sanity for the audit itself: ResidueFor / lifecycle_counts must see
// the in-flight state (otherwise zero-residue assertions are vacuous),
// and it must all be gone once the query completes.
TEST(LifecycleRegressionTest, ResidueIsVisibleMidQueryAndGoneAfter) {
  ExperimentConfig config = HostileConfig();
  config.diknn.query_timeout = 8.0;  // Let the query actually finish.
  ProtocolStack stack(config, 42);
  Network& net = stack.network();
  net.Warmup(config.warmup);

  bool done = false;
  stack.protocol().IssueQuery(0, config.network.field.Center(), config.k,
                              [&](const KnnResult&) { done = true; });
  net.sim().RunUntil(net.sim().Now() + 0.2);
  ASSERT_FALSE(done);
  // IssueQuery assigns ids from 1.
  EXPECT_GE(stack.diknn()->ResidueFor(1), 1u);
  EXPECT_GE(stack.diknn()->lifecycle_counts().TotalPerQuery(), 1u);

  net.sim().RunUntil(net.sim().Now() + 10.0);
  ASSERT_TRUE(done);
  EXPECT_EQ(stack.diknn()->ResidueFor(1), 0u);
  EXPECT_EQ(stack.diknn()->lifecycle_counts().TotalPerQuery(), 0u);
}

// The tentpole soak: thousands of queries under node kills, churn,
// ACK-loss bursts, frame drops/duplication and sink freezes — every
// completion audited, zero residue at the end.
TEST(LifecycleSoakTest, ThousandsOfFaultedQueriesLeaveNoResidue) {
  ExperimentConfig config;
  config.network.node_count = 120;
  config.network.field = Rect::Field(90, 90);
  config.network.loss_rate = 0.1;
  config.k = 8;
  config.runs = 1;
  config.duration = 110.0;
  config.query_interval_mean = 0.05;  // ~2200 queries per run.
  config.diknn.query_timeout = 1.5;
  config.drain = 3.0;
  config.audit_lifecycle = true;
  const auto plan = FaultPlan::Parse(
      "kill@t=5,count=8;churn@t=10,up=15,down=5;"
      "ackloss@t=20,dur=5,prob=0.8;drop@t=40,dur=5,prob=0.3;"
      "dup@t=60,dur=10,prob=0.2;freeze@t=80,node=0,dur=5;"
      "teleport@t=90,node=0,x=20,y=20,dur=5");
  ASSERT_TRUE(plan.has_value());
  config.faults = *plan;

  const RunMetrics m = RunOnce(config, /*seed=*/42);
  EXPECT_GE(m.queries, 2000);
  EXPECT_GE(m.lifecycle_checks, 2000u);
  EXPECT_EQ(m.lifecycle_violations, 0u);
  EXPECT_EQ(m.leaked_entries, 0u);
  EXPECT_GT(m.faults_injected, 0u);
}

// Serving-stack soak: a cached + coalesced workload under the same fault
// cocktail. Leaders get killed, frozen and timed out mid-itinerary with
// followers attached; the fan-out path must finalize every follower
// (issued == completed + missed + rejected + timed_out), the auditor must
// see zero protocol residue, and the coalescer itself must drain.
TEST(LifecycleSoakTest, FaultedServedWorkloadBalancesAndLeavesNoResidue) {
  ExperimentConfig config;
  config.network.node_count = 120;
  config.network.field = Rect::Field(90, 90);
  config.network.loss_rate = 0.1;
  config.runs = 1;
  config.duration = 60.0;
  config.diknn.query_timeout = 1.5;
  config.drain = 4.0;
  config.audit_lifecycle = true;
  std::string error;
  const auto spec = WorkloadSpec::Parse(
      "arrival@kind=poisson,rate=12;k@lo=8;"
      "space@kind=hotspot,n=2,sigma=5,skew=1.2;deadline@s=2;"
      "admit@inflight=128,queue=32,shed=1;"
      "cache@ttl=2,cells=3;coalesce@window=3,kslack=6",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  config.workload = *spec;
  const auto plan = FaultPlan::Parse(
      "kill@t=5,count=8;churn@t=10,up=15,down=5;"
      "ackloss@t=20,dur=5,prob=0.8;drop@t=30,dur=5,prob=0.3;"
      "dup@t=40,dur=10,prob=0.2;freeze@t=50,node=0,dur=4");
  ASSERT_TRUE(plan.has_value());
  config.faults = *plan;

  const RunMetrics m = RunOnce(config, /*seed=*/42);
  EXPECT_TRUE(m.slo.Consistent())
      << "issued=" << m.slo.issued << " completed=" << m.slo.completed
      << " missed=" << m.slo.deadline_missed
      << " rejected=" << m.slo.rejected << " timed_out=" << m.slo.timed_out;
  EXPECT_GT(m.slo.issued, 400u);
  // The serving stages all exercised under faults.
  EXPECT_GT(m.slo.serving.cache_hits, 0u);
  EXPECT_GT(m.slo.serving.coalesced, 0u);
  EXPECT_LE(m.slo.serving.fanned_out, m.slo.serving.coalesced);
  EXPECT_GT(m.slo.timed_out, 0u);  // Some leaders really died/timed out.
  // Zero protocol residue and a clean audit despite the fan-out paths.
  EXPECT_GT(m.lifecycle_checks, 0u);
  EXPECT_EQ(m.lifecycle_violations, 0u);
  EXPECT_EQ(m.leaked_entries, 0u);
  EXPECT_GT(m.faults_injected, 0u);
}

// Same seed + same fault plan must be bit-identical at any --jobs count:
// the injector and auditor live entirely inside each run's own stack.
TEST(LifecycleSoakTest, FaultedRunsAreBitIdenticalAcrossJobs) {
  ExperimentConfig config;
  config.network.node_count = 120;
  config.network.field = Rect::Field(90, 90);
  config.network.loss_rate = 0.1;
  config.k = 8;
  config.runs = 3;
  config.duration = 15.0;
  config.query_interval_mean = 0.4;
  config.audit_lifecycle = true;
  const auto plan = FaultPlan::Parse(
      "kill@t=2,count=5;churn@t=4,up=10,down=4;ackloss@t=6,dur=3,prob=0.6");
  ASSERT_TRUE(plan.has_value());
  config.faults = *plan;

  config.jobs = 1;
  const std::vector<RunMetrics> serial = RunExperimentRuns(config);
  config.jobs = 3;
  const std::vector<RunMetrics> parallel = RunExperimentRuns(config);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const RunMetrics& a = serial[i];
    const RunMetrics& b = parallel[i];
    EXPECT_EQ(a.queries, b.queries) << i;
    EXPECT_EQ(a.timeouts, b.timeouts) << i;
    EXPECT_EQ(a.avg_latency, b.avg_latency) << i;
    EXPECT_EQ(a.p95_latency, b.p95_latency) << i;
    EXPECT_EQ(a.avg_pre_accuracy, b.avg_pre_accuracy) << i;
    EXPECT_EQ(a.avg_post_accuracy, b.avg_post_accuracy) << i;
    EXPECT_EQ(a.energy_joules, b.energy_joules) << i;
    EXPECT_EQ(a.beacon_energy_joules, b.beacon_energy_joules) << i;
    EXPECT_EQ(a.faults_injected, b.faults_injected) << i;
    EXPECT_EQ(a.lifecycle_checks, b.lifecycle_checks) << i;
    EXPECT_EQ(a.lifecycle_violations, b.lifecycle_violations) << i;
    EXPECT_EQ(a.leaked_entries, b.leaked_entries) << i;
  }
}

}  // namespace
}  // namespace diknn
