#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace diknn {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> observed;
  sim.ScheduleAt(1.5, [&] { observed.push_back(sim.Now()); });
  sim.ScheduleAt(0.5, [&] { observed.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(observed, (std::vector<double>{0.5, 1.5}));
  EXPECT_DOUBLE_EQ(sim.Now(), 1.5);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1;
  sim.ScheduleAt(2.0, [&] {
    sim.ScheduleAfter(3.0, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(i, [&] { ++fired; });
  }
  const uint64_t executed = sim.RunUntil(4.5);
  EXPECT_EQ(executed, 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_DOUBLE_EQ(sim.Now(), 4.5);  // Advances even without an event.
  sim.RunUntil(20.0);
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, RunUntilIncludesBoundary) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(3.0, [&] { fired = true; });
  sim.RunUntil(3.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) sim.ScheduleAfter(1.0, recurse);
  };
  sim.ScheduleAt(0.0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 4.0);
}

TEST(SimulatorTest, CancelPending) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.IsPending(id));
  sim.Cancel(id);
  EXPECT_FALSE(sim.IsPending(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, PeriodicFiresUntilFalse) {
  Simulator sim;
  int count = 0;
  std::vector<double> times;
  sim.SchedulePeriodic(0.5, 1.0, [&] {
    times.push_back(sim.Now());
    return ++count < 3;
  });
  sim.RunUntil(10.0);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(times, (std::vector<double>{0.5, 1.5, 2.5}));
}

TEST(SimulatorTest, PeriodicForever) {
  Simulator sim;
  int count = 0;
  sim.SchedulePeriodic(0.0, 0.1, [&] {
    ++count;
    return true;
  });
  sim.RunUntil(1.0);
  EXPECT_EQ(count, 11);  // t = 0.0, 0.1, ..., 1.0.
}

TEST(SimulatorTest, RunWithEventCap) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 100; ++i) sim.ScheduleAt(i, [&] { ++fired; });
  const uint64_t executed = sim.Run(10);
  EXPECT_EQ(executed, 10u);
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.pending_events(), 90u);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAt(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

}  // namespace
}  // namespace diknn
