#include "knn/itinerary.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace diknn {
namespace {

ItineraryParams Params(double radius, int sector, int sectors,
                       double width = 0.0, int extra = 0) {
  ItineraryParams p;
  p.q = {50, 50};
  p.radius = radius;
  p.sector = sector;
  p.num_sectors = sectors;
  p.width = width > 0 ? width : DefaultItineraryWidth(20.0);
  p.extra_rings = extra;
  return p;
}

TEST(ItineraryTest, DefaultWidthIsSqrt3Over2R) {
  EXPECT_NEAR(DefaultItineraryWidth(20.0), std::sqrt(3.0) * 10.0, 1e-12);
}

TEST(ItineraryTest, InitLengthMatchesFormula) {
  // linit = min(w / (2 sin(pi/S)), R).
  const double w = DefaultItineraryWidth(20.0);
  Itinerary it(Params(60.0, 0, 8));
  EXPECT_NEAR(it.init_length(), w / (2.0 * std::sin(kPi / 8)), 1e-9);
  // Small boundary: init capped at R.
  Itinerary small(Params(10.0, 0, 8));
  EXPECT_NEAR(small.init_length(), 10.0, 1e-9);
}

TEST(ItineraryTest, StartsAtQueryPoint) {
  Itinerary it(Params(50.0, 3, 8));
  EXPECT_NEAR(Distance(it.PointAt(0.0), Point(50, 50)), 0.0, 1e-9);
}

TEST(ItineraryTest, InitSegmentRunsAlongBisector) {
  Itinerary it(Params(60.0, 0, 8));
  const double bisector = kPi / 8;  // Sector 0 of 8.
  const Point mid = it.PointAt(it.init_length() / 2);
  EXPECT_NEAR(AngleOf({50, 50}, mid), bisector, 1e-9);
  EXPECT_EQ(it.KindAt(it.init_length() / 2), Itinerary::SegmentKind::kInit);
  EXPECT_EQ(it.RingAt(it.init_length() / 2), 0);
}

TEST(ItineraryTest, CenterIsInitEnd) {
  Itinerary it(Params(60.0, 2, 8));
  EXPECT_NEAR(Distance(it.center(), it.PointAt(it.init_length())), 0.0,
              1e-9);
  EXPECT_NEAR(Distance(it.center(), Point(50, 50)), it.init_length(), 1e-9);
}

TEST(ItineraryTest, PointAtClampsOutOfRange) {
  Itinerary it(Params(60.0, 0, 8));
  EXPECT_EQ(it.PointAt(-5.0), it.PointAt(0.0));
  EXPECT_EQ(it.PointAt(it.TotalLength() + 100), it.PointAt(it.TotalLength()));
}

TEST(ItineraryTest, PeriSegmentsAreArcsAroundCenter) {
  Itinerary it(Params(80.0, 0, 8));
  ASSERT_GE(it.num_rings(), 2);
  const double w = DefaultItineraryWidth(20.0);
  // Sample points on ring 1's peri segment: constant distance w from q'.
  const double ring1_end = it.LengthThroughRing(1);
  for (double s = ring1_end - 1.0; s > ring1_end - 8.0; s -= 1.0) {
    if (it.KindAt(s) != Itinerary::SegmentKind::kPeri) continue;
    EXPECT_NEAR(Distance(it.PointAt(s), it.center()), w, 1e-9);
    EXPECT_EQ(it.RingAt(s), 1);
  }
}

TEST(ItineraryTest, AdjSegmentsHaveLengthW) {
  Itinerary it(Params(80.0, 0, 8));
  ASSERT_GE(it.num_rings(), 2);
  // Between ring 1's end and ring 2's arc there is one adj segment of
  // length w: the radial gap between consecutive rings.
  const double w = it.params().width;
  const Point end_ring1 = it.PointAt(it.LengthThroughRing(1));
  double s = it.LengthThroughRing(1) + w / 2;
  EXPECT_EQ(it.KindAt(s), Itinerary::SegmentKind::kAdj);
  const Point mid_adj = it.PointAt(s);
  EXPECT_NEAR(Distance(end_ring1, mid_adj), w / 2, 1e-9);
}

TEST(ItineraryTest, TotalLengthMatchesSegmentSum) {
  // linit + sum over rings of (adj w + arc 2*pi*j*w/S).
  const double w = DefaultItineraryWidth(20.0);
  const int S = 8;
  Itinerary it(Params(80.0, 0, S));
  double expected = it.init_length();
  for (int j = 1; j <= it.num_rings(); ++j) {
    expected += w + kTwoPi * (j * w) / S;
  }
  EXPECT_NEAR(it.TotalLength(), expected, 1e-9);
}

TEST(ItineraryTest, CoverageReachesBoundary) {
  // linit + rings*w + w/2 >= R must hold (full coverage).
  for (double radius : {25.0, 40.0, 55.0, 80.0, 120.0}) {
    Itinerary it(Params(radius, 0, 8));
    EXPECT_GE(it.CoverageRadius() + it.params().width / 2, radius - 1e-9)
        << "R=" << radius;
  }
}

TEST(ItineraryTest, ExtraRingsExtendCoverage) {
  Itinerary base(Params(60.0, 0, 8));
  Itinerary extended(Params(60.0, 0, 8, 0.0, 2));
  EXPECT_EQ(extended.num_rings(), base.num_rings() + 2);
  EXPECT_NEAR(extended.CoverageRadius(),
              base.CoverageRadius() + 2 * base.params().width, 1e-9);
  EXPECT_GT(extended.TotalLength(), base.TotalLength());
}

TEST(ItineraryTest, StaysWithinSector) {
  // Every sampled point lies within the sector's angular range (from q,
  // allowing w slack near the apex where the init line hugs the borders).
  const int S = 8;
  for (int sector = 0; sector < S; ++sector) {
    Itinerary it(Params(70.0, sector, S));
    const SectorPartition part({50, 50}, S);
    for (double s = 1.0; s < it.TotalLength(); s += 2.0) {
      const Point p = it.PointAt(s);
      const double d = Distance(p, Point{50, 50});
      if (d < it.params().width) continue;  // Apex region.
      const double angle = AngleOf({50, 50}, p);
      const double off =
          std::abs(AngleDifference(angle, part.BisectorAngle(sector)));
      // Within half the sector angle plus slack for arc endpoints.
      EXPECT_LE(off, kPi / S + 0.45) << "sector " << sector << " s=" << s;
    }
  }
}

TEST(ItineraryTest, AdjacentSectorsTraverseInOppositeDirections) {
  // The serpentine inversion (Fig. 6): sector 0 starts ring 1 at its lower
  // border, sector 1 at its upper border, so their ring-1 start points
  // are near each other (the rendezvous region).
  Itinerary even(Params(80.0, 0, 8));
  Itinerary odd(Params(80.0, 1, 8));
  ASSERT_GE(even.num_rings(), 1);
  const double w = even.params().width;
  // Sector 0 sweeps counter-clockwise and ends ring 1 at its upper
  // border; inverted sector 1 sweeps clockwise and ends ring 1 at its
  // lower border — the same shared border. The two ring-1 endpoints are
  // exactly w apart ("the distance between sub-itineraries in adjacent
  // sectors is w"), forming the face-to-face rendezvous of Fig. 6.
  const Point even_end = even.PointAt(even.LengthThroughRing(1));
  const Point odd_end = odd.PointAt(odd.LengthThroughRing(1));
  EXPECT_NEAR(Distance(even_end, odd_end), w, 1e-9);
}

TEST(ItineraryTest, SingleSectorDegeneratesGracefully) {
  Itinerary it(Params(50.0, 0, 1));
  EXPECT_NEAR(it.init_length(), 50.0, 1e-9);  // sin(pi) = 0 -> full radius.
  EXPECT_GE(it.TotalLength(), 50.0);
}

TEST(ItineraryTest, ManySectorsDegenerateTowardStraightLine) {
  // "The shape of a sub-itinerary degenerates into a straight line if S
  // is large enough."
  Itinerary it(Params(40.0, 0, 64));
  EXPECT_EQ(it.num_rings(), 0);
  EXPECT_NEAR(it.TotalLength(), 40.0, 1e-9);
}

TEST(ItineraryTest, LengthThroughRingIsMonotone) {
  Itinerary it(Params(100.0, 0, 8));
  double prev = it.init_length();
  for (int j = 1; j <= it.num_rings(); ++j) {
    const double len = it.LengthThroughRing(j);
    EXPECT_GT(len, prev);
    prev = len;
  }
  EXPECT_NEAR(prev, it.TotalLength(), 1e-9);
}

// Property sweep: arc-length parameterization is 1-Lipschitz — moving ds
// along the path moves at most ds in space.
class ItineraryPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, int, int>> {};

TEST_P(ItineraryPropertyTest, ArcLengthParameterizationIsMetric) {
  const auto [radius, sector, sectors] = GetParam();
  Itinerary it(Params(radius, sector, sectors));
  const double step = 0.5;
  Point prev = it.PointAt(0.0);
  for (double s = step; s <= it.TotalLength(); s += step) {
    const Point cur = it.PointAt(s);
    EXPECT_LE(Distance(prev, cur), step + 1e-9) << "s=" << s;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ItineraryPropertyTest,
    ::testing::Combine(::testing::Values(15.0, 35.0, 60.0, 100.0),
                       ::testing::Values(0, 1, 5),
                       ::testing::Values(4, 8, 12)));

// The paper's central coverage claim: with w = sqrt(3)/2 * r, every point
// of the KNN boundary disk lies within w of the union of sub-itineraries.
// Q-nodes sit on the path at most ~0.8 r apart, so the farthest any disk
// point can be from a Q-node is sqrt(w^2 + (0.4 r)^2) < r — i.e., every
// node hears a probe. Checked by sampling random points in the disk
// against discretized paths of all sectors.
class ItineraryCoverageTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ItineraryCoverageTest, FullDiskCoverage) {
  const auto [radius, sectors] = GetParam();
  const double w = DefaultItineraryWidth(20.0);
  const Point q{50, 50};

  // Discretize every sector's path once.
  std::vector<Point> samples;
  for (int sector = 0; sector < sectors; ++sector) {
    ItineraryParams p;
    p.q = q;
    p.radius = radius;
    p.sector = sector;
    p.num_sectors = sectors;
    p.width = w;
    Itinerary it(p);
    for (double s = 0.0; s <= it.TotalLength(); s += 0.5) {
      samples.push_back(it.PointAt(s));
    }
    samples.push_back(it.PointAt(it.TotalLength()));
  }

  Rng rng(31 + sectors);
  for (int trial = 0; trial < 400; ++trial) {
    const Point p = rng.PointInDisk(q, radius);
    double best = 1e18;
    for (const Point& s : samples) {
      best = std::min(best, Distance(p, s));
      if (best <= w + 0.5) break;
    }
    EXPECT_LE(best, w + 0.5)
        << "uncovered point " << p << " (R=" << radius
        << ", S=" << sectors << ")";
    // And the resulting physical guarantee: a Q-node within radio range.
    const double qnode_gap = 0.5 * 0.8 * 20.0;  // Half the Q-node step.
    EXPECT_LE(std::hypot(best, qnode_gap), 20.0 + 0.5)
        << "point beyond probe reach " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CoverageSweep, ItineraryCoverageTest,
    ::testing::Combine(::testing::Values(25.0, 45.0, 80.0),
                       ::testing::Values(4, 8, 16)));

}  // namespace
}  // namespace diknn
