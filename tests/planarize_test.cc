#include "routing/planarize.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace diknn {
namespace {

NeighborEntry N(NodeId id, double x, double y) {
  NeighborEntry e;
  e.id = id;
  e.position = {x, y};
  return e;
}

TEST(GabrielTest, KeepsEdgeWithoutWitness) {
  const auto planar = GabrielNeighbors({0, 0}, {N(1, 10, 0)});
  ASSERT_EQ(planar.size(), 1u);
  EXPECT_EQ(planar[0].id, 1);
}

TEST(GabrielTest, RemovesWitnessedEdge) {
  // Witness at the midpoint of (self, 1) kills that edge.
  const auto planar =
      GabrielNeighbors({0, 0}, {N(1, 10, 0), N(2, 5, 0.1)});
  ASSERT_EQ(planar.size(), 1u);
  EXPECT_EQ(planar[0].id, 2);
}

TEST(GabrielTest, WitnessOutsideDiametralCircleKeepsEdge) {
  const auto planar =
      GabrielNeighbors({0, 0}, {N(1, 10, 0), N(2, 5, 6)});  // 6 > r=5.
  EXPECT_EQ(planar.size(), 2u);
}

TEST(GabrielTest, SquareCornersAreBoundaryNotWitnesses) {
  // On an exact unit square the adjacent corners lie exactly ON the
  // diametral circle of the diagonal, so the strict GG test keeps it.
  const auto exact = GabrielNeighbors(
      {0, 0}, {N(1, 1, 0), N(2, 0, 1), N(3, 1, 1)});
  EXPECT_EQ(exact.size(), 3u);
  // Nudging a corner inward makes it a proper witness: diagonal dropped.
  const auto nudged = GabrielNeighbors(
      {0, 0}, {N(1, 0.99, 0), N(2, 0, 1), N(3, 1, 1)});
  EXPECT_EQ(nudged.size(), 2u);
  for (const auto& e : nudged) EXPECT_NE(e.id, 3);
}

TEST(RngGraphTest, SubgraphOfGabriel) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const Point self = rng.PointInRect({{0, 0}, {50, 50}});
    std::vector<NeighborEntry> neighbors;
    const int n = rng.UniformInt(2, 15);
    for (int i = 0; i < n; ++i) {
      NeighborEntry e;
      e.id = i;
      e.position = rng.PointInRect({{0, 0}, {50, 50}});
      neighbors.push_back(e);
    }
    const auto gg = GabrielNeighbors(self, neighbors);
    const auto rngg = RngNeighbors(self, neighbors);
    // Every RNG edge must also be a GG edge.
    for (const auto& r : rngg) {
      bool found = false;
      for (const auto& g : gg) {
        if (g.id == r.id) found = true;
      }
      EXPECT_TRUE(found) << "RNG edge " << r.id << " missing from GG";
    }
    EXPECT_LE(rngg.size(), gg.size());
  }
}

TEST(GabrielTest, PlanarEdgesDoNotCross) {
  // Global planarity check on a random unit-disk graph: compute each
  // node's Gabriel edges and verify no two (as segments) properly cross.
  Rng rng(12);
  const int n = 40;
  std::vector<Point> pos;
  for (int i = 0; i < n; ++i) {
    pos.push_back(rng.PointInRect({{0, 0}, {60, 60}}));
  }
  const double range = 20.0;
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) {
    std::vector<NeighborEntry> nbrs;
    for (int v = 0; v < n; ++v) {
      if (u == v || Distance(pos[u], pos[v]) > range) continue;
      NeighborEntry e;
      e.id = v;
      e.position = pos[v];
      nbrs.push_back(e);
    }
    for (const auto& e : GabrielNeighbors(pos[u], nbrs)) {
      if (u < e.id) edges.push_back({u, e.id});
    }
  }
  ASSERT_GT(edges.size(), 10u);
  int crossings = 0;
  for (size_t i = 0; i < edges.size(); ++i) {
    for (size_t j = i + 1; j < edges.size(); ++j) {
      auto [a, b] = edges[i];
      auto [c, d] = edges[j];
      if (a == c || a == d || b == c || b == d) continue;  // Share a node.
      if (SegmentsIntersect(pos[a], pos[b], pos[c], pos[d])) ++crossings;
    }
  }
  EXPECT_EQ(crossings, 0);
}

TEST(GabrielTest, EmptyNeighborsYieldsEmpty) {
  EXPECT_TRUE(GabrielNeighbors({0, 0}, {}).empty());
  EXPECT_TRUE(RngNeighbors({0, 0}, {}).empty());
}

}  // namespace
}  // namespace diknn
