#include "net/sensor_field.h"

#include <cmath>

#include <gtest/gtest.h>

namespace diknn {
namespace {

TEST(SensorFieldTest, BaselineOnly) {
  SensorField field(7.5, {});
  EXPECT_DOUBLE_EQ(field.Value({0, 0}, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(field.Value({100, -3}, 42.0), 7.5);
}

TEST(SensorFieldTest, PeakAtSourceCenter) {
  FieldSource source;
  source.start = {50, 50};
  source.amplitude = 10.0;
  source.sigma = 15.0;
  SensorField field(1.0, {source});
  EXPECT_DOUBLE_EQ(field.Value({50, 50}, 0.0), 11.0);
  // One sigma out: amplitude * exp(-1/2).
  EXPECT_NEAR(field.Value({65, 50}, 0.0),
              1.0 + 10.0 * std::exp(-0.5), 1e-9);
  // Far away: baseline.
  EXPECT_NEAR(field.Value({500, 500}, 0.0), 1.0, 1e-9);
}

TEST(SensorFieldTest, ValueDecaysMonotonicallyFromCenter) {
  FieldSource source;
  source.start = {0, 0};
  source.amplitude = 5.0;
  source.sigma = 10.0;
  SensorField field(0.0, {source});
  double prev = field.Value({0, 0}, 0.0);
  for (double d = 2.0; d <= 60.0; d += 2.0) {
    const double v = field.Value({d, 0}, 0.0);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(SensorFieldTest, SourcesDrift) {
  FieldSource source;
  source.start = {0, 0};
  source.velocity = {2.0, 1.0};
  source.amplitude = 5.0;
  SensorField field(0.0, {source});
  EXPECT_EQ(field.SourcePosition(0, 10.0), Point(20, 10));
  // The peak follows the source.
  EXPECT_GT(field.Value({20, 10}, 10.0), field.Value({0, 0}, 10.0));
}

TEST(SensorFieldTest, SourcesSuperpose) {
  FieldSource a, b;
  a.start = {0, 0};
  a.amplitude = 3.0;
  a.sigma = 10.0;
  b.start = {0, 0};
  b.amplitude = 4.0;
  b.sigma = 10.0;
  SensorField field(0.0, {a, b});
  EXPECT_DOUBLE_EQ(field.Value({0, 0}, 0.0), 7.0);
}

TEST(SensorFieldTest, SampleNoiseHasRequestedSpread) {
  SensorField field(10.0, {}, /*noise_stddev=*/2.0, /*noise_seed=*/3);
  const int n = 20000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = field.Sample({0, 0}, 0.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double stddev = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(stddev, 2.0, 0.1);
}

TEST(SensorFieldTest, NoiselessSampleEqualsValue) {
  SensorField field(3.0, {});
  EXPECT_DOUBLE_EQ(field.Sample({1, 2}, 0.0), field.Value({1, 2}, 0.0));
}

TEST(SensorFieldTest, RandomFactoryRespectsBounds) {
  const Rect bounds{{0, 0}, {100, 100}};
  SensorField field =
      SensorField::Random(bounds, 5, 10.0, 15.0, 2.0, /*seed=*/9);
  EXPECT_EQ(field.num_sources(), 5u);
  for (size_t i = 0; i < field.num_sources(); ++i) {
    EXPECT_TRUE(bounds.Contains(field.SourcePosition(i, 0.0)));
  }
  // Deterministic for the seed.
  SensorField again =
      SensorField::Random(bounds, 5, 10.0, 15.0, 2.0, /*seed=*/9);
  EXPECT_EQ(field.Value({30, 30}, 5.0), again.Value({30, 30}, 5.0));
}

}  // namespace
}  // namespace diknn
