// Two-tier event engine for the discrete-event simulator: a hierarchical
// timer wheel for near-future events plus a min-heap overflow tier for
// far-future ones, over a slab pool of generation-tagged slots.
//
// Why not a binary heap: the simulator's load is dominated by short-lived
// timers on the beacon/MAC timescale (CSMA backoffs, ACK timeouts, frame
// completions, beacon rounds) that are pushed, fired or cancelled within
// milliseconds. A priority queue pays O(log n) per operation on the whole
// pending set and, with tombstone cancellation, keeps dead entries (and
// their captured state) resident until they surface. Here:
//
//   * Push lands in a calendar bucket (O(1)) when the event fires within
//     the wheel horizon — the common case — and in the overflow heap
//     otherwise (deadlines, query timeouts, fault plans).
//   * Cancel is O(1): the event's pool slot is invalidated (generation
//     bump) and its callback destroyed immediately; only a 24-byte POD
//     reference stays behind in a bucket until the cursor passes it.
//   * Pop drains one bucket at a time, sorting each bucket's handful of
//     entries by (time, sequence) — which reproduces the binary heap's
//     global FIFO-within-timestamp order exactly (buckets partition the
//     time axis monotonically), so every run is bit-identical to the
//     reference heap engine.
//   * Callbacks live in SmallFn inline storage inside the pool slot; no
//     per-event allocation for anything that fits 64 bytes of captures.
//
// The pre-wheel design — `std::priority_queue` of std::function entries
// with an unordered_set live-set — is retained behind
// EngineKind::kLegacyHeap as the determinism anchor and benchmark
// baseline (bench_engine, engine_determinism_test).

#ifndef DIKNN_SIM_EVENT_QUEUE_H_
#define DIKNN_SIM_EVENT_QUEUE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/small_fn.h"

namespace diknn {

/// Simulation time in seconds since the start of the run.
using SimTime = double;

/// Opaque handle for a scheduled event, used for cancellation. Id 0 is
/// never issued and acts as a null handle. Wheel-engine ids encode
/// (generation << 32) | (pool slot + 1), so a handle kept past its
/// event's firing can never cancel an unrelated event that reused the
/// slot.
using EventId = uint64_t;

/// Scheduler implementation selector.
enum class EngineKind {
  kWheel,       ///< Timer wheel + overflow heap + slab pool (default).
  kLegacyHeap,  ///< Pre-wheel binary heap with tombstone cancellation.
};

/// Engine observability counters (all monotone except the sizes).
struct EngineStats {
  uint64_t events_pushed = 0;
  uint64_t events_fired = 0;
  uint64_t events_cancelled = 0;
  /// Pushes that landed in a wheel bucket (incl. the current bucket).
  uint64_t wheel_scheduled = 0;
  /// Pushes beyond the wheel horizon, parked in the overflow heap.
  uint64_t overflow_scheduled = 0;
  /// Overflow entries migrated into a bucket as the cursor reached them.
  uint64_t overflow_migrated = 0;
  /// Callbacks stored inline in the pool slot vs heap-allocated.
  uint64_t inline_callbacks = 0;
  uint64_t heap_callbacks = 0;
  /// High-water marks: live events, resident entry references (live +
  /// not-yet-reclaimed cancelled), and slab pool slots ever allocated.
  uint64_t peak_live = 0;
  uint64_t peak_resident = 0;
  uint64_t peak_pool_slots = 0;
};

/// Min-ordered event queue: events fire in (time, insertion sequence)
/// order, so events at the same timestamp fire FIFO, which keeps protocol
/// handshakes deterministic. The ordering contract is identical across
/// both engine kinds (see docs/ENGINE.md).
class EventQueue {
 public:
  explicit EventQueue(EngineKind engine = EngineKind::kWheel)
      : engine_(engine) {}

  // Non-copyable: callbacks capture simulator state.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Wheel geometry: 1024 buckets of 1 ms — a ~1 s horizon sized to the
  /// beacon/MAC timescale (backoffs, ACK timeouts, frame completions and
  /// beacon rounds all land in the wheel; multi-second deadlines go to
  /// the overflow heap).
  static constexpr int kWheelBits = 10;
  static constexpr int kWheelSlots = 1 << kWheelBits;
  static constexpr double kSlotWidthS = 1e-3;

  /// Schedules `fn` to fire at absolute time `t`. Returns a handle that
  /// can be passed to Cancel(). Accepts any `void()` callable; captures
  /// up to SmallFn::kInlineBytes are stored without allocation.
  template <typename F>
  EventId Push(SimTime t, F&& fn) {
    if (engine_ == EngineKind::kLegacyHeap) {
      return PushLegacy(t, std::function<void()>(std::forward<F>(fn)));
    }
    return PushWheel(t, SmallFn(std::forward<F>(fn)));
  }

  /// Cancels a pending event in O(1): the callback is destroyed
  /// immediately and the slot is returned to the pool. Cancelling an
  /// already-fired, already-cancelled, or unknown id is a harmless no-op.
  void Cancel(EventId id);

  /// True while `id` is scheduled and neither fired nor cancelled.
  bool IsPending(EventId id) const;

  /// True when no live (non-cancelled) events remain.
  bool Empty() const { return live_count_ == 0; }

  /// Number of live events. (See ResidentEntries() for what is actually
  /// resident in memory — the historical Size() hid cancelled entries
  /// that the legacy heap kept resident until they surfaced.)
  size_t Size() const { return live_count_; }

  /// Entry references currently resident in the engine's containers:
  /// live events plus cancelled entries whose reference has not yet been
  /// reclaimed. In the wheel engine a cancelled event's callback and
  /// pool slot are reclaimed at Cancel() time and only a POD reference
  /// lingers (bounded by the churn inside one wheel horizon); in the
  /// legacy engine the whole entry — callback included — stays resident.
  size_t ResidentEntries() const { return resident_; }

  /// Slab pool slots ever allocated (wheel engine; 0 for legacy).
  size_t PooledSlots() const { return pool_.size(); }

  EngineKind engine() const { return engine_; }

  /// Counters; `peak_pool_slots` mirrors PooledSlots().
  const EngineStats& stats() const { return stats_; }

  /// Timestamp of the earliest live event. Requires !Empty().
  SimTime NextTime();

  /// Removes and returns the earliest live event's callback, reclaiming
  /// any cancelled entries it advances past. Requires !Empty().
  SmallFn Pop(SimTime* time_out);

 private:
  static constexpr uint32_t kNilIndex = 0xffffffffu;
  static constexpr int64_t kNoBucket = -1;

  /// 24-byte POD reference to a pooled event, stored in wheel buckets,
  /// the active run, and the overflow heap.
  struct Ref {
    SimTime time;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };

  /// Slab pool slot. `gen` is bumped every time the slot is freed, so
  /// stale EventIds can never touch a successor event.
  struct PoolSlot {
    SmallFn fn;
    uint32_t gen = 1;
    uint32_t next_free = kNilIndex;
    bool live = false;
  };

  // Legacy tier: the pre-wheel design, verbatim except that the heap is
  // an explicit vector + std::push_heap/pop_heap (priority_queue::top()
  // is const, which forced a const_cast to move the callback out).
  struct LegacyEntry {
    SimTime time;
    uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };

  static int64_t BucketOf(SimTime t) {
    return static_cast<int64_t>(t * (1.0 / kSlotWidthS));
  }

  EventId PushLegacy(SimTime t, std::function<void()> fn);
  EventId PushWheel(SimTime t, SmallFn fn);

  uint32_t AllocSlot(SmallFn fn);
  void FreeSlot(uint32_t index);
  bool IsLiveRef(const Ref& ref) const {
    return pool_[ref.slot].live && pool_[ref.slot].gen == ref.gen;
  }

  // Makes run_[run_head_] the earliest live event, advancing the bucket
  // cursor and migrating overflow entries as needed. Requires !Empty().
  void EnsureRunReady();
  // Smallest occupied wheel bucket in (cur_bucket_, cur_bucket_ +
  // kWheelSlots), or kNoBucket.
  int64_t NextOccupiedWheelBucket() const;
  void SetOccupied(int64_t bucket);
  void ClearOccupied(int64_t bucket);

  void LegacySkipCancelled();

  EngineKind engine_;

  // --- wheel engine state ---
  std::vector<PoolSlot> pool_;
  uint32_t free_head_ = kNilIndex;
  std::array<std::vector<Ref>, kWheelSlots> wheel_;
  std::array<uint64_t, kWheelSlots / 64> occupancy_ = {};
  int64_t cur_bucket_ = 0;          // Bucket the run was drawn from.
  std::vector<Ref> run_;            // Current bucket, (time, seq)-sorted.
  size_t run_head_ = 0;
  std::vector<Ref> overflow_;       // Min-heap beyond the wheel horizon.

  // --- legacy engine state ---
  std::vector<LegacyEntry> legacy_heap_;  // Min-heap via std::*_heap.
  std::unordered_set<EventId> legacy_live_;
  EventId legacy_next_id_ = 1;

  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  size_t resident_ = 0;
  EngineStats stats_;
};

}  // namespace diknn

#endif  // DIKNN_SIM_EVENT_QUEUE_H_
