// Priority queue of timestamped events for the discrete-event simulator.

#ifndef DIKNN_SIM_EVENT_QUEUE_H_
#define DIKNN_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace diknn {

/// Simulation time in seconds since the start of the run.
using SimTime = double;

/// Opaque handle for a scheduled event, used for cancellation. Id 0 is
/// never issued and acts as a null handle.
using EventId = uint64_t;

/// Min-heap of events ordered by (time, insertion sequence). Events at the
/// same timestamp fire in FIFO order, which keeps protocol handshakes
/// deterministic. Cancellation is O(1) via tombstones: cancelled entries
/// stay in the heap and are skipped when they surface.
class EventQueue {
 public:
  EventQueue() = default;

  // Non-copyable: callbacks capture simulator state.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to fire at absolute time `t`. Returns a handle that can
  /// be passed to Cancel().
  EventId Push(SimTime t, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired, already-
  /// cancelled, or unknown id is a harmless no-op.
  void Cancel(EventId id);

  /// True while `id` is scheduled and neither fired nor cancelled.
  bool IsPending(EventId id) const { return live_.contains(id); }

  /// True when no live (non-cancelled) events remain.
  bool Empty() const { return live_.empty(); }

  /// Number of live events.
  size_t Size() const { return live_.size(); }

  /// Timestamp of the earliest live event. Requires !Empty().
  SimTime NextTime();

  /// Removes and returns the earliest live event's callback, advancing past
  /// any tombstoned entries. Requires !Empty().
  std::function<void()> Pop(SimTime* time_out);

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventId id;
    std::function<void()> fn;

    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  // Drops entries whose id is no longer live from the heap top.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> live_;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace diknn

#endif  // DIKNN_SIM_EVENT_QUEUE_H_
