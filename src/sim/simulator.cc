#include "sim/simulator.h"

#include <cassert>
#include <memory>
#include <utility>

namespace diknn {

EventId Simulator::SchedulePeriodic(SimTime phase, SimTime period,
                                    std::function<bool()> fn) {
  assert(period > 0.0);
  // The recurring closure owns the callback via shared_ptr so each firing
  // can reschedule itself.
  auto shared_fn = std::make_shared<std::function<bool()>>(std::move(fn));
  // Self-rescheduling callable: lambdas cannot capture themselves, so a
  // small struct carries the pieces needed to enqueue the next firing.
  // At 32 bytes it rides the event pool's inline storage.
  struct Recur {
    Simulator* sim;
    std::shared_ptr<std::function<bool()>> fn;
    SimTime period;
    void operator()() const {
      if ((*fn)()) {
        Recur next{sim, fn, period};
        sim->ScheduleAfter(period, next);
      }
    }
  };
  return ScheduleAfter(phase, Recur{this, shared_fn, period});
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t executed = 0;
  while (!queue_.Empty() && executed < max_events) {
    SimTime t;
    SmallFn fn = queue_.Pop(&t);
    now_ = t;
    fn();
    ++executed;
  }
  events_executed_ += executed;
  return executed;
}

uint64_t Simulator::RunBefore(SimTime t) {
  uint64_t executed = 0;
  while (!queue_.Empty() && queue_.NextTime() < t) {
    SimTime et;
    SmallFn fn = queue_.Pop(&et);
    now_ = et;
    fn();
    ++executed;
  }
  if (t > now_) now_ = t;
  events_executed_ += executed;
  return executed;
}

uint64_t Simulator::RunUntil(SimTime t) {
  uint64_t executed = 0;
  while (!queue_.Empty() && queue_.NextTime() <= t) {
    SimTime et;
    SmallFn fn = queue_.Pop(&et);
    now_ = et;
    fn();
    ++executed;
  }
  if (t > now_) now_ = t;
  events_executed_ += executed;
  return executed;
}

}  // namespace diknn
