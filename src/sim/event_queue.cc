#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace diknn {

EventId EventQueue::Push(SimTime t, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

void EventQueue::Cancel(EventId id) { live_.erase(id); }

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && !live_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

std::function<void()> EventQueue::Pop(SimTime* time_out) {
  SkipCancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; the callback must be moved out, so we
  // cast away constness on the owned entry before popping. This is safe:
  // the entry is removed immediately after and never re-compared.
  Entry& top = const_cast<Entry&>(heap_.top());
  std::function<void()> fn = std::move(top.fn);
  if (time_out != nullptr) *time_out = top.time;
  live_.erase(top.id);
  heap_.pop();
  return fn;
}

}  // namespace diknn
