#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

#include "core/alloc_probe.h"

namespace diknn {

namespace {

// Strict (time, seq) order shared by the run sort and both heaps.
constexpr auto kRefBefore = [](const auto& a, const auto& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
};
// Inverted comparator: std::push_heap/pop_heap build a max-heap, so
// feeding them "greater" yields the min-heap both tiers want.
constexpr auto kRefAfter = [](const auto& a, const auto& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
};

}  // namespace

EventId EventQueue::PushLegacy(SimTime t, std::function<void()> fn) {
  // Scheduler storage (heap array, id set) is engine capacity, not the
  // scheduling subsystem's transient allocation. The caller's closure was
  // already built (and attributed) before this call.
  AllocScopePause capacity;
  const EventId id = legacy_next_id_++;
  legacy_heap_.push_back(LegacyEntry{t, next_seq_++, id, std::move(fn)});
  std::push_heap(legacy_heap_.begin(), legacy_heap_.end(), kRefAfter);
  legacy_live_.insert(id);
  ++live_count_;
  ++resident_;
  ++stats_.events_pushed;
  ++stats_.heap_callbacks;
  stats_.peak_live = std::max<uint64_t>(stats_.peak_live, live_count_);
  stats_.peak_resident = std::max<uint64_t>(stats_.peak_resident, resident_);
  return id;
}

EventId EventQueue::PushWheel(SimTime t, SmallFn fn) {
  // Wheel buckets, the sorted run, the overflow heap and the slot pool
  // all grow to a high-water mark and are recycled thereafter: engine
  // capacity, excluded from the caller's transient allocation counters.
  // (An oversized callback's heap spill happened at the call site, before
  // this function, and is attributed there.)
  AllocScopePause capacity;
  const bool stored_inline = fn.is_inline();
  const uint32_t slot = AllocSlot(std::move(fn));
  const Ref ref{t, next_seq_++, slot, pool_[slot].gen};

  const int64_t b = BucketOf(t);
  if (b <= cur_bucket_) {
    // Lands in the bucket being drained (or, for a misuse-tolerant
    // past-time push, before it): merge into the sorted run. The new
    // event carries the highest sequence number, so among equal
    // timestamps it goes last — exactly the heap's FIFO order.
    auto it = std::upper_bound(run_.begin() + run_head_, run_.end(), ref,
                               kRefBefore);
    run_.insert(it, ref);
    ++stats_.wheel_scheduled;
  } else if (b < cur_bucket_ + kWheelSlots) {
    wheel_[b & (kWheelSlots - 1)].push_back(ref);
    SetOccupied(b);
    ++stats_.wheel_scheduled;
  } else {
    overflow_.push_back(ref);
    std::push_heap(overflow_.begin(), overflow_.end(), kRefAfter);
    ++stats_.overflow_scheduled;
  }

  ++live_count_;
  ++resident_;
  ++stats_.events_pushed;
  if (stored_inline) {
    ++stats_.inline_callbacks;
  } else {
    ++stats_.heap_callbacks;
  }
  stats_.peak_live = std::max<uint64_t>(stats_.peak_live, live_count_);
  stats_.peak_resident = std::max<uint64_t>(stats_.peak_resident, resident_);
  return (static_cast<EventId>(pool_[slot].gen) << 32) |
         static_cast<EventId>(slot + 1);
}

uint32_t EventQueue::AllocSlot(SmallFn fn) {
  uint32_t index;
  if (free_head_ != kNilIndex) {
    index = free_head_;
    free_head_ = pool_[index].next_free;
  } else {
    index = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
    stats_.peak_pool_slots = pool_.size();
  }
  PoolSlot& slot = pool_[index];
  slot.fn = std::move(fn);
  slot.live = true;
  return index;
}

void EventQueue::FreeSlot(uint32_t index) {
  PoolSlot& slot = pool_[index];
  slot.fn.Reset();
  slot.live = false;
  ++slot.gen;  // Invalidate every outstanding EventId for this slot.
  slot.next_free = free_head_;
  free_head_ = index;
}

void EventQueue::Cancel(EventId id) {
  if (engine_ == EngineKind::kLegacyHeap) {
    if (legacy_live_.erase(id) != 0) {
      --live_count_;
      ++stats_.events_cancelled;
    }
    return;
  }
  const uint64_t low = id & 0xffffffffu;
  if (low == 0) return;
  const uint32_t slot = static_cast<uint32_t>(low - 1);
  if (slot >= pool_.size()) return;
  if (!pool_[slot].live || pool_[slot].gen != (id >> 32)) return;
  FreeSlot(slot);
  --live_count_;
  ++stats_.events_cancelled;
}

bool EventQueue::IsPending(EventId id) const {
  if (engine_ == EngineKind::kLegacyHeap) return legacy_live_.contains(id);
  const uint64_t low = id & 0xffffffffu;
  if (low == 0) return false;
  const uint32_t slot = static_cast<uint32_t>(low - 1);
  if (slot >= pool_.size()) return false;
  return pool_[slot].live && pool_[slot].gen == (id >> 32);
}

void EventQueue::SetOccupied(int64_t bucket) {
  const size_t index = static_cast<size_t>(bucket & (kWheelSlots - 1));
  occupancy_[index >> 6] |= uint64_t{1} << (index & 63);
}

void EventQueue::ClearOccupied(int64_t bucket) {
  const size_t index = static_cast<size_t>(bucket & (kWheelSlots - 1));
  occupancy_[index >> 6] &= ~(uint64_t{1} << (index & 63));
}

int64_t EventQueue::NextOccupiedWheelBucket() const {
  // Scan the occupancy bitmap word-wise, starting just after the cursor
  // and wrapping. The cursor's own bit is always clear (cleared when its
  // bucket was drawn into the run), so any set bit found maps uniquely
  // to a bucket in (cur_bucket_, cur_bucket_ + kWheelSlots).
  int64_t off = 1;
  while (off < kWheelSlots) {
    const int64_t b = cur_bucket_ + off;
    const size_t index = static_cast<size_t>(b & (kWheelSlots - 1));
    const uint64_t bits = occupancy_[index >> 6] >> (index & 63);
    if (bits != 0) {
      const int step = std::countr_zero(bits);
      assert(off + step < kWheelSlots);
      return b + step;
    }
    off += 64 - static_cast<int64_t>(index & 63);
  }
  return kNoBucket;
}

void EventQueue::EnsureRunReady() {
  AllocScopePause capacity;  // Run-buffer growth during bucket draws.
  for (;;) {
    // Reclaim cancelled references at the head of the run.
    while (run_head_ < run_.size() && !IsLiveRef(run_[run_head_])) {
      ++run_head_;
      --resident_;
    }
    if (run_head_ < run_.size()) return;

    assert(live_count_ > 0 && "EnsureRunReady on an empty queue");
    run_.clear();
    run_head_ = 0;

    // Next bucket: nearest occupied wheel slot vs. the overflow front.
    int64_t next = NextOccupiedWheelBucket();
    if (!overflow_.empty()) {
      const int64_t overflow_bucket = BucketOf(overflow_.front().time);
      if (next == kNoBucket || overflow_bucket < next) {
        next = overflow_bucket;
      }
    }
    assert(next != kNoBucket && "live events but no occupied bucket");
    cur_bucket_ = next;

    // Draw the bucket: wheel slot contents (the swap recycles the run's
    // capacity into the emptied slot) plus any overflow entries whose
    // time has rolled into this bucket.
    std::vector<Ref>& bucket = wheel_[next & (kWheelSlots - 1)];
    run_.swap(bucket);
    ClearOccupied(next);
    while (!overflow_.empty() &&
           BucketOf(overflow_.front().time) == next) {
      std::pop_heap(overflow_.begin(), overflow_.end(), kRefAfter);
      run_.push_back(overflow_.back());
      overflow_.pop_back();
      ++stats_.overflow_migrated;
    }
    // Buckets partition the time axis monotonically, so sorting one
    // bucket by (time, seq) reproduces the global heap order exactly.
    std::sort(run_.begin(), run_.end(), kRefBefore);
  }
}

void EventQueue::LegacySkipCancelled() {
  while (!legacy_heap_.empty() &&
         !legacy_live_.contains(legacy_heap_.front().id)) {
    std::pop_heap(legacy_heap_.begin(), legacy_heap_.end(), kRefAfter);
    legacy_heap_.pop_back();
    --resident_;
  }
}

SimTime EventQueue::NextTime() {
  if (engine_ == EngineKind::kLegacyHeap) {
    LegacySkipCancelled();
    assert(!legacy_heap_.empty());
    return legacy_heap_.front().time;
  }
  assert(live_count_ > 0);
  EnsureRunReady();
  return run_[run_head_].time;
}

SmallFn EventQueue::Pop(SimTime* time_out) {
  if (engine_ == EngineKind::kLegacyHeap) {
    LegacySkipCancelled();
    assert(!legacy_heap_.empty());
    std::pop_heap(legacy_heap_.begin(), legacy_heap_.end(), kRefAfter);
    LegacyEntry entry = std::move(legacy_heap_.back());
    legacy_heap_.pop_back();
    --resident_;
    legacy_live_.erase(entry.id);
    --live_count_;
    ++stats_.events_fired;
    if (time_out != nullptr) *time_out = entry.time;
    return SmallFn(std::move(entry.fn));
  }

  assert(live_count_ > 0);
  EnsureRunReady();
  const Ref ref = run_[run_head_];
  ++run_head_;
  --resident_;
  PoolSlot& slot = pool_[ref.slot];
  SmallFn fn = std::move(slot.fn);
  FreeSlot(ref.slot);
  --live_count_;
  ++stats_.events_fired;
  if (time_out != nullptr) *time_out = ref.time;
  return fn;
}

}  // namespace diknn
