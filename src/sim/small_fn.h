// Move-only `void()` callable with inline storage, the event engine's
// replacement for `std::function<void()>`.
//
// Scheduler callbacks are almost always small lambdas (a `this` pointer
// plus a few scalars), yet `std::function` heap-allocates anything above
// its tiny SBO threshold and drags in RTTI + copyability machinery the
// event queue never uses. SmallFn stores any nothrow-movable callable of
// up to kInlineBytes directly in the event's pool slot and falls back to
// a single heap allocation only for oversized captures (e.g. the
// channel's batched-delivery closure, which owns a reception vector).

#ifndef DIKNN_SIM_SMALL_FN_H_
#define DIKNN_SIM_SMALL_FN_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace diknn {

class SmallFn {
 public:
  /// Inline capture budget. Sized so every MAC/beacon/protocol-timer
  /// lambda in the tree fits (the largest, a `this` + Packet capture, is
  /// just under 64 bytes).
  static constexpr size_t kInlineBytes = 64;
  static constexpr size_t kInlineAlign = 16;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (FitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOpsFor<Fn>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOpsFor<Fn>::kOps;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { Reset(); }

  /// Destroys the held callable (releasing captured resources now),
  /// leaving the SmallFn empty. Safe on an empty SmallFn.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty SmallFn");
    ops_->invoke(storage_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (no allocation).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  /// Whether callables of type F avoid the heap fallback.
  template <typename F>
  static constexpr bool FitsInline() {
    return sizeof(F) <= kInlineBytes && alignof(F) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst from src and destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename F>
  struct InlineOpsFor {
    static void Invoke(void* s) { (*std::launder(reinterpret_cast<F*>(s)))(); }
    static void Relocate(void* dst, void* src) noexcept {
      F* from = std::launder(reinterpret_cast<F*>(src));
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void Destroy(void* s) noexcept {
      std::launder(reinterpret_cast<F*>(s))->~F();
    }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, true};
  };

  template <typename F>
  struct HeapOpsFor {
    static F*& Ptr(void* s) { return *std::launder(reinterpret_cast<F**>(s)); }
    static void Invoke(void* s) { (*Ptr(s))(); }
    static void Relocate(void* dst, void* src) noexcept {
      ::new (dst) F*(Ptr(src));
    }
    static void Destroy(void* s) noexcept { delete Ptr(s); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, false};
  };

  alignas(kInlineAlign) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace diknn

#endif  // DIKNN_SIM_SMALL_FN_H_
