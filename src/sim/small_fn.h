// Move-only callable with inline storage, the event engine's replacement
// for `std::function`.
//
// Scheduler callbacks are almost always small lambdas (a `this` pointer
// plus a few scalars), yet `std::function` heap-allocates anything above
// its tiny SBO threshold and drags in RTTI + copyability machinery the
// event queue never uses. BasicSmallFn stores any nothrow-movable callable
// of up to kInlineBytes directly inline and falls back to a single heap
// allocation only for oversized captures. `SmallFn` is the event queue's
// `void()` instantiation; the MAC uses `BasicSmallFn<void(bool)>` for its
// send-completion callbacks so queuing a frame never allocates either.

#ifndef DIKNN_SIM_SMALL_FN_H_
#define DIKNN_SIM_SMALL_FN_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace diknn {

template <typename Sig>
class BasicSmallFn;  // Only the R(Args...) specialization exists.

template <typename R, typename... Args>
class BasicSmallFn<R(Args...)> {
 public:
  /// Inline capture budget. Sized so every MAC/beacon/protocol-timer
  /// lambda in the tree fits (the largest captures a `this` pointer, a
  /// pooled-frame handle, and a few scalars).
  static constexpr size_t kInlineBytes = 64;
  static constexpr size_t kInlineAlign = 16;

  BasicSmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicSmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  BasicSmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (FitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOpsFor<Fn>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOpsFor<Fn>::kOps;
    }
  }

  BasicSmallFn(BasicSmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  BasicSmallFn& operator=(BasicSmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  BasicSmallFn(const BasicSmallFn&) = delete;
  BasicSmallFn& operator=(const BasicSmallFn&) = delete;

  ~BasicSmallFn() { Reset(); }

  /// Destroys the held callable (releasing captured resources now),
  /// leaving the BasicSmallFn empty. Safe on an empty BasicSmallFn.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  R operator()(Args... args) {
    assert(ops_ != nullptr && "invoking an empty BasicSmallFn");
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (no allocation).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  /// Whether callables of type F avoid the heap fallback.
  template <typename F>
  static constexpr bool FitsInline() {
    return sizeof(F) <= kInlineBytes && alignof(F) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args... args);
    // Move-constructs dst from src and destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename F>
  struct InlineOpsFor {
    static R Invoke(void* s, Args... args) {
      return (*std::launder(reinterpret_cast<F*>(s)))(
          std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) noexcept {
      F* from = std::launder(reinterpret_cast<F*>(src));
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void Destroy(void* s) noexcept {
      std::launder(reinterpret_cast<F*>(s))->~F();
    }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, true};
  };

  template <typename F>
  struct HeapOpsFor {
    static F*& Ptr(void* s) { return *std::launder(reinterpret_cast<F**>(s)); }
    static R Invoke(void* s, Args... args) {
      return (*Ptr(s))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) noexcept {
      ::new (dst) F*(Ptr(src));
    }
    static void Destroy(void* s) noexcept { delete Ptr(s); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, false};
  };

  alignas(kInlineAlign) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// The event engine's `void()` callable.
using SmallFn = BasicSmallFn<void()>;

}  // namespace diknn

#endif  // DIKNN_SIM_SMALL_FN_H_
