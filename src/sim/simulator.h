// Discrete-event simulator: the clock and scheduling facade used by every
// network and protocol component.

#ifndef DIKNN_SIM_SIMULATOR_H_
#define DIKNN_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <limits>

#include "core/status.h"
#include "sim/event_queue.h"

namespace diknn {

/// Drives simulated time forward by executing events in timestamp order.
///
/// The simulator is single-threaded: an event callback may schedule or
/// cancel further events but must not block. All substrate components
/// (channel, MAC, mobility, protocols) share one Simulator instance.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `t`; `t` must be >= Now().
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` to fire every `period` seconds starting `phase` seconds
  /// from now. Returns the id of the *first* firing; use the returned
  /// PeriodicHandle-style id with CancelPeriodic via the closure instead.
  /// The repetition stops when `fn` returns false.
  EventId SchedulePeriodic(SimTime phase, SimTime period,
                           std::function<bool()> fn);

  /// Cancels a pending event (no-op if already fired or cancelled).
  void Cancel(EventId id) { queue_.Cancel(id); }

  /// True while `id` has neither fired nor been cancelled.
  bool IsPending(EventId id) const { return queue_.IsPending(id); }

  /// Runs events until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  uint64_t Run(uint64_t max_events = std::numeric_limits<uint64_t>::max());

  /// Runs events with timestamps <= `t`, then advances the clock to exactly
  /// `t` (even if no event fired at `t`). Returns events executed.
  uint64_t RunUntil(SimTime t);

  /// Total events executed since construction.
  uint64_t events_executed() const { return events_executed_; }

  /// Number of pending events.
  size_t pending_events() const { return queue_.Size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  uint64_t events_executed_ = 0;
};

}  // namespace diknn

#endif  // DIKNN_SIM_SIMULATOR_H_
