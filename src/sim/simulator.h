// Discrete-event simulator: the clock and scheduling facade used by every
// network and protocol component.

#ifndef DIKNN_SIM_SIMULATOR_H_
#define DIKNN_SIM_SIMULATOR_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>

#include "core/status.h"
#include "sim/event_queue.h"

namespace diknn {

/// Drives simulated time forward by executing events in timestamp order.
///
/// The simulator is single-threaded: an event callback may schedule or
/// cancel further events but must not block. All substrate components
/// (channel, MAC, mobility, protocols) share one Simulator instance.
class Simulator {
 public:
  /// `engine` selects the scheduler implementation; the default timer
  /// wheel and the legacy binary heap fire events in an identical order
  /// (see docs/ENGINE.md), so the choice only affects speed.
  explicit Simulator(EngineKind engine = EngineKind::kWheel)
      : queue_(engine) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `t`; `t` must be >= Now(). Accepts
  /// any `void()` callable; small captures are stored without heap
  /// allocation (SmallFn inline storage).
  template <typename F>
  EventId ScheduleAt(SimTime t, F&& fn) {
    assert(t >= now_ && "cannot schedule events in the past");
    if (t < now_) t = now_;
    return queue_.Push(t, std::forward<F>(fn));
  }

  /// Schedules `fn` after `delay` seconds (>= 0).
  template <typename F>
  EventId ScheduleAfter(SimTime delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` to fire every `period` seconds starting `phase` seconds
  /// from now. Returns the id of the *first* firing; use the returned
  /// PeriodicHandle-style id with CancelPeriodic via the closure instead.
  /// The repetition stops when `fn` returns false.
  EventId SchedulePeriodic(SimTime phase, SimTime period,
                           std::function<bool()> fn);

  /// Cancels a pending event in O(1) (no-op if already fired or
  /// cancelled).
  void Cancel(EventId id) { queue_.Cancel(id); }

  /// True while `id` has neither fired nor been cancelled.
  bool IsPending(EventId id) const { return queue_.IsPending(id); }

  /// Runs events until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  uint64_t Run(uint64_t max_events = std::numeric_limits<uint64_t>::max());

  /// Runs events with timestamps <= `t`, then advances the clock to exactly
  /// `t` (even if no event fired at `t`). Returns events executed.
  uint64_t RunUntil(SimTime t);

  /// Runs events with timestamps strictly < `t`, then advances the clock
  /// to exactly `t`. The half-open variant of RunUntil: the parallel
  /// engine (src/psim) drains each shard's window [kL, (k+1)L) with
  /// RunBefore((k+1)L), so an event at exactly the window boundary fires
  /// in the *next* window — after the cross-shard barrier exchange — and
  /// never races a neighbor shard's frames for the same instant.
  uint64_t RunBefore(SimTime t);

  /// Total events executed since construction.
  uint64_t events_executed() const { return events_executed_; }

  /// Number of pending (live) events.
  size_t pending_events() const { return queue_.Size(); }

  /// Entries resident in the scheduler, including cancelled ones whose
  /// reference has not been reclaimed yet (see EventQueue docs).
  size_t resident_events() const { return queue_.ResidentEntries(); }

  EngineKind engine() const { return queue_.engine(); }

  /// Scheduler counters (events pushed/fired/cancelled, wheel vs
  /// overflow split, callback storage split, peak sizes).
  const EngineStats& engine_stats() const { return queue_.stats(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  uint64_t events_executed_ = 0;
};

}  // namespace diknn

#endif  // DIKNN_SIM_SIMULATOR_H_
