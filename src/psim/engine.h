// Conservative parallel discrete-event engine (PDES) for the substrate.
//
// PsimEngine builds a PsimWorld (nodes, mobility, the tiled
// FieldPartition), hands each tile to a PsimShard with its own
// timer-wheel Simulator, and runs all shards in lock-step over
// fixed-length lookahead windows:
//
//   for each window k:            (all shards, one std::barrier each)
//     barrier ─ sweep   : re-bucket owned nodes, mail migrations,
//                         expire neighbor tables   (every R windows)
//     barrier ─ drain   : adopt migrated nodes, chain neighbor frames
//             ─ process : decide window k-2 receptions, run local
//                         events in [kL, (k+1)L)
//
// This is the windowed (bounded-lag) flavor of conservative PDES: the
// lookahead L is the air time of the largest substrate frame, so no
// event a shard executes inside window k can affect any other shard
// before window k+1, and no null messages are needed — the barrier IS
// the null message, amortized over every pair at once.
//
// Determinism contract (docs/ENGINE.md): the serial engine remains the
// anchor — `--shards 1` in the harness runs the serial path unchanged —
// and within psim every partition-invariant counter (frames, collisions,
// losses, neighbor updates, query-plane hops, the full SloReport) is
// byte-equal across shard counts, enforced by psim_determinism_test.

#ifndef DIKNN_PSIM_ENGINE_H_
#define DIKNN_PSIM_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "psim/shard.h"

namespace diknn {

/// Outcome of one parallel substrate run.
struct PsimResult {
  PsimStats totals;                       ///< Shard-order sum.
  std::vector<PsimStats> shard_stats;     ///< Per shard, in shard order.
  EngineStats engine;                     ///< Merged scheduler counters.
  std::vector<EngineStats> shard_engine;  ///< Per-shard scheduler counters.
  MetricsSnapshot obs;                    ///< psim.* / net.* / engine.*.
  int shards = 1;                         ///< Effective shard count.
  int shards_requested = 1;               ///< Before the geometry clamp.
  uint64_t windows = 0;
  double lookahead_s = 0.0;
  double wall_s = 0.0;                    ///< Run() wall-clock seconds.
  double average_degree = 0.0;            ///< Mean fresh neighbors at end.
  bool query_ran = false;                 ///< Query plane was enabled.
  SloReport slo;                          ///< Query-plane outcome (if ran).
  /// Flight recording (empty unless PsimConfig::ts enables a cadence).
  /// Deterministic series are bit-identical across shard counts; the
  /// psim.shardK.* diagnostics are not (busy_s precedent).
  TimeSeriesSet ts;
};

/// Sums counters and maxes the peak gauges across shards.
EngineStats MergeEngineStats(const std::vector<EngineStats>& stats);

/// Deterministic JSON of the snapshot's partition-invariant subset: drops
/// the per-shard rows, the exchange counters (boundary/foreign/remail/
/// migration/sweep traffic), scheduler internals, and the allocation
/// tallies — everything that legitimately varies with the shard count —
/// so the result is byte-comparable across --shards 1/2/4/8.
std::string InvariantObsJson(const MetricsSnapshot& snapshot);

class PsimEngine {
 public:
  explicit PsimEngine(const PsimConfig& config);

  PsimEngine(const PsimEngine&) = delete;
  PsimEngine& operator=(const PsimEngine&) = delete;

  /// Runs the configured duration once. Call at most once per engine.
  PsimResult Run();

  const FieldPartition& partition() const { return world_->partition; }
  int shards() const { return static_cast<int>(shards_.size()); }
  size_t node_count() const { return world_->nodes.size(); }
  const PsimNode& node(uint32_t i) const { return world_->nodes[i]; }
  /// Shard currently owning node `i` (valid between windows / post-run).
  int OwnerOf(uint32_t i) const {
    return world_->partition.OwnerOfCell(world_->nodes[i].cell);
  }
  const PsimStats& shard_stats(int s) const { return shards_[s]->stats(); }
  /// Every owned node's bucket maps back to its owner and its pending
  /// event is live, on every shard. Test hook; post-run only.
  bool OwnershipInvariantHolds() const;

 private:
  void BuildWorld();
  MetricsSnapshot BuildObsSnapshot(const PsimResult& result) const;

  PsimConfig config_;
  std::unique_ptr<PsimWorld> world_;
  std::vector<std::unique_ptr<PsimShard>> shards_;
  bool ran_ = false;
};

/// Convenience wrapper: build, run, return.
PsimResult RunPsim(const PsimConfig& config);

}  // namespace diknn

#endif  // DIKNN_PSIM_ENGINE_H_
