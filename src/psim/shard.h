// One shard of the parallel substrate simulation: a column strip of the
// field, its nodes, its own timer-wheel Simulator, and the per-window
// frame exchange with the adjacent shards.
//
// The shard simulates the beacon substrate (the traffic that dominates
// large fields): every node runs the 802.15.4 unslotted CSMA-CA dance —
// random backoff, carrier sense, broadcast — through a PHY model whose
// visibility is quantized to the conservative lookahead window L:
//
//   * a frame transmitted during window k becomes *visible* (to carrier
//     sense and to collision checks) from window k+1 on;
//   * its receptions are decided at the start of window k+2, when every
//     transmission that could overlap it (windows k-1..k+1; frame
//     duration <= L) is known on all shards.
//
// The quantization applies uniformly — to frames from the local strip
// and to frames mailed across a boundary alike — which is what makes
// every traffic counter an exact function of (seed, config), independent
// of the shard count: psim with --shards 8 counts the same frames,
// collisions, and losses as psim with --shards 1 (asserted by
// psim_determinism_test). Randomness follows the same rule: every draw
// that affects traffic comes from a per-node stream forked from
// (seed, node id); the per-shard stream forked from (seed, shard id)
// feeds only the ownership audit probes.
//
// Thread safety is by phase discipline, not by locking (the SPSC
// mailboxes are the only concurrently-touched state): within a window,
// all shards pass a barrier, re-bucket/migrate (sweep windows only),
// pass a second barrier, drain their inboxes, then process the window.
// A node is touched exclusively by its owner; ownership changes hands
// only across the sweep barriers. See docs/ENGINE.md.

#ifndef DIKNN_PSIM_SHARD_H_
#define DIKNN_PSIM_SHARD_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/alloc_probe.h"
#include "core/rng.h"
#include "net/mac.h"
#include "net/mobility.h"
#include "net/neighbor_table.h"
#include "psim/mailbox.h"
#include "psim/partition.h"
#include "sim/simulator.h"

namespace diknn {

/// Parallel-substrate run configuration. Field/radio/MAC defaults match
/// NetworkConfig (the paper's Section 5.1 table).
struct PsimConfig {
  int node_count = 2000;
  Rect field = Rect::Field(115.0, 115.0);
  double radio_range_m = 20.0;
  double bit_rate_bps = 250e3;
  double loss_rate = 0.0;
  SimTime beacon_interval = 0.5;
  SimTime neighbor_timeout = 1.5;
  double max_speed = 10.0;  ///< mu_max; 0 = static nodes.
  double grid_refresh_interval_s = 0.25;
  MacParams mac;
  EngineKind scheduler = EngineKind::kWheel;
  int shards = 1;           ///< Requested; clamped by the partition.
  SimTime duration = 5.0;
  uint64_t seed = 1;
  /// Boundary-frame ring capacity per (pair, direction); 0 = sized from
  /// node_count. Migration rings are always sized from node_count.
  size_t frame_mailbox_capacity = 0;
};

/// A transmission on the air, as exchanged between shards. `origin` is
/// the sender's true position at transmit time; receivers and interferers
/// are judged against it, so a mailed copy carries everything a neighbor
/// shard needs — sender state is never touched across a boundary.
struct PsimFrame {
  Point origin;
  SimTime t = 0.0;       ///< Transmit start.
  SimTime end = 0.0;     ///< Transmit end (t + air time).
  float speed = 0.0f;    ///< Sender speed advertised in the beacon.
  uint32_t sender = 0;
  uint32_t seq = 0;      ///< Sender-local sequence number.
  int32_t cell = -1;     ///< Grid cell of `origin` at transmit time.
  uint32_t window = 0;   ///< Lookahead window the frame was sent in.
};

/// Per-node state. Owned (read and written) exclusively by the shard
/// that owns the node's bucket cell; ownership migrates with the node.
struct PsimNode {
  enum class Phase : uint8_t { kIdle, kBackoff };

  Rng rng{0};            ///< CSMA backoff draws; forked from (seed, id).
  std::unique_ptr<MobilityModel> mobility;
  NeighborTable neighbors{1.5};
  int32_t cell = -1;     ///< Bucket cell (refreshed at sweep windows).
  uint32_t seq = 0;
  SimTime next_beacon = 0.0;
  SimTime event_time = 0.0;  ///< Absolute time of the pending event.
  EventId event = 0;  ///< 0 = no pending event (the null handle).
  Phase phase = Phase::kIdle;
  uint8_t backoffs = 0;  ///< CSMA backoff rounds done for this frame.
  uint8_t be = 0;        ///< Current backoff exponent.
};

/// Per-shard counters. The traffic block is partition-invariant — equal
/// (summed across shards) for any shard count — while the exchange block
/// describes the partitioning itself.
struct PsimStats {
  // Partition-invariant traffic counters.
  uint64_t frames_sent = 0;
  uint64_t csma_attempts = 0;
  uint64_t csma_busy = 0;
  uint64_t csma_failures = 0;
  uint64_t receptions_attempted = 0;
  uint64_t receptions_delivered = 0;
  uint64_t receptions_collided = 0;
  uint64_t receptions_lost = 0;
  uint64_t candidates_scanned = 0;
  uint64_t neighbor_updates = 0;
  // Partition-dependent exchange counters.
  uint64_t boundary_frames = 0;   ///< Frames mailed to a neighbor shard.
  uint64_t foreign_frames = 0;    ///< Frames drained from neighbors.
  uint64_t migrations_out = 0;
  uint64_t migrations_in = 0;
  uint64_t sweeps = 0;
  uint64_t windows = 0;
  uint64_t audit_probes = 0;      ///< Shard-RNG ownership spot checks.
  uint64_t audit_mismatches = 0;  ///< Must stay 0.
  // Steady-state allocation tallies (second half of the run).
  uint64_t steady_allocs = 0;
  uint64_t steady_alloc_bytes = 0;
  /// Wall-clock seconds this shard spent working (barrier waits
  /// excluded); feeds the bench's parallel-efficiency estimate.
  double busy_s = 0.0;

  PsimStats& operator+=(const PsimStats& o);

  /// The partition-invariant subset, comparable across shard counts.
  struct Invariants {
    uint64_t frames_sent, csma_attempts, csma_busy, csma_failures;
    uint64_t receptions_attempted, receptions_delivered;
    uint64_t receptions_collided, receptions_lost;
    uint64_t candidates_scanned, neighbor_updates;
    bool operator==(const Invariants&) const = default;
  };
  Invariants InvariantCounters() const {
    return {frames_sent,          csma_attempts,
            csma_busy,            csma_failures,
            receptions_attempted, receptions_delivered,
            receptions_collided,  receptions_lost,
            candidates_scanned,   neighbor_updates};
  }
};

/// Shared world state, built single-threaded by the engine. During the
/// run, `nodes[i]` and each cell list are touched only by the owning
/// shard (phase discipline above).
struct PsimWorld {
  PsimConfig config;
  FieldPartition partition;
  double frame_air_time = 0.0;
  std::vector<PsimNode> nodes;
  /// Node indices bucketed per grid cell.
  std::vector<std::vector<uint32_t>> cell_nodes;

  PsimWorld(const PsimConfig& cfg, const PsimNetParams& net)
      : config(cfg), partition(net, cfg.shards) {}

  /// Boundary-frame ring capacity: a frame stays undrained for at most
  /// two windows, and frames per window are bounded by the border
  /// population, so node_count is a comfortable worst case.
  size_t FrameMailboxCapacity() const {
    if (config.frame_mailbox_capacity > 0) {
      return config.frame_mailbox_capacity;
    }
    return std::max<size_t>(4096,
                            static_cast<size_t>(config.node_count));
  }
  /// Migration ring capacity: at most every node migrates in one sweep.
  size_t MigrationMailboxCapacity() const {
    return std::max<size_t>(1024,
                            static_cast<size_t>(config.node_count));
  }
};

class PsimShard {
 public:
  PsimShard(PsimWorld* world, int id);

  PsimShard(const PsimShard&) = delete;
  PsimShard& operator=(const PsimShard&) = delete;

  int id() const { return id_; }
  /// Wires the adjacent shards (nullptr at the field edge). Must be
  /// called before scheduling starts.
  void BindNeighbors(PsimShard* west, PsimShard* east);

  /// Takes ownership of node `i` and schedules its first beacon. Engine
  /// setup only (single-threaded).
  void AdoptNode(uint32_t i);

  // --- Window phases, driven by the engine's worker loop. ---------------

  /// Phase A (between the two barriers): on sweep windows, re-bucket
  /// every owned node at the window boundary, mail nodes whose bucket
  /// moved to another strip, expire neighbor tables, and run an
  /// ownership audit probe off the shard RNG.
  void SweepIfDue(uint64_t k);

  /// Phase B.1: adopt migrated-in nodes and chain drained boundary
  /// frames into the window slots.
  void DrainMailboxes(uint64_t k);

  /// Phase B.2: decide receptions for the frames of window k-2, then run
  /// this shard's events scheduled inside [kL, (k+1)L).
  void ProcessWindow(uint64_t k);

  /// After the final window (and a final barrier): consume frames mailed
  /// during the last windows so the boundary/foreign tallies balance.
  void DrainRemaining();

  /// Resets the allocation counters at the run midpoint so the final
  /// tally covers only the steady-state half.
  void BeginSteadyState() { allocs_.Reset(); }

  /// Folds the allocation tallies into stats(); call once, after the
  /// last window.
  void FinalizeStats();

  const PsimStats& stats() const { return stats_; }
  PsimStats& stats() { return stats_; }
  AllocCounters* allocs() { return &allocs_; }
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  size_t owned_count() const { return owned_.size(); }

  /// True when every owned node's bucket cell maps back to this shard
  /// and its pending event is live. Test hook (call between runs or
  /// after Run; not thread-safe against the worker loop).
  bool OwnershipInvariantHolds() const;

  /// Deterministic per-shard seed; the resulting stream feeds only the
  /// ownership audit probes, never traffic decisions.
  static uint64_t ShardSeed(uint64_t run_seed, int shard_id);
  /// Deterministic per-node seed (`lane` separates the mobility stream
  /// from the CSMA stream).
  static uint64_t NodeSeed(uint64_t run_seed, uint32_t node, uint32_t lane);

 private:
  friend class PsimEngine;

  // A window slot holds every known frame of one lookahead window
  // (local + drained foreign), chained per grid cell for the geometric
  // scans. Four slots cover the live range k-3..k. The head index is a
  // dense per-cell array (cells are small dense ints), so chaining and
  // clearing never allocate.
  struct WindowSlot {
    std::vector<PsimFrame> frames;
    std::vector<int32_t> next;       ///< Chain links, parallel to frames.
    std::vector<int32_t> cell_head;  ///< cell -> first frame index, -1 = none.

    void Clear() {
      frames.clear();
      next.clear();
      std::fill(cell_head.begin(), cell_head.end(), -1);
    }
  };

  WindowSlot& Slot(uint64_t window) { return slots_[window & 3]; }

  void AppendFrame(const PsimFrame& f);
  void OnNodeEvent(uint32_t i);
  void StartCsma(uint32_t i, SimTime now);
  void ScheduleBackoff(uint32_t i, SimTime now);
  void CsmaAttempt(uint32_t i, SimTime now);
  void Transmit(uint32_t i, SimTime now, const Point& pos);
  void ScheduleNextBeacon(uint32_t i);
  void ScheduleNode(uint32_t i, SimTime t);
  bool SenseBusy(const Point& pos, SimTime now) const;
  void DeliverWindow(uint64_t k);
  void DeliverFrame(const PsimFrame& f, SimTime now);
  bool LossDraw(const PsimFrame& f, uint32_t receiver) const;

  PsimWorld* world_;
  int id_;
  int first_column_ = 0;
  int last_column_ = 0;
  PsimShard* west_ = nullptr;
  PsimShard* east_ = nullptr;

  Simulator sim_;
  Rng shard_rng_;
  AllocCounters allocs_;
  PsimStats stats_;
  uint64_t current_window_ = 0;

  std::vector<uint32_t> owned_;  ///< Node indices owned by this shard.
  std::array<WindowSlot, 4> slots_;

  // Inboxes (this shard consumes; the named neighbor produces).
  SpscMailbox<PsimFrame> frames_from_west_;
  SpscMailbox<PsimFrame> frames_from_east_;
  SpscMailbox<uint32_t> migrations_from_west_;
  SpscMailbox<uint32_t> migrations_from_east_;

  // Reused scratch (allocation-free once at high-water capacity).
  std::vector<uint32_t> delivery_order_;     ///< Frame index permutation.
  std::vector<const PsimFrame*> interferers_;
  std::vector<uint32_t> receivers_;
  std::vector<uint32_t> migrated_out_;
};

}  // namespace diknn

#endif  // DIKNN_PSIM_SHARD_H_
