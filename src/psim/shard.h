// One shard of the parallel substrate simulation: a rectangular tile of
// the field, its nodes, its own timer-wheel Simulator, and the per-window
// exchange (boundary frames, node migrations, unicast query frames) with
// the adjacent shards.
//
// The shard simulates the beacon substrate (the traffic that dominates
// large fields): every node runs the 802.15.4 unslotted CSMA-CA dance —
// random backoff, carrier sense, broadcast — through a PHY model whose
// visibility is quantized to the conservative lookahead window L:
//
//   * a frame transmitted during window k becomes *visible* (to carrier
//     sense and to collision checks) from window k+1 on;
//   * its receptions are decided at the start of window k+2, when every
//     transmission that could overlap it (windows k-1..k+1; frame
//     duration <= L) is known on all shards.
//
// On top of the substrate, the shard runs the query plane
// (psim/query_plane.h): GPSR greedy forwarding and DIKNN itinerary
// traversal as window-stamped unicast frames, applied at their
// destination's owner in global (t, sender, seq) order.
//
// The quantization applies uniformly — to frames from the local tile
// and to frames mailed across a boundary alike — which is what makes
// every traffic counter an exact function of (seed, config), independent
// of the shard count: psim with --shards 8 counts the same frames,
// collisions, losses, query hops and SLO outcomes as psim with
// --shards 1 (asserted by psim_determinism_test). Randomness follows the
// same rule: every draw that affects traffic comes from a per-node
// stream forked from (seed, node id) or a stateless per-frame hash; the
// per-shard stream forked from (seed, shard id) feeds only the ownership
// audit probes.
//
// Thread safety is by phase discipline, not by locking (the SPSC
// mailboxes are the only concurrently-touched state): within a window,
// all shards pass a barrier, re-bucket/migrate (sweep windows only),
// pass a second barrier, drain their inboxes, then process the window.
// A node is touched exclusively by its owner; ownership changes hands
// only across the sweep barriers. See docs/ENGINE.md.

#ifndef DIKNN_PSIM_SHARD_H_
#define DIKNN_PSIM_SHARD_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/alloc_probe.h"
#include "core/rng.h"
#include "knn/itinerary.h"
#include "obs/timeseries.h"
#include "net/mac.h"
#include "net/mobility.h"
#include "net/neighbor_table.h"
#include "psim/mailbox.h"
#include "psim/partition.h"
#include "psim/query_plane.h"
#include "sim/simulator.h"

namespace diknn {

/// Parallel-substrate run configuration. Field/radio/MAC defaults match
/// NetworkConfig (the paper's Section 5.1 table).
struct PsimConfig {
  int node_count = 2000;
  Rect field = Rect::Field(115.0, 115.0);
  double radio_range_m = 20.0;
  double bit_rate_bps = 250e3;
  double loss_rate = 0.0;
  SimTime beacon_interval = 0.5;
  SimTime neighbor_timeout = 1.5;
  double max_speed = 10.0;  ///< mu_max; 0 = static nodes.
  double grid_refresh_interval_s = 0.25;
  MacParams mac;
  EngineKind scheduler = EngineKind::kWheel;
  int shards = 1;           ///< Requested; clamped by the partition.
  SimTime duration = 5.0;
  uint64_t seed = 1;
  /// Boundary-frame ring capacity per (pair, direction); 0 = sized from
  /// node_count. Migration rings are always sized from node_count.
  size_t frame_mailbox_capacity = 0;
  /// Query plane (disabled by default: substrate only).
  QueryPlaneConfig query;
  /// Node-fault schedule: (time s, node id) pairs. A node dies at the
  /// first sweep window at or after its time — sweeps are global sync
  /// points, so the fault lands identically at every shard count.
  std::vector<std::pair<double, uint32_t>> node_kills;
  /// Flight-recorder cadence/capacity. Sampling happens in the window
  /// barrier's completion step — a global sync point — so deterministic
  /// series read partition-invariant sums race-free and bit-identically
  /// at any shard count (per-shard diagnostics follow busy_s and stay
  /// out of the invariant comparison). Disabled (interval 0) by default.
  TimeSeriesOptions ts;
};

/// A transmission on the air, as exchanged between shards. `origin` is
/// the sender's true position at transmit time; receivers and interferers
/// are judged against it, so a mailed copy carries everything a neighbor
/// shard needs — sender state is never touched across a boundary.
struct PsimFrame {
  Point origin;
  SimTime t = 0.0;       ///< Transmit start.
  SimTime end = 0.0;     ///< Transmit end (t + air time).
  float speed = 0.0f;    ///< Sender speed advertised in the beacon.
  uint32_t sender = 0;
  uint32_t seq = 0;      ///< Sender-local sequence number.
  int32_t cell = -1;     ///< Grid cell of `origin` at transmit time.
  uint32_t window = 0;   ///< Lookahead window the frame was sent in.
};

/// Per-node state. Owned (read and written) exclusively by the shard
/// that owns the node's bucket cell; ownership migrates with the node.
struct PsimNode {
  enum class Phase : uint8_t { kIdle, kBackoff };

  Rng rng{0};            ///< CSMA backoff draws; forked from (seed, id).
  std::unique_ptr<MobilityModel> mobility;
  NeighborTable neighbors{1.5};
  int32_t cell = -1;     ///< Bucket cell (refreshed at sweep windows).
  uint32_t seq = 0;
  SimTime next_beacon = 0.0;
  SimTime event_time = 0.0;  ///< Absolute time of the pending event.
  EventId event = 0;  ///< 0 = no pending event (the null handle).
  Phase phase = Phase::kIdle;
  uint8_t backoffs = 0;  ///< CSMA backoff rounds done for this frame.
  uint8_t be = 0;        ///< Current backoff exponent.
};

/// Per-shard counters. The traffic block is partition-invariant — equal
/// (summed across shards) for any shard count — while the exchange block
/// describes the partitioning itself.
struct PsimStats {
  // Partition-invariant traffic counters.
  uint64_t frames_sent = 0;
  uint64_t csma_attempts = 0;
  uint64_t csma_busy = 0;
  uint64_t csma_failures = 0;
  uint64_t receptions_attempted = 0;
  uint64_t receptions_delivered = 0;
  uint64_t receptions_collided = 0;
  uint64_t receptions_lost = 0;
  uint64_t candidates_scanned = 0;
  uint64_t neighbor_updates = 0;
  // Partition-dependent exchange counters.
  uint64_t boundary_frames = 0;   ///< Frames mailed to a neighbor shard.
  uint64_t foreign_frames = 0;    ///< Frames drained from neighbors.
  uint64_t migrations_out = 0;
  uint64_t migrations_in = 0;
  uint64_t sweeps = 0;
  uint64_t windows = 0;
  uint64_t audit_probes = 0;      ///< Shard-RNG ownership spot checks.
  uint64_t audit_mismatches = 0;  ///< Must stay 0.
  /// Query-plane counters (invariant block + exchange block inside).
  QueryPlaneStats qp;
  // Steady-state allocation tallies (second half of the run).
  uint64_t steady_allocs = 0;
  uint64_t steady_alloc_bytes = 0;
  /// Wall-clock seconds this shard spent working (barrier waits
  /// excluded); feeds the bench's parallel-efficiency estimate.
  double busy_s = 0.0;
  /// Wall-clock seconds spent waiting at the two window barriers; the
  /// bench reports barrier_wait / (busy + barrier_wait) as the per-shard
  /// imbalance share. Like busy_s, never published to obs (wall-clock).
  double barrier_wait_s = 0.0;
  /// Mailbox high-water marks: the deepest any inbox of this shard got,
  /// sampled at drain time. Racy against the producer's current process
  /// phase by design — load-imbalance observability for the bench, never
  /// part of the obs snapshot or the invariant comparison.
  uint64_t frames_mailbox_hwm = 0;
  uint64_t queries_mailbox_hwm = 0;
  uint64_t migrations_mailbox_hwm = 0;

  PsimStats& operator+=(const PsimStats& o);

  /// The partition-invariant subset, comparable across shard counts.
  struct Invariants {
    uint64_t frames_sent, csma_attempts, csma_busy, csma_failures;
    uint64_t receptions_attempted, receptions_delivered;
    uint64_t receptions_collided, receptions_lost;
    uint64_t candidates_scanned, neighbor_updates;
    QueryPlaneStats::Invariants qp;
    bool operator==(const Invariants&) const = default;
  };
  Invariants InvariantCounters() const {
    return {frames_sent,          csma_attempts,
            csma_busy,            csma_failures,
            receptions_attempted, receptions_delivered,
            receptions_collided,  receptions_lost,
            candidates_scanned,   neighbor_updates,
            qp.InvariantCounters()};
  }
};

/// Shared world state, built single-threaded by the engine. During the
/// run, `nodes[i]` and each cell list are touched only by the owning
/// shard (phase discipline above).
struct PsimWorld {
  PsimConfig config;
  FieldPartition partition;
  double frame_air_time = 0.0;
  std::vector<PsimNode> nodes;
  /// Node indices bucketed per grid cell.
  std::vector<std::vector<uint32_t>> cell_nodes;
  /// 1 while the node is up. Written only at sweep windows (by the
  /// owner), read freely in process phases — barrier-separated.
  std::vector<uint8_t> alive;
  /// First sweep window at which the node dies; empty = no faults.
  std::vector<uint64_t> kill_window;
  /// Query-plane state (schedule, per-query state, sink-side serving).
  QueryPlaneState query;

  PsimWorld(const PsimConfig& cfg, const PsimNetParams& net)
      : config(cfg), partition(net, cfg.shards) {}

  /// Boundary-frame ring capacity: a frame stays undrained for at most
  /// two windows, and frames per window are bounded by the border
  /// population, so node_count is a comfortable worst case.
  size_t FrameMailboxCapacity() const {
    if (config.frame_mailbox_capacity > 0) {
      return config.frame_mailbox_capacity;
    }
    return std::max<size_t>(4096,
                            static_cast<size_t>(config.node_count));
  }
  /// Migration ring capacity: at most every node migrates in one sweep.
  size_t MigrationMailboxCapacity() const {
    return std::max<size_t>(1024,
                            static_cast<size_t>(config.node_count));
  }
  /// Query-frame ring capacity: concurrent query frames are bounded by
  /// the admission bound times the sector fan-out (plus retries), and a
  /// frame stays undrained for at most two windows.
  size_t QueryMailboxCapacity() const {
    if (!config.query.enabled) return 16;
    const int sectors = std::max(1, config.query.diknn.num_sectors);
    const int inflight = config.query.spec.max_inflight;
    return std::max<size_t>(
        4096, inflight > 0 ? static_cast<size_t>(8 * sectors * inflight)
                           : 4096);
  }
};

class PsimShard {
 public:
  /// Everything one shard consumes from one adjacent producer: the three
  /// SPSC rings of the per-window exchange. Created by the engine wiring
  /// pass, one per (producer, consumer) edge of the tile adjacency.
  struct NeighborInbox {
    int from;  ///< Producer shard id.
    SpscMailbox<PsimFrame> frames;
    SpscMailbox<uint32_t> migrations;
    SpscMailbox<PsimQueryFrame> queries;

    NeighborInbox(int from_shard, size_t frame_cap, size_t migration_cap,
                  size_t query_cap)
        : from(from_shard),
          frames(frame_cap),
          migrations(migration_cap),
          queries(query_cap) {}
  };

  PsimShard(PsimWorld* world, int id);

  PsimShard(const PsimShard&) = delete;
  PsimShard& operator=(const PsimShard&) = delete;

  int id() const { return id_; }

  /// Engine wiring (single-threaded, before the run): creates the inbox
  /// this shard will consume from adjacent shard `from`. Call in
  /// ascending `from` order — drain order is inbox-creation order.
  NeighborInbox* CreateInbox(int from);
  /// Inbox previously created for producer `from` (nullptr if none).
  NeighborInbox* InboxFrom(int from);
  /// Engine wiring: registers neighbor `to`'s inbox for this producer,
  /// so cross-boundary pushes can find their ring. Ascending `to` order.
  void AddOutbox(int to, NeighborInbox* inbox);

  /// Takes ownership of node `i` and schedules its first beacon. Engine
  /// setup only (single-threaded).
  void AdoptNode(uint32_t i);

  // --- Window phases, driven by the engine's worker loop. ---------------

  /// Phase A (between the two barriers): on sweep windows, apply due
  /// node faults, re-bucket every owned node at the window boundary,
  /// mail nodes whose bucket moved to another tile, expire neighbor
  /// tables, and run an ownership audit probe off the shard RNG.
  void SweepIfDue(uint64_t k);

  /// Phase B.1: adopt migrated-in nodes, chain drained boundary frames
  /// into the window slots, and file drained query frames by their
  /// application window.
  void DrainMailboxes(uint64_t k);

  /// Phase B.2: decide receptions for the frames of window k-2, apply
  /// this window's query frames in (t, sender, seq) order (and run sink
  /// duties when this shard owns the sink), then run this shard's events
  /// scheduled inside [kL, (k+1)L).
  void ProcessWindow(uint64_t k);

  /// After the final window (and a final barrier): consume frames mailed
  /// during the last windows so the boundary/foreign tallies balance.
  void DrainRemaining();

  /// Resets the allocation counters at the run midpoint so the final
  /// tally covers only the steady-state half.
  void BeginSteadyState() { allocs_.Reset(); }

  /// Folds the allocation tallies into stats(); call once, after the
  /// last window.
  void FinalizeStats();

  const PsimStats& stats() const { return stats_; }
  PsimStats& stats() { return stats_; }
  /// Live wall-clock scratch for the flight recorder's diagnostic
  /// series: the worker publishes its running busy / barrier-wait totals
  /// here just before arriving at each window's first barrier, and the
  /// barrier's completion step reads them (the barrier orders the two).
  double live_busy_s = 0.0;
  double live_wait_s = 0.0;
  AllocCounters* allocs() { return &allocs_; }
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  size_t owned_count() const { return owned_.size(); }

  /// True when every owned node's bucket cell maps back to this shard
  /// and its pending event is live (dead nodes keep their bucket but
  /// hold no event). Test hook (call between runs or after Run; not
  /// thread-safe against the worker loop).
  bool OwnershipInvariantHolds() const;

  /// Deterministic per-shard seed; the resulting stream feeds only the
  /// ownership audit probes, never traffic decisions.
  static uint64_t ShardSeed(uint64_t run_seed, int shard_id);
  /// Deterministic per-node seed (`lane` separates the mobility stream
  /// from the CSMA stream).
  static uint64_t NodeSeed(uint64_t run_seed, uint32_t node, uint32_t lane);

 private:
  friend class PsimEngine;

  // A window slot holds every known frame of one lookahead window
  // (local + drained foreign), chained per grid cell for the geometric
  // scans. Four slots cover the live range k-3..k. The head index is a
  // dense per-cell array (cells are small dense ints), so chaining and
  // clearing never allocate.
  struct WindowSlot {
    std::vector<PsimFrame> frames;
    std::vector<int32_t> next;       ///< Chain links, parallel to frames.
    std::vector<int32_t> cell_head;  ///< cell -> first frame index, -1 = none.

    void Clear() {
      frames.clear();
      next.clear();
      std::fill(cell_head.begin(), cell_head.end(), -1);
    }
  };

  WindowSlot& Slot(uint64_t window) { return slots_[window & 3]; }

  void AppendFrame(const PsimFrame& f);
  void OnNodeEvent(uint32_t i);
  void StartCsma(uint32_t i, SimTime now);
  void ScheduleBackoff(uint32_t i, SimTime now);
  void CsmaAttempt(uint32_t i, SimTime now);
  void Transmit(uint32_t i, SimTime now, const Point& pos);
  void ScheduleNextBeacon(uint32_t i);
  void ScheduleNode(uint32_t i, SimTime t);
  bool SenseBusy(const Point& pos, SimTime now) const;
  void DeliverWindow(uint64_t k);
  void DeliverFrame(const PsimFrame& f, SimTime now);
  bool LossDraw(const PsimFrame& f, uint32_t receiver) const;
  NeighborInbox* OutboxFor(int shard);
  /// OutboxFor that aborts instead of returning null: a missing link
  /// means the partition's adjacency guarantee was violated.
  NeighborInbox* RequireOutbox(int shard);

  // --- Query plane (psim/query_plane.cc). -------------------------------
  void ProcessQueryWindow(uint64_t k);
  void ApplyQueryFrame(const PsimQueryFrame& f, uint64_t k, SimTime now);
  void HandleRequest(const PsimQueryFrame& f, SimTime now);
  void HandleHomeArrival(uint32_t query, uint32_t v, SimTime now);
  void HandleItinerary(const PsimQueryFrame& f, SimTime now);
  void HandleSectorResult(const PsimQueryFrame& f, SimTime now);
  void HandleReply(const PsimQueryFrame& f, SimTime now);
  void SendReply(uint32_t query, uint32_t home, SimTime now);
  /// Picks the next hop toward (`target_node` at ~`target_point`) from
  /// node `v` and sends `f` (or drops at a dead end). `f->dest` is set.
  void SendToward(PsimQueryFrame* f, uint32_t v, uint32_t target_node,
                  const Point& target_point, SimTime now);
  /// Stamps sender/seq/t/window and routes (local slot or neighbor
  /// mailbox). `delay_windows` >= 1 keeps cross-shard causality.
  void SendQueryFrame(PsimQueryFrame* f, uint32_t from_node,
                      uint32_t delay_windows);
  void RouteQueryFrame(const PsimQueryFrame& f);
  bool QueryLossDraw(const PsimQueryFrame& f) const;
  /// Collects `v` and its fresh neighbors into a candidate set.
  void CollectAt(uint32_t v, const PsimQuery& query, SimTime now,
                 uint16_t* ncand,
                 std::array<QueryCandidate, kMaxQueryCandidates>* cand,
                 uint32_t* found);
  /// True + the advanced progress/hop when the sector itinerary
  /// continues from `v`; false when the sector is exhausted.
  bool NextItineraryHop(const PsimQuery& query, int sector, uint32_t v,
                        const Point& pos, uint32_t prev, SimTime now,
                        float* progress, NeighborEntry* next);
  // Sink duties (only the shard owning the sink node runs these).
  void ProcessSink(uint64_t k, SimTime now);
  void AdmitArrival(uint32_t query, SimTime now);
  void LaunchQuery(uint32_t query, SimTime now);
  void ResolveFromReply(const PsimQueryFrame& f, SimTime now);
  void RecordFinished(PsimQuery* q, SimTime now);
  void ResolveFollowers(PsimQuery* leader, SimTime now, bool timed_out);
  void TimeOutActive(size_t active_index, SimTime now);
  void DrainAdmissionQueue(SimTime now);
  Point SinkTargetPoint() const;

  PsimWorld* world_;
  int id_;

  Simulator sim_;
  Rng shard_rng_;
  AllocCounters allocs_;
  PsimStats stats_;
  uint64_t current_window_ = 0;

  std::vector<uint32_t> owned_;  ///< Node indices owned by this shard.
  std::array<WindowSlot, 4> slots_;
  /// Query frames filed by application window (window % kQuerySlotCount).
  std::array<std::vector<PsimQueryFrame>, kQuerySlotCount> qslots_;

  // Exchange links (created by the engine wiring pass).
  std::vector<std::unique_ptr<NeighborInbox>> inboxes_;
  std::vector<std::pair<int, NeighborInbox*>> outboxes_;

  // Reused scratch (allocation-free once at high-water capacity).
  std::vector<uint32_t> delivery_order_;     ///< Frame index permutation.
  std::vector<const PsimFrame*> interferers_;
  std::vector<uint32_t> receivers_;
  std::vector<uint32_t> migrated_out_;
  std::vector<uint32_t> qorder_;             ///< Query frame permutation.
  Itinerary itinerary_scratch_;
};

}  // namespace diknn

#endif  // DIKNN_PSIM_SHARD_H_
