#include "psim/shard.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "net/beacon.h"
#include "net/packet.h"

namespace diknn {

namespace {

// splitmix64 finalizer: the same mixer FlatHash uses, applied to seed
// material so per-node and per-shard streams are decorrelated even
// though node ids and shard ids are sequential.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// How often the sweep runs an ownership audit probe: one owned node is
// spot-checked every 1-in-8 sweeps on average (shard RNG; never affects
// traffic).
constexpr uint32_t kAuditProbeMask = 7;

}  // namespace

PsimStats& PsimStats::operator+=(const PsimStats& o) {
  frames_sent += o.frames_sent;
  csma_attempts += o.csma_attempts;
  csma_busy += o.csma_busy;
  csma_failures += o.csma_failures;
  receptions_attempted += o.receptions_attempted;
  receptions_delivered += o.receptions_delivered;
  receptions_collided += o.receptions_collided;
  receptions_lost += o.receptions_lost;
  candidates_scanned += o.candidates_scanned;
  neighbor_updates += o.neighbor_updates;
  boundary_frames += o.boundary_frames;
  foreign_frames += o.foreign_frames;
  migrations_out += o.migrations_out;
  migrations_in += o.migrations_in;
  sweeps += o.sweeps;
  windows += o.windows;
  audit_probes += o.audit_probes;
  audit_mismatches += o.audit_mismatches;
  qp += o.qp;
  steady_allocs += o.steady_allocs;
  steady_alloc_bytes += o.steady_alloc_bytes;
  busy_s += o.busy_s;
  barrier_wait_s += o.barrier_wait_s;
  frames_mailbox_hwm = std::max(frames_mailbox_hwm, o.frames_mailbox_hwm);
  queries_mailbox_hwm =
      std::max(queries_mailbox_hwm, o.queries_mailbox_hwm);
  migrations_mailbox_hwm =
      std::max(migrations_mailbox_hwm, o.migrations_mailbox_hwm);
  return *this;
}

uint64_t PsimShard::ShardSeed(uint64_t run_seed, int shard_id) {
  return Mix64(run_seed ^
               Mix64(0x51A2Dull + static_cast<uint64_t>(shard_id)));
}

uint64_t PsimShard::NodeSeed(uint64_t run_seed, uint32_t node,
                             uint32_t lane) {
  return Mix64(run_seed ^ Mix64((uint64_t{node} << 8) | lane));
}

PsimShard::PsimShard(PsimWorld* world, int id)
    : world_(world),
      id_(id),
      sim_(world->config.scheduler),
      shard_rng_(ShardSeed(world->config.seed, id)) {
  // Pre-size every container the window loop grows, so the steady-state
  // halves of even short runs perform zero allocations (the net.allocs
  // gate). Frames per window are bounded by the tile population plus
  // mailed boundary traffic; scratch vectors by one cell neighborhood.
  const size_t frame_bound = std::max<size_t>(
      1024, 2 * static_cast<size_t>(world_->config.node_count) /
                static_cast<size_t>(world_->partition.shards()));
  for (WindowSlot& slot : slots_) {
    slot.cell_head.assign(
        static_cast<size_t>(world_->partition.cell_count()), -1);
    slot.frames.reserve(frame_bound);
    slot.next.reserve(frame_bound);
  }
  owned_.reserve(static_cast<size_t>(world_->config.node_count));
  migrated_out_.reserve(static_cast<size_t>(world_->config.node_count));
  delivery_order_.reserve(frame_bound);
  interferers_.reserve(4096);
  receivers_.reserve(4096);
  if (world_->config.query.enabled) {
    // Query slots grow to their per-window high water early in the run
    // (arrival rates are steady), so a modest reserve suffices for the
    // steady-state allocation gate.
    for (std::vector<PsimQueryFrame>& slot : qslots_) slot.reserve(64);
    qorder_.reserve(256);
    // Pre-warm the itinerary scratch at the workload's largest radius so
    // per-hop Rebuild calls never grow its segment buffers.
    ItineraryParams params;
    params.radius = std::max<double>(world_->query.max_radius, 1.0);
    params.num_sectors =
        std::max(1, world_->query.config.diknn.num_sectors);
    params.width = std::max(world_->query.itinerary_width, 1e-3);
    itinerary_scratch_.Rebuild(params);
  }
}

PsimShard::NeighborInbox* PsimShard::CreateInbox(int from) {
  inboxes_.push_back(std::make_unique<NeighborInbox>(
      from, world_->FrameMailboxCapacity(),
      world_->MigrationMailboxCapacity(),
      world_->QueryMailboxCapacity()));
  return inboxes_.back().get();
}

PsimShard::NeighborInbox* PsimShard::InboxFrom(int from) {
  for (const auto& box : inboxes_) {
    if (box->from == from) return box.get();
  }
  return nullptr;
}

void PsimShard::AddOutbox(int to, NeighborInbox* inbox) {
  outboxes_.emplace_back(to, inbox);
}

PsimShard::NeighborInbox* PsimShard::OutboxFor(int shard) {
  for (const auto& [to, box] : outboxes_) {
    if (to == shard) return box;
  }
  return nullptr;
}

PsimShard::NeighborInbox* PsimShard::RequireOutbox(int shard) {
  NeighborInbox* box = OutboxFor(shard);
  if (box == nullptr) std::abort();  // Partition adjacency violated.
  return box;
}

void PsimShard::AdoptNode(uint32_t i) {
  PsimNode& n = world_->nodes[i];
  assert(world_->partition.OwnerOfCell(n.cell) == id_);
  owned_.push_back(i);
  n.phase = PsimNode::Phase::kIdle;
  ScheduleNode(i, n.next_beacon);
}

void PsimShard::ScheduleNode(uint32_t i, SimTime t) {
  PsimNode& n = world_->nodes[i];
  n.event_time = t;
  n.event = sim_.ScheduleAt(t, [this, i] { OnNodeEvent(i); });
}

void PsimShard::OnNodeEvent(uint32_t i) {
  PsimNode& n = world_->nodes[i];
  n.event = 0;
  const SimTime now = sim_.Now();
  switch (n.phase) {
    case PsimNode::Phase::kIdle:
      StartCsma(i, now);
      break;
    case PsimNode::Phase::kBackoff:
      CsmaAttempt(i, now);
      break;
  }
}

void PsimShard::StartCsma(uint32_t i, SimTime now) {
  PsimNode& n = world_->nodes[i];
  n.backoffs = 0;
  n.be = static_cast<uint8_t>(world_->config.mac.min_be);
  n.phase = PsimNode::Phase::kBackoff;
  ScheduleBackoff(i, now);
}

void PsimShard::ScheduleBackoff(uint32_t i, SimTime now) {
  PsimNode& n = world_->nodes[i];
  const int slots = n.rng.UniformInt(0, (1 << n.be) - 1);
  ScheduleNode(i, now + slots * world_->config.mac.backoff_slot_s);
}

void PsimShard::CsmaAttempt(uint32_t i, SimTime now) {
  PsimNode& n = world_->nodes[i];
  ++stats_.csma_attempts;
  const Point pos = n.mobility->PositionAt(now);
  if (!SenseBusy(pos, now)) {
    Transmit(i, now, pos);
    return;
  }
  ++stats_.csma_busy;
  ++n.backoffs;
  if (n.backoffs > world_->config.mac.max_csma_backoffs) {
    ++stats_.csma_failures;
    ScheduleNextBeacon(i);  // Skip this beacon round entirely.
    return;
  }
  n.be = static_cast<uint8_t>(
      std::min<int>(n.be + 1, world_->config.mac.max_be));
  ScheduleBackoff(i, now);
}

bool PsimShard::SenseBusy(const Point& pos, SimTime now) const {
  // Carrier sense is quantized to the previous window: only frames
  // transmitted in window k-1 can still be on the air (duration <= L),
  // and — uniformly for local and foreign traffic — frames of the
  // current window are not yet visible. The quantization is what gives
  // the conservative sync a full window of lookahead (docs/ENGINE.md).
  if (current_window_ == 0) return false;
  const WindowSlot& slot = slots_[(current_window_ - 1) & 3];
  const FieldPartition& part = world_->partition;
  const double range2 =
      world_->config.radio_range_m * world_->config.radio_range_m;
  const int32_t center = part.CellOf(pos);
  const int cx = part.ColumnOf(center);
  const int cy = static_cast<int>(center) / part.nx();
  for (int dy = -1; dy <= 1; ++dy) {
    const int y = cy + dy;
    if (y < 0 || y >= part.ny()) continue;
    for (int dx = -1; dx <= 1; ++dx) {
      const int x = cx + dx;
      if (x < 0 || x >= part.nx()) continue;
      const int32_t head =
          slot.cell_head[static_cast<size_t>(y * part.nx() + x)];
      for (int32_t f = head; f >= 0; f = slot.next[f]) {
        const PsimFrame& g = slot.frames[f];
        if (g.end > now && SquaredDistance(g.origin, pos) <= range2) {
          return true;
        }
      }
    }
  }
  return false;
}

void PsimShard::Transmit(uint32_t i, SimTime now, const Point& pos) {
  PsimNode& n = world_->nodes[i];
  PsimFrame f;
  f.origin = pos;
  f.t = now;
  f.end = now + world_->frame_air_time;
  f.speed = static_cast<float>(n.mobility->SpeedAt(now));
  f.sender = i;
  f.seq = n.seq++;
  f.cell = world_->partition.CellOf(pos);
  f.window = static_cast<uint32_t>(current_window_);
  ++stats_.frames_sent;
  AppendFrame(f);

  // Hand a copy to each adjacent tile the frame's 2-cell interference
  // reach touches. The origin can drift one cell outside this shard's
  // tile, but never further (the bucket drift bound), and tiles are
  // >= kMinTileSpan cells per axis, so the owner's immediate neighbors
  // always suffice.
  std::array<int, 8> recipients;
  const int nrec =
      world_->partition.FrameRecipients(f.cell, id_, &recipients);
  for (int r = 0; r < nrec; ++r) {
    RequireOutbox(recipients[r])->frames.Push(f);
    ++stats_.boundary_frames;
  }
  ScheduleNextBeacon(i);
}

void PsimShard::AppendFrame(const PsimFrame& f) {
  WindowSlot& slot = Slot(f.window);
  const int32_t index = static_cast<int32_t>(slot.frames.size());
  slot.frames.push_back(f);
  int32_t& head = slot.cell_head[static_cast<size_t>(f.cell)];
  slot.next.push_back(head);
  head = index;
}

void PsimShard::ScheduleNextBeacon(uint32_t i) {
  PsimNode& n = world_->nodes[i];
  n.next_beacon += world_->config.beacon_interval;
  n.phase = PsimNode::Phase::kIdle;
  ScheduleNode(i, n.next_beacon);
}

void PsimShard::SweepIfDue(uint64_t k) {
  const FieldPartition& part = world_->partition;
  if (k % static_cast<uint64_t>(part.refresh_windows()) != 0) return;
  ++stats_.sweeps;
  const SimTime now = k * part.lookahead();
  migrated_out_.clear();
  const bool query_enabled = world_->config.query.enabled;
  for (const uint32_t i : owned_) {
    PsimNode& n = world_->nodes[i];
    if (!world_->alive[i]) continue;
    if (!world_->kill_window.empty() && world_->kill_window[i] <= k) {
      // Node fault: silence it in place. The bucket entry stays (the
      // corpse keeps its last cell), but no event ever fires again and
      // receivers/collectors skip it via the alive flag.
      world_->alive[i] = 0;
      if (n.event != 0) {
        sim_.Cancel(n.event);
        n.event = 0;
      }
      continue;
    }
    n.neighbors.Expire(now);
    const Point pos = n.mobility->PositionAt(now);
    const int32_t cell = part.CellOf(pos);
    if (cell == n.cell) continue;
    // Re-bucket: remove from the old cell; insert locally or mail the
    // node to the new owner (always this shard or an adjacent one — a
    // node drifts at most one cell per sweep).
    std::vector<uint32_t>& old_bucket = world_->cell_nodes[n.cell];
    old_bucket.erase(std::find(old_bucket.begin(), old_bucket.end(), i));
    n.cell = cell;
    const int owner = part.OwnerOfCell(cell);
    if (owner == id_) {
      world_->cell_nodes[cell].push_back(i);
      continue;
    }
    NeighborInbox* box = RequireOutbox(owner);
    sim_.Cancel(n.event);
    n.event = 0;
    if (query_enabled && world_->query.roles[i] > 0) {
      // The node carries live query state (home merge state or the sink
      // front end); the mailbox's release/acquire pair hands every prior
      // write to the new owner before its first read.
      ++stats_.qp.state_migrations;
    }
    box->migrations.Push(i);
    ++stats_.migrations_out;
    migrated_out_.push_back(i);
  }
  if (!migrated_out_.empty()) {
    owned_.erase(std::remove_if(owned_.begin(), owned_.end(),
                                [this](uint32_t i) {
                                  return std::find(migrated_out_.begin(),
                                                   migrated_out_.end(),
                                                   i) != migrated_out_.end();
                                }),
                 owned_.end());
    if (query_enabled) {
      // A migrating node's pending query frames travel with it. The new
      // owner's drain of this same window files them, and no frame
      // applies *on* a sweep window (SkipSweepWindow), so every
      // forwarded frame is re-filed strictly before its apply window —
      // application timing stays a pure function of the traffic.
      for (auto& slot : qslots_) {
        size_t kept = 0;
        for (const PsimQueryFrame& f : slot) {
          if (std::find(migrated_out_.begin(), migrated_out_.end(),
                        f.dest) == migrated_out_.end()) {
            slot[kept++] = f;
            continue;
          }
          RequireOutbox(part.OwnerOfCell(world_->nodes[f.dest].cell))
              ->queries.Push(f);
          ++stats_.qp.boundary_frames;
        }
        slot.resize(kept);
      }
    }
  }
  // Ownership audit probe: a shard-RNG spot check that the partition
  // mapping and the owned list agree. Uses the per-shard stream forked
  // from (seed, shard id) — the draw count depends on the partitioning,
  // which is why traffic decisions must never touch this stream.
  if (!owned_.empty() &&
      (shard_rng_.NextUint32() & kAuditProbeMask) == 0) {
    const uint32_t pick = static_cast<uint32_t>(shard_rng_.UniformInt(
        0, static_cast<int>(owned_.size()) - 1));
    ++stats_.audit_probes;
    if (part.OwnerOfCell(world_->nodes[owned_[pick]].cell) != id_) {
      ++stats_.audit_mismatches;
    }
  }
}

void PsimShard::DrainMailboxes(uint64_t k) {
  // The slot for window k held window k-4, which was fully decided at
  // window k-2; clear it before any early window-k frame lands in it.
  Slot(k).Clear();

  const auto adopt = [this](uint32_t i) {
    PsimNode& n = world_->nodes[i];
    world_->cell_nodes[n.cell].push_back(i);
    owned_.push_back(i);
    ++stats_.migrations_in;
    // The pending event was cancelled by the previous owner; re-arm it
    // at the same absolute time. The sweep ran at this window's start,
    // so event_time >= the window start = this shard's clock.
    ScheduleNode(i, n.event_time);
  };
  // Inboxes drain in creation order (ascending producer id), so the
  // adoption order — and every downstream scan — is deterministic.
  for (const auto& box : inboxes_) {
    stats_.migrations_mailbox_hwm = std::max(
        stats_.migrations_mailbox_hwm, box->migrations.SizeApprox());
    box->migrations.Drain(adopt);
  }

  const auto chain = [this](const PsimFrame& f) {
    AppendFrame(f);
    ++stats_.foreign_frames;
  };
  for (const auto& box : inboxes_) {
    // High-water sampling at drain start. Racy against the producer's
    // current process phase by design — bench-only observability, never
    // part of the obs snapshot or the invariant comparison.
    stats_.frames_mailbox_hwm =
        std::max(stats_.frames_mailbox_hwm, box->frames.SizeApprox());
    box->frames.Drain(chain);
  }

  if (world_->config.query.enabled) {
    const auto file = [this](const PsimQueryFrame& f) {
      ++stats_.qp.foreign_frames;
      // The destination may have migrated in this window's sweep while
      // the frame sat in the mailbox; pass it straight on. The current
      // owner drains it no later than next window, still ahead of the
      // frame's apply window (never a sweep window), so the relay costs
      // no simulated time.
      const int owner =
          world_->partition.OwnerOfCell(world_->nodes[f.dest].cell);
      if (owner != id_) {
        RequireOutbox(owner)->queries.Push(f);
        ++stats_.qp.boundary_frames;
        return;
      }
      qslots_[f.window % kQuerySlotCount].push_back(f);
    };
    for (const auto& box : inboxes_) {
      stats_.queries_mailbox_hwm =
          std::max(stats_.queries_mailbox_hwm, box->queries.SizeApprox());
      box->queries.Drain(file);
    }
  }
}

void PsimShard::DrainRemaining() {
  // Frames mailed during the final windows never get a drain pass of
  // their own; consume them (after the engine's final barrier) so every
  // boundary frame is accounted for exactly once — boundary_frames ==
  // foreign_frames summed over shards, deterministically, even though
  // *when* a frame is drained can race benignly against the producer's
  // process phase.
  const auto count = [this](const PsimFrame&) { ++stats_.foreign_frames; };
  const auto count_query = [this](const PsimQueryFrame&) {
    ++stats_.qp.foreign_frames;
  };
  for (const auto& box : inboxes_) {
    box->frames.Drain(count);
    box->queries.Drain(count_query);
  }
}

void PsimShard::ProcessWindow(uint64_t k) {
  current_window_ = k;
  ++stats_.windows;
  if (k >= 2) DeliverWindow(k - 2);
  if (world_->config.query.enabled) ProcessQueryWindow(k);
  sim_.RunBefore((k + 1) * world_->partition.lookahead());
}

void PsimShard::DeliverWindow(uint64_t window) {
  WindowSlot& slot = Slot(window);
  if (slot.frames.empty()) return;
  // Deliveries happen in (t, sender, seq) order so each receiver's
  // neighbor-table insertion order — and therefore every downstream scan
  // — is a pure function of the traffic, not of the shard count. Sort a
  // permutation: the cell chains must survive for the k-1/k+1 collision
  // prefilter of later windows.
  delivery_order_.resize(slot.frames.size());
  for (uint32_t i = 0; i < delivery_order_.size(); ++i) {
    delivery_order_[i] = i;
  }
  std::sort(delivery_order_.begin(), delivery_order_.end(),
            [&slot](uint32_t a, uint32_t b) {
              const PsimFrame& fa = slot.frames[a];
              const PsimFrame& fb = slot.frames[b];
              if (fa.t != fb.t) return fa.t < fb.t;
              if (fa.sender != fb.sender) return fa.sender < fb.sender;
              return fa.seq < fb.seq;
            });
  const SimTime now = current_window_ * world_->partition.lookahead();
  for (const uint32_t index : delivery_order_) {
    DeliverFrame(slot.frames[index], now);
  }
}

void PsimShard::DeliverFrame(const PsimFrame& f, SimTime now) {
  const FieldPartition& part = world_->partition;
  const double range = world_->config.radio_range_m;
  const double range2 = range * range;
  const int fx = part.ColumnOf(f.cell);
  const int fy = static_cast<int>(f.cell) / part.nx();

  // Candidate interferers: every known frame within two cells of the
  // origin in the three windows that can overlap f. Any transmission
  // within radio range of one of f's receivers is within 2r of f's
  // origin, hence within this 5x5 block — frames this shard doesn't
  // hold are provably out of range of every receiver it owns.
  interferers_.clear();
  for (uint64_t w = f.window == 0 ? 0 : f.window - 1;
       w <= f.window + 1; ++w) {
    const WindowSlot& ws = slots_[w & 3];
    if (ws.frames.empty()) continue;
    for (int dy = -2; dy <= 2; ++dy) {
      const int y = fy + dy;
      if (y < 0 || y >= part.ny()) continue;
      for (int dx = -2; dx <= 2; ++dx) {
        const int x = fx + dx;
        if (x < 0 || x >= part.nx()) continue;
        const int32_t head =
            ws.cell_head[static_cast<size_t>(y * part.nx() + x)];
        for (int32_t gi = head; gi >= 0; gi = ws.next[gi]) {
          const PsimFrame& g = ws.frames[gi];
          if (g.sender == f.sender && g.seq == f.seq) continue;
          if (g.t < f.end && g.end > f.t &&
              SquaredDistance(g.origin, f.origin) <= 4.0 * range2) {
            interferers_.push_back(&g);
          }
        }
      }
    }
  }

  // Receivers: nodes bucketed in the 3x3 block around the origin *in
  // this shard's cells* — neighbor shards deliver their own copy of f
  // to their own cells, so the union over shards is exactly the serial
  // receiver set, with no cell visited twice.
  receivers_.clear();
  for (int dy = -1; dy <= 1; ++dy) {
    const int y = fy + dy;
    if (y < 0 || y >= part.ny()) continue;
    for (int dx = -1; dx <= 1; ++dx) {
      const int x = fx + dx;
      if (x < 0 || x >= part.nx()) continue;
      if (part.OwnerAt(x, y) != id_) continue;
      for (const uint32_t i : world_->cell_nodes[y * part.nx() + x]) {
        // Dead nodes keep their bucket entry but never receive.
        if (i != f.sender && world_->alive[i]) receivers_.push_back(i);
      }
    }
  }
  stats_.candidates_scanned += receivers_.size();
  std::sort(receivers_.begin(), receivers_.end());

  for (const uint32_t r : receivers_) {
    PsimNode& node = world_->nodes[r];
    const Point pos = node.mobility->PositionAt(now);
    if (SquaredDistance(pos, f.origin) > range2) continue;
    ++stats_.receptions_attempted;
    bool collided = false;
    for (const PsimFrame* g : interferers_) {
      if (SquaredDistance(g->origin, pos) <= range2) {
        collided = true;
        break;
      }
    }
    if (collided) {
      ++stats_.receptions_collided;
      continue;
    }
    if (world_->config.loss_rate > 0.0 && LossDraw(f, r)) {
      ++stats_.receptions_lost;
      continue;
    }
    ++stats_.receptions_delivered;
    node.neighbors.Update(static_cast<NodeId>(f.sender), f.origin,
                          static_cast<double>(f.speed), now);
    ++stats_.neighbor_updates;
  }
}

bool PsimShard::LossDraw(const PsimFrame& f, uint32_t receiver) const {
  // Stateless per-(frame, receiver) Bernoulli draw: hashing instead of a
  // shared RNG stream makes the outcome independent of delivery order
  // and of which shard performs it.
  const uint64_t uid = (uint64_t{f.sender} << 32) | f.seq;
  const uint64_t h =
      Mix64(world_->config.seed ^ Mix64(uid) ^ Mix64(0xD1CEull + receiver));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
  return u < world_->config.loss_rate;
}

void PsimShard::FinalizeStats() {
  stats_.steady_allocs = allocs_.allocations;
  stats_.steady_alloc_bytes = allocs_.bytes;
}

bool PsimShard::OwnershipInvariantHolds() const {
  for (const uint32_t i : owned_) {
    const PsimNode& n = world_->nodes[i];
    if (world_->partition.OwnerOfCell(n.cell) != id_) return false;
    // Dead nodes hold no event but stay bucketed at their last cell.
    if (world_->alive[i] && (n.event == 0 || !sim_.IsPending(n.event))) {
      return false;
    }
    const std::vector<uint32_t>& bucket = world_->cell_nodes[n.cell];
    if (std::count(bucket.begin(), bucket.end(), i) != 1) return false;
  }
  return true;
}

}  // namespace diknn
