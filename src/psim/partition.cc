#include "psim/partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace diknn {

double FieldPartition::Lookahead(const PsimNetParams& params) {
  const double air_time =
      static_cast<double>(params.max_frame_bytes) * 8.0 /
      params.bit_rate_bps;
  return std::max(air_time, params.backoff_slot_s);
}

FieldPartition::FieldPartition(const PsimNetParams& params,
                               int requested_shards)
    : requested_shards_(std::max(1, requested_shards)) {
  lookahead_ = Lookahead(params);
  // Sweeps land on window boundaries, so the achievable refresh period is
  // a whole number of windows; cell size is derived from the *effective*
  // period so the drift bound (<= one cell per refresh) stays exact.
  refresh_windows_ = std::max(
      1, static_cast<int>(
             std::llround(params.grid_refresh_interval_s / lookahead_)));
  const double drift = params.max_speed * effective_refresh_s();
  cell_size_ = params.radio_range_m + drift;
  assert(cell_size_ > 0.0);

  nx_ = std::max(
      1, static_cast<int>(std::ceil(params.field.Width() / cell_size_)));
  ny_ = std::max(
      1, static_cast<int>(std::ceil(params.field.Height() / cell_size_)));

  shards_ = std::clamp(requested_shards_, 1,
                       std::max(1, nx_ / kMinStripColumns));

  // Columns are dealt out as evenly as possible; the first nx % shards
  // strips get one extra column. Every strip is >= kMinStripColumns wide
  // (guaranteed by the clamp above) except in the single-shard case.
  column_owner_.resize(nx_);
  first_column_.resize(shards_);
  strip_width_.resize(shards_);
  const int base = nx_ / shards_;
  const int extra = nx_ % shards_;
  int column = 0;
  for (int s = 0; s < shards_; ++s) {
    first_column_[s] = column;
    strip_width_[s] = base + (s < extra ? 1 : 0);
    for (int i = 0; i < strip_width_[s]; ++i) column_owner_[column++] = s;
  }
  assert(column == nx_);
}

}  // namespace diknn
