#include "psim/partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace diknn {

namespace {

// Deal `count` units across `parts` as evenly as possible: the first
// count % parts partitions get one extra unit. Fills first/width.
void DealAxis(int count, int parts, std::vector<int>* unit_tile,
              std::vector<int>* first, std::vector<int>* width) {
  unit_tile->resize(static_cast<size_t>(count));
  first->resize(static_cast<size_t>(parts));
  width->resize(static_cast<size_t>(parts));
  const int base = count / parts;
  const int extra = count % parts;
  int unit = 0;
  for (int p = 0; p < parts; ++p) {
    (*first)[static_cast<size_t>(p)] = unit;
    const int w = base + (p < extra ? 1 : 0);
    (*width)[static_cast<size_t>(p)] = w;
    for (int i = 0; i < w; ++i) {
      (*unit_tile)[static_cast<size_t>(unit++)] = p;
    }
  }
  assert(unit == count);
}

}  // namespace

double FieldPartition::Lookahead(const PsimNetParams& params) {
  const double air_time =
      static_cast<double>(params.max_frame_bytes) * 8.0 /
      params.bit_rate_bps;
  return std::max(air_time, params.backoff_slot_s);
}

FieldPartition::FieldPartition(const PsimNetParams& params,
                               int requested_shards)
    : requested_shards_(std::max(1, requested_shards)) {
  lookahead_ = Lookahead(params);
  // Sweeps land on window boundaries, so the achievable refresh period is
  // a whole number of windows; cell size is derived from the *effective*
  // period so the drift bound (<= one cell per refresh) stays exact.
  refresh_windows_ = std::max(
      1, static_cast<int>(
             std::llround(params.grid_refresh_interval_s / lookahead_)));
  const double drift = params.max_speed * effective_refresh_s();
  cell_size_ = params.radio_range_m + drift;
  assert(cell_size_ > 0.0);

  nx_ = std::max(
      1, static_cast<int>(std::ceil(params.field.Width() / cell_size_)));
  ny_ = std::max(
      1, static_cast<int>(std::ceil(params.field.Height() / cell_size_)));

  // Tiling selection. Column strips stay the layout whenever they can
  // grant the request outright (fewest neighbor links, and the layout
  // every strips-era result was produced under); the second axis only
  // engages when the field is too narrow for `requested` strips. Among
  // the feasible rows x cols factorizations of the largest grantable
  // shard count, prefer the one whose tiles are closest to square
  // (maximize the smaller tile dimension).
  const int max_tx = std::max(1, nx_ / kMinTileSpan);
  const int max_ty = std::max(1, ny_ / kMinTileSpan);
  if (requested_shards_ <= max_tx) {
    tiles_x_ = requested_shards_;
    tiles_y_ = 1;
  } else {
    tiles_x_ = max_tx;
    tiles_y_ = 1;
    const int cap = std::min(requested_shards_, max_tx * max_ty);
    for (int s = cap; s > max_tx; --s) {
      int best_min_span = -1;
      int best_tx = 0;
      int best_ty = 0;
      for (int ty = 1; ty <= max_ty; ++ty) {
        if (s % ty != 0) continue;
        const int tx = s / ty;
        if (tx > max_tx) continue;
        const int min_span = std::min(nx_ / tx, ny_ / ty);
        if (min_span > best_min_span) {
          best_min_span = min_span;
          best_tx = tx;
          best_ty = ty;
        }
      }
      if (best_min_span >= 0) {
        tiles_x_ = best_tx;
        tiles_y_ = best_ty;
        break;
      }
    }
  }
  shards_ = tiles_x_ * tiles_y_;
  assert(shards_ >= 1 && shards_ <= requested_shards_);
  assert(tiles_x_ == 1 || nx_ / tiles_x_ >= kMinTileSpan);
  assert(tiles_y_ == 1 || ny_ / tiles_y_ >= kMinTileSpan);

  DealAxis(nx_, tiles_x_, &col_tile_, &tile_first_col_, &tile_cols_);
  DealAxis(ny_, tiles_y_, &row_tile_, &tile_first_row_, &tile_rows_);

  // Precompute the 8-neighborhood adjacency (ascending shard ids).
  neighbors_.resize(static_cast<size_t>(shards_));
  for (int s = 0; s < shards_; ++s) {
    const int ox = s % tiles_x_;
    const int oy = s / tiles_x_;
    for (int dy = -1; dy <= 1; ++dy) {
      const int ty = oy + dy;
      if (ty < 0 || ty >= tiles_y_) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const int tx = ox + dx;
        if (tx < 0 || tx >= tiles_x_) continue;
        if (dx == 0 && dy == 0) continue;
        neighbors_[static_cast<size_t>(s)].push_back(ty * tiles_x_ + tx);
      }
    }
  }
}

}  // namespace diknn
