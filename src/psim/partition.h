// Spatial field partition for the conservative parallel engine.
//
// The field is covered by the same kind of cell grid the serial channel
// uses (cell side = radio range + worst-case drift between bucket
// refreshes) and split into rectangular tiles, one tile per shard. The
// tiling is a rows x cols grid over the cell axes: column strips
// (tiles_y == 1) remain the layout whenever strips alone can satisfy the
// requested shard count — they minimize the number of neighbor links —
// and the partition only grows a second tiled axis when the field is too
// narrow for that many strips (square fields at 8+ shards), which keeps
// the perimeter/area ratio of each shard sane instead of degenerating
// into 1-cell slivers.
//
// Cells are the partition unit because the radio's interference
// neighborhood is a fixed number of cells wide: a frame transmitted from
// cell c can only be sensed, received, or collided with by nodes
// bucketed within two cells of c (see docs/SIMULATOR.md for the
// derivation), so with tiles at least kMinTileSpan cells wide on every
// partitioned axis, every frame concerns at most the owning shard and
// its 8 immediate neighbors — cross-shard traffic flows only between
// adjacent tiles.
//
// Lookahead: all synchronization happens on a fixed window of length
// Lookahead() = max(air time of the largest substrate frame, one CSMA
// backoff slot). Because every frame's duration is <= the window, a
// frame transmitted in window k can overlap transmissions only from
// windows k-1..k+1 and is fully decided by window k+2 — that bound is
// what lets shards run a whole window ahead of their neighbors between
// barriers (docs/ENGINE.md). The same bound covers unicast query hops:
// a GPSR/DIKNN hop is at least one frame air time, so the window
// protocol already orders multi-hop causality.

#ifndef DIKNN_PSIM_PARTITION_H_
#define DIKNN_PSIM_PARTITION_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/geometry.h"

namespace diknn {

/// The substrate parameters the partition geometry depends on.
struct PsimNetParams {
  Rect field = Rect::Field(115.0, 115.0);
  double radio_range_m = 20.0;
  double bit_rate_bps = 250e3;
  double max_speed = 10.0;               ///< mu_max (m/s).
  double grid_refresh_interval_s = 0.25; ///< Target re-bucket period.
  double backoff_slot_s = 320e-6;        ///< aUnitBackoffPeriod.
  size_t max_frame_bytes = 23;           ///< Largest frame on the air.
};

class FieldPartition {
 public:
  /// Tiles narrower than this on a partitioned axis could leak
  /// interference past an adjacent shard (a frame drifts one cell out of
  /// its tile and its 2-cell interference reach would cross a 2-cell
  /// neighbor entirely), so the effective shard count is clamped to what
  /// (nx / kMinTileSpan) x (ny / kMinTileSpan) tiles can grant.
  static constexpr int kMinTileSpan = 3;
  /// Historical name from the strips-only engine; same constant.
  static constexpr int kMinStripColumns = kMinTileSpan;

  FieldPartition(const PsimNetParams& params, int requested_shards);

  /// Conservative window length (s): the largest frame air time, never
  /// below one CSMA backoff slot.
  static double Lookahead(const PsimNetParams& params);

  int shards() const { return shards_; }
  int requested_shards() const { return requested_shards_; }
  double lookahead() const { return lookahead_; }
  double cell_size() const { return cell_size_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int cell_count() const { return nx_ * ny_; }
  /// Tiling shape: shards() == tiles_x() * tiles_y(). Column strips have
  /// tiles_y() == 1.
  int tiles_x() const { return tiles_x_; }
  int tiles_y() const { return tiles_y_; }
  /// Windows between bucket-refresh sweeps; sweeps fire on windows k with
  /// k % refresh_windows() == 0, so the effective refresh period is
  /// refresh_windows() * lookahead().
  int refresh_windows() const { return refresh_windows_; }
  double effective_refresh_s() const { return refresh_windows_ * lookahead_; }

  /// Grid cell containing `p` (clamped into the field).
  int32_t CellOf(const Point& p) const {
    int ix = static_cast<int>(p.x / cell_size_);
    int iy = static_cast<int>(p.y / cell_size_);
    if (ix < 0) ix = 0;
    if (ix >= nx_) ix = nx_ - 1;
    if (iy < 0) iy = 0;
    if (iy >= ny_) iy = ny_ - 1;
    return iy * nx_ + ix;
  }

  int ColumnOf(int32_t cell) const { return static_cast<int>(cell) % nx_; }
  int RowOf(int32_t cell) const { return static_cast<int>(cell) / nx_; }

  /// Owner shard of the tile containing (column, row).
  int OwnerAt(int column, int row) const {
    return row_tile_[row] * tiles_x_ + col_tile_[column];
  }
  int OwnerOfCell(int32_t cell) const {
    return OwnerAt(ColumnOf(cell), RowOf(cell));
  }
  /// Strip-mode convenience (tiles_y() == 1): the owner of a column.
  int OwnerOfColumn(int column) const { return col_tile_[column]; }

  /// Inclusive column range [first, last] of `shard`'s tile.
  std::pair<int, int> ColumnRange(int shard) const {
    const int tx = shard % tiles_x_;
    return {tile_first_col_[tx], tile_first_col_[tx] + tile_cols_[tx] - 1};
  }
  /// Inclusive row range [first, last] of `shard`'s tile.
  std::pair<int, int> RowRange(int shard) const {
    const int ty = shard / tiles_x_;
    return {tile_first_row_[ty], tile_first_row_[ty] + tile_rows_[ty] - 1};
  }

  /// True when a frame whose origin falls in `column` must also be
  /// handed to the shard west (resp. east) of the column's owner: its
  /// 2-cell interference reach extends into that neighbor's tile.
  /// `column` may lie one column outside the owner's tile (a node's
  /// true position can drift one cell past its bucket).
  bool NeedsWestNeighbor(int column, int owner) const {
    const int tx = owner % tiles_x_;
    return tx > 0 && column <= tile_first_col_[tx] + 1;
  }
  bool NeedsEastNeighbor(int column, int owner) const {
    const int tx = owner % tiles_x_;
    return tx + 1 < tiles_x_ &&
           column >= tile_first_col_[tx] + tile_cols_[tx] - 2;
  }

  /// Adjacent shards of `shard` (8-neighborhood over tiles), in ascending
  /// shard-id order. The partition guarantees every cross-shard exchange —
  /// boundary frames, node migrations, unicast query hops — stays within
  /// this set (tiles are >= kMinTileSpan cells wide per partitioned axis,
  /// and every reach is <= 2 cells + 1 cell of bucket drift).
  const std::vector<int>& NeighborShards(int shard) const {
    return neighbors_[static_cast<size_t>(shard)];
  }

  /// Fills `out` with the neighbor shards (ascending id order) whose tile
  /// the 2-cell interference reach of a frame bucketed at `cell` touches;
  /// returns the count. `owner` is the sending shard; `cell` may drift
  /// one cell outside its tile, never further.
  int FrameRecipients(int32_t cell, int owner,
                      std::array<int, 8>* out) const {
    const int cx = ColumnOf(cell);
    const int cy = RowOf(cell);
    const int ox = owner % tiles_x_;
    const int oy = owner / tiles_x_;
    int count = 0;
    for (int dy = -1; dy <= 1; ++dy) {
      const int ty = oy + dy;
      if (ty < 0 || ty >= tiles_y_) continue;
      const int row_lo = tile_first_row_[ty];
      const int row_hi = row_lo + tile_rows_[ty] - 1;
      if (cy + 2 < row_lo || cy - 2 > row_hi) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const int tx = ox + dx;
        if (tx < 0 || tx >= tiles_x_) continue;
        if (dx == 0 && dy == 0) continue;
        const int col_lo = tile_first_col_[tx];
        const int col_hi = col_lo + tile_cols_[tx] - 1;
        if (cx + 2 < col_lo || cx - 2 > col_hi) continue;
        (*out)[static_cast<size_t>(count++)] = ty * tiles_x_ + tx;
      }
    }
    return count;
  }

 private:
  int requested_shards_ = 1;
  int shards_ = 1;
  double lookahead_ = 0.0;
  double cell_size_ = 0.0;
  int nx_ = 1;
  int ny_ = 1;
  int tiles_x_ = 1;
  int tiles_y_ = 1;
  int refresh_windows_ = 1;
  std::vector<int> col_tile_;        ///< nx entries: column -> tile x.
  std::vector<int> row_tile_;        ///< ny entries: row -> tile y.
  std::vector<int> tile_first_col_;  ///< Per tile column.
  std::vector<int> tile_cols_;
  std::vector<int> tile_first_row_;  ///< Per tile row.
  std::vector<int> tile_rows_;
  std::vector<std::vector<int>> neighbors_;  ///< Per shard, ascending.
};

}  // namespace diknn

#endif  // DIKNN_PSIM_PARTITION_H_
