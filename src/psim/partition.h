// Spatial field partition for the conservative parallel engine.
//
// The field is covered by the same kind of cell grid the serial channel
// uses (cell side = radio range + worst-case drift between bucket
// refreshes) and split into vertical column strips, one strip per shard.
// Columns are the partition unit because the radio's interference
// neighborhood is a fixed number of columns wide: a frame transmitted
// from column c can only be sensed, received, or collided with by nodes
// bucketed within two columns of c (see docs/SIMULATOR.md for the
// derivation), so with strips at least kMinStripColumns wide every frame
// concerns at most the owning shard and its immediate west/east
// neighbors — cross-shard traffic flows only between adjacent strips.
//
// Lookahead: all synchronization happens on a fixed window of length
// Lookahead() = max(air time of the largest substrate frame, one CSMA
// backoff slot). Because every frame's duration is <= the window, a
// frame transmitted in window k can overlap transmissions only from
// windows k-1..k+1 and is fully decided by window k+2 — that bound is
// what lets shards run a whole window ahead of their neighbors between
// barriers (docs/ENGINE.md).

#ifndef DIKNN_PSIM_PARTITION_H_
#define DIKNN_PSIM_PARTITION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/geometry.h"

namespace diknn {

/// The substrate parameters the partition geometry depends on.
struct PsimNetParams {
  Rect field = Rect::Field(115.0, 115.0);
  double radio_range_m = 20.0;
  double bit_rate_bps = 250e3;
  double max_speed = 10.0;               ///< mu_max (m/s).
  double grid_refresh_interval_s = 0.25; ///< Target re-bucket period.
  double backoff_slot_s = 320e-6;        ///< aUnitBackoffPeriod.
  size_t max_frame_bytes = 23;           ///< Largest frame on the air.
};

class FieldPartition {
 public:
  /// Strips narrower than this could leak interference past an adjacent
  /// shard (a frame drifts one column out of its strip and its 2-column
  /// interference reach would cross a 2-column neighbor entirely), so
  /// the effective shard count is clamped to nx / kMinStripColumns.
  static constexpr int kMinStripColumns = 3;

  FieldPartition(const PsimNetParams& params, int requested_shards);

  /// Conservative window length (s): the largest frame air time, never
  /// below one CSMA backoff slot.
  static double Lookahead(const PsimNetParams& params);

  int shards() const { return shards_; }
  int requested_shards() const { return requested_shards_; }
  double lookahead() const { return lookahead_; }
  double cell_size() const { return cell_size_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int cell_count() const { return nx_ * ny_; }
  /// Windows between bucket-refresh sweeps; sweeps fire on windows k with
  /// k % refresh_windows() == 0, so the effective refresh period is
  /// refresh_windows() * lookahead().
  int refresh_windows() const { return refresh_windows_; }
  double effective_refresh_s() const { return refresh_windows_ * lookahead_; }

  /// Grid cell containing `p` (clamped into the field).
  int32_t CellOf(const Point& p) const {
    int ix = static_cast<int>(p.x / cell_size_);
    int iy = static_cast<int>(p.y / cell_size_);
    if (ix < 0) ix = 0;
    if (ix >= nx_) ix = nx_ - 1;
    if (iy < 0) iy = 0;
    if (iy >= ny_) iy = ny_ - 1;
    return iy * nx_ + ix;
  }

  int ColumnOf(int32_t cell) const { return static_cast<int>(cell) % nx_; }

  int OwnerOfColumn(int column) const { return column_owner_[column]; }
  int OwnerOfCell(int32_t cell) const {
    return column_owner_[ColumnOf(cell)];
  }

  /// Inclusive column range [first, last] owned by `shard`.
  std::pair<int, int> ColumnRange(int shard) const {
    return {first_column_[shard],
            first_column_[shard] + strip_width_[shard] - 1};
  }

  /// True when a frame whose origin falls in `column` must also be
  /// handed to the shard west (resp. east) of the column's owner: its
  /// 2-column interference reach extends into that neighbor's strip.
  /// `column` may lie one column outside the owner's strip (a node's
  /// true position can drift one column past its bucket).
  bool NeedsWestNeighbor(int column, int owner) const {
    return owner > 0 && column <= first_column_[owner] + 1;
  }
  bool NeedsEastNeighbor(int column, int owner) const {
    return owner + 1 < shards_ &&
           column >= first_column_[owner] + strip_width_[owner] - 2;
  }

 private:
  int requested_shards_ = 1;
  int shards_ = 1;
  double lookahead_ = 0.0;
  double cell_size_ = 0.0;
  int nx_ = 1;
  int ny_ = 1;
  int refresh_windows_ = 1;
  std::vector<int> column_owner_;  ///< nx entries.
  std::vector<int> first_column_;  ///< Per shard.
  std::vector<int> strip_width_;   ///< Per shard.
};

}  // namespace diknn

#endif  // DIKNN_PSIM_PARTITION_H_
