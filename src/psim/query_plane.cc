// Query plane of the conservative parallel engine (see query_plane.h for
// the protocol argument). Split in three parts:
//
//   1. BuildQueryPlane / FinalizeQueryPlane — single-threaded bookends
//      run by the engine before the shards are constructed and after the
//      worker threads joined;
//   2. the PsimShard frame handlers — the DIKNN emulation proper: request
//      routing, itinerary traversal with collection, sector-result merge,
//      reply delivery;
//   3. the sink duties — arrival admission through the serving front end
//      (cache, coalescing, shedding, bounded inflight + queue), timeout
//      scans, and SLO accounting.
//
// Determinism note repeated from the header: every decision below reads
// only (a) state owned by the shard executing it at that window, (b)
// immutable configuration, or (c) cross-phase state written strictly on
// the other side of a barrier (node cells, alive flags). Losses come from
// a stateless hash over (seed, sender, seq, dest, retries) — the retry
// counter is folded in so a retried hop redraws instead of losing
// forever.

#include "psim/query_plane.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/rng.h"
#include "knn/itinerary.h"
#include "psim/shard.h"
#include "routing/greedy.h"

namespace diknn {

namespace {

// splitmix64 finalizer (same mixer as the substrate's frame-loss hash,
// under a different salt so the two planes draw independent streams).
uint64_t QMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr uint64_t kQueryLossSalt = 0x0051D5EC7ull;

bool CacheableClass(QueryClass cls) {
  // Continuous subscriptions run as single-round KNN on this plane, so
  // they share the point-KNN cache; range classes are never cached.
  return cls == QueryClass::kKnn || cls == QueryClass::kContinuous;
}

bool RangeClass(QueryClass cls) {
  return cls == QueryClass::kWindow || cls == QueryClass::kAggregate;
}

uint16_t CandLimitOf(const PsimQuery& q) {
  return RangeClass(q.cls) ? static_cast<uint16_t>(kMaxQueryCandidates)
                           : q.k;
}

// Dedup-by-id k-best insert. `found` tallies every distinct node accepted
// (including ones that later rotate out of a full set), which is what the
// aggregate classes report. Returns true when the set changed.
bool InsertCandidate(uint16_t* ncand,
                     std::array<QueryCandidate, kMaxQueryCandidates>* cand,
                     uint32_t* found, const QueryCandidate& c,
                     uint16_t limit) {
  for (uint16_t i = 0; i < *ncand; ++i) {
    if ((*cand)[i].id == c.id) return false;
  }
  if (*ncand < limit) {
    (*cand)[(*ncand)++] = c;
    ++*found;
    return true;
  }
  uint16_t worst = 0;
  for (uint16_t i = 1; i < *ncand; ++i) {
    if ((*cand)[i].d2 > (*cand)[worst].d2) worst = i;
  }
  if (c.d2 < (*cand)[worst].d2) {
    (*cand)[worst] = c;
    ++*found;
    return true;
  }
  return false;
}

NodeId PrevAsNodeId(uint32_t prev) {
  return prev == kInvalidQueryNode ? kInvalidNodeId
                                   : static_cast<NodeId>(prev);
}

// Query frames never apply *on* a sweep window. The sweep may migrate a
// frame's destination in the very window the frame would apply, and both
// handoff paths (sweep-phase slot forwarding, drain-phase re-routing)
// reach the new owner one drain later at the earliest — on time only for
// frames applying strictly after the sweep. refresh_windows is a pure
// function of the net params, so this bump shifts the same frames by the
// same amount at every shard count and timing stays partition-invariant.
uint32_t SkipSweepWindow(uint32_t window, int refresh_windows) {
  if (refresh_windows > 1 &&
      window % static_cast<uint32_t>(refresh_windows) == 0) {
    ++window;
  }
  return window;
}

}  // namespace

QueryPlaneStats& QueryPlaneStats::operator+=(const QueryPlaneStats& o) {
  hops += o.hops;
  request_hops += o.request_hops;
  qnode_hops += o.qnode_hops;
  result_hops += o.result_hops;
  home_arrivals += o.home_arrivals;
  sector_results += o.sector_results;
  replies += o.replies;
  collections += o.collections;
  retries += o.retries;
  drops_loss += o.drops_loss;
  drops_stuck += o.drops_stuck;
  drops_dead += o.drops_dead;
  drops_ttl += o.drops_ttl;
  late_replies += o.late_replies;
  boundary_frames += o.boundary_frames;
  foreign_frames += o.foreign_frames;
  remails += o.remails;
  state_migrations += o.state_migrations;
  return *this;
}

void BuildQueryPlane(QueryPlaneState* qp, const Rect& field, int node_count,
                     double radio_range, double max_speed,
                     SimTime run_duration, uint64_t seed) {
  QueryPlaneConfig& cfg = qp->config;
  qp->roles.assign(static_cast<size_t>(node_count), 0);
  if (!cfg.enabled) return;
  const WorkloadSpec& spec = cfg.spec;

  qp->radio_range = radio_range;
  qp->step = std::max(1e-3, cfg.diknn.step_fraction * radio_range);
  qp->itinerary_width = cfg.diknn.width > 0.0
                            ? cfg.diknn.width
                            : DefaultItineraryWidth(radio_range);
  if (cfg.horizon <= 0.0) cfg.horizon = run_duration;
  if (cfg.sink < static_cast<uint32_t>(node_count)) {
    qp->roles[cfg.sink] = 1;  // The sink role never retires.
  }

  // The schedule stream is a pure function of (seed, salt, spec) — the
  // same fold the serial QueryDriver uses, independent of shard count.
  Rng rng(seed * 0x9e3779b97f4a7c15ull + cfg.seed_salt);

  std::vector<Point> centers;
  std::vector<double> center_cum;
  if (spec.spatial == SpatialKind::kHotspot) {
    const int n = std::max(1, spec.hotspots);
    centers.reserve(static_cast<size_t>(n));
    center_cum.reserve(static_cast<size_t>(n));
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      centers.push_back(rng.PointInRect(field));
      total += std::pow(i + 1.0, -spec.hotspot_skew);
      center_cum.push_back(total);
    }
  }

  const double area = field.Area();
  const double half_diag = 0.5 * std::hypot(field.Width(), field.Height());
  // Closed-loop arrivals are approximated by a fixed-rate open stream of
  // `sessions` q/s (documented divergence; the protocol latency is close
  // to one second at the defaults, so each session offers ~1 q/s).
  double rate = spec.arrival == ArrivalKind::kClosedLoop
                    ? static_cast<double>(std::max(1, spec.sessions))
                    : spec.rate;
  rate = std::max(1e-6, rate);
  const double total_weight = std::max(1e-12, spec.TotalWeight());

  double t = cfg.warmup;
  float max_radius = static_cast<float>(radio_range);
  while (true) {
    t += spec.arrival == ArrivalKind::kPoisson ? rng.Exponential(1.0 / rate)
                                               : 1.0 / rate;
    if (t >= cfg.horizon) break;

    PsimQuery q;
    q.issue_t = t;

    double u = rng.NextDouble() * total_weight;
    int cls = 0;
    for (; cls < kNumQueryClasses - 1; ++cls) {
      u -= spec.mix[static_cast<size_t>(cls)];
      if (u < 0.0) break;
    }
    q.cls = static_cast<QueryClass>(cls);

    if (spec.spatial == SpatialKind::kHotspot) {
      const double pick = rng.NextDouble() * center_cum.back();
      size_t c = 0;
      while (c + 1 < center_cum.size() && pick >= center_cum[c]) ++c;
      Point p = centers[c];
      p.x += rng.Normal(0.0, spec.hotspot_sigma);
      p.y += rng.Normal(0.0, spec.hotspot_sigma);
      q.q = field.Clamp(p);
    } else {
      q.q = rng.PointInRect(field);
    }

    int k = spec.k_lo >= spec.k_hi ? spec.k_lo
                                   : rng.UniformInt(spec.k_lo, spec.k_hi);
    q.k = static_cast<uint16_t>(
        std::clamp(k, 1, static_cast<int>(kMaxQueryCandidates)));

    if (RangeClass(q.cls)) {
      const double half = 0.5 * std::max(1.0, spec.window_side);
      Rect r{{q.q.x - half, q.q.y - half}, {q.q.x + half, q.q.y + half}};
      r.min = field.Clamp(r.min);
      r.max = field.Clamp(r.max);
      q.rect = r;
      q.k = static_cast<uint16_t>(kMaxQueryCandidates);
      // The itinerary must sweep past every corner of the clamped rect.
      double far2 = 0.0;
      const Point corners[4] = {
          r.min, {r.min.x, r.max.y}, {r.max.x, r.min.y}, r.max};
      for (const Point& c : corners) {
        far2 = std::max(far2, SquaredDistance(q.q, c));
      }
      q.radius = static_cast<float>(
          std::max(radio_range, std::sqrt(far2)));
    } else {
      // KNN boundary estimate under uniform density, with the paper's
      // conservative expansion margin; never below one radio range.
      const double est =
          1.5 * std::sqrt(static_cast<double>(q.k) * area /
                          (kPi * std::max(1, node_count)));
      q.radius = static_cast<float>(
          std::clamp(est, radio_range, std::max(radio_range, half_diag)));
    }
    max_radius = std::max(max_radius, q.radius);

    qp->schedule.push_back({t, static_cast<uint32_t>(qp->queries.size())});
    qp->queries.push_back(q);
  }
  qp->max_radius = max_radius;

  // Pre-size every sink-side container so steady state never allocates.
  qp->active.reserve(qp->queries.size() + 1);
  qp->queue.reserve(qp->queries.size() + 1);
  const ServingParams sp = spec.Serving();
  if (sp.cache_ttl > 0.0 || sp.coalesce_window > 0.0) {
    qp->cache_nx = qp->cache_ny = std::max(1, sp.cache_cells);
    qp->cache_cell_w = std::max(1e-9, field.Width() / qp->cache_nx);
    qp->cache_cell_h = std::max(1e-9, field.Height() / qp->cache_ny);
    qp->cache.assign(
        static_cast<size_t>(qp->cache_nx) * qp->cache_ny, QueryCacheEntry{});
    qp->cache_validity = sp.cache_ttl;
    if (max_speed > 0.0) {
      qp->cache_validity =
          std::min(qp->cache_validity, radio_range / max_speed);
    }
    for (PsimQuery& q : qp->queries) {
      q.cache_key = qp->CacheKeyOf(q.q);
    }
  }
}

void FinalizeQueryPlane(QueryPlaneState* qp) {
  if (!qp->config.enabled) return;
  SloReport& slo = qp->slo;
  for (PsimQuery& q : qp->queries) {
    if (q.phase != QueryPhase::kInflight) continue;
    q.phase = QueryPhase::kDone;
    ++slo.timed_out;
    for (int32_t f = q.follower_next; f >= 0;) {
      PsimQuery& fl = qp->queries[static_cast<size_t>(f)];
      const int32_t next = fl.follower_next;
      if (fl.phase == QueryPhase::kFollower) {
        fl.phase = QueryPhase::kDone;
        ++slo.timed_out;
      }
      f = next;
    }
    q.follower_next = -1;
  }
  // Queued arrivals never launched; they resolve as timeouts too (and a
  // defensive sweep keeps Consistent() honest even for orphans).
  for (PsimQuery& q : qp->queries) {
    if (q.phase == QueryPhase::kQueued || q.phase == QueryPhase::kFollower) {
      q.phase = QueryPhase::kDone;
      ++slo.timed_out;
    }
  }
  qp->inflight = 0;
  qp->active.clear();
  qp->queue.clear();
  qp->queue_head = 0;
  slo.duration = std::max(0.0, qp->config.horizon - qp->config.warmup);
  slo.serving = qp->serving;
  assert(slo.Consistent());
}

// ---------------------------------------------------------------------------
// PsimShard: frame plumbing.

void PsimShard::ProcessQueryWindow(uint64_t k) {
  QueryPlaneState& qp = world_->query;
  const SimTime now =
      static_cast<double>(k) * world_->partition.lookahead();
  std::vector<PsimQueryFrame>& slot = qslots_[k % kQuerySlotCount];
  if (!slot.empty()) {
    qorder_.resize(slot.size());
    for (size_t i = 0; i < qorder_.size(); ++i) {
      qorder_[i] = static_cast<uint32_t>(i);
    }
    // Global application order: (t, sender, seq) is unique (seq rides the
    // sender's beacon counter), so every shard count applies the same
    // frames in the same order.
    std::sort(qorder_.begin(), qorder_.end(),
              [&slot](uint32_t a, uint32_t b) {
                const PsimQueryFrame& fa = slot[a];
                const PsimQueryFrame& fb = slot[b];
                if (fa.t != fb.t) return fa.t < fb.t;
                if (fa.sender != fb.sender) return fa.sender < fb.sender;
                return fa.seq < fb.seq;
              });
    // Handlers only append to later slots (every send delay >= 1 window),
    // never to this one.
    for (uint32_t idx : qorder_) ApplyQueryFrame(slot[idx], k, now);
    slot.clear();
  }
  const uint32_t sink = qp.config.sink;
  if (world_->partition.OwnerOfCell(world_->nodes[sink].cell) == id_) {
    ProcessSink(k, now);
  }
}

void PsimShard::ApplyQueryFrame(const PsimQueryFrame& f, uint64_t k,
                                SimTime now) {
  assert(f.window == static_cast<uint32_t>(k));
  // The destination may have migrated between stamp and application; hand
  // the frame to the current owner for the next window. One sweep moves a
  // node at most one cell, so the new owner is still adjacent.
  const int owner =
      world_->partition.OwnerOfCell(world_->nodes[f.dest].cell);
  if (owner != id_) {
    PsimQueryFrame g = f;
    g.window = SkipSweepWindow(static_cast<uint32_t>(k + 1),
                               world_->partition.refresh_windows());
    ++stats_.qp.remails;
    RouteQueryFrame(g);
    return;
  }
  if (!world_->alive[f.dest]) {
    ++stats_.qp.drops_dead;  // The query resolves via the sink timeout.
    return;
  }
  if (world_->config.loss_rate > 0.0 && QueryLossDraw(f)) {
    if (f.retries >= kQueryMaxRetries) {
      ++stats_.qp.drops_loss;
      return;
    }
    // Receiver-side deterministic re-forward: same frame, next window,
    // fresh loss draw (the retry counter is folded into the hash).
    PsimQueryFrame g = f;
    ++g.retries;
    g.window = SkipSweepWindow(static_cast<uint32_t>(k + 1),
                               world_->partition.refresh_windows());
    ++stats_.qp.retries;
    RouteQueryFrame(g);
    return;
  }
  ++stats_.qp.hops;
  if (f.hops >= kQueryFrameTtl) {
    ++stats_.qp.drops_ttl;
    return;
  }
  switch (f.kind) {
    case QueryFrameKind::kRequest:
      HandleRequest(f, now);
      break;
    case QueryFrameKind::kItinerary:
      HandleItinerary(f, now);
      break;
    case QueryFrameKind::kSectorResult:
      HandleSectorResult(f, now);
      break;
    case QueryFrameKind::kReply:
      HandleReply(f, now);
      break;
  }
}

bool PsimShard::QueryLossDraw(const PsimQueryFrame& f) const {
  uint64_t h = QMix64(world_->config.seed ^
                      QMix64(kQueryLossSalt ^
                             (static_cast<uint64_t>(f.sender) << 32 |
                              f.seq)));
  h = QMix64(h ^ (static_cast<uint64_t>(f.dest) << 8) ^ f.retries);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < world_->config.loss_rate;
}

void PsimShard::SendQueryFrame(PsimQueryFrame* f, uint32_t from_node,
                               uint32_t delay_windows) {
  PsimNode& n = world_->nodes[from_node];
  f->sender = from_node;
  f->seq = n.seq++;  // Shared with the beacon counter: globally unique.
  uint32_t delay = std::max<uint32_t>(1, delay_windows);
  delay = std::min(delay, kQuerySlotCount - 2);  // Slot-ring safety.
  f->window = SkipSweepWindow(static_cast<uint32_t>(current_window_ + delay),
                              world_->partition.refresh_windows());
  f->t = static_cast<double>(f->window) * world_->partition.lookahead();
  RouteQueryFrame(*f);
}

void PsimShard::RouteQueryFrame(const PsimQueryFrame& f) {
  const int owner =
      world_->partition.OwnerOfCell(world_->nodes[f.dest].cell);
  if (owner == id_) {
    qslots_[f.window % kQuerySlotCount].push_back(f);
    return;
  }
  // A hop's destination is within radio range of the sender (and bucket
  // drift is bounded by one cell), so the owner is always an adjacent
  // tile — tiles are >= kMinTileSpan cells per axis.
  NeighborInbox* box = OutboxFor(owner);
  assert(box != nullptr && "query hop crossed to a non-adjacent shard");
  if (box == nullptr) {
    ++stats_.qp.drops_stuck;
    return;
  }
  box->queries.Push(f);
  ++stats_.qp.boundary_frames;
}

// ---------------------------------------------------------------------------
// PsimShard: DIKNN emulation.

void PsimShard::HandleRequest(const PsimQueryFrame& f, SimTime now) {
  const PsimQuery& q = world_->query.queries[f.query];
  const uint32_t v = f.dest;
  const PsimNode& node = world_->nodes[v];
  const Point pos = node.mobility->PositionAt(now);
  NeighborEntry next;
  if (GreedyNextHopFrom(node.neighbors, pos, q.q, PrevAsNodeId(f.prev),
                        now, &next)) {
    PsimQueryFrame g = f;
    g.prev = v;
    g.dest = static_cast<uint32_t>(next.id);
    ++g.hops;
    ++stats_.qp.request_hops;
    SendQueryFrame(&g, v, 1);
    return;
  }
  // Greedy local minimum for q: this node is the query's home node.
  HandleHomeArrival(f.query, v, now);
}

void PsimShard::HandleHomeArrival(uint32_t query, uint32_t v, SimTime now) {
  QueryPlaneState& qp = world_->query;
  PsimQuery& q = qp.queries[query];
  ++stats_.qp.home_arrivals;
  q.home = v;
  q.sectors_total =
      static_cast<uint8_t>(std::max(1, qp.config.diknn.num_sectors));
  q.sectors_done = 0;
  q.ncand = 0;
  q.found = 0;
  ++qp.roles[v];  // Home duty: merge state now travels with this node.
  // The home node contributes its own neighborhood before dissemination.
  CollectAt(v, q, now, &q.ncand, &q.cand, &q.found);
  const Point pos = world_->nodes[v].mobility->PositionAt(now);
  for (int s = 0; s < q.sectors_total; ++s) {
    float progress = 0.0f;
    NeighborEntry next;
    if (NextItineraryHop(q, s, v, pos, kInvalidQueryNode, now, &progress,
                         &next)) {
      PsimQueryFrame g{};
      g.kind = QueryFrameKind::kItinerary;
      g.query = query;
      g.sector = static_cast<uint8_t>(s);
      g.prev = v;
      g.dest = static_cast<uint32_t>(next.id);
      g.progress = progress;
      g.hops = 1;
      SendQueryFrame(&g, v, qp.collection_windows);
    } else {
      ++q.sectors_done;  // Empty sector: nothing to traverse.
    }
  }
  if (q.sectors_done >= q.sectors_total) SendReply(query, v, now);
}

bool PsimShard::NextItineraryHop(const PsimQuery& q, int sector, uint32_t v,
                                 const Point& pos, uint32_t prev,
                                 SimTime now, float* progress,
                                 NeighborEntry* next) {
  QueryPlaneState& qp = world_->query;
  ItineraryParams params;
  params.q = q.q;
  params.radius = q.radius;
  params.sector = sector;
  params.num_sectors = std::max(1, qp.config.diknn.num_sectors);
  params.width = qp.itinerary_width;
  params.extra_rings = 0;
  itinerary_scratch_.Rebuild(params);
  const double total = itinerary_scratch_.TotalLength();
  const PsimNode& node = world_->nodes[v];
  const NodeId exclude = PrevAsNodeId(prev);
  double s_pos = *progress;
  for (int skip = 0; skip <= qp.config.diknn.max_void_skips; ++skip) {
    s_pos += qp.step;
    if (s_pos >= total) return false;  // Sector exhausted.
    const Point anchor = itinerary_scratch_.PointAt(s_pos);
    // Next Q-node: fresh neighbor strictly closer to the anchor than v
    // (the serial engine's hand-off rule).
    if (GreedyNextHopFrom(node.neighbors, pos, anchor, exclude, now,
                          next)) {
      *progress = static_cast<float>(s_pos);
      return true;
    }
    // Void region: slide the anchor one step further and retry.
  }
  return false;  // Persistent void: the sector ends early.
}

void PsimShard::HandleItinerary(const PsimQueryFrame& f, SimTime now) {
  QueryPlaneState& qp = world_->query;
  const PsimQuery& q = qp.queries[f.query];
  const uint32_t v = f.dest;
  ++stats_.qp.qnode_hops;
  PsimQueryFrame g = f;
  uint32_t found = 0;
  CollectAt(v, q, now, &g.ncand, &g.cand, &found);
  g.agg += found;
  const Point pos = world_->nodes[v].mobility->PositionAt(now);
  float progress = g.progress;
  NeighborEntry next;
  if (NextItineraryHop(q, f.sector, v, pos, f.prev, now, &progress,
                       &next)) {
    g.prev = v;
    g.dest = static_cast<uint32_t>(next.id);
    g.progress = progress;
    ++g.hops;
    SendQueryFrame(&g, v, qp.collection_windows);
    return;
  }
  // Sector exhausted: ship the collected candidates home. The result leg
  // gets a fresh TTL budget.
  g.kind = QueryFrameKind::kSectorResult;
  g.hops = 0;
  SendToward(&g, v, q.home, q.q, now);
}

void PsimShard::HandleSectorResult(const PsimQueryFrame& f, SimTime now) {
  QueryPlaneState& qp = world_->query;
  PsimQuery& q = qp.queries[f.query];
  const uint32_t v = f.dest;
  // Reading q.home off the home's shard is safe: it was written before
  // the first itinerary frame was mailed, and every sector-result frame
  // is causally (release/acquire chained) after that write.
  if (v == q.home) {
    ++stats_.qp.sector_results;
    const uint16_t limit = CandLimitOf(q);
    for (uint16_t i = 0; i < f.ncand; ++i) {
      InsertCandidate(&q.ncand, &q.cand, &q.found, f.cand[i], limit);
    }
    ++q.sectors_done;
    if (q.sectors_done >= q.sectors_total) SendReply(f.query, v, now);
    return;
  }
  PsimQueryFrame g = f;
  SendToward(&g, v, q.home, q.q, now);
}

void PsimShard::HandleReply(const PsimQueryFrame& f, SimTime now) {
  QueryPlaneState& qp = world_->query;
  const uint32_t v = f.dest;
  if (v == qp.config.sink) {
    ResolveFromReply(f, now);
    return;
  }
  PsimQueryFrame g = f;
  SendToward(&g, v, qp.config.sink, SinkTargetPoint(), now);
}

void PsimShard::SendReply(uint32_t query, uint32_t home, SimTime now) {
  QueryPlaneState& qp = world_->query;
  PsimQuery& q = qp.queries[query];
  PsimQueryFrame g{};
  g.kind = QueryFrameKind::kReply;
  g.query = query;
  g.prev = kInvalidQueryNode;
  g.ncand = q.ncand;
  g.cand = q.cand;
  g.agg = q.found;
  // Home duty complete: release the role refcount taken at arrival.
  assert(qp.roles[home] > 0);
  --qp.roles[home];
  SendToward(&g, home, qp.config.sink, SinkTargetPoint(), now);
}

void PsimShard::SendToward(PsimQueryFrame* f, uint32_t v,
                           uint32_t target_node, const Point& target_point,
                           SimTime now) {
  if (v == target_node) {
    // Already there: apply at self next window (keeps the one-window
    // delay invariant instead of recursing into the handler).
    f->prev = v;
    f->dest = v;
    SendQueryFrame(f, v, 1);
    return;
  }
  const PsimNode& node = world_->nodes[v];
  const Point pos = node.mobility->PositionAt(now);
  // Target-node short-circuit: a fresh table entry beats geometry.
  if (node.neighbors.Lookup(static_cast<NodeId>(target_node), now)
          .has_value()) {
    f->prev = v;
    f->dest = target_node;
    ++f->hops;
    ++stats_.qp.result_hops;
    SendQueryFrame(f, v, 1);
    return;
  }
  NeighborEntry next;
  if (GreedyNextHopFrom(node.neighbors, pos, target_point,
                        PrevAsNodeId(f->prev), now, &next)) {
    f->prev = v;
    f->dest = static_cast<uint32_t>(next.id);
    ++f->hops;
    ++stats_.qp.result_hops;
    SendQueryFrame(f, v, 1);
    return;
  }
  // Greedy dead end (the overlay has no perimeter fallback): the query
  // resolves via the sink timeout.
  ++stats_.qp.drops_stuck;
}

void PsimShard::CollectAt(
    uint32_t v, const PsimQuery& q, SimTime now, uint16_t* ncand,
    std::array<QueryCandidate, kMaxQueryCandidates>* cand,
    uint32_t* found) {
  const PsimNode& node = world_->nodes[v];
  const Point pos = node.mobility->PositionAt(now);
  const uint16_t limit = CandLimitOf(q);
  const double r2 =
      static_cast<double>(q.radius) * static_cast<double>(q.radius);
  const bool range = RangeClass(q.cls);
  auto consider = [&](uint32_t id, const Point& p) {
    if (!world_->alive[id]) return;
    if (range ? !q.rect.Contains(p) : SquaredDistance(p, q.q) > r2) return;
    const QueryCandidate c{id, static_cast<float>(p.x),
                           static_cast<float>(p.y),
                           static_cast<float>(SquaredDistance(p, q.q))};
    if (InsertCandidate(ncand, cand, found, c, limit)) {
      ++stats_.qp.collections;
    }
  };
  consider(v, pos);
  node.neighbors.ForEachFresh(now, [&](const NeighborEntry& n) {
    if (n.id < 0) return;
    consider(static_cast<uint32_t>(n.id), n.position);
  });
}

// ---------------------------------------------------------------------------
// PsimShard: sink duties (only the shard owning the sink runs these).

Point PsimShard::SinkTargetPoint() const {
  const FieldPartition& part = world_->partition;
  const int32_t cell = world_->nodes[world_->query.config.sink].cell;
  const int x = static_cast<int>(cell % part.nx());
  const int y = static_cast<int>(cell / part.nx());
  return {(x + 0.5) * part.cell_size(), (y + 0.5) * part.cell_size()};
}

void PsimShard::ProcessSink(uint64_t k, SimTime now) {
  QueryPlaneState& qp = world_->query;
  // Timeout scan on the sweep cadence (global sync points, so the scan
  // windows are identical at every shard count).
  if (k % static_cast<uint64_t>(world_->partition.refresh_windows()) == 0 &&
      !qp.active.empty()) {
    const double timeout = qp.config.diknn.query_timeout;
    if (timeout > 0.0) {
      for (size_t i = 0; i < qp.active.size();) {
        if (now - qp.queries[qp.active[i]].admit_t >= timeout) {
          TimeOutActive(i, now);
        } else {
          ++i;
        }
      }
    }
  }
  // Admit the arrivals of this window.
  const double window_end =
      static_cast<double>(k + 1) * world_->partition.lookahead();
  while (qp.next_arrival < qp.schedule.size() &&
         qp.schedule[qp.next_arrival].t < window_end) {
    AdmitArrival(qp.schedule[qp.next_arrival].query, now);
    ++qp.next_arrival;
  }
}

void PsimShard::AdmitArrival(uint32_t id, SimTime now) {
  QueryPlaneState& qp = world_->query;
  const WorkloadSpec& spec = qp.config.spec;
  PsimQuery& q = qp.queries[id];
  ++qp.slo.issued;
  ++qp.slo.issued_by_class[static_cast<size_t>(q.cls)];
  const ServingParams sp = spec.Serving();
  const bool cacheable = CacheableClass(q.cls) && q.cache_key >= 0;
  // 1. Result cache: a fresh-enough entry with at least as many
  //    neighbors answers instantly, with zero channel traffic.
  if (sp.cache_ttl > 0.0 && cacheable) {
    QueryCacheEntry& e = qp.cache[static_cast<size_t>(q.cache_key)];
    if (e.t < 0.0) {
      ++qp.serving.cache_misses;
    } else if (now - e.t > qp.cache_validity) {
      ++qp.serving.cache_expired;
      ++qp.serving.cache_misses;
    } else if (e.k >= q.k) {
      ++qp.serving.cache_hits;
      q.phase = QueryPhase::kDone;
      RecordFinished(&q, now);
      return;
    } else {
      ++qp.serving.cache_misses;
    }
  }
  // 2. Coalesce onto a young in-flight leader in the same grid cell.
  if (sp.coalesce_window > 0.0 && cacheable) {
    for (uint32_t lid : qp.active) {
      PsimQuery& leader = qp.queries[lid];
      if (!CacheableClass(leader.cls)) continue;
      if (leader.cache_key != q.cache_key) continue;
      if (now - leader.admit_t > sp.coalesce_window) continue;
      if (static_cast<int>(q.k) >
          static_cast<int>(leader.k) + sp.coalesce_kslack) {
        continue;
      }
      q.phase = QueryPhase::kFollower;
      q.follower_next = leader.follower_next;
      leader.follower_next = static_cast<int32_t>(id);
      ++qp.serving.coalesced;
      return;
    }
  }
  // 3. Deadline-aware shedding; every 8th would-be shed launches as a
  //    probe so the latency EWMA can recover after congestion clears.
  if (sp.shed && spec.deadline > 0.0 && qp.ewma_latency > spec.deadline) {
    if (++qp.shed_ticker % 8 != 0) {
      ++qp.serving.shed;
      ++qp.slo.rejected;
      q.phase = QueryPhase::kDone;
      return;
    }
    ++qp.serving.shed_probes;
  }
  // 4. Admission bound with a FIFO waiting room.
  if (spec.max_inflight > 0 &&
      qp.inflight >= static_cast<uint32_t>(spec.max_inflight)) {
    if (static_cast<int>(qp.queue.size() - qp.queue_head) <
        spec.queue_capacity) {
      q.phase = QueryPhase::kQueued;
      qp.queue.push_back(id);
    } else {
      ++qp.slo.rejected;
      q.phase = QueryPhase::kDone;
    }
    return;
  }
  LaunchQuery(id, now);
}

void PsimShard::LaunchQuery(uint32_t id, SimTime now) {
  QueryPlaneState& qp = world_->query;
  PsimQuery& q = qp.queries[id];
  q.phase = QueryPhase::kInflight;
  q.admit_t = now;
  ++qp.inflight;
  if (qp.inflight > qp.slo.peak_inflight) {
    qp.slo.peak_inflight = qp.inflight;
  }
  qp.active.push_back(id);
  const uint32_t sink = qp.config.sink;
  const PsimNode& snode = world_->nodes[sink];
  const Point pos = snode.mobility->PositionAt(now);
  PsimQueryFrame g{};
  g.kind = QueryFrameKind::kRequest;
  g.query = id;
  g.prev = kInvalidQueryNode;
  g.hops = 1;
  NeighborEntry next;
  if (GreedyNextHopFrom(snode.neighbors, pos, q.q, kInvalidNodeId, now,
                        &next)) {
    g.dest = static_cast<uint32_t>(next.id);
    ++stats_.qp.request_hops;
  } else {
    // The sink is its own local minimum: it will be the home node (the
    // request handler re-derives that next window).
    g.dest = sink;
  }
  SendQueryFrame(&g, sink, 1);
}

void PsimShard::ResolveFromReply(const PsimQueryFrame& f, SimTime now) {
  QueryPlaneState& qp = world_->query;
  PsimQuery& q = qp.queries[f.query];
  if (q.phase != QueryPhase::kInflight) {
    ++stats_.qp.late_replies;  // Timed out (or otherwise resolved) first.
    return;
  }
  ++stats_.qp.replies;
  q.phase = QueryPhase::kDone;
  RecordFinished(&q, now);
  const ServingParams sp = qp.config.spec.Serving();
  if (sp.cache_ttl > 0.0 && CacheableClass(q.cls) && q.cache_key >= 0) {
    QueryCacheEntry& e = qp.cache[static_cast<size_t>(q.cache_key)];
    e.t = now;
    e.k = q.k;
    e.ncand = f.ncand;
    e.cand = f.cand;
    ++qp.serving.cache_insertions;
  }
  ResolveFollowers(&q, now, /*timed_out=*/false);
  for (size_t i = 0; i < qp.active.size(); ++i) {
    if (qp.active[i] == f.query) {
      qp.active[i] = qp.active.back();
      qp.active.pop_back();
      break;
    }
  }
  assert(qp.inflight > 0);
  --qp.inflight;
  DrainAdmissionQueue(now);
}

void PsimShard::RecordFinished(PsimQuery* q, SimTime now) {
  QueryPlaneState& qp = world_->query;
  const double latency = std::max(0.0, now - q->issue_t);
  const double deadline = qp.config.spec.deadline;
  if (deadline > 0.0 && latency > deadline) {
    ++qp.slo.deadline_missed;
  } else {
    ++qp.slo.completed;
  }
  qp.slo.latency.Add(latency);
  qp.ewma_latency = qp.ewma_latency <= 0.0
                        ? latency
                        : 0.8 * qp.ewma_latency + 0.2 * latency;
}

void PsimShard::ResolveFollowers(PsimQuery* leader, SimTime now,
                                 bool timed_out) {
  QueryPlaneState& qp = world_->query;
  for (int32_t i = leader->follower_next; i >= 0;) {
    PsimQuery& fl = qp.queries[static_cast<size_t>(i)];
    const int32_t next = fl.follower_next;
    fl.phase = QueryPhase::kDone;
    if (timed_out) {
      ++qp.slo.timed_out;
    } else {
      ++qp.serving.fanned_out;
      RecordFinished(&fl, now);
    }
    i = next;
  }
  leader->follower_next = -1;
}

void PsimShard::TimeOutActive(size_t active_index, SimTime now) {
  QueryPlaneState& qp = world_->query;
  PsimQuery& q = qp.queries[qp.active[active_index]];
  q.phase = QueryPhase::kDone;
  ++qp.slo.timed_out;
  ResolveFollowers(&q, now, /*timed_out=*/true);
  qp.active[active_index] = qp.active.back();
  qp.active.pop_back();
  assert(qp.inflight > 0);
  --qp.inflight;
  DrainAdmissionQueue(now);
}

void PsimShard::DrainAdmissionQueue(SimTime now) {
  QueryPlaneState& qp = world_->query;
  const int bound = qp.config.spec.max_inflight;
  while (qp.queue_head < qp.queue.size() &&
         (bound <= 0 || qp.inflight < static_cast<uint32_t>(bound))) {
    LaunchQuery(qp.queue[qp.queue_head++], now);
  }
  if (qp.queue_head >= qp.queue.size()) {
    qp.queue.clear();  // Capacity is retained: still allocation-free.
    qp.queue_head = 0;
  }
}

}  // namespace diknn
