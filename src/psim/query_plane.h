// Query plane of the conservative parallel engine: GPSR greedy forwarding
// and DIKNN itinerary traversal (Wu et al., ICDE 2007) running across
// PDES shards, on top of the beacon substrate's neighbor tables.
//
// Why the window protocol already covers query traffic: a unicast hop is
// at least one frame air time, and the conservative lookahead L is
// exactly the largest frame air time — so a hop initiated while
// processing window k cannot take effect before window k+1. Query frames
// are therefore stamped with the window at which their destination
// applies them (>= send window + 1), routed into the owning shard's
// mailbox when the destination node is foreign, and applied at the
// window barrier in global (t, sender, seq) order. Every decision a
// query hop makes reads only state its owner is allowed to touch in the
// process phase (the destination node's own neighbor table, position,
// and the per-query fields its role owns), which keeps the SloReport and
// every query-plane traffic counter byte-equal across shard counts.
//
// Per-query state ownership is split by role, never shared:
//   * sink-owned   — admission, serving (cache/coalesce/shed), outcome
//                    accounting; touched only by the shard owning the
//                    sink node at that window;
//   * home-owned   — sector merge state (SectorState of the serial
//                    engine); touched only by the shard owning the
//                    query's home node.
// Replies carry the merged candidates inside the frame, so the sink
// never reads home-owned fields. When a home or sink node's bucket
// migrates to a neighbor shard, its query state migrates with it: the
// migration mailbox's release/acquire pair orders every prior state
// write before the new owner's first read (docs/ENGINE.md).
//
// Modeling notes (documented divergences from the serial engine —
// semantics are emulated, not byte-replicated): query packets ride an
// overlay and do not contend with beacons on the channel (the per-hop
// collection delay m models Q-node latency); per-hop losses are decided
// by a stateless hash with receiver-side deterministic retries;
// closed-loop arrivals are approximated by a fixed-rate stream of
// `sessions` q/s; continuous queries run as single-round KNN; candidate
// sets (and aggregate tallies) are capped at kMaxQueryCandidates.

#ifndef DIKNN_PSIM_QUERY_PLANE_H_
#define DIKNN_PSIM_QUERY_PLANE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/geometry.h"
#include "knn/diknn.h"
#include "workload/latency_histogram.h"
#include "workload/workload_spec.h"

namespace diknn {

/// Candidate-set cap per query / frame (also the aggregate-tally cap).
inline constexpr uint32_t kMaxQueryCandidates = 32;
inline constexpr uint32_t kInvalidQueryNode = 0xffffffffu;
/// TTL for any single query frame, in hops.
inline constexpr uint8_t kQueryFrameTtl = 96;
/// Receiver-side re-forward attempts before a lossy hop gives up.
inline constexpr uint8_t kQueryMaxRetries = 3;
/// Query-frame slot ring length (must exceed the largest send-to-apply
/// delay: the Q-node collection delay, ~25 windows at the defaults).
inline constexpr uint32_t kQuerySlotCount = 64;

/// One KNN candidate as carried in frames and merged at the home node.
struct QueryCandidate {
  uint32_t id = kInvalidQueryNode;
  float x = 0.0f;
  float y = 0.0f;
  float d2 = 0.0f;  ///< Squared distance to the query point.
};

enum class QueryFrameKind : uint8_t {
  kRequest,       ///< Sink -> home routing (GPSR greedy).
  kItinerary,     ///< Q-node -> Q-node sector traversal.
  kSectorResult,  ///< Last Q-node -> home merge.
  kReply,         ///< Home -> sink final answer.
};

/// A unicast query-plane frame, as exchanged between shards. (t, sender,
/// seq) is globally unique — seq shares the sender node's beacon
/// sequence counter — and is the cross-shard application order.
struct PsimQueryFrame {
  SimTime t = 0.0;       ///< Logical send time (window-quantized).
  uint32_t sender = 0;
  uint32_t seq = 0;
  uint32_t dest = kInvalidQueryNode;  ///< Node that applies this frame.
  uint32_t prev = kInvalidQueryNode;  ///< Hop to exclude from greedy.
  uint32_t query = 0;    ///< Index into QueryPlaneState::queries.
  uint32_t window = 0;   ///< Window at which `dest` applies the frame.
  uint32_t agg = 0;      ///< Aggregate tally (kReply of kAggregate).
  float progress = 0.0f; ///< Arc length along the sector itinerary.
  QueryFrameKind kind = QueryFrameKind::kRequest;
  uint8_t sector = 0;
  uint8_t retries = 0;
  uint8_t hops = 0;
  uint16_t ncand = 0;
  std::array<QueryCandidate, kMaxQueryCandidates> cand;
};

/// Sink-side lifecycle of one query.
enum class QueryPhase : uint8_t {
  kScheduled,  ///< Built into the arrival schedule; not yet admitted.
  kQueued,     ///< Waiting in the admission queue.
  kInflight,   ///< Launched on the network.
  kFollower,   ///< Coalesced onto an in-flight leader.
  kDone,       ///< Resolved (any outcome).
};

/// One query. The immutable block is written single-threaded before the
/// run; the sink-owned and home-owned blocks are disjoint field sets so
/// the two roles never write the same memory (see header comment).
struct PsimQuery {
  // Immutable after BuildQueryPlane.
  SimTime issue_t = 0.0;
  QueryClass cls = QueryClass::kKnn;
  Point q;
  Rect rect;             ///< Window/aggregate extent (empty otherwise).
  float radius = 0.0f;   ///< Dissemination boundary radius estimate.
  uint16_t k = 0;
  // Sink-owned.
  QueryPhase phase = QueryPhase::kScheduled;
  SimTime admit_t = 0.0;
  int32_t follower_next = -1;  ///< Intrusive coalescing chain.
  int32_t cache_key = -1;      ///< Cache/coalesce grid cell of q.
  // Home-owned.
  uint32_t home = kInvalidQueryNode;
  uint8_t sectors_total = 0;
  uint8_t sectors_done = 0;
  uint16_t ncand = 0;
  uint32_t found = 0;    ///< Distinct nodes collected (aggregate tally).
  std::array<QueryCandidate, kMaxQueryCandidates> cand;
};

/// Per-shard query-plane counters. The invariant block sums to the same
/// totals at any shard count; the exchange block describes the
/// partitioning itself (like PsimStats' boundary/foreign split).
struct QueryPlaneStats {
  // Partition-invariant.
  uint64_t hops = 0;            ///< Frames applied at their destination.
  uint64_t request_hops = 0;
  uint64_t qnode_hops = 0;
  uint64_t result_hops = 0;     ///< Sector-result + reply forwards.
  uint64_t home_arrivals = 0;
  uint64_t sector_results = 0;
  uint64_t replies = 0;
  uint64_t collections = 0;     ///< Candidates inserted while collecting.
  uint64_t retries = 0;
  uint64_t drops_loss = 0;
  uint64_t drops_stuck = 0;     ///< Greedy local minimum with no fallback.
  uint64_t drops_dead = 0;
  uint64_t drops_ttl = 0;
  uint64_t late_replies = 0;    ///< Replies after the query resolved.
  // Partition-dependent exchange counters.
  uint64_t boundary_frames = 0; ///< Query frames mailed to a neighbor.
  uint64_t foreign_frames = 0;  ///< Query frames drained from neighbors.
  uint64_t remails = 0;         ///< Re-routed after a dest migration.
  uint64_t state_migrations = 0;///< Node handoffs carrying query state.

  QueryPlaneStats& operator+=(const QueryPlaneStats& o);

  /// The partition-invariant subset, comparable across shard counts.
  struct Invariants {
    uint64_t hops, request_hops, qnode_hops, result_hops;
    uint64_t home_arrivals, sector_results, replies, collections;
    uint64_t retries, drops_loss, drops_stuck, drops_dead, drops_ttl;
    uint64_t late_replies;
    bool operator==(const Invariants&) const = default;
  };
  Invariants InvariantCounters() const {
    return {hops,        request_hops,   qnode_hops,  result_hops,
            home_arrivals, sector_results, replies,   collections,
            retries,     drops_loss,     drops_stuck, drops_dead,
            drops_ttl,   late_replies};
  }
};

/// Query-plane configuration carried inside PsimConfig.
struct QueryPlaneConfig {
  bool enabled = false;
  WorkloadSpec spec;
  DiknnParams diknn;
  uint32_t sink = 0;       ///< Sink node id (queries enter/leave here).
  SimTime warmup = 0.0;    ///< Arrivals start here.
  SimTime horizon = 0.0;   ///< Arrivals stop here; 0 = run duration.
  uint64_t seed_salt = 17; ///< Folded into the schedule stream.
};

/// One precomputed arrival (the schedule is sorted by t).
struct QueryArrival {
  SimTime t = 0.0;
  uint32_t query = 0;
};

/// One slot of the sink-side result cache / coalescing grid.
struct QueryCacheEntry {
  SimTime t = -1.0e30;  ///< Insertion time; stale entries never match.
  uint16_t k = 0;
  uint16_t ncand = 0;
  std::array<QueryCandidate, kMaxQueryCandidates> cand;
};

/// World-level query-plane state. Everything below the `sink-owned`
/// marker is touched only by the shard owning the sink node at that
/// window (ownership moves only across sweep barriers); `roles` entries
/// are touched only by the owner of the indexed node.
struct QueryPlaneState {
  QueryPlaneConfig config;
  double radio_range = 0.0;
  double step = 0.0;             ///< Q-node hop arc-length step.
  double itinerary_width = 0.0;
  uint32_t collection_windows = 1;  ///< Per-Q-node delay, in windows.
  float max_radius = 0.0f;       ///< For pre-warming itinerary scratch.
  std::vector<PsimQuery> queries;
  std::vector<QueryArrival> schedule;
  /// Per-node count of live query roles (home duties + the sink); a
  /// migrating node with a nonzero count carries query state with it.
  std::vector<uint32_t> roles;

  // --- Sink-owned from here on. ---
  size_t next_arrival = 0;
  uint32_t inflight = 0;
  std::vector<uint32_t> active;  ///< In-flight query ids (timeout scan).
  std::vector<uint32_t> queue;   ///< FIFO waiting room (ring).
  size_t queue_head = 0;
  std::vector<QueryCacheEntry> cache;  ///< cache_nx * cache_ny slots.
  int cache_nx = 1;
  int cache_ny = 1;
  double cache_cell_w = 1.0;
  double cache_cell_h = 1.0;
  double cache_validity = 0.0;   ///< min(ttl, r / mu_max).
  double ewma_latency = 0.0;
  uint64_t shed_ticker = 0;
  SloReport slo;
  ServingCounters serving;

  /// Cache/coalesce grid cell of a query point; -1 when the grid is off.
  int32_t CacheKeyOf(const Point& p) const {
    if (cache.empty()) return -1;
    int ix = static_cast<int>(p.x / cache_cell_w);
    int iy = static_cast<int>(p.y / cache_cell_h);
    ix = ix < 0 ? 0 : (ix >= cache_nx ? cache_nx - 1 : ix);
    iy = iy < 0 ? 0 : (iy >= cache_ny ? cache_ny - 1 : iy);
    return iy * cache_nx + ix;
  }
};

/// Builds the arrival schedule and pre-sizes every sink-side container
/// (single-threaded, before the shards are constructed). The stream is a
/// pure function of (seed, salt, spec), independent of the shard count.
void BuildQueryPlane(QueryPlaneState* qp, const Rect& field,
                     int node_count, double radio_range, double max_speed,
                     SimTime run_duration, uint64_t seed);

/// Resolves everything still pending when the run's horizon passed —
/// in-flight and queued queries (and their followers) time out — and
/// seals the SloReport (duration, serving counters). Single-threaded,
/// after the worker threads joined.
void FinalizeQueryPlane(QueryPlaneState* qp);

}  // namespace diknn

#endif  // DIKNN_PSIM_QUERY_PLANE_H_
