#include "psim/engine.h"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "net/beacon.h"
#include "net/packet.h"
#include "obs/flight_recorder.h"

namespace diknn {

namespace {

PsimNetParams NetParamsFrom(const PsimConfig& config) {
  PsimNetParams net;
  net.field = config.field;
  net.radio_range_m = config.radio_range_m;
  net.bit_rate_bps = config.bit_rate_bps;
  net.max_speed = config.max_speed;
  net.grid_refresh_interval_s = config.grid_refresh_interval_s;
  net.backoff_slot_s = config.mac.backoff_slot_s;
  net.max_frame_bytes = kMacHeaderBytes + kBeaconBodyBytes;
  return net;
}

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

namespace {

/// Metrics whose value legitimately depends on how the field was
/// partitioned: per-shard rows, exchange traffic, scheduler internals,
/// and allocation tallies (capacity growth differs per thread). The
/// "psim.shard" prefix also covers the psim.shards / shards_requested
/// gauges, which by construction differ between the compared runs.
bool PartitionDependentMetric(const std::string& name) {
  static constexpr const char* kPrefixes[] = {
      "psim.shard",
      "engine.",
      "net.alloc",
  };
  static constexpr const char* kExact[] = {
      "psim.boundary_frames", "psim.foreign_frames",
      "psim.migrations_in",   "psim.migrations_out",
      "psim.sweeps",          "psim.windows",
      "psim.audit_probes",    "psim.audit_mismatches",
      "qp.boundary_frames",   "qp.foreign_frames",
      "qp.remails",           "qp.state_migrations",
  };
  for (const char* prefix : kPrefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  for (const char* exact : kExact) {
    if (name == exact) return true;
  }
  return false;
}

}  // namespace

std::string InvariantObsJson(const MetricsSnapshot& snapshot) {
  MetricsSnapshot filtered;
  for (const MetricsSnapshot::Counter& c : snapshot.counters) {
    if (!PartitionDependentMetric(c.name)) filtered.counters.push_back(c);
  }
  for (const MetricsSnapshot::Gauge& g : snapshot.gauges) {
    if (!PartitionDependentMetric(g.name)) filtered.gauges.push_back(g);
  }
  for (const MetricsSnapshot::Histogram& h : snapshot.histograms) {
    if (!PartitionDependentMetric(h.name)) filtered.histograms.push_back(h);
  }
  return filtered.ToJson();
}

EngineStats MergeEngineStats(const std::vector<EngineStats>& stats) {
  EngineStats merged;
  for (const EngineStats& s : stats) {
    merged.events_pushed += s.events_pushed;
    merged.events_fired += s.events_fired;
    merged.events_cancelled += s.events_cancelled;
    merged.wheel_scheduled += s.wheel_scheduled;
    merged.overflow_scheduled += s.overflow_scheduled;
    merged.overflow_migrated += s.overflow_migrated;
    merged.inline_callbacks += s.inline_callbacks;
    merged.heap_callbacks += s.heap_callbacks;
    merged.peak_live = std::max(merged.peak_live, s.peak_live);
    merged.peak_resident = std::max(merged.peak_resident, s.peak_resident);
    merged.peak_pool_slots =
        std::max(merged.peak_pool_slots, s.peak_pool_slots);
  }
  return merged;
}

PsimEngine::PsimEngine(const PsimConfig& config) : config_(config) {
  world_ = std::make_unique<PsimWorld>(config_, NetParamsFrom(config_));
  world_->frame_air_time =
      static_cast<double>(kMacHeaderBytes + kBeaconBodyBytes) * 8.0 /
      config_.bit_rate_bps;
  BuildWorld();
}

void PsimEngine::BuildWorld() {
  const FieldPartition& part = world_->partition;
  const int n = config_.node_count;
  world_->nodes.resize(static_cast<size_t>(n));
  world_->cell_nodes.resize(static_cast<size_t>(part.cell_count()));

  // Placement comes from the run seed alone, and each node's CSMA and
  // mobility streams are forked from (seed, node id) — never from a
  // shard stream — so the traffic a node generates is independent of
  // which shard happens to own it.
  // Neighbor tables are pre-sized from the field density (4x the mean
  // degree, floor 16) so a table never regrows mid-run — part of the
  // zero-steady-state-allocation contract.
  const double area = config_.field.Width() * config_.field.Height();
  const double mean_degree =
      area <= 0.0 ? static_cast<double>(n)
                  : static_cast<double>(n) * 3.14159265358979323846 *
                        config_.radio_range_m * config_.radio_range_m /
                        area;
  const size_t degree_bound = std::min<size_t>(
      static_cast<size_t>(std::max(0, n - 1)),
      static_cast<size_t>(4.0 * mean_degree) + 16);

  Rng placement_rng(config_.seed);
  for (int i = 0; i < n; ++i) {
    PsimNode& node = world_->nodes[static_cast<size_t>(i)];
    const Point pos = placement_rng.PointInRect(config_.field);
    node.rng = Rng(PsimShard::NodeSeed(config_.seed,
                                       static_cast<uint32_t>(i), 0));
    if (config_.max_speed > 0.0) {
      node.mobility = std::make_unique<RandomWaypointMobility>(
          pos, config_.field, config_.max_speed,
          Rng(PsimShard::NodeSeed(config_.seed, static_cast<uint32_t>(i),
                                  1)));
    } else {
      node.mobility = std::make_unique<StaticMobility>(pos);
    }
    node.neighbors = NeighborTable(config_.neighbor_timeout);
    node.neighbors.Reserve(degree_bound);
    node.cell = part.CellOf(pos);
    node.next_beacon = node.rng.Uniform(0.0, config_.beacon_interval);
    world_->cell_nodes[static_cast<size_t>(node.cell)].push_back(
        static_cast<uint32_t>(i));
  }
  // Head-room so per-cell buckets rarely regrow once the run reaches
  // steady state (the allocation gate counts second-half growth).
  for (std::vector<uint32_t>& bucket : world_->cell_nodes) {
    bucket.reserve(bucket.size() * 2 + 8);
  }

  // Fault schedule: a kill lands on the first sweep window whose time is
  // >= the configured instant, so the set of dead nodes at any window is
  // a pure function of (schedule, window) — identical on every shard
  // layout.
  world_->alive.assign(static_cast<size_t>(n), 1);
  if (!config_.node_kills.empty()) {
    world_->kill_window.assign(static_cast<size_t>(n),
                               std::numeric_limits<uint64_t>::max());
    const uint64_t refresh =
        static_cast<uint64_t>(part.refresh_windows());
    const double sweep_period = part.lookahead() * part.refresh_windows();
    for (const auto& [when, id] : config_.node_kills) {
      if (id >= static_cast<uint32_t>(n)) continue;
      const uint64_t kw =
          when <= 0.0
              ? 0
              : static_cast<uint64_t>(std::ceil(when / sweep_period)) *
                    refresh;
      uint64_t& slot = world_->kill_window[id];
      slot = std::min(slot, kw);
    }
  }

  // The query plane's schedule and sizing must exist before the shards:
  // each shard ctor pre-warms its itinerary scratch from max_radius and
  // sizes its query mailboxes from the workload bounds.
  world_->query.config = config_.query;
  BuildQueryPlane(&world_->query, config_.field, n, config_.radio_range_m,
                  config_.max_speed, config_.duration, config_.seed);
  if (config_.query.enabled) {
    const double time_unit =
        std::max(part.lookahead(), config_.query.diknn.time_unit);
    world_->query.collection_windows =
        static_cast<uint32_t>(std::clamp<int64_t>(
            std::llround(time_unit / part.lookahead()), 1,
            static_cast<int64_t>(kQuerySlotCount) - 2));
  }

  shards_.reserve(static_cast<size_t>(part.shards()));
  for (int s = 0; s < part.shards(); ++s) {
    shards_.push_back(std::make_unique<PsimShard>(world_.get(), s));
  }
  // Neighbor links follow the tiling's 8-neighborhood: each shard owns
  // one SPSC inbox per adjacent shard (that neighbor is its only
  // producer) and holds an outbox pointer at each neighbor's matching
  // inbox. Creation and binding are separate passes so inbox addresses
  // are stable before anyone captures them.
  for (int s = 0; s < part.shards(); ++s) {
    for (int from : part.NeighborShards(s)) {
      shards_[static_cast<size_t>(s)]->CreateInbox(from);
    }
  }
  for (int s = 0; s < part.shards(); ++s) {
    for (int to : part.NeighborShards(s)) {
      shards_[static_cast<size_t>(s)]->AddOutbox(
          to, shards_[static_cast<size_t>(to)]->InboxFrom(s));
    }
  }
  // Adoption in node-id order gives every shard a deterministic owned
  // list and initial event-push order.
  for (int i = 0; i < n; ++i) {
    const int owner =
        part.OwnerOfCell(world_->nodes[static_cast<size_t>(i)].cell);
    shards_[static_cast<size_t>(owner)]->AdoptNode(
        static_cast<uint32_t>(i));
  }
}

PsimResult PsimEngine::Run() {
  assert(!ran_ && "PsimEngine::Run is single-shot");
  ran_ = true;
  const FieldPartition& part = world_->partition;
  const int shard_count = part.shards();
  const uint64_t windows = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(config_.duration / part.lookahead())));
  const uint64_t midpoint = windows / 2;
  const double lookahead = part.lookahead();

  // Flight recorder: sampled from the window barrier's completion step.
  // The first barrier of window k completes once every shard has finished
  // window k-1 and arrived — a global quiescent point at sim time k*L
  // where the partition-invariant counter sums are exact functions of
  // (seed, config, k), independent of the shard count, and every read is
  // ordered by the barrier (no races). The completion function samples
  // whenever a window boundary crosses the configured cadence.
  FlightRecorder recorder(config_.ts);
  const bool ts_on = config_.ts.enabled();
  struct TsState {
    CounterDelta frames, attempted, collided, lost, qp_hops;
    SloReport prev_slo;
    ServingCounters prev_serving;
    double prev_t = 0.0;
    double next_sample_t = 0.0;
    uint64_t prev_k = 0;
    uint64_t sample_windows = 0;  ///< Windows covered by the current tick.
    std::chrono::steady_clock::time_point prev_wall;
  };
  TsState ts_state;
  if (ts_on) {
    ts_state.next_sample_t = config_.ts.interval;
    ts_state.prev_wall = std::chrono::steady_clock::now();

    TimeSeries* frames_per_s = recorder.AddSeries("net.frames_per_s");
    TimeSeries* airtime_share = recorder.AddSeries("net.airtime_share");
    TimeSeries* collision_rate = recorder.AddSeries("net.collision_rate");
    TimeSeries* loss_rate = recorder.AddSeries("net.loss_rate");
    recorder.AddProbe([this, &ts_state, frames_per_s, airtime_share,
                       collision_rate, loss_rate](double t) {
      uint64_t frames = 0, attempted = 0, collided = 0, lost = 0;
      for (const std::unique_ptr<PsimShard>& sh : shards_) {
        const PsimStats& st = sh->stats();
        frames += st.frames_sent;
        attempted += st.receptions_attempted;
        collided += st.receptions_collided;
        lost += st.receptions_lost;
      }
      const double dt = t - ts_state.prev_t;
      const uint64_t df = ts_state.frames.Take(frames);
      const uint64_t da = ts_state.attempted.Take(attempted);
      frames_per_s->Append(t, dt > 0.0 ? df / dt : 0.0);
      airtime_share->Append(
          t, dt > 0.0 ? df * world_->frame_air_time / dt : 0.0);
      collision_rate->Append(t, SafeRate(ts_state.collided.Take(collided),
                                         da));
      loss_rate->Append(t, SafeRate(ts_state.lost.Take(lost), da));
    });
    if (config_.query.enabled) {
      TimeSeries* hops_per_s = recorder.AddSeries("qp.hops_per_s");
      TimeSeries* issued_per_s = recorder.AddSeries("workload.issued_per_s");
      TimeSeries* goodput = recorder.AddSeries("workload.goodput_qps");
      TimeSeries* p50_ms = recorder.AddSeries("workload.p50_ms");
      TimeSeries* p99_ms = recorder.AddSeries("workload.p99_ms");
      TimeSeries* miss_rate = recorder.AddSeries("workload.miss_rate");
      TimeSeries* reject_rate = recorder.AddSeries("workload.reject_rate");
      TimeSeries* timeout_rate = recorder.AddSeries("workload.timeout_rate");
      TimeSeries* cache_hit_rate =
          recorder.AddSeries("serving.cache_hit_rate");
      TimeSeries* coalesce_rate = recorder.AddSeries("serving.coalesce_rate");
      TimeSeries* shed_per_s = recorder.AddSeries("serving.shed_per_s");
      recorder.AddProbe([this, &ts_state, hops_per_s, issued_per_s, goodput,
                         p50_ms, p99_ms, miss_rate, reject_rate,
                         timeout_rate, cache_hit_rate, coalesce_rate,
                         shed_per_s](double t) {
        uint64_t hops = 0;
        for (const std::unique_ptr<PsimShard>& sh : shards_) {
          hops += sh->stats().qp.hops;
        }
        const double dt = t - ts_state.prev_t;
        hops_per_s->Append(
            t, dt > 0.0 ? ts_state.qp_hops.Take(hops) / dt : 0.0);
        const SloReport& now = world_->query.slo;
        const SloReport& prev = ts_state.prev_slo;
        const uint64_t issued = now.issued - prev.issued;
        issued_per_s->Append(t, dt > 0.0 ? issued / dt : 0.0);
        goodput->Append(
            t, dt > 0.0 ? (now.completed - prev.completed) / dt : 0.0);
        p50_ms->Append(t,
                       1e3 * now.latency.DeltaPercentile(prev.latency, 50.0));
        p99_ms->Append(t,
                       1e3 * now.latency.DeltaPercentile(prev.latency, 99.0));
        miss_rate->Append(
            t, SafeRate(now.deadline_missed - prev.deadline_missed, issued));
        reject_rate->Append(t, SafeRate(now.rejected - prev.rejected,
                                        issued));
        timeout_rate->Append(t, SafeRate(now.timed_out - prev.timed_out,
                                         issued));
        const ServingCounters& sc = world_->query.serving;
        const ServingCounters& sp = ts_state.prev_serving;
        const uint64_t hits = sc.cache_hits - sp.cache_hits;
        const uint64_t misses = sc.cache_misses - sp.cache_misses;
        cache_hit_rate->Append(t, SafeRate(hits, hits + misses));
        coalesce_rate->Append(t, SafeRate(sc.coalesced - sp.coalesced,
                                          issued));
        shed_per_s->Append(t, dt > 0.0 ? (sc.shed - sp.shed) / dt : 0.0);
        ts_state.prev_serving = sc;
        ts_state.prev_slo = now;
      });
    }
    // Per-shard health diagnostics: wall-clock shares and live mailbox
    // occupancy. Partition-dependent by nature (busy_s precedent) —
    // exported under "diagnostics", never byte-compared.
    for (int s = 0; s < shard_count; ++s) {
      PsimShard* sh = shards_[static_cast<size_t>(s)].get();
      TimeSeries* busy_share = recorder.AddSeries(
          ShardMetricName(s, "busy_share"), /*diagnostic=*/true);
      TimeSeries* mbox = recorder.AddSeries(
          ShardMetricName(s, "mbox_frames"), /*diagnostic=*/true);
      TimeSeries* migrations = recorder.AddSeries(
          ShardMetricName(s, "migrations_in"), /*diagnostic=*/true);
      recorder.AddProbe([sh, busy_share, mbox, migrations](double t) {
        const double total = sh->live_busy_s + sh->live_wait_s;
        busy_share->Append(t, total > 0.0 ? sh->live_busy_s / total : 0.0);
        size_t depth = 0;
        for (const auto& inbox : sh->inboxes_) {
          depth += inbox->frames.SizeApprox();
        }
        mbox->Append(t, static_cast<double>(depth));
        migrations->Append(t, static_cast<double>(
                                  sh->stats().migrations_in));
      });
    }
    TimeSeries* windows_per_s =
        recorder.AddSeries("psim.windows_per_s", /*diagnostic=*/true);
    recorder.AddProbe([&ts_state, windows_per_s](double t) {
      const auto now_wall = std::chrono::steady_clock::now();
      const double wall_dt = Seconds(now_wall - ts_state.prev_wall);
      ts_state.prev_wall = now_wall;
      windows_per_s->Append(
          t, wall_dt > 0.0
                 ? static_cast<double>(ts_state.sample_windows) / wall_dt
                 : 0.0);
    });
  }

  uint64_t barrier_phase = 0;
  auto on_phase = [&]() noexcept {
    const uint64_t p = barrier_phase++;
    if (!ts_on || p % 2 != 0) return;
    const uint64_t k = p / 2;  // Windows 0..k-1 fully processed.
    if (k == 0 || k > windows) return;
    const double t = k * lookahead;
    if (t + 1e-12 < ts_state.next_sample_t) return;
    ts_state.sample_windows = k - ts_state.prev_k;
    recorder.Tick(t);
    ts_state.prev_t = t;
    ts_state.prev_k = k;
    ts_state.next_sample_t =
        (std::floor(t / config_.ts.interval) + 1.0) * config_.ts.interval;
  };

  std::barrier<decltype(on_phase)> sync(shard_count, on_phase);
  const auto worker = [&](int s) {
    PsimShard& shard = *shards_[static_cast<size_t>(s)];
    // Attribute this worker's allocations to its shard so the
    // steady-state gate aggregates correctly across psim threads (the
    // repetition-level --jobs model arms one scope per run; here it is
    // one scope per shard thread).
    AllocScope scope(shard.allocs());
    using Clock = std::chrono::steady_clock;
    double busy = 0.0;
    double wait = 0.0;
    for (uint64_t k = 0; k < windows; ++k) {
      auto w0 = Clock::now();
      // Publish the running wall-clock totals for the recorder's
      // diagnostic probes; the barrier orders this store before the
      // completion step's read.
      shard.live_busy_s = busy;
      shard.live_wait_s = wait;
      sync.arrive_and_wait();
      auto t0 = Clock::now();
      wait += Seconds(t0 - w0);
      shard.SweepIfDue(k);
      busy += Seconds(Clock::now() - t0);
      w0 = Clock::now();
      sync.arrive_and_wait();
      t0 = Clock::now();
      wait += Seconds(t0 - w0);
      if (k == midpoint) shard.BeginSteadyState();
      shard.DrainMailboxes(k);
      shard.ProcessWindow(k);
      busy += Seconds(Clock::now() - t0);
    }
    // Final barrier: every producer has finished its last process phase,
    // so one more drain settles the boundary/foreign balance exactly.
    auto w0 = Clock::now();
    sync.arrive_and_wait();
    wait += Seconds(Clock::now() - w0);
    shard.DrainRemaining();
    shard.FinalizeStats();
    shard.stats().busy_s = busy;
    shard.stats().barrier_wait_s = wait;
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) threads.emplace_back(worker, s);
  for (std::thread& t : threads) t.join();
  const double wall_s =
      Seconds(std::chrono::steady_clock::now() - wall_start);

  // Workers are joined: single-threaded from here. Settle everything the
  // horizon left pending (in-flight queries time out) and seal the
  // report before it is published into the snapshot.
  if (config_.query.enabled) FinalizeQueryPlane(&world_->query);

  // Kill-edge annotations, recomputed from the schedule: each kill lands
  // at its sweep window's boundary, a pure function of (schedule, L) —
  // identical at every shard count.
  if (ts_on && !world_->kill_window.empty()) {
    for (size_t i = 0; i < world_->kill_window.size(); ++i) {
      const uint64_t kw = world_->kill_window[i];
      if (kw == std::numeric_limits<uint64_t>::max() || kw > windows) {
        continue;
      }
      recorder.Annotate(kw * lookahead, "node.kill",
                        static_cast<double>(i));
    }
  }

  PsimResult result;
  result.shards = shard_count;
  result.shards_requested = part.requested_shards();
  result.windows = windows;
  result.lookahead_s = part.lookahead();
  result.wall_s = wall_s;
  result.query_ran = config_.query.enabled;
  result.slo = world_->query.slo;
  for (int s = 0; s < shard_count; ++s) {
    const PsimShard& shard = *shards_[static_cast<size_t>(s)];
    result.shard_stats.push_back(shard.stats());
    result.shard_engine.push_back(shard.sim().engine_stats());
    result.totals += shard.stats();
  }
  result.engine = MergeEngineStats(result.shard_engine);

  const SimTime end_time = windows * part.lookahead();
  double degree_sum = 0.0;
  for (PsimNode& node : world_->nodes) {
    degree_sum += node.neighbors.CountFresh(end_time);
  }
  result.average_degree =
      world_->nodes.empty() ? 0.0
                            : degree_sum / static_cast<double>(
                                               world_->nodes.size());
  result.obs = BuildObsSnapshot(result);
  result.ts = std::move(recorder.series());
  return result;
}

MetricsSnapshot PsimEngine::BuildObsSnapshot(
    const PsimResult& result) const {
  // One registry per shard, merged in shard order: canonical psim.* and
  // net.* counters add up to the partition-invariant totals, while the
  // ShardMetricName entries attribute work to individual shards.
  std::vector<MetricsSnapshot> snaps;
  snaps.reserve(result.shard_stats.size());
  for (size_t s = 0; s < result.shard_stats.size(); ++s) {
    const PsimStats& st = result.shard_stats[s];
    const EngineStats& es = result.shard_engine[s];
    MetricsRegistry reg;
    reg.PublishCounter("psim.frames_sent", st.frames_sent);
    reg.PublishCounter("psim.csma_attempts", st.csma_attempts);
    reg.PublishCounter("psim.csma_busy", st.csma_busy);
    reg.PublishCounter("psim.csma_failures", st.csma_failures);
    reg.PublishCounter("psim.receptions_attempted",
                       st.receptions_attempted);
    reg.PublishCounter("psim.receptions_delivered",
                       st.receptions_delivered);
    reg.PublishCounter("psim.receptions_collided",
                       st.receptions_collided);
    reg.PublishCounter("psim.receptions_lost", st.receptions_lost);
    reg.PublishCounter("psim.candidates_scanned", st.candidates_scanned);
    reg.PublishCounter("psim.neighbor_updates", st.neighbor_updates);
    reg.PublishCounter("psim.boundary_frames", st.boundary_frames);
    reg.PublishCounter("psim.foreign_frames", st.foreign_frames);
    reg.PublishCounter("psim.migrations_out", st.migrations_out);
    reg.PublishCounter("psim.migrations_in", st.migrations_in);
    reg.PublishCounter("psim.sweeps", st.sweeps);
    reg.PublishCounter("psim.windows", st.windows);
    reg.PublishCounter("psim.audit_probes", st.audit_probes);
    reg.PublishCounter("psim.audit_mismatches", st.audit_mismatches);
    // Keep the packet plane's gate name meaningful under --shards > 1:
    // the summed per-thread steady-state tallies land on net.allocs,
    // exactly where scripts/check_all.sh asserts 0.
    reg.PublishCounter("net.allocs", st.steady_allocs);
    reg.PublishCounter("net.alloc_bytes", st.steady_alloc_bytes);
    reg.PublishCounter("engine.events_pushed", es.events_pushed);
    reg.PublishCounter("engine.events_fired", es.events_fired);
    reg.PublishCounter("engine.events_cancelled", es.events_cancelled);
    reg.PublishGauge("engine.peak_live",
                     static_cast<double>(es.peak_live), GaugeMode::kMax);
    reg.PublishGauge("psim.lookahead_s", result.lookahead_s,
                     GaugeMode::kMax);
    reg.PublishGauge("psim.shards", static_cast<double>(result.shards),
                     GaugeMode::kMax);
    reg.PublishGauge("psim.shards_requested",
                     static_cast<double>(result.shards_requested),
                     GaugeMode::kMax);
    // Shard-attributed rows (names disjoint across shards).
    const int sid = static_cast<int>(s);
    reg.PublishCounter(ShardMetricName(sid, "frames_sent"),
                       st.frames_sent);
    reg.PublishCounter(ShardMetricName(sid, "boundary_frames"),
                       st.boundary_frames);
    reg.PublishCounter(ShardMetricName(sid, "migrations_in"),
                       st.migrations_in);
    reg.PublishCounter(ShardMetricName(sid, "migrations_out"),
                       st.migrations_out);
    reg.PublishCounter(ShardMetricName(sid, "allocs"), st.steady_allocs);
    // busy_s deliberately stays out of the snapshot: it is wall-clock,
    // and the obs snapshot must be bit-identical across repeated runs.
    // The bench reads it from PsimResult::shard_stats instead.
    reg.PublishGauge(
        ShardMetricName(sid, "owned_nodes"),
        static_cast<double>(shards_[s]->owned_count()), GaugeMode::kMax);
    if (config_.query.enabled) {
      // Query-plane counters: canonical qp.* rows add to
      // partition-invariant totals (exchange rows excepted, like the
      // substrate's boundary/foreign split).
      const QueryPlaneStats& qs = st.qp;
      reg.PublishCounter("qp.hops", qs.hops);
      reg.PublishCounter("qp.request_hops", qs.request_hops);
      reg.PublishCounter("qp.qnode_hops", qs.qnode_hops);
      reg.PublishCounter("qp.result_hops", qs.result_hops);
      reg.PublishCounter("qp.home_arrivals", qs.home_arrivals);
      reg.PublishCounter("qp.sector_results", qs.sector_results);
      reg.PublishCounter("qp.replies", qs.replies);
      reg.PublishCounter("qp.collections", qs.collections);
      reg.PublishCounter("qp.retries", qs.retries);
      reg.PublishCounter("qp.drops_loss", qs.drops_loss);
      reg.PublishCounter("qp.drops_stuck", qs.drops_stuck);
      reg.PublishCounter("qp.drops_dead", qs.drops_dead);
      reg.PublishCounter("qp.drops_ttl", qs.drops_ttl);
      reg.PublishCounter("qp.late_replies", qs.late_replies);
      reg.PublishCounter("qp.boundary_frames", qs.boundary_frames);
      reg.PublishCounter("qp.foreign_frames", qs.foreign_frames);
      reg.PublishCounter("qp.remails", qs.remails);
      reg.PublishCounter("qp.state_migrations", qs.state_migrations);
      reg.PublishCounter(ShardMetricName(sid, "qp_hops"), qs.hops);
      reg.PublishCounter(ShardMetricName(sid, "qp_boundary_frames"),
                         qs.boundary_frames);
      if (s == 0) {
        // Sink-side serving/SLO tallies live in world state, not shard
        // stats; publish them once so the merged snapshot carries the
        // same rows the serial harness emits.
        const QueryPlaneState& q = world_->query;
        reg.PublishCounter("workload.issued", q.slo.issued);
        reg.PublishCounter("workload.completed", q.slo.completed);
        reg.PublishCounter("workload.deadline_missed",
                           q.slo.deadline_missed);
        reg.PublishCounter("workload.rejected", q.slo.rejected);
        reg.PublishCounter("workload.timed_out", q.slo.timed_out);
        reg.PublishGauge("workload.peak_inflight",
                         static_cast<double>(q.slo.peak_inflight),
                         GaugeMode::kMax);
        reg.PublishCounter("serving.cache_hits", q.serving.cache_hits);
        reg.PublishCounter("serving.cache_misses", q.serving.cache_misses);
        reg.PublishCounter("serving.cache_expired",
                           q.serving.cache_expired);
        reg.PublishCounter("serving.cache_insertions",
                           q.serving.cache_insertions);
        reg.PublishCounter("serving.coalesced", q.serving.coalesced);
        reg.PublishCounter("serving.fanned_out", q.serving.fanned_out);
        reg.PublishCounter("serving.shed", q.serving.shed);
        reg.PublishCounter("serving.shed_probes", q.serving.shed_probes);
      }
    }
    snaps.push_back(reg.Snapshot());
  }
  return MergeShardSnapshots(snaps);
}

bool PsimEngine::OwnershipInvariantHolds() const {
  for (const std::unique_ptr<PsimShard>& shard : shards_) {
    if (!shard->OwnershipInvariantHolds()) return false;
  }
  size_t owned_total = 0;
  for (const std::unique_ptr<PsimShard>& shard : shards_) {
    owned_total += shard->owned_count();
  }
  return owned_total == world_->nodes.size();
}

PsimResult RunPsim(const PsimConfig& config) {
  PsimEngine engine(config);
  return engine.Run();
}

}  // namespace diknn
