// Single-producer single-consumer mailboxes for cross-shard exchange.
//
// The parallel engine (src/psim) connects each adjacent shard pair with
// two SpscMailbox instances per direction: one for boundary frames, one
// for node migrations. Exactly one worker thread ever pushes into a given
// mailbox and exactly one ever drains it, so the ring needs only a pair
// of acquire/release indices — no locks, no CAS loops. This is
// core/ring_buffer's recycled-flat-ring idea with the two ends decoupled
// onto different threads.
//
// Capacity is fixed at construction (rounded up to a power of two) and
// the ring never reallocates: pushing is allocation-free, which keeps the
// packet plane's steady-state `net.allocs == 0` contract intact under
// `--shards > 1`. A full mailbox is a sizing bug, not a flow-control
// condition — the engine sizes each ring for its worst case (migrations
// are bounded by the node count, boundary frames per window by the border
// population), so Push aborts loudly rather than silently dropping a
// frame and corrupting the determinism contract.
//
// FIFO order is part of the contract: a shard pushes its boundary frames
// in simulation order (timestamp, then sender, then sequence number), and
// the consumer re-sorts deliveries anyway, but the partition tests assert
// FIFO survival under same-timestamp storms so mailbox bugs surface as
// ordering failures, not as rare metric drift.

#ifndef DIKNN_PSIM_MAILBOX_H_
#define DIKNN_PSIM_MAILBOX_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace diknn {

template <typename T>
class SpscMailbox {
 public:
  explicit SpscMailbox(size_t capacity = 1024) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  size_t capacity() const { return ring_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool TryPush(const T& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head == ring_.size()) return false;
    ring_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side; a full ring is a capacity-sizing bug (see header
  /// comment) and aborts rather than dropping traffic.
  void Push(const T& value) {
    if (!TryPush(value)) {
      std::fprintf(stderr,
                   "SpscMailbox overflow: capacity %zu exhausted\n",
                   ring_.size());
      std::abort();
    }
  }

  /// Consumer side: pops everything currently visible, in FIFO order,
  /// calling `fn(const T&)` for each. Returns the number consumed. Safe
  /// to run concurrently with the producer's pushes; entries pushed
  /// after the initial tail read are left for the next drain.
  template <typename Fn>
  size_t Drain(Fn&& fn) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    size_t consumed = 0;
    while (head != tail) {
      fn(ring_[head & mask_]);
      ++head;
      ++consumed;
    }
    head_.store(head, std::memory_order_release);
    return consumed;
  }

  /// Consumer-side size estimate (exact when the producer is quiescent).
  size_t SizeApprox() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }

 private:
  std::vector<T> ring_;
  size_t mask_ = 0;
  // Separate cache lines so the producer's tail stores never invalidate
  // the consumer's head line and vice versa.
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
};

}  // namespace diknn

#endif  // DIKNN_PSIM_MAILBOX_H_
