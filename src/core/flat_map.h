// Open-addressing flat hash containers for the packet plane's per-query
// bookkeeping.
//
// Why not std::unordered_map: the node-based standard containers allocate
// one heap node per element, so every per-query insert on the hot path —
// reply dedup sets, collection windows, hop counters, neighbor indexes —
// is a malloc, and every erase a free. FlatMap keeps keys and values in
// two parallel flat arrays with linear probing and backward-shift
// deletion; after the table has grown to its steady-state capacity, every
// insert/erase/find is allocation-free. That is the discipline the
// allocation-counter gate in bench_micro enforces (docs/PACKET_PLANE.md).
//
// Determinism: iteration order is a pure function of the insertion /
// erasure history (no pointer-derived hashing, no randomized seeds), so
// runs remain bit-identical across --jobs counts and repeated executions.
// Note that, exactly like std::unordered_map, the order is *arbitrary* —
// callers that need an order must sort. The repo-wide audit of
// behaviour-affecting iteration over unordered containers lives in
// docs/PACKET_PLANE.md.

#ifndef DIKNN_CORE_FLAT_MAP_H_
#define DIKNN_CORE_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/alloc_probe.h"

namespace diknn {

/// Default integer mixer (splitmix64 finalizer): integral keys in this
/// codebase (query ids, CollectionKeys, node ids) are sequential, which
/// pure-identity hashing would turn into long probe clusters.
struct FlatHash {
  size_t operator()(uint64_t x) const {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// Open-addressing hash map: linear probing, power-of-two capacity,
/// backward-shift deletion (no tombstones, so probe lengths never rot).
/// Grows at 7/8 load; never shrinks — per-query containers are reused
/// across thousands of queries, and retaining capacity is the point.
template <typename Key, typename Value, typename Hash = FlatHash>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;

  FlatMap() = default;

  FlatMap(FlatMap&&) noexcept = default;
  FlatMap& operator=(FlatMap&&) noexcept = default;
  FlatMap(const FlatMap&) = default;
  FlatMap& operator=(const FlatMap&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Slots currently allocated (diagnostics; capacity is retained across
  /// clear()).
  size_t capacity() const { return slots_.size(); }

  void clear() {
    for (Slot& s : slots_) {
      if (s.used) {
        s.kv.~value_type();
        s.used = false;
      }
    }
    size_ = 0;
  }

  /// Pre-sizes the table for `n` elements without rehashing on the way.
  void reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 7 / 8 < n) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

  bool contains(const Key& key) const { return FindSlot(key) != kNpos; }
  size_t count(const Key& key) const { return contains(key) ? 1 : 0; }

  Value* find(const Key& key) {
    const size_t i = FindSlot(key);
    return i == kNpos ? nullptr : &slots_[i].kv.second;
  }
  const Value* find(const Key& key) const {
    const size_t i = FindSlot(key);
    return i == kNpos ? nullptr : &slots_[i].kv.second;
  }

  /// Inserts default-constructed value if absent; returns the value.
  Value& operator[](const Key& key) {
    return TryEmplace(key).first->second;
  }

  /// try_emplace: inserts Value(args...) if `key` is absent. Returns
  /// {pointer-to-pair, inserted}.
  template <typename... Args>
  std::pair<value_type*, bool> TryEmplace(const Key& key, Args&&... args) {
    MaybeGrow();
    size_t i = IndexFor(key);
    while (slots_[i].used) {
      if (slots_[i].kv.first == key) return {&slots_[i].kv, false};
      i = (i + 1) & mask_;
    }
    new (&slots_[i].kv) value_type(std::piecewise_construct,
                                   std::forward_as_tuple(key),
                                   std::forward_as_tuple(
                                       std::forward<Args>(args)...));
    slots_[i].used = true;
    ++size_;
    return {&slots_[i].kv, true};
  }

  /// Inserts or overwrites.
  void InsertOrAssign(const Key& key, Value value) {
    auto [kv, inserted] = TryEmplace(key, std::move(value));
    if (!inserted) kv->second = std::move(value);
  }

  /// Erases `key` if present; returns the number of erased entries (0/1).
  /// Backward-shift deletion: subsequent probe-chain entries are moved
  /// back so lookups never need tombstones.
  size_t erase(const Key& key) {
    size_t i = FindSlot(key);
    if (i == kNpos) return 0;
    EraseSlot(i);
    return 1;
  }

  /// Calls `fn(key, value)` for every entry. Safe against erasure of the
  /// *visited* entry only via EraseIf below; for arbitrary mutation
  /// collect keys first.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.used) fn(s.kv.first, s.kv.second);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.kv.first, s.kv.second);
    }
  }

  /// Erases every entry for which `pred(key, value)` is true; returns the
  /// number erased. Handles backward-shift re-examination correctly.
  template <typename Pred>
  size_t EraseIf(Pred&& pred) {
    size_t erased = 0;
    for (size_t i = 0; i < slots_.size(); ++i) {
      // After EraseSlot(i) a shifted successor may land in slot i, so
      // re-test the same index until it stabilizes.
      while (slots_[i].used && pred(slots_[i].kv.first, slots_[i].kv.second)) {
        EraseSlot(i);
        ++erased;
      }
    }
    return erased;
  }

 private:
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 16;

  struct Slot {
    union {
      value_type kv;  // Constructed iff `used`.
      char raw;
    };
    bool used = false;

    Slot() : raw(0) {}
    Slot(Slot&& other) noexcept : raw(0) {
      if (other.used) {
        new (&kv) value_type(std::move(other.kv));
        used = true;
      }
    }
    Slot(const Slot& other) : raw(0) {
      if (other.used) {
        new (&kv) value_type(other.kv);
        used = true;
      }
    }
    Slot& operator=(Slot&&) = delete;
    Slot& operator=(const Slot&) = delete;
    ~Slot() {
      if (used) kv.~value_type();
    }
  };

  size_t IndexFor(const Key& key) const {
    return hash_(static_cast<uint64_t>(key)) & mask_;
  }

  size_t FindSlot(const Key& key) const {
    if (slots_.empty()) return kNpos;
    size_t i = IndexFor(key);
    while (slots_[i].used) {
      if (slots_[i].kv.first == key) return i;
      i = (i + 1) & mask_;
    }
    return kNpos;
  }

  void EraseSlot(size_t i) {
    // Backward-shift: walk the probe chain after `i`; any entry whose
    // home slot precedes-or-equals the vacated hole (cyclically) moves
    // back into it.
    slots_[i].kv.~value_type();
    slots_[i].used = false;
    --size_;
    size_t hole = i;
    size_t j = (i + 1) & mask_;
    while (slots_[j].used) {
      const size_t home = IndexFor(slots_[j].kv.first);
      // Does `home` lie cyclically within (j, hole]? Then j cannot reach
      // home through the hole and must shift back into it.
      const bool between = ((j - home) & mask_) >= ((j - hole) & mask_);
      if (between) {
        new (&slots_[hole].kv) value_type(std::move(slots_[j].kv));
        slots_[hole].used = true;
        slots_[j].kv.~value_type();
        slots_[j].used = false;
        hole = j;
      }
      j = (j + 1) & mask_;
    }
  }

  void MaybeGrow() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * 8 > slots_.size() * 7) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    assert((new_capacity & (new_capacity - 1)) == 0);
    // Table growth to a retained high-water mark: capacity, excluded from
    // per-operation allocation attribution (clear() keeps the slots).
    AllocScopePause capacity;
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_capacity);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (!s.used) continue;
      size_t i = IndexFor(s.kv.first);
      while (slots_[i].used) i = (i + 1) & mask_;
      new (&slots_[i].kv) value_type(std::move(s.kv));
      slots_[i].used = true;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  Hash hash_;
};

/// Open-addressing hash set over integral keys; same layout discipline as
/// FlatMap (the value array is simply absent).
template <typename Key, typename Hash = FlatHash>
class FlatSet {
 public:
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(size_t n) { map_.reserve(n); }

  bool contains(const Key& key) const { return map_.contains(key); }
  size_t count(const Key& key) const { return map_.count(key); }

  /// Returns true if newly inserted.
  bool insert(const Key& key) { return map_.TryEmplace(key).second; }
  size_t erase(const Key& key) { return map_.erase(key); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach([&fn](const Key& k, const Empty&) { fn(k); });
  }

 private:
  struct Empty {};
  FlatMap<Key, Empty, Hash> map_;
};

}  // namespace diknn

#endif  // DIKNN_CORE_FLAT_MAP_H_
