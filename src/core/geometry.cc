#include "core/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace diknn {

Point Point::Normalized() const {
  const double n = Norm();
  if (n == 0.0) return {0.0, 0.0};
  return {x / n, y / n};
}

Point Point::Rotated(double radians) const {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  return {x * c - y * s, x * s + y * c};
}

std::string Point::ToString() const {
  std::ostringstream os;
  os << "(" << x << ", " << y << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << p.ToString();
}

double NormalizeAngle(double radians) {
  double a = std::fmod(radians, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  // fmod can return exactly kTwoPi after the correction due to rounding.
  if (a >= kTwoPi) a -= kTwoPi;
  return a;
}

double AngleDifference(double a, double b) {
  double d = std::fmod(a - b, kTwoPi);
  if (d > kPi) d -= kTwoPi;
  if (d <= -kPi) d += kTwoPi;
  return d;
}

double AngleOf(const Point& from, const Point& to) {
  return NormalizeAngle(std::atan2(to.y - from.y, to.x - from.x));
}

Point PointAtAngle(const Point& center, double angle, double radius) {
  return {center.x + radius * std::cos(angle),
          center.y + radius * std::sin(angle)};
}

Point Lerp(const Point& a, const Point& b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  const Point ab = b - a;
  const double len2 = ab.SquaredNorm();
  if (len2 == 0.0) return Distance(p, a);
  double t = (p - a).Dot(ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(p, a + ab * t);
}

namespace {

// Orientation of the ordered triple (a, b, c): >0 counter-clockwise,
// <0 clockwise, 0 collinear (within exact double arithmetic).
double Orient(const Point& a, const Point& b, const Point& c) {
  return (b - a).Cross(c - a);
}

bool OnSegment(const Point& a, const Point& b, const Point& p) {
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

}  // namespace

bool SegmentsIntersect(const Point& a, const Point& b, const Point& c,
                       const Point& d) {
  const double o1 = Orient(a, b, c);
  const double o2 = Orient(a, b, d);
  const double o3 = Orient(c, d, a);
  const double o4 = Orient(c, d, b);

  if (((o1 > 0) != (o2 > 0)) && ((o3 > 0) != (o4 > 0)) && o1 != 0 &&
      o2 != 0 && o3 != 0 && o4 != 0) {
    return true;
  }
  // Collinear overlap / endpoint-touch cases.
  if (o1 == 0 && OnSegment(a, b, c)) return true;
  if (o2 == 0 && OnSegment(a, b, d)) return true;
  if (o3 == 0 && OnSegment(c, d, a)) return true;
  if (o4 == 0 && OnSegment(c, d, b)) return true;
  return false;
}

Rect Rect::Empty() {
  constexpr double inf = std::numeric_limits<double>::infinity();
  return {{inf, inf}, {-inf, -inf}};
}

Rect Rect::Union(const Rect& o) const {
  if (IsEmpty()) return o;
  if (o.IsEmpty()) return *this;
  return {{std::min(min.x, o.min.x), std::min(min.y, o.min.y)},
          {std::max(max.x, o.max.x), std::max(max.y, o.max.y)}};
}

Rect Rect::Expanded(const Point& p) const {
  if (IsEmpty()) return {p, p};
  return {{std::min(min.x, p.x), std::min(min.y, p.y)},
          {std::max(max.x, p.x), std::max(max.y, p.y)}};
}

double Rect::MinDistance(const Point& p) const {
  if (IsEmpty()) return std::numeric_limits<double>::infinity();
  const double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
  const double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
  return std::hypot(dx, dy);
}

Point Rect::Clamp(const Point& p) const {
  return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
}

std::string Rect::ToString() const {
  std::ostringstream os;
  os << "[" << min.ToString() << " - " << max.ToString() << "]";
  return os.str();
}

SectorPartition::SectorPartition(Point origin, int count)
    : origin_(origin), count_(count < 1 ? 1 : count) {}

int SectorPartition::SectorOf(const Point& p) const {
  if (p == origin_) return 0;
  const double angle = AngleOf(origin_, p);
  int idx = static_cast<int>(angle / SectorAngle());
  // Guard against angle == 2*pi rounding artifacts.
  if (idx >= count_) idx = count_ - 1;
  return idx;
}

double SectorPartition::LowerBorderAngle(int i) const {
  return NormalizeAngle(i * SectorAngle());
}

double SectorPartition::UpperBorderAngle(int i) const {
  return NormalizeAngle((i + 1) * SectorAngle());
}

double SectorPartition::BisectorAngle(int i) const {
  return NormalizeAngle((i + 0.5) * SectorAngle());
}

bool SectorPartition::InSector(const Point& p, int i, double radius) const {
  if (Distance(p, origin_) > radius) return false;
  return SectorOf(p) == i;
}

}  // namespace diknn
