// Lightweight Status / StatusOr error-handling primitives.
//
// The library does not use exceptions on hot paths; fallible operations
// return Status (or StatusOr<T> when they produce a value). This mirrors
// the convention used by Arrow / RocksDB style C++ database code.

#ifndef DIKNN_CORE_STATUS_H_
#define DIKNN_CORE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace diknn {

/// Error taxonomy for the library. Kept deliberately small: simulation and
/// query-processing failures fall into a handful of actionable classes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a value outside the contract.
  kNotFound,          ///< Lookup target does not exist (node id, neighbor...).
  kFailedPrecondition,///< Object is not in a state that allows the call.
  kUnavailable,       ///< Transient network-level failure (void, no route).
  kInternal,          ///< Invariant violation inside the library.
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error carrier: a code plus an optional message.
///
/// `Status::OK()` is cheap (no allocation). Statuses must be checked by the
/// caller; conversion to bool tests success.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return ok(); }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Status with a payload: either an OK status and a value, or an error.
///
/// Access the value only after checking `ok()`; `value()` asserts in debug
/// builds when called on an error.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Implicit construction from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  bool ok() const { return status_.ok(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace diknn

/// Propagates a non-OK Status from the evaluated expression to the caller.
#define DIKNN_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::diknn::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // DIKNN_CORE_STATUS_H_
