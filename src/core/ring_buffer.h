// Allocation-free FIFO ring over a power-of-two vector.
//
// std::deque allocates and frees ~512-byte blocks as elements stream
// through it, which shows up as steady-state churn on the packet plane's
// allocation counters (the MAC outbound queue and duplicate-suppression
// FIFO drain one entry per frame). RingBuffer keeps one flat buffer that
// grows geometrically and is then reused forever.

#ifndef DIKNN_CORE_RING_BUFFER_H_
#define DIKNN_CORE_RING_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/alloc_probe.h"

namespace diknn {

template <typename T>
class RingBuffer {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return buffer_.size(); }

  void push_back(T value) {
    if (size_ == buffer_.size()) Grow();
    buffer_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  T& front() {
    assert(size_ > 0);
    return buffer_[head_];
  }
  const T& front() const {
    assert(size_ > 0);
    return buffer_[head_];
  }

  void pop_front() {
    assert(size_ > 0);
    buffer_[head_] = T{};  // Release owned resources eagerly.
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  /// i-th element from the front (0 = front).
  T& operator[](size_t i) {
    assert(i < size_);
    return buffer_[(head_ + i) & mask_];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return buffer_[(head_ + i) & mask_];
  }

  void clear() {
    while (!empty()) pop_front();
  }

  /// Pre-sizes the buffer to hold at least `n` elements (rounded up to a
  /// power of two) so bounded FIFOs never grow mid-run.
  void reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap < n) cap *= 2;
    if (cap > buffer_.size()) Rebuild(cap);
  }

 private:
  static constexpr size_t kMinCapacity = 8;

  void Grow() {
    Rebuild(buffer_.empty() ? kMinCapacity : buffer_.size() * 2);
  }

  void Rebuild(size_t new_cap) {
    // Geometric growth to a retained high-water mark: capacity, excluded
    // from per-operation allocation attribution.
    AllocScopePause capacity;
    std::vector<T> next(new_cap);
    for (size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buffer_[(head_ + i) & mask_]);
    }
    buffer_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buffer_;
  size_t head_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace diknn

#endif  // DIKNN_CORE_RING_BUFFER_H_
