// Deterministic random number generation.
//
// Every simulation run draws all of its randomness from a single Rng seeded
// by the experiment harness, making runs exactly reproducible. The paper's
// "average over 20 simulation runs" protocol maps to 20 consecutive seeds.

#ifndef DIKNN_CORE_RNG_H_
#define DIKNN_CORE_RNG_H_

#include <cstdint>

#include "core/geometry.h"

namespace diknn {

/// PCG32 (O'Neill) generator: small state, excellent statistical quality,
/// fully deterministic across platforms — unlike std::mt19937 +
/// std::uniform_real_distribution whose outputs are implementation-defined.
class Rng {
 public:
  /// Seeds the generator. Distinct seeds yield independent-looking streams.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next raw 32-bit output.
  uint32_t NextUint32();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Exponentially distributed value with the given mean (> 0). Used for
  /// the paper's query inter-arrival times ("exponentially distributed
  /// with mean 4 s").
  double Exponential(double mean);

  /// Standard normal via Box-Muller (no cached second value, for
  /// reproducibility of the draw count).
  double Normal(double mean, double stddev);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniform point inside the axis-aligned rectangle.
  Point PointInRect(const Rect& rect);

  /// Uniform point inside the disk centered at `c` with radius `r`.
  Point PointInDisk(const Point& c, double r);

  /// Derives an independent child generator; useful to give each node its
  /// own stream while preserving run-level determinism.
  Rng Fork();

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace diknn

#endif  // DIKNN_CORE_RNG_H_
