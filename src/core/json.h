// Minimal JSON reader for the repo's own artifacts.
//
// The tooling side (tools/diknn_report.cc) and the export round-trip
// tests need to read back the JSON this repo writes (--metrics-out,
// --ts-out, the Chrome trace). A full JSON library is out of scope for
// the container, so this is a small recursive-descent parser covering
// RFC 8259: objects, arrays, strings (with escapes), numbers, booleans,
// null. Object member order is preserved. It is a *reader* — writing
// stays with the deterministic hand-rolled emitters, whose byte layout
// is part of the bit-identity contract.

#ifndef DIKNN_CORE_JSON_H_
#define DIKNN_CORE_JSON_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace diknn {

/// One parsed JSON value. Plain struct-of-vectors — cheap enough for
/// post-run artifact sizes, no variant gymnastics.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Members in document order (duplicate keys keep the first).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Find() chained through nested objects: Get("a", "b") == a.b.
  template <typename... Keys>
  const JsonValue* Get(const std::string& key, Keys&&... rest) const {
    const JsonValue* v = Find(key);
    if constexpr (sizeof...(rest) == 0) {
      return v;
    } else {
      return v != nullptr ? v->Get(std::forward<Keys>(rest)...) : nullptr;
    }
  }

  double NumberOr(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  std::string StringOr(const std::string& fallback) const {
    return kind == Kind::kString ? string : fallback;
  }

  /// Parses one JSON document (trailing whitespace allowed, trailing
  /// garbage rejected). std::nullopt + `error` on malformed input.
  static std::optional<JsonValue> Parse(const std::string& text,
                                        std::string* error = nullptr);
};

}  // namespace diknn

#endif  // DIKNN_CORE_JSON_H_
