// Per-subsystem heap-allocation accounting for the allocation-free
// packet plane (docs/PACKET_PLANE.md).
//
// The global operator new/delete are replaced (alloc_probe.cc) with thin
// wrappers over malloc/free that, when a scope is armed on the current
// thread, count every allocation into that scope's AllocCounters. Scopes
// nest (save/restore), so the channel can attribute its own work to `net`
// while a protocol handler running inside a delivery event re-tags its
// section as `knn`. With no scope armed the wrappers are a single
// thread_local load — effectively free — and sanitizer builds keep
// working because the wrappers defer to the (intercepted) malloc/free.
//
// The counters gate the steady state: after warmup the net plane performs
// zero allocations per frame, enforced by bench_micro's self-check and by
// scripts/check_all.sh on the --metrics-out JSON.

#ifndef DIKNN_CORE_ALLOC_PROBE_H_
#define DIKNN_CORE_ALLOC_PROBE_H_

#include <cstddef>
#include <cstdint>

namespace diknn {

/// Allocation tallies for one subsystem. Monotone; reset by the owner.
struct AllocCounters {
  uint64_t allocations = 0;
  uint64_t bytes = 0;

  void Reset() {
    allocations = 0;
    bytes = 0;
  }
};

namespace alloc_probe {

/// Counters armed on the current thread (nullptr = not counting).
AllocCounters* Current();

/// Arms `counters` on the current thread, returning the previous value
/// for restoration. Prefer the AllocScope RAII below.
AllocCounters* Exchange(AllocCounters* counters);

/// Process-wide tally of every allocation the replaced operator new saw
/// on any thread, attributed or not (diagnostics only; approximate under
/// concurrency — relaxed atomics).
uint64_t TotalAllocations();

}  // namespace alloc_probe

/// Attributes allocations on this thread to `counters` for the scope's
/// lifetime. Nests: the previous attribution is restored on destruction.
class AllocScope {
 public:
  explicit AllocScope(AllocCounters* counters)
      : previous_(alloc_probe::Exchange(counters)) {}
  ~AllocScope() { alloc_probe::Exchange(previous_); }

  AllocScope(const AllocScope&) = delete;
  AllocScope& operator=(const AllocScope&) = delete;

 private:
  AllocCounters* previous_;
};

/// Suspends attribution for the scope's lifetime. Used by the tracer so
/// recording spans never shows up in the subsystem counters — traced runs
/// must publish byte-identical metrics to untraced ones (obs_noop_test).
class AllocScopePause {
 public:
  AllocScopePause() : previous_(alloc_probe::Exchange(nullptr)) {}
  ~AllocScopePause() { alloc_probe::Exchange(previous_); }

  AllocScopePause(const AllocScopePause&) = delete;
  AllocScopePause& operator=(const AllocScopePause&) = delete;

 private:
  AllocCounters* previous_;
};

}  // namespace diknn

#endif  // DIKNN_CORE_ALLOC_PROBE_H_
