// Minimal leveled logging for simulation tracing.
//
// Logging defaults to kWarn so that tests and benchmarks stay quiet; the
// Fig. 7 visualization bench raises the level to emit itinerary traces.

#ifndef DIKNN_CORE_LOGGING_H_
#define DIKNN_CORE_LOGGING_H_

#include <sstream>
#include <string>

namespace diknn {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level; messages below it are dropped cheaply.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Emits a formatted line to stderr. Not intended for direct use; call the
/// DIKNN_LOG macro instead so disabled levels skip message formatting.
void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message);

}  // namespace internal
}  // namespace diknn

/// Streams a log message at the given level, e.g.
///   DIKNN_LOG(kInfo) << "query " << id << " finished";
#define DIKNN_LOG(level)                                                   \
  if (::diknn::LogLevel::level < ::diknn::GetLogLevel()) {                 \
  } else                                                                   \
    ::diknn::internal::LogMessage(::diknn::LogLevel::level, __FILE__,      \
                                  __LINE__)

namespace diknn::internal {

/// RAII stream that emits on destruction; created by DIKNN_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace diknn::internal

#endif  // DIKNN_CORE_LOGGING_H_
