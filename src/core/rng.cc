#include "core/rng.h"

#include <cassert>
#include <cmath>

namespace diknn {

namespace {

// SplitMix64: used to expand the user seed into PCG's (state, inc) pair so
// that small consecutive seeds still produce decorrelated streams.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  state_ = SplitMix64(sm);
  inc_ = SplitMix64(sm) | 1ULL;  // Stream selector must be odd.
  NextUint32();                  // Warm up past the seed-correlated state.
}

uint32_t Rng::NextUint32() {
  const uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const uint32_t xorshifted =
      static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  const uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::NextDouble() {
  // 53 random bits -> [0, 1) with full double precision.
  const uint64_t hi = static_cast<uint64_t>(NextUint32()) << 21;
  const uint64_t lo = NextUint32() >> 11;
  return static_cast<double>(hi | lo) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int Rng::UniformInt(int lo, int hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi) - lo + 1;
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = (0x100000000ULL / range) * range;
  uint64_t r;
  do {
    r = NextUint32();
  } while (r >= limit);
  return lo + static_cast<int>(r % range);
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 == 0.0);
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  return mean + stddev * z;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Point Rng::PointInRect(const Rect& rect) {
  return {Uniform(rect.min.x, rect.max.x), Uniform(rect.min.y, rect.max.y)};
}

Point Rng::PointInDisk(const Point& c, double r) {
  // Inverse-CDF sampling: radius ~ r*sqrt(U) gives area-uniform points.
  const double rad = r * std::sqrt(NextDouble());
  const double ang = Uniform(0.0, kTwoPi);
  return PointAtAngle(c, ang, rad);
}

Rng Rng::Fork() {
  const uint64_t child_seed =
      (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
  return Rng(child_seed);
}

}  // namespace diknn
