#include "core/json.h"

#include <cctype>
#include <cstdlib>

namespace diknn {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& reason) {
    if (error_ != nullptr) {
      *error_ = reason + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false", 5);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null", 4);
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by this repo's emitters; pass them through raw).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(start, &end);
    if (end == start) return Fail("expected a value");
    out->kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<JsonValue> JsonValue::Parse(const std::string& text,
                                          std::string* error) {
  JsonValue out;
  Parser parser(text, error);
  if (!parser.ParseDocument(&out)) return std::nullopt;
  return out;
}

}  // namespace diknn
