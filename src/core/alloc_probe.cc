// Replacement global operator new/delete with per-thread attribution.
// See alloc_probe.h for the contract. The wrappers call malloc/free so
// ASan/TSan/UBSan keep full heap interception underneath.

#include "core/alloc_probe.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace diknn {
namespace alloc_probe {
namespace {

thread_local AllocCounters* tl_counters = nullptr;
std::atomic<uint64_t> total_allocations{0};

inline void* CountedAlloc(size_t size, size_t align) {
  total_allocations.fetch_add(1, std::memory_order_relaxed);
  AllocCounters* c = tl_counters;
  if (c != nullptr) {
    ++c->allocations;
    c->bytes += size;
  }
  void* p = align <= alignof(std::max_align_t)
                ? std::malloc(size)
                : std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

AllocCounters* Current() { return tl_counters; }

AllocCounters* Exchange(AllocCounters* counters) {
  AllocCounters* previous = tl_counters;
  tl_counters = counters;
  return previous;
}

uint64_t TotalAllocations() {
  return total_allocations.load(std::memory_order_relaxed);
}

}  // namespace alloc_probe
}  // namespace diknn

// ---- global replacements ------------------------------------------------

void* operator new(size_t size) {
  return diknn::alloc_probe::CountedAlloc(size ? size : 1,
                                          alignof(std::max_align_t));
}
void* operator new[](size_t size) {
  return diknn::alloc_probe::CountedAlloc(size ? size : 1,
                                          alignof(std::max_align_t));
}
void* operator new(size_t size, std::align_val_t align) {
  return diknn::alloc_probe::CountedAlloc(size ? size : 1,
                                          static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return diknn::alloc_probe::CountedAlloc(size ? size : 1,
                                          static_cast<size_t>(align));
}
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  try {
    return diknn::alloc_probe::CountedAlloc(size ? size : 1,
                                            alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  try {
    return diknn::alloc_probe::CountedAlloc(size ? size : 1,
                                            alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
