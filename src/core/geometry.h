// 2-D geometric primitives used throughout the library.
//
// All coordinates are in meters in a flat Euclidean plane (the paper's
// simulation fields are at most a few hundred meters across, so no geodesic
// handling is needed). Angles are in radians, normalized to [0, 2*pi).

#ifndef DIKNN_CORE_GEOMETRY_H_
#define DIKNN_CORE_GEOMETRY_H_

#include <cmath>
#include <ostream>
#include <string>
#include <vector>

namespace diknn {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// A point (or displacement vector) in the 2-D simulation plane. Units: m.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
  constexpr Point operator/(double s) const { return {x / s, y / s}; }
  Point& operator+=(const Point& o) {
    x += o.x;
    y += o.y;
    return *this;
  }

  constexpr bool operator==(const Point& o) const = default;

  /// Euclidean norm when interpreted as a vector from the origin.
  double Norm() const { return std::hypot(x, y); }

  /// Squared norm; avoids the sqrt when only comparisons are needed.
  constexpr double SquaredNorm() const { return x * x + y * y; }

  /// Dot product with another vector.
  constexpr double Dot(const Point& o) const { return x * o.x + y * o.y; }

  /// Z-component of the 3-D cross product (signed parallelogram area).
  constexpr double Cross(const Point& o) const { return x * o.y - y * o.x; }

  /// Unit-length copy; returns (0,0) for the zero vector.
  Point Normalized() const;

  /// This vector rotated counter-clockwise by `radians`.
  Point Rotated(double radians) const;

  std::string ToString() const;
};

inline constexpr Point operator*(double s, const Point& p) { return p * s; }

std::ostream& operator<<(std::ostream& os, const Point& p);

/// Euclidean distance between two points (the DIST function of Def. 1).
inline double Distance(const Point& a, const Point& b) {
  return (a - b).Norm();
}

/// Squared Euclidean distance; prefer for comparisons.
inline constexpr double SquaredDistance(const Point& a, const Point& b) {
  return (a - b).SquaredNorm();
}

/// Normalizes an angle into [0, 2*pi).
double NormalizeAngle(double radians);

/// Signed smallest difference a-b, normalized into (-pi, pi].
double AngleDifference(double a, double b);

/// Polar angle of the vector from `from` to `to`, in [0, 2*pi).
double AngleOf(const Point& from, const Point& to);

/// Point at distance `radius` from `center` in direction `angle`.
Point PointAtAngle(const Point& center, double angle, double radius);

/// Linear interpolation between `a` (t=0) and `b` (t=1).
Point Lerp(const Point& a, const Point& b, double t);

/// Distance from point `p` to the closed segment [a, b].
double PointSegmentDistance(const Point& p, const Point& a, const Point& b);

/// True if the closed segments [a,b] and [c,d] intersect.
bool SegmentsIntersect(const Point& a, const Point& b, const Point& c,
                       const Point& d);

/// Axis-aligned bounding rectangle. Used for Peer-tree MBRs and field
/// boundaries. Degenerate (min > max) rectangles are "empty".
struct Rect {
  Point min;  ///< Lower-left corner.
  Point max;  ///< Upper-right corner.

  /// An empty rectangle: union with it yields the other operand.
  static Rect Empty();

  /// The rectangle spanning [0,w] x [0,h].
  static Rect Field(double w, double h) { return {{0.0, 0.0}, {w, h}}; }

  bool IsEmpty() const { return min.x > max.x || min.y > max.y; }
  double Width() const { return max.x - min.x; }
  double Height() const { return max.y - min.y; }
  double Area() const { return IsEmpty() ? 0.0 : Width() * Height(); }
  Point Center() const { return {(min.x + max.x) / 2, (min.y + max.y) / 2}; }

  /// Half the perimeter; the classic R-tree enlargement cost metric.
  double Margin() const { return IsEmpty() ? 0.0 : Width() + Height(); }

  bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  bool Contains(const Rect& o) const {
    return !o.IsEmpty() && Contains(o.min) && Contains(o.max);
  }
  bool Intersects(const Rect& o) const {
    return !IsEmpty() && !o.IsEmpty() && min.x <= o.max.x &&
           max.x >= o.min.x && min.y <= o.max.y && max.y >= o.min.y;
  }

  /// Smallest rectangle containing both operands.
  Rect Union(const Rect& o) const;

  /// Smallest rectangle containing this one and `p`.
  Rect Expanded(const Point& p) const;

  /// Minimum Euclidean distance from `p` to this rectangle (0 if inside).
  double MinDistance(const Point& p) const;

  /// `p` clamped into the rectangle.
  Point Clamp(const Point& p) const;

  std::string ToString() const;
};

/// Partition of the disk around a query point into `count` equal cones
/// (Fig. 4(a) of the paper). Sector 0 spans polar angles [0, 2*pi/count).
class SectorPartition {
 public:
  /// Creates a partition of `count` >= 1 sectors centered at `origin`.
  SectorPartition(Point origin, int count);

  const Point& origin() const { return origin_; }
  int count() const { return count_; }

  /// Central angle of each sector (2*pi / count).
  double SectorAngle() const { return kTwoPi / count_; }

  /// Index in [0, count) of the sector containing `p`. Points at the origin
  /// map to sector 0.
  int SectorOf(const Point& p) const;

  /// Polar angle of the lower (counter-clockwise start) border of sector i.
  double LowerBorderAngle(int i) const;

  /// Polar angle of the upper border of sector i.
  double UpperBorderAngle(int i) const;

  /// Polar angle of the bisector of sector i.
  double BisectorAngle(int i) const;

  /// True if `p` lies inside sector `i` and within `radius` of the origin.
  bool InSector(const Point& p, int i, double radius) const;

 private:
  Point origin_;
  int count_;
};

}  // namespace diknn

#endif  // DIKNN_CORE_GEOMETRY_H_
