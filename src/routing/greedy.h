// Greedy geographic next-hop selection, shared between the serial GPSR
// router (src/routing/gpsr.cc) and the parallel query plane
// (src/psim/query_plane.cc). Both planes must pick hops by the same rule
// — strictly closer to the destination, best progress, previous hop
// excluded — so the forwarding behaviour a test observes does not depend
// on which engine carried the packet.

#ifndef DIKNN_ROUTING_GREEDY_H_
#define DIKNN_ROUTING_GREEDY_H_

#include <vector>

#include "core/geometry.h"
#include "net/neighbor_table.h"
#include "net/packet.h"

namespace diknn {

/// Picks the entry of `neighbors` strictly closer to `dest` than
/// `self_distance`, minimizing the remaining distance. `prev_hop` is
/// excluded: with beacon-stale positions the previous hop can look closer
/// than it is and cause A<->B ping-pong until the TTL burns out. Returns
/// nullptr at a local minimum (no strictly closer neighbor).
inline const NeighborEntry* GreedyNextHop(
    const std::vector<NeighborEntry>& neighbors, const Point& dest,
    double self_distance, NodeId prev_hop) {
  const NeighborEntry* best = nullptr;
  double best_d = self_distance;
  for (const NeighborEntry& n : neighbors) {
    if (n.id == prev_hop) continue;
    const double d = Distance(n.position, dest);
    if (d < best_d) {
      best_d = d;
      best = &n;
    }
  }
  return best;
}

/// Same rule directly over a NeighborTable's fresh entries at `now`,
/// without materializing a snapshot (the parallel query plane's hot
/// path). Returns the best next hop's id via `out` and true, or false at
/// a local minimum.
inline bool GreedyNextHopFrom(const NeighborTable& table, const Point& self,
                              const Point& dest, NodeId prev_hop,
                              SimTime now, NeighborEntry* out) {
  double best_d = Distance(self, dest);
  bool found = false;
  table.ForEachFresh(now, [&](const NeighborEntry& n) {
    if (n.id == prev_hop) return;
    const double d = Distance(n.position, dest);
    if (d < best_d) {
      best_d = d;
      *out = n;
      found = true;
    }
  });
  return found;
}

}  // namespace diknn

#endif  // DIKNN_ROUTING_GREEDY_H_
