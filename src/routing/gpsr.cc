#include "routing/gpsr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/alloc_probe.h"
#include "core/logging.h"
#include "net/packet_pool.h"
#include "obs/tracer.h"
#include "routing/greedy.h"
#include "routing/planarize.h"

namespace diknn {

size_t GeoRoutedMessage::WireBytes() const {
  // destination + mode/ttl + perimeter entry point + two node ids + list
  // length, plus the payload and the accumulated info list.
  size_t bytes = kPositionBytes + 2 + kPositionBytes + 3 * kNodeIdBytes + 2;
  bytes += inner_bytes;
  if (collect_info) bytes += info_list.size() * kRouteHopInfoBytes;
  return bytes;
}

GpsrRouting::GpsrRouting(Network* network, GpsrParams params)
    : network_(network), params_(params) {
  if (params_.ttl <= 0) {
    const Rect& field = network_->config().field;
    const double diagonal = std::hypot(field.Width(), field.Height());
    params_.ttl = std::max(
        96, static_cast<int>(8.0 * diagonal /
                             network_->config().radio_range_m));
  }
  // Size the fork-suppression table and its eviction FIFO once;
  // steady-state flow churn then never rehashes or grows the ring (the +1
  // covers the transient insert-before-evict).
  flow_progress_.reserve(kFlowCapacity + 1);
  flow_order_.reserve(kFlowCapacity + 1);
}

void GpsrRouting::Install() {
  for (Node* node : network_->AllNodes()) {
    node->RegisterHandler(
        MessageType::kGeoRouted, [this, node](const Packet& p) {
          const auto* received =
              static_cast<const GeoRoutedMessage*>(p.payload.get());
          // Collapse token forks: only arrivals that advance the flow's
          // hop counter are processed.
          auto [kv, inserted] = flow_progress_.TryEmplace(
              received->flow_id, received->hop_index);
          if (inserted) {
            flow_order_.push_back(received->flow_id);
            if (flow_order_.size() > kFlowCapacity) {
              flow_progress_.erase(flow_order_.front());
              flow_order_.pop_front();
            }
          } else {
            if (received->hop_index <= kv->second) {
              ++stats_.forks_suppressed;
              return;
            }
            kv->second = received->hop_index;
          }
          // Copy the routing envelope: state mutates per hop, while the
          // received payload is shared and immutable. The copy target is
          // a recycled pool object (its info-list capacity survives), so
          // the assignment only allocates while that capacity still grows.
          auto msg = MessagePool::MakeReusable<GeoRoutedMessage>();
          {
            AllocScopePause capacity;
            *msg = *received;
          }
          Forward(node, std::move(msg), p.category);
        });
  }
}

void GpsrRouting::RegisterDelivery(MessageType inner_type,
                                   DeliveryHandler handler) {
  const size_t index = static_cast<size_t>(inner_type);
  assert(index < kMessageTypeSpan && "MessageType outside dispatch table");
  deliveries_[index] = std::move(handler);
}

void GpsrRouting::Send(Node* src, Point destination, MessageType inner_type,
                       std::shared_ptr<const Message> inner,
                       size_t inner_bytes, EnergyCategory category,
                       bool collect_info, NodeId target_node,
                       bool cheap_delivery, TraceContext trace) {
  auto msg = MessagePool::MakeReusable<GeoRoutedMessage>();
  msg->destination = destination;
  msg->target_node = target_node;
  msg->cheap_delivery = cheap_delivery;
  msg->inner_type = inner_type;
  msg->inner = std::move(inner);
  msg->inner_bytes = inner_bytes;
  msg->ttl = params_.ttl;
  msg->collect_info = collect_info;
  msg->flow_id = next_flow_id_++;
  msg->trace = trace;
  ++stats_.sends;
  Forward(src, std::move(msg), category);
}

void GpsrRouting::AppendHopInfo(Node* node, GeoRoutedMessage* msg,
                                double radio_range) {
  const SimTime now = node->sim()->Now();
  RouteHopInfo info;
  info.location = node->Position();
  if (msg->info_list.empty()) {
    // First hop: every neighbor is newly encountered.
    info.encountered = node->neighbors().CountFresh(now);
  } else {
    // Count neighbors beyond radio range of the previous hop's node — the
    // paper's duplicate-avoidance rule for enc_i (Section 4.1).
    info.encountered = node->neighbors().CountFartherThan(
        msg->info_list.back().location, radio_range, now);
  }
  // The info list rides a recycled envelope; growth past the envelope's
  // previous high water is capacity, not a per-hop transient.
  AllocScopePause capacity;
  msg->info_list.push_back(info);
}

void GpsrRouting::Forward(Node* node, std::shared_ptr<GeoRoutedMessage> msg,
                          EnergyCategory category) {
  const SimTime now = node->sim()->Now();
  const Point self = node->Position();
  const Point& dest = msg->destination;

  if (msg->collect_info) {
    AppendHopInfo(node, msg.get(), network_->config().radio_range_m);
  }

  if (msg->ttl <= 0) {
    ++stats_.ttl_expired;
    Deliver(node, *msg);
    return;
  }

  // Node-addressed routing: deliver at the target itself, or short-circuit
  // when the target shows up in the local neighbor table.
  if (msg->target_node != kInvalidNodeId) {
    if (node->id() == msg->target_node) {
      Deliver(node, *msg);
      return;
    }
    if (node->neighbors().Lookup(msg->target_node, now).has_value()) {
      --msg->ttl;
      ++stats_.greedy_hops;
      const NodeId target = msg->target_node;
      SendToNeighbor(node, target, std::move(msg), category);
      return;
    }
  }

  const double d_self = Distance(self, dest);

  // Perimeter-mode bookkeeping: resume greedy once we are closer to the
  // destination than where we entered the perimeter walk.
  if (msg->mode == GeoRoutedMessage::Mode::kPerimeter) {
    if (d_self < Distance(msg->perimeter_entry, dest)) {
      msg->mode = GeoRoutedMessage::Mode::kGreedy;
    } else if (msg->perimeter_hops > 0 &&
               node->id() == msg->perimeter_entry_node) {
      // Walked the whole face back to the entry node: it is the closest
      // node to the destination in this region — deliver here.
      Deliver(node, *msg);
      return;
    }
  }

  // Scratch reuse is safe: every nested Forward (delivery handler sending,
  // dead-node synchronous failure callback) happens after this call's last
  // read of the buffers.
  std::vector<NeighborEntry>& neighbors = neighbors_scratch_;
  node->neighbors().SnapshotInto(now, &neighbors);
  if (neighbors.empty()) {
    ++stats_.dropped_no_neighbor;
    Deliver(node, *msg);  // Isolated node: best effort delivery in place.
    return;
  }

  if (msg->mode == GeoRoutedMessage::Mode::kGreedy) {
    // Greedy: strictly closer neighbor with the best progress, previous
    // hop excluded (routing/greedy.h — the same rule the parallel query
    // plane applies, so forwarding behaviour is engine-independent).
    const NeighborEntry* best =
        GreedyNextHop(neighbors, dest, d_self, msg->prev_hop);
    if (best != nullptr) {
      ++stats_.greedy_hops;
      --msg->ttl;
      SendToNeighbor(node, best->id, std::move(msg), category);
      return;
    }
    // Local minimum. Close enough to the destination point? Then this is
    // its home node: deliver without the ceremonial face walk — unless
    // the message is node-addressed and the target is not in this node's
    // (possibly beacon-gapped) table: the perimeter walk consults the
    // neighboring tables and almost always finds the target.
    if ((msg->target_node == kInvalidNodeId || msg->cheap_delivery) &&
        d_self <= params_.direct_delivery_fraction *
                      network_->config().radio_range_m) {
      Deliver(node, *msg);
      return;
    }
    // Otherwise walk the perimeter around the void; the entry-node return
    // rule above delivers here if the whole face is farther away.
    msg->mode = GeoRoutedMessage::Mode::kPerimeter;
    msg->perimeter_entry = self;
    msg->perimeter_entry_node = node->id();
    msg->perimeter_hops = 0;
    if (tracer_ != nullptr && msg->trace.sampled()) {
      tracer_->AddEvent(msg->trace, TraceEventKind::kPerimeterEnter, now,
                        node->id());
    }
  }

  // Perimeter mode: right-hand rule on the planarized neighbor set.
  std::vector<NeighborEntry>& planar = planar_scratch_;
  if (params_.planarization == Planarization::kGabriel) {
    GabrielNeighborsInto(self, neighbors, &planar);
  } else {
    RngNeighborsInto(self, neighbors, &planar);
  }
  if (planar.empty()) {
    ++stats_.dropped_no_neighbor;
    Deliver(node, *msg);
    return;
  }

  // Reference direction: the edge we arrived on, or toward the
  // destination when starting the walk at the local minimum.
  const double ref_angle =
      (msg->prev_hop != kInvalidNodeId && msg->perimeter_hops > 0)
          ? AngleOf(self, msg->prev_hop_position)
          : AngleOf(self, dest);

  // First edge counter-clockwise from the reference direction. The
  // incoming edge itself (delta == 0) is taken only as a last resort.
  const NeighborEntry* next = nullptr;
  double best_delta = std::numeric_limits<double>::infinity();
  for (const NeighborEntry& n : planar) {
    double delta = NormalizeAngle(AngleOf(self, n.position) - ref_angle);
    if (n.id == msg->prev_hop || delta == 0.0) delta += kTwoPi;
    if (delta < best_delta) {
      best_delta = delta;
      next = &n;
    }
  }
  assert(next != nullptr);

  ++stats_.perimeter_hops;
  ++msg->perimeter_hops;
  --msg->ttl;
  SendToNeighbor(node, next->id, std::move(msg), category);
}

void GpsrRouting::SendToNeighbor(Node* node, NodeId next,
                                 std::shared_ptr<GeoRoutedMessage> msg,
                                 EnergyCategory category) {
  msg->prev_hop = node->id();
  msg->prev_hop_position = node->Position();
  ++msg->hop_index;
  const size_t bytes = msg->WireBytes();
  node->SendUnicast(
      next, MessageType::kGeoRouted, msg, bytes, category,
      [this, node, next, msg, category](bool success) {
        if (success) return;
        // The neighbor moved away or its link is too lossy: evict it and
        // re-route from this node — unless the "failed" recipient actually
        // got the frame (lost ACK) and the token is already ahead of us.
        ++stats_.link_failures;
        const int* progress = flow_progress_.find(msg->flow_id);
        if (progress != nullptr && *progress >= msg->hop_index) {
          ++stats_.forks_suppressed;
          return;
        }
        if (tracer_ != nullptr && msg->trace.sampled()) {
          tracer_->AddEvent(msg->trace, TraceEventKind::kReroute,
                            node->sim()->Now(), node->id(), next);
        }
        node->neighbors().Remove(next);
        auto retry = MessagePool::MakeReusable<GeoRoutedMessage>();
        {
          // Recycled envelope: the copy only allocates while the pooled
          // object's info-list capacity is still growing.
          AllocScopePause capacity;
          *retry = *msg;
        }
        --retry->hop_index;  // Forward() re-increments on the next send.
        if (retry->collect_info && !retry->info_list.empty()) {
          // Forward() will re-append this node's entry.
          retry->info_list.pop_back();
        }
        Forward(node, std::move(retry), category);
      },
      msg->trace);
}

void GpsrRouting::Deliver(Node* node, const GeoRoutedMessage& msg) {
  ++stats_.deliveries;
  // A delivered flow is finished; suppress any straggling fork copies.
  int* progress = flow_progress_.find(msg.flow_id);
  if (progress != nullptr) {
    *progress = std::numeric_limits<int>::max();
  }
  const size_t index = static_cast<size_t>(msg.inner_type);
  if (index >= kMessageTypeSpan || !deliveries_[index]) {
    DIKNN_LOG(kWarn) << "GPSR delivery with no handler for inner type "
                     << MessageTypeName(msg.inner_type);
    return;
  }
  deliveries_[index](node, msg);
}

}  // namespace diknn
