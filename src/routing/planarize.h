// Local graph planarization for GPSR perimeter mode.
//
// GPSR's face routing is only correct on a planar subgraph of the radio
// connectivity graph. Each node computes its planar edge set locally from
// its neighbor table using the Gabriel Graph (GG) criterion: the edge
// (u, v) survives iff no witness w lies strictly inside the circle whose
// diameter is uv. GG keeps connectivity and is the planarization used in
// the original GPSR paper (Karp & Kung, MobiCom 2000).

#ifndef DIKNN_ROUTING_PLANARIZE_H_
#define DIKNN_ROUTING_PLANARIZE_H_

#include <vector>

#include "core/geometry.h"
#include "net/neighbor_table.h"

namespace diknn {

/// Clears `out` and fills it with the neighbors at `self` that survive
/// Gabriel Graph planarization, computed over the given fresh-neighbor
/// snapshot. Reusing `out` keeps the per-hop planarization allocation-free
/// once it has reached its high-water capacity.
void GabrielNeighborsInto(const Point& self,
                          const std::vector<NeighborEntry>& neighbors,
                          std::vector<NeighborEntry>* out);

/// Relative Neighborhood Graph (RNG) variant: the edge (u, v) survives iff
/// no witness w with max(d(u,w), d(v,w)) < d(u,v). RNG is a subgraph of GG
/// (sparser); provided for ablations.
void RngNeighborsInto(const Point& self,
                      const std::vector<NeighborEntry>& neighbors,
                      std::vector<NeighborEntry>* out);

/// Allocating conveniences (tests, offline analysis).
std::vector<NeighborEntry> GabrielNeighbors(
    const Point& self, const std::vector<NeighborEntry>& neighbors);
std::vector<NeighborEntry> RngNeighbors(
    const Point& self, const std::vector<NeighborEntry>& neighbors);

}  // namespace diknn

#endif  // DIKNN_ROUTING_PLANARIZE_H_
