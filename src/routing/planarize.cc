#include "routing/planarize.h"

#include <algorithm>

#include "core/alloc_probe.h"

namespace diknn {

void GabrielNeighborsInto(const Point& self,
                          const std::vector<NeighborEntry>& neighbors,
                          std::vector<NeighborEntry>* out) {
  out->clear();
  if (out->capacity() < neighbors.size()) {
    // The caller passes a persistent scratch; growth past its previous
    // high-water mark is retained capacity, not a per-hop transient.
    AllocScopePause capacity;
    out->reserve(neighbors.size());
  }
  for (const NeighborEntry& v : neighbors) {
    const Point mid = Lerp(self, v.position, 0.5);
    const double radius2 = SquaredDistance(self, v.position) / 4.0;
    bool witnessed = false;
    for (const NeighborEntry& w : neighbors) {
      if (w.id == v.id) continue;
      if (SquaredDistance(w.position, mid) < radius2) {
        witnessed = true;
        break;
      }
    }
    if (!witnessed) out->push_back(v);
  }
}

void RngNeighborsInto(const Point& self,
                      const std::vector<NeighborEntry>& neighbors,
                      std::vector<NeighborEntry>* out) {
  out->clear();
  if (out->capacity() < neighbors.size()) {
    // Persistent-scratch growth: capacity, see GabrielNeighborsInto.
    AllocScopePause capacity;
    out->reserve(neighbors.size());
  }
  for (const NeighborEntry& v : neighbors) {
    const double duv2 = SquaredDistance(self, v.position);
    bool witnessed = false;
    for (const NeighborEntry& w : neighbors) {
      if (w.id == v.id) continue;
      const double m2 = std::max(SquaredDistance(self, w.position),
                                 SquaredDistance(v.position, w.position));
      if (m2 < duv2) {
        witnessed = true;
        break;
      }
    }
    if (!witnessed) out->push_back(v);
  }
}

std::vector<NeighborEntry> GabrielNeighbors(
    const Point& self, const std::vector<NeighborEntry>& neighbors) {
  std::vector<NeighborEntry> out;
  GabrielNeighborsInto(self, neighbors, &out);
  return out;
}

std::vector<NeighborEntry> RngNeighbors(
    const Point& self, const std::vector<NeighborEntry>& neighbors) {
  std::vector<NeighborEntry> out;
  RngNeighborsInto(self, neighbors, &out);
  return out;
}

}  // namespace diknn
