// GPSR — Greedy Perimeter Stateless Routing (Karp & Kung, MobiCom 2000).
//
// Routes a message toward a geographic point q. Each hop forwards to the
// neighbor closest to q (greedy mode); at a local minimum the packet
// switches to perimeter mode and walks the planarized face using the
// right-hand rule, resuming greedy as soon as a node closer to q than the
// perimeter entry point is reached. A packet whose perimeter walk returns
// to its entry node is *delivered there*: that node is the closest node to
// q in its connected region — exactly the "home node" DIKNN's routing
// phase needs (Section 4.1).
//
// While forwarding, GPSR optionally appends the per-hop information list L
// of DIKNN's phase 1: each relaying node records its location loc_i and
// enc_i, the number of newly-encountered neighbors (those farther than the
// radio range r from the previous hop's location).
//
// Steady-state allocation discipline (docs/PACKET_PLANE.md): routing
// envelopes come from the message pool (recycled per thread, Reuse()
// retains info-list capacity), the fork-suppression table is a flat map
// with a ring-buffer eviction FIFO, delivery dispatch is an array indexed
// by message type, and the per-hop neighbor snapshot / planarization use
// member scratch buffers — after warmup a routed hop allocates nothing.

#ifndef DIKNN_ROUTING_GPSR_H_
#define DIKNN_ROUTING_GPSR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/flat_map.h"
#include "core/geometry.h"
#include "core/ring_buffer.h"
#include "net/network.h"
#include "net/packet.h"

namespace diknn {

class Tracer;

/// One entry of DIKNN's information list L (Section 4.1).
struct RouteHopInfo {
  Point location;  ///< loc_i: position of the node triggering hop i.
  int encountered = 0;  ///< enc_i: newly encountered neighbor count.
};

/// Over-the-air size of one list entry (location + counter).
inline constexpr size_t kRouteHopInfoBytes = kPositionBytes + 2;

/// A geographically routed envelope around an application message.
struct GeoRoutedMessage : Message {
  enum class Mode { kGreedy, kPerimeter };

  Point destination;            ///< The target point q.
  /// When set, the message is for this specific node: any hop that has the
  /// target in its neighbor table short-circuits to it, and delivery at
  /// any other node means the target was not found (it moved away).
  NodeId target_node = kInvalidNodeId;
  MessageType inner_type{};     ///< Delivered to this handler on arrival.
  std::shared_ptr<const Message> inner;
  size_t inner_bytes = 0;

  // -- GPSR state carried in the packet header --
  /// Periodic, refreshable traffic (registrations, location updates) sets
  /// this: losing one instance is cheaper than perimeter-walking for it,
  /// so the direct-delivery shortcut applies even when node-addressed.
  bool cheap_delivery = false;
  /// Flow identity + hop counter. A routed message is a single logical
  /// token; when a MAC ACK is lost the sender retries via another node
  /// while the original recipient may already be forwarding, forking the
  /// token. Receivers drop arrivals whose hop_index does not advance the
  /// flow's last-seen value, collapsing forks immediately.
  uint64_t flow_id = 0;
  int hop_index = 0;
  Mode mode = Mode::kGreedy;
  Point perimeter_entry;        ///< Position where perimeter mode began.
  NodeId perimeter_entry_node = kInvalidNodeId;
  NodeId prev_hop = kInvalidNodeId;
  Point prev_hop_position;
  int perimeter_hops = 0;       ///< Hops taken in the current perimeter walk.
  int ttl = 0;

  // -- DIKNN phase-1 info list --
  bool collect_info = false;
  std::vector<RouteHopInfo> info_list;

  /// Trace attribution (simulation metadata; not counted by WireBytes).
  /// Stamped on every per-hop frame so MAC retries and collisions along
  /// the route attribute to the owning query's span.
  TraceContext trace;

  /// Modeled over-the-air byte size of the whole envelope.
  size_t WireBytes() const;

  /// MessagePool::MakeReusable contract: resets every field to its
  /// default-constructed value while keeping the info list's capacity.
  void Reuse() {
    destination = Point{};
    target_node = kInvalidNodeId;
    inner_type = MessageType{};
    inner.reset();
    inner_bytes = 0;
    cheap_delivery = false;
    flow_id = 0;
    hop_index = 0;
    mode = Mode::kGreedy;
    perimeter_entry = Point{};
    perimeter_entry_node = kInvalidNodeId;
    prev_hop = kInvalidNodeId;
    prev_hop_position = Point{};
    perimeter_hops = 0;
    ttl = 0;
    collect_info = false;
    info_list.clear();
    trace = TraceContext{};
  }
};

/// Planar subgraph used by perimeter mode.
enum class Planarization {
  kGabriel,  ///< Gabriel graph (GPSR's default; denser, shorter faces).
  kRng,      ///< Relative neighborhood graph (sparser subgraph of GG).
};

/// GPSR configuration.
struct GpsrParams {
  Planarization planarization = Planarization::kGabriel;
  /// Hop budget; exhausted packets deliver in place. 0 (the default)
  /// auto-sizes from the field geometry: max(96, 8 * diagonal / r),
  /// enough for greedy progress plus perimeter walks around large voids
  /// without letting stranded packets wander forever on small fields.
  int ttl = 0;
  /// Geocast shortcut: a greedy local minimum within this fraction of the
  /// radio range of the destination delivers immediately instead of
  /// walking the perimeter. The local minimum is within ~r of every node
  /// on its face, so it is the destination's home node for all practical
  /// purposes; the full face walk (~8 hops) is only worth its cost when
  /// the packet is still far away (a true void). Set to 0 to disable.
  double direct_delivery_fraction = 0.75;
};

/// Per-network GPSR routing service. Install() registers a handler for
/// MessageType::kGeoRouted on every node; upper layers register per-inner-
/// type delivery callbacks and call Send().
class GpsrRouting {
 public:
  /// Called at the node where a routed message arrives (the home node).
  using DeliveryHandler =
      std::function<void(Node* node, const GeoRoutedMessage& msg)>;

  /// Diagnostic counters.
  struct Stats {
    uint64_t sends = 0;
    uint64_t greedy_hops = 0;
    uint64_t perimeter_hops = 0;
    uint64_t deliveries = 0;
    uint64_t ttl_expired = 0;
    uint64_t dropped_no_neighbor = 0;
    uint64_t link_failures = 0;  ///< MAC-level send failures (rerouted).
    uint64_t forks_suppressed = 0;
  };

  /// Bound on the per-flow progress table (FIFO eviction).
  static constexpr size_t kFlowCapacity = 4096;

  GpsrRouting(Network* network, GpsrParams params = {});

  /// Registers the kGeoRouted handler on every node. Call once.
  void Install();

  /// Sets the delivery callback for an inner message type.
  void RegisterDelivery(MessageType inner_type, DeliveryHandler handler);

  /// Routes `inner` from `src` toward `destination`. The message is
  /// delivered (via the registered handler) at the node closest to the
  /// destination in `src`'s connected region. `collect_info` enables the
  /// DIKNN phase-1 information list. `target_node`, when valid, addresses
  /// a specific node expected near `destination` (used for result return
  /// to a possibly-moving sink).
  void Send(Node* src, Point destination, MessageType inner_type,
            std::shared_ptr<const Message> inner, size_t inner_bytes,
            EnergyCategory category, bool collect_info = false,
            NodeId target_node = kInvalidNodeId,
            bool cheap_delivery = false, TraceContext trace = {});

  /// Query tracer for routing events (greedy->perimeter transitions,
  /// link-failure reroutes) on traced flows. Not owned; may be null.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  const Stats& stats() const { return stats_; }

  /// Current size of the fork-suppression table; bounded by kFlowCapacity
  /// regardless of how many flows a run creates (lifecycle auditing).
  size_t FlowStateSize() const { return flow_progress_.size(); }

 private:
  // Takes one routing step at `node`; may deliver locally, forward
  // greedily, or walk the perimeter.
  void Forward(Node* node, std::shared_ptr<GeoRoutedMessage> msg,
               EnergyCategory category);

  // Delivers the inner message at `node`.
  void Deliver(Node* node, const GeoRoutedMessage& msg);

  // Appends this node's (loc, enc) entry to the info list.
  static void AppendHopInfo(Node* node, GeoRoutedMessage* msg,
                            double radio_range);

  // Transmits msg to `next`; on MAC failure evicts the neighbor and
  // re-runs Forward at the same node.
  void SendToNeighbor(Node* node, NodeId next,
                      std::shared_ptr<GeoRoutedMessage> msg,
                      EnergyCategory category);

  Network* network_;
  GpsrParams params_;
  // Delivery dispatch indexed by the inner MessageType value (no ordered
  // map walk, no iteration-order sensitivity).
  std::array<DeliveryHandler, kMessageTypeSpan> deliveries_;
  Stats stats_;
  Tracer* tracer_ = nullptr;

  uint64_t next_flow_id_ = 1;
  // Last hop_index seen per flow (bounded FIFO eviction).
  FlatMap<uint64_t, int> flow_progress_;
  RingBuffer<uint64_t> flow_order_;

  // Per-hop scratch (Forward is never re-entered while these are live:
  // every nested call happens after the buffers' last read).
  std::vector<NeighborEntry> neighbors_scratch_;
  std::vector<NeighborEntry> planar_scratch_;
};

}  // namespace diknn

#endif  // DIKNN_ROUTING_GPSR_H_
