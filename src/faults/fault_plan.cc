#include "faults/fault_plan.h"

#include <cstdlib>
#include <sstream>
#include <unordered_map>

namespace diknn {

namespace {

/// Splits `s` on `sep`, dropping empty pieces (tolerates ";;" and
/// trailing separators).
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream in(s);
  while (std::getline(in, piece, sep)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

bool ParseInt(const std::string& s, int* out) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == s.c_str()) return false;
  *out = static_cast<int>(v);
  return true;
}

std::optional<FaultEvent::Kind> KindFromName(const std::string& name) {
  using Kind = FaultEvent::Kind;
  if (name == "kill") return Kind::kKill;
  if (name == "revive") return Kind::kRevive;
  if (name == "churn") return Kind::kChurn;
  if (name == "ackloss") return Kind::kAckLoss;
  if (name == "drop") return Kind::kFrameLoss;
  if (name == "dup") return Kind::kDuplicate;
  if (name == "freeze") return Kind::kFreeze;
  if (name == "teleport") return Kind::kTeleport;
  return std::nullopt;
}

bool Fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

/// Parses one "kind@t=..,k=v,.." clause into `out`.
bool ParseEvent(const std::string& clause, FaultEvent* out,
                std::string* error) {
  const size_t split = clause.find('@');
  if (split == std::string::npos) {
    return Fail(error, "'" + clause + "': expected kind@t=...");
  }
  const auto kind = KindFromName(clause.substr(0, split));
  if (!kind) {
    return Fail(error,
                "unknown fault kind '" + clause.substr(0, split) + "'");
  }
  out->kind = *kind;

  std::unordered_map<std::string, std::string> kv;
  for (const std::string& pair : Split(clause.substr(split + 1), ',')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Fail(error, "'" + pair + "': expected key=value");
    }
    kv[pair.substr(0, eq)] = pair.substr(eq + 1);
  }

  const auto take_double = [&](const char* key, double* slot) {
    auto it = kv.find(key);
    if (it == kv.end()) return true;
    if (!ParseDouble(it->second, slot)) {
      return Fail(error, std::string("bad number for '") + key + "'");
    }
    kv.erase(it);
    return true;
  };
  const auto take_int = [&](const char* key, int* slot) {
    auto it = kv.find(key);
    if (it == kv.end()) return true;
    if (!ParseInt(it->second, slot)) {
      return Fail(error, std::string("bad integer for '") + key + "'");
    }
    kv.erase(it);
    return true;
  };

  if (!kv.contains("t")) {
    return Fail(error, "'" + clause + "': every event needs t=SECONDS");
  }
  const bool has_xy = kv.contains("x") && kv.contains("y");
  if (!take_double("t", &out->at)) return false;
  if (!take_double("dur", &out->duration)) return false;
  if (!take_int("node", &out->node)) return false;
  if (!take_int("count", &out->count)) return false;
  if (!take_double("prob", &out->probability)) return false;
  if (!take_int("src", &out->src)) return false;
  if (!take_int("dst", &out->dst)) return false;
  if (!take_double("x", &out->position.x)) return false;
  if (!take_double("y", &out->position.y)) return false;
  if (!take_double("up", &out->mean_up)) return false;
  if (!take_double("down", &out->mean_down)) return false;
  if (!take_double("frac", &out->dead_fraction)) return false;
  if (!kv.empty()) {
    return Fail(error, "unknown key '" + kv.begin()->first + "' in '" +
                           clause + "'");
  }

  if (out->at < 0.0) return Fail(error, "t must be >= 0");
  if (out->probability < 0.0 || out->probability > 1.0) {
    return Fail(error, "prob must be in [0, 1]");
  }

  using Kind = FaultEvent::Kind;
  switch (out->kind) {
    case Kind::kKill:
      if (out->node == kInvalidNodeId && out->count <= 0) {
        return Fail(error, "kill needs node=ID or count>0");
      }
      break;
    case Kind::kRevive:
    case Kind::kFreeze:
      if (out->node == kInvalidNodeId) {
        return Fail(error, std::string(FaultKindName(out->kind)) +
                               " needs node=ID");
      }
      break;
    case Kind::kTeleport:
      if (out->node == kInvalidNodeId || !has_xy) {
        return Fail(error, "teleport needs node=ID,x=X,y=Y");
      }
      break;
    case Kind::kAckLoss:
    case Kind::kFrameLoss:
    case Kind::kDuplicate:
      if (out->duration <= 0.0) {
        return Fail(error, std::string(FaultKindName(out->kind)) +
                               " needs dur>0");
      }
      break;
    case Kind::kChurn:
      if (out->mean_up <= 0.0) return Fail(error, "churn needs up>0");
      break;
  }
  return true;
}

}  // namespace

const char* FaultKindName(FaultEvent::Kind kind) {
  using Kind = FaultEvent::Kind;
  switch (kind) {
    case Kind::kKill:
      return "kill";
    case Kind::kRevive:
      return "revive";
    case Kind::kChurn:
      return "churn";
    case Kind::kAckLoss:
      return "ackloss";
    case Kind::kFrameLoss:
      return "drop";
    case Kind::kDuplicate:
      return "dup";
    case Kind::kFreeze:
      return "freeze";
    case Kind::kTeleport:
      return "teleport";
  }
  return "?";
}

std::optional<FaultPlan> FaultPlan::Parse(const std::string& spec,
                                          std::string* error) {
  FaultPlan plan;
  for (const std::string& clause : Split(spec, ';')) {
    FaultEvent event;
    if (!ParseEvent(clause, &event, error)) return std::nullopt;
    plan.events.push_back(event);
  }
  return plan;
}

std::string FaultPlan::ToSpec() const {
  std::ostringstream os;
  bool first = true;
  for (const FaultEvent& e : events) {
    if (!first) os << ';';
    first = false;
    os << FaultKindName(e.kind) << "@t=" << e.at;
    if (e.duration > 0.0) os << ",dur=" << e.duration;
    if (e.node != kInvalidNodeId) os << ",node=" << e.node;
    using Kind = FaultEvent::Kind;
    if (e.kind == Kind::kKill && e.node == kInvalidNodeId) {
      os << ",count=" << e.count;
    }
    if (e.probability != 1.0) os << ",prob=" << e.probability;
    if (e.src != kInvalidNodeId) os << ",src=" << e.src;
    if (e.dst != kInvalidNodeId) os << ",dst=" << e.dst;
    if (e.kind == Kind::kTeleport) {
      os << ",x=" << e.position.x << ",y=" << e.position.y;
    }
    if (e.kind == Kind::kChurn) {
      os << ",up=" << e.mean_up << ",down=" << e.mean_down;
      if (e.dead_fraction > 0.0) os << ",frac=" << e.dead_fraction;
    }
  }
  return os.str();
}

}  // namespace diknn
