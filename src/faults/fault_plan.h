// Deterministic fault plans.
//
// DIKNN's value proposition is answering KNN queries *despite* node
// mobility, packet loss and lost ACKs (Sections 3.3 / 4.3), which makes
// the failure paths the code that most needs systematic exercise. A
// FaultPlan is a parsed, seedable schedule of adverse events — node
// kills, churn, forced ACK-loss bursts, frame duplication, sink
// freezes/teleports — that the FaultInjector replays against a network.
// The same plan + the same seed always produces the same faults, so
// fault-injected runs stay bit-reproducible at any --jobs count.
//
// Spec grammar (one string, e.g. for diknn_sim --faults):
//
//   spec    := event (';' event)*
//   event   := kind '@' 't=' SECONDS (',' key '=' value)*
//
// with kinds and their keys (times are relative to FaultInjector::Arm,
// i.e. to the start of the measured workload):
//
//   kill      node=ID | count=N      kill a node / N random unprotected
//   revive    node=ID                bring a killed node back
//   churn     up=S,down=S[,frac=F]   start an up/down renewal process
//                                    (mean up / mean down seconds,
//                                    initial dead fraction F)
//   ackloss   dur=S[,prob=P][,src=ID][,dst=ID]
//                                    drop MAC ACKs in the window, each
//                                    with probability P (default 1),
//                                    optionally only on one link
//   drop      dur=S[,prob=P][,src=ID][,dst=ID]
//                                    drop any frame in the window
//   dup       dur=S[,prob=P]        re-air frames once (spurious
//                                    retransmission; same uid)
//   freeze    node=ID[,dur=S]       pin the node where it stands
//   teleport  node=ID,x=X,y=Y[,dur=S]  pin the node at (X, Y)
//
// Example: kill two random nodes at 5 s, then a 2 s total-ACK blackout:
//   "kill@t=5,count=2;ackloss@t=8,dur=2"

#ifndef DIKNN_FAULTS_FAULT_PLAN_H_
#define DIKNN_FAULTS_FAULT_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "core/geometry.h"
#include "net/packet.h"
#include "sim/event_queue.h"

namespace diknn {

/// One scheduled adverse event.
struct FaultEvent {
  enum class Kind {
    kKill,
    kRevive,
    kChurn,
    kAckLoss,
    kFrameLoss,
    kDuplicate,
    kFreeze,
    kTeleport,
  };

  Kind kind = Kind::kKill;
  SimTime at = 0.0;        ///< Seconds after Arm().
  double duration = 0.0;   ///< Window length; 0 = instantaneous/permanent.
  NodeId node = kInvalidNodeId;  ///< Explicit target (kill/revive/pin).
  int count = 1;           ///< Random victims when `node` is unset.
  double probability = 1.0;  ///< Per-frame probability (window kinds).
  NodeId src = kInvalidNodeId;  ///< Frame filter: sender id.
  NodeId dst = kInvalidNodeId;  ///< Frame filter: receiver id.
  Point position;          ///< Teleport destination.
  double mean_up = 30.0;   ///< Churn: mean alive seconds.
  double mean_down = 10.0; ///< Churn: mean dead seconds (<=0 permanent).
  double dead_fraction = 0.0;  ///< Churn: killed immediately at start.
};

/// Short lower-case tag for an event kind ("kill", "ackloss", ...).
const char* FaultKindName(FaultEvent::Kind kind);

/// A parsed, immutable schedule of fault events.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Parses the spec grammar above. Returns std::nullopt on malformed
  /// input and, when `error` is non-null, stores a human-readable reason.
  static std::optional<FaultPlan> Parse(const std::string& spec,
                                        std::string* error = nullptr);

  /// Serializes back to the spec grammar (canonical form; parseable).
  std::string ToSpec() const;
};

}  // namespace diknn

#endif  // DIKNN_FAULTS_FAULT_PLAN_H_
