// Query-lifecycle invariant checking.
//
// Every DIKNN query owns entries in several per-query containers while it
// is in flight (pending timeouts, open collection windows, per-sector
// progress, reply dedup sets, rendezvous buffers). The invariant this
// auditor enforces: the moment a query completes — successfully or by
// timeout — every one of those entries is gone, and after a drained run
// nothing per-query remains at all. Leaks here are how long-lived sensor
// deployments die: each stuck entry is memory that never returns and a
// timer wheel that only grows.

#ifndef DIKNN_FAULTS_LIFECYCLE_AUDITOR_H_
#define DIKNN_FAULTS_LIFECYCLE_AUDITOR_H_

#include <cstdint>
#include <string>

#include "knn/diknn.h"
#include "routing/gpsr.h"

namespace diknn {

/// Watches a Diknn instance and asserts per-query state is fully
/// reclaimed at each completion and at end of run.
class LifecycleAuditor {
 public:
  /// Installs the completion observer on `diknn`. `gpsr` is optional and
  /// only adds the bounded-flow-table check to FinalReport().
  explicit LifecycleAuditor(Diknn* diknn, GpsrRouting* gpsr = nullptr);

  /// Completions audited so far.
  uint64_t checks() const { return checks_; }

  /// Completions that left residue behind (should always be 0).
  uint64_t violations() const { return violations_; }

  /// Per-query entries still alive across all containers. Call after the
  /// simulator drains; non-zero means a leak.
  size_t FinalResidue() const;

  /// True when the GPSR fork-suppression table respects its capacity
  /// bound (trivially true without a gpsr).
  bool FlowStateBounded() const;

  /// Human-readable one-line summary for logs / test failure messages.
  std::string Report() const;

 private:
  Diknn* diknn_;
  GpsrRouting* gpsr_;
  uint64_t checks_ = 0;
  uint64_t violations_ = 0;
};

}  // namespace diknn

#endif  // DIKNN_FAULTS_LIFECYCLE_AUDITOR_H_
