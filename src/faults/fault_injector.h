// Replays a FaultPlan against a live Network.
//
// The injector is armed once, after warmup, and translates the plan's
// relative times into simulator events: node kills/revives, churn
// processes, sink freezes/teleports, and frame-level windows (forced
// ACK loss, frame drops, duplication) served through the channel's
// fault hook. It draws from its own forked RNG stream so the channel /
// MAC / mobility streams are untouched — a faulted run differs from a
// clean run only by the injected faults, and the same (plan, seed)
// yields bit-identical metrics at any --jobs count.

#ifndef DIKNN_FAULTS_FAULT_INJECTOR_H_
#define DIKNN_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "faults/fault_plan.h"
#include "net/churn.h"
#include "net/network.h"

namespace diknn {

/// Counters for every injected fault, exported into run metrics.
struct FaultStats {
  uint64_t nodes_killed = 0;    ///< kill events + churn failures.
  uint64_t nodes_revived = 0;   ///< revive events + churn recoveries.
  uint64_t acks_dropped = 0;
  uint64_t frames_dropped = 0;
  uint64_t frames_duplicated = 0;
  uint64_t freezes = 0;
  uint64_t teleports = 0;

  uint64_t Total() const {
    return nodes_killed + nodes_revived + acks_dropped + frames_dropped +
           frames_duplicated + freezes + teleports;
  }
};

/// Schedules a FaultPlan's events on a network's simulator.
class FaultInjector {
 public:
  /// `protected_prefix`: node ids below this are never chosen as random
  /// kill / churn victims (explicit `node=` targets are still honoured —
  /// freezing or teleporting the sink is the point of those kinds).
  FaultInjector(Network* network, FaultPlan plan, uint64_t seed,
                int protected_prefix = 1);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  /// Schedules every event at `now + event.at` and installs the channel
  /// fault hook if the plan has frame windows. Call once, after Warmup().
  void Arm();

  /// Fault counters, with churn failures/recoveries folded in.
  FaultStats stats() const;

  /// Called after every liveness flip the injector applies (kill and
  /// revive edges; churn processes flip liveness internally and are not
  /// reported) with (sim time, node, alive). Observation only — the
  /// flight recorder uses it to annotate the run timeline; it must not
  /// mutate simulation state.
  using LivenessObserver = std::function<void(SimTime, NodeId, bool)>;
  void set_observer(LivenessObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  // A [start, end) window during which OnFrame may fault matching frames.
  struct FrameWindow {
    FaultEvent::Kind kind;
    SimTime start = 0.0;
    SimTime end = 0.0;
    double probability = 1.0;
    NodeId src = kInvalidNodeId;  ///< kInvalidNodeId matches any sender.
    NodeId dst = kInvalidNodeId;  ///< kInvalidNodeId matches any receiver.
  };

  // Channel fault hook: consulted once per original transmission.
  Channel::FrameFault OnFrame(const Packet& packet, NodeId sender);

  void Apply(const FaultEvent& event);
  void KillRandomNodes(int count);
  void SetAlive(NodeId id, bool alive);

  Network* network_;
  FaultPlan plan_;
  Rng rng_;
  int protected_prefix_;
  bool armed_ = false;
  bool hook_installed_ = false;
  FaultStats stats_;
  LivenessObserver observer_;
  std::vector<FrameWindow> windows_;
  // Churn processes live for the network's run; kept here so their
  // counters can be merged into stats().
  std::vector<std::unique_ptr<NodeChurn>> churns_;
};

}  // namespace diknn

#endif  // DIKNN_FAULTS_FAULT_INJECTOR_H_
