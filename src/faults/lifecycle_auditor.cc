#include "faults/lifecycle_auditor.h"

#include <sstream>

namespace diknn {

LifecycleAuditor::LifecycleAuditor(Diknn* diknn, GpsrRouting* gpsr)
    : diknn_(diknn), gpsr_(gpsr) {
  diknn_->set_completion_observer([this](uint64_t query_id, bool) {
    ++checks_;
    if (diknn_->ResidueFor(query_id) != 0) ++violations_;
  });
}

size_t LifecycleAuditor::FinalResidue() const {
  return diknn_->lifecycle_counts().TotalPerQuery();
}

bool LifecycleAuditor::FlowStateBounded() const {
  return gpsr_ == nullptr ||
         gpsr_->FlowStateSize() <= GpsrRouting::kFlowCapacity;
}

std::string LifecycleAuditor::Report() const {
  const DiknnLifecycleCounts counts = diknn_->lifecycle_counts();
  std::ostringstream os;
  os << "lifecycle: checks=" << checks_ << " violations=" << violations_
     << " residue=" << counts.TotalPerQuery() << " (pending="
     << counts.pending << " collections=" << counts.collections
     << " last_hop=" << counts.last_hop_seen
     << " finished_sectors=" << counts.finished_sectors
     << " replied=" << counts.replied_entries
     << " rendezvous=" << counts.heard_rendezvous_entries << ")";
  if (gpsr_ != nullptr) {
    os << " gpsr_flows=" << gpsr_->FlowStateSize() << "/"
       << GpsrRouting::kFlowCapacity;
  }
  return os.str();
}

}  // namespace diknn
