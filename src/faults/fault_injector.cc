#include "faults/fault_injector.h"

#include <utility>

namespace diknn {

FaultInjector::FaultInjector(Network* network, FaultPlan plan, uint64_t seed,
                             int protected_prefix)
    : network_(network),
      plan_(std::move(plan)),
      rng_(seed),
      protected_prefix_(protected_prefix) {}

FaultInjector::~FaultInjector() {
  if (hook_installed_) network_->channel().set_fault_hook(nullptr);
}

void FaultInjector::Arm() {
  if (armed_ || plan_.empty()) return;
  armed_ = true;
  const SimTime now = network_->sim().Now();

  for (const FaultEvent& event : plan_.events) {
    using Kind = FaultEvent::Kind;
    switch (event.kind) {
      case Kind::kAckLoss:
      case Kind::kFrameLoss:
      case Kind::kDuplicate: {
        FrameWindow window;
        window.kind = event.kind;
        window.start = now + event.at;
        window.end = window.start + event.duration;
        window.probability = event.probability;
        window.src = event.src;
        window.dst = event.dst;
        windows_.push_back(window);
        break;
      }
      default:
        network_->sim().ScheduleAt(now + event.at,
                                   [this, event]() { Apply(event); });
        break;
    }
  }

  if (!windows_.empty()) {
    hook_installed_ = true;
    network_->channel().set_fault_hook(
        [this](const Packet& packet, NodeId sender) {
          return OnFrame(packet, sender);
        });
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  using Kind = FaultEvent::Kind;
  switch (event.kind) {
    case Kind::kKill:
      if (event.node != kInvalidNodeId) {
        SetAlive(event.node, false);
      } else {
        KillRandomNodes(event.count);
      }
      break;
    case Kind::kRevive:
      SetAlive(event.node, true);
      break;
    case Kind::kChurn: {
      ChurnParams params;
      params.mean_up_time = event.mean_up;
      params.mean_down_time = event.mean_down;
      params.initial_dead_fraction = event.dead_fraction;
      auto churn = std::make_unique<NodeChurn>(
          &network_->sim(), network_->AllNodes(), params, rng_.Fork(),
          protected_prefix_);
      churn->Start();
      churns_.push_back(std::move(churn));
      break;
    }
    case Kind::kFreeze: {
      Node* node = network_->node(event.node);
      node->PinPosition(node->Position());
      ++stats_.freezes;
      if (event.duration > 0.0) {
        network_->sim().ScheduleAfter(
            event.duration, [node]() { node->ClearPinnedPosition(); });
      }
      break;
    }
    case Kind::kTeleport: {
      Node* node = network_->node(event.node);
      node->PinPosition(event.position);
      ++stats_.teleports;
      if (event.duration > 0.0) {
        network_->sim().ScheduleAfter(
            event.duration, [node]() { node->ClearPinnedPosition(); });
      }
      break;
    }
    case Kind::kAckLoss:
    case Kind::kFrameLoss:
    case Kind::kDuplicate:
      break;  // Window kinds are handled by OnFrame, never scheduled.
  }
}

void FaultInjector::KillRandomNodes(int count) {
  std::vector<NodeId> candidates;
  for (Node* node : network_->AllNodes()) {
    if (node->id() < protected_prefix_) continue;
    if (!node->alive() || node->is_infrastructure()) continue;
    candidates.push_back(node->id());
  }
  for (int i = 0; i < count && !candidates.empty(); ++i) {
    const int pick =
        rng_.UniformInt(0, static_cast<int>(candidates.size()) - 1);
    SetAlive(candidates[pick], false);
    candidates.erase(candidates.begin() + pick);
  }
}

void FaultInjector::SetAlive(NodeId id, bool alive) {
  if (id < 0 || id >= network_->size()) return;
  Node* node = network_->node(id);
  if (node->alive() == alive) return;
  node->set_alive(alive);
  if (alive) {
    ++stats_.nodes_revived;
  } else {
    ++stats_.nodes_killed;
  }
  if (observer_) observer_(network_->sim().Now(), id, alive);
}

Channel::FrameFault FaultInjector::OnFrame(const Packet& packet,
                                           NodeId sender) {
  Channel::FrameFault fault;
  const SimTime t = network_->sim().Now();
  for (const FrameWindow& window : windows_) {
    if (t < window.start || t >= window.end) continue;
    if (window.src != kInvalidNodeId && window.src != sender) continue;
    if (window.dst != kInvalidNodeId && window.dst != packet.dst) continue;
    const bool is_ack = packet.type == MessageType::kMacAck;
    using Kind = FaultEvent::Kind;
    if (window.kind == Kind::kAckLoss && !is_ack) continue;
    // Duplicating an ACK would hand the MAC a spurious second completion;
    // dup models retransmitted *data* frames (the dedup-by-uid path).
    if (window.kind == Kind::kDuplicate && is_ack) continue;
    if (!rng_.Bernoulli(window.probability)) continue;
    switch (window.kind) {
      case Kind::kAckLoss:
        fault.drop = true;
        ++stats_.acks_dropped;
        break;
      case Kind::kFrameLoss:
        fault.drop = true;
        ++stats_.frames_dropped;
        break;
      case Kind::kDuplicate:
        fault.duplicate = true;
        ++stats_.frames_duplicated;
        break;
      default:
        break;
    }
    return fault;  // First matching window wins.
  }
  return fault;
}

FaultStats FaultInjector::stats() const {
  FaultStats merged = stats_;
  for (const auto& churn : churns_) {
    merged.nodes_killed += churn->stats().failures;
    merged.nodes_revived += churn->stats().recoveries;
  }
  return merged;
}

}  // namespace diknn
