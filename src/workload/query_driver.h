// The query-serving workload engine.
//
// A QueryDriver replays a WorkloadSpec against an installed protocol
// stack: it generates arrivals (open-loop Poisson / fixed-rate, or
// closed-loop sessions), draws each query's class / k / location from the
// spec's distributions, applies admission control (reject or queue once
// the in-flight bound is hit), tracks every in-flight query against its
// deadline, and scores each one into an SloReport. Everything runs inside
// the simulator's event loop; the same spec + seed is bit-identical on
// every machine and at any harness --jobs count.
//
// Semantics worth knowing:
//  - Latency is arrival-to-resolution, so admission queueing counts
//    against the SLO (as it does in a real serving stack).
//  - Deadlines are accounting, not cancellation: the protocols have no
//    abort path (messages already in the air cannot be recalled), so a
//    late query still completes and is scored kDeadlineMissed.
//  - A continuous subscription is one issued unit that resolves when its
//    last round completes; its recorded latency is that round's snapshot
//    latency plus any queue wait.
//  - At the end of Run(), queries still queued are scored kRejected and
//    queries still in flight kTimedOut, so the outcome partition always
//    sums to the issued count.
//  - When the spec enables serving stages (cache@ / coalesce@ /
//    admit@shed), point-KNN launches route through a ServingFrontEnd
//    first: cache hits resolve synchronously with zero protocol latency,
//    followers park until their leader's itinerary completes (inheriting
//    its timeout, answer re-pruned around their own q), and shed queries
//    score as kRejected (docs/SERVING.md).

#ifndef DIKNN_WORKLOAD_QUERY_DRIVER_H_
#define DIKNN_WORKLOAD_QUERY_DRIVER_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "knn/aggregate.h"
#include "knn/continuous.h"
#include "knn/query.h"
#include "knn/window.h"
#include "net/network.h"
#include "net/sensor_field.h"
#include "routing/gpsr.h"
#include "serving/front_end.h"
#include "workload/latency_histogram.h"
#include "workload/workload_spec.h"

namespace diknn {

/// Outcome of one workload query, for tests and per-query analysis.
struct WorkloadQueryRecord {
  uint64_t id = 0;          ///< Driver-assigned arrival sequence number.
  QueryClass cls = QueryClass::kKnn;
  SimTime arrived_at = 0.0;
  double queue_wait = 0.0;  ///< Seconds spent in the admission queue.
  double latency = 0.0;     ///< Arrival to resolution (0 if rejected).
  QueryOutcome outcome = QueryOutcome::kCompleted;
  /// How the serving front end handled the query (kDirect when serving
  /// is off or the query launched its own itinerary).
  ServingPath path = ServingPath::kDirect;
  double pre_accuracy = -1.0;   ///< Scored KNN queries only; -1 = unscored.
  double post_accuracy = -1.0;
};

/// Drives a WorkloadSpec against a protocol stack.
class QueryDriver {
 public:
  /// `network`, `gpsr` and `protocol` must outlive the driver, and the
  /// protocol (plus GPSR) must already be installed. `sink` issues every
  /// query; pass kInvalidNodeId to draw a random sink per query. The
  /// driver installs its own window / aggregate / continuous engines
  /// when the spec's mix needs them.
  QueryDriver(Network* network, GpsrRouting* gpsr, KnnProtocol* protocol,
              const WorkloadSpec& spec, uint64_t seed, NodeId sink = 0);

  /// Issues arrivals for `duration` simulated seconds, then runs `drain`
  /// more to let stragglers resolve, finalizes the report (queued ->
  /// rejected, still-in-flight -> timed out) and returns it. Call once.
  SloReport Run(SimTime duration, SimTime drain);

  /// Score KNN-class queries against the ground-truth oracle (default
  /// on). Costs one TrueKnn scan at issue and one at resolution.
  void set_score_accuracy(bool score) { score_accuracy_ = score; }

  /// Query tracer (not owned; may be null). The driver opens the root
  /// span at arrival (so admission queueing is a visible kQueue phase),
  /// hands the context to kKnn protocol launches via the tracer's
  /// ambient scope, and closes the trace at resolution.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  const SloReport& report() const { return report_; }
  /// Queries currently in flight (live; the flight recorder samples it).
  int inflight_count() const { return inflight_count_; }
  const std::vector<WorkloadQueryRecord>& records() const {
    return records_;
  }
  const WorkloadSpec& spec() const { return spec_; }

  /// Mean accuracies over the scored KNN queries (0 when none).
  double MeanPreAccuracy() const;
  double MeanPostAccuracy() const;

  /// The driver-owned engines, when the mix constructed them (else
  /// nullptr). Exposed so tests can assert their per-query state drained.
  const ItineraryWindowQuery* window_engine() const { return window_.get(); }
  const ItineraryAggregateQuery* aggregate_engine() const {
    return aggregate_.get();
  }
  const ContinuousKnn* continuous_engine() const {
    return continuous_.get();
  }

  /// The serving front end, when the spec enables any of its stages
  /// (cache@ / coalesce@ / admit@shed), else nullptr.
  const ServingFrontEnd* serving() const { return serving_.get(); }

 private:
  /// A drawn-but-not-yet-launched query.
  struct Prepared {
    uint64_t id = 0;
    QueryClass cls = QueryClass::kKnn;
    NodeId sink = kInvalidNodeId;
    Point q;
    int k = 1;
    SimTime arrived_at = 0.0;
    TraceContext trace;      ///< Root context; unsampled when not traced.
    SpanId queue_span = 0;   ///< Open kQueue span while waiting.
  };

  /// Book-keeping for a launched query.
  struct Inflight {
    QueryClass cls = QueryClass::kKnn;
    SimTime arrived_at = 0.0;
    SimTime launched_at = 0.0;
    double queue_wait = 0.0;
    std::vector<NodeId> truth_pre;  ///< Scored KNN queries only.
    Point q;
    int k = 0;
    Point sink_pos;  ///< Sink position at launch (serving ring lookup).
    ServingPath path = ServingPath::kDirect;
    TraceContext trace;
  };

  Prepared Draw();
  Point DrawQueryPoint();
  Rect QueryRect(const Point& center, double side) const;
  double BoundaryRadius(int k) const;

  void Admit(Prepared prep);
  void Launch(Prepared prep);
  void Resolve(uint64_t id, double protocol_latency, bool timed_out,
               std::vector<NodeId> returned = {});
  /// Completion handler for protocol-launched kKnn queries: feeds the
  /// serving front end, resolves the leader, then fans the answer out to
  /// its coalesced followers (in attach order).
  void ResolveKnnLeader(uint64_t id, const KnnResult& result);
  /// Records a shed query as kRejected (path kShed) without launching.
  void Shed(const Prepared& prep, double estimate);
  void ScheduleNextArrival();
  void StartSession();
  void Finalize();

  Network* network_;
  GpsrRouting* gpsr_;
  KnnProtocol* protocol_;
  WorkloadSpec spec_;
  Rng rng_;
  NodeId sink_;
  bool score_accuracy_ = true;
  Tracer* tracer_ = nullptr;

  // Lazily constructed engines (only when the mix uses them).
  std::unique_ptr<ItineraryWindowQuery> window_;
  std::unique_ptr<SensorField> field_;
  std::unique_ptr<ItineraryAggregateQuery> aggregate_;
  std::unique_ptr<ContinuousKnn> continuous_;
  std::unique_ptr<ServingFrontEnd> serving_;

  std::vector<Point> hotspot_centers_;
  std::vector<double> hotspot_cumweight_;

  SimTime end_time_ = 0.0;   ///< Arrivals stop here.
  bool finalized_ = false;
  uint64_t next_id_ = 1;
  int inflight_count_ = 0;
  std::unordered_map<uint64_t, Inflight> inflight_;
  std::deque<Prepared> queue_;
  std::vector<WorkloadQueryRecord> records_;
  SloReport report_;
};

}  // namespace diknn

#endif  // DIKNN_WORKLOAD_QUERY_DRIVER_H_
