#include "workload/query_driver.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "obs/tracer.h"

namespace diknn {

namespace {

/// Fraction of `truth` present in `returned` (the harness accuracy
/// definition, duplicated here so the workload library does not depend on
/// the harness).
double Overlap(const std::vector<NodeId>& returned,
               const std::vector<NodeId>& truth) {
  if (truth.empty()) return 1.0;
  const std::unordered_set<NodeId> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (NodeId id : returned) hits += truth_set.count(id);
  return static_cast<double>(hits) / truth_set.size();
}

}  // namespace

QueryDriver::QueryDriver(Network* network, GpsrRouting* gpsr,
                         KnnProtocol* protocol, const WorkloadSpec& spec,
                         uint64_t seed, NodeId sink)
    : network_(network),
      gpsr_(gpsr),
      protocol_(protocol),
      spec_(spec),
      rng_(seed),
      sink_(sink) {
  const auto weight = [&](QueryClass c) {
    return spec_.mix[static_cast<int>(c)];
  };
  if (weight(QueryClass::kWindow) > 0.0 ||
      weight(QueryClass::kKnnBoundary) > 0.0) {
    window_ = std::make_unique<ItineraryWindowQuery>(network_, gpsr_);
    window_->Install();
  }
  if (weight(QueryClass::kAggregate) > 0.0) {
    field_ = std::make_unique<SensorField>(SensorField::Random(
        network_->config().field, /*count=*/3, /*amplitude=*/25.0,
        /*sigma=*/20.0, /*max_drift=*/2.0, seed ^ 0x5eedf1e1dULL));
    aggregate_ = std::make_unique<ItineraryAggregateQuery>(network_, gpsr_,
                                                           field_.get());
    aggregate_->Install();
  }
  if (weight(QueryClass::kContinuous) > 0.0) {
    continuous_ = std::make_unique<ContinuousKnn>(network_, protocol_);
  }
  if (spec_.spatial == SpatialKind::kHotspot) {
    double cum = 0.0;
    for (int i = 0; i < spec_.hotspots; ++i) {
      hotspot_centers_.push_back(rng_.PointInRect(network_->config().field));
      cum += std::pow(i + 1.0, -spec_.hotspot_skew);
      hotspot_cumweight_.push_back(cum);
    }
  }
}

double QueryDriver::MeanPreAccuracy() const {
  double sum = 0.0;
  int n = 0;
  for (const WorkloadQueryRecord& r : records_) {
    if (r.pre_accuracy >= 0.0) {
      sum += r.pre_accuracy;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double QueryDriver::MeanPostAccuracy() const {
  double sum = 0.0;
  int n = 0;
  for (const WorkloadQueryRecord& r : records_) {
    if (r.post_accuracy >= 0.0) {
      sum += r.post_accuracy;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

Point QueryDriver::DrawQueryPoint() {
  const Rect& field = network_->config().field;
  if (spec_.spatial == SpatialKind::kUniform || hotspot_centers_.empty()) {
    return rng_.PointInRect(field);
  }
  const double u = rng_.NextDouble() * hotspot_cumweight_.back();
  size_t idx = 0;
  while (idx + 1 < hotspot_cumweight_.size() && hotspot_cumweight_[idx] < u) {
    ++idx;
  }
  const Point center = hotspot_centers_[idx];
  const Point p{center.x + rng_.Normal(0.0, spec_.hotspot_sigma),
                center.y + rng_.Normal(0.0, spec_.hotspot_sigma)};
  return field.Clamp(p);
}

Rect QueryDriver::QueryRect(const Point& center, double side) const {
  const Rect& field = network_->config().field;
  const double h = side / 2.0;
  // Clamping may shrink windows at the field edge; that matches a real
  // deployment, where a query region never extends past the fence.
  return Rect{field.Clamp({center.x - h, center.y - h}),
              field.Clamp({center.x + h, center.y + h})};
}

double QueryDriver::BoundaryRadius(int k) const {
  // Uniform-density estimate of the KNN boundary (the same first-cut
  // estimate KNNB starts from): k = pi * R^2 * (n / area).
  const double area = network_->config().field.Area();
  const int n = std::max(1, network_->size());
  return std::sqrt(k * area / (kPi * n));
}

QueryDriver::Prepared QueryDriver::Draw() {
  Prepared prep;
  prep.id = next_id_++;
  prep.arrived_at = network_->sim().Now();

  const double u = rng_.NextDouble() * spec_.TotalWeight();
  double cum = 0.0;
  int cls = 0;
  for (; cls < kNumQueryClasses; ++cls) {
    cum += spec_.mix[cls];
    if (u < cum && spec_.mix[cls] > 0.0) break;
  }
  prep.cls = static_cast<QueryClass>(std::min(cls, kNumQueryClasses - 1));

  prep.sink = sink_ != kInvalidNodeId
                  ? sink_
                  : static_cast<NodeId>(rng_.UniformInt(
                        0, network_->config().node_count - 1));
  prep.q = DrawQueryPoint();
  prep.k = spec_.k_lo == spec_.k_hi ? spec_.k_lo
                                    : rng_.UniformInt(spec_.k_lo, spec_.k_hi);
  return prep;
}

void QueryDriver::Admit(Prepared prep) {
  ++report_.issued;
  ++report_.issued_by_class[static_cast<int>(prep.cls)];
  if (tracer_ != nullptr) {
    prep.trace = tracer_->StartQuery(prep.arrived_at);
  }
  if (spec_.max_inflight > 0 && inflight_count_ >= spec_.max_inflight) {
    if (static_cast<int>(queue_.size()) < spec_.queue_capacity) {
      if (prep.trace.sampled()) {
        prep.queue_span =
            tracer_->BeginSpan(prep.trace, SpanKind::kQueue,
                               prep.arrived_at, -1, prep.sink);
      }
      queue_.push_back(std::move(prep));
    } else {
      WorkloadQueryRecord rec;
      rec.id = prep.id;
      rec.cls = prep.cls;
      rec.arrived_at = prep.arrived_at;
      rec.outcome = QueryOutcome::kRejected;
      records_.push_back(rec);
      ++report_.rejected;
      if (prep.trace.sampled()) {
        tracer_->CloseTrace(prep.trace.trace_id, prep.arrived_at);
      }
    }
    return;
  }
  Launch(std::move(prep));
}

void QueryDriver::Launch(Prepared prep) {
  const uint64_t id = prep.id;
  if (prep.queue_span != 0) {
    tracer_->EndSpan(prep.trace.trace_id, prep.queue_span,
                     network_->sim().Now());
  }
  Inflight info;
  info.cls = prep.cls;
  info.arrived_at = prep.arrived_at;
  info.queue_wait = network_->sim().Now() - prep.arrived_at;
  info.q = prep.q;
  info.k = prep.k;
  info.trace = prep.trace;
  if (prep.cls == QueryClass::kKnn && score_accuracy_) {
    info.truth_pre = network_->TrueKnn(prep.q, prep.k);
  }
  inflight_.emplace(id, std::move(info));
  ++inflight_count_;
  report_.peak_inflight = std::max(report_.peak_inflight,
                                   static_cast<uint64_t>(inflight_count_));

  switch (prep.cls) {
    case QueryClass::kKnn: {
      // Hand the root context to the protocol for the duration of the
      // launch call: its IssueQuery adopts the ambient trace instead of
      // starting a second one, so protocol phases nest under this root.
      Tracer::AmbientScope ambient(prep.trace.sampled() ? tracer_ : nullptr,
                                   prep.trace);
      protocol_->IssueQuery(prep.sink, prep.q, prep.k,
                            [this, id](const KnnResult& result) {
                              Resolve(id, result.Latency(), result.timed_out,
                                      result.CandidateIds());
                            });
      break;
    }
    case QueryClass::kKnnBoundary:
      // Range query over the estimated KNN boundary of q: the square
      // circumscribing the radius-R disk that should hold ~k nodes.
      window_->IssueQuery(prep.sink,
                          QueryRect(prep.q, 2.0 * BoundaryRadius(prep.k)),
                          [this, id](const WindowResult& result) {
                            Resolve(id, result.Latency(), result.timed_out);
                          });
      break;
    case QueryClass::kWindow:
      window_->IssueQuery(prep.sink, QueryRect(prep.q, spec_.window_side),
                          [this, id](const WindowResult& result) {
                            Resolve(id, result.Latency(), result.timed_out);
                          });
      break;
    case QueryClass::kContinuous:
      continuous_->Subscribe(
          prep.sink, prep.q, prep.k, spec_.continuous_period,
          spec_.continuous_rounds, [this, id](const KnnUpdate& update) {
            // The subscription resolves when its last round completes;
            // earlier rounds are progress, not resolution.
            if (update.round + 1 >= spec_.continuous_rounds) {
              Resolve(id, update.result.Latency(), update.result.timed_out);
            }
          });
      break;
    case QueryClass::kAggregate:
      aggregate_->IssueQuery(prep.sink, QueryRect(prep.q, spec_.window_side),
                             [this, id](const AggregateResult& result) {
                               Resolve(id, result.Latency(), result.timed_out);
                             });
      break;
  }
}

void QueryDriver::Resolve(uint64_t id, double protocol_latency,
                          bool timed_out, std::vector<NodeId> returned) {
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return;  // Already finalized.
  const Inflight info = std::move(it->second);
  inflight_.erase(it);
  --inflight_count_;

  WorkloadQueryRecord rec;
  rec.id = id;
  rec.cls = info.cls;
  rec.arrived_at = info.arrived_at;
  rec.queue_wait = info.queue_wait;
  rec.latency = info.queue_wait + protocol_latency;
  if (timed_out) {
    rec.outcome = QueryOutcome::kTimedOut;
    ++report_.timed_out;
  } else if (spec_.deadline > 0.0 && rec.latency > spec_.deadline) {
    rec.outcome = QueryOutcome::kDeadlineMissed;
    ++report_.deadline_missed;
    report_.latency.Add(rec.latency);
  } else {
    rec.outcome = QueryOutcome::kCompleted;
    ++report_.completed;
    report_.latency.Add(rec.latency);
  }
  if (!info.truth_pre.empty()) {
    rec.pre_accuracy = Overlap(returned, info.truth_pre);
    rec.post_accuracy =
        Overlap(returned, network_->TrueKnn(info.q, info.k));
  }
  if (info.trace.sampled()) {
    const SimTime tnow = network_->sim().Now();
    if (rec.outcome == QueryOutcome::kDeadlineMissed) {
      tracer_->AddEvent(info.trace, TraceEventKind::kDeadlineMissed, tnow,
                        -1, rec.latency);
    }
    // Idempotent on top of the protocol's own CloseTrace (kKnn class);
    // the only closer for window / aggregate / continuous classes.
    tracer_->CloseTrace(info.trace.trace_id, tnow);
  }
  records_.push_back(rec);

  // Freed capacity: promote the longest-waiting queued query.
  while (!queue_.empty() &&
         (spec_.max_inflight == 0 || inflight_count_ < spec_.max_inflight)) {
    Prepared next = std::move(queue_.front());
    queue_.pop_front();
    Launch(std::move(next));
  }

  if (spec_.arrival == ArrivalKind::kClosedLoop && !finalized_) {
    network_->sim().ScheduleAfter(spec_.think_time,
                                  [this] { StartSession(); });
  }
}

void QueryDriver::ScheduleNextArrival() {
  const double interval = spec_.arrival == ArrivalKind::kPoisson
                              ? rng_.Exponential(1.0 / spec_.rate)
                              : 1.0 / spec_.rate;
  const SimTime t = network_->sim().Now() + interval;
  if (t >= end_time_) return;
  network_->sim().ScheduleAt(t, [this] {
    Admit(Draw());
    ScheduleNextArrival();
  });
}

void QueryDriver::StartSession() {
  if (finalized_ || network_->sim().Now() >= end_time_) return;
  Admit(Draw());
}

void QueryDriver::Finalize() {
  finalized_ = true;
  const SimTime now = network_->sim().Now();
  // Still queued: never launched, so they score as rejections.
  for (const Prepared& prep : queue_) {
    WorkloadQueryRecord rec;
    rec.id = prep.id;
    rec.cls = prep.cls;
    rec.arrived_at = prep.arrived_at;
    rec.queue_wait = now - prep.arrived_at;
    rec.outcome = QueryOutcome::kRejected;
    records_.push_back(rec);
    ++report_.rejected;
    if (prep.trace.sampled()) {
      tracer_->CloseTrace(prep.trace.trace_id, now);
    }
  }
  queue_.clear();
  // Still in flight after the drain: unresolved, so they score as
  // timeouts. Sorted by id so the record order is platform-independent.
  std::vector<uint64_t> ids;
  ids.reserve(inflight_.size());
  for (const auto& [id, info] : inflight_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) {
    const Inflight& info = inflight_.at(id);
    WorkloadQueryRecord rec;
    rec.id = id;
    rec.cls = info.cls;
    rec.arrived_at = info.arrived_at;
    rec.queue_wait = info.queue_wait;
    rec.latency = now - info.arrived_at;
    rec.outcome = QueryOutcome::kTimedOut;
    records_.push_back(rec);
    ++report_.timed_out;
    if (info.trace.sampled()) {
      tracer_->CloseTrace(info.trace.trace_id, now);
    }
  }
  inflight_.clear();
  inflight_count_ = 0;
}

SloReport QueryDriver::Run(SimTime duration, SimTime drain) {
  Simulator& sim = network_->sim();
  const SimTime start = sim.Now();
  end_time_ = start + duration;
  if (spec_.arrival == ArrivalKind::kClosedLoop) {
    for (int s = 0; s < spec_.sessions; ++s) {
      sim.ScheduleAt(start, [this] { StartSession(); });
    }
  } else {
    ScheduleNextArrival();
  }
  sim.RunUntil(end_time_ + drain);
  Finalize();
  report_.duration = duration;
  return report_;
}

}  // namespace diknn
