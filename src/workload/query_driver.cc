#include "workload/query_driver.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "obs/tracer.h"

namespace diknn {

namespace {

/// Fraction of `truth` present in `returned` (the harness accuracy
/// definition, duplicated here so the workload library does not depend on
/// the harness).
double Overlap(const std::vector<NodeId>& returned,
               const std::vector<NodeId>& truth) {
  if (truth.empty()) return 1.0;
  const std::unordered_set<NodeId> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (NodeId id : returned) hits += truth_set.count(id);
  return static_cast<double>(hits) / truth_set.size();
}

}  // namespace

QueryDriver::QueryDriver(Network* network, GpsrRouting* gpsr,
                         KnnProtocol* protocol, const WorkloadSpec& spec,
                         uint64_t seed, NodeId sink)
    : network_(network),
      gpsr_(gpsr),
      protocol_(protocol),
      spec_(spec),
      rng_(seed),
      sink_(sink) {
  const auto weight = [&](QueryClass c) {
    return spec_.mix[static_cast<int>(c)];
  };
  if (weight(QueryClass::kWindow) > 0.0 ||
      weight(QueryClass::kKnnBoundary) > 0.0) {
    window_ = std::make_unique<ItineraryWindowQuery>(network_, gpsr_);
    window_->Install();
  }
  if (weight(QueryClass::kAggregate) > 0.0) {
    field_ = std::make_unique<SensorField>(SensorField::Random(
        network_->config().field, /*count=*/3, /*amplitude=*/25.0,
        /*sigma=*/20.0, /*max_drift=*/2.0, seed ^ 0x5eedf1e1dULL));
    aggregate_ = std::make_unique<ItineraryAggregateQuery>(network_, gpsr_,
                                                           field_.get());
    aggregate_->Install();
  }
  if (weight(QueryClass::kContinuous) > 0.0) {
    continuous_ = std::make_unique<ContinuousKnn>(network_, protocol_);
  }
  const ServingParams serving_params = spec_.Serving();
  if (serving_params.Enabled()) {
    // Static fields have zero drift, so the cache validity time is only
    // capped by the spec's ttl there.
    const double max_speed =
        network_->config().mobility == MobilityKind::kStatic
            ? 0.0
            : network_->config().max_speed;
    serving_ = std::make_unique<ServingFrontEnd>(
        serving_params, network_->config().field, max_speed,
        network_->config().radio_range_m);
  }
  if (spec_.spatial == SpatialKind::kHotspot) {
    double cum = 0.0;
    for (int i = 0; i < spec_.hotspots; ++i) {
      hotspot_centers_.push_back(rng_.PointInRect(network_->config().field));
      cum += std::pow(i + 1.0, -spec_.hotspot_skew);
      hotspot_cumweight_.push_back(cum);
    }
  }
}

double QueryDriver::MeanPreAccuracy() const {
  double sum = 0.0;
  int n = 0;
  for (const WorkloadQueryRecord& r : records_) {
    if (r.pre_accuracy >= 0.0) {
      sum += r.pre_accuracy;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double QueryDriver::MeanPostAccuracy() const {
  double sum = 0.0;
  int n = 0;
  for (const WorkloadQueryRecord& r : records_) {
    if (r.post_accuracy >= 0.0) {
      sum += r.post_accuracy;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

Point QueryDriver::DrawQueryPoint() {
  const Rect& field = network_->config().field;
  if (spec_.spatial == SpatialKind::kUniform || hotspot_centers_.empty()) {
    return rng_.PointInRect(field);
  }
  const double u = rng_.NextDouble() * hotspot_cumweight_.back();
  size_t idx = 0;
  while (idx + 1 < hotspot_cumweight_.size() && hotspot_cumweight_[idx] < u) {
    ++idx;
  }
  const Point center = hotspot_centers_[idx];
  const Point p{center.x + rng_.Normal(0.0, spec_.hotspot_sigma),
                center.y + rng_.Normal(0.0, spec_.hotspot_sigma)};
  return field.Clamp(p);
}

Rect QueryDriver::QueryRect(const Point& center, double side) const {
  const Rect& field = network_->config().field;
  const double h = side / 2.0;
  // Clamping may shrink windows at the field edge; that matches a real
  // deployment, where a query region never extends past the fence.
  return Rect{field.Clamp({center.x - h, center.y - h}),
              field.Clamp({center.x + h, center.y + h})};
}

double QueryDriver::BoundaryRadius(int k) const {
  // Uniform-density estimate of the KNN boundary (the same first-cut
  // estimate KNNB starts from): k = pi * R^2 * (n / area).
  const double area = network_->config().field.Area();
  const int n = std::max(1, network_->size());
  return std::sqrt(k * area / (kPi * n));
}

QueryDriver::Prepared QueryDriver::Draw() {
  Prepared prep;
  prep.id = next_id_++;
  prep.arrived_at = network_->sim().Now();

  const double u = rng_.NextDouble() * spec_.TotalWeight();
  double cum = 0.0;
  int cls = 0;
  for (; cls < kNumQueryClasses; ++cls) {
    cum += spec_.mix[cls];
    if (u < cum && spec_.mix[cls] > 0.0) break;
  }
  prep.cls = static_cast<QueryClass>(std::min(cls, kNumQueryClasses - 1));

  prep.sink = sink_ != kInvalidNodeId
                  ? sink_
                  : static_cast<NodeId>(rng_.UniformInt(
                        0, network_->config().node_count - 1));
  prep.q = DrawQueryPoint();
  prep.k = spec_.k_lo == spec_.k_hi ? spec_.k_lo
                                    : rng_.UniformInt(spec_.k_lo, spec_.k_hi);
  return prep;
}

void QueryDriver::Admit(Prepared prep) {
  ++report_.issued;
  ++report_.issued_by_class[static_cast<int>(prep.cls)];
  if (tracer_ != nullptr) {
    prep.trace = tracer_->StartQuery(prep.arrived_at);
  }
  if (spec_.max_inflight > 0 && inflight_count_ >= spec_.max_inflight) {
    if (static_cast<int>(queue_.size()) < spec_.queue_capacity) {
      if (prep.trace.sampled()) {
        prep.queue_span =
            tracer_->BeginSpan(prep.trace, SpanKind::kQueue,
                               prep.arrived_at, -1, prep.sink);
      }
      queue_.push_back(std::move(prep));
    } else {
      WorkloadQueryRecord rec;
      rec.id = prep.id;
      rec.cls = prep.cls;
      rec.arrived_at = prep.arrived_at;
      rec.outcome = QueryOutcome::kRejected;
      records_.push_back(rec);
      ++report_.rejected;
      if (prep.trace.sampled()) {
        tracer_->CloseTrace(prep.trace.trace_id, prep.arrived_at);
      }
    }
    return;
  }
  Launch(std::move(prep));
}

void QueryDriver::Launch(Prepared prep) {
  const uint64_t id = prep.id;
  const SimTime now = network_->sim().Now();
  if (prep.queue_span != 0) {
    tracer_->EndSpan(prep.trace.trace_id, prep.queue_span, now);
  }

  // The serving front end only fronts point-KNN queries: the cache and
  // the coalescer both reason about a single query point.
  ServingFrontEnd::Decision decision;
  Point sink_pos;
  if (serving_ != nullptr && prep.cls == QueryClass::kKnn) {
    sink_pos = network_->node(prep.sink)->Position();
    // Time left before the deadline; < 0 means the queue wait already ate
    // the whole budget, exactly 0 encodes "no deadline" (see Route()).
    const double budget =
        spec_.deadline > 0.0 ? prep.arrived_at + spec_.deadline - now : 0.0;
    decision = serving_->Route(id, prep.q, sink_pos,
                               static_cast<int>(prep.cls), prep.k, budget,
                               now);
    if (decision.action == ServingFrontEnd::Decision::Action::kShed) {
      Shed(prep, decision.estimate);
      return;
    }
  }

  Inflight info;
  info.cls = prep.cls;
  info.arrived_at = prep.arrived_at;
  info.launched_at = now;
  info.queue_wait = now - prep.arrived_at;
  info.q = prep.q;
  info.k = prep.k;
  info.sink_pos = sink_pos;
  info.trace = prep.trace;
  if (prep.cls == QueryClass::kKnn && score_accuracy_) {
    info.truth_pre = network_->TrueKnn(prep.q, prep.k);
  }
  inflight_.emplace(id, std::move(info));
  ++inflight_count_;
  report_.peak_inflight = std::max(report_.peak_inflight,
                                   static_cast<uint64_t>(inflight_count_));

  switch (prep.cls) {
    case QueryClass::kKnn: {
      using Action = ServingFrontEnd::Decision::Action;
      if (decision.action == Action::kCacheHit) {
        // Answered from the cache: resolves synchronously, zero protocol
        // latency, no channel traffic.
        inflight_.at(id).path = ServingPath::kCacheHit;
        if (prep.trace.sampled()) {
          tracer_->AddEvent(prep.trace, TraceEventKind::kCacheHit, now, -1,
                            static_cast<double>(decision.candidates.size()));
        }
        std::vector<NodeId> ids;
        ids.reserve(decision.candidates.size());
        for (const KnnCandidate& c : decision.candidates) ids.push_back(c.id);
        Resolve(id, 0.0, false, std::move(ids));
        break;
      }
      if (decision.action == Action::kFollower) {
        // Parked on the leader's itinerary; ResolveKnnLeader fans the
        // answer back out when the leader completes (or times out).
        inflight_.at(id).path = ServingPath::kFollower;
        if (prep.trace.sampled()) {
          tracer_->AddEvent(prep.trace, TraceEventKind::kCoalesced, now, -1,
                            static_cast<double>(decision.leader));
        }
        break;
      }
      // Hand the root context to the protocol for the duration of the
      // launch call: its IssueQuery adopts the ambient trace instead of
      // starting a second one, so protocol phases nest under this root.
      Tracer::AmbientScope ambient(prep.trace.sampled() ? tracer_ : nullptr,
                                   prep.trace);
      protocol_->IssueQuery(prep.sink, prep.q, prep.k,
                            [this, id](const KnnResult& result) {
                              ResolveKnnLeader(id, result);
                            });
      break;
    }
    case QueryClass::kKnnBoundary:
      // Range query over the estimated KNN boundary of q: the square
      // circumscribing the radius-R disk that should hold ~k nodes.
      window_->IssueQuery(prep.sink,
                          QueryRect(prep.q, 2.0 * BoundaryRadius(prep.k)),
                          [this, id](const WindowResult& result) {
                            Resolve(id, result.Latency(), result.timed_out);
                          });
      break;
    case QueryClass::kWindow:
      window_->IssueQuery(prep.sink, QueryRect(prep.q, spec_.window_side),
                          [this, id](const WindowResult& result) {
                            Resolve(id, result.Latency(), result.timed_out);
                          });
      break;
    case QueryClass::kContinuous:
      continuous_->Subscribe(
          prep.sink, prep.q, prep.k, spec_.continuous_period,
          spec_.continuous_rounds, [this, id](const KnnUpdate& update) {
            // The subscription resolves when its last round completes;
            // earlier rounds are progress, not resolution.
            if (update.round + 1 >= spec_.continuous_rounds) {
              Resolve(id, update.result.Latency(), update.result.timed_out);
            }
          });
      break;
    case QueryClass::kAggregate:
      aggregate_->IssueQuery(prep.sink, QueryRect(prep.q, spec_.window_side),
                             [this, id](const AggregateResult& result) {
                               Resolve(id, result.Latency(), result.timed_out);
                             });
      break;
  }
}

void QueryDriver::Shed(const Prepared& prep, double estimate) {
  const SimTime now = network_->sim().Now();
  WorkloadQueryRecord rec;
  rec.id = prep.id;
  rec.cls = prep.cls;
  rec.arrived_at = prep.arrived_at;
  rec.queue_wait = now - prep.arrived_at;
  rec.outcome = QueryOutcome::kRejected;
  rec.path = ServingPath::kShed;
  records_.push_back(rec);
  ++report_.rejected;
  if (prep.trace.sampled()) {
    tracer_->AddEvent(prep.trace, TraceEventKind::kShed, now, -1, estimate);
    tracer_->CloseTrace(prep.trace.trace_id, now);
  }
}

void QueryDriver::ResolveKnnLeader(uint64_t id, const KnnResult& result) {
  if (serving_ == nullptr) {
    Resolve(id, result.Latency(), result.timed_out, result.CandidateIds());
    return;
  }
  const SimTime now = network_->sim().Now();
  // Snapshot the leader's geometry before Resolve() erases it, then feed
  // the front end FIRST: the cache entry it seeds and the leader slot it
  // frees must be visible to any queued query promoted by Resolve().
  std::vector<QueryCoalescer::Follower> followers;
  const auto it = inflight_.find(id);
  if (it != inflight_.end()) {
    const Inflight& leader = it->second;
    followers = serving_->OnResolved(
        id, leader.q, leader.sink_pos, static_cast<int>(leader.cls),
        leader.k, result.candidates, result.Latency(), result.timed_out, now);
  }
  Resolve(id, result.Latency(), result.timed_out, result.CandidateIds());
  // Fan the leader's answer out: each follower gets the superset
  // re-pruned around its own query point, truncated to its own k. A
  // timed-out leader times its followers out too — they rode the same
  // itinerary — which keeps issued == completed + missed + rejected +
  // timed_out intact.
  for (const QueryCoalescer::Follower& f : followers) {
    const auto fit = inflight_.find(f.ticket);
    if (fit == inflight_.end()) continue;  // Already finalized.
    const std::vector<KnnCandidate> pruned =
        ServingFrontEnd::TruncateFor(result.candidates, fit->second.q, f.k);
    std::vector<NodeId> ids;
    ids.reserve(pruned.size());
    for (const KnnCandidate& c : pruned) ids.push_back(c.id);
    if (fit->second.trace.sampled()) {
      tracer_->AddEvent(fit->second.trace, TraceEventKind::kFanOut, now, -1,
                        static_cast<double>(id));
    }
    Resolve(f.ticket, now - fit->second.launched_at, result.timed_out,
            std::move(ids));
  }
}

void QueryDriver::Resolve(uint64_t id, double protocol_latency,
                          bool timed_out, std::vector<NodeId> returned) {
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return;  // Already finalized.
  const Inflight info = std::move(it->second);
  inflight_.erase(it);
  --inflight_count_;

  WorkloadQueryRecord rec;
  rec.id = id;
  rec.cls = info.cls;
  rec.arrived_at = info.arrived_at;
  rec.queue_wait = info.queue_wait;
  rec.latency = info.queue_wait + protocol_latency;
  rec.path = info.path;
  if (timed_out) {
    rec.outcome = QueryOutcome::kTimedOut;
    ++report_.timed_out;
  } else if (spec_.deadline > 0.0 && rec.latency > spec_.deadline) {
    rec.outcome = QueryOutcome::kDeadlineMissed;
    ++report_.deadline_missed;
    report_.latency.Add(rec.latency);
  } else {
    rec.outcome = QueryOutcome::kCompleted;
    ++report_.completed;
    report_.latency.Add(rec.latency);
  }
  if (!info.truth_pre.empty()) {
    rec.pre_accuracy = Overlap(returned, info.truth_pre);
    rec.post_accuracy =
        Overlap(returned, network_->TrueKnn(info.q, info.k));
  }
  if (info.trace.sampled()) {
    const SimTime tnow = network_->sim().Now();
    if (rec.outcome == QueryOutcome::kDeadlineMissed) {
      tracer_->AddEvent(info.trace, TraceEventKind::kDeadlineMissed, tnow,
                        -1, rec.latency);
    }
    // Idempotent on top of the protocol's own CloseTrace (kKnn class);
    // the only closer for window / aggregate / continuous classes.
    tracer_->CloseTrace(info.trace.trace_id, tnow);
  }
  records_.push_back(rec);

  // Freed capacity: promote the longest-waiting queued query.
  while (!queue_.empty() &&
         (spec_.max_inflight == 0 || inflight_count_ < spec_.max_inflight)) {
    Prepared next = std::move(queue_.front());
    queue_.pop_front();
    Launch(std::move(next));
  }

  if (spec_.arrival == ArrivalKind::kClosedLoop && !finalized_) {
    network_->sim().ScheduleAfter(spec_.think_time,
                                  [this] { StartSession(); });
  }
}

void QueryDriver::ScheduleNextArrival() {
  const double interval = spec_.arrival == ArrivalKind::kPoisson
                              ? rng_.Exponential(1.0 / spec_.rate)
                              : 1.0 / spec_.rate;
  const SimTime t = network_->sim().Now() + interval;
  if (t >= end_time_) return;
  network_->sim().ScheduleAt(t, [this] {
    Admit(Draw());
    ScheduleNextArrival();
  });
}

void QueryDriver::StartSession() {
  if (finalized_ || network_->sim().Now() >= end_time_) return;
  Admit(Draw());
}

void QueryDriver::Finalize() {
  finalized_ = true;
  const SimTime now = network_->sim().Now();
  // Still queued: never launched, so they score as rejections.
  for (const Prepared& prep : queue_) {
    WorkloadQueryRecord rec;
    rec.id = prep.id;
    rec.cls = prep.cls;
    rec.arrived_at = prep.arrived_at;
    rec.queue_wait = now - prep.arrived_at;
    rec.outcome = QueryOutcome::kRejected;
    records_.push_back(rec);
    ++report_.rejected;
    if (prep.trace.sampled()) {
      tracer_->CloseTrace(prep.trace.trace_id, now);
    }
  }
  queue_.clear();
  // Still in flight after the drain: unresolved, so they score as
  // timeouts. Sorted by id so the record order is platform-independent.
  std::vector<uint64_t> ids;
  ids.reserve(inflight_.size());
  for (const auto& [id, info] : inflight_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) {
    const Inflight& info = inflight_.at(id);
    WorkloadQueryRecord rec;
    rec.id = id;
    rec.cls = info.cls;
    rec.arrived_at = info.arrived_at;
    rec.queue_wait = info.queue_wait;
    rec.latency = now - info.arrived_at;
    rec.outcome = QueryOutcome::kTimedOut;
    rec.path = info.path;
    records_.push_back(rec);
    ++report_.timed_out;
    if (info.trace.sampled()) {
      tracer_->CloseTrace(info.trace.trace_id, now);
    }
  }
  inflight_.clear();
  inflight_count_ = 0;
  if (serving_ != nullptr) report_.serving = serving_->counters();
}

SloReport QueryDriver::Run(SimTime duration, SimTime drain) {
  Simulator& sim = network_->sim();
  const SimTime start = sim.Now();
  end_time_ = start + duration;
  if (spec_.arrival == ArrivalKind::kClosedLoop) {
    for (int s = 0; s < spec_.sessions; ++s) {
      sim.ScheduleAt(start, [this] { StartSession(); });
    }
  } else {
    ScheduleNextArrival();
  }
  sim.RunUntil(end_time_ + drain);
  Finalize();
  report_.duration = duration;
  return report_;
}

}  // namespace diknn
