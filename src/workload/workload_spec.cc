#include "workload/workload_spec.h"

#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace diknn {

namespace {

/// Splits `s` on `sep`, dropping empty pieces (tolerates ";;" and
/// trailing separators).
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream in(s);
  while (std::getline(in, piece, sep)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

bool ParseInt(const std::string& s, int* out) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == s.c_str()) return false;
  *out = static_cast<int>(v);
  return true;
}

bool Fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

/// Key/value list of one clause body ("key=val,key=val").
bool ParseKv(const std::string& body,
             std::unordered_map<std::string, std::string>* kv,
             std::string* error) {
  for (const std::string& pair : Split(body, ',')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Fail(error, "'" + pair + "': expected key=value");
    }
    (*kv)[pair.substr(0, eq)] = pair.substr(eq + 1);
  }
  return true;
}

struct KvReader {
  std::unordered_map<std::string, std::string> kv;
  std::string* error;

  bool TakeDouble(const char* key, double* slot) {
    auto it = kv.find(key);
    if (it == kv.end()) return true;
    if (!ParseDouble(it->second, slot)) {
      return Fail(error, std::string("bad number for '") + key + "'");
    }
    kv.erase(it);
    return true;
  }

  bool TakeInt(const char* key, int* slot) {
    auto it = kv.find(key);
    if (it == kv.end()) return true;
    if (!ParseInt(it->second, slot)) {
      return Fail(error, std::string("bad integer for '") + key + "'");
    }
    kv.erase(it);
    return true;
  }

  bool TakeString(const char* key, std::string* slot) {
    auto it = kv.find(key);
    if (it == kv.end()) return true;
    *slot = it->second;
    kv.erase(it);
    return true;
  }

  bool Done(const std::string& clause) {
    if (kv.empty()) return true;
    return Fail(error, "unknown key '" + kv.begin()->first + "' in '" +
                           clause + "'");
  }
};

bool ParseClause(const std::string& clause, WorkloadSpec* out,
                 std::string* error) {
  const size_t split = clause.find('@');
  if (split == std::string::npos) {
    return Fail(error, "'" + clause + "': expected section@key=value,...");
  }
  const std::string section = clause.substr(0, split);
  KvReader r{{}, error};
  if (!ParseKv(clause.substr(split + 1), &r.kv, error)) return false;

  if (section == "arrival") {
    std::string kind;
    if (!r.TakeString("kind", &kind)) return false;
    if (kind == "poisson" || kind.empty()) {
      out->arrival = ArrivalKind::kPoisson;
    } else if (kind == "fixed") {
      out->arrival = ArrivalKind::kFixedRate;
    } else if (kind == "closed") {
      out->arrival = ArrivalKind::kClosedLoop;
    } else {
      return Fail(error, "unknown arrival kind '" + kind + "'");
    }
    if (!r.TakeDouble("rate", &out->rate)) return false;
    if (!r.TakeInt("sessions", &out->sessions)) return false;
    if (!r.TakeDouble("think", &out->think_time)) return false;
    if (out->arrival != ArrivalKind::kClosedLoop && out->rate <= 0.0) {
      return Fail(error, "open-loop arrival needs rate>0");
    }
    if (out->arrival == ArrivalKind::kClosedLoop && out->sessions <= 0) {
      return Fail(error, "closed-loop arrival needs sessions>0");
    }
    if (out->think_time < 0.0) return Fail(error, "think must be >= 0");
  } else if (section == "mix") {
    out->mix.fill(0.0);
    for (int c = 0; c < kNumQueryClasses; ++c) {
      if (!r.TakeDouble(QueryClassName(static_cast<QueryClass>(c)),
                        &out->mix[c])) {
        return false;
      }
      if (out->mix[c] < 0.0) return Fail(error, "mix weights must be >= 0");
    }
    if (out->TotalWeight() <= 0.0) {
      return Fail(error, "mix needs at least one positive weight");
    }
  } else if (section == "k") {
    if (!r.TakeInt("lo", &out->k_lo)) return false;
    out->k_hi = out->k_lo;  // lo alone pins k.
    if (!r.TakeInt("hi", &out->k_hi)) return false;
    if (out->k_lo <= 0 || out->k_hi < out->k_lo) {
      return Fail(error, "k needs 0 < lo <= hi");
    }
  } else if (section == "space") {
    std::string kind;
    if (!r.TakeString("kind", &kind)) return false;
    if (kind == "uniform" || kind.empty()) {
      out->spatial = SpatialKind::kUniform;
    } else if (kind == "hotspot") {
      out->spatial = SpatialKind::kHotspot;
    } else {
      return Fail(error, "unknown space kind '" + kind + "'");
    }
    if (!r.TakeInt("n", &out->hotspots)) return false;
    if (!r.TakeDouble("sigma", &out->hotspot_sigma)) return false;
    if (!r.TakeDouble("skew", &out->hotspot_skew)) return false;
    if (out->hotspots <= 0) return Fail(error, "space needs n>0");
    if (out->hotspot_sigma <= 0.0) return Fail(error, "space needs sigma>0");
  } else if (section == "deadline") {
    if (!r.TakeDouble("s", &out->deadline)) return false;
    if (out->deadline < 0.0) return Fail(error, "deadline must be >= 0");
  } else if (section == "admit") {
    if (!r.TakeInt("inflight", &out->max_inflight)) return false;
    if (!r.TakeInt("queue", &out->queue_capacity)) return false;
    int shed = out->admit_shed ? 1 : 0;
    if (!r.TakeInt("shed", &shed)) return false;
    if (shed != 0 && shed != 1) {
      return Fail(error, "admit shed must be 0 or 1");
    }
    out->admit_shed = shed == 1;
    if (out->max_inflight < 0 || out->queue_capacity < 0) {
      return Fail(error, "admit bounds must be >= 0");
    }
  } else if (section == "cache") {
    if (!r.TakeDouble("ttl", &out->cache_ttl)) return false;
    if (!r.TakeInt("cells", &out->cache_cells)) return false;
    if (out->cache_ttl <= 0.0) {
      return Fail(error, "cache needs ttl>0 (seconds; the validity-time "
                         "cap)");
    }
    if (out->cache_cells <= 0) {
      return Fail(error, "cache needs cells>0 (grid cells per field axis)");
    }
  } else if (section == "coalesce") {
    if (!r.TakeDouble("window", &out->coalesce_window)) return false;
    if (!r.TakeInt("kslack", &out->coalesce_kslack)) return false;
    if (out->coalesce_window <= 0.0) {
      return Fail(error, "coalesce needs window>0 (seconds; max leader "
                         "age a follower may attach to)");
    }
    if (out->coalesce_kslack < 0) {
      return Fail(error, "coalesce kslack must be >= 0");
    }
  } else if (section == "window") {
    if (!r.TakeDouble("side", &out->window_side)) return false;
    if (out->window_side <= 0.0) return Fail(error, "window needs side>0");
  } else if (section == "continuous") {
    if (!r.TakeDouble("period", &out->continuous_period)) return false;
    if (!r.TakeInt("rounds", &out->continuous_rounds)) return false;
    if (out->continuous_period <= 0.0 || out->continuous_rounds <= 0) {
      return Fail(error, "continuous needs period>0 and rounds>0");
    }
  } else if (section == "trace") {
    if (!r.TakeDouble("rate", &out->trace_sample)) return false;
    if (out->trace_sample < 0.0 || out->trace_sample > 1.0) {
      return Fail(error, "trace rate must be in [0,1]");
    }
  } else if (section == "timeseries") {
    if (!r.TakeDouble("interval", &out->ts_interval)) return false;
    if (!r.TakeInt("capacity", &out->ts_capacity)) return false;
    if (out->ts_interval <= 0.0) {
      return Fail(error, "timeseries needs interval>0 (sim-seconds "
                         "between samples)");
    }
    if (out->ts_capacity < 0) {
      return Fail(error, "timeseries capacity must be >= 0 (0 = default)");
    }
  } else {
    return Fail(error, "unknown section '" + section + "'");
  }
  return r.Done(clause);
}

}  // namespace

const char* QueryClassName(QueryClass cls) {
  switch (cls) {
    case QueryClass::kKnn:
      return "knn";
    case QueryClass::kKnnBoundary:
      return "knnb";
    case QueryClass::kWindow:
      return "window";
    case QueryClass::kContinuous:
      return "continuous";
    case QueryClass::kAggregate:
      return "aggregate";
  }
  return "?";
}

double WorkloadSpec::TotalWeight() const {
  double total = 0.0;
  for (double w : mix) total += w;
  return total;
}

std::optional<WorkloadSpec> WorkloadSpec::Parse(const std::string& spec,
                                                std::string* error) {
  WorkloadSpec out;
  for (const std::string& clause : Split(spec, ';')) {
    if (!ParseClause(clause, &out, error)) return std::nullopt;
  }
  return out;
}

std::string WorkloadSpec::ToSpec() const {
  std::ostringstream os;
  os << "arrival@kind=";
  switch (arrival) {
    case ArrivalKind::kPoisson:
      os << "poisson,rate=" << rate;
      break;
    case ArrivalKind::kFixedRate:
      os << "fixed,rate=" << rate;
      break;
    case ArrivalKind::kClosedLoop:
      os << "closed,sessions=" << sessions << ",think=" << think_time;
      break;
  }
  os << ";mix@";
  bool first = true;
  for (int c = 0; c < kNumQueryClasses; ++c) {
    if (mix[c] <= 0.0) continue;
    if (!first) os << ',';
    first = false;
    os << QueryClassName(static_cast<QueryClass>(c)) << '=' << mix[c];
  }
  os << ";k@lo=" << k_lo << ",hi=" << k_hi;
  os << ";space@kind=";
  if (spatial == SpatialKind::kUniform) {
    os << "uniform";
  } else {
    os << "hotspot,n=" << hotspots << ",sigma=" << hotspot_sigma
       << ",skew=" << hotspot_skew;
  }
  if (deadline > 0.0) os << ";deadline@s=" << deadline;
  if (max_inflight > 0 || admit_shed) {
    os << ";admit@inflight=" << max_inflight
       << ",queue=" << queue_capacity;
    if (admit_shed) os << ",shed=1";
  }
  if (cache_ttl > 0.0) {
    os << ";cache@ttl=" << cache_ttl << ",cells=" << cache_cells;
  }
  if (coalesce_window > 0.0) {
    os << ";coalesce@window=" << coalesce_window
       << ",kslack=" << coalesce_kslack;
  }
  if (mix[static_cast<int>(QueryClass::kWindow)] > 0.0 ||
      mix[static_cast<int>(QueryClass::kAggregate)] > 0.0 ||
      mix[static_cast<int>(QueryClass::kKnnBoundary)] > 0.0) {
    os << ";window@side=" << window_side;
  }
  if (mix[static_cast<int>(QueryClass::kContinuous)] > 0.0) {
    os << ";continuous@period=" << continuous_period
       << ",rounds=" << continuous_rounds;
  }
  if (trace_sample > 0.0) os << ";trace@rate=" << trace_sample;
  if (ts_interval > 0.0) {
    os << ";timeseries@interval=" << ts_interval;
    if (ts_capacity > 0) os << ",capacity=" << ts_capacity;
  }
  return os.str();
}

}  // namespace diknn
