// Declarative query-workload specifications.
//
// The paper evaluates one query at a time (exponential inter-arrival with
// a 4 s mean), so queries almost never overlap. A WorkloadSpec describes
// the serving regime instead: a sustained stream of concurrent queries
// with an arrival process (open-loop Poisson / fixed-rate, or closed-loop
// with a concurrency cap), a mix of query classes, a k distribution, a
// spatial distribution for query points, per-query deadlines and an
// admission-control bound. The QueryDriver replays a spec against a
// protocol stack; the same spec + the same seed is bit-reproducible.
//
// Spec grammar (one string, e.g. for diknn_sim --workload), modeled on
// the fault-plan grammar in src/faults/fault_plan.h:
//
//   spec    := clause (';' clause)*
//   clause  := section '@' key '=' value (',' key '=' value)*
//
// with sections and their keys (every clause is optional; defaults below):
//
//   arrival  kind=poisson|fixed|closed   open-loop Poisson (default),
//                                        open-loop fixed spacing, or
//                                        closed-loop sessions
//            rate=R                      offered load, queries/s (open loop)
//            sessions=N                  concurrent sessions (closed loop)
//            think=S                     per-session think time (closed loop)
//   mix      knn=W,knnb=W,window=W,continuous=W,aggregate=W
//                                        per-class weights (>= 0, sum > 0;
//                                        default knn=1, rest 0)
//   k        lo=A,hi=B                   k ~ UniformInt[A, B]; lo alone
//                                        (or lo == hi) pins k
//   space    kind=uniform|hotspot        query-point distribution
//            n=N                         hotspot count (default 4)
//            sigma=S                     Gaussian spread per hotspot (m)
//            skew=Z                      Zipf exponent over hotspots
//   deadline s=S                         per-query latency SLO (s); 0 = none
//   admit    inflight=N                  max in-flight queries; 0 = unbounded
//            queue=Q                     waiting-room capacity once at the
//                                        bound (0 = reject immediately)
//            shed=0|1                    deadline-aware admission: shed
//                                        queries whose predicted completion
//                                        misses their deadline (needs
//                                        deadline@s > 0 to bite)
//   cache    ttl=S                       sink-side result cache: TTL cap in
//                                        seconds (> 0 enables; the
//                                        effective validity time is
//                                        min(ttl, radio_range / mu_max))
//            cells=N                     cache-grid cells per field axis
//   coalesce window=S                    attach co-located queries to an
//                                        in-flight leader up to this age
//                                        (> 0 enables coalescing)
//            kslack=K                    a follower may ask for up to K
//                                        more neighbors than its leader
//   window   side=S                      extent (m) of window/aggregate
//                                        query rectangles
//   continuous period=S,rounds=N        refresh period and round count per
//                                        continuous subscription
//   trace    rate=R                     fraction of queries traced by the
//                                        harness Tracer, in [0,1]; 0 (the
//                                        default) records nothing
//   timeseries interval=S               flight-recorder sampling cadence in
//                                        sim-seconds (> 0 enables the
//                                        windowed time-series rollups; see
//                                        docs/OBSERVABILITY.md)
//            capacity=N                  ring depth per series (0 = default,
//                                        currently 512; oldest samples fall
//                                        off first)
//
// Example — 8 q/s Poisson, 80/20 point-KNN/window, k in [20,60], hotspot
// arrivals, a 2 s deadline and at most 64 in flight:
//   "arrival@kind=poisson,rate=8;mix@knn=0.8,window=0.2;k@lo=20,hi=60;"
//   "space@kind=hotspot,n=4,sigma=12;deadline@s=2;admit@inflight=64"

#ifndef DIKNN_WORKLOAD_WORKLOAD_SPEC_H_
#define DIKNN_WORKLOAD_WORKLOAD_SPEC_H_

#include <array>
#include <optional>
#include <string>

#include "serving/serving_types.h"

namespace diknn {

/// Arrival process for the query stream.
enum class ArrivalKind {
  kPoisson,     ///< Open loop, exponential inter-arrival at `rate` q/s.
  kFixedRate,   ///< Open loop, constant 1/rate spacing.
  kClosedLoop,  ///< `sessions` sessions, each re-issuing after think time.
};

/// The query classes a workload can mix. kKnn is the point-KNN query of
/// the installed protocol (DIKNN or a baseline); kKnnBoundary is a range
/// query over the estimated KNN boundary of a random point; the rest map
/// to the window / continuous / aggregate engines.
enum class QueryClass {
  kKnn = 0,
  kKnnBoundary,
  kWindow,
  kContinuous,
  kAggregate,
};

inline constexpr int kNumQueryClasses = 5;

/// Short lower-case tag for a class ("knn", "knnb", "window", ...).
const char* QueryClassName(QueryClass cls);

/// Spatial distribution of query points.
enum class SpatialKind {
  kUniform,  ///< Uniform over the deployment field.
  kHotspot,  ///< Zipf-weighted Gaussian clusters (skewed demand).
};

/// A parsed, immutable description of a query-serving workload.
struct WorkloadSpec {
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double rate = 1.0;        ///< Offered load, queries/s (open loop).
  int sessions = 8;         ///< Concurrency (closed loop).
  double think_time = 0.0;  ///< Post-completion pause (closed loop, s).

  /// Per-class weights, indexed by QueryClass. Normalized at draw time.
  std::array<double, kNumQueryClasses> mix = {1.0, 0.0, 0.0, 0.0, 0.0};

  int k_lo = 40;  ///< k ~ UniformInt[k_lo, k_hi].
  int k_hi = 40;

  SpatialKind spatial = SpatialKind::kUniform;
  int hotspots = 4;            ///< Cluster count (kHotspot).
  double hotspot_sigma = 12.0; ///< Gaussian spread per cluster (m).
  double hotspot_skew = 1.0;   ///< Zipf exponent over clusters.

  double deadline = 0.0;  ///< Per-query latency SLO (s); 0 = none.

  int max_inflight = 0;    ///< Admission bound; 0 = unbounded.
  int queue_capacity = 0;  ///< Waiting room at the bound; 0 = reject.
  bool admit_shed = false; ///< Deadline-aware shedding (admit@shed=1).

  double cache_ttl = 0.0;  ///< Result-cache TTL cap (s); 0 = no cache.
  int cache_cells = 16;    ///< Cache-grid cells per field axis.

  double coalesce_window = 0.0;  ///< Max leader age (s); 0 = no coalescing.
  int coalesce_kslack = 0;       ///< Follower k overshoot tolerance.

  double window_side = 30.0;       ///< Window/aggregate rect side (m).
  double continuous_period = 1.0;  ///< Continuous refresh period (s).
  int continuous_rounds = 3;       ///< Rounds per subscription.

  /// Fraction of queries traced (when the harness attaches a Tracer);
  /// 0 disables tracing for this workload.
  double trace_sample = 0.0;

  /// Flight-recorder cadence (sim-seconds between samples); 0 disables
  /// the time-series rollups. CLI --ts-interval overrides.
  double ts_interval = 0.0;
  /// Ring depth per series; 0 = TimeSeriesOptions::kDefaultCapacity.
  int ts_capacity = 0;

  /// Sum of the class weights (> 0 for a valid spec).
  double TotalWeight() const;

  /// The serving front-end tunables of this spec (Enabled() is false
  /// when no cache/coalesce/shed clause was given).
  ServingParams Serving() const {
    ServingParams p;
    p.cache_ttl = cache_ttl;
    p.cache_cells = cache_cells;
    p.coalesce_window = coalesce_window;
    p.coalesce_kslack = coalesce_kslack;
    p.shed = admit_shed;
    return p;
  }

  /// Parses the grammar above. Returns std::nullopt on malformed input
  /// and, when `error` is non-null, stores a human-readable reason.
  static std::optional<WorkloadSpec> Parse(const std::string& spec,
                                           std::string* error = nullptr);

  /// Serializes back to the grammar (canonical form; parseable).
  std::string ToSpec() const;
};

}  // namespace diknn

#endif  // DIKNN_WORKLOAD_WORKLOAD_SPEC_H_
