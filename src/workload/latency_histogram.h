// Streaming latency accounting for the workload engine.
//
// A LatencyHistogram is a fixed set of logarithmically spaced buckets
// (constant relative resolution, like HdrHistogram's coarse mode):
// recording is O(1), memory is constant, and two histograms merge by
// adding bucket counts — which is what makes multi-run SLO reports
// bit-identical at any --jobs setting (counts are integers; no
// order-dependent floating point accumulates across runs).
//
// An SloReport is the serving-side scorecard of one workload run: the
// outcome partition (completed / deadline-missed / rejected / timed-out
// sums to issued), goodput, and the latency distribution of everything
// that finished.

#ifndef DIKNN_WORKLOAD_LATENCY_HISTOGRAM_H_
#define DIKNN_WORKLOAD_LATENCY_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

#include "serving/serving_types.h"
#include "workload/workload_spec.h"

namespace diknn {

/// Log-spaced streaming histogram over (0, +inf) seconds. Buckets span
/// [kMinLatency, kMaxLatency) at 8 buckets per octave (~9% relative
/// resolution); values outside the span land in clamp buckets but keep
/// exact min/max, so Percentile() never invents a value outside the
/// observed range.
class LatencyHistogram {
 public:
  static constexpr double kMinLatency = 1e-3;   ///< 1 ms.
  static constexpr double kMaxLatency = 128.0;  ///< > any query timeout.
  static constexpr int kBucketsPerOctave = 8;
  /// ceil(log2(kMaxLatency / kMinLatency)) * kBucketsPerOctave = 17 * 8.
  static constexpr int kNumBuckets = 136;

  /// Records one latency (seconds).
  void Add(double latency);

  /// Adds another histogram's counts into this one.
  void Merge(const LatencyHistogram& other);

  uint64_t Count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }

  /// The p-th percentile (0 <= p <= 100): the geometric midpoint of the
  /// bucket holding the p-th ranked sample, clamped to [Min(), Max()].
  /// 0 when empty. Deterministic given equal counts.
  double Percentile(double p) const;

  /// Percentile of the samples added since `prev` was a copy of this
  /// histogram (bucket-count subtraction — `prev` must be an earlier
  /// state of *this*). 0 when no samples arrived in between. Integer
  /// bucket math, so windowed percentiles stay deterministic — this is
  /// what the flight recorder uses for per-interval p50/p99.
  double DeltaPercentile(const LatencyHistogram& prev, double p) const;

 private:
  static int BucketOf(double latency);
  static double BucketMidpoint(int bucket);

  std::array<uint64_t, kNumBuckets> buckets_ = {};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// How one issued query resolved.
enum class QueryOutcome {
  kCompleted,       ///< Finished within its deadline (or no deadline).
  kDeadlineMissed,  ///< Finished, but after the deadline.
  kRejected,        ///< Turned away by admission control (never ran).
  kTimedOut,        ///< Protocol timeout, or still unresolved at drain end.
};

const char* QueryOutcomeName(QueryOutcome outcome);

/// SLO scorecard of a workload run. Invariant:
/// issued == completed + deadline_missed + rejected + timed_out.
struct SloReport {
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t deadline_missed = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  /// Issued queries by class (admission-rejected arrivals included).
  std::array<uint64_t, kNumQueryClasses> issued_by_class = {};
  /// Highest simultaneous in-flight count observed.
  uint64_t peak_inflight = 0;
  /// Measured workload seconds (summed across runs when merged).
  double duration = 0.0;
  /// Latencies of everything that finished (completed + missed); rejected
  /// and timed-out queries never enter the distribution.
  LatencyHistogram latency;
  /// Serving front-end counters (cache hits / coalesced followers / shed
  /// queries); all zero when the workload ran without a front end. Shed
  /// queries are counted inside `rejected` (they never launched), so the
  /// outcome partition above still balances.
  ServingCounters serving;

  double p50() const { return latency.Percentile(50.0); }
  double p95() const { return latency.Percentile(95.0); }
  double p99() const { return latency.Percentile(99.0); }
  double p999() const { return latency.Percentile(99.9); }

  /// Queries/s that completed within their deadline.
  double GoodputQps() const {
    return duration > 0.0 ? completed / duration : 0.0;
  }
  /// Fraction of issued queries that finished late.
  double MissRate() const {
    return issued > 0 ? static_cast<double>(deadline_missed) / issued : 0.0;
  }
  /// Fraction of issued queries turned away by admission control.
  double RejectRate() const {
    return issued > 0 ? static_cast<double>(rejected) / issued : 0.0;
  }
  /// Fraction of issued queries that timed out (or never resolved).
  double TimeoutRate() const {
    return issued > 0 ? static_cast<double>(timed_out) / issued : 0.0;
  }

  /// True when the outcome partition sums to `issued`.
  bool Consistent() const {
    return issued == completed + deadline_missed + rejected + timed_out;
  }

  /// Folds another run's report into this one (counts add, histograms
  /// merge, durations sum, peak takes the max).
  void Merge(const SloReport& other);

  /// One-line human-readable summary.
  std::string Format() const;

  /// Compact JSON object (no trailing newline) for bench output.
  std::string ToJson() const;
};

}  // namespace diknn

#endif  // DIKNN_WORKLOAD_LATENCY_HISTOGRAM_H_
