#include "workload/latency_histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace diknn {

int LatencyHistogram::BucketOf(double latency) {
  if (!(latency > kMinLatency)) return 0;
  const int bucket = static_cast<int>(
      std::log2(latency / kMinLatency) * kBucketsPerOctave);
  return std::clamp(bucket, 0, kNumBuckets - 1);
}

double LatencyHistogram::BucketMidpoint(int bucket) {
  // Geometric midpoint of [lo, lo * 2^(1/8)).
  return kMinLatency *
         std::exp2((bucket + 0.5) / static_cast<double>(kBucketsPerOctave));
}

void LatencyHistogram::Add(double latency) {
  latency = std::max(latency, 0.0);
  if (count_ == 0) {
    min_ = max_ = latency;
  } else {
    min_ = std::min(min_, latency);
    max_ = std::max(max_, latency);
  }
  ++count_;
  sum_ += latency;
  ++buckets_[BucketOf(latency)];
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the sample holding the percentile (nearest-rank definition).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * count_)));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

double LatencyHistogram::DeltaPercentile(const LatencyHistogram& prev,
                                         double p) const {
  const uint64_t delta_count = count_ - std::min(count_, prev.count_);
  if (delta_count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * delta_count)));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_window =
        buckets_[i] - std::min(buckets_[i], prev.buckets_[i]);
    seen += in_window;
    if (seen >= rank) {
      // The window's exact min/max are not retained, so clamp to the
      // whole-run observed range (a superset of the window's).
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kCompleted:
      return "completed";
    case QueryOutcome::kDeadlineMissed:
      return "deadline_missed";
    case QueryOutcome::kRejected:
      return "rejected";
    case QueryOutcome::kTimedOut:
      return "timed_out";
  }
  return "?";
}

void SloReport::Merge(const SloReport& other) {
  issued += other.issued;
  completed += other.completed;
  deadline_missed += other.deadline_missed;
  rejected += other.rejected;
  timed_out += other.timed_out;
  for (int c = 0; c < kNumQueryClasses; ++c) {
    issued_by_class[c] += other.issued_by_class[c];
  }
  peak_inflight = std::max(peak_inflight, other.peak_inflight);
  duration += other.duration;
  latency.Merge(other.latency);
  serving.Merge(other.serving);
}

std::string SloReport::Format() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "issued=" << issued << " goodput=" << GoodputQps() << "q/s"
     << " p50=" << p50() << "s p95=" << p95() << "s p99=" << p99() << "s"
     << " miss=" << 100.0 * MissRate() << "%"
     << " reject=" << 100.0 * RejectRate() << "%"
     << " timeout=" << 100.0 * TimeoutRate() << "%"
     << " peak_inflight=" << peak_inflight;
  if (serving.Any()) {
    os << " cache=" << serving.cache_hits << '/'
       << (serving.cache_hits + serving.cache_misses)
       << " coalesced=" << serving.coalesced << " shed=" << serving.shed;
  }
  return os.str();
}

std::string SloReport::ToJson() const {
  std::ostringstream os;
  os << "{\"issued\": " << issued << ", \"completed\": " << completed
     << ", \"deadline_missed\": " << deadline_missed
     << ", \"rejected\": " << rejected << ", \"timed_out\": " << timed_out
     << ", \"peak_inflight\": " << peak_inflight
     << ", \"goodput_qps\": " << GoodputQps()
     << ", \"mean_s\": " << latency.Mean() << ", \"p50_s\": " << p50()
     << ", \"p95_s\": " << p95() << ", \"p99_s\": " << p99()
     << ", \"p999_s\": " << p999() << ", \"miss_rate\": " << MissRate()
     << ", \"reject_rate\": " << RejectRate()
     << ", \"timeout_rate\": " << TimeoutRate()
     << ", \"cache_hits\": " << serving.cache_hits
     << ", \"cache_misses\": " << serving.cache_misses
     << ", \"cache_insertions\": " << serving.cache_insertions
     << ", \"coalesced\": " << serving.coalesced
     << ", \"fanned_out\": " << serving.fanned_out
     << ", \"shed\": " << serving.shed << "}";
  return os.str();
}

}  // namespace diknn
