// Causal, per-query tracing for the simulated stack.
//
// The Tracer records typed spans (query lifecycle phases: route-to-home,
// per-sector itineraries, per-hop Q-node visits, collection windows,
// reply routing) and point events (retries, reroutes, collisions on a
// traced query's frames, fault injections) into flat append-only vectors.
// Spans carry parent ids so each query's execution forms a tree rooted at
// its kQuery span; the TraceSink renders those trees as Chrome trace
// JSON, critical-path summaries, and CSV.
//
// Determinism contract: the tracer must never perturb the simulation.
// It draws no RNG shared with the sim (sampling hashes its own arrival
// counter), schedules no events, and every recording call on an
// unsampled TraceContext is a cheap early-return — so a run traced at any
// rate is bit-identical to the same run with tracing off.

#ifndef DIKNN_OBS_TRACER_H_
#define DIKNN_OBS_TRACER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/trace_context.h"
#include "sim/event_queue.h"

namespace diknn {

/// Span taxonomy — one entry per query-lifecycle phase. See
/// docs/OBSERVABILITY.md for the nesting rules.
enum class SpanKind : uint8_t {
  kQuery = 0,      ///< Root: query issue -> completion.
  kQueue,          ///< Workload admission queue wait.
  kRoute,          ///< GPSR bootstrap routing, sink -> home node.
  kSector,         ///< One itinerary sector, spawn -> result at sink.
  kHop,            ///< One Q-node visit within a sector.
  kCollection,     ///< Probe broadcast -> collection window close.
  kReplyRoute,     ///< Sector result geo-routing back to the sink.
};

/// Point events attached to a span.
enum class TraceEventKind : uint8_t {
  kReply = 0,          ///< Candidate data reply received in a collection.
  kRendezvous,         ///< Dynamic boundary adjustment message sent.
  kBoundaryExtended,   ///< Itinerary extended outward (KNNB under-estimate).
  kBoundaryTruncated,  ///< Itinerary truncated (boundary adjustment).
  kAssuranceExpanded,  ///< Mobility-assurance window expansion.
  kVoidSkip,           ///< No Q-node candidate; itinerary skipped forward.
  kDeadNodeDrop,       ///< Forward target found dead; rerouted.
  kRetry,              ///< Protocol-level forward retry after MAC failure.
  kReroute,            ///< GPSR link failure; next-best neighbor chosen.
  kPerimeterEnter,     ///< GPSR greedy -> perimeter mode switch.
  kCollision,          ///< A frame of this query collided at a receiver.
  kFrameLost,          ///< A frame of this query was randomly lost.
  kMacRetry,           ///< MAC retransmission of a frame of this query.
  kCsmaFailure,        ///< MAC channel-access failure (backoffs exhausted).
  kFaultDrop,          ///< Fault injection dropped a frame of this query.
  kFaultDuplicate,     ///< Fault injection duplicated a frame.
  kTimeout,            ///< Query gave up at its protocol timeout.
  kDeadlineMissed,     ///< Completed after its workload deadline.
  kCacheHit,           ///< Answered from the serving result cache.
  kCoalesced,          ///< Attached as follower to an in-flight leader.
  kFanOut,             ///< Follower answer delivered from its leader.
  kShed,               ///< Dropped by deadline-aware admission.
};

const char* SpanKindName(SpanKind kind);
const char* TraceEventKindName(TraceEventKind kind);

/// One recorded span. `end < start` means the span was still open when
/// recorded (it is closed by EndSpan or CloseTrace).
struct Span {
  TraceId trace_id = 0;
  SpanId id = 0;       ///< 1-based position in the tracer's span vector.
  SpanId parent = 0;   ///< 0 for the root span.
  SpanKind kind = SpanKind::kQuery;
  int32_t sector = -1; ///< Sector index, or -1 for sink-side spans.
  int32_t node = -1;   ///< Node the span executes on, or -1.
  SimTime start = 0.0;
  SimTime end = -1.0;

  bool closed() const { return end >= start; }
};

/// One recorded point event.
struct SpanEvent {
  TraceId trace_id = 0;
  SpanId span_id = 0;  ///< Span the event is attached to (may be 0).
  TraceEventKind kind = TraceEventKind::kReply;
  SimTime time = 0.0;
  int32_t node = -1;
  double value = 0.0;  ///< Kind-specific payload (retry count, rings, ...).
};

struct TracerStats {
  uint64_t queries_seen = 0;     ///< StartQuery calls (sampling decisions).
  uint64_t queries_sampled = 0;  ///< Traces actually recorded.
  uint64_t spans = 0;
  uint64_t events = 0;
};

/// Copyable snapshot of everything a tracer recorded; consumed by the
/// TraceSink and by tests.
struct TraceData {
  double sample_rate = 0.0;
  TracerStats stats;
  std::vector<Span> spans;
  std::vector<SpanEvent> events;
};

class Tracer {
 public:
  /// `sample_rate` in [0,1] is the fraction of queries traced; the
  /// decision hashes (arrival counter, seed), so it is deterministic and
  /// independent of every simulation RNG stream.
  explicit Tracer(double sample_rate = 1.0, uint64_t seed = 0);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Sampling decision for a newly issued query. Returns a sampled root
  /// context (trace_id != 0, span_id = root span) or an unsampled one.
  TraceContext StartQuery(SimTime now);

  /// Opens a child span of `parent`. Returns 0 (and records nothing)
  /// when the parent context is unsampled.
  SpanId BeginSpan(const TraceContext& parent, SpanKind kind, SimTime now,
                   int32_t sector = -1, int32_t node = -1);

  /// Closes an open span; ignores span id 0, unknown ids, and spans
  /// already closed (so straggler paths can call it safely).
  void EndSpan(TraceId trace, SpanId span, SimTime now);
  void EndSpan(const TraceContext& ctx, SimTime now) {
    EndSpan(ctx.trace_id, ctx.span_id, now);
  }

  /// Records a point event attached to `ctx`'s span. No-op when
  /// unsampled.
  void AddEvent(const TraceContext& ctx, TraceEventKind kind, SimTime now,
                int32_t node = -1, double value = 0.0);

  /// Closes every span of `trace` still open (root included) at `now`.
  /// Idempotent; used at query completion / teardown so timed-out
  /// queries still yield well-formed trees.
  void CloseTrace(TraceId trace, SimTime now);

  /// Parent span id of `span` within `trace`, or 0.
  SpanId ParentOf(TraceId trace, SpanId span) const;

  /// Ambient context: lets an instrumented caller (the workload driver)
  /// hand its root context to a callee (Diknn::IssueQuery) across an
  /// uninstrumented interface. Scope-bound; a null tracer is fine.
  class AmbientScope {
   public:
    AmbientScope(Tracer* tracer, const TraceContext& ctx) : tracer_(tracer) {
      if (tracer_ != nullptr) tracer_->SetAmbient(ctx);
    }
    ~AmbientScope() {
      if (tracer_ != nullptr) tracer_->ClearAmbient();
    }
    AmbientScope(const AmbientScope&) = delete;
    AmbientScope& operator=(const AmbientScope&) = delete;

   private:
    Tracer* tracer_;
  };

  bool has_ambient() const { return has_ambient_; }
  const TraceContext& ambient() const { return ambient_; }

  double sample_rate() const { return sample_rate_; }
  const TracerStats& stats() const { return stats_; }
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<SpanEvent>& events() const { return events_; }

  /// Span lookup by id (1-based); nullptr for 0 / out of range.
  const Span* FindSpan(SpanId id) const {
    if (id == 0 || id > spans_.size()) return nullptr;
    return &spans_[id - 1];
  }

  TraceData Snapshot() const;

 private:
  friend class AmbientScope;
  void SetAmbient(const TraceContext& ctx) {
    ambient_ = ctx;
    has_ambient_ = true;
  }
  void ClearAmbient() {
    ambient_ = TraceContext{};
    has_ambient_ = false;
  }

  double sample_rate_;
  uint64_t seed_;
  uint64_t sample_threshold_;  ///< sample_rate scaled to the u64 range.
  uint64_t arrivals_ = 0;      ///< Sampling-decision counter.
  TraceId next_trace_id_ = 1;

  bool has_ambient_ = false;
  TraceContext ambient_;

  std::vector<Span> spans_;
  std::vector<SpanEvent> events_;
  // Open spans per live trace, so CloseTrace never scans the full span
  // vector (erased when the trace closes; bounded by in-flight queries).
  std::unordered_map<TraceId, std::vector<SpanId>> open_;
  TracerStats stats_;
};

}  // namespace diknn

#endif  // DIKNN_OBS_TRACER_H_
