#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace diknn {

const char* GaugeModeName(GaugeMode mode) {
  switch (mode) {
    case GaugeMode::kMax: return "max";
    case GaugeMode::kMin: return "min";
    case GaugeMode::kSum: return "sum";
  }
  return "?";
}

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MetricsHistogram

int MetricsHistogram::BucketOf(double value) {
  if (!(value > kMinValue)) return 0;
  const int bucket = static_cast<int>(
      std::log2(value / kMinValue) * kBucketsPerOctave);
  return std::clamp(bucket, 0, kNumBuckets - 1);
}

double MetricsHistogram::BucketMidpoint(int bucket) {
  return kMinValue *
         std::exp2((bucket + 0.5) / static_cast<double>(kBucketsPerOctave));
}

void MetricsHistogram::Add(double value) {
  value = std::max(value, 0.0);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketOf(value)];
}

void MetricsHistogram::Merge(const MetricsHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double MetricsHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * count_)));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot

namespace {

// Merges name-sorted entry vectors; `fold` combines entries that exist on
// both sides, new names are inserted in order.
template <typename Entry, typename Fold>
void MergeSorted(std::vector<Entry>& into, const std::vector<Entry>& from,
                 Fold fold) {
  std::vector<Entry> merged;
  merged.reserve(into.size() + from.size());
  size_t i = 0;
  size_t j = 0;
  while (i < into.size() && j < from.size()) {
    if (into[i].name < from[j].name) {
      merged.push_back(std::move(into[i++]));
    } else if (from[j].name < into[i].name) {
      merged.push_back(from[j++]);
    } else {
      Entry e = std::move(into[i++]);
      fold(e, from[j++]);
      merged.push_back(std::move(e));
    }
  }
  while (i < into.size()) merged.push_back(std::move(into[i++]));
  while (j < from.size()) merged.push_back(from[j++]);
  into = std::move(merged);
}

void AppendJsonNumber(std::ostringstream& os, double v) {
  // Shortest round-trippable form keeps the JSON deterministic and
  // byte-comparable across shard counts.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  MergeSorted(counters, other.counters,
              [](Counter& a, const Counter& b) { a.value += b.value; });
  MergeSorted(gauges, other.gauges, [](Gauge& a, const Gauge& b) {
    if (!b.set) return;
    if (!a.set) {
      a.value = b.value;
      a.set = true;
      return;
    }
    switch (a.mode) {
      case GaugeMode::kMax: a.value = std::max(a.value, b.value); break;
      case GaugeMode::kMin: a.value = std::min(a.value, b.value); break;
      case GaugeMode::kSum: a.value += b.value; break;
    }
  });
  MergeSorted(histograms, other.histograms,
              [](Histogram& a, const Histogram& b) { a.hist.Merge(b.hist); });
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const Counter& c, const std::string& n) { return c.name < n; });
  return (it != counters.end() && it->name == name) ? it->value : 0;
}

double MetricsSnapshot::GaugeValue(const std::string& name) const {
  const auto it = std::lower_bound(
      gauges.begin(), gauges.end(), name,
      [](const Gauge& g, const std::string& n) { return g.name < n; });
  return (it != gauges.end() && it->name == name) ? it->value : 0.0;
}

const MetricsHistogram* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  const auto it = std::lower_bound(
      histograms.begin(), histograms.end(), name,
      [](const Histogram& h, const std::string& n) { return h.name < n; });
  return (it != histograms.end() && it->name == name) ? &it->hist : nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    os << (i > 0 ? ", " : "") << '"' << counters[i].name
       << "\": " << counters[i].value;
  }
  os << "}, \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    os << (i > 0 ? ", " : "") << '"' << gauges[i].name << "\": ";
    AppendJsonNumber(os, gauges[i].value);
  }
  os << "}, \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const MetricsHistogram& h = histograms[i].hist;
    os << (i > 0 ? ", " : "") << '"' << histograms[i].name
       << "\": {\"count\": " << h.Count() << ", \"mean\": ";
    AppendJsonNumber(os, h.Mean());
    os << ", \"min\": ";
    AppendJsonNumber(os, h.Min());
    os << ", \"p50\": ";
    AppendJsonNumber(os, h.Percentile(50.0));
    os << ", \"p99\": ";
    AppendJsonNumber(os, h.Percentile(99.0));
    os << ", \"max\": ";
    AppendJsonNumber(os, h.Max());
    os << "}";
  }
  os << "}}";
  return os.str();
}

std::string ShardMetricName(int shard, const std::string& name) {
  return "psim.shard" + std::to_string(shard) + "." + name;
}

MetricsSnapshot MergeShardSnapshots(
    const std::vector<MetricsSnapshot>& shards) {
  MetricsSnapshot merged;
  for (const MetricsSnapshot& s : shards) merged.Merge(s);
  return merged;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

namespace {

// "counter", "gauge(max)", "histogram" — the registration's shape in one
// word, so a duplicate-name error reads without cross-referencing code.
std::string DescribeRegistration(MetricKind kind, GaugeMode mode) {
  std::string desc = MetricKindName(kind);
  if (kind == MetricKind::kGauge) {
    desc += '(';
    desc += GaugeModeName(mode);
    desc += ')';
  }
  return desc;
}

}  // namespace

bool MetricsRegistry::ClaimName(const std::string& name, MetricKind kind,
                                GaugeMode mode) {
  const auto it = std::lower_bound(
      names_.begin(), names_.end(), name,
      [](const NameEntry& e, const std::string& n) { return e.name < n; });
  if (it != names_.end() && it->name == name) {
    last_error_ = "duplicate metric \"" + name + "\": registered as " +
                  DescribeRegistration(it->kind, it->gauge_mode) +
                  ", re-registered as " + DescribeRegistration(kind, mode);
    if (kind == MetricKind::kGauge && it->kind == MetricKind::kGauge &&
        it->gauge_mode != mode) {
      last_error_ += " (gauge merge-mode mismatch)";
    }
    return false;
  }
  names_.insert(it, NameEntry{name, kind, mode});
  last_error_.clear();
  return true;
}

MetricId MetricsRegistry::RegisterCounter(const std::string& name) {
  if (!ClaimName(name, MetricKind::kCounter, GaugeMode::kMax)) {
    return kInvalidMetricId;
  }
  counters_.push_back(MetricsSnapshot::Counter{name, 0});
  return static_cast<MetricId>(counters_.size() - 1);
}

MetricId MetricsRegistry::RegisterGauge(const std::string& name,
                                        GaugeMode mode) {
  if (!ClaimName(name, MetricKind::kGauge, mode)) return kInvalidMetricId;
  gauges_.push_back(MetricsSnapshot::Gauge{name, mode, 0.0, false});
  return static_cast<MetricId>(gauges_.size() - 1);
}

MetricId MetricsRegistry::RegisterHistogram(const std::string& name) {
  if (!ClaimName(name, MetricKind::kHistogram, GaugeMode::kMax)) {
    return kInvalidMetricId;
  }
  histograms_.push_back(MetricsSnapshot::Histogram{name, {}});
  return static_cast<MetricId>(histograms_.size() - 1);
}

void MetricsRegistry::Set(MetricId gauge, double value) {
  if (gauge < 0 || static_cast<size_t>(gauge) >= gauges_.size()) return;
  MetricsSnapshot::Gauge& g = gauges_[gauge];
  if (!g.set) {
    g.value = value;
    g.set = true;
    return;
  }
  switch (g.mode) {
    case GaugeMode::kMax: g.value = std::max(g.value, value); break;
    case GaugeMode::kMin: g.value = std::min(g.value, value); break;
    case GaugeMode::kSum: g.value += value; break;
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  snap.histograms = histograms_;
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

}  // namespace diknn
