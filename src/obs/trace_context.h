// Trace-context tag propagated with simulated messages and frames.
//
// A TraceContext names the query trace a message belongs to and the span
// within that trace that caused it. It is pure simulation metadata: it is
// never counted in a packet's `size_bytes`, never consulted by protocol
// logic, and a default-constructed (unsampled) context makes every
// tracing call a no-op — so carrying it through the stack cannot perturb
// simulated behaviour.
//
// This header is dependency-free so `net/packet.h` can include it without
// pulling the tracer into the net layer's headers.

#ifndef DIKNN_OBS_TRACE_CONTEXT_H_
#define DIKNN_OBS_TRACE_CONTEXT_H_

#include <cstdint>

namespace diknn {

/// Identifies one traced query's span tree. 0 = unsampled.
using TraceId = uint64_t;

/// Identifies one span within a trace (1-based; 0 = none).
using SpanId = uint32_t;

struct TraceContext {
  TraceId trace_id = 0;
  SpanId span_id = 0;

  /// True when this context belongs to a sampled (recorded) query.
  bool sampled() const { return trace_id != 0; }
};

}  // namespace diknn

#endif  // DIKNN_OBS_TRACE_CONTEXT_H_
