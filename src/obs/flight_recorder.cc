#include "obs/flight_recorder.h"

#include "sim/simulator.h"

namespace diknn {

void FlightRecorder::ScheduleTicks(Simulator* sim, double start,
                                   double end) {
  const double interval = options().interval;
  if (!(interval > 0.0) || start > end) return;
  // One self-rescheduling event: tick, then re-arm until the horizon.
  // Scheduling from inside the callback keeps at most one recorder event
  // pending, and the event body touches nothing the simulation reads.
  struct Chain {
    FlightRecorder* recorder;
    Simulator* sim;
    double interval;
    double end;

    void Arm(double at) {
      if (at > end) return;
      sim->ScheduleAt(at, [chain = *this, at]() mutable {
        chain.recorder->Tick(at);
        chain.Arm(at + chain.interval);
      });
    }
  };
  Chain{this, sim, interval, end}.Arm(start + interval);
}

}  // namespace diknn
