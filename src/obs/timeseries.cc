#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace diknn {

namespace {

// Same shortest-round-trip convention as MetricsSnapshot::ToJson: the
// exported bytes must be identical wherever the doubles are identical.
void AppendNumber(std::ostringstream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void AppendSeriesObject(std::ostringstream& os, const TimeSeries& s) {
  os << '"' << JsonEscape(s.name()) << "\": {\"t\": [";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i > 0) os << ", ";
    AppendNumber(os, s.TimeAt(i));
  }
  os << "], \"v\": [";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i > 0) os << ", ";
    AppendNumber(os, s.ValueAt(i));
  }
  os << "], \"dropped\": " << s.dropped() << "}";
}

// Indices of `all` with the requested diagnostic flag, name-sorted so the
// export order never depends on producer registration order.
std::vector<size_t> SortedIndices(const std::deque<TimeSeries>& all,
                                  bool diagnostic) {
  std::vector<size_t> idx;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].diagnostic() == diagnostic) idx.push_back(i);
  }
  std::sort(idx.begin(), idx.end(), [&all](size_t a, size_t b) {
    return all[a].name() < all[b].name();
  });
  return idx;
}

void AppendSeriesMap(std::ostringstream& os,
                     const std::deque<TimeSeries>& all, bool diagnostic) {
  os << '{';
  bool first = true;
  for (size_t i : SortedIndices(all, diagnostic)) {
    if (!first) os << ", ";
    first = false;
    AppendSeriesObject(os, all[i]);
  }
  os << '}';
}

void AppendAnnotations(std::ostringstream& os,
                       const std::vector<TimeSeriesAnnotation>& anns) {
  os << '[';
  for (size_t i = 0; i < anns.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"t\": ";
    AppendNumber(os, anns[i].t);
    os << ", \"label\": \"" << JsonEscape(anns[i].label) << "\", \"value\": ";
    AppendNumber(os, anns[i].value);
    os << '}';
  }
  os << ']';
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void TimeSeries::Append(double t, double value) {
  if (times_.size() < capacity_) {
    times_.push_back(t);
    values_.push_back(value);
    return;
  }
  // Ring is full: overwrite the oldest slot and advance the head.
  times_[head_] = t;
  values_[head_] = value;
  head_ = (head_ + 1) % times_.size();
  ++dropped_;
}

double TimeSeries::Min() const {
  if (empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::Max() const {
  if (empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::Mean() const {
  if (empty()) return 0.0;
  double sum = 0.0;
  // Chronological order, so the float accumulation is deterministic.
  for (size_t i = 0; i < size(); ++i) sum += ValueAt(i);
  return sum / static_cast<double>(size());
}

TimeSeries* TimeSeriesSet::Add(const std::string& name, bool diagnostic) {
  for (TimeSeries& s : series_) {
    if (s.name() == name) return &s;
  }
  series_.emplace_back(name, options_.EffectiveCapacity(), diagnostic);
  return &series_.back();
}

const TimeSeries* TimeSeriesSet::Find(const std::string& name) const {
  for (const TimeSeries& s : series_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

void TimeSeriesSet::Annotate(double t, std::string label, double value) {
  annotations_.push_back(TimeSeriesAnnotation{t, std::move(label), value});
}

std::string TimeSeriesSet::DeterministicJson() const {
  std::ostringstream os;
  os << "{\"interval_s\": ";
  AppendNumber(os, options_.interval);
  os << ", \"series\": ";
  AppendSeriesMap(os, series_, /*diagnostic=*/false);
  os << ", \"annotations\": ";
  AppendAnnotations(os, annotations_);
  os << '}';
  return os.str();
}

void TimeSeriesSet::WriteJson(std::ostream& os) const {
  std::ostringstream body;
  body << "{\"interval_s\": ";
  AppendNumber(body, options_.interval);
  body << ",\n\"capacity\": " << options_.EffectiveCapacity();
  body << ",\n\"series\": ";
  AppendSeriesMap(body, series_, /*diagnostic=*/false);
  body << ",\n\"diagnostics\": ";
  AppendSeriesMap(body, series_, /*diagnostic=*/true);
  body << ",\n\"annotations\": ";
  AppendAnnotations(body, annotations_);
  body << "}\n";
  os << body.str();
}

void TimeSeriesSet::WriteCsv(std::ostream& os) const {
  os << "series,diagnostic,t,value\n";
  std::ostringstream row;
  for (bool diagnostic : {false, true}) {
    for (size_t i : SortedIndices(series_, diagnostic)) {
      const TimeSeries& s = series_[i];
      for (size_t j = 0; j < s.size(); ++j) {
        row.str("");
        row << CsvEscape(s.name()) << ',' << (diagnostic ? 1 : 0) << ',';
        AppendNumber(row, s.TimeAt(j));
        row << ',';
        AppendNumber(row, s.ValueAt(j));
        os << row.str() << '\n';
      }
    }
  }
  for (const TimeSeriesAnnotation& a : annotations_) {
    row.str("");
    row << CsvEscape(a.label) << ",annotation,";
    AppendNumber(row, a.t);
    row << ',';
    AppendNumber(row, a.value);
    os << row.str() << '\n';
  }
}

}  // namespace diknn
