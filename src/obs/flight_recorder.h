// The flight recorder: periodic sampling of live run state into a
// bounded TimeSeriesSet.
//
// A FlightRecorder owns one TimeSeriesSet and a list of probes. A probe
// is a callback that reads live counters (channel stats, the SloReport,
// serving counters), computes this interval's deltas, and appends one
// sample per series. Probes only ever *read* simulation state — the
// observation-never-perturbs contract of docs/OBSERVABILITY.md extends
// to the recorder: a run with the recorder enabled carries the exact
// same traffic as one without (asserted by bench_obs and
// timeseries_test), and the disabled path is a null-pointer check.
//
// Two driving modes:
//  * Serial engine: ScheduleTicks() plants a self-rescheduling simulator
//    event every `interval` sim-seconds. The event reads state and never
//    writes any, so event-queue cohabitation cannot change traffic.
//  * Parallel engine (psim): the engine calls Tick() from its barrier
//    completion step — a natural global sync point where every shard is
//    quiescent, so cross-shard sums are race-free and, for sim-time
//    derived counters, partition-invariant.
//
// Delta helpers (CounterDelta / RatioDelta) keep the per-interval math in
// integers until the final division, preserving bit-identity across
// --jobs and --shards for the deterministic series.

#ifndef DIKNN_OBS_FLIGHT_RECORDER_H_
#define DIKNN_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/timeseries.h"

namespace diknn {

class Simulator;

/// Tracks a monotonically increasing counter and yields per-tick deltas.
struct CounterDelta {
  uint64_t prev = 0;

  /// Delta since the last call (first call measures from `prev`'s
  /// initial value, so construct after warmup to skip warmup traffic).
  uint64_t Take(uint64_t now) {
    const uint64_t d = now >= prev ? now - prev : 0;
    prev = now;
    return d;
  }
};

/// num/den as a double; 0 when the denominator is 0 (an interval with no
/// events reads as a zero rate, not a NaN).
inline double SafeRate(uint64_t num, uint64_t den) {
  return den > 0 ? static_cast<double>(num) / static_cast<double>(den)
                 : 0.0;
}

class FlightRecorder {
 public:
  explicit FlightRecorder(TimeSeriesOptions options) : set_(options) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  const TimeSeriesOptions& options() const { return set_.options(); }

  /// Creates (or fetches) a series. Diagnostic series are excluded from
  /// the deterministic export section (wall-clock / partition-dependent
  /// values, the busy_s precedent).
  TimeSeries* AddSeries(const std::string& name, bool diagnostic = false) {
    return set_.Add(name, diagnostic);
  }

  /// Registers a sampling probe, called once per tick with the sample's
  /// sim time. Probes run in registration order.
  void AddProbe(std::function<void(double)> probe) {
    probes_.push_back(std::move(probe));
  }

  /// Records a point event on the timeline (fault kill/revive edges).
  void Annotate(double t, std::string label, double value = 0.0) {
    set_.Annotate(t, std::move(label), value);
  }

  /// Runs every probe at sample time `t`. Idempotence is the probes'
  /// concern (each tick appends exactly one sample per series).
  void Tick(double t) {
    for (auto& probe : probes_) probe(t);
  }

  /// Serial-engine driver: schedules ticks at start+i*interval for
  /// i = 1.. while the tick time stays <= end. The events only read
  /// simulation state, so traffic is bit-identical to an untracked run.
  void ScheduleTicks(Simulator* sim, double start, double end);

  const TimeSeriesSet& series() const { return set_; }
  TimeSeriesSet& series() { return set_; }

 private:
  TimeSeriesSet set_;
  std::vector<std::function<void(double)>> probes_;
};

}  // namespace diknn

#endif  // DIKNN_OBS_FLIGHT_RECORDER_H_
