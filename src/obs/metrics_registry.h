// Named metrics with deterministic cross-shard merging.
//
// Each run (the unit of `--jobs` parallelism) owns one MetricsRegistry —
// a private, lock-free store of counters, gauges, and log-bucketed
// histograms registered by name. At the end of the run the registry is
// frozen into a MetricsSnapshot (name-sorted), carried in RunMetrics, and
// merged in seed order by AggregateRuns — the same integer-count merge
// discipline that makes SloReport bit-identical at any jobs count:
// counters add, histogram bucket counts add, gauges combine by their
// declared mode, and doubles are only ever combined in the fixed seed
// order, never in thread-completion order.

#ifndef DIKNN_OBS_METRICS_REGISTRY_H_
#define DIKNN_OBS_METRICS_REGISTRY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace diknn {

/// How two shards' values of the same gauge combine.
enum class GaugeMode : uint8_t {
  kMax = 0,  ///< Peak across shards (e.g. peak in-flight queries).
  kMin,      ///< Trough across shards.
  kSum,      ///< Total across shards (for non-count totals, e.g. joules).
};

const char* GaugeModeName(GaugeMode mode);

/// What a registered name refers to; used for duplicate-registration
/// diagnostics.
enum class MetricKind : uint8_t {
  kCounter = 0,
  kGauge,
  kHistogram,
};

const char* MetricKindName(MetricKind kind);

/// Handle returned by registration; indexes are per-kind.
using MetricId = int32_t;
inline constexpr MetricId kInvalidMetricId = -1;

/// Log-spaced streaming histogram over [0, +inf). Same merge discipline
/// as LatencyHistogram (integer bucket counts add), but with a wider
/// span so it can hold latencies, hop counts, or byte sizes alike.
class MetricsHistogram {
 public:
  static constexpr double kMinValue = 1e-6;
  static constexpr int kBucketsPerOctave = 4;
  /// 40 octaves cover [1e-6, ~1.1e6); outliers land in clamp buckets but
  /// exact min/max are kept, so percentiles stay inside observed range.
  static constexpr int kNumBuckets = 160;

  void Add(double value);
  void Merge(const MetricsHistogram& other);

  uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }

  /// Nearest-rank percentile from the bucket midpoint, clamped to the
  /// observed [Min, Max]. 0 when empty.
  double Percentile(double p) const;

  bool operator==(const MetricsHistogram&) const = default;

 private:
  static int BucketOf(double value);
  static double BucketMidpoint(int bucket);

  std::array<uint64_t, kNumBuckets> buckets_ = {};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Frozen, name-sorted view of one registry (or a merge of several).
struct MetricsSnapshot {
  struct Counter {
    std::string name;
    uint64_t value = 0;
    bool operator==(const Counter&) const = default;
  };
  struct Gauge {
    std::string name;
    GaugeMode mode = GaugeMode::kMax;
    double value = 0.0;
    bool set = false;  ///< Never-set gauges merge as identity.
    bool operator==(const Gauge&) const = default;
  };
  struct Histogram {
    std::string name;
    MetricsHistogram hist;
    bool operator==(const Histogram&) const = default;
  };

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<Histogram> histograms;

  /// Folds `other` into this snapshot by name (union; both sides stay
  /// name-sorted). Deterministic for a fixed merge order.
  void Merge(const MetricsSnapshot& other);

  /// Counter value by name; 0 when absent.
  uint64_t CounterValue(const std::string& name) const;
  /// Gauge value by name; 0 when absent.
  double GaugeValue(const std::string& name) const;
  /// Histogram by name; nullptr when absent.
  const MetricsHistogram* FindHistogram(const std::string& name) const;

  /// Deterministic JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with names in sorted order.
  std::string ToJson() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Name of a shard-attributed metric: "psim.shard3.frames_sent" for
/// (3, "frames_sent"). The per-shard names are disjoint across shards, so
/// MergeShardSnapshots unions them while the canonical (unprefixed)
/// counters add up to partition-invariant totals.
std::string ShardMetricName(int shard, const std::string& name);

/// Merges per-shard snapshots in shard-id order (index order of `shards`).
/// Same fold as MetricsSnapshot::Merge — counters add, gauges combine by
/// mode, histogram buckets add — applied left to right so double-valued
/// gauges combine in a fixed order regardless of which worker thread
/// finished first.
MetricsSnapshot MergeShardSnapshots(const std::vector<MetricsSnapshot>& shards);

/// Per-run metrics store. Registration is explicit and duplicate names
/// are rejected (returns kInvalidMetricId) so two subsystems cannot
/// silently alias one metric; the rejection reason — which name, what it
/// was already registered as, what the clashing registration asked for,
/// including gauge-mode mismatches — is retained in last_error(). All
/// mutation paths are branch-and-store on a dense vector — no locks, no
/// hashing.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricId RegisterCounter(const std::string& name);
  MetricId RegisterGauge(const std::string& name,
                         GaugeMode mode = GaugeMode::kMax);
  MetricId RegisterHistogram(const std::string& name);

  void Add(MetricId counter, uint64_t delta = 1) {
    if (counter >= 0 && static_cast<size_t>(counter) < counters_.size()) {
      counters_[counter].value += delta;
    }
  }
  void Set(MetricId gauge, double value);
  void Observe(MetricId histogram, double value) {
    if (histogram >= 0 &&
        static_cast<size_t>(histogram) < histograms_.size()) {
      histograms_[histogram].hist.Add(value);
    }
  }

  /// Register-and-set conveniences for end-of-run publication of values
  /// already accumulated elsewhere (stats structs). Duplicate names are
  /// rejected like the plain registrations.
  void PublishCounter(const std::string& name, uint64_t value) {
    Add(RegisterCounter(name), value);
  }
  void PublishGauge(const std::string& name, double value,
                    GaugeMode mode = GaugeMode::kMax) {
    Set(RegisterGauge(name, mode), value);
  }

  size_t CounterCount() const { return counters_.size(); }
  size_t GaugeCount() const { return gauges_.size(); }
  size_t HistogramCount() const { return histograms_.size(); }

  /// Freezes the registry into a name-sorted snapshot.
  MetricsSnapshot Snapshot() const;

  /// Human-readable reason for the most recent rejected registration
  /// ("duplicate metric \"x\": registered as counter, re-registered as
  /// gauge(max)"); empty after a successful registration.
  const std::string& last_error() const { return last_error_; }

 private:
  struct NameEntry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    GaugeMode gauge_mode = GaugeMode::kMax;  ///< Meaningful for kGauge only.
  };

  bool ClaimName(const std::string& name, MetricKind kind, GaugeMode mode);

  std::vector<MetricsSnapshot::Counter> counters_;
  std::vector<MetricsSnapshot::Gauge> gauges_;
  std::vector<MetricsSnapshot::Histogram> histograms_;
  std::vector<NameEntry> names_;  ///< Sorted; one namespace, all kinds.
  std::string last_error_;
};

}  // namespace diknn

#endif  // DIKNN_OBS_METRICS_REGISTRY_H_
