// Windowed time-series rollups for the flight recorder.
//
// A TimeSeries is a bounded ring of (sim-time, value) samples taken on a
// fixed cadence; when the ring fills, the oldest samples fall off (flight-
// recorder semantics: the tail of the run is always retained). A
// TimeSeriesSet groups the series of one run plus point annotations
// (fault kill/revive edges and similar one-off events).
//
// Determinism contract: a series is either *deterministic* — every sample
// derives from sim-time cadence and integer counter deltas, so the
// exported bytes are identical at any --jobs / --shards setting — or
// *diagnostic* (wall-clock shares, per-shard occupancy), which follows
// the busy_s precedent: useful for load-balance work, excluded from every
// bit-identity comparison. Exports keep the two classes in separate JSON
// sections ("series" vs "diagnostics") so the deterministic section can
// be byte-compared across configurations. Numbers are formatted with the
// same %.17g convention as MetricsSnapshot::ToJson.

#ifndef DIKNN_OBS_TIMESERIES_H_
#define DIKNN_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

namespace diknn {

/// Sampling cadence and ring capacity of a flight recording. interval <= 0
/// disables recording entirely (the disabled path is a null check).
struct TimeSeriesOptions {
  double interval = 0.0;  ///< Sim-seconds between samples.
  size_t capacity = 0;    ///< Ring depth per series; 0 = kDefaultCapacity.

  static constexpr size_t kDefaultCapacity = 512;

  bool enabled() const { return interval > 0.0; }
  size_t EffectiveCapacity() const {
    return capacity > 0 ? capacity : kDefaultCapacity;
  }
};

/// One named series: a bounded ring of (t, value) samples in append order.
class TimeSeries {
 public:
  TimeSeries(std::string name, size_t capacity, bool diagnostic)
      : name_(std::move(name)),
        capacity_(capacity > 0 ? capacity : 1),
        diagnostic_(diagnostic) {}

  const std::string& name() const { return name_; }
  bool diagnostic() const { return diagnostic_; }
  size_t capacity() const { return capacity_; }

  /// Appends one sample; drops the oldest when the ring is full.
  void Append(double t, double value);

  /// Retained samples (<= capacity).
  size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  /// Samples dropped off the front of the ring.
  uint64_t dropped() const { return dropped_; }

  /// i-th retained sample in chronological order (0 = oldest).
  double TimeAt(size_t i) const { return times_[Index(i)]; }
  double ValueAt(size_t i) const { return values_[Index(i)]; }

  double Last() const { return empty() ? 0.0 : ValueAt(size() - 1); }
  double Min() const;
  double Max() const;
  double Mean() const;

 private:
  size_t Index(size_t i) const { return (head_ + i) % times_.size(); }

  std::string name_;
  size_t capacity_;
  bool diagnostic_;
  // Ring storage: head_ points at the oldest sample once wrapped.
  std::vector<double> times_;
  std::vector<double> values_;
  size_t head_ = 0;
  uint64_t dropped_ = 0;
};

/// A point event on the shared timeline (e.g. a fault kill edge).
struct TimeSeriesAnnotation {
  double t = 0.0;
  std::string label;
  double value = 0.0;
};

/// The series and annotations of one run's flight recording.
class TimeSeriesSet {
 public:
  TimeSeriesSet() = default;
  explicit TimeSeriesSet(TimeSeriesOptions options) : options_(options) {}

  const TimeSeriesOptions& options() const { return options_; }

  /// Creates (or returns the existing) series of that name. A series is
  /// keyed by name alone; the diagnostic flag is fixed at creation. The
  /// returned pointer stays valid across further Add calls (deque
  /// storage), so probes can hold it for the whole run.
  TimeSeries* Add(const std::string& name, bool diagnostic = false);
  /// Existing series by name, nullptr when absent.
  const TimeSeries* Find(const std::string& name) const;

  void Annotate(double t, std::string label, double value = 0.0);

  const std::deque<TimeSeries>& series() const { return series_; }
  const std::vector<TimeSeriesAnnotation>& annotations() const {
    return annotations_;
  }
  bool empty() const { return series_.empty() && annotations_.empty(); }

  /// Deterministic JSON of the non-diagnostic series + annotations only —
  /// the byte-comparable section, name-sorted. This is the string the
  /// determinism tests and check_all.sh compare across --jobs / --shards.
  std::string DeterministicJson() const;

  /// Full artifact: {"interval_s": ..., "capacity": ..., "series": {...},
  /// "diagnostics": {...}, "annotations": [...]}. The "series" object is
  /// exactly DeterministicJson()'s series payload.
  void WriteJson(std::ostream& os) const;

  /// One row per sample: series,diagnostic,t,value (names CSV-escaped),
  /// then one row per annotation ("annotation" in the diagnostic column,
  /// the label in the series column).
  void WriteCsv(std::ostream& os) const;

 private:
  TimeSeriesOptions options_;
  /// Creation order; export sorts. Deque: Add() must not invalidate the
  /// TimeSeries pointers probes captured earlier.
  std::deque<TimeSeries> series_;
  std::vector<TimeSeriesAnnotation> annotations_;
};

/// RFC-4180 field escaping: quotes the field when it contains a comma,
/// quote, or newline (embedded quotes double). Exposed for tests.
std::string CsvEscape(const std::string& field);

/// JSON string escaping for series names / annotation labels.
std::string JsonEscape(const std::string& s);

}  // namespace diknn

#endif  // DIKNN_OBS_TIMESERIES_H_
