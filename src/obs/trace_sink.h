// Trace export: Chrome trace-event JSON (Perfetto / chrome://tracing),
// per-query critical-path summaries, and CSV for plotting.
//
// Chrome trace mapping: each traced query is one "process" (pid =
// trace id) so Perfetto shows it as its own track group; within a query,
// tid 0 carries the sink-side spans (root / queue / route) and tid s+1
// carries sector s, so each sector's hop and collection slices nest on
// their own row. Point events are emitted as instant events on the same
// rows. The top-level object also carries a "criticalPaths" array
// (Perfetto ignores unknown keys) sorted slowest-first.
//
// When a flight recording is attached (set_timeseries), every series is
// exported as a Perfetto counter track (ph "C"): run-level series share
// one synthetic process ("timeseries", pid 1000000, far above any trace
// id) and each psim shard's diagnostics get their own process row
// ("timeseries shard K", pid 1000001+K), so shard health plots next to
// the query slices on the same timeline.

#ifndef DIKNN_OBS_TRACE_SINK_H_
#define DIKNN_OBS_TRACE_SINK_H_

#include <ostream>
#include <string>
#include <vector>

#include "obs/timeseries.h"
#include "obs/tracer.h"

namespace diknn {

/// Phase attribution of one query's end-to-end latency. All figures in
/// seconds; phases overlap-free along the query's critical chain: the
/// admission queue, the bootstrap route, then — within the critical
/// (last-reporting) sector — collection windows, itinerary forwarding
/// (sector time not inside a hop), and the reply route; `sink_wait` is
/// whatever remains before completion (e.g. waiting on other sectors'
/// timeouts).
struct CriticalPath {
  TraceId trace_id = 0;
  double total = 0.0;
  double queue = 0.0;
  double route = 0.0;
  double collection = 0.0;
  double forwarding = 0.0;
  double reply_route = 0.0;
  double sink_wait = 0.0;
  int32_t critical_sector = -1;  ///< -1: no sector reported back.
  int hops = 0;                  ///< Q-node visits in the critical sector.

  /// Name of the largest phase ("collection", "forwarding", ...).
  const char* DominantPhase() const;
};

class TraceSink {
 public:
  explicit TraceSink(TraceData data);

  /// Attaches a flight recording (not owned; may be null) so
  /// WriteChromeTrace emits its series as Perfetto counter tracks. Must
  /// outlive the sink's export calls.
  void set_timeseries(const TimeSeriesSet* ts) { timeseries_ = ts; }

  /// Chrome trace-event JSON; loadable by Perfetto and chrome://tracing.
  void WriteChromeTrace(std::ostream& os) const;

  /// One row per span: trace,span,parent,kind,sector,node,start,end.
  void WriteCsv(std::ostream& os) const;

  /// Per-query phase attribution, sorted slowest-first.
  const std::vector<CriticalPath>& critical_paths() const { return paths_; }

  /// The slowest `fraction` of queries (e.g. 0.01 for the p99 tail);
  /// always at least one entry when any query completed.
  std::vector<CriticalPath> TailCriticalPaths(double fraction) const;

  /// One-line human-readable report.
  static std::string FormatCriticalPath(const CriticalPath& path);

  const TraceData& data() const { return data_; }

 private:
  void ComputeCriticalPaths();

  TraceData data_;
  std::vector<CriticalPath> paths_;
  const TimeSeriesSet* timeseries_ = nullptr;
};

}  // namespace diknn

#endif  // DIKNN_OBS_TRACE_SINK_H_
