#include "obs/tracer.h"

#include <algorithm>

#include "core/alloc_probe.h"

namespace diknn {

namespace {

// splitmix64 finalizer: uniform enough for a sampling threshold test and
// fully deterministic from (counter, seed).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQuery: return "query";
    case SpanKind::kQueue: return "queue";
    case SpanKind::kRoute: return "route";
    case SpanKind::kSector: return "sector";
    case SpanKind::kHop: return "hop";
    case SpanKind::kCollection: return "collection";
    case SpanKind::kReplyRoute: return "reply-route";
  }
  return "?";
}

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kReply: return "reply";
    case TraceEventKind::kRendezvous: return "rendezvous";
    case TraceEventKind::kBoundaryExtended: return "boundary-extended";
    case TraceEventKind::kBoundaryTruncated: return "boundary-truncated";
    case TraceEventKind::kAssuranceExpanded: return "assurance-expanded";
    case TraceEventKind::kVoidSkip: return "void-skip";
    case TraceEventKind::kDeadNodeDrop: return "dead-node-drop";
    case TraceEventKind::kRetry: return "retry";
    case TraceEventKind::kReroute: return "reroute";
    case TraceEventKind::kPerimeterEnter: return "perimeter-enter";
    case TraceEventKind::kCollision: return "collision";
    case TraceEventKind::kFrameLost: return "frame-lost";
    case TraceEventKind::kMacRetry: return "mac-retry";
    case TraceEventKind::kCsmaFailure: return "csma-failure";
    case TraceEventKind::kFaultDrop: return "fault-drop";
    case TraceEventKind::kFaultDuplicate: return "fault-duplicate";
    case TraceEventKind::kTimeout: return "timeout";
    case TraceEventKind::kDeadlineMissed: return "deadline-missed";
    case TraceEventKind::kCacheHit: return "cache-hit";
    case TraceEventKind::kCoalesced: return "coalesced";
    case TraceEventKind::kFanOut: return "fan-out";
    case TraceEventKind::kShed: return "shed";
  }
  return "?";
}

Tracer::Tracer(double sample_rate, uint64_t seed)
    : sample_rate_(std::clamp(sample_rate, 0.0, 1.0)), seed_(seed) {
  if (sample_rate_ >= 1.0) {
    sample_threshold_ = ~0ULL;
  } else {
    sample_threshold_ = static_cast<uint64_t>(
        sample_rate_ * 18446744073709551616.0 /* 2^64 */);
  }
}

TraceContext Tracer::StartQuery(SimTime now) {
  ++stats_.queries_seen;
  const uint64_t counter = arrivals_++;
  const bool sampled =
      sample_rate_ >= 1.0 ||
      (sample_rate_ > 0.0 && Mix64(counter ^ seed_) < sample_threshold_);
  if (!sampled) return TraceContext{};

  // Span storage is observability overhead, not protocol work: suspend
  // attribution so traced runs publish the same subsystem counters as
  // untraced ones (obs_noop_test).
  AllocScopePause pause;
  ++stats_.queries_sampled;
  const TraceId trace = next_trace_id_++;
  Span root;
  root.trace_id = trace;
  root.id = static_cast<SpanId>(spans_.size() + 1);
  root.kind = SpanKind::kQuery;
  root.start = now;
  spans_.push_back(root);
  open_[trace].push_back(root.id);
  ++stats_.spans;
  return TraceContext{trace, root.id};
}

SpanId Tracer::BeginSpan(const TraceContext& parent, SpanKind kind,
                         SimTime now, int32_t sector, int32_t node) {
  if (!parent.sampled()) return 0;
  AllocScopePause pause;
  Span span;
  span.trace_id = parent.trace_id;
  span.id = static_cast<SpanId>(spans_.size() + 1);
  span.parent = parent.span_id;
  span.kind = kind;
  span.sector = sector;
  span.node = node;
  span.start = now;
  spans_.push_back(span);
  open_[parent.trace_id].push_back(span.id);
  ++stats_.spans;
  return span.id;
}

void Tracer::EndSpan(TraceId trace, SpanId span, SimTime now) {
  if (trace == 0 || span == 0 || span > spans_.size()) return;
  AllocScopePause pause;
  Span& s = spans_[span - 1];
  if (s.trace_id != trace || s.closed()) return;
  s.end = std::max(now, s.start);
  auto it = open_.find(trace);
  if (it != open_.end()) {
    auto& ids = it->second;
    auto pos = std::find(ids.begin(), ids.end(), span);
    if (pos != ids.end()) {
      *pos = ids.back();
      ids.pop_back();
    }
    if (ids.empty()) open_.erase(it);
  }
}

void Tracer::AddEvent(const TraceContext& ctx, TraceEventKind kind,
                      SimTime now, int32_t node, double value) {
  if (!ctx.sampled()) return;
  AllocScopePause pause;
  SpanEvent ev;
  ev.trace_id = ctx.trace_id;
  ev.span_id = ctx.span_id;
  ev.kind = kind;
  ev.time = now;
  ev.node = node;
  ev.value = value;
  events_.push_back(ev);
  ++stats_.events;
}

void Tracer::CloseTrace(TraceId trace, SimTime now) {
  if (trace == 0) return;
  AllocScopePause pause;
  auto it = open_.find(trace);
  if (it == open_.end()) return;
  for (const SpanId id : it->second) {
    Span& s = spans_[id - 1];
    if (!s.closed()) s.end = std::max(now, s.start);
  }
  open_.erase(it);
}

SpanId Tracer::ParentOf(TraceId trace, SpanId span) const {
  const Span* s = FindSpan(span);
  return (s != nullptr && s->trace_id == trace) ? s->parent : 0;
}

TraceData Tracer::Snapshot() const {
  TraceData data;
  data.sample_rate = sample_rate_;
  data.stats = stats_;
  data.spans = spans_;
  data.events = events_;
  return data;
}

}  // namespace diknn
