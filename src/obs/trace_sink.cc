#include "obs/trace_sink.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>

namespace diknn {

namespace {

// Fixed-precision number formatting keeps the JSON deterministic.
std::string Num(double v, const char* fmt = "%.3f") {
  char buf[40];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return std::string(buf);
}

double Duration(const Span& s) { return s.closed() ? s.end - s.start : 0.0; }

// Chrome trace "thread" row of a span within its query's track group.
int TidOf(const Span& s) { return s.sector >= 0 ? s.sector + 1 : 0; }

// Counter tracks live far above any query pid so the synthetic
// "timeseries" processes never collide with a trace id.
constexpr int64_t kCounterPidBase = 1000000;

// psim.shardK.* series get their own process row (pid base+1+K); every
// other series shares the run-level row (pid base).
int64_t CounterPidOf(const std::string& series_name) {
  constexpr const char* kPrefix = "psim.shard";
  const size_t plen = std::char_traits<char>::length(kPrefix);
  if (series_name.compare(0, plen, kPrefix) != 0) return kCounterPidBase;
  size_t i = plen;
  int64_t shard = 0;
  bool any = false;
  while (i < series_name.size() && series_name[i] >= '0' &&
         series_name[i] <= '9') {
    shard = shard * 10 + (series_name[i] - '0');
    any = true;
    ++i;
  }
  if (!any || i >= series_name.size() || series_name[i] != '.') {
    return kCounterPidBase;
  }
  return kCounterPidBase + 1 + shard;
}

}  // namespace

const char* CriticalPath::DominantPhase() const {
  const char* name = "queue";
  double best = queue;
  const auto consider = [&](double v, const char* n) {
    if (v > best) {
      best = v;
      name = n;
    }
  };
  consider(route, "route");
  consider(collection, "collection");
  consider(forwarding, "forwarding");
  consider(reply_route, "reply-route");
  consider(sink_wait, "sink-wait");
  return name;
}

TraceSink::TraceSink(TraceData data) : data_(std::move(data)) {
  ComputeCriticalPaths();
}

void TraceSink::ComputeCriticalPaths() {
  // Group span indices by trace; span vectors are append-only so children
  // always follow parents.
  std::map<TraceId, std::vector<const Span*>> by_trace;
  for (const Span& s : data_.spans) by_trace[s.trace_id].push_back(&s);

  for (const auto& [trace_id, spans] : by_trace) {
    const Span* root = nullptr;
    for (const Span* s : spans) {
      if (s->kind == SpanKind::kQuery && s->parent == 0) {
        root = s;
        break;
      }
    }
    if (root == nullptr || !root->closed()) continue;

    CriticalPath path;
    path.trace_id = trace_id;
    path.total = Duration(*root);
    const Span* critical_sector = nullptr;
    for (const Span* s : spans) {
      switch (s->kind) {
        case SpanKind::kQueue: path.queue += Duration(*s); break;
        case SpanKind::kRoute: path.route += Duration(*s); break;
        case SpanKind::kSector:
          if (s->closed() && (critical_sector == nullptr ||
                              s->end > critical_sector->end)) {
            critical_sector = s;
          }
          break;
        default: break;
      }
    }
    if (critical_sector != nullptr) {
      path.critical_sector = critical_sector->sector;
      // The critical sector's subtree: hops (and their collections) plus
      // the reply route. Membership is by sector index, which the
      // instrumentation stamps on every span below the sector span.
      double hop_total = 0.0;
      double reply = 0.0;
      for (const Span* s : spans) {
        if (s->sector != critical_sector->sector) continue;
        switch (s->kind) {
          case SpanKind::kHop:
            hop_total += Duration(*s);
            ++path.hops;
            break;
          case SpanKind::kCollection: path.collection += Duration(*s); break;
          case SpanKind::kReplyRoute: reply += Duration(*s); break;
          default: break;
        }
      }
      const double sector_dur = Duration(*critical_sector);
      path.reply_route = reply;
      path.forwarding = std::max(0.0, sector_dur - hop_total - reply);
      path.sink_wait = std::max(
          0.0, path.total - path.queue - path.route - sector_dur);
    } else {
      path.sink_wait =
          std::max(0.0, path.total - path.queue - path.route);
    }
    paths_.push_back(path);
  }

  std::sort(paths_.begin(), paths_.end(),
            [](const CriticalPath& a, const CriticalPath& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.trace_id < b.trace_id;
            });
}

std::vector<CriticalPath> TraceSink::TailCriticalPaths(
    double fraction) const {
  if (paths_.empty()) return {};
  const size_t n = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(fraction * paths_.size())));
  return std::vector<CriticalPath>(paths_.begin(),
                                   paths_.begin() + std::min(n, paths_.size()));
}

std::string TraceSink::FormatCriticalPath(const CriticalPath& p) {
  std::string out = "query " + std::to_string(p.trace_id) + ": total " +
                    Num(p.total) + "s, dominant " + p.DominantPhase() +
                    "; queue " + Num(p.queue) + "s route " + Num(p.route) +
                    "s collection " + Num(p.collection) + "s forwarding " +
                    Num(p.forwarding) + "s reply " + Num(p.reply_route) +
                    "s sink-wait " + Num(p.sink_wait) + "s";
  if (p.critical_sector >= 0) {
    out += " (sector " + std::to_string(p.critical_sector) + ", " +
           std::to_string(p.hops) + " hops)";
  }
  return out;
}

void TraceSink::WriteChromeTrace(std::ostream& os) const {
  os << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;
  const auto sep = [&]() {
    os << (first ? "\n" : ",\n");
    first = false;
  };

  // Track naming: one "process" per query, one "thread" per sector.
  std::set<TraceId> traces;
  std::set<std::pair<TraceId, int>> tids;
  for (const Span& s : data_.spans) {
    traces.insert(s.trace_id);
    tids.insert({s.trace_id, TidOf(s)});
  }
  for (const TraceId t : traces) {
    sep();
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << t
       << ", \"tid\": 0, \"args\": {\"name\": \"query " << t << "\"}}";
  }
  for (const auto& [t, tid] : tids) {
    sep();
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << t
       << ", \"tid\": " << tid << ", \"args\": {\"name\": \""
       << (tid == 0 ? std::string("sink") :
                      "sector " + std::to_string(tid - 1))
       << "\"}}";
  }

  // Complete ("X") slices; ts/dur in microseconds. Spans are emitted in
  // creation order so parents precede their children at equal timestamps.
  for (const Span& s : data_.spans) {
    if (!s.closed()) continue;
    sep();
    os << "{\"name\": \"" << SpanKindName(s.kind) << "\", \"cat\": \"span\""
       << ", \"ph\": \"X\", \"ts\": " << Num(s.start * 1e6)
       << ", \"dur\": " << Num((s.end - s.start) * 1e6)
       << ", \"pid\": " << s.trace_id << ", \"tid\": " << TidOf(s)
       << ", \"args\": {\"span\": " << s.id << ", \"parent\": " << s.parent
       << ", \"node\": " << s.node << "}}";
  }

  // Instant events on the row of the span they belong to.
  for (const SpanEvent& e : data_.events) {
    int tid = 0;
    if (e.span_id != 0 && e.span_id <= data_.spans.size()) {
      tid = TidOf(data_.spans[e.span_id - 1]);
    }
    sep();
    os << "{\"name\": \"" << TraceEventKindName(e.kind)
       << "\", \"cat\": \"event\", \"ph\": \"i\", \"s\": \"t\", \"ts\": "
       << Num(e.time * 1e6) << ", \"pid\": " << e.trace_id
       << ", \"tid\": " << tid << ", \"args\": {\"node\": " << e.node
       << ", \"value\": " << Num(e.value, "%.6g") << "}}";
  }
  // Flight-recorder counter tracks: one ph "C" track per series, plus
  // instant annotations (fault edges) on the run-level row.
  if (timeseries_ != nullptr && !timeseries_->empty()) {
    std::set<int64_t> counter_pids;
    for (const TimeSeries& ts : timeseries_->series()) {
      counter_pids.insert(CounterPidOf(ts.name()));
    }
    if (!timeseries_->annotations().empty()) {
      counter_pids.insert(kCounterPidBase);
    }
    for (const int64_t pid : counter_pids) {
      sep();
      os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
         << ", \"tid\": 0, \"args\": {\"name\": \"timeseries";
      if (pid != kCounterPidBase) {
        os << " shard " << (pid - kCounterPidBase - 1);
      }
      os << "\"}}";
    }
    for (const TimeSeries& ts : timeseries_->series()) {
      const int64_t pid = CounterPidOf(ts.name());
      const std::string name = JsonEscape(ts.name());
      for (size_t i = 0; i < ts.size(); ++i) {
        sep();
        os << "{\"name\": \"" << name << "\", \"cat\": \"timeseries\""
           << ", \"ph\": \"C\", \"ts\": " << Num(ts.TimeAt(i) * 1e6)
           << ", \"pid\": " << pid << ", \"tid\": 0, \"args\": {\"value\": "
           << Num(ts.ValueAt(i), "%.6g") << "}}";
      }
    }
    for (const TimeSeriesAnnotation& a : timeseries_->annotations()) {
      sep();
      os << "{\"name\": \"" << JsonEscape(a.label)
         << "\", \"cat\": \"annotation\", \"ph\": \"i\", \"s\": \"p\""
         << ", \"ts\": " << Num(a.t * 1e6) << ", \"pid\": "
         << kCounterPidBase << ", \"tid\": 0, \"args\": {\"value\": "
         << Num(a.value, "%.6g") << "}}";
    }
  }
  os << "\n],\n\"criticalPaths\": [";
  for (size_t i = 0; i < paths_.size(); ++i) {
    const CriticalPath& p = paths_[i];
    os << (i > 0 ? ",\n" : "\n") << "{\"query\": " << p.trace_id
       << ", \"total_s\": " << Num(p.total, "%.6f") << ", \"dominant\": \""
       << p.DominantPhase() << "\", \"queue_s\": " << Num(p.queue, "%.6f")
       << ", \"route_s\": " << Num(p.route, "%.6f")
       << ", \"collection_s\": " << Num(p.collection, "%.6f")
       << ", \"forwarding_s\": " << Num(p.forwarding, "%.6f")
       << ", \"reply_route_s\": " << Num(p.reply_route, "%.6f")
       << ", \"sink_wait_s\": " << Num(p.sink_wait, "%.6f")
       << ", \"critical_sector\": " << p.critical_sector
       << ", \"hops\": " << p.hops << "}";
  }
  os << "\n]}\n";
}

void TraceSink::WriteCsv(std::ostream& os) const {
  os << "trace,span,parent,kind,sector,node,start,end\n";
  for (const Span& s : data_.spans) {
    os << s.trace_id << ',' << s.id << ',' << s.parent << ','
       << SpanKindName(s.kind) << ',' << s.sector << ',' << s.node << ','
       << Num(s.start, "%.6f") << ',' << Num(s.end, "%.6f") << '\n';
  }
}

}  // namespace diknn
