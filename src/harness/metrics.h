// Metric definitions and aggregation for the experiment harness.
//
// The paper's three metrics (Section 5.1):
//   Query latency  — seconds from issue to result receipt at the sink.
//   Energy         — Joules consumed in a simulation run (we report the
//                    query + index-maintenance categories; the periodic
//                    beacon cost is identical across schemes and reported
//                    separately).
//   Query accuracy — fraction of the true KNN returned; "pre-accuracy"
//                    scores against the true KNN at issue time,
//                    "post-accuracy" against the true KNN at receipt time.

#ifndef DIKNN_HARNESS_METRICS_H_
#define DIKNN_HARNESS_METRICS_H_

#include <cmath>
#include <string>
#include <vector>

#include "net/packet.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "workload/latency_histogram.h"

namespace diknn {

/// Outcome of a single query.
struct QueryRecord {
  uint64_t query_id = 0;
  double latency = 0.0;
  double pre_accuracy = 0.0;
  double post_accuracy = 0.0;
  bool timed_out = false;
};

/// Accuracy of a returned id set against the ground truth: the fraction
/// of true KNNs present in `returned`.
double Accuracy(const std::vector<NodeId>& returned,
                const std::vector<NodeId>& truth);

/// Scheduler-engine counters of one run (from Simulator::engine_stats()):
/// event churn, wheel-vs-overflow split, callback storage split, and the
/// run's peak scheduler footprint. Diagnostics only — excluded from the
/// bit-identity contract because they naturally differ across engine
/// kinds (bench_engine reports them per engine).
struct EngineRunCounters {
  uint64_t events_pushed = 0;
  uint64_t events_fired = 0;
  uint64_t events_cancelled = 0;
  uint64_t wheel_scheduled = 0;     ///< Pushes inside the wheel horizon.
  uint64_t overflow_scheduled = 0;  ///< Pushes parked in the overflow heap.
  uint64_t inline_callbacks = 0;    ///< Callbacks stored without allocation.
  uint64_t heap_callbacks = 0;
  uint64_t peak_live = 0;           ///< Peak live (pending) events.
  uint64_t peak_resident = 0;       ///< Peak resident entries (live + not-
                                    ///< yet-reclaimed cancelled).
  uint64_t peak_pool_slots = 0;     ///< Slab pool high-water mark.

  /// Fraction of pushes served by the wheel tier (0 when none).
  double WheelFraction() const {
    const uint64_t total = wheel_scheduled + overflow_scheduled;
    return total > 0 ? static_cast<double>(wheel_scheduled) / total : 0.0;
  }
};

/// Aggregated outcome of one simulation run.
struct RunMetrics {
  int queries = 0;
  int timeouts = 0;
  double avg_latency = 0.0;
  double p50_latency = 0.0;  ///< Median latency across the run's queries.
  double p95_latency = 0.0;  ///< Tail latency across the run's queries.
  double p99_latency = 0.0;  ///< Far-tail latency across the run's queries.
  double avg_pre_accuracy = 0.0;
  double avg_post_accuracy = 0.0;
  double energy_joules = 0.0;        ///< Query + maintenance energy.
  double beacon_energy_joules = 0.0; ///< Common beaconing cost.
  double average_degree = 0.0;       ///< Measured mean neighbor count.
  // Fault-injection / lifecycle-audit counters (zero on clean runs).
  uint64_t faults_injected = 0;      ///< Faults applied by the FaultPlan.
  uint64_t lifecycle_checks = 0;     ///< Query completions audited.
  uint64_t lifecycle_violations = 0; ///< Completions that left residue.
  uint64_t leaked_entries = 0;       ///< Per-query entries alive post-drain.
  /// Intra-run sharding of this run: what the config asked for and what
  /// the partition geometry granted (the field may be too small for the
  /// requested tile count). Both 1 on serial runs.
  int shards_requested = 1;
  int shards_effective = 1;
  /// SLO scorecard of the run's workload. Populated only when the run was
  /// driven by a WorkloadSpec (ExperimentConfig::workload); empty (issued
  /// == 0) on paper-style runs.
  SloReport slo;
  /// Scheduler counters for the run.
  EngineRunCounters engine;
  /// Named observability metrics published at the end of the run
  /// (channel / MAC / GPSR / protocol / engine / tracer counters plus the
  /// query-latency histogram). Merged across runs in seed order, so the
  /// aggregate is bit-identical at any jobs count.
  MetricsSnapshot obs;
  /// Flight recording of the run (empty unless a timeseries cadence was
  /// configured). Deterministic series are bit-identical across --jobs
  /// and --shards; diagnostic series follow the busy_s precedent.
  TimeSeriesSet ts;
};

/// Mean/stddev summary of a sample.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  int count = 0;
};

/// Computes a Summary over `values` (all zeros when empty).
Summary Summarize(const std::vector<double>& values);

/// The p-th percentile (0 <= p <= 100) by linear interpolation between
/// order statistics; 0 when `values` is empty.
double Percentile(std::vector<double> values, double p);

/// Several percentiles from one sample, sorting it exactly once (the
/// single-p overload copies and sorts per call — fine for one quantile,
/// quadratic waste when a report wants p50/p95/p99/... of the same data).
/// Returns one value per entry of `ps`, in order; all zeros when empty.
std::vector<double> Percentiles(std::vector<double> values,
                                const std::vector<double>& ps);

/// RunMetrics averaged across repeated runs, with per-metric summaries.
struct ExperimentMetrics {
  Summary latency;
  Summary pre_accuracy;
  Summary post_accuracy;
  Summary energy;
  Summary timeout_rate;
  /// Per-run goodput (completed queries per second); zeros without a
  /// workload spec.
  Summary goodput;
  /// Merged SLO scorecard across runs (integer bucket counts, so the
  /// merge is bit-identical at any jobs setting).
  SloReport slo;
  /// Merged observability metrics across runs (seed order).
  MetricsSnapshot obs;
  /// The base seed's (runs[0]'s) flight recording. Time series are not
  /// merged across seeds — each run has its own timeline — so the
  /// aggregate carries the first run's recording verbatim, which keeps
  /// the exported artifact independent of --jobs.
  TimeSeriesSet ts;
  int runs = 0;
};

/// Aggregates per-run metrics into experiment-level summaries.
ExperimentMetrics AggregateRuns(const std::vector<RunMetrics>& runs);

}  // namespace diknn

#endif  // DIKNN_HARNESS_METRICS_H_
