// Packet trace recording — the analogue of the paper's modified ns-2
// trace format ("the trace format of ns-2 is modified so that the query
// execution can be visualized", Section 5.2).
//
// A TraceRecorder attaches to the Channel's transmit observer and records
// one entry per transmitted frame: time, sender, position, message type
// and size. Traces can be filtered, summarized per message type, and
// exported as CSV for external plotting.

#ifndef DIKNN_HARNESS_TRACE_H_
#define DIKNN_HARNESS_TRACE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "net/network.h"

namespace diknn {

/// One recorded transmission.
struct TraceEntry {
  SimTime time = 0;
  NodeId sender = kInvalidNodeId;
  Point position;
  MessageType type{};
  size_t bytes = 0;
  EnergyCategory category{};
};

/// Per-message-type aggregate of a trace.
struct TraceSummary {
  uint64_t frames = 0;
  uint64_t bytes = 0;
};

/// Records every frame the network transmits while attached.
class TraceRecorder {
 public:
  /// Attaches to `network`'s channel. Detaches in the destructor (or on
  /// Detach()). Any number of recorders (and the query Tracer) may be
  /// attached at once; each holds its own observer-list slot.
  explicit TraceRecorder(Network* network);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Stops recording (idempotent).
  void Detach();

  /// Discards recorded entries.
  void Clear() { entries_.clear(); }

  const std::vector<TraceEntry>& entries() const { return entries_; }

  /// Entries of one message type.
  std::vector<TraceEntry> Filter(MessageType type) const;

  /// Frame/byte totals per message type.
  std::map<MessageType, TraceSummary> Summarize() const;

  /// Writes "time,sender,x,y,type,bytes" CSV lines (with a header).
  void WriteCsv(std::ostream& os) const;

 private:
  Network* network_;
  Channel::ObserverId observer_id_ = 0;
  bool attached_ = false;
  std::vector<TraceEntry> entries_;
};

}  // namespace diknn

#endif  // DIKNN_HARNESS_TRACE_H_
