// Experiment runner: builds a network, installs a KNN protocol, drives the
// paper's query workload (Poisson arrivals from random sinks to random
// query points), scores every query against the ground-truth oracle, and
// aggregates the paper's three metrics over repeated seeded runs.

#ifndef DIKNN_HARNESS_EXPERIMENT_H_
#define DIKNN_HARNESS_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/centralized.h"
#include "baselines/flooding.h"
#include "baselines/kpt.h"
#include "baselines/peertree.h"
#include "faults/fault_plan.h"
#include "harness/metrics.h"
#include "knn/diknn.h"
#include "net/network.h"
#include "workload/workload_spec.h"

namespace diknn {

struct TraceData;

/// Protocol selector for experiments.
enum class ProtocolKind {
  kDiknn,
  kKptKnnb,
  kPeerTree,
  kFlooding,
  kCentralized,
};

const char* ProtocolName(ProtocolKind kind);

/// Full experiment configuration; defaults reproduce the paper's Section
/// 5.1 parameter table (200 nodes, 115x115 m^2, r = 20 m, 250 kbps,
/// mu_max = 10 m/s, beacon 0.5 s, query interval exp(4 s), S = 8,
/// m = 0.018 s, g = 0.1, rendezvous enabled, 100 s runs, 20 repetitions).
struct ExperimentConfig {
  NetworkConfig network;
  ProtocolKind protocol = ProtocolKind::kDiknn;
  int k = 40;
  /// Issue all queries from a stationary sink node (node 0), the usual
  /// WSN base-station reading of "the sink node s". When false, each
  /// query picks a random mobile node as its sink.
  bool static_sink = true;
  double query_interval_mean = 4.0;  ///< Exponential inter-arrival (s).
  SimTime duration = 100.0;          ///< Queries issued during [0, duration).
  SimTime warmup = 2.5;              ///< Beacon/registration warm-up.
  SimTime drain = 9.0;               ///< Post-duration settling time.
  int runs = 20;
  uint64_t base_seed = 42;
  /// Worker threads for RunExperiment's repetitions. Each (config, seed)
  /// run owns its whole stack (network, simulator, forked PCG32 streams),
  /// so runs execute in parallel without sharing; results are aggregated
  /// in seed order either way, making every metric bit-identical to a
  /// sequential execution regardless of this setting. Clamped to
  /// [1, runs]. Benches wire the DIKNN_JOBS env var here.
  int jobs = 1;
  /// Adverse events injected after warmup (times relative to the start of
  /// the measured workload). Each run replays the same plan with its own
  /// seed-derived RNG stream, so faulted runs stay bit-identical at any
  /// `jobs` count. Empty = clean run.
  FaultPlan faults;
  /// Install a LifecycleAuditor on the DIKNN instance: assert per-query
  /// state is reclaimed at every completion and count post-drain leaks
  /// into RunMetrics. No effect on other protocols.
  bool audit_lifecycle = false;
  /// When set, a QueryDriver replays this spec instead of the paper's
  /// one-at-a-time Poisson generator: concurrent queries, mixed classes,
  /// deadlines, admission control, and an SloReport in RunMetrics::slo.
  /// `query_interval_mean` and `k` are ignored in that case (the spec's
  /// arrival and k sections govern). See src/workload/workload_spec.h.
  std::optional<WorkloadSpec> workload;
  /// Worker threads *inside* one run: > 1 tiles the sensor field
  /// (column strips, or a rows x cols grid when the field is too narrow
  /// for that many strips) and runs the conservative parallel engine
  /// (src/psim) instead of the serial stack. --shards 1 (the default) is
  /// the serial engine, unchanged — it is the determinism anchor,
  /// exactly as kLegacyHeap anchors the timer wheel. Sharded runs
  /// simulate the beacon substrate plus — when `workload` is set — the
  /// full query plane (GPSR forwarding, DIKNN itineraries, the serving
  /// front end), reporting psim.* / qp.* / serving.* metrics and a
  /// populated SloReport; the SLO report and every partition-invariant
  /// traffic counter are byte-equal across shard counts
  /// (psim_determinism_test). Compose with `jobs` carefully: the total
  /// thread count is jobs x shards.
  int shards = 1;
  /// Run the windowed parallel engine even at shards == 1. This is the
  /// like-for-like baseline for cross-shard comparisons: the windowed
  /// engine emulates (not byte-replicates) the serial protocol stack, so
  /// its counters are comparable only within the windowed family.
  bool force_windowed = false;
  /// Fraction of queries traced by a per-run Tracer, in [0,1]. The
  /// effective rate is max(trace_sample, workload->trace_sample); 0 (the
  /// default) attaches no tracer at all, so the hot paths see only a null
  /// check. Tracing never perturbs the simulation — a traced run's
  /// metrics are bit-identical to an untraced one.
  double trace_sample = 0.0;
  /// Flight-recorder cadence (sim-seconds between samples). The effective
  /// cadence is this value when > 0, else workload->ts_interval; 0 (the
  /// default) records nothing and the hot paths see no recorder at all.
  /// Recording never perturbs the simulation either — see
  /// docs/OBSERVABILITY.md "Time series & flight recorder".
  double ts_interval = 0.0;
  /// Ring depth per series; 0 defers to workload->ts_capacity, then to
  /// TimeSeriesOptions::kDefaultCapacity.
  int ts_capacity = 0;
  DiknnParams diknn;
  KptParams kpt;
  PeerTreeParams peertree;
  FloodingParams flooding;
  CentralizedParams centralized;
};

/// One assembled protocol stack over one network, usable directly by
/// examples and tests that want to drive queries by hand.
class ProtocolStack {
 public:
  /// Builds the network (adding Peer-tree clusterhead infrastructure when
  /// needed), installs GPSR and the chosen protocol, and warms up.
  ProtocolStack(const ExperimentConfig& config, uint64_t seed);

  Network& network() { return *network_; }
  GpsrRouting& gpsr() { return *gpsr_; }
  KnnProtocol& protocol() { return *protocol_; }

  /// The DIKNN instance, if this stack runs DIKNN (else nullptr).
  Diknn* diknn() { return diknn_; }
  KptKnnb* kpt() { return kpt_; }
  PeerTree* peertree() { return peertree_; }
  Flooding* flooding() { return flooding_; }
  CentralizedIndex* centralized() { return centralized_; }

 private:
  std::unique_ptr<Network> network_;
  std::unique_ptr<GpsrRouting> gpsr_;
  std::unique_ptr<KnnProtocol> protocol_;
  Diknn* diknn_ = nullptr;
  KptKnnb* kpt_ = nullptr;
  PeerTree* peertree_ = nullptr;
  Flooding* flooding_ = nullptr;
  CentralizedIndex* centralized_ = nullptr;
};

/// Runs one seeded simulation and returns its metrics. `records_out`, when
/// non-null, receives the per-query records. `trace_out`, when non-null
/// and the effective trace rate is positive, receives the run's recorded
/// trace (feed it to a TraceSink for Chrome-trace / critical-path export).
RunMetrics RunOnce(const ExperimentConfig& config, uint64_t seed,
                   std::vector<QueryRecord>* records_out = nullptr,
                   TraceData* trace_out = nullptr);

/// Runs `config.runs` seeded repetitions (seeds base_seed .. base_seed +
/// runs - 1) across `config.jobs` worker threads and returns the per-run
/// metrics in seed order.
std::vector<RunMetrics> RunExperimentRuns(const ExperimentConfig& config);

/// Runs `config.runs` seeded repetitions and aggregates.
ExperimentMetrics RunExperiment(const ExperimentConfig& config);

/// Formats one experiment row: "<label> lat=.. J=.. pre=.. post=..".
std::string FormatRow(const std::string& label,
                      const ExperimentMetrics& metrics);

}  // namespace diknn

#endif  // DIKNN_HARNESS_EXPERIMENT_H_
