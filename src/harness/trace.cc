#include "harness/trace.h"

namespace diknn {

TraceRecorder::TraceRecorder(Network* network) : network_(network) {
  observer_id_ = network_->channel().AddTransmitObserver(
      [this](const Packet& packet, NodeId sender, Point position) {
        TraceEntry entry;
        entry.time = network_->sim().Now();
        entry.sender = sender;
        entry.position = position;
        entry.type = packet.type;
        entry.bytes = packet.size_bytes;
        entry.category = packet.category;
        entries_.push_back(entry);
      });
  attached_ = true;
}

TraceRecorder::~TraceRecorder() { Detach(); }

void TraceRecorder::Detach() {
  if (!attached_) return;
  network_->channel().RemoveTransmitObserver(observer_id_);
  attached_ = false;
}

std::vector<TraceEntry> TraceRecorder::Filter(MessageType type) const {
  std::vector<TraceEntry> out;
  for (const TraceEntry& e : entries_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::map<MessageType, TraceSummary> TraceRecorder::Summarize() const {
  std::map<MessageType, TraceSummary> out;
  for (const TraceEntry& e : entries_) {
    TraceSummary& s = out[e.type];
    ++s.frames;
    s.bytes += e.bytes;
  }
  return out;
}

void TraceRecorder::WriteCsv(std::ostream& os) const {
  os << "time,sender,x,y,type,bytes\n";
  for (const TraceEntry& e : entries_) {
    os << e.time << ',' << e.sender << ',' << e.position.x << ','
       << e.position.y << ',' << MessageTypeName(e.type) << ',' << e.bytes
       << '\n';
  }
}

}  // namespace diknn
