#include "harness/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace diknn {

double Accuracy(const std::vector<NodeId>& returned,
                const std::vector<NodeId>& truth) {
  if (truth.empty()) return 1.0;
  std::unordered_set<NodeId> got(returned.begin(), returned.end());
  int hits = 0;
  for (NodeId id : truth) {
    if (got.contains(id)) ++hits;
  }
  return static_cast<double>(hits) / truth.size();
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = static_cast<int>(values.size());
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / values.size();
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / (values.size() - 1))
                 : 0.0;
  return s;
}

namespace {

/// Percentile of an already-sorted sample (linear interpolation between
/// order statistics).
double SortedPercentile(const std::vector<double>& sorted, double p) {
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * (sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - lo;
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return SortedPercentile(values, p);
}

std::vector<double> Percentiles(std::vector<double> values,
                                const std::vector<double>& ps) {
  if (values.empty()) return std::vector<double>(ps.size(), 0.0);
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(SortedPercentile(values, p));
  return out;
}

ExperimentMetrics AggregateRuns(const std::vector<RunMetrics>& runs) {
  ExperimentMetrics out;
  out.runs = static_cast<int>(runs.size());
  std::vector<double> lat, pre, post, energy, to_rate, goodput;
  for (const RunMetrics& r : runs) {
    lat.push_back(r.avg_latency);
    pre.push_back(r.avg_pre_accuracy);
    post.push_back(r.avg_post_accuracy);
    energy.push_back(r.energy_joules);
    to_rate.push_back(r.queries > 0
                          ? static_cast<double>(r.timeouts) / r.queries
                          : 0.0);
    goodput.push_back(r.slo.GoodputQps());
    out.slo.Merge(r.slo);
    out.obs.Merge(r.obs);
  }
  out.latency = Summarize(lat);
  out.pre_accuracy = Summarize(pre);
  out.post_accuracy = Summarize(post);
  out.energy = Summarize(energy);
  out.timeout_rate = Summarize(to_rate);
  out.goodput = Summarize(goodput);
  if (!runs.empty()) out.ts = runs.front().ts;
  return out;
}

}  // namespace diknn
