#include "harness/experiment.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <thread>

#include "faults/fault_injector.h"
#include "faults/lifecycle_auditor.h"
#include "workload/query_driver.h"

namespace diknn {

const char* ProtocolName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kDiknn:
      return "DIKNN";
    case ProtocolKind::kKptKnnb:
      return "KPT+KNNB";
    case ProtocolKind::kPeerTree:
      return "PeerTree";
    case ProtocolKind::kFlooding:
      return "Flooding";
    case ProtocolKind::kCentralized:
      return "Centralized";
  }
  return "?";
}

ProtocolStack::ProtocolStack(const ExperimentConfig& config, uint64_t seed) {
  NetworkConfig net_config = config.network;
  net_config.seed = seed;
  if (config.static_sink) {
    net_config.static_node_count =
        std::max(net_config.static_node_count, 1);
  }
  if (config.protocol == ProtocolKind::kPeerTree) {
    net_config.infrastructure_positions = PeerTree::ClusterheadPositions(
        net_config.field, config.peertree.grid_dim);
  }
  network_ = std::make_unique<Network>(net_config);
  gpsr_ = std::make_unique<GpsrRouting>(network_.get());
  gpsr_->Install();

  switch (config.protocol) {
    case ProtocolKind::kDiknn: {
      auto p = std::make_unique<Diknn>(network_.get(), gpsr_.get(),
                                       config.diknn);
      diknn_ = p.get();
      protocol_ = std::move(p);
      break;
    }
    case ProtocolKind::kKptKnnb: {
      auto p = std::make_unique<KptKnnb>(network_.get(), gpsr_.get(),
                                         config.kpt);
      kpt_ = p.get();
      protocol_ = std::move(p);
      break;
    }
    case ProtocolKind::kPeerTree: {
      auto p = std::make_unique<PeerTree>(network_.get(), gpsr_.get(),
                                          config.peertree);
      peertree_ = p.get();
      protocol_ = std::move(p);
      break;
    }
    case ProtocolKind::kFlooding: {
      auto p = std::make_unique<Flooding>(network_.get(), gpsr_.get(),
                                          config.flooding);
      flooding_ = p.get();
      protocol_ = std::move(p);
      break;
    }
    case ProtocolKind::kCentralized: {
      auto p = std::make_unique<CentralizedIndex>(
          network_.get(), gpsr_.get(), config.centralized);
      centralized_ = p.get();
      protocol_ = std::move(p);
      break;
    }
  }
  protocol_->Install();
}

namespace {

// Copies the simulator's scheduler counters into the run's metrics.
void FillEngineCounters(const Simulator& sim, RunMetrics* metrics) {
  const EngineStats& stats = sim.engine_stats();
  EngineRunCounters& out = metrics->engine;
  out.events_pushed = stats.events_pushed;
  out.events_fired = stats.events_fired;
  out.events_cancelled = stats.events_cancelled;
  out.wheel_scheduled = stats.wheel_scheduled;
  out.overflow_scheduled = stats.overflow_scheduled;
  out.inline_callbacks = stats.inline_callbacks;
  out.heap_callbacks = stats.heap_callbacks;
  out.peak_live = stats.peak_live;
  out.peak_resident = stats.peak_resident;
  out.peak_pool_slots = stats.peak_pool_slots;
}

}  // namespace

RunMetrics RunOnce(const ExperimentConfig& config, uint64_t seed,
                   std::vector<QueryRecord>* records_out) {
  ProtocolStack stack(config, seed);
  Network& net = stack.network();
  Simulator& sim = net.sim();
  KnnProtocol& protocol = stack.protocol();

  net.Warmup(config.warmup);

  // Arm faults only after warmup so the plan's times are relative to the
  // measured workload, and seed the injector from its own derived stream
  // so the channel / MAC / mobility draws match a clean run exactly.
  std::unique_ptr<FaultInjector> injector;
  if (!config.faults.empty()) {
    injector = std::make_unique<FaultInjector>(
        &net, config.faults, seed * 0x9e3779b97f4a7c15ULL + 101,
        config.static_sink ? 1 : 0);
    injector->Arm();
  }
  std::unique_ptr<LifecycleAuditor> auditor;
  if (config.audit_lifecycle && stack.diknn() != nullptr) {
    auditor =
        std::make_unique<LifecycleAuditor>(stack.diknn(), &stack.gpsr());
  }

  // Exclude warm-up traffic (registration floods, initial beacons) from
  // the energy accounting, matching a steady-state measurement.
  const double maintenance_baseline =
      net.TotalEnergy(EnergyCategory::kMaintenance);
  const double query_baseline = net.TotalEnergy(EnergyCategory::kQuery);
  const double beacon_baseline = net.TotalEnergy(EnergyCategory::kBeacon);

  RunMetrics metrics;

  // Workload-spec path: hand the run to the QueryDriver (concurrent
  // queries, mixed classes, deadlines, admission control) and score an
  // SloReport. Shares the paper path's derived seed so a knn-only spec
  // sees the same arrival stream the paper generator would.
  if (config.workload.has_value()) {
    QueryDriver driver(&net, &stack.gpsr(), &stack.protocol(),
                       *config.workload, seed * 0x9e3779b97f4a7c15ULL + 17,
                       config.static_sink ? 0 : kInvalidNodeId);
    metrics.slo = driver.Run(config.duration, config.drain);

    metrics.queries = static_cast<int>(metrics.slo.issued);
    metrics.timeouts = static_cast<int>(metrics.slo.timed_out);
    metrics.avg_latency = metrics.slo.latency.Mean();
    metrics.p50_latency = metrics.slo.p50();
    metrics.p95_latency = metrics.slo.p95();
    metrics.p99_latency = metrics.slo.p99();
    metrics.avg_pre_accuracy = driver.MeanPreAccuracy();
    metrics.avg_post_accuracy = driver.MeanPostAccuracy();
    metrics.energy_joules =
        (net.TotalEnergy(EnergyCategory::kQuery) - query_baseline) +
        (net.TotalEnergy(EnergyCategory::kMaintenance) -
         maintenance_baseline);
    metrics.beacon_energy_joules =
        net.TotalEnergy(EnergyCategory::kBeacon) - beacon_baseline;
    metrics.average_degree = net.AverageDegree();
    if (injector != nullptr) {
      metrics.faults_injected = injector->stats().Total();
    }
    if (auditor != nullptr) {
      metrics.lifecycle_checks = auditor->checks();
      metrics.lifecycle_violations = auditor->violations();
      metrics.leaked_entries = auditor->FinalResidue();
      if (!auditor->FlowStateBounded()) ++metrics.lifecycle_violations;
    }
    if (records_out != nullptr) {
      records_out->clear();
      for (const WorkloadQueryRecord& r : driver.records()) {
        QueryRecord rec;
        rec.query_id = r.id;
        rec.latency = r.latency;
        rec.timed_out = r.outcome == QueryOutcome::kTimedOut;
        rec.pre_accuracy = std::max(r.pre_accuracy, 0.0);
        rec.post_accuracy = std::max(r.post_accuracy, 0.0);
        records_out->push_back(rec);
      }
    }
    FillEngineCounters(sim, &metrics);
    return metrics;
  }

  Rng workload_rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  auto records = std::make_shared<std::vector<QueryRecord>>();

  // Query generator: Poisson arrivals from a random (mobile) sink to a
  // uniformly random query point. Each issue snapshots the ground truth
  // for pre-accuracy; the completion handler snapshots it again for
  // post-accuracy.
  const SimTime start = sim.Now();
  const SimTime deadline = start + config.duration;
  struct Generator {
    ExperimentConfig config;
    Network* net;
    KnnProtocol* protocol;
    std::shared_ptr<std::vector<QueryRecord>> records;
    Rng rng;
    SimTime deadline;

    void IssueNext() {
      Simulator& sim = net->sim();
      const SimTime next =
          sim.Now() + rng.Exponential(config.query_interval_mean);
      if (next >= deadline) return;
      sim.ScheduleAt(next, [this]() {
        const NodeId sink =
            config.static_sink
                ? 0
                : rng.UniformInt(0, config.network.node_count - 1);
        const Point q = rng.PointInRect(config.network.field);
        const auto truth_pre = net->TrueKnn(q, config.k);
        const SimTime issued = net->sim().Now();
        auto records_ref = records;
        Network* net_ref = net;
        const int k = config.k;
        protocol->IssueQuery(
            sink, q, k,
            [records_ref, net_ref, q, k, truth_pre,
             issued](const KnnResult& result) {
              QueryRecord rec;
              rec.query_id = result.query_id;
              rec.latency = result.Latency();
              rec.timed_out = result.timed_out;
              const auto returned = result.CandidateIds();
              rec.pre_accuracy = Accuracy(returned, truth_pre);
              rec.post_accuracy =
                  Accuracy(returned, net_ref->TrueKnn(q, k));
              records_ref->push_back(rec);
            });
        IssueNext();
      });
    }
  };
  auto generator = std::make_shared<Generator>(
      Generator{config, &net, &protocol, records, workload_rng, deadline});
  generator->IssueNext();

  sim.RunUntil(deadline + config.drain);

  metrics.queries = static_cast<int>(records->size());
  std::vector<double> lat, pre, post;
  for (const QueryRecord& r : *records) {
    if (r.timed_out) ++metrics.timeouts;
    lat.push_back(r.latency);
    pre.push_back(r.pre_accuracy);
    post.push_back(r.post_accuracy);
  }
  metrics.avg_latency = Summarize(lat).mean;
  const std::vector<double> tails = Percentiles(lat, {50.0, 95.0, 99.0});
  metrics.p50_latency = tails[0];
  metrics.p95_latency = tails[1];
  metrics.p99_latency = tails[2];
  metrics.avg_pre_accuracy = Summarize(pre).mean;
  metrics.avg_post_accuracy = Summarize(post).mean;
  metrics.energy_joules =
      (net.TotalEnergy(EnergyCategory::kQuery) - query_baseline) +
      (net.TotalEnergy(EnergyCategory::kMaintenance) - maintenance_baseline);
  metrics.beacon_energy_joules =
      net.TotalEnergy(EnergyCategory::kBeacon) - beacon_baseline;
  metrics.average_degree = net.AverageDegree();
  if (injector != nullptr) {
    metrics.faults_injected = injector->stats().Total();
  }
  if (auditor != nullptr) {
    metrics.lifecycle_checks = auditor->checks();
    metrics.lifecycle_violations = auditor->violations();
    metrics.leaked_entries = auditor->FinalResidue();
    if (!auditor->FlowStateBounded()) ++metrics.lifecycle_violations;
  }

  if (records_out != nullptr) *records_out = *records;
  FillEngineCounters(sim, &metrics);
  return metrics;
}

std::vector<RunMetrics> RunExperimentRuns(const ExperimentConfig& config) {
  const int runs = std::max(config.runs, 0);
  std::vector<RunMetrics> results(runs);
  const int jobs = std::clamp(config.jobs, 1, std::max(runs, 1));
  if (jobs == 1) {
    for (int i = 0; i < runs; ++i) {
      results[i] = RunOnce(config, config.base_seed + i);
    }
    return results;
  }
  // Repetitions are embarrassingly parallel: every run builds its own
  // simulator, network and RNG streams, and the only process-wide state
  // (the log level) is atomic. Workers pull run indices from a shared
  // counter and write into disjoint slots, so which thread executes
  // which seed never affects the output.
  std::atomic<int> next{0};
  auto worker = [&results, &config, runs, &next]() {
    for (int i = next.fetch_add(1); i < runs; i = next.fetch_add(1)) {
      results[i] = RunOnce(config, config.base_seed + i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

ExperimentMetrics RunExperiment(const ExperimentConfig& config) {
  return AggregateRuns(RunExperimentRuns(config));
}

std::string FormatRow(const std::string& label,
                      const ExperimentMetrics& metrics) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << label << "  latency=" << metrics.latency.mean << "s"
     << "  energy=" << metrics.energy.mean << "J"
     << "  pre_acc=" << metrics.pre_accuracy.mean
     << "  post_acc=" << metrics.post_accuracy.mean
     << "  timeout_rate=" << metrics.timeout_rate.mean;
  return os.str();
}

}  // namespace diknn
