#include "harness/experiment.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <thread>

#include "faults/fault_injector.h"
#include "faults/lifecycle_auditor.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "psim/engine.h"
#include "workload/query_driver.h"

namespace diknn {

const char* ProtocolName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kDiknn:
      return "DIKNN";
    case ProtocolKind::kKptKnnb:
      return "KPT+KNNB";
    case ProtocolKind::kPeerTree:
      return "PeerTree";
    case ProtocolKind::kFlooding:
      return "Flooding";
    case ProtocolKind::kCentralized:
      return "Centralized";
  }
  return "?";
}

ProtocolStack::ProtocolStack(const ExperimentConfig& config, uint64_t seed) {
  NetworkConfig net_config = config.network;
  net_config.seed = seed;
  if (config.static_sink) {
    net_config.static_node_count =
        std::max(net_config.static_node_count, 1);
  }
  if (config.protocol == ProtocolKind::kPeerTree) {
    net_config.infrastructure_positions = PeerTree::ClusterheadPositions(
        net_config.field, config.peertree.grid_dim);
  }
  network_ = std::make_unique<Network>(net_config);
  gpsr_ = std::make_unique<GpsrRouting>(network_.get());
  gpsr_->Install();

  switch (config.protocol) {
    case ProtocolKind::kDiknn: {
      auto p = std::make_unique<Diknn>(network_.get(), gpsr_.get(),
                                       config.diknn);
      diknn_ = p.get();
      protocol_ = std::move(p);
      break;
    }
    case ProtocolKind::kKptKnnb: {
      auto p = std::make_unique<KptKnnb>(network_.get(), gpsr_.get(),
                                         config.kpt);
      kpt_ = p.get();
      protocol_ = std::move(p);
      break;
    }
    case ProtocolKind::kPeerTree: {
      auto p = std::make_unique<PeerTree>(network_.get(), gpsr_.get(),
                                          config.peertree);
      peertree_ = p.get();
      protocol_ = std::move(p);
      break;
    }
    case ProtocolKind::kFlooding: {
      auto p = std::make_unique<Flooding>(network_.get(), gpsr_.get(),
                                          config.flooding);
      flooding_ = p.get();
      protocol_ = std::move(p);
      break;
    }
    case ProtocolKind::kCentralized: {
      auto p = std::make_unique<CentralizedIndex>(
          network_.get(), gpsr_.get(), config.centralized);
      centralized_ = p.get();
      protocol_ = std::move(p);
      break;
    }
  }
  protocol_->Install();
}

namespace {

// Copies the simulator's scheduler counters into the run's metrics.
void FillEngineCounters(const Simulator& sim, RunMetrics* metrics) {
  const EngineStats& stats = sim.engine_stats();
  EngineRunCounters& out = metrics->engine;
  out.events_pushed = stats.events_pushed;
  out.events_fired = stats.events_fired;
  out.events_cancelled = stats.events_cancelled;
  out.wheel_scheduled = stats.wheel_scheduled;
  out.overflow_scheduled = stats.overflow_scheduled;
  out.inline_callbacks = stats.inline_callbacks;
  out.heap_callbacks = stats.heap_callbacks;
  out.peak_live = stats.peak_live;
  out.peak_resident = stats.peak_resident;
  out.peak_pool_slots = stats.peak_pool_slots;
}

// Freezes the run's named metrics into metrics->obs. Called after every
// other RunMetrics field is final so engine / fault / lifecycle values
// can be republished by name; `latencies` holds the resolved (non-timed-
// out) query latencies.
void PublishObsMetrics(Network& net, const GpsrRouting& gpsr,
                       const Diknn* diknn, const Tracer* tracer,
                       const std::vector<double>& latencies,
                       uint64_t steady_frames_baseline,
                       RunMetrics* metrics) {
  MetricsRegistry reg;

  const ChannelStats& ch = net.channel().stats();
  reg.PublishCounter("channel.frames_sent", ch.frames_sent);
  reg.PublishCounter("channel.receptions_attempted",
                     ch.receptions_attempted);
  reg.PublishCounter("channel.receptions_delivered",
                     ch.receptions_delivered);
  reg.PublishCounter("channel.receptions_collided", ch.receptions_collided);
  reg.PublishCounter("channel.receptions_lost", ch.receptions_lost);

  MacStats mac;
  for (Node* node : net.AllNodes()) {
    const MacStats& m = node->mac().stats();
    mac.frames_queued += m.frames_queued;
    mac.tx_attempts += m.tx_attempts;
    mac.retries += m.retries;
    mac.csma_failures += m.csma_failures;
    mac.send_failures += m.send_failures;
    mac.duplicates_dropped += m.duplicates_dropped;
  }
  reg.PublishCounter("mac.frames_queued", mac.frames_queued);
  reg.PublishCounter("mac.tx_attempts", mac.tx_attempts);
  reg.PublishCounter("mac.retries", mac.retries);
  reg.PublishCounter("mac.csma_failures", mac.csma_failures);
  reg.PublishCounter("mac.send_failures", mac.send_failures);
  reg.PublishCounter("mac.duplicates_dropped", mac.duplicates_dropped);

  const GpsrRouting::Stats& gs = gpsr.stats();
  reg.PublishCounter("gpsr.sends", gs.sends);
  reg.PublishCounter("gpsr.greedy_hops", gs.greedy_hops);
  reg.PublishCounter("gpsr.perimeter_hops", gs.perimeter_hops);
  reg.PublishCounter("gpsr.deliveries", gs.deliveries);
  reg.PublishCounter("gpsr.ttl_expired", gs.ttl_expired);
  reg.PublishCounter("gpsr.dropped_no_neighbor", gs.dropped_no_neighbor);
  reg.PublishCounter("gpsr.link_failures", gs.link_failures);
  reg.PublishCounter("gpsr.forks_suppressed", gs.forks_suppressed);

  if (diknn != nullptr) {
    const DiknnStats& ds = diknn->stats();
    reg.PublishCounter("diknn.queries_issued", ds.queries_issued);
    reg.PublishCounter("diknn.queries_completed", ds.queries_completed);
    reg.PublishCounter("diknn.timeouts", ds.timeouts);
    reg.PublishCounter("diknn.home_node_arrivals", ds.home_node_arrivals);
    reg.PublishCounter("diknn.qnode_hops", ds.qnode_hops);
    reg.PublishCounter("diknn.probes_sent", ds.probes_sent);
    reg.PublishCounter("diknn.replies_sent", ds.replies_sent);
    reg.PublishCounter("diknn.sector_results_sent", ds.sector_results_sent);
    reg.PublishCounter("diknn.sector_results_received",
                       ds.sector_results_received);
    reg.PublishCounter("diknn.voids_encountered", ds.voids_encountered);
    reg.PublishCounter("diknn.rendezvous_sent", ds.rendezvous_sent);
    reg.PublishCounter("diknn.boundary_truncations",
                       ds.boundary_truncations);
    reg.PublishCounter("diknn.boundary_extensions", ds.boundary_extensions);
    reg.PublishCounter("diknn.assurance_expansions",
                       ds.assurance_expansions);
    reg.PublishCounter("diknn.stale_branches_dropped",
                       ds.stale_branches_dropped);
    reg.PublishCounter("diknn.dead_node_drops", ds.dead_node_drops);
  }

  const EngineRunCounters& en = metrics->engine;
  reg.PublishCounter("engine.events_pushed", en.events_pushed);
  reg.PublishCounter("engine.events_fired", en.events_fired);
  reg.PublishCounter("engine.events_cancelled", en.events_cancelled);
  reg.PublishGauge("engine.peak_live", static_cast<double>(en.peak_live));
  reg.PublishGauge("engine.peak_resident",
                   static_cast<double>(en.peak_resident));

  reg.PublishCounter("faults.injected", metrics->faults_injected);
  reg.PublishCounter("lifecycle.checks", metrics->lifecycle_checks);
  reg.PublishCounter("lifecycle.violations", metrics->lifecycle_violations);
  reg.PublishCounter("lifecycle.leaked_entries", metrics->leaked_entries);

  // Serving front-end counters (all zero unless the workload spec enables
  // cache@ / coalesce@ / admit@shed stages).
  const ServingCounters& sc = metrics->slo.serving;
  reg.PublishCounter("serving.cache_hits", sc.cache_hits);
  reg.PublishCounter("serving.cache_misses", sc.cache_misses);
  reg.PublishCounter("serving.cache_expired", sc.cache_expired);
  reg.PublishCounter("serving.cache_insertions", sc.cache_insertions);
  reg.PublishCounter("serving.coalesced", sc.coalesced);
  reg.PublishCounter("serving.fanned_out", sc.fanned_out);
  reg.PublishCounter("serving.shed", sc.shed);
  reg.PublishCounter("serving.shed_probes", sc.shed_probes);

  // Allocation-free packet plane gate (docs/PACKET_PLANE.md). The net
  // counter is reset at the midpoint of the measured window — after
  // pools, per-query containers and MAC queues reached their high-water
  // capacity — so what it holds here is the steady state and must be
  // exactly zero. The knn-side counters are deliberately NOT published:
  // they include growth of recycled payload buffers, which depends on
  // thread-local pool warmth carried across runs in one process and would
  // break bit-identity across --jobs; bench_micro asserts the knn gate
  // (amortized-flat) in-process instead.
  const AllocCounters& na = net.channel().net_allocs();
  const uint64_t steady_frames =
      ch.frames_sent - std::min(ch.frames_sent, steady_frames_baseline);
  reg.PublishCounter("net.allocs", na.allocations);
  reg.PublishCounter("net.alloc_bytes", na.bytes);
  reg.PublishCounter("net.frames", steady_frames);
  reg.PublishGauge("net.alloc_per_frame",
                   steady_frames > 0
                       ? static_cast<double>(na.allocations) /
                             static_cast<double>(steady_frames)
                       : static_cast<double>(na.allocations));
  const MessagePoolStats& fp = net.channel().frame_pool_stats();
  reg.PublishCounter("pool.frame_fresh", fp.fresh_allocations);
  reg.PublishCounter("pool.frame_reuses", fp.reuses);
  reg.PublishGauge("pool.frames_live",
                   static_cast<double>(net.channel().frames_in_flight()));

  const TracerStats ts = tracer != nullptr ? tracer->stats() : TracerStats{};
  reg.PublishCounter("tracer.queries_seen", ts.queries_seen);
  reg.PublishCounter("tracer.queries_sampled", ts.queries_sampled);
  reg.PublishCounter("tracer.spans", ts.spans);
  reg.PublishCounter("tracer.events", ts.events);

  reg.PublishGauge("run.energy_joules", metrics->energy_joules,
                   GaugeMode::kSum);
  reg.PublishGauge("run.peak_inflight",
                   static_cast<double>(metrics->slo.peak_inflight));

  const MetricId lat_hist = reg.RegisterHistogram("query.latency_s");
  for (double v : latencies) reg.Observe(lat_hist, v);

  metrics->obs = reg.Snapshot();
}

// CLI flags override the workload spec's timeseries@ clause; either
// source alone enables the recorder.
TimeSeriesOptions ResolveTsOptions(const ExperimentConfig& config) {
  TimeSeriesOptions opts;
  opts.interval = config.ts_interval;
  if (config.ts_capacity > 0) {
    opts.capacity = static_cast<size_t>(config.ts_capacity);
  }
  if (config.workload.has_value()) {
    if (!(opts.interval > 0.0)) opts.interval = config.workload->ts_interval;
    if (opts.capacity == 0 && config.workload->ts_capacity > 0) {
      opts.capacity = static_cast<size_t>(config.workload->ts_capacity);
    }
  }
  return opts;
}

// Channel / MAC series: per-interval frame rate, airtime share of the
// medium, collision and loss rates. The probe only reads ChannelStats /
// MacStats, and the deltas are integer counters (airtime is a sum of
// per-frame durations accumulated in simulation order), so the series
// are deterministic on the serial engine.
void InstallNetProbes(FlightRecorder* rec, Network* net) {
  struct State {
    CounterDelta frames, attempted, collided, lost, mac_tx;
    double prev_airtime = 0.0;
  };
  auto state = std::make_shared<State>();
  const ChannelStats& ch = net->channel().stats();
  state->frames.prev = ch.frames_sent;
  state->attempted.prev = ch.receptions_attempted;
  state->collided.prev = ch.receptions_collided;
  state->lost.prev = ch.receptions_lost;
  state->prev_airtime = ch.airtime_s;
  uint64_t tx0 = 0;
  for (Node* node : net->AllNodes()) tx0 += node->mac().stats().tx_attempts;
  state->mac_tx.prev = tx0;

  TimeSeries* frames_per_s = rec->AddSeries("net.frames_per_s");
  TimeSeries* airtime_share = rec->AddSeries("net.airtime_share");
  TimeSeries* collision_rate = rec->AddSeries("net.collision_rate");
  TimeSeries* loss_rate = rec->AddSeries("net.loss_rate");
  TimeSeries* mac_tx_per_s = rec->AddSeries("mac.tx_attempts_per_s");
  const double interval = rec->options().interval;
  rec->AddProbe([state, net, interval, frames_per_s, airtime_share,
                 collision_rate, loss_rate, mac_tx_per_s](double t) {
    const ChannelStats& ch = net->channel().stats();
    const uint64_t attempted = state->attempted.Take(ch.receptions_attempted);
    frames_per_s->Append(
        t, static_cast<double>(state->frames.Take(ch.frames_sent)) /
               interval);
    airtime_share->Append(t,
                          (ch.airtime_s - state->prev_airtime) / interval);
    state->prev_airtime = ch.airtime_s;
    collision_rate->Append(
        t, SafeRate(state->collided.Take(ch.receptions_collided), attempted));
    loss_rate->Append(
        t, SafeRate(state->lost.Take(ch.receptions_lost), attempted));
    uint64_t tx = 0;
    for (Node* node : net->AllNodes()) tx += node->mac().stats().tx_attempts;
    mac_tx_per_s->Append(
        t, static_cast<double>(state->mac_tx.Take(tx)) / interval);
  });
}

// Workload / serving series from the live SloReport (counts update at
// every resolution; the per-interval percentiles come from bucket-count
// subtraction, so they stay integer-derived and deterministic).
void InstallWorkloadProbes(FlightRecorder* rec, const QueryDriver* driver) {
  struct State {
    SloReport prev;
    ServingCounters prev_serving;
  };
  auto state = std::make_shared<State>();
  state->prev = driver->report();
  if (driver->serving() != nullptr) {
    state->prev_serving = driver->serving()->counters();
  }

  TimeSeries* issued_per_s = rec->AddSeries("workload.issued_per_s");
  TimeSeries* goodput = rec->AddSeries("workload.goodput_qps");
  TimeSeries* p50_ms = rec->AddSeries("workload.p50_ms");
  TimeSeries* p99_ms = rec->AddSeries("workload.p99_ms");
  TimeSeries* miss_rate = rec->AddSeries("workload.miss_rate");
  TimeSeries* reject_rate = rec->AddSeries("workload.reject_rate");
  TimeSeries* timeout_rate = rec->AddSeries("workload.timeout_rate");
  TimeSeries* inflight = rec->AddSeries("workload.inflight");
  const bool serving = driver->serving() != nullptr;
  TimeSeries* cache_hit_rate =
      serving ? rec->AddSeries("serving.cache_hit_rate") : nullptr;
  TimeSeries* coalesce_rate =
      serving ? rec->AddSeries("serving.coalesce_rate") : nullptr;
  TimeSeries* shed_per_s =
      serving ? rec->AddSeries("serving.shed_per_s") : nullptr;
  const double interval = rec->options().interval;
  rec->AddProbe([state, driver, interval, issued_per_s, goodput, p50_ms,
                 p99_ms, miss_rate, reject_rate, timeout_rate, inflight,
                 cache_hit_rate, coalesce_rate, shed_per_s](double t) {
    const SloReport& now = driver->report();
    const SloReport& prev = state->prev;
    const uint64_t issued = now.issued - prev.issued;
    issued_per_s->Append(t, static_cast<double>(issued) / interval);
    goodput->Append(
        t, static_cast<double>(now.completed - prev.completed) / interval);
    p50_ms->Append(t, 1e3 * now.latency.DeltaPercentile(prev.latency, 50.0));
    p99_ms->Append(t, 1e3 * now.latency.DeltaPercentile(prev.latency, 99.0));
    miss_rate->Append(
        t, SafeRate(now.deadline_missed - prev.deadline_missed, issued));
    reject_rate->Append(t, SafeRate(now.rejected - prev.rejected, issued));
    timeout_rate->Append(t, SafeRate(now.timed_out - prev.timed_out, issued));
    inflight->Append(t, static_cast<double>(driver->inflight_count()));
    if (driver->serving() != nullptr) {
      const ServingCounters& sc = driver->serving()->counters();
      const ServingCounters& sp = state->prev_serving;
      const uint64_t hits = sc.cache_hits - sp.cache_hits;
      const uint64_t misses = sc.cache_misses - sp.cache_misses;
      cache_hit_rate->Append(t, SafeRate(hits, hits + misses));
      coalesce_rate->Append(t, SafeRate(sc.coalesced - sp.coalesced, issued));
      shed_per_s->Append(
          t, static_cast<double>(sc.shed - sp.shed) / interval);
      state->prev_serving = sc;
    }
    state->prev = now;
  });
}

// A sharded (or force-windowed) run: hand the substrate to the parallel
// engine. With a workload spec the engine also runs the query plane
// (GPSR forwarding + DIKNN itineraries + the serving front end across
// shard mailboxes), so the RunMetrics carry a populated SloReport next
// to the psim traffic counters, merged per-shard scheduler stats, and
// the psim.* / qp.* observability snapshot.
RunMetrics RunPsimSubstrate(const ExperimentConfig& config, uint64_t seed) {
  const NetworkConfig& net = config.network;
  PsimConfig pc;
  pc.node_count = net.node_count;
  pc.field = net.field;
  pc.radio_range_m = net.radio_range_m;
  pc.bit_rate_bps = net.bit_rate_bps;
  pc.loss_rate = net.loss_rate;
  pc.beacon_interval = net.beacon_interval;
  pc.neighbor_timeout = net.neighbor_timeout;
  pc.max_speed =
      net.mobility == MobilityKind::kStatic ? 0.0 : net.max_speed;
  pc.mac = net.mac;
  pc.scheduler = net.scheduler;
  pc.shards = config.shards;
  pc.duration = config.warmup + config.duration;
  pc.seed = seed;
  pc.ts = ResolveTsOptions(config);
  if (config.workload.has_value()) {
    // The sink mirrors the serial harness' static sink (node 0). Arrivals
    // cover the measured interval; the drain tail lets in-flight replies
    // land before the horizon times the rest out.
    pc.query.enabled = true;
    pc.query.spec = *config.workload;
    pc.query.diknn = config.diknn;
    pc.query.sink = 0;
    pc.query.warmup = config.warmup;
    pc.query.horizon = config.warmup + config.duration;
    pc.duration = config.warmup + config.duration + config.drain;
  }

  PsimResult result = RunPsim(pc);

  RunMetrics metrics;
  metrics.average_degree = result.average_degree;
  metrics.shards_requested = result.shards_requested;
  metrics.shards_effective = result.shards;
  if (result.query_ran) {
    metrics.slo = result.slo;
    metrics.queries = static_cast<int>(result.slo.issued);
    metrics.timeouts = static_cast<int>(result.slo.timed_out);
    metrics.avg_latency = result.slo.latency.Mean();
    metrics.p50_latency = result.slo.p50();
    metrics.p95_latency = result.slo.p95();
    metrics.p99_latency = result.slo.p99();
  }
  EngineRunCounters& en = metrics.engine;
  en.events_pushed = result.engine.events_pushed;
  en.events_fired = result.engine.events_fired;
  en.events_cancelled = result.engine.events_cancelled;
  en.wheel_scheduled = result.engine.wheel_scheduled;
  en.overflow_scheduled = result.engine.overflow_scheduled;
  en.inline_callbacks = result.engine.inline_callbacks;
  en.heap_callbacks = result.engine.heap_callbacks;
  en.peak_live = result.engine.peak_live;
  en.peak_resident = result.engine.peak_resident;
  en.peak_pool_slots = result.engine.peak_pool_slots;
  metrics.obs = result.obs;
  metrics.ts = std::move(result.ts);
  return metrics;
}

}  // namespace

RunMetrics RunOnce(const ExperimentConfig& config, uint64_t seed,
                   std::vector<QueryRecord>* records_out,
                   TraceData* trace_out) {
  if (config.shards > 1 || config.force_windowed) {
    return RunPsimSubstrate(config, seed);
  }
  ProtocolStack stack(config, seed);
  Network& net = stack.network();
  Simulator& sim = net.sim();
  KnnProtocol& protocol = stack.protocol();

  // Attach the query tracer only when something will be sampled: with no
  // tracer every instrumentation site is a single null-pointer check.
  double trace_rate = config.trace_sample;
  if (config.workload.has_value()) {
    trace_rate = std::max(trace_rate, config.workload->trace_sample);
  }
  std::unique_ptr<Tracer> tracer;
  if (trace_rate > 0.0) {
    tracer = std::make_unique<Tracer>(trace_rate, seed);
    net.channel().set_tracer(tracer.get());
    stack.gpsr().set_tracer(tracer.get());
    if (stack.diknn() != nullptr) stack.diknn()->set_tracer(tracer.get());
  }

  net.Warmup(config.warmup);

  // Arm faults only after warmup so the plan's times are relative to the
  // measured workload, and seed the injector from its own derived stream
  // so the channel / MAC / mobility draws match a clean run exactly.
  std::unique_ptr<FaultInjector> injector;
  if (!config.faults.empty()) {
    injector = std::make_unique<FaultInjector>(
        &net, config.faults, seed * 0x9e3779b97f4a7c15ULL + 101,
        config.static_sink ? 1 : 0);
    injector->Arm();
  }
  std::unique_ptr<LifecycleAuditor> auditor;
  if (config.audit_lifecycle && stack.diknn() != nullptr) {
    auditor =
        std::make_unique<LifecycleAuditor>(stack.diknn(), &stack.gpsr());
  }

  // Flight recorder: sampled only when a timeseries cadence is configured
  // (the disabled path is this null check). Probes are primed after
  // warmup so warmup traffic never enters the series, and the tick events
  // read state without writing any, so a recorded run carries the exact
  // same traffic as an unrecorded one.
  const TimeSeriesOptions ts_options = ResolveTsOptions(config);
  std::unique_ptr<FlightRecorder> recorder;
  if (ts_options.enabled()) {
    recorder = std::make_unique<FlightRecorder>(ts_options);
    InstallNetProbes(recorder.get(), &net);
    if (injector != nullptr) {
      FlightRecorder* rec = recorder.get();
      injector->set_observer([rec](SimTime t, NodeId id, bool alive) {
        rec->Annotate(t, alive ? "node.revive" : "node.kill",
                      static_cast<double>(id));
      });
    }
    recorder->ScheduleTicks(&sim, sim.Now(),
                            sim.Now() + config.duration + config.drain);
  }

  // Exclude warm-up traffic (registration floods, initial beacons) from
  // the energy accounting, matching a steady-state measurement.
  const double maintenance_baseline =
      net.TotalEnergy(EnergyCategory::kMaintenance);
  const double query_baseline = net.TotalEnergy(EnergyCategory::kQuery);
  const double beacon_baseline = net.TotalEnergy(EnergyCategory::kBeacon);

  RunMetrics metrics;

  // Steady-state mark for the allocation gate: halfway through the
  // measured window reset the subsystem counters and remember how many
  // frames the air had carried, so net.alloc_per_frame measures only the
  // warmed-up regime. The event touches nothing the simulation reads, so
  // it cannot perturb determinism.
  auto steady_frames_baseline = std::make_shared<uint64_t>(0);
  {
    Network* net_ptr = &net;
    KnnProtocol* protocol_ptr = &protocol;
    auto baseline = steady_frames_baseline;
    sim.ScheduleAt(sim.Now() + config.duration * 0.5,
                   [net_ptr, protocol_ptr, baseline]() {
                     net_ptr->channel().net_allocs().Reset();
                     protocol_ptr->ResetAllocCounters();
                     *baseline = net_ptr->channel().stats().frames_sent;
                   });
  }

  // Workload-spec path: hand the run to the QueryDriver (concurrent
  // queries, mixed classes, deadlines, admission control) and score an
  // SloReport. Shares the paper path's derived seed so a knn-only spec
  // sees the same arrival stream the paper generator would.
  if (config.workload.has_value()) {
    QueryDriver driver(&net, &stack.gpsr(), &stack.protocol(),
                       *config.workload, seed * 0x9e3779b97f4a7c15ULL + 17,
                       config.static_sink ? 0 : kInvalidNodeId);
    driver.set_tracer(tracer.get());
    if (recorder != nullptr) InstallWorkloadProbes(recorder.get(), &driver);
    metrics.slo = driver.Run(config.duration, config.drain);

    metrics.queries = static_cast<int>(metrics.slo.issued);
    metrics.timeouts = static_cast<int>(metrics.slo.timed_out);
    metrics.avg_latency = metrics.slo.latency.Mean();
    metrics.p50_latency = metrics.slo.p50();
    metrics.p95_latency = metrics.slo.p95();
    metrics.p99_latency = metrics.slo.p99();
    metrics.avg_pre_accuracy = driver.MeanPreAccuracy();
    metrics.avg_post_accuracy = driver.MeanPostAccuracy();
    metrics.energy_joules =
        (net.TotalEnergy(EnergyCategory::kQuery) - query_baseline) +
        (net.TotalEnergy(EnergyCategory::kMaintenance) -
         maintenance_baseline);
    metrics.beacon_energy_joules =
        net.TotalEnergy(EnergyCategory::kBeacon) - beacon_baseline;
    metrics.average_degree = net.AverageDegree();
    if (injector != nullptr) {
      metrics.faults_injected = injector->stats().Total();
    }
    if (auditor != nullptr) {
      metrics.lifecycle_checks = auditor->checks();
      metrics.lifecycle_violations = auditor->violations();
      metrics.leaked_entries = auditor->FinalResidue();
      if (!auditor->FlowStateBounded()) ++metrics.lifecycle_violations;
    }
    if (records_out != nullptr) {
      records_out->clear();
      for (const WorkloadQueryRecord& r : driver.records()) {
        QueryRecord rec;
        rec.query_id = r.id;
        rec.latency = r.latency;
        rec.timed_out = r.outcome == QueryOutcome::kTimedOut;
        rec.pre_accuracy = std::max(r.pre_accuracy, 0.0);
        rec.post_accuracy = std::max(r.post_accuracy, 0.0);
        records_out->push_back(rec);
      }
    }
    FillEngineCounters(sim, &metrics);
    std::vector<double> resolved;
    for (const WorkloadQueryRecord& r : driver.records()) {
      if (r.outcome == QueryOutcome::kCompleted ||
          r.outcome == QueryOutcome::kDeadlineMissed) {
        resolved.push_back(r.latency);
      }
    }
    PublishObsMetrics(net, stack.gpsr(), stack.diknn(),
                      tracer.get(), resolved, *steady_frames_baseline,
                      &metrics);
    if (recorder != nullptr) metrics.ts = recorder->series();
    if (trace_out != nullptr && tracer != nullptr) {
      *trace_out = tracer->Snapshot();
    }
    return metrics;
  }

  Rng workload_rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  auto records = std::make_shared<std::vector<QueryRecord>>();

  // Query generator: Poisson arrivals from a random (mobile) sink to a
  // uniformly random query point. Each issue snapshots the ground truth
  // for pre-accuracy; the completion handler snapshots it again for
  // post-accuracy.
  const SimTime start = sim.Now();
  const SimTime deadline = start + config.duration;
  struct Generator {
    ExperimentConfig config;
    Network* net;
    KnnProtocol* protocol;
    std::shared_ptr<std::vector<QueryRecord>> records;
    Rng rng;
    SimTime deadline;

    void IssueNext() {
      Simulator& sim = net->sim();
      const SimTime next =
          sim.Now() + rng.Exponential(config.query_interval_mean);
      if (next >= deadline) return;
      sim.ScheduleAt(next, [this]() {
        const NodeId sink =
            config.static_sink
                ? 0
                : rng.UniformInt(0, config.network.node_count - 1);
        const Point q = rng.PointInRect(config.network.field);
        const auto truth_pre = net->TrueKnn(q, config.k);
        const SimTime issued = net->sim().Now();
        auto records_ref = records;
        Network* net_ref = net;
        const int k = config.k;
        protocol->IssueQuery(
            sink, q, k,
            [records_ref, net_ref, q, k, truth_pre,
             issued](const KnnResult& result) {
              QueryRecord rec;
              rec.query_id = result.query_id;
              rec.latency = result.Latency();
              rec.timed_out = result.timed_out;
              const auto returned = result.CandidateIds();
              rec.pre_accuracy = Accuracy(returned, truth_pre);
              rec.post_accuracy =
                  Accuracy(returned, net_ref->TrueKnn(q, k));
              records_ref->push_back(rec);
            });
        IssueNext();
      });
    }
  };
  auto generator = std::make_shared<Generator>(
      Generator{config, &net, &protocol, records, workload_rng, deadline});
  generator->IssueNext();

  sim.RunUntil(deadline + config.drain);

  metrics.queries = static_cast<int>(records->size());
  std::vector<double> lat, pre, post;
  for (const QueryRecord& r : *records) {
    if (r.timed_out) ++metrics.timeouts;
    lat.push_back(r.latency);
    pre.push_back(r.pre_accuracy);
    post.push_back(r.post_accuracy);
  }
  metrics.avg_latency = Summarize(lat).mean;
  const std::vector<double> tails = Percentiles(lat, {50.0, 95.0, 99.0});
  metrics.p50_latency = tails[0];
  metrics.p95_latency = tails[1];
  metrics.p99_latency = tails[2];
  metrics.avg_pre_accuracy = Summarize(pre).mean;
  metrics.avg_post_accuracy = Summarize(post).mean;
  metrics.energy_joules =
      (net.TotalEnergy(EnergyCategory::kQuery) - query_baseline) +
      (net.TotalEnergy(EnergyCategory::kMaintenance) - maintenance_baseline);
  metrics.beacon_energy_joules =
      net.TotalEnergy(EnergyCategory::kBeacon) - beacon_baseline;
  metrics.average_degree = net.AverageDegree();
  if (injector != nullptr) {
    metrics.faults_injected = injector->stats().Total();
  }
  if (auditor != nullptr) {
    metrics.lifecycle_checks = auditor->checks();
    metrics.lifecycle_violations = auditor->violations();
    metrics.leaked_entries = auditor->FinalResidue();
    if (!auditor->FlowStateBounded()) ++metrics.lifecycle_violations;
  }

  if (records_out != nullptr) *records_out = *records;
  FillEngineCounters(sim, &metrics);
  std::vector<double> resolved;
  for (const QueryRecord& r : *records) {
    if (!r.timed_out) resolved.push_back(r.latency);
  }
  PublishObsMetrics(net, stack.gpsr(), stack.diknn(),
                    tracer.get(), resolved, *steady_frames_baseline,
                    &metrics);
  if (recorder != nullptr) metrics.ts = recorder->series();
  if (trace_out != nullptr && tracer != nullptr) {
    *trace_out = tracer->Snapshot();
  }
  return metrics;
}

std::vector<RunMetrics> RunExperimentRuns(const ExperimentConfig& config) {
  const int runs = std::max(config.runs, 0);
  std::vector<RunMetrics> results(runs);
  const int jobs = std::clamp(config.jobs, 1, std::max(runs, 1));
  if (jobs == 1) {
    for (int i = 0; i < runs; ++i) {
      results[i] = RunOnce(config, config.base_seed + i);
    }
    return results;
  }
  // Repetitions are embarrassingly parallel: every run builds its own
  // simulator, network and RNG streams, and the only process-wide state
  // (the log level) is atomic. Workers pull run indices from a shared
  // counter and write into disjoint slots, so which thread executes
  // which seed never affects the output.
  std::atomic<int> next{0};
  auto worker = [&results, &config, runs, &next]() {
    for (int i = next.fetch_add(1); i < runs; i = next.fetch_add(1)) {
      results[i] = RunOnce(config, config.base_seed + i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

ExperimentMetrics RunExperiment(const ExperimentConfig& config) {
  return AggregateRuns(RunExperimentRuns(config));
}

std::string FormatRow(const std::string& label,
                      const ExperimentMetrics& metrics) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << label << "  latency=" << metrics.latency.mean << "s"
     << "  energy=" << metrics.energy.mean << "J"
     << "  pre_acc=" << metrics.pre_accuracy.mean
     << "  post_acc=" << metrics.post_accuracy.mean
     << "  timeout_rate=" << metrics.timeout_rate.mean;
  return os.str();
}

}  // namespace diknn
