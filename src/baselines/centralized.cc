#include "baselines/centralized.h"

#include <algorithm>

namespace diknn {

namespace {
constexpr size_t kUpdateBytes = 12;
constexpr size_t kQueryBytes = 26;
constexpr size_t kCandidateBytes = 12;

struct QueryEnvelope : Message {
  KnnQuery query;
};

struct ResultEnvelope : Message {
  KnnResult result;
  NodeId sink = kInvalidNodeId;
};

}  // namespace

CentralizedIndex::CentralizedIndex(Network* network, GpsrRouting* gpsr,
                                   CentralizedParams params)
    : network_(network),
      gpsr_(gpsr),
      params_(params),
      index_(params.rtree_fanout) {}

void CentralizedIndex::Install() {
  gpsr_->RegisterDelivery(
      MessageType::kCentralUpdate,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnUpdate(node, *static_cast<const UpdateMessage*>(msg.inner.get()));
      });
  gpsr_->RegisterDelivery(
      MessageType::kCentralQuery,
      [this](Node* node, const GeoRoutedMessage& msg) {
        // A remote sink's query reached the station: answer and ship the
        // result back.
        if (node->id() != params_.center) return;
        const auto& query =
            static_cast<const QueryEnvelope*>(msg.inner.get())->query;
        auto envelope = std::make_shared<ResultEnvelope>();
        envelope->result = AnswerLocally(query);
        envelope->sink = query.sink;
        const size_t bytes =
            10 + envelope->result.candidates.size() * kCandidateBytes;
        // Address the reply to the sink's freshest *recorded* position —
        // the station's one advantage is that it tracks everyone.
        const auto sink_record = records_.find(query.sink);
        const Point reply_to = sink_record != records_.end()
                                   ? sink_record->second.position
                                   : query.sink_position;
        network_->sim().ScheduleAfter(
            params_.processing_delay,
            [this, node, envelope, bytes, reply_to, query]() {
              gpsr_->Send(node, reply_to, MessageType::kCentralResult,
                          envelope, bytes, EnergyCategory::kQuery, false,
                          query.sink);
            });
      });
  gpsr_->RegisterDelivery(
      MessageType::kCentralResult,
      [this](Node* node, const GeoRoutedMessage& msg) {
        const auto* envelope =
            static_cast<const ResultEnvelope*>(msg.inner.get());
        if (node->id() != envelope->sink) return;
        // Completion bookkeeping happens in the issue-side record; here
        // the handler stored there fires.
        auto it = pending_.find(envelope->result.query_id);
        if (it == pending_.end() || it->second.completed) return;
        it->second.completed = true;
        network_->sim().Cancel(it->second.timeout_event);
        ++stats_.queries_completed;
        KnnResult result = envelope->result;
        result.issued_at = it->second.issued_at;
        result.completed_at = network_->sim().Now();
        ResultHandler handler = std::move(it->second.handler);
        pending_.erase(it);
        if (handler) handler(result);
      });

  // Location update loops on every sensor except the station itself.
  Node* center = network_->node(params_.center);
  for (Node* node : network_->AllNodes()) {
    if (node->is_infrastructure() || node->id() == params_.center) continue;
    const double phase =
        node->rng().Uniform(0.0, params_.update_interval);
    network_->sim().SchedulePeriodic(
        phase, params_.update_interval, [this, node, center]() {
          if (!node->alive()) return true;
          auto update = std::make_shared<UpdateMessage>();
          update->node = node->id();
          update->position = node->Position();
          update->speed = node->Speed();
          gpsr_->Send(node, center->Position(), MessageType::kCentralUpdate,
                      std::move(update), kUpdateBytes,
                      EnergyCategory::kMaintenance, false, center->id(),
                      /*cheap_delivery=*/true);
          ++stats_.updates_sent;
          return true;
        });
  }
}

void CentralizedIndex::OnUpdate(Node* node, const UpdateMessage& msg) {
  if (node->id() != params_.center) return;  // Stranded update.
  ++stats_.updates_received;
  auto [it, inserted] = records_.try_emplace(msg.node);
  if (!inserted) {
    index_.Remove(msg.node, it->second.position);
  }
  it->second =
      Record{msg.position, msg.speed, network_->sim().Now()};
  index_.Insert(msg.node, msg.position);
}

KnnResult CentralizedIndex::AnswerLocally(const KnnQuery& query) {
  KnnResult result;
  result.query_id = query.id;
  for (int64_t id : index_.Knn(query.q, query.k)) {
    const auto it = records_.find(static_cast<NodeId>(id));
    if (it == records_.end()) continue;
    KnnCandidate c;
    c.id = static_cast<NodeId>(id);
    c.position = it->second.position;
    c.speed = it->second.speed;
    c.sampled_at = it->second.received_at;
    result.candidates.push_back(c);
  }
  return result;
}

void CentralizedIndex::IssueQuery(NodeId sink, Point q, int k,
                                  ResultHandler handler) {
  KnnQuery query;
  query.id = next_query_id_++;
  query.q = q;
  query.k = std::max(1, k);
  query.sink = sink;
  query.sink_position = network_->node(sink)->Position();
  ++stats_.queries_issued;

  const SimTime issued_at = network_->sim().Now();
  if (sink == params_.center) {
    // The station queries its own index: only the processing delay.
    KnnResult result = AnswerLocally(query);
    result.issued_at = issued_at;
    network_->sim().ScheduleAfter(
        params_.processing_delay,
        [this, result, handler = std::move(handler)]() mutable {
          ++stats_.queries_completed;
          result.completed_at = network_->sim().Now();
          if (handler) handler(result);
        });
    return;
  }

  // Remote sink: ship the query to the station, the result back.
  PendingQuery pending;
  pending.query = query;
  pending.handler = std::move(handler);
  pending.issued_at = issued_at;
  const uint64_t id = query.id;
  pending.timeout_event = network_->sim().ScheduleAfter(
      params_.query_timeout, [this, id]() {
        auto it = pending_.find(id);
        if (it == pending_.end() || it->second.completed) return;
        it->second.completed = true;
        ++stats_.timeouts;
        KnnResult result;
        result.query_id = id;
        result.issued_at = it->second.issued_at;
        result.completed_at = network_->sim().Now();
        result.timed_out = true;
        ResultHandler handler = std::move(it->second.handler);
        pending_.erase(it);
        if (handler) handler(result);
      });
  pending_.emplace(id, std::move(pending));

  auto envelope = std::make_shared<QueryEnvelope>();
  envelope->query = query;
  Node* center = network_->node(params_.center);
  gpsr_->Send(network_->node(sink), center->Position(),
              MessageType::kCentralQuery, std::move(envelope), kQueryBytes,
              EnergyCategory::kQuery, false, center->id());
}

}  // namespace diknn
