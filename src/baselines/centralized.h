// Centralized baseline — the other branch of the paper's Fig. 1 taxonomy.
//
// "The centralized approach performs the queries in a centralized
// database containing locations of all the sensor nodes ... usually
// maintained in an R-tree variant index." Every node streams periodic
// location updates (multi-hop) to a central station, which maintains an
// R-tree over the latest known positions; KNN queries are answered at the
// station from the index alone.
//
// Its failure modes are exactly what motivates in-network processing:
// the update stream's energy cost scales with n and with the desired
// freshness, and answers are as stale as the update period — the trade
// the ICDE'06/'07 in-network line of work (and this paper) escapes.

#ifndef DIKNN_BASELINES_CENTRALIZED_H_
#define DIKNN_BASELINES_CENTRALIZED_H_

#include <cstdint>
#include <unordered_map>

#include "baselines/rtree.h"
#include "knn/query.h"
#include "net/network.h"
#include "routing/gpsr.h"

namespace diknn {

/// Centralized-index tunables.
struct CentralizedParams {
  NodeId center = 0;              ///< The station holding the index.
  /// Per-node location report period. All reports funnel into the one
  /// station's airspace: below ~4 s the update stream saturates the
  /// channel around it and deliveries collapse — the centralized
  /// bottleneck in its purest form. The default stays under saturation.
  SimTime update_interval = 5.0;
  SimTime query_timeout = 8.0;
  /// Local processing delay at the station per query (index lookup etc.).
  SimTime processing_delay = 0.005;
  int rtree_fanout = 8;
};

/// Behaviour counters.
struct CentralizedStats {
  uint64_t queries_issued = 0;
  uint64_t queries_completed = 0;
  uint64_t timeouts = 0;
  uint64_t updates_sent = 0;
  uint64_t updates_received = 0;
};

/// The centralized R-tree baseline.
class CentralizedIndex : public KnnProtocol {
 public:
  CentralizedIndex(Network* network, GpsrRouting* gpsr,
                   CentralizedParams params = {});

  void Install() override;
  void IssueQuery(NodeId sink, Point q, int k, ResultHandler handler) override;
  std::string name() const override { return "Centralized"; }

  const CentralizedStats& stats() const { return stats_; }

  /// Current index size (for tests).
  size_t IndexedNodes() const { return records_.size(); }

 private:
  struct UpdateMessage : Message {
    NodeId node = kInvalidNodeId;
    Point position;
    double speed = 0.0;
  };

  struct Record {
    Point position;
    double speed = 0.0;
    SimTime received_at = 0;
  };

  struct PendingQuery {
    KnnQuery query;
    ResultHandler handler;
    SimTime issued_at = 0;
    EventId timeout_event = 0;
    bool completed = false;
  };

  void OnUpdate(Node* node, const UpdateMessage& msg);
  // Answers a query locally at the center station.
  KnnResult AnswerLocally(const KnnQuery& query);

  Network* network_;
  GpsrRouting* gpsr_;
  CentralizedParams params_;
  CentralizedStats stats_;

  uint64_t next_query_id_ = 1;
  RTree index_;
  std::unordered_map<NodeId, Record> records_;
  std::unordered_map<uint64_t, PendingQuery> pending_;
};

}  // namespace diknn

#endif  // DIKNN_BASELINES_CENTRALIZED_H_
