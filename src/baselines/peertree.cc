#include "baselines/peertree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/logging.h"

namespace diknn {

namespace {

constexpr size_t kRegisterBytes = 10;
constexpr size_t kQueryBytes = 26;
constexpr size_t kProbeBytes = 26;
constexpr size_t kNotifyBytes = 28;
constexpr size_t kResponseBytes = 14;
constexpr size_t kCandidateBytes = 12;

}  // namespace

std::vector<Point> PeerTree::ClusterheadPositions(const Rect& field,
                                                  int grid_dim) {
  std::vector<Point> out;
  out.reserve(grid_dim * grid_dim);
  const double cw = field.Width() / grid_dim;
  const double ch = field.Height() / grid_dim;
  for (int row = 0; row < grid_dim; ++row) {
    for (int col = 0; col < grid_dim; ++col) {
      out.push_back({field.min.x + (col + 0.5) * cw,
                     field.min.y + (row + 0.5) * ch});
    }
  }
  return out;
}

PeerTree::PeerTree(Network* network, GpsrRouting* gpsr,
                   PeerTreeParams params)
    : network_(network), gpsr_(gpsr), params_(params) {
  const Rect& field = network_->config().field;
  const int dim = params_.grid_dim;
  const int mobile = network_->config().node_count;
  assert(network_->size() >= mobile + dim * dim &&
         "network lacks the grid_dim^2 clusterhead infrastructure nodes");

  cells_.resize(dim * dim);
  const double cw = field.Width() / dim;
  const double ch = field.Height() / dim;
  for (int row = 0; row < dim; ++row) {
    for (int col = 0; col < dim; ++col) {
      Cell& cell = cells_[row * dim + col];
      cell.head = mobile + row * dim + col;
      cell.rect = Rect{{field.min.x + col * cw, field.min.y + row * ch},
                       {field.min.x + (col + 1) * cw,
                        field.min.y + (row + 1) * ch}};
      cell.members = RTree(params_.rtree_fanout);
    }
  }
  root_cell_ = (dim / 2) * dim + dim / 2;  // Center cell acts as root.
}

int PeerTree::CellOf(const Point& p) const {
  const Rect& field = network_->config().field;
  const int dim = params_.grid_dim;
  int col = static_cast<int>((p.x - field.min.x) / field.Width() * dim);
  int row = static_cast<int>((p.y - field.min.y) / field.Height() * dim);
  col = std::clamp(col, 0, dim - 1);
  row = std::clamp(row, 0, dim - 1);
  return row * dim + col;
}

void PeerTree::Install() {
  gpsr_->RegisterDelivery(
      MessageType::kPeerRegister,
      [this](Node* node, const GeoRoutedMessage& msg) {
        // Registrations are only meaningful at the addressed clusterhead.
        if (!node->is_infrastructure()) return;
        const int cell = CellOf(node->Position());
        if (cells_[cell].head != node->id()) return;
        OnRegister(cell,
                   *static_cast<const RegisterMessage*>(msg.inner.get()));
      });
  gpsr_->RegisterDelivery(
      MessageType::kPeerQuery,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnQueryAtHead(node,
                      *static_cast<const QueryMessage*>(msg.inner.get()));
      });
  gpsr_->RegisterDelivery(
      MessageType::kPeerProbe,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnProbe(node, *static_cast<const ProbeMessage*>(msg.inner.get()));
      });
  gpsr_->RegisterDelivery(
      MessageType::kPeerReply,
      [this](Node* node, const GeoRoutedMessage& msg) {
        OnProbeReply(node,
                     *static_cast<const ProbeReply*>(msg.inner.get()));
      });
  gpsr_->RegisterDelivery(
      MessageType::kPeerResult,
      [this](Node* node, const GeoRoutedMessage& msg) {
        // kPeerResult doubles for coordinator->candidate notification and
        // candidate->sink response; distinguish by payload.
        if (const auto* notify =
                dynamic_cast<const NotifyMessage*>(msg.inner.get())) {
          OnNotify(node, *notify);
        } else {
          OnResponse(node,
                     *static_cast<const ResponseMessage*>(msg.inner.get()));
        }
      });

  StartRegistrationLoops();
}

void PeerTree::StartRegistrationLoops() {
  Simulator& sim = network_->sim();
  for (Node* node : network_->AllNodes()) {
    if (node->is_infrastructure()) continue;
    const NodeId id = node->id();
    // Jitter the phases so registrations do not synchronize.
    const double phase =
        node->rng().Uniform(0.0, params_.cell_check_interval);
    // Track the last refresh locally per node via the shared map.
    auto last_sent = std::make_shared<SimTime>(-params_.registration_interval);
    sim.SchedulePeriodic(
        phase, params_.cell_check_interval, [this, node, id, last_sent]() {
          if (!node->alive()) return true;
          const SimTime now = network_->sim().Now();
          const int cell = CellOf(node->Position());
          auto it = registered_cell_.find(id);
          const bool crossed =
              it == registered_cell_.end() || it->second != cell;
          const bool refresh_due =
              now - *last_sent >= params_.registration_interval;
          if (!crossed && !refresh_due) return true;
          registered_cell_[id] = cell;
          *last_sent = now;
          auto msg = std::make_shared<RegisterMessage>();
          msg->node = id;
          msg->position = node->Position();
          Node* head = HeadNode(cell);
          gpsr_->Send(node, head->Position(), MessageType::kPeerRegister,
                      std::move(msg), kRegisterBytes,
                      EnergyCategory::kMaintenance, false, head->id(),
                      /*cheap_delivery=*/true);
          ++stats_.registrations_sent;
          return true;
        });
  }
  // Clusterhead eviction sweeps.
  for (size_t c = 0; c < cells_.size(); ++c) {
    sim.SchedulePeriodic(params_.member_timeout,
                         params_.member_timeout / 2.0, [this, c]() {
                           EvictStale(static_cast<int>(c));
                           return true;
                         });
  }
}

void PeerTree::OnRegister(int cell, const RegisterMessage& msg) {
  Cell& c = cells_[cell];
  auto it = c.records.find(msg.node);
  if (it != c.records.end()) {
    c.members.Remove(msg.node, it->second.position);
  }
  c.records[msg.node] =
      MemberRecord{msg.position, network_->sim().Now()};
  c.members.Insert(msg.node, msg.position);
}

void PeerTree::EvictStale(int cell) {
  Cell& c = cells_[cell];
  const SimTime now = network_->sim().Now();
  for (auto it = c.records.begin(); it != c.records.end();) {
    if (now - it->second.last_heard > params_.member_timeout) {
      c.members.Remove(it->first, it->second.position);
      it = c.records.erase(it);
      ++stats_.evictions;
    } else {
      ++it;
    }
  }
}

void PeerTree::IssueQuery(NodeId sink, Point q, int k,
                          ResultHandler handler) {
  Node* sink_node = network_->node(sink);
  KnnQuery query;
  query.id = next_query_id_++;
  query.q = q;
  query.k = std::max(1, k);
  query.sink = sink;
  query.sink_position = sink_node->Position();

  PendingQuery pending;
  pending.query = query;
  pending.handler = std::move(handler);
  pending.issued_at = network_->sim().Now();
  const uint64_t id = query.id;
  pending.timeout_event = network_->sim().ScheduleAfter(
      params_.query_timeout, [this, id]() { CompleteQuery(id, true); });
  pending_.emplace(id, std::move(pending));
  ++stats_.queries_issued;

  // Route to the local clusterhead first (the paper's Fig. 2(a) flow).
  const int local_cell = CellOf(sink_node->Position());
  Node* head = HeadNode(local_cell);
  auto msg = std::make_shared<QueryMessage>();
  msg->query = query;
  gpsr_->Send(sink_node, head->Position(), MessageType::kPeerQuery,
              std::move(msg), kQueryBytes, EnergyCategory::kQuery, false,
              head->id(), /*cheap_delivery=*/true);
}

void PeerTree::OnQueryAtHead(Node* node, const QueryMessage& msg) {
  if (!node->is_infrastructure()) return;  // Stranded query; timeout closes.
  const int my_cell = CellOf(node->Position());
  const KnnQuery& query = msg.query;
  const int target_cell = CellOf(query.q);

  if (my_cell == target_cell) {
    Coordinate(my_cell, query);
    return;
  }
  // Forward along the hierarchy: non-root heads go up to the root, the
  // root goes down to the covering head.
  const int next_cell = (my_cell == root_cell_) ? target_cell : root_cell_;
  Node* next_head = HeadNode(next_cell);
  auto fwd = std::make_shared<QueryMessage>(msg);
  ++stats_.hierarchy_forwards;
  gpsr_->Send(node, next_head->Position(), MessageType::kPeerQuery,
              std::move(fwd), kQueryBytes, EnergyCategory::kQuery, false,
              next_head->id(), /*cheap_delivery=*/true);
}

void PeerTree::Coordinate(int cell, const KnnQuery& query) {
  Coordination coord;
  coord.query = query;
  coord.home_cell = cell;

  // Seed with the coordinator's own records.
  const Cell& c = cells_[cell];
  for (int64_t id : c.members.Knn(query.q, query.k)) {
    auto it = c.records.find(static_cast<NodeId>(id));
    if (it == c.records.end()) continue;
    KnnCandidate cand;
    cand.id = static_cast<NodeId>(id);
    cand.position = it->second.position;
    cand.sampled_at = it->second.last_heard;
    coord.candidates.push_back(cand);
  }
  PruneCandidates(&coord.candidates, query.q, query.k);

  // Other cells ordered by how close they could possibly hold records,
  // bounded by a density estimate from the coordinator's own records:
  // cells beyond ~1.5x the radius that should contain k nodes cannot
  // contribute and are never probed (keeps the serial probe chain short
  // enough to finish within the query budget).
  const double density =
      std::max<size_t>(c.records.size(), 1) / c.rect.Area();
  const double reach =
      1.5 * std::sqrt(query.k / (kPi * density)) +
      network_->config().radio_range_m;
  std::vector<int> order;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (static_cast<int>(i) == cell) continue;
    if (cells_[i].rect.MinDistance(query.q) > reach) continue;
    order.push_back(static_cast<int>(i));
  }
  std::sort(order.begin(), order.end(), [this, &query](int a, int b) {
    return cells_[a].rect.MinDistance(query.q) <
           cells_[b].rect.MinDistance(query.q);
  });
  coord.probe_order = std::move(order);

  coordinations_[query.id] = std::move(coord);
  ContinueCoordination(query.id);
}

void PeerTree::ContinueCoordination(uint64_t query_id) {
  auto it = coordinations_.find(query_id);
  if (it == coordinations_.end()) return;
  Coordination& coord = it->second;

  // Current guarantee distance: the k-th best candidate (infinity if we
  // still have fewer than k).
  double kth = std::numeric_limits<double>::infinity();
  if (coord.candidates.size() >= static_cast<size_t>(coord.query.k)) {
    kth = Distance(coord.candidates.back().position, coord.query.q);
  }

  // Launch probes up to the wave width.
  while (static_cast<int>(coord.outstanding.size()) < kProbeWave &&
         coord.next_probe < coord.probe_order.size()) {
    const int cell = coord.probe_order[coord.next_probe];
    if (cells_[cell].rect.MinDistance(coord.query.q) > kth) {
      // No remaining cell can improve the result.
      coord.next_probe = coord.probe_order.size();
      break;
    }
    ++coord.next_probe;
    ++stats_.cells_probed;
    coord.outstanding.insert(cell);

    Node* coordinator = HeadNode(coord.home_cell);
    Node* target = HeadNode(cell);
    auto probe = std::make_shared<ProbeMessage>();
    probe->query_id = query_id;
    probe->q = coord.query.q;
    probe->k = coord.query.k;
    probe->coordinator = coordinator->id();
    probe->coordinator_position = coordinator->Position();
    gpsr_->Send(coordinator, target->Position(), MessageType::kPeerProbe,
                std::move(probe), kProbeBytes, EnergyCategory::kQuery,
                false, target->id(), /*cheap_delivery=*/true);
  }

  if (!coord.outstanding.empty()) {
    // (Re)arm one wave timeout: whatever is still outstanding when it
    // fires is written off and coordination proceeds.
    if (!network_->sim().IsPending(coord.probe_timeout_event)) {
      coord.probe_timeout_event = network_->sim().ScheduleAfter(
          params_.probe_timeout, [this, query_id]() {
            auto cit = coordinations_.find(query_id);
            if (cit == coordinations_.end()) return;
            cit->second.outstanding.clear();
            ContinueCoordination(query_id);
          });
    }
    return;  // Wait for replies (or the wave timeout).
  }

  NotifyCandidates(query_id);
}

void PeerTree::OnProbe(Node* node, const ProbeMessage& msg) {
  if (!node->is_infrastructure()) return;
  const int cell = CellOf(node->Position());
  const Cell& c = cells_[cell];

  auto reply = std::make_shared<ProbeReply>();
  reply->query_id = msg.query_id;
  reply->cell = cell;
  for (int64_t id : c.members.Knn(msg.q, msg.k)) {
    auto it = c.records.find(static_cast<NodeId>(id));
    if (it == c.records.end()) continue;
    KnnCandidate cand;
    cand.id = static_cast<NodeId>(id);
    cand.position = it->second.position;
    cand.sampled_at = it->second.last_heard;
    reply->records.push_back(cand);
  }
  const size_t bytes = 6 + reply->records.size() * kCandidateBytes;
  gpsr_->Send(node, msg.coordinator_position, MessageType::kPeerReply,
              std::move(reply), bytes, EnergyCategory::kQuery, false,
              msg.coordinator, /*cheap_delivery=*/true);
}

void PeerTree::OnProbeReply(Node* node, const ProbeReply& msg) {
  auto it = coordinations_.find(msg.query_id);
  if (it == coordinations_.end()) return;
  Coordination& coord = it->second;
  if (HeadNode(coord.home_cell)->id() != node->id()) return;
  if (coord.outstanding.erase(msg.cell) == 0) return;  // Late reply.

  for (const KnnCandidate& c : msg.records) coord.candidates.push_back(c);
  PruneCandidates(&coord.candidates, coord.query.q, coord.query.k);
  if (coord.outstanding.empty()) {
    network_->sim().Cancel(coord.probe_timeout_event);
  }
  ContinueCoordination(msg.query_id);
}

void PeerTree::NotifyCandidates(uint64_t query_id) {
  auto it = coordinations_.find(query_id);
  if (it == coordinations_.end()) return;
  Coordination coord = std::move(it->second);
  coordinations_.erase(it);

  Node* coordinator = HeadNode(coord.home_cell);
  for (const KnnCandidate& cand : coord.candidates) {
    auto notify = std::make_shared<NotifyMessage>();
    notify->query = coord.query;
    notify->candidate = cand.id;
    ++stats_.notifications_sent;
    // Unicast the query to the candidate at its *recorded* position. If
    // the node moved away, the message strands and the candidate never
    // answers — the paper's staleness failure mode.
    gpsr_->Send(coordinator, cand.position, MessageType::kPeerResult,
                std::move(notify), kNotifyBytes, EnergyCategory::kQuery,
                false, cand.id, /*cheap_delivery=*/true);
  }
}

void PeerTree::OnNotify(Node* node, const NotifyMessage& msg) {
  if (node->id() != msg.candidate) {
    ++stats_.notifications_missed;
    return;
  }
  auto response = std::make_shared<ResponseMessage>();
  response->query_id = msg.query.id;
  response->candidate.id = node->id();
  response->candidate.position = node->Position();
  response->candidate.speed = node->Speed();
  response->candidate.sampled_at = network_->sim().Now();
  gpsr_->Send(node, msg.query.sink_position, MessageType::kPeerResult,
              std::move(response), kResponseBytes, EnergyCategory::kQuery,
              false, msg.query.sink);
}

void PeerTree::OnResponse(Node* node, const ResponseMessage& msg) {
  auto it = pending_.find(msg.query_id);
  if (it == pending_.end()) return;
  PendingQuery& pending = it->second;
  if (node->id() != pending.query.sink) return;
  ++stats_.responses_received;
  pending.candidates.push_back(msg.candidate);
  if (pending.candidates.size() >=
      static_cast<size_t>(pending.query.k)) {
    CompleteQuery(msg.query_id, /*timed_out=*/false);
    return;
  }
  // Some notifications will have missed their moved targets; stop waiting
  // shortly after the responses dry up.
  const uint64_t query_id = msg.query_id;
  network_->sim().Cancel(pending.grace_event);
  pending.grace_event = network_->sim().ScheduleAfter(
      params_.response_grace,
      [this, query_id]() { CompleteQuery(query_id, /*timed_out=*/false); });
}

void PeerTree::CompleteQuery(uint64_t query_id, bool timed_out) {
  auto it = pending_.find(query_id);
  if (it == pending_.end() || it->second.completed) return;
  PendingQuery& pending = it->second;
  pending.completed = true;
  network_->sim().Cancel(pending.timeout_event);
  network_->sim().Cancel(pending.grace_event);
  if (timed_out) {
    ++stats_.timeouts;
  } else {
    ++stats_.queries_completed;
  }

  KnnResult result;
  result.query_id = query_id;
  result.candidates = pending.candidates;
  result.issued_at = pending.issued_at;
  result.completed_at = network_->sim().Now();
  result.timed_out = timed_out;
  PruneCandidates(&result.candidates, pending.query.q, pending.query.k);

  ResultHandler handler = std::move(pending.handler);
  pending_.erase(it);
  if (handler) handler(result);
}

}  // namespace diknn
