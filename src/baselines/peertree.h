// Peer-tree baseline (Demirbas & Ferhatosmanoglu, ICP2PC 2003), simulated
// exactly as the paper's Section 5.1 prescribes:
//
//   "a global index structure, R-tree, is built to preserve the MBR
//    hierarchy ... we partition the network into a 5x5 grid. Every cell
//    represents an MBR within which a stationary clusterhead is
//    pre-located and its address is known by every sensor node. Each
//    sensor node periodically sends a notification of existence to its
//    closest clusterhead. If a clusterhead does not hear from a child
//    after a period of time, it deletes the node and updates the MBR
//    record."
//
// Query flow: the sink routes the query to its local clusterhead; the
// local head forwards it up to the root head (center cell), which routes
// it down to the head whose cell contains q. That coordinator gathers
// candidate records from its own R-tree and — when k exceeds its cell's
// population or a neighboring cell could hold closer nodes — serially
// probes other heads in MinDist order. It then unicasts the query to each
// chosen candidate at its *recorded* position; candidates route their
// responses back to the sink. Stale records under mobility make these
// notifications miss ("a clusterhead simply drops packets if they can not
// be routed to the destinations in the MBR record"), which is the paper's
// explanation for Peer-tree's accuracy collapse in Fig. 9.

#ifndef DIKNN_BASELINES_PEERTREE_H_
#define DIKNN_BASELINES_PEERTREE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baselines/rtree.h"
#include "knn/query.h"
#include "net/network.h"
#include "routing/gpsr.h"

namespace diknn {

/// Peer-tree tunables.
struct PeerTreeParams {
  int grid_dim = 5;                   ///< 5x5 MBR grid (paper).
  /// Periodic existence notification. Chosen so that under mobility the
  /// *cell-crossing* registrations dominate the refresh ones — crossing a
  /// 23 m cell at 10-30 m/s happens every 1-3 s — reproducing the paper's
  /// "more sensor nodes move across MBRs -> excessive information
  /// updates" energy growth (Fig. 9(b)).
  SimTime registration_interval = 2.5;
  SimTime cell_check_interval = 0.25; ///< Cell-crossing detection period.
  SimTime member_timeout = 6.0;       ///< Clusterhead eviction timeout.
  SimTime probe_timeout = 1.0;        ///< Wait for a probed head's reply.
  SimTime query_timeout = 8.0;        ///< Sink-side completion timeout.
  /// The sink completes this long after the latest candidate response if
  /// the full k never arrive (stale records make some notifications miss).
  SimTime response_grace = 1.5;
  int rtree_fanout = 8;
};

/// Peer-tree behaviour counters.
struct PeerTreeStats {
  uint64_t queries_issued = 0;
  uint64_t queries_completed = 0;
  uint64_t timeouts = 0;
  uint64_t registrations_sent = 0;
  uint64_t evictions = 0;
  uint64_t hierarchy_forwards = 0;   ///< Head-to-head query hops.
  uint64_t cells_probed = 0;
  uint64_t notifications_sent = 0;   ///< Coordinator -> candidate.
  uint64_t notifications_missed = 0; ///< Candidate not found (moved).
  uint64_t responses_received = 0;
};

/// The Peer-tree protocol. Requires a network built with grid_dim^2
/// stationary infrastructure nodes (see ClusterheadPositions); their ids
/// must be node_count .. node_count + grid_dim^2 - 1 in row-major order.
class PeerTree : public KnnProtocol {
 public:
  /// Clusterhead positions (cell centers) for a field and grid dimension,
  /// row-major; feed into NetworkConfig::infrastructure_positions.
  static std::vector<Point> ClusterheadPositions(const Rect& field,
                                                 int grid_dim = 5);

  PeerTree(Network* network, GpsrRouting* gpsr, PeerTreeParams params = {});

  void Install() override;
  void IssueQuery(NodeId sink, Point q, int k, ResultHandler handler) override;
  std::string name() const override { return "PeerTree"; }

  const PeerTreeStats& stats() const { return stats_; }

 private:
  // -------- wire messages --------

  struct RegisterMessage : Message {
    NodeId node = kInvalidNodeId;
    Point position;
  };

  /// Query envelope routed sink -> local head -> root -> coordinator.
  struct QueryMessage : Message {
    KnnQuery query;
  };

  /// Coordinator -> other head: send me your records near q.
  struct ProbeMessage : Message {
    uint64_t query_id = 0;
    Point q;
    int k = 0;
    NodeId coordinator = kInvalidNodeId;
    Point coordinator_position;
  };

  /// Probed head -> coordinator: my best records.
  struct ProbeReply : Message {
    uint64_t query_id = 0;
    int cell = -1;
    std::vector<KnnCandidate> records;
  };

  /// Coordinator -> candidate node: answer this query at the sink.
  struct NotifyMessage : Message {
    KnnQuery query;
    NodeId candidate = kInvalidNodeId;
  };

  /// Candidate -> sink: the query response.
  struct ResponseMessage : Message {
    uint64_t query_id = 0;
    KnnCandidate candidate;
  };

  // -------- clusterhead state --------

  struct MemberRecord {
    Point position;
    SimTime last_heard = 0;
  };

  struct Cell {
    NodeId head = kInvalidNodeId;
    Rect rect;
    RTree members{8};
    std::unordered_map<NodeId, MemberRecord> records;
  };

  // -------- coordinator (per active query) state --------

  struct Coordination {
    KnnQuery query;
    int home_cell = -1;
    std::vector<KnnCandidate> candidates;
    std::vector<int> probe_order;    ///< Cells by MinDist, not yet probed.
    size_t next_probe = 0;
    /// Cells probed and awaiting replies ("multiple clusterheads ...
    /// propagate the query message in different MBRs" — probing runs in
    /// parallel waves, not serially).
    std::unordered_set<int> outstanding;
    EventId probe_timeout_event = 0;
  };

  /// Concurrent probe fan-out per coordination wave.
  static constexpr int kProbeWave = 1;

  // -------- sink state --------

  struct PendingQuery {
    KnnQuery query;
    ResultHandler handler;
    std::vector<KnnCandidate> candidates;
    SimTime issued_at = 0;
    EventId timeout_event = 0;
    EventId grace_event = 0;
    bool completed = false;
  };

  int CellOf(const Point& p) const;
  Node* HeadNode(int cell) { return network_->node(cells_[cell].head); }

  void StartRegistrationLoops();
  void OnRegister(int cell, const RegisterMessage& msg);
  void EvictStale(int cell);

  void OnQueryAtHead(Node* node, const QueryMessage& msg);
  void Coordinate(int cell, const KnnQuery& query);
  void ContinueCoordination(uint64_t query_id);
  void OnProbe(Node* node, const ProbeMessage& msg);
  void OnProbeReply(Node* node, const ProbeReply& msg);
  void NotifyCandidates(uint64_t query_id);
  void OnNotify(Node* node, const NotifyMessage& msg);
  void OnResponse(Node* node, const ResponseMessage& msg);
  void CompleteQuery(uint64_t query_id, bool timed_out);

  Network* network_;
  GpsrRouting* gpsr_;
  PeerTreeParams params_;
  PeerTreeStats stats_;

  std::vector<Cell> cells_;
  int root_cell_ = 0;
  uint64_t next_query_id_ = 1;
  std::unordered_map<uint64_t, Coordination> coordinations_;
  std::unordered_map<uint64_t, PendingQuery> pending_;
  // Last cell each mobile node registered with (node-local state mirror).
  std::unordered_map<NodeId, int> registered_cell_;
};

}  // namespace diknn

#endif  // DIKNN_BASELINES_PEERTREE_H_
